package gpustream

// Adaptive-execution pinning: (1) a pinned tuner is bit-identical to the
// static path on every family (the controller's knob changes are the ONLY
// way adaptivity can alter answers), (2) answers stay eps-correct under
// adversarial dynamic window/backend schedules (the metamorphic suite), and
// (3) the auto backend's controller tolerates concurrent readers while a
// writer drives retunes (run under -race in CI).

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/pipeline"
	"gpustream/internal/shard"
	"gpustream/internal/stream"
)

// schedTuner is an adversarial pipeline.Tuner: at every window boundary it
// cycles the sorter through a fixed ring, the window through a fixed
// schedule, and the execution mode through a sync/async flip ring,
// regardless of measurements — the worst case a buggy controller could
// inflict within the legal knob envelope.
type schedTuner[T Value] struct {
	sorters []Sorter[T]
	windows []int
	asyncs  []pipeline.AsyncKnob
	i       int
}

func (s *schedTuner[T]) Retune(_ Stats, _ pipeline.Knobs[T]) (pipeline.Knobs[T], bool) {
	s.i++
	var next pipeline.Knobs[T]
	if len(s.sorters) > 0 {
		next.Sorter = s.sorters[s.i%len(s.sorters)]
	}
	if len(s.windows) > 0 {
		next.Window = s.windows[s.i%len(s.windows)]
	}
	if len(s.asyncs) > 0 {
		next.Async = s.asyncs[s.i%len(s.asyncs)]
	}
	return next, true
}

// asyncFlipRing commands an executor transition at nearly every window
// boundary: on, off, keep, on, off. Length 5 is coprime with the sorter
// ring (3) and the window schedules (4 and 6), so every combination of
// sorter x window x mode transition eventually occurs.
func asyncFlipRing() []pipeline.AsyncKnob {
	return []pipeline.AsyncKnob{
		pipeline.AsyncOn, pipeline.AsyncOff, pipeline.AsyncKeep,
		pipeline.AsyncOn, pipeline.AsyncOff,
	}
}

// sorterRing builds one fresh sorter per backend for a single pipeline to
// cycle through (instances are per-pipeline, never shared).
func sorterRing[T Value]() []Sorter[T] {
	return []Sorter[T]{
		newBackendSorter[T](BackendCPU),
		newBackendSorter[T](BackendGPU),
		newBackendSorter[T](BackendSampleSort),
	}
}

// windowSchedules are the dynamic-window shapes, all within [w0, 8*w0] so
// every scheduled window respects the construction floor the eps arguments
// need.
func windowSchedules(w0 int) map[string][]int {
	return map[string][]int{
		"grow":      {w0, 2 * w0, 4 * w0, 8 * w0},
		"shrink":    {8 * w0, 4 * w0, 2 * w0, w0},
		"oscillate": {w0, 8 * w0, w0, 4 * w0, 2 * w0, 8 * w0},
	}
}

// checkQuantileEps asserts every decile answer is within eps*N ranks.
func checkQuantileEps(t *testing.T, name string, q interface{ Query(float64) float32 }, ref []float32, eps float64) {
	t.Helper()
	n := len(ref)
	for p := 0; p <= 10; p++ {
		phi := float64(p) / 10
		r := int(math.Ceil(phi * float64(n)))
		if r < 1 {
			r = 1
		}
		if d := rankError(ref, q.Query(phi), r); float64(d) > eps*float64(n)+1 {
			t.Fatalf("%s: phi=%v rank error %d > eps*N=%v", name, phi, d, eps*float64(n))
		}
	}
}

// checkFrequencyEps asserts estimates never overcount and undercount by at
// most eps*N.
func checkFrequencyEps(t *testing.T, name string, est interface{ Estimate(float32) int64 }, exact map[float32]int64, n int, eps float64) {
	t.Helper()
	for v, truth := range exact {
		got := est.Estimate(v)
		if got > truth {
			t.Fatalf("%s: Estimate(%v) = %d overcounts true %d", name, v, got, truth)
		}
		if float64(truth-got) > eps*float64(n)+1e-9 {
			t.Fatalf("%s: Estimate(%v) = %d undercounts true %d beyond eps*N", name, v, got, truth)
		}
	}
}

// TestMetamorphicDynamicWindows drives every sorter-backed family through
// adversarial window/backend/concurrency schedules — grow, shrink,
// oscillate × sync and async construction × serial and K∈{1,4} sharded —
// and asserts the eps guarantees hold under every one. Every tuner also
// cycles the sync↔async execution knob at window boundaries, so executor
// start/stop transitions interleave with sorter swaps and window resizes
// regardless of the construction mode. The schedules never drop below the
// construction window, which is the documented legality envelope.
func TestMetamorphicDynamicWindows(t *testing.T) {
	const n = 40_000
	const eps = 0.01
	data := stream.Zipf(n, 1.2, n/100+5, 99)
	ref := append([]float32(nil), data...)
	cpusort.Quicksort(ref)
	exact := map[float32]int64{}
	for _, v := range data {
		exact[v]++
	}
	const w = n / 5 // sliding-window span
	winExact := map[float32]int64{}
	for _, v := range data[n-w:] {
		winExact[v]++
	}
	winRef := append([]float32(nil), data[n-w:]...)
	cpusort.Quicksort(winRef)

	for _, async := range []bool{false, true} {
		mode := map[bool]string{false: "sync", true: "async"}[async]
		for _, schedName := range []string{"grow", "shrink", "oscillate"} {
			t.Run(mode+"/"+schedName, func(t *testing.T) {
				eng := New(BackendSampleSort)
				var eopts []EstimatorOption
				var popts []ParallelOption
				if async {
					eopts = append(eopts, WithAsyncIngestion())
					popts = append(popts, WithAsyncShards())
				}

				qe := eng.NewQuantileEstimator(eps, n, eopts...)
				_, qw0 := qe.Knobs()
				qe.SetTuner(&schedTuner[float32]{sorters: sorterRing[float32](), windows: windowSchedules(qw0)[schedName], asyncs: asyncFlipRing()})
				qe.ProcessSlice(data)
				qe.Close()
				checkQuantileEps(t, "quantile", qe, ref, eps)

				fe := eng.NewFrequencyEstimator(eps, eopts...)
				_, fw0 := fe.Knobs()
				fe.SetTuner(&schedTuner[float32]{sorters: sorterRing[float32](), windows: windowSchedules(fw0)[schedName], asyncs: asyncFlipRing()})
				fe.ProcessSlice(data)
				fe.Close()
				checkFrequencyEps(t, "frequency", fe, exact, n, eps)

				// Sliding families: backend cycling only — the pane size is
				// the query's semantics, not a knob.
				sq := eng.NewSlidingQuantile(eps, w, eopts...)
				sq.SetTuner(&schedTuner[float32]{sorters: sorterRing[float32](), asyncs: asyncFlipRing()})
				sq.ProcessSlice(data)
				if d := rankError(winRef, sq.Query(0.5), w/2); float64(d) > eps*float64(w)+1 {
					t.Fatalf("sliding median rank error %d", d)
				}
				sq.Close()

				sf := eng.NewSlidingFrequency(eps, w, eopts...)
				sf.SetTuner(&schedTuner[float32]{sorters: sorterRing[float32](), asyncs: asyncFlipRing()})
				sf.ProcessSlice(data)
				for v, truth := range winExact {
					if got := sf.Estimate(v); math.Abs(float64(got-truth)) > eps*float64(w)+1e-9 {
						t.Fatalf("sliding frequency(%v) = %d, true %d", v, got, truth)
					}
				}
				sf.Close()

				for _, k := range []int{1, 4} {
					sched := windowSchedules(qw0)[schedName]
					factory := shard.WithTunerFactory(func() pipeline.Tuner[float32] {
						return &schedTuner[float32]{sorters: sorterRing[float32](), windows: sched, asyncs: asyncFlipRing()}
					})
					pq := eng.NewParallelQuantileEstimator(eps, n, k,
						append([]ParallelOption{factory, WithBatchSize(1 << 12)}, popts...)...)
					pq.ProcessSlice(data)
					pq.Close()
					checkQuantileEps(t, "parallel-quantile", pq, ref, eps)

					pf := eng.NewParallelFrequencyEstimator(eps, k,
						append([]ParallelOption{factory, WithBatchSize(1 << 12)}, popts...)...)
					pf.ProcessSlice(data)
					pf.Close()
					checkFrequencyEps(t, "parallel-frequency", pf, exact, n, eps)
				}
			})
		}
	}
}

// scriptRescaler replays a fixed shard-count schedule: every `every`
// ingested values it commands the next count from steps — the reshard
// analogue of schedTuner, driving scale-ups and drain-and-fold scale-downs
// at scripted points of the stream regardless of measured throughput.
type scriptRescaler struct {
	mu    sync.Mutex
	steps []int
	every int64
	next  int64
	i     int
}

func (r *scriptRescaler) Observe(total int64, shards int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.i >= len(r.steps) || total < r.next {
		return 0
	}
	r.next = total + r.every
	cmd := r.steps[r.i]
	r.i++
	return cmd
}

func (r *scriptRescaler) executed() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.i
}

// TestMetamorphicElasticReshard drives the parallel families through
// adversarial scripted reshard schedules — mid-stream scale-ups that spawn
// fresh shards, scale-downs that drain retiring shards and fold their
// snapshots into the retained accumulator, and oscillation between the two —
// under sync and async shards. Answers must stay within eps of the serial
// reference no matter when or how often the worker count moves, every
// scripted command must actually execute, and the final live shard count
// must match the last command.
func TestMetamorphicElasticReshard(t *testing.T) {
	const n = 40_000
	const eps = 0.01
	data := stream.Zipf(n, 1.2, n/100+5, 31)
	ref := append([]float32(nil), data...)
	cpusort.Quicksort(ref)
	exact := map[float32]int64{}
	for _, v := range data {
		exact[v]++
	}

	schedules := []struct {
		name  string
		start int
		steps []int
	}{
		{"grow", 1, []int{2, 3, 4}},
		{"shrink", 4, []int{3, 2, 1}},
		{"oscillate", 2, []int{4, 1, 3, 1, 4, 2}},
	}
	const batch = 1 << 11 // small batches so the rescaler is consulted often

	for _, async := range []bool{false, true} {
		mode := map[bool]string{false: "sync", true: "async"}[async]
		for _, sc := range schedules {
			t.Run(mode+"/"+sc.name, func(t *testing.T) {
				mkOpts := func(r *scriptRescaler) []ParallelOption {
					opts := []ParallelOption{shard.WithRescaler(r), WithBatchSize(batch)}
					if async {
						opts = append(opts, WithAsyncShards())
					}
					return opts
				}
				eng := New(BackendSampleSort)

				qr := &scriptRescaler{steps: sc.steps, every: 2 * batch, next: 2 * batch}
				pq := eng.NewParallelQuantileEstimator(eps, n, sc.start, mkOpts(qr)...)
				pq.ProcessSlice(data)
				pq.Close()
				checkQuantileEps(t, "elastic-quantile", pq, ref, eps)
				if got := qr.executed(); got != len(sc.steps) {
					t.Fatalf("quantile: %d of %d reshard commands executed", got, len(sc.steps))
				}
				if got, want := pq.Shards(), sc.steps[len(sc.steps)-1]; got != want {
					t.Fatalf("quantile: final shard count %d, want %d", got, want)
				}
				if c := pq.Count(); c != int64(n) {
					t.Fatalf("quantile: Count=%d after resharding, want %d", c, n)
				}

				fr := &scriptRescaler{steps: sc.steps, every: 2 * batch, next: 2 * batch}
				pf := eng.NewParallelFrequencyEstimator(eps, sc.start, mkOpts(fr)...)
				pf.ProcessSlice(data)
				pf.Close()
				checkFrequencyEps(t, "elastic-frequency", pf, exact, n, eps)
				if got := fr.executed(); got != len(sc.steps) {
					t.Fatalf("frequency: %d of %d reshard commands executed", got, len(sc.steps))
				}
				if got, want := pf.Shards(), sc.steps[len(sc.steps)-1]; got != want {
					t.Fatalf("frequency: final shard count %d, want %d", got, want)
				}
			})
		}
	}
}

// TestPinnedTunerBitIdentical pins that an auto-backend estimator with a
// pinned (never-moves) tuner produces byte-identical marshaled snapshots to
// the static sample-sort path, across all seven families: running the
// retune hook must be answer-invisible unless a knob actually moves.
func TestPinnedTunerBitIdentical(t *testing.T) {
	const n = 30_000
	const eps = 0.005
	data := stream.Zipf(n, 1.2, 300, 77)
	static := New(BackendSampleSort)
	auto := New(BackendAuto)

	pin := func(name string, a, b Snapshot[float32]) {
		t.Helper()
		ab, err := MarshalSnapshot(a)
		if err != nil {
			t.Fatalf("%s: marshal static: %v", name, err)
		}
		bb, err := MarshalSnapshot(b)
		if err != nil {
			t.Fatalf("%s: marshal pinned: %v", name, err)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("%s: pinned-tuner snapshot diverges from static (%d vs %d bytes)", name, len(ab), len(bb))
		}
	}
	run := func(e Estimator[float32]) Snapshot[float32] {
		if err := e.ProcessSlice(data); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return e.Snapshot()
	}

	pin("frequency",
		run(static.NewFrequencyEstimator(eps)),
		run(auto.NewFrequencyEstimator(eps, WithPinnedTuning())))
	pin("quantile",
		run(static.NewQuantileEstimator(eps, n)),
		run(auto.NewQuantileEstimator(eps, n, WithPinnedTuning())))
	pin("sliding-frequency",
		run(static.NewSlidingFrequency(eps, n/5)),
		run(auto.NewSlidingFrequency(eps, n/5, WithPinnedTuning())))
	pin("sliding-quantile",
		run(static.NewSlidingQuantile(eps, n/5)),
		run(auto.NewSlidingQuantile(eps, n/5, WithPinnedTuning())))
	pin("parallel-frequency",
		run(static.NewParallelFrequencyEstimator(eps, 2, WithBatchSize(2048))),
		run(auto.NewParallelFrequencyEstimator(eps, 2, WithBatchSize(2048), WithPinnedShardTuning[float32]())))
	pin("parallel-quantile",
		run(static.NewParallelQuantileEstimator(eps, n, 2, WithBatchSize(2048))),
		run(auto.NewParallelQuantileEstimator(eps, n, 2, WithBatchSize(2048), WithPinnedShardTuning[float32]())))
	pin("frugal",
		run(static.NewFrugalEstimator()),
		run(auto.NewFrugalEstimator()))

	// Elastic axes pinned: requesting the concurrency knobs ("async":"auto",
	// elastic shards) and then pinning every axis must be answer-invisible
	// too. Serial families ask the controller to own the execution mode but
	// pin the tuner; parallel families carry a rescaler that never moves
	// plus pinned shard tuners. K=4 on both sides: construction budgets
	// match (eps/2 for K>1 static and for any elastic estimator), so the
	// comparison isolates the runtime machinery.
	pin("frequency-pinned-async",
		run(static.NewFrequencyEstimator(eps)),
		run(auto.NewFrequencyEstimator(eps, withAutoAsync(), WithPinnedTuning())))
	pin("quantile-pinned-async",
		run(static.NewQuantileEstimator(eps, n)),
		run(auto.NewQuantileEstimator(eps, n, withAutoAsync(), WithPinnedTuning())))
	pin("sliding-quantile-pinned-async",
		run(static.NewSlidingQuantile(eps, n/5)),
		run(auto.NewSlidingQuantile(eps, n/5, withAutoAsync(), WithPinnedTuning())))
	keep := keepRescaler{}
	pin("parallel-frequency-pinned-elastic",
		run(static.NewParallelFrequencyEstimator(eps, 4, WithBatchSize(2048))),
		run(auto.newParallelFrequency(eps, 4, tuningSpec{autoAsync: true},
			shard.WithRescaler(keep), WithBatchSize(2048), WithPinnedShardTuning[float32]())))
	pin("parallel-quantile-pinned-elastic",
		run(static.NewParallelQuantileEstimator(eps, n, 4, WithBatchSize(2048))),
		run(auto.newParallelQuantile(eps, n, 4, tuningSpec{autoAsync: true},
			shard.WithRescaler(keep), WithBatchSize(2048), WithPinnedShardTuning[float32]())))
}

// keepRescaler is the pinned concurrency axis: an elastic estimator whose
// rescaler never commands a count must be byte-identical to the static
// configuration at the same shard count.
type keepRescaler struct{}

func (keepRescaler) Observe(int64, int) int { return 0 }

// TestAutoKnobsReported asserts the engine's telemetry surfaces the live
// backend/window selection and, for auto estimators, the controller's
// decision — the fields streammine -stats and /statsz print.
func TestAutoKnobsReported(t *testing.T) {
	data := stream.Zipf(60_000, 1.2, 500, 5)

	static := New(BackendSampleSort)
	se := static.NewQuantileEstimator(0.01, int64(len(data)))
	se.ProcessSlice(data)
	se.Close()
	ss := static.Stats()
	if len(ss) != 1 || ss[0].Backend != "samplesort" || ss[0].Window <= 0 {
		t.Fatalf("static stats: %+v", ss)
	}
	if ss[0].Tuning != nil {
		t.Fatalf("static estimator reports a tuning decision: %+v", ss[0].Tuning)
	}

	auto := New(BackendAuto)
	ae := auto.NewQuantileEstimator(0.01, int64(len(data)))
	ae.ProcessSlice(data)
	ae.Close()
	as := auto.Stats()
	if len(as) != 1 || as[0].Backend == "" || as[0].Window <= 0 {
		t.Fatalf("auto stats: %+v", as)
	}
	d := as[0].Tuning
	if d == nil {
		t.Fatalf("auto estimator reports no tuning decision")
	}
	if d.Phase != "probe" && d.Phase != "window" && d.Phase != "steady" {
		t.Fatalf("tuning phase %q", d.Phase)
	}
	if d.Switches == 0 || len(d.NsPerValue) == 0 {
		t.Fatalf("controller never probed: %+v", d)
	}

	// Parallel auto estimators report shard 0's controller.
	ap := auto.NewParallelFrequencyEstimator(0.01, 2, WithBatchSize(4096))
	ap.ProcessSlice(data)
	ap.Close()
	ps := auto.Stats()
	if got := ps[1]; got.Tuning == nil || got.Backend == "" {
		t.Fatalf("parallel auto stats: %+v", got)
	}
}

// TestAdaptiveControllerRace drives an auto-backend estimator with one
// writer while four readers hammer queries, snapshots, and engine stats —
// the controller's Decision/Retune interleaving. CI runs it under -race.
func TestAdaptiveControllerRace(t *testing.T) {
	eng := New(BackendAuto)
	qe := eng.NewQuantileEstimator(0.01, 200_000)
	data := stream.Zipf(200_000, 1.2, 2000, 13)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, es := range eng.Stats() {
					_ = es.Backend
					if es.Tuning != nil {
						_ = es.Tuning.Phase
					}
				}
				if s := qe.Snapshot(); s.Count() > 0 {
					if _, ok := s.Quantile(0.5); !ok {
						t.Error("non-empty snapshot refused a quantile")
						return
					}
				}
			}
		}()
	}
	for off := 0; off < len(data); off += 5000 {
		end := off + 5000
		if end > len(data) {
			end = len(data)
		}
		if err := qe.ProcessSlice(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	qe.Close()
	checkQuantileEpsSorted(t, qe, data)
}

// checkQuantileEpsSorted checks the median after the race workload.
func checkQuantileEpsSorted(t *testing.T, qe *QuantileEstimator[float32], data []float32) {
	t.Helper()
	ref := append([]float32(nil), data...)
	cpusort.Quicksort(ref)
	if d := rankError(ref, qe.Query(0.5), len(ref)/2); float64(d) > 0.01*float64(len(ref))+1 {
		t.Fatalf("post-race median rank error %d", d)
	}
}
