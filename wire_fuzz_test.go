package gpustream

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gpustream/internal/frequency"
)

// FuzzSnapshotRoundTrip drives the decoder with arbitrary bytes. The
// contract under fuzz:
//
//   - rejected input fails with a wrapped wire sentinel, never a panic;
//   - accepted input is canonical: Marshal(Unmarshal(data)) is bit-identical
//     to data, at every fixed point;
//   - a decode → encode → decode cycle preserves every query answer.
//
// Seeded with the committed goldens, boundary-value snapshots (zero,
// MaxUint64, negative and signed-zero floats), and corrupt variants.
func FuzzSnapshotRoundTrip(f *testing.F) {
	if entries, err := os.ReadDir(filepath.Join("testdata", "snapshots")); err == nil {
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join("testdata", "snapshots", e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			if len(data) > 11 {
				f.Add(data[:len(data)/2]) // truncated variant
				mut := append([]byte(nil), data...)
				mut[11] ^= 0xFF // corrupt one body byte
				f.Add(mut)
			}
		}
	}

	// Boundary values of the uint64 key space.
	boundary := frequency.SnapshotFromEntries([]frequency.SummaryEntry[uint64]{
		{Value: 0, Freq: 3, Delta: 1},
		{Value: 1 << 63, Freq: 2, Delta: 0},
		{Value: math.MaxUint64, Freq: 5, Delta: 2},
	}, 10, 0.1)
	blob, err := boundary.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)

	// Negative floats and the signed zero, through a real estimator.
	eng := New(BackendCPU)
	qe := eng.NewQuantileEstimator(0.1, 8)
	if err := qe.ProcessSlice([]float32{-3.4e38, -1, float32(math.Copysign(0, -1)), 0, 1, 3.4e38}); err != nil {
		f.Fatal(err)
	}
	f.Add(mustMarshal(f, qe.Snapshot()))

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRoundTrip[float32](t, data)
		fuzzRoundTrip[uint64](t, data)
	})
}

func fuzzRoundTrip[T Value](t *testing.T, data []byte) {
	s, err := UnmarshalSnapshot[T](data)
	if err != nil {
		if s != nil {
			t.Fatalf("%s: error %v returned alongside a snapshot", typeName[T](), err)
		}
		if !isWireError(err) {
			t.Fatalf("%s: error %v wraps no wire sentinel", typeName[T](), err)
		}
		return
	}
	blob, err := MarshalSnapshot(s)
	if err != nil {
		t.Fatalf("%s: marshal of accepted input: %v", typeName[T](), err)
	}
	if !bytes.Equal(blob, data) {
		t.Fatalf("%s: re-marshal of accepted input is not bit-identical (%d vs %d bytes)", typeName[T](), len(blob), len(data))
	}
	s2, err := UnmarshalSnapshot[T](blob)
	if err != nil {
		t.Fatalf("%s: re-unmarshal: %v", typeName[T](), err)
	}
	assertSameAnswers(t, s, s2)
	if blob2 := mustMarshal(t, s2); !bytes.Equal(blob, blob2) {
		t.Fatalf("%s: marshal is not deterministic across decode cycles", typeName[T]())
	}
}
