package gpustream

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"gpustream/internal/frequency"
	"gpustream/internal/wire"
)

// FuzzSnapshotRoundTrip drives the decoder with arbitrary bytes. The
// contract under fuzz:
//
//   - rejected input fails with a wrapped wire sentinel, never a panic;
//   - accepted input is canonical: Marshal(Unmarshal(data)) is bit-identical
//     to data, at every fixed point;
//   - a decode → encode → decode cycle preserves every query answer.
//
// Seeded with the committed goldens, boundary-value snapshots (zero,
// MaxUint64, negative and signed-zero floats), and corrupt variants.
func FuzzSnapshotRoundTrip(f *testing.F) {
	if entries, err := os.ReadDir(filepath.Join("testdata", "snapshots")); err == nil {
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join("testdata", "snapshots", e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			if len(data) > 11 {
				f.Add(data[:len(data)/2]) // truncated variant
				mut := append([]byte(nil), data...)
				mut[11] ^= 0xFF // corrupt one body byte
				f.Add(mut)
			}
		}
	}

	// Boundary values of the uint64 key space.
	boundary := frequency.SnapshotFromEntries([]frequency.SummaryEntry[uint64]{
		{Value: 0, Freq: 3, Delta: 1},
		{Value: 1 << 63, Freq: 2, Delta: 0},
		{Value: math.MaxUint64, Freq: 5, Delta: 2},
	}, 10, 0.1)
	blob, err := boundary.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)

	// Negative floats and the signed zero, through a real estimator.
	eng := New(BackendCPU)
	qe := eng.NewQuantileEstimator(0.1, 8)
	if err := qe.ProcessSlice([]float32{-3.4e38, -1, float32(math.Copysign(0, -1)), 0, 1, 3.4e38}); err != nil {
		f.Fatal(err)
	}
	f.Add(mustMarshal(f, qe.Snapshot()))

	// Frugal trackers driven to extreme values: the control byte's step
	// exponent saturates near the top of the float range, so the encoded
	// (est, ctl) pairs sit at the field boundaries the decoder validates.
	fr := eng.NewFrugalEstimator(WithPhis(0.01, 0.5, 0.99), WithFrugalSeed(11))
	if err := fr.ProcessSlice([]float32{-3.4e38, 3.4e38, 0, -1, 1, 3.4e38}); err != nil {
		f.Fatal(err)
	}
	f.Add(mustMarshal(f, fr.Snapshot()))

	// A keyed blob: the unkeyed decoder must classify it as a foreign
	// family (wire.ErrFamily), and mutants of it probe that dispatch arm.
	f.Add(mustMarshalKeyed(f, goldenKeyedSnapshot[uint64, float32](f)))

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzRoundTrip[float32](t, data)
		fuzzRoundTrip[uint64](t, data)
	})
}

// FuzzKeyedSnapshotRoundTrip is the keyed decoder's fuzz contract, parallel
// to FuzzSnapshotRoundTrip but through UnmarshalKeyedSnapshot — the keyed
// family carries two type tags, two key tiers with cross-tier invariants,
// and a nested oracle blob, so it has its own accept/reject surface.
// Unkeyed goldens ride along as seeds: they must be rejected as a foreign
// family, never decoded.
func FuzzKeyedSnapshotRoundTrip(f *testing.F) {
	if entries, err := os.ReadDir(filepath.Join("testdata", "snapshots")); err == nil {
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join("testdata", "snapshots", e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			if len(data) > wire.HeaderSize+2 {
				f.Add(data[:len(data)/2]) // truncated variant
				mut := append([]byte(nil), data...)
				mut[wire.HeaderSize+1] ^= 0xFF // corrupt one body byte
				f.Add(mut)
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzKeyedRoundTrip[uint64, float32](t, data)
		fuzzKeyedRoundTrip[uint32, uint64](t, data)
	})
}

func fuzzKeyedRoundTrip[K, T Value](t *testing.T, data []byte) {
	s, err := UnmarshalKeyedSnapshot[K, T](data)
	if err != nil {
		if s != nil {
			t.Fatalf("keyed: error %v returned alongside a snapshot", err)
		}
		if !isWireError(err) {
			t.Fatalf("keyed: error %v wraps no wire sentinel", err)
		}
		return
	}
	blob, err := MarshalKeyedSnapshot(s)
	if err != nil {
		t.Fatalf("keyed: marshal of accepted input: %v", err)
	}
	if !bytes.Equal(blob, data) {
		t.Fatalf("keyed: re-marshal of accepted input is not bit-identical (%d vs %d bytes)", len(blob), len(data))
	}
	s2, err := UnmarshalKeyedSnapshot[K, T](blob)
	if err != nil {
		t.Fatalf("keyed: re-unmarshal: %v", err)
	}
	assertSameKeyedAnswers(t, s, s2)
	if blob2 := mustMarshalKeyed(t, s2); !bytes.Equal(blob, blob2) {
		t.Fatal("keyed: marshal is not deterministic across decode cycles")
	}
}

func fuzzRoundTrip[T Value](t *testing.T, data []byte) {
	s, err := UnmarshalSnapshot[T](data)
	if err != nil {
		if s != nil {
			t.Fatalf("%s: error %v returned alongside a snapshot", typeName[T](), err)
		}
		if !isWireError(err) {
			t.Fatalf("%s: error %v wraps no wire sentinel", typeName[T](), err)
		}
		return
	}
	blob, err := MarshalSnapshot(s)
	if err != nil {
		t.Fatalf("%s: marshal of accepted input: %v", typeName[T](), err)
	}
	if !bytes.Equal(blob, data) {
		t.Fatalf("%s: re-marshal of accepted input is not bit-identical (%d vs %d bytes)", typeName[T](), len(blob), len(data))
	}
	s2, err := UnmarshalSnapshot[T](blob)
	if err != nil {
		t.Fatalf("%s: re-unmarshal: %v", typeName[T](), err)
	}
	assertSameAnswers(t, s, s2)
	if blob2 := mustMarshal(t, s2); !bytes.Equal(blob, blob2) {
		t.Fatalf("%s: marshal is not deterministic across decode cycles", typeName[T]())
	}
}
