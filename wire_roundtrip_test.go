package gpustream

import (
	"bytes"
	"testing"
)

// TestWireRoundTripMatrix drives every estimator family at every Value type
// through Marshal → Unmarshal and checks the decoded snapshot answers every
// query identically and re-marshals to identical bytes. This is the
// acceptance matrix for the wire format: 6 families × 6 value types.
func TestWireRoundTripMatrix(t *testing.T) {
	t.Run("float32", testWireRoundTrip[float32])
	t.Run("float64", testWireRoundTrip[float64])
	t.Run("uint32", testWireRoundTrip[uint32])
	t.Run("uint64", testWireRoundTrip[uint64])
	t.Run("int32", testWireRoundTrip[int32])
	t.Run("int64", testWireRoundTrip[int64])
}

func testWireRoundTrip[T Value](t *testing.T) {
	const (
		n   = 1200
		eps = 0.05
		w   = 300
	)
	data := goldenValues[T](n)
	eng := NewOf[T](BackendCPU)

	families := map[string]func(t *testing.T) Snapshot[T]{
		"frequency": func(t *testing.T) Snapshot[T] {
			est := eng.NewFrequencyEstimator(eps)
			ingest(t, est, data)
			return est.Snapshot()
		},
		"quantile": func(t *testing.T) Snapshot[T] {
			est := eng.NewQuantileEstimator(eps, n)
			ingest(t, est, data)
			return est.Snapshot()
		},
		"sliding-frequency": func(t *testing.T) Snapshot[T] {
			est := eng.NewSlidingFrequency(eps, w)
			ingest(t, est, data)
			return est.Snapshot()
		},
		"sliding-quantile": func(t *testing.T) Snapshot[T] {
			est := eng.NewSlidingQuantile(eps, w)
			ingest(t, est, data)
			return est.Snapshot()
		},
		"parallel-frequency": func(t *testing.T) Snapshot[T] {
			est := eng.NewParallelFrequencyEstimator(eps, 3)
			ingest(t, est, data)
			if err := est.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			return est.Snapshot()
		},
		"parallel-quantile": func(t *testing.T) Snapshot[T] {
			est := eng.NewParallelQuantileEstimator(eps, n, 3)
			ingest(t, est, data)
			if err := est.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			return est.Snapshot()
		},
	}

	for name, build := range families {
		t.Run(name, func(t *testing.T) {
			snap := build(t)
			blob := mustMarshal(t, snap)
			dec, err := UnmarshalSnapshot[T](blob)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			assertSameAnswers(t, snap, dec)
			if re := mustMarshal(t, dec); !bytes.Equal(re, blob) {
				t.Fatal("unmarshal then marshal is not the identity")
			}
		})
	}
}

func ingest[T Value](t *testing.T, est Estimator[T], data []T) {
	t.Helper()
	if err := est.ProcessSlice(data); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := est.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// TestWireRoundTripEmptySnapshots pins the wire behavior of snapshots over
// empty streams: every family marshals, round-trips, and keeps answering
// (with ok=false where the stream is required to be non-empty).
func TestWireRoundTripEmptySnapshots(t *testing.T) {
	eng := New(BackendCPU)
	snaps := map[string]Snapshot[float32]{
		"frequency":         eng.NewFrequencyEstimator(0.1).Snapshot(),
		"quantile":          eng.NewQuantileEstimator(0.1, 16).Snapshot(),
		"sliding-frequency": eng.NewSlidingFrequency(0.1, 32).Snapshot(),
		"sliding-quantile":  eng.NewSlidingQuantile(0.1, 32).Snapshot(),
	}
	for name, snap := range snaps {
		t.Run(name, func(t *testing.T) {
			blob := mustMarshal(t, snap)
			dec, err := UnmarshalSnapshot[float32](blob)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if dec.Count() != 0 {
				t.Fatalf("Count = %d, want 0", dec.Count())
			}
			assertSameAnswers(t, snap, dec)
			if re := mustMarshal(t, dec); !bytes.Equal(re, blob) {
				t.Fatal("unmarshal then marshal is not the identity")
			}
		})
	}
}
