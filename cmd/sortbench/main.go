// Command sortbench runs the sorting backends on a synthetic input and
// reports both host wall time (the simulator really sorts the data) and
// modeled time on the paper's 2004 testbed, with the GPU sort's cost
// decomposition (compute / transfer / setup / CPU merge).
//
// Usage:
//
//	sortbench [-n 1048576] [-dist uniform|zipf|sorted|reversed|gauss]
//	          [-seed 1] [-backends gpu,bitonic,cpu,cpu-ht,samplesort]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"gpustream"
	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/perfmodel"
	"gpustream/internal/samplesort"
	"gpustream/internal/sorter"
	"gpustream/internal/stream"
)

func main() {
	n := flag.Int("n", 1<<20, "number of values to sort")
	dist := flag.String("dist", "uniform", "input distribution: uniform|zipf|sorted|reversed|gauss")
	seed := flag.Uint64("seed", 1, "generator seed")
	backends := flag.String("backends", "gpu,bitonic,cpu,cpu-ht,samplesort", "comma-separated sorting backends: gpu|gpu-bitonic|cpu|cpu-parallel|samplesort|auto (aliases: bitonic, cpu-ht)")
	flag.Parse()

	var data []float32
	switch *dist {
	case "uniform":
		data = stream.Uniform(*n, *seed)
	case "zipf":
		data = stream.Zipf(*n, 1.1, *n/10+1, *seed)
	case "sorted":
		data = stream.Sorted(*n)
	case "reversed":
		data = stream.ReverseSorted(*n)
	case "gauss":
		data = stream.Gaussian(*n, 0, 1, *seed)
	default:
		fmt.Fprintf(os.Stderr, "sortbench: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	model := perfmodel.Default()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "backend\thost-ms\tmodel-ms\tmodel-compute\tmodel-transfer\tsorted\t")

	for _, name := range strings.Split(*backends, ",") {
		buf := append([]float32(nil), data...)
		var modelTotal, modelCompute, modelTransfer time.Duration
		backend, err := gpustream.ParseBackend(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sortbench: %v\n", err)
			os.Exit(2)
		}
		var s sorter.Sorter[float32] = gpustream.New(backend).Sorter()
		t0 := time.Now()
		s.Sort(buf)
		host := time.Since(t0)

		switch g := s.(type) {
		case *gpusort.Sorter[float32]:
			st := g.LastStats()
			b := model.GPUSortFromStats(st.GPU, st.MergeCmps)
			modelTotal, modelCompute, modelTransfer = b.Total(), b.Compute, b.Transfer
		case *gpusort.BitonicSorter[float32]:
			st := g.LastStats()
			b := model.GPUSortFromStats(st.GPU, st.MergeCmps)
			modelTotal, modelCompute, modelTransfer = b.Total(), b.Compute, b.Transfer
		case cpusort.QuicksortSorter[float32]:
			modelTotal = model.QuicksortTime(*n, perfmodel.MSVC)
		case cpusort.ParallelSorter[float32]:
			modelTotal = model.QuicksortTime(*n, perfmodel.IntelHT)
		case *samplesort.Sorter[float32]:
			modelTotal = model.SampleSortTime(*n)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%v\t\n",
			s.Name(),
			float64(host.Microseconds())/1000,
			float64(modelTotal.Microseconds())/1000,
			float64(modelCompute.Microseconds())/1000,
			float64(modelTransfer.Microseconds())/1000,
			cpusort.IsSorted(buf))
	}
	w.Flush()
}
