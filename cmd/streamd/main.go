// Command streamd is the multi-tenant streaming estimation daemon: tenants
// create named streams from declarative estimator specs (PUT a
// gpustream.Spec), POST batches of values, and GET eps-approximate answers
// (quantiles, heavy hitters, point frequencies) served from copy-on-write
// snapshots so queries never block ingestion.
//
//	streamd -addr :8080 -type float32 -spill /var/lib/streamd
//
// On SIGTERM/SIGINT the daemon stops accepting connections, drains every
// stream's ingest queue and estimator concurrently, and spills each final
// snapshot to the spill directory in the versioned wire format (readable by
// cmd/snapmerge and gpustream.UnmarshalSnapshot).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpustream/internal/service"
)

// instance is the type-erased face of service.Server[T]: the daemon picks
// the value type at startup (-type), the HTTP surface is type-independent.
type instance interface {
	http.Handler
	Drain(context.Context) error
	Streams() int
}

func build(typ string, cfg service.Config) (instance, error) {
	switch typ {
	case "float32":
		return service.New[float32](cfg), nil
	case "float64":
		return service.New[float64](cfg), nil
	case "uint32":
		return service.New[uint32](cfg), nil
	case "uint64":
		return service.New[uint64](cfg), nil
	case "int32":
		return service.New[int32](cfg), nil
	case "int64":
		return service.New[int64](cfg), nil
	default:
		return nil, fmt.Errorf("unsupported -type %q (want float32, float64, uint32, uint64, int32, or int64)", typ)
	}
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		typ          = flag.String("type", "float32", "value type for all streams: float32, float64, uint32, uint64, int32, int64")
		spill        = flag.String("spill", "", "directory for final snapshots on drain (empty: don't spill)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "deadline for draining all streams at shutdown")
		maxStreams   = flag.Int("max-streams", 4096, "stream cap; beyond it the least-recently-used stream is drained and evicted")
		idleTTL      = flag.Duration("idle-ttl", 0, "evict streams idle longer than this (0: never)")
		queueDepth   = flag.Int("queue-depth", 64, "per-stream ingest queue depth, in batches")
		maxBatch     = flag.Int("max-batch-rows", 1<<20, "largest accepted batch, in rows")
	)
	flag.Parse()

	svc, err := build(*typ, service.Config{
		MaxStreams:   *maxStreams,
		IdleTTL:      *idleTTL,
		QueueDepth:   *queueDepth,
		MaxBatchRows: *maxBatch,
		DrainTimeout: *drainTimeout,
		SpillDir:     *spill,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: svc}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("streamd: serving %s values on %s (max-streams=%d queue-depth=%d)", *typ, *addr, *maxStreams, *queueDepth)

	select {
	case err := <-errc:
		log.Fatalf("streamd: %v", err)
	case <-ctx.Done():
	}

	// Shutdown: stop accepting, finish in-flight requests, then drain and
	// spill every stream under one shared deadline.
	log.Printf("streamd: signal received, draining %d streams (deadline %s)", svc.Streams(), *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("streamd: http shutdown: %v", err)
	}
	if err := svc.Drain(dctx); err != nil {
		log.Fatalf("streamd: drain: %v", err)
	}
	log.Printf("streamd: drained cleanly")
}
