// Command streammine runs epsilon-approximate stream-mining queries over a
// synthetic data stream, exercising the full public API: frequency and
// quantile estimation over the whole history or over a sliding window, on
// any sorting backend.
//
// Usage:
//
//	streammine -query frequency -n 10000000 -eps 0.0001 -support 0.001
//	streammine -query quantile  -n 10000000 -eps 0.001 -phis 0.25,0.5,0.75
//	streammine -query frequency -window 100000 ...   (sliding window)
//	streammine -keyed -n 10000000 -keys 100000 ...    (per-key quantiles over a
//	                                                   zipf-keyed stream: frugal
//	                                                   tier + promoted GK tier)
//	streammine -backend cpu ...                       (default gpu)
//	streammine -shards 4 ...                          (parallel ingestion;
//	                                                   -shards -1 = GOMAXPROCS)
//	streammine -shards auto ...                       (elastic: a runtime scaler
//	                                                   hill-climbs the count)
//	streammine -async ...                             (staged co-processing:
//	                                                   sort overlaps merge)
//	streammine -async=auto ...                        (elastic: the adaptive
//	                                                   controller owns the mode;
//	                                                   note the =, -async alone
//	                                                   means on)
//	streammine -stats ...                             (per-stage pipeline report)
//	streammine -snapshot part.snap ...                (write the final snapshot
//	                                                   in the wire format; fan
//	                                                   in with snapmerge)
//	streammine -cpuprofile cpu.pb -memprofile mem.pb -trace run.trace ...
//	                                                  (pprof / runtime-trace;
//	                                                   `go tool trace run.trace`
//	                                                   shows the stage overlap)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"gpustream"
	"gpustream/internal/perfmodel"
	"gpustream/internal/stream"
)

func main() {
	query := flag.String("query", "frequency", "query type: frequency|quantile")
	n := flag.Int("n", 1_000_000, "stream length")
	eps := flag.Float64("eps", 0.001, "approximation error")
	support := flag.Float64("support", 0.01, "frequency query support threshold")
	phis := flag.String("phis", "0.01,0.25,0.5,0.75,0.99", "quantile probes")
	dist := flag.String("dist", "zipf", "stream distribution: zipf|uniform|gauss|bursty")
	backendName := flag.String("backend", "gpu", "sorting backend: gpu|gpu-bitonic|cpu|cpu-parallel|samplesort|auto")
	windowSize := flag.Int("window", 0, "sliding window size (0 = whole stream)")
	keyed := flag.Bool("keyed", false, "keyed estimation: per-key quantiles over a zipf-keyed stream (uint64 keys)")
	nkeys := flag.Int("keys", 0, "keyed: key-space cardinality (0 = n/1000+10)")
	keySkew := flag.Float64("keyskew", 1.2, "keyed: zipf skew of the key distribution")
	var shards shardsFlag
	flag.Var(&shards, "shards", "parallel ingestion shards (0 = serial, <0 = GOMAXPROCS, auto = elastic runtime scaling)")
	var async asyncFlag
	flag.Var(&async, "async", "staged asynchronous ingestion, overlapping window sorting with merge/compress: on|off|auto (auto lets the adaptive controller own the mode)")
	seed := flag.Uint64("seed", 1, "generator seed")
	replayPath := flag.String("replay", "", "replay this trace file instead of generating")
	top := flag.Int("top", 10, "max frequency items to print")
	snapPath := flag.String("snapshot", "", "write the final snapshot in the binary wire format to this file (fan in with snapmerge)")
	showStats := flag.Bool("stats", false, "print the per-stage pipeline telemetry report")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	tracefile := flag.String("trace", "", "write a runtime/trace execution trace to this file")
	flag.Parse()

	backend, err := gpustream.ParseBackend(*backendName)
	if err != nil {
		fatalf("%v", err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracefile != "" {
		f, err := os.Create(*tracefile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := trace.Start(f); err != nil {
			fatalf("trace: %v", err)
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "streammine: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "streammine: memprofile: %v\n", err)
			}
		}()
	}

	var data []float32
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		data, err = stream.ReadTrace(f)
		if err != nil {
			fatalf("%v", err)
		}
		*n = len(data)
		*dist = "trace:" + *replayPath
	} else {
		data = generate(*dist, *n, *seed)
	}

	eng := gpustream.New(backend)
	mode := "sync"
	switch async.mode {
	case gpustream.AsyncOn:
		mode = "async"
	case gpustream.AsyncAuto:
		mode = "elastic (async auto)"
	}
	fmt.Printf("stream: %d %s values, eps=%g, backend=%v, %s ingestion\n", *n, *dist, *eps, backend, mode)

	if shards.parallel() && *windowSize > 0 {
		fatalf("-shards does not combine with -window (sliding estimators are serial)")
	}
	if *keyed && (*windowSize > 0 || shards.parallel() || async.mode != gpustream.AsyncOff) {
		fatalf("-keyed does not combine with -window, -shards, or -async (the keyed front-end is serial; only its heavy-hitter oracle runs a sorting pipeline)")
	}

	start := time.Now()
	if *keyed {
		runKeyed(eng, data, *nkeys, *keySkew, *eps, *support, *seed, parsePhis(*phis), *top, *snapPath, start)
	} else {
		runSpec(eng, backend, data, *query, *eps, *support, parsePhis(*phis), *windowSize, shards, async.mode, *top, *snapPath, start)
	}

	if *showStats {
		printStats(eng.Stats())
	}

	if b, ok := eng.LastSortBreakdown(); ok {
		fmt.Printf("last GPU sort (modeled 2004 testbed): compute %v, transfer %v, setup %v, merge %v\n",
			b.Compute, b.Transfer, b.Setup, b.Merge)
	}
}

// shardsFlag parses -shards: an integer count (0 = serial, <0 = GOMAXPROCS)
// or "auto" for elastic runtime scaling.
type shardsFlag struct {
	auto bool
	n    int
}

func (f *shardsFlag) String() string {
	if f.auto {
		return "auto"
	}
	return strconv.Itoa(f.n)
}

func (f *shardsFlag) Set(s string) error {
	if strings.EqualFold(strings.TrimSpace(s), "auto") {
		f.auto, f.n = true, 0
		return nil
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return fmt.Errorf("bad shard count %q (want an integer or auto)", s)
	}
	f.auto, f.n = false, n
	return nil
}

// parallel reports whether the flag selects a parallel family at all.
func (f *shardsFlag) parallel() bool { return f.auto || f.n != 0 }

// asyncFlag parses -async as a boolean flag (bare -async means on) that also
// accepts "auto" for controller-owned mode selection.
type asyncFlag struct {
	mode gpustream.AsyncMode
}

func (f *asyncFlag) String() string { return f.mode.String() }

func (f *asyncFlag) Set(s string) error {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "true", "on", "1":
		f.mode = gpustream.AsyncOn
	case "false", "off", "0":
		f.mode = gpustream.AsyncOff
	case "auto":
		f.mode = gpustream.AsyncAuto
	default:
		return fmt.Errorf("bad async mode %q (want on, off, or auto)", s)
	}
	return nil
}

// IsBoolFlag keeps the historical bare `-async` form working.
func (f *asyncFlag) IsBoolFlag() bool { return true }

// specFor maps the flag surface onto the declarative estimator spec — the
// same description a streamd tenant would PUT, so the CLI and the service
// construct identical estimators.
func specFor(query string, backend gpustream.Backend, eps float64, n, windowSize int, shards shardsFlag, async gpustream.AsyncMode) (gpustream.Spec, error) {
	spec := gpustream.Spec{Eps: eps, Backend: backend, Async: async}
	switch query {
	case "frequency":
		switch {
		case shards.parallel():
			spec.Family = gpustream.FamilyParallelFrequency
		case windowSize > 0:
			spec.Family = gpustream.FamilySlidingFrequency
		default:
			spec.Family = gpustream.FamilyFrequency
		}
	case "quantile":
		switch {
		case shards.parallel():
			spec.Family = gpustream.FamilyParallelQuantile
			spec.Capacity = int64(n)
		case windowSize > 0:
			spec.Family = gpustream.FamilySlidingQuantile
		default:
			spec.Family = gpustream.FamilyQuantile
			spec.Capacity = int64(n)
		}
	default:
		return spec, fmt.Errorf("unknown query %q", query)
	}
	if spec.Family.Sliding() {
		spec.Window = windowSize
	}
	if spec.Family.Parallel() {
		switch {
		case shards.auto:
			spec.Shards = gpustream.ShardsAuto
		case shards.n > 0:
			spec.Shards = gpustream.ShardCount(shards.n) // <0 stays 0 in the spec: GOMAXPROCS
		}
	}
	return spec, spec.Validate()
}

// runSpec builds the estimator described by the flags via the declarative
// spec path, ingests the stream, and answers the query from the final
// snapshot view. Family-specific reporting (shard breakdowns, phase times)
// is recovered by interface assertion rather than concrete types.
func runSpec(eng *gpustream.Engine[float32], backend gpustream.Backend, data []float32, query string, eps, support float64, probes []float64, windowSize int, shards shardsFlag, async gpustream.AsyncMode, top int, snapPath string, start time.Time) {
	spec, err := specFor(query, backend, eps, len(data), windowSize, shards, async)
	if err != nil {
		fatalf("%v", err)
	}
	est, err := eng.NewFromSpec(spec)
	if err != nil {
		fatalf("%v", err)
	}
	if err := est.ProcessSlice(data); err != nil {
		fatalf("%v", err)
	}
	if err := est.Close(); err != nil {
		fatalf("%v", err)
	}
	snap := est.Snapshot()

	scope := "whole stream"
	if spec.Family.Sliding() {
		scope = fmt.Sprintf("last %d elements", windowSize)
	}
	switch query {
	case "frequency":
		items, _ := snap.HeavyHitters(support)
		fmt.Printf("processed in %v; %d summary entries; heavy hitters over %s (support %g):\n",
			time.Since(start), snap.Size(), scope, support)
		printItems(items, top)
	case "quantile":
		fmt.Printf("processed in %v; %d summary entries; quantiles over %s:\n",
			time.Since(start), snap.Size(), scope)
		for _, phi := range probes {
			v, _ := snap.Quantile(phi)
			fmt.Printf("  phi=%.3f -> %v\n", phi, v)
		}
	}

	type sharded interface {
		Shards() int
		ModeledTime(perfmodel.Model, perfmodel.Backend) perfmodel.PipelineBreakdown
	}
	if sh, ok := est.(sharded); ok {
		printSharded(sh.ModeledTime(eng.Model(), backend.PipelineBackend()), sh.Shards())
	} else if !spec.Family.Sliding() {
		printPhases(est.Stats())
	}
	writeSnapshot(snapPath, est)
}

// runKeyed drives the keyed front-end: values from the configured value
// distribution paired with zipf-distributed uint64 keys, so the heavy head
// of the key space promotes to dedicated GK summaries while the long tail
// stays in the pooled frugal tier.
func runKeyed(eng *gpustream.Engine[float32], vals []float32, nkeys int, skew, eps, support float64, seed uint64, probes []float64, top int, snapPath string, start time.Time) {
	n := len(vals)
	if nkeys <= 0 {
		nkeys = n/1000 + 10
	}
	keys := stream.ZipfOf[uint64](n, skew, nkeys, seed+1)
	ke := gpustream.NewKeyedEstimator[uint64](eng, eps, support, gpustream.WithKeyedSeed(seed))
	if err := ke.ProcessSlice(keys, vals); err != nil {
		fatalf("%v", err)
	}
	if err := ke.Flush(); err != nil {
		fatalf("%v", err)
	}
	st := ke.TierStats()
	fmt.Printf("processed %d keyed observations in %v; %d distinct keys (skew %g over %d)\n",
		n, time.Since(start), st.Keys, skew, nkeys)
	fmt.Printf("tiers: %d frugal, %d promoted; %d promotions, rate %.4f\n",
		st.FrugalKeys, st.PromotedKeys, st.Promotions, st.PromotionRate)
	heavy := ke.HeavyKeys(support)
	fmt.Printf("heavy keys (support %g):\n", support)
	for i, it := range heavy {
		if i >= top {
			fmt.Printf("  ... and %d more\n", len(heavy)-top)
			break
		}
		fmt.Printf("  key %d: freq >= %d, quantiles", it.Value, it.Freq)
		for _, phi := range probes {
			if v, ok := ke.Quantile(it.Value, phi); ok {
				fmt.Printf(" %.3f->%v", phi, v)
			}
		}
		fmt.Println()
	}
	if snapPath != "" {
		blob, err := gpustream.MarshalKeyedSnapshot(ke.Snapshot())
		if err != nil {
			fatalf("snapshot: %v", err)
		}
		if err := os.WriteFile(snapPath, blob, 0o644); err != nil {
			fatalf("snapshot: %v", err)
		}
		fmt.Printf("snapshot: wrote %d bytes to %s (keyed family; merge with snapmerge -keytype uint64)\n", len(blob), snapPath)
	}
}

// writeSnapshot marshals est's final snapshot in the binary wire format to
// path, so a downstream snapmerge (or any process) can merge it with other
// partitions' snapshots. No-op when path is empty.
func writeSnapshot(path string, est gpustream.Estimator[float32]) {
	if path == "" {
		return
	}
	blob, err := gpustream.MarshalSnapshot(est.Snapshot())
	if err != nil {
		fatalf("snapshot: %v", err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fatalf("snapshot: %v", err)
	}
	fmt.Printf("snapshot: wrote %d bytes to %s\n", len(blob), path)
}

func generate(dist string, n int, seed uint64) []float32 {
	switch dist {
	case "zipf":
		return stream.Zipf(n, 1.1, n/100+10, seed)
	case "uniform":
		return stream.Uniform(n, seed)
	case "gauss":
		return stream.Gaussian(n, 0, 1, seed)
	case "bursty":
		return stream.Bursty(n, n/100+10, 1000, 0.001, seed)
	}
	fatalf("unknown distribution %q", dist)
	return nil
}

func printItems(items []gpustream.Item[float32], top int) {
	for i, it := range items {
		if i >= top {
			fmt.Printf("  ... and %d more\n", len(items)-top)
			return
		}
		fmt.Printf("  value %v: freq >= %d\n", it.Value, it.Freq)
	}
}

func printSharded(bd perfmodel.PipelineBreakdown, shards int) {
	fmt.Printf("modeled %d-shard pipeline (2004 testbed): sort %v, merge %v, compress %v\n",
		shards, bd.Sort, bd.Merge, bd.Compress)
}

// printPhases is the one-line phase report of the serial estimators,
// extended with the measured co-processing overlap when the staged executor
// ran.
func printPhases(t gpustream.Stats) {
	fmt.Printf("phase time: sort %v, merge %v, compress %v", t.Sort, t.Merge, t.Compress)
	if t.Overlap > 0 || t.Stall > 0 {
		fmt.Printf(", overlap %v, stall %v", t.Overlap, t.Stall)
	}
	fmt.Println()
}

// printStats reports the unified per-stage telemetry of every estimator the
// engine created, one line of counters and one of measured wall clock each.
func printStats(all []gpustream.EstimatorStats) {
	fmt.Println("pipeline stats (measured host time):")
	for _, es := range all {
		st := es.Stats
		fmt.Printf("  %-18s windows=%d sorted=%d mergeOps=%d compressOps=%d\n",
			es.Kind, st.Windows, st.SortedValues, st.MergeOps, st.CompressOps)
		fmt.Printf("  %-18s sort=%v merge=%v compress=%v idle=%v total=%v\n",
			"", st.Sort, st.Merge, st.Compress, st.Idle, st.Total())
		if st.Overlap > 0 || st.Stall > 0 || st.MaxInFlight > 0 {
			fmt.Printf("  %-18s overlap=%v stall=%v maxInFlight=%d\n",
				"", st.Overlap, st.Stall, st.MaxInFlight)
		}
		if es.Backend != "" {
			mode := "sync"
			if es.Async {
				mode = "async"
			}
			fmt.Printf("  %-18s backend=%s window=%d mode=%s", "", es.Backend, es.Window, mode)
			if es.Shards > 0 {
				fmt.Printf(" shards=%d", es.Shards)
			}
			fmt.Println()
		}
		if es.Tuning != nil {
			d := es.Tuning
			fmt.Printf("  %-18s tuning: phase=%s selected=%s window=%d switches=%d",
				"", d.Phase, d.Backend, d.Window, d.Switches)
			if d.Async != "" {
				fmt.Printf(" mode=%s", d.Async)
			}
			if d.ShardPhase != "" {
				fmt.Printf(" shards=%d shardPhase=%s rescales=%d", d.Shards, d.ShardPhase, d.Rescales)
			}
			fmt.Println()
		}
		if es.Keyed != nil {
			k := es.Keyed
			fmt.Printf("  %-18s keys=%d frugal=%d promoted=%d promotions=%d rate=%.4f\n",
				"", k.Keys, k.FrugalKeys, k.PromotedKeys, k.Promotions, k.PromotionRate)
		}
	}
}

func parsePhis(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 || v > 1 {
			fatalf("bad phi %q", part)
		}
		out = append(out, v)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "streammine: "+format+"\n", args...)
	os.Exit(2)
}
