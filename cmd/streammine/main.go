// Command streammine runs epsilon-approximate stream-mining queries over a
// synthetic data stream, exercising the full public API: frequency and
// quantile estimation over the whole history or over a sliding window, on
// any sorting backend.
//
// Usage:
//
//	streammine -query frequency -n 10000000 -eps 0.0001 -support 0.001
//	streammine -query quantile  -n 10000000 -eps 0.001 -phis 0.25,0.5,0.75
//	streammine -query frequency -window 100000 ...   (sliding window)
//	streammine -backend cpu ...                       (default gpu)
//	streammine -shards 4 ...                          (parallel ingestion;
//	                                                   -shards -1 = GOMAXPROCS)
//	streammine -stats ...                             (per-stage pipeline report)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gpustream"
	"gpustream/internal/perfmodel"
	"gpustream/internal/stream"
)

func main() {
	query := flag.String("query", "frequency", "query type: frequency|quantile")
	n := flag.Int("n", 1_000_000, "stream length")
	eps := flag.Float64("eps", 0.001, "approximation error")
	support := flag.Float64("support", 0.01, "frequency query support threshold")
	phis := flag.String("phis", "0.01,0.25,0.5,0.75,0.99", "quantile probes")
	dist := flag.String("dist", "zipf", "stream distribution: zipf|uniform|gauss|bursty")
	backendName := flag.String("backend", "gpu", "sorting backend: gpu|gpu-bitonic|cpu|cpu-parallel")
	windowSize := flag.Int("window", 0, "sliding window size (0 = whole stream)")
	shards := flag.Int("shards", 0, "parallel ingestion shards (0 = serial, <0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 1, "generator seed")
	tracePath := flag.String("trace", "", "replay this trace file instead of generating")
	top := flag.Int("top", 10, "max frequency items to print")
	showStats := flag.Bool("stats", false, "print the per-stage pipeline telemetry report")
	flag.Parse()

	backend, err := gpustream.ParseBackend(*backendName)
	if err != nil {
		fatalf("%v", err)
	}

	var data []float32
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		data, err = stream.ReadTrace(f)
		if err != nil {
			fatalf("%v", err)
		}
		*n = len(data)
		*dist = "trace:" + *tracePath
	} else {
		data = generate(*dist, *n, *seed)
	}

	eng := gpustream.New(backend)
	fmt.Printf("stream: %d %s values, eps=%g, backend=%v\n", *n, *dist, *eps, backend)

	if *shards != 0 && *windowSize > 0 {
		fatalf("-shards does not combine with -window (sliding estimators are serial)")
	}

	start := time.Now()
	switch *query {
	case "frequency":
		if *shards != 0 {
			est := eng.NewParallelFrequencyEstimator(*eps, *shards)
			est.ProcessSlice(data)
			est.Close()
			items := est.Query(*support)
			fmt.Printf("processed in %v across %d shards; %d summary entries; heavy hitters (support %g):\n",
				time.Since(start), est.Shards(), est.SummarySize(), *support)
			printItems(items, *top)
			printSharded(est.ModeledTime(eng.Model(), backend.PipelineBackend()), est.Shards())
		} else if *windowSize > 0 {
			est := eng.NewSlidingFrequency(*eps, *windowSize)
			est.ProcessSlice(data)
			items := est.Query(*support)
			fmt.Printf("processed in %v; heavy hitters over last %d elements (support %g):\n",
				time.Since(start), *windowSize, *support)
			printWindowItems(items, *top)
		} else {
			est := eng.NewFrequencyEstimator(*eps)
			est.ProcessSlice(data)
			items := est.Query(*support)
			fmt.Printf("processed in %v; %d summary entries; heavy hitters (support %g):\n",
				time.Since(start), est.SummarySize(), *support)
			printItems(items, *top)
			t := est.Stats()
			fmt.Printf("phase time: sort %v, merge %v, compress %v\n", t.Sort, t.Merge, t.Compress)
		}
	case "quantile":
		probes := parsePhis(*phis)
		if *shards != 0 {
			est := eng.NewParallelQuantileEstimator(*eps, int64(*n), *shards)
			est.ProcessSlice(data)
			est.Close()
			fmt.Printf("processed in %v across %d shards; %d summary entries; quantiles:\n",
				time.Since(start), est.Shards(), est.SummaryEntries())
			for _, phi := range probes {
				fmt.Printf("  phi=%.3f -> %v\n", phi, est.Query(phi))
			}
			printSharded(est.ModeledTime(eng.Model(), backend.PipelineBackend()), est.Shards())
		} else if *windowSize > 0 {
			est := eng.NewSlidingQuantile(*eps, *windowSize)
			est.ProcessSlice(data)
			fmt.Printf("processed in %v; quantiles over last %d elements:\n",
				time.Since(start), *windowSize)
			for _, phi := range probes {
				fmt.Printf("  phi=%.3f -> %v\n", phi, est.Query(phi))
			}
		} else {
			est := eng.NewQuantileEstimator(*eps, int64(*n))
			est.ProcessSlice(data)
			fmt.Printf("processed in %v; %d summary entries in %d buckets; quantiles:\n",
				time.Since(start), est.SummaryEntries(), est.Buckets())
			for _, phi := range probes {
				fmt.Printf("  phi=%.3f -> %v\n", phi, est.Query(phi))
			}
			t := est.Stats()
			fmt.Printf("phase time: sort %v, merge %v, compress %v\n", t.Sort, t.Merge, t.Compress)
		}
	default:
		fatalf("unknown query %q", *query)
	}

	if *showStats {
		printStats(eng.Stats())
	}

	if b, ok := eng.LastSortBreakdown(); ok {
		fmt.Printf("last GPU sort (modeled 2004 testbed): compute %v, transfer %v, setup %v, merge %v\n",
			b.Compute, b.Transfer, b.Setup, b.Merge)
	}
}

func generate(dist string, n int, seed uint64) []float32 {
	switch dist {
	case "zipf":
		return stream.Zipf(n, 1.1, n/100+10, seed)
	case "uniform":
		return stream.Uniform(n, seed)
	case "gauss":
		return stream.Gaussian(n, 0, 1, seed)
	case "bursty":
		return stream.Bursty(n, n/100+10, 1000, 0.001, seed)
	}
	fatalf("unknown distribution %q", dist)
	return nil
}

func printItems(items []gpustream.Item[float32], top int) {
	for i, it := range items {
		if i >= top {
			fmt.Printf("  ... and %d more\n", len(items)-top)
			return
		}
		fmt.Printf("  value %v: freq >= %d\n", it.Value, it.Freq)
	}
}

func printSharded(bd perfmodel.PipelineBreakdown, shards int) {
	fmt.Printf("modeled %d-shard pipeline (2004 testbed): sort %v, merge %v, compress %v\n",
		shards, bd.Sort, bd.Merge, bd.Compress)
}

// printStats reports the unified per-stage telemetry of every estimator the
// engine created, one line of counters and one of measured wall clock each.
func printStats(all []gpustream.EstimatorStats) {
	fmt.Println("pipeline stats (measured host time):")
	for _, es := range all {
		st := es.Stats
		fmt.Printf("  %-18s windows=%d sorted=%d mergeOps=%d compressOps=%d\n",
			es.Kind, st.Windows, st.SortedValues, st.MergeOps, st.CompressOps)
		fmt.Printf("  %-18s sort=%v merge=%v compress=%v idle=%v total=%v\n",
			"", st.Sort, st.Merge, st.Compress, st.Idle, st.Total())
	}
}

func printWindowItems(items []gpustream.WindowItem[float32], top int) {
	for i, it := range items {
		if i >= top {
			fmt.Printf("  ... and %d more\n", len(items)-top)
			return
		}
		fmt.Printf("  value %v: freq ~ %d\n", it.Value, it.Freq)
	}
}

func parsePhis(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 || v > 1 {
			fatalf("bad phi %q", part)
		}
		out = append(out, v)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "streammine: "+format+"\n", args...)
	os.Exit(2)
}
