// Command figures regenerates every table and figure of the paper's
// evaluation (Figures 3-7 and the Section 5.3 sliding-window experiment).
//
// For each figure it prints the same series the paper plots. Two kinds of
// numbers appear:
//
//   - model: time on the paper's testbed (GeForce 6800 Ultra + 3.4 GHz
//     Pentium IV + AGP 8X) predicted by the perfmodel from exact operation
//     counts. These are the columns to compare against the paper's plots.
//   - host: wall time measured on this machine while actually executing the
//     pipelines against the GPU simulator, at a reduced scale (the simulator
//     is faithful, not fast). Reported for transparency.
//
// Usage:
//
//	figures [-fig N] [-scale M] [-measure]
//
//	-fig 0      regenerate all figures (default)
//	-scale      stream scale divisor for measured runs (default 50:
//	            100M-element experiments run on 2M elements)
//	-measure    also run host measurements where they are slow (Fig 3/4
//	            measured columns at the largest sizes)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"gpustream"
	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/perfmodel"
	"gpustream/internal/stream"
)

const paperStream = 100_000_000 // the paper's 100M-element streams

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (3-10; 9 = growth projection, 10 = sustained throughput), 0 = all")
	scale := flag.Int("scale", 50, "divisor applied to the paper's 100M stream for measured runs")
	measure := flag.Bool("measure", false, "run slow host measurements too")
	async := flag.Bool("async", false, "run host measurements with staged asynchronous ingestion and report measured overlap")
	backendsFlag := flag.String("backends", "gpu,cpu,samplesort", "comma-separated sorting backends for the measured sliding-window runs: gpu|gpu-bitonic|cpu|cpu-parallel|samplesort|auto")
	flag.Parse()

	if *scale < 1 {
		fmt.Fprintln(os.Stderr, "figures: -scale must be >= 1")
		os.Exit(2)
	}
	var backends []gpustream.Backend
	for _, name := range strings.Split(*backendsFlag, ",") {
		b, err := gpustream.ParseBackend(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(2)
		}
		backends = append(backends, b)
	}
	run := func(n int) bool { return *fig == 0 || *fig == n }
	if run(3) {
		figure3(*measure)
	}
	if run(4) {
		figure4()
	}
	if run(5) {
		figure5(*scale, *async)
	}
	if run(6) {
		figure6(*scale)
	}
	if run(7) {
		figure7(*scale, *async)
	}
	if run(8) {
		figure8(*scale, backends, *async)
	}
	if run(9) {
		figure9()
	}
	if run(10) {
		figure10(*scale, *async)
	}
}

func newTable(header string) *tabwriter.Writer {
	fmt.Println(header)
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
}

func ms(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000) }
func sec(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

// figure3 prints sorting time versus input size for the five sorters,
// including the O(n log n) sample sort whose modeled curve crosses the
// PBSN's O(n log^2 n) one as n grows.
func figure3(measure bool) {
	model := perfmodel.Default()
	fmt.Println("== Figure 3: sorting time vs n (model ms on 2004 testbed) ==")
	w := newTable("   our GPU PBSN vs prior GPU bitonic vs CPU quicksorts vs sample sort")
	fmt.Fprintln(w, "n\tgpu-pbsn\tgpu-bitonic\tcpu-intel-ht\tcpu-msvc\tsamplesort\tbitonic/pbsn\tpbsn/samplesort\t")
	for n := 16 << 10; n <= 8<<20; n <<= 1 {
		pbsn := model.PBSNSortTime(n).Total()
		bit := model.BitonicSortTime(n).Total()
		intel := model.QuicksortTime(n, perfmodel.IntelHT)
		msvc := model.QuicksortTime(n, perfmodel.MSVC)
		smp := model.SampleSortTime(n)
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%s\t%.1fx\t%.1fx\t\n",
			n, ms(pbsn), ms(bit), ms(intel), ms(msvc), ms(smp),
			float64(bit)/float64(pbsn), float64(pbsn)/float64(smp))
	}
	w.Flush()

	if measure {
		fmt.Println("   host wall time (simulator executes the real routines; reduced sizes)")
		w = newTable("")
		fmt.Fprintln(w, "n\tgpu-pbsn-sim\tcpu-quicksort\tcpu-quicksort-ht\t")
		for _, n := range []int{1 << 16, 1 << 18, 1 << 20} {
			data := stream.Uniform(n, uint64(n))
			buf := make([]float32, n)

			s := gpusort.NewSorter[float32]()
			copy(buf, data)
			t0 := time.Now()
			s.Sort(buf)
			gpuT := time.Since(t0)

			copy(buf, data)
			t0 = time.Now()
			cpusort.Quicksort(buf)
			cpuT := time.Since(t0)

			copy(buf, data)
			t0 = time.Now()
			cpusort.ParallelQuicksort(buf, 2)
			htT := time.Since(t0)

			fmt.Fprintf(w, "%d\t%s\t%s\t%s\t\n", n, ms(gpuT), ms(cpuT), ms(htT))
		}
		w.Flush()
	}
	fmt.Println()
}

// figure4 prints the GPU sort decomposition and the O(n log^2 n) estimate
// anchored at 8M, as the paper's Figure 4 does.
func figure4() {
	model := perfmodel.Default()
	fmt.Println("== Figure 4: GPU sort breakdown (model ms) and O(n log^2 n) scaling check ==")
	w := newTable("")
	fmt.Fprintln(w, "n\tcompute\ttransfer\tsetup\tcpu-merge\ttotal\testimate-from-8M\t")
	anchorN := 8 << 20
	anchor := model.PBSNSortTime(anchorN)
	cost := func(n int) float64 {
		l := 0.0
		for v := 1; v < n/4; v <<= 1 {
			l++
		}
		return float64(n) * l * l
	}
	for n := 16 << 10; n <= 8<<20; n <<= 1 {
		b := model.PBSNSortTime(n)
		est := time.Duration(float64(anchor.Compute) * cost(n) / cost(anchorN))
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
			n, ms(b.Compute), ms(b.Transfer), ms(b.Setup), ms(b.Merge), ms(b.Total()), ms(est))
	}
	w.Flush()
	fmt.Println("   (transfer stays far below compute: the CPU<->GPU bus is not the bottleneck)")
	fmt.Println()
}

// measureCounts runs a frequency or quantile pipeline at reduced scale on
// the (fast) CPU backend and extrapolates its operation counts to the
// paper's 100M-element stream. The counters are backend-independent, so one
// measured run feeds both the GPU and CPU cost models — additive and
// overlapped alike. The measured host wall clock and staged-executor overlap
// (nonzero only with async) are returned unscaled.
func measureCounts(eps float64, scale int, quantile, async bool) (gpustream.Stats, time.Duration) {
	n := paperStream / scale
	if minN := int(4 / eps); n < minN {
		n = minN // keep at least a few windows at tiny eps
	}
	data := stream.UniformInts(n, 1<<22, uint64(n))
	eng := gpustream.New(gpustream.BackendCPU)
	var eopts []gpustream.EstimatorOption
	if async {
		eopts = append(eopts, gpustream.WithAsyncIngestion())
	}

	var counts gpustream.Stats
	var hostTime time.Duration
	if quantile {
		est := eng.NewQuantileEstimator(eps, int64(n), eopts...)
		t0 := time.Now()
		est.ProcessSlice(data)
		_ = est.Query(0.5)
		hostTime = time.Since(t0)
		counts = est.Stats()
		est.Close()
	} else {
		est := eng.NewFrequencyEstimator(eps, eopts...)
		t0 := time.Now()
		est.ProcessSlice(data)
		est.Flush()
		hostTime = time.Since(t0)
		counts = est.Stats()
		est.Close()
	}
	// Counts scale linearly with stream length; the measured durations
	// (including Overlap/Stall) are left at host scale.
	factor := float64(paperStream) / float64(n)
	counts.Windows = int64(float64(counts.Windows) * factor)
	counts.SortedValues = int64(float64(counts.SortedValues) * factor)
	counts.MergeOps = int64(float64(counts.MergeOps) * factor)
	counts.CompressOps = int64(float64(counts.CompressOps) * factor)
	return counts, hostTime
}

// figure5 prints frequency-estimation pipeline time, GPU vs CPU, across eps.
// gpu-async is the overlapped closed form: merge/compress hidden behind the
// sort stage, the paper's co-processing schedule.
func figure5(scale int, async bool) {
	fmt.Println("== Figure 5: frequency estimation over a 100M stream (model s on 2004 testbed) ==")
	model := perfmodel.Default()
	w := newTable("")
	fmt.Fprintln(w, "eps\twindow\tgpu-total\tgpu-async\tcpu-total\tgpu/cpu\thost-ms(cpu,scaled)\thost-overlap-ms\t")
	for _, eps := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6} {
		counts, host := measureCounts(eps, scale, false, async)
		cpuSide := model.PipelineTime(counts, perfmodel.BackendCPU)
		gpuSide := model.PipelineTime(counts, perfmodel.BackendGPU)
		gpuOv := model.OverlappedPipelineTime(counts, perfmodel.BackendGPU)
		fmt.Fprintf(w, "%g\t%d\t%s\t%s\t%s\t%.2fx\t%s\t%s\t\n",
			eps, int(1/eps), sec(gpuSide.Total()), sec(gpuOv.Total()), sec(cpuSide.Total()),
			float64(gpuSide.Total())/float64(cpuSide.Total()), ms(host), ms(counts.Overlap))
	}
	w.Flush()
	fmt.Println("   (GPU wins at large windows / small eps; per-sort setup dominates tiny windows;")
	fmt.Println("    gpu-async hides merge+compress behind sorting, the paper's co-processing claim)")
	fmt.Println()
}

// figure6 prints the per-operation cost breakdown of the frequency summary.
func figure6(scale int) {
	fmt.Println("== Figure 6: cost of summary operations (measured host shares, CPU backend) ==")
	w := newTable("")
	fmt.Fprintln(w, "eps\twindow\tsort%\tmerge%\tcompress%\thost-total-ms\t")
	for _, eps := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6} {
		n := paperStream / scale
		if minN := int(4 / eps); n < minN {
			n = minN
		}
		data := stream.UniformInts(n, 1<<22, uint64(n))
		est := gpustream.New(gpustream.BackendCPU).NewFrequencyEstimator(eps)
		est.ProcessSlice(data)
		est.Flush()
		t := est.Stats()
		tot := float64(t.Total())
		fmt.Fprintf(w, "%g\t%d\t%.0f\t%.0f\t%.0f\t%s\t\n",
			eps, est.WindowSize(),
			100*float64(t.Sort)/tot, 100*float64(t.Merge)/tot, 100*float64(t.Compress)/tot,
			ms(t.Total()))
	}
	w.Flush()
	fmt.Println("   (sorting dominates, as in the paper's 70-95% claim)")
	fmt.Println()
}

// figure7 prints quantile-estimation pipeline time, GPU vs CPU, across eps.
func figure7(scale int, async bool) {
	fmt.Println("== Figure 7: quantile estimation over a 100M stream (model s on 2004 testbed) ==")
	model := perfmodel.Default()
	w := newTable("")
	fmt.Fprintln(w, "eps\twindow\tgpu-total\tgpu-async\tcpu-total\tgpu/cpu\thost-ms(cpu,scaled)\thost-overlap-ms\t")
	for _, eps := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6} {
		counts, host := measureCounts(eps, scale, true, async)
		cpuSide := model.PipelineTime(counts, perfmodel.BackendCPU)
		gpuSide := model.PipelineTime(counts, perfmodel.BackendGPU)
		gpuOv := model.OverlappedPipelineTime(counts, perfmodel.BackendGPU)
		fmt.Fprintf(w, "%g\t%d\t%s\t%s\t%s\t%.2fx\t%s\t%s\t\n",
			eps, int(1/eps), sec(gpuSide.Total()), sec(gpuOv.Total()), sec(cpuSide.Total()),
			float64(gpuSide.Total())/float64(cpuSide.Total()), ms(host), ms(counts.Overlap))
	}
	w.Flush()
	fmt.Println("   (GPU comparable to CPU; CPU ahead at small windows that fit its L2 cache)")
	fmt.Println()
}

// figure8 prints the sliding-window experiment (Section 5.3).
func figure8(scale int, backends []gpustream.Backend, async bool) {
	fmt.Println("== Section 5.3: sliding-window queries (measured host ms at reduced scale) ==")
	n := paperStream / (scale * 10)
	if n < 1<<20 {
		n = 1 << 20
	}
	data := stream.Zipf(n, 1.1, 1<<18, 77)
	var eopts []gpustream.EstimatorOption
	if async {
		eopts = append(eopts, gpustream.WithAsyncIngestion())
	}
	w := newTable("")
	fmt.Fprintln(w, "window\tquery\tbackend\thost-ms\toverlap-ms\tsorted-values\t")
	for _, win := range []int{100_000, 400_000, 1_600_000} {
		if win > n {
			continue
		}
		for _, backend := range backends {
			eng := gpustream.New(backend)
			sf := eng.NewSlidingFrequency(0.001, win, eopts...)
			t0 := time.Now()
			sf.ProcessSlice(data)
			_ = sf.Query(0.01)
			fT := time.Since(t0)
			fmt.Fprintf(w, "%d\tfrequency\t%v\t%s\t%s\t%d\t\n",
				win, backend, ms(fT), ms(sf.Stats().Overlap), sf.SortedValues())
			sf.Close()

			sq := eng.NewSlidingQuantile(0.001, win, eopts...)
			t0 = time.Now()
			sq.ProcessSlice(data)
			_ = sq.Query(0.5)
			qT := time.Since(t0)
			fmt.Fprintf(w, "%d\tquantile\t%v\t%s\t%s\t%d\t\n",
				win, backend, ms(qT), ms(sq.Stats().Overlap), sq.SortedValues())
			sq.Close()
		}
	}
	w.Flush()
	fmt.Println("   (per-pane sorting again dominates; larger windows favor the GPU backend)")
	fmt.Println()
}

// figure9 prints the Section 4.5 projection: GPU performance grows 2-3x a
// year versus Moore's-law CPUs, so the sorting gap widens over future
// hardware generations.
func figure9() {
	fmt.Println("== Section 4.5 projection: GPU vs CPU sorting gap over future generations ==")
	base := perfmodel.Default()
	rates := perfmodel.PaperGrowthRates()
	n := 8 << 20
	w := newTable("")
	fmt.Fprintln(w, "years-after-2005\tgpu-pbsn-ms\tcpu-intel-ms\tcpu/gpu\t")
	for _, years := range []float64{0, 1, 2, 3, 4, 5} {
		m := base.Project(years, rates)
		gpu := m.PBSNSortTime(n).Total()
		cpu := m.QuicksortTime(n, perfmodel.IntelHT)
		fmt.Fprintf(w, "%.0f\t%s\t%s\t%.1fx\t\n", years, ms(gpu), ms(cpu), float64(cpu)/float64(gpu))
	}
	w.Flush()
	fmt.Println("   (assumes GPU 2.0x/yr, CPU 1.5x/yr, bus 1.3x/yr; paper quotes GPUs at 2-3x/yr)")
	fmt.Println()
}

// figure10 answers the introduction's motivating question — can the system
// keep up with the stream's update rate? — as sustained throughput
// (million elements/second on the 2004 testbed) of the frequency pipeline
// per backend and epsilon.
func figure10(scale int, async bool) {
	fmt.Println("== Throughput: sustained stream rate (model M elements/s, 2004 testbed) ==")
	model := perfmodel.Default()
	w := newTable("")
	fmt.Fprintln(w, "eps\twindow\tgpu-Melem/s\tgpu-async-Melem/s\tcpu-Melem/s\tasync-speedup\t")
	rate := func(total time.Duration) float64 {
		if total <= 0 {
			return 0
		}
		return paperStream / total.Seconds() / 1e6
	}
	for _, eps := range []float64{1e-3, 1e-4, 1e-5, 1e-6} {
		counts, _ := measureCounts(eps, scale, false, async)
		cpuSide := model.PipelineTime(counts, perfmodel.BackendCPU)
		gpuSide := model.PipelineTime(counts, perfmodel.BackendGPU)
		gpuOv := model.OverlappedPipelineTime(counts, perfmodel.BackendGPU)
		fmt.Fprintf(w, "%g\t%d\t%.1f\t%.1f\t%.1f\t%.2fx\t\n", eps, int(1/eps),
			rate(gpuSide.Total()), rate(gpuOv.Total()), rate(cpuSide.Total()), gpuOv.Speedup())
	}
	w.Flush()
	fmt.Println("   (the co-processor keeps the DSMS ahead of gigabit-class update rates at realistic eps;")
	fmt.Println("    gpu-async is the overlapped schedule — sort hides merge/compress, Section 4.2)")
	fmt.Println()
}
