// Command streamload is the load-test driver for streamd: it creates
// tenants × streams estimator streams, POSTs zipf-distributed batches from
// a worker pool, and reports sustained rows/sec plus p50/p99/max request
// latency. Every request is checked; the exit status is non-zero if any
// fails, so it doubles as an end-to-end smoke test.
//
//	streamload -addr http://127.0.0.1:8080 -tenants 100 -streams 4 -batch 500 -batches 20
//
// With -inproc it spins the service up in-process on a loopback listener,
// runs the load, and drains — no separate daemon needed (CI smoke mode).
//
// With -ramp the offered rate phase-shifts mid-run — the first and last
// thirds of the run are paced at a trickle, the middle third goes full
// throttle — so the elastic runtime knobs (-elastic: "async":"auto" plus,
// for the parallel families, "shards":"auto") see both regimes on one
// stream and have to move mid-ingest.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpustream"
	"gpustream/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "streamd base URL")
		inproc   = flag.Bool("inproc", false, "run the service in-process on a loopback listener instead of dialing -addr")
		tenants  = flag.Int("tenants", 100, "number of tenants")
		streams  = flag.Int("streams", 4, "streams per tenant")
		batch    = flag.Int("batch", 500, "rows per POST batch")
		batches  = flag.Int("batches", 20, "batches per stream (ignored when -duration is set)")
		duration = flag.Duration("duration", 0, "run for a fixed wall-clock time instead of a fixed batch count")
		workers  = flag.Int("workers", 8, "concurrent request workers")
		skew     = flag.Float64("skew", 1.2, "zipf skew of the generated values (>1)")
		card     = flag.Uint64("cardinality", 1<<14, "zipf value cardinality")
		family   = flag.String("family", "quantile", "estimator family for every stream (any gpustream family name)")
		eps      = flag.Float64("eps", 0.01, "estimator eps")
		useBin   = flag.Bool("binary", false, "POST binary little-endian float32 rows instead of JSON")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		elastic  = flag.Bool("elastic", false, "request elastic concurrency in every stream spec: async \"auto\", plus shards \"auto\" for the parallel families")
		ramp     = flag.Bool("ramp", false, "phase-shifting load: pace the first and last thirds of the run at a trickle, full throttle in between")
		rampGap  = flag.Duration("rampgap", 2*time.Millisecond, "pause inserted between batch rounds during the trickle phases of -ramp")
	)
	flag.Parse()

	fam, err := gpustream.ParseFamily(*family)
	if err != nil {
		log.Fatal(err)
	}
	spec := gpustream.Spec{Family: fam, Eps: *eps}
	if fam == gpustream.FamilyFrugal {
		spec.Eps = 0
	}
	if *elastic {
		if fam == gpustream.FamilyFrugal {
			log.Fatal("streamload: -elastic does not apply to the frugal family (it never sorts)")
		}
		spec.Async = gpustream.AsyncAuto
		if fam.Parallel() {
			spec.Shards = gpustream.ShardsAuto
		}
	}
	if spec.Family.AnswersFrequencies() {
		spec.Support = 0.01
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	base := *addr
	var svc *service.Server[float32]
	if *inproc {
		svc = service.New[float32](service.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = (&http.Server{Handler: svc}).Serve(ln) }()
		base = "http://" + ln.Addr().String()
		log.Printf("streamload: in-process service on %s", base)
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *workers}}

	r := newRunner(client, base, spec, *batch, *skew, *card, *useBin, *seed)
	if *ramp {
		r.rampGap = *rampGap
	}
	if err := r.createStreams(*tenants, *streams, *workers); err != nil {
		log.Fatal(err)
	}
	log.Printf("streamload: created %d streams (%d tenants x %d), family=%s batch=%d workers=%d elastic=%v ramp=%v",
		*tenants**streams, *tenants, *streams, fam, *batch, *workers, *elastic, *ramp)

	elapsed := r.run(*tenants, *streams, *batches, *duration, *workers)
	rows := r.rows.Load()
	fail := r.failures.Load()
	p50, p99, max := r.percentiles()

	fmt.Printf("streamload: %d requests, %d rows in %.2fs\n", r.requests.Load(), rows, elapsed.Seconds())
	fmt.Printf("  throughput  %.0f rows/sec (%.0f req/sec)\n",
		float64(rows)/elapsed.Seconds(), float64(r.requests.Load())/elapsed.Seconds())
	fmt.Printf("  latency     p50 %s  p99 %s  max %s\n", p50, p99, max)
	fmt.Printf("  failures    %d\n", fail)

	if err := r.verify(*tenants, *streams); err != nil {
		log.Printf("streamload: verify: %v", err)
		fail++
	}
	if svc != nil {
		if err := svc.Drain(context.Background()); err != nil {
			log.Printf("streamload: drain: %v", err)
			fail++
		}
	}
	if fail != 0 {
		os.Exit(1)
	}
}

// runner owns the load loop: stream naming, batch generation, latency
// accounting.
type runner struct {
	client *http.Client
	base   string
	spec   gpustream.Spec
	batch  int
	skew   float64
	card   uint64
	binary bool
	seed   int64
	// rampGap > 0 enables the phase-shifting load shape: batch rounds in
	// the first and last thirds of the run are spaced by this pause.
	rampGap time.Duration

	requests atomic.Int64
	rows     atomic.Int64
	failures atomic.Int64

	mu        sync.Mutex
	latencies []time.Duration
}

func newRunner(client *http.Client, base string, spec gpustream.Spec, batch int, skew float64, card uint64, binary bool, seed int64) *runner {
	return &runner{client: client, base: base, spec: spec, batch: batch, skew: skew, card: card, binary: binary, seed: seed}
}

func (r *runner) streamURL(tenant, stream int) string {
	return fmt.Sprintf("%s/v1/streams/t%03d/s%d", r.base, tenant, stream)
}

// createStreams PUTs every tenant/stream spec through a small worker pool.
func (r *runner) createStreams(tenants, streams, workers int) error {
	blob, err := json.Marshal(r.spec)
	if err != nil {
		return err
	}
	jobs := make(chan string, workers)
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for url := range jobs {
				req, _ := http.NewRequest("PUT", url, bytes.NewReader(blob))
				req.Header.Set("Content-Type", "application/json")
				resp, err := r.client.Do(req)
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("PUT %s: %w", url, err))
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("PUT %s: status %d", url, resp.StatusCode))
				}
			}
		}()
	}
	for t := 0; t < tenants; t++ {
		for s := 0; s < streams; s++ {
			jobs <- r.streamURL(t, s)
		}
	}
	close(jobs)
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return err
	}
	return nil
}

// run drives the ingest phase and returns the elapsed wall-clock time.
// With duration > 0 workers cycle through the streams until the deadline;
// otherwise each stream receives exactly `batches` batches.
func (r *runner) run(tenants, streams, batches int, duration time.Duration, workers int) time.Duration {
	type job struct{ tenant, stream int }
	jobs := make(chan job, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(r.seed + int64(w)))
			zipf := rand.NewZipf(rng, r.skew, 1, r.card)
			var lat []time.Duration
			for j := range jobs {
				lat = append(lat, r.post(j.tenant, j.stream, rng, zipf))
			}
			r.mu.Lock()
			r.latencies = append(r.latencies, lat...)
			r.mu.Unlock()
		}(w)
	}
	if duration > 0 {
		deadline := time.Now().Add(duration)
		for b := 0; time.Now().Before(deadline); b++ {
			// Under -ramp the trickle covers the first and last thirds of
			// the wall-clock budget.
			into := duration - time.Until(deadline)
			if r.rampGap > 0 && (into < duration/3 || into > 2*duration/3) {
				time.Sleep(r.rampGap)
			}
			for t := 0; t < tenants && time.Now().Before(deadline); t++ {
				for s := 0; s < streams; s++ {
					jobs <- job{t, s}
				}
			}
		}
	} else {
		for b := 0; b < batches; b++ {
			if r.rampGap > 0 && (b < batches/3 || b >= 2*batches/3) {
				time.Sleep(r.rampGap)
			}
			for t := 0; t < tenants; t++ {
				for s := 0; s < streams; s++ {
					jobs <- job{t, s}
				}
			}
		}
	}
	close(jobs)
	wg.Wait()
	return time.Since(start)
}

// post sends one zipf batch and returns the request latency.
func (r *runner) post(tenant, stream int, rng *rand.Rand, zipf *rand.Zipf) time.Duration {
	var body []byte
	contentType := "application/json"
	if r.binary {
		body = make([]byte, 0, 4*r.batch)
		for i := 0; i < r.batch; i++ {
			body = binary.LittleEndian.AppendUint32(body, math.Float32bits(float32(zipf.Uint64())))
		}
		contentType = "application/octet-stream"
	} else {
		vals := make([]float32, r.batch)
		for i := range vals {
			vals[i] = float32(zipf.Uint64())
		}
		body, _ = json.Marshal(vals)
	}
	start := time.Now()
	req, _ := http.NewRequest("POST", r.streamURL(tenant, stream)+"/values", bytes.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	resp, err := r.client.Do(req)
	d := time.Since(start)
	r.requests.Add(1)
	if err != nil {
		r.failures.Add(1)
		return d
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		r.failures.Add(1)
		return d
	}
	r.rows.Add(int64(r.batch))
	return d
}

// verify probes every stream once after the load: the answer endpoint must
// serve 200 with ok results, proving the queues flushed into live
// estimators (not just that POSTs were accepted).
func (r *runner) verify(tenants, streams int) error {
	probe := "/quantile?phi=0.5"
	if r.spec.Family.AnswersFrequencies() {
		probe = "/heavyhitters"
	}
	for t := 0; t < tenants; t++ {
		for s := 0; s < streams; s++ {
			url := r.streamURL(t, s) + probe
			resp, err := r.client.Get(url)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
			}
		}
	}
	return nil
}

func (r *runner) percentiles() (p50, p99, max time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.latencies) == 0 {
		return 0, 0, 0
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	n := len(r.latencies)
	return r.latencies[n/2], r.latencies[min(n-1, n*99/100)], r.latencies[n-1]
}
