// Command benchreport runs the standing performance matrix — ingestion mode
// × query family × element type × stream length — over zipf streams and
// emits one machine-readable JSON report, so performance changes show up as
// diffs in a committed artifact (BENCH_1.json) rather than anecdotes.
//
// Every cell reports measured wall clock (ns/op over the whole ingest,
// including the close barrier that drains staged pipelines), allocation
// rates, the modeled 2004-testbed GPU pipeline breakdown for the same work,
// and the staged executor's measured overlap/stall when asynchronous
// ingestion ran. Cells the engine does not support (sliding estimators are
// serial, so they do not shard) are emitted with supported=false rather than
// silently dropped.
//
// Usage:
//
//	benchreport                                  (full matrix at 1M and 10M)
//	benchreport -sizes 100000 -o /tmp/smoke.json (CI smoke)
//	benchreport -modes serial,async -types float32 ...
//	benchreport -modes elastic -o BENCH_3.json   (elastic concurrency: shards
//	                                              and execution mode owned by
//	                                              the runtime controllers)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gpustream"
	"gpustream/internal/perfmodel"
	"gpustream/internal/stream"
)

// Result is one cell of the benchmark matrix.
type Result struct {
	Backend   string `json:"backend"`
	Mode      string `json:"mode"`
	Query     string `json:"query"`
	Type      string `json:"type"`
	N         int    `json:"n"`
	Window    int    `json:"window,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	Supported bool   `json:"supported"`
	Reason    string `json:"reason,omitempty"`
	// FinalShards and FinalAsync record where the elastic mode's runtime
	// controllers landed by the end of the run; Rescales counts shard-count
	// moves. Zero-valued outside the elastic mode.
	FinalShards int  `json:"final_shards,omitempty"`
	FinalAsync  bool `json:"final_async,omitempty"`
	Rescales    int  `json:"rescales,omitempty"`

	WallNs      int64   `json:"wall_ns,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	MopsPerSec  float64 `json:"mops_per_sec,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	ModeledSortNs     int64 `json:"modeled_sort_ns,omitempty"`
	ModeledMergeNs    int64 `json:"modeled_merge_ns,omitempty"`
	ModeledCompressNs int64 `json:"modeled_compress_ns,omitempty"`
	ModeledTotalNs    int64 `json:"modeled_total_ns,omitempty"`
	OverlapNs         int64 `json:"overlap_ns,omitempty"`
	StallNs           int64 `json:"stall_ns,omitempty"`
}

// Report is the whole emitted artifact. Backend is the comma-joined backend
// list the matrix covered; each Result names its own backend.
type Report struct {
	Backend string   `json:"backend"`
	Eps     float64  `json:"eps"`
	Support float64  `json:"support"`
	Seed    uint64   `json:"seed"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("o", "BENCH_1.json", "write the JSON report to this file")
	sizes := flag.String("sizes", "1000000,10000000", "comma-separated stream lengths")
	modes := flag.String("modes", "serial,sharded,async", "ingestion modes: serial|sharded|async|elastic (elastic = shards:auto + async:auto, runtime-controlled)")
	queries := flag.String("queries", "frequency,quantile,sliding", "query families: frequency|quantile|sliding")
	types := flag.String("types", "float32,uint64", "element types: float32|uint64")
	backendNames := flag.String("backends", "gpu", "comma-separated sorting backends: gpu|gpu-bitonic|cpu|cpu-parallel|samplesort|auto")
	eps := flag.Float64("eps", 0.001, "approximation error")
	support := flag.Float64("support", 0.01, "frequency query support threshold")
	shards := flag.Int("shards", 4, "shard count for the sharded mode")
	seed := flag.Uint64("seed", 1, "zipf generator seed")
	reps := flag.Int("reps", 1, "runs per cell; the fastest is reported (suppresses single-shot noise)")
	flag.Parse()

	var backends []gpustream.Backend
	var joined []string
	for _, name := range splitList(*backendNames) {
		b, err := gpustream.ParseBackend(name)
		if err != nil {
			fatalf("%v", err)
		}
		backends = append(backends, b)
		joined = append(joined, b.String())
	}
	if len(backends) == 0 {
		fatalf("no backends given")
	}

	// Backends iterate innermost so one cell's candidates run back to back:
	// heap growth, page-cache state, and host drift over a long matrix then
	// hit every backend of a cell alike, and per-cell comparisons stay fair.
	rep := Report{Backend: strings.Join(joined, ","), Eps: *eps, Support: *support, Seed: *seed}
	for _, n := range parseSizes(*sizes) {
		for _, mode := range splitList(*modes) {
			for _, query := range splitList(*queries) {
				for _, typ := range splitList(*types) {
					for _, backend := range backends {
						var res Result
						for rep := 0; rep < *reps; rep++ {
							var try Result
							var err error
							switch typ {
							case "float32":
								try, err = runCell[float32](backend, mode, query, typ, n, *eps, *support, *shards, *seed)
							case "uint64":
								try, err = runCell[uint64](backend, mode, query, typ, n, *eps, *support, *shards, *seed)
							default:
								fatalf("unknown element type %q (want float32 or uint64)", typ)
							}
							if err != nil {
								fatalf("%s/%s/%s/%s n=%d: %v", backend, mode, query, typ, n, err)
							}
							if rep == 0 || (try.Supported && try.NsPerOp < res.NsPerOp) {
								res = try
							}
							if !try.Supported {
								break
							}
						}
						rep.Results = append(rep.Results, res)
						if res.Supported {
							fmt.Printf("%-11s %-8s %-10s %-8s n=%-9d %8.1f ns/op %7.2f Mops/s\n",
								backend, mode, query, typ, n, res.NsPerOp, res.MopsPerSec)
						} else {
							fmt.Printf("%-11s %-8s %-10s %-8s n=%-9d skipped: %s\n", backend, mode, query, typ, n, res.Reason)
						}
					}
				}
			}
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %d results to %s\n", len(rep.Results), *out)
}

// runCell measures one matrix cell: build the estimator for (mode, query),
// ingest n zipf values, and drain through Close — the barrier that makes
// staged pipelines comparable to synchronous ones.
func runCell[T gpustream.Value](backend gpustream.Backend, mode, query, typ string, n int, eps, support float64, shards int, seed uint64) (Result, error) {
	res := Result{Backend: backend.String(), Mode: mode, Query: query, Type: typ, N: n}
	if (mode == "sharded" || mode == "elastic") && query == "sliding" {
		res.Reason = "sliding estimators are serial: the window order is the stream order, which sharding destroys"
		return res, nil
	}

	data := stream.ZipfOf[T](n, 1.1, n/100+10, seed)
	eng := gpustream.NewOf[T](backend)
	pb := backend.PipelineBackend()

	// Every cell is described declaratively and built through the one spec
	// path the service uses, so the benchmark measures exactly what a
	// streamd tenant would get.
	spec := gpustream.Spec{Eps: eps, Backend: backend}
	switch mode {
	case "async":
		spec.Async = gpustream.AsyncOn
	case "elastic":
		// The elastic row hands both concurrency knobs to the runtime: the
		// adaptive controller owns sync vs async, the scaler owns the count.
		spec.Async = gpustream.AsyncAuto
		spec.Shards = gpustream.ShardsAuto
	}
	switch query {
	case "frequency":
		spec.Family = gpustream.FamilyFrequency
		if mode == "sharded" {
			spec.Family = gpustream.FamilyParallelFrequency
			spec.Shards = gpustream.ShardCount(shards)
		} else if mode == "elastic" {
			spec.Family = gpustream.FamilyParallelFrequency
		}
	case "quantile":
		spec.Family = gpustream.FamilyQuantile
		spec.Capacity = int64(n)
		if mode == "sharded" {
			spec.Family = gpustream.FamilyParallelQuantile
			spec.Shards = gpustream.ShardCount(shards)
		} else if mode == "elastic" {
			spec.Family = gpustream.FamilyParallelQuantile
		}
	case "sliding":
		spec.Family = gpustream.FamilySlidingQuantile
		spec.Window = n / 10
		res.Window = spec.Window
	default:
		return res, fmt.Errorf("unknown query %q (want frequency, quantile, or sliding)", query)
	}
	est, err := eng.NewFromSpec(spec)
	if err != nil {
		return res, err
	}
	var shardedModel func() perfmodel.PipelineBreakdown
	if sh, ok := est.(interface {
		Shards() int
		ModeledTime(perfmodel.Model, perfmodel.Backend) perfmodel.PipelineBreakdown
	}); ok {
		res.Shards = sh.Shards()
		shardedModel = func() perfmodel.PipelineBreakdown { return sh.ModeledTime(eng.Model(), pb) }
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := est.ProcessSlice(data); err != nil {
		return res, err
	}
	if err := est.Close(); err != nil {
		return res, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	st := est.Stats()
	var bd perfmodel.PipelineBreakdown
	switch {
	case shardedModel != nil:
		bd = shardedModel()
	case mode == "async":
		bd = eng.Model().OverlappedPipelineTime(st, pb).PipelineBreakdown
	default:
		bd = eng.Model().PipelineTime(st, pb)
	}

	res.Supported = true
	res.WallNs = wall.Nanoseconds()
	res.NsPerOp = float64(wall.Nanoseconds()) / float64(n)
	res.MopsPerSec = float64(n) / wall.Seconds() / 1e6
	res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(n)
	res.ModeledSortNs = bd.Sort.Nanoseconds()
	res.ModeledMergeNs = bd.Merge.Nanoseconds()
	res.ModeledCompressNs = bd.Compress.Nanoseconds()
	res.ModeledTotalNs = bd.Total().Nanoseconds()
	res.OverlapNs = st.Overlap.Nanoseconds()
	res.StallNs = st.Stall.Nanoseconds()
	if mode == "elastic" {
		// The engine holds exactly this cell's estimator; its telemetry
		// records where the runtime controllers landed.
		if es := eng.Stats(); len(es) > 0 {
			res.FinalAsync = es[0].Async
			res.FinalShards = es[0].Shards
			if es[0].Tuning != nil {
				res.Rescales = es[0].Tuning.Rescales
			}
		}
	}
	return res, nil
}

func parseSizes(s string) []int {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			fatalf("bad stream length %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		fatalf("no stream lengths given")
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchreport: "+format+"\n", args...)
	os.Exit(1)
}
