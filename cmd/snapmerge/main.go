// Command snapmerge is the fan-in node of a cross-process aggregation tree:
// it reads N snapshot files (as written by `streammine -snapshot` or any
// process calling gpustream.MarshalSnapshot), merges them with the shard
// merge rules, and either prints the merged answers or re-marshals the
// merged root snapshot for the next tree level.
//
// Usage:
//
//	snapmerge a.snap b.snap c.snap              (print merged answers)
//	snapmerge -o root.snap a.snap b.snap        (emit a merged snapshot for
//	                                             the next aggregation level)
//	snapmerge -type uint64 shard*.snap          (non-float32 streams)
//	snapmerge -phis 0.5,0.99 -support 0.01 ...  (query probes)
//	snapmerge -keytype uint64 shard*.snap       (keyed snapshots, as written by
//	                                             `streammine -keyed`; -type is
//	                                             the value type, -keytype the
//	                                             key type)
//
// All input files must share one family and one value type; workers feeding
// an aggregation tree of height h should run at gpustream.TreeEps(eps, h)
// so the merged root answer stays eps-approximate end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gpustream"
)

func main() {
	typeName := flag.String("type", "float32", "snapshot value type: float32|float64|uint32|uint64|int32|int64")
	keyTypeName := flag.String("keytype", "", "keyed snapshots: the key type (same choices as -type; empty = unkeyed)")
	out := flag.String("o", "", "write the merged snapshot to this file instead of printing answers")
	phis := flag.String("phis", "0.01,0.25,0.5,0.75,0.99", "quantile probes (quantile-answering families)")
	support := flag.Float64("support", 0.01, "heavy-hitter support threshold (frequency-answering families)")
	top := flag.Int("top", 10, "max heavy hitters to print")
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		fatalf("no snapshot files given")
	}

	var err error
	if kt := strings.ToLower(strings.TrimSpace(*keyTypeName)); kt != "" {
		err = dispatchKeyed(kt, strings.ToLower(strings.TrimSpace(*typeName)), paths, *out, *phis, *support, *top)
	} else {
		switch strings.ToLower(strings.TrimSpace(*typeName)) {
		case "float32":
			err = run[float32](paths, *out, *phis, *support, *top)
		case "float64":
			err = run[float64](paths, *out, *phis, *support, *top)
		case "uint32":
			err = run[uint32](paths, *out, *phis, *support, *top)
		case "uint64":
			err = run[uint64](paths, *out, *phis, *support, *top)
		case "int32":
			err = run[int32](paths, *out, *phis, *support, *top)
		case "int64":
			err = run[int64](paths, *out, *phis, *support, *top)
		default:
			err = fmt.Errorf("unknown value type %q", *typeName)
		}
	}
	if err != nil {
		fatalf("%v", err)
	}
}

// dispatchKeyed resolves the key type, then the value type — the keyed
// family is the one wire family instantiated over two value types, so its
// decode entry point needs both resolved at compile time.
func dispatchKeyed(keyType, valType string, paths []string, out, phis string, support float64, top int) error {
	switch keyType {
	case "float32":
		return dispatchKeyedVal[float32](valType, paths, out, phis, support, top)
	case "float64":
		return dispatchKeyedVal[float64](valType, paths, out, phis, support, top)
	case "uint32":
		return dispatchKeyedVal[uint32](valType, paths, out, phis, support, top)
	case "uint64":
		return dispatchKeyedVal[uint64](valType, paths, out, phis, support, top)
	case "int32":
		return dispatchKeyedVal[int32](valType, paths, out, phis, support, top)
	case "int64":
		return dispatchKeyedVal[int64](valType, paths, out, phis, support, top)
	}
	return fmt.Errorf("unknown key type %q", keyType)
}

func dispatchKeyedVal[K gpustream.Value](valType string, paths []string, out, phis string, support float64, top int) error {
	switch valType {
	case "float32":
		return runKeyed[K, float32](paths, out, phis, support, top)
	case "float64":
		return runKeyed[K, float64](paths, out, phis, support, top)
	case "uint32":
		return runKeyed[K, uint32](paths, out, phis, support, top)
	case "uint64":
		return runKeyed[K, uint64](paths, out, phis, support, top)
	case "int32":
		return runKeyed[K, int32](paths, out, phis, support, top)
	case "int64":
		return runKeyed[K, int64](paths, out, phis, support, top)
	}
	return fmt.Errorf("unknown value type %q", valType)
}

// runKeyed loads, merges, and either re-emits or reports keyed snapshots at
// key type K and value type T.
func runKeyed[K, T gpustream.Value](paths []string, out, phis string, support float64, top int) error {
	snaps := make([]*gpustream.KeyedSnapshot[K, T], 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		s, err := gpustream.UnmarshalKeyedSnapshot[K, T](data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		snaps = append(snaps, s)
	}
	merged, err := gpustream.MergeAllKeyed(snaps...)
	if err != nil {
		return err
	}

	if out != "" {
		blob, err := gpustream.MarshalKeyedSnapshot(merged)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("merged %d keyed snapshots covering %d observations into %s (%d bytes, %d keys: %d frugal, %d promoted)\n",
			len(snaps), merged.Count(), out, len(blob), merged.Keys(), merged.FrugalKeys(), merged.PromotedKeys())
		return nil
	}

	fmt.Printf("merged %d keyed snapshots: %d observations, %d keys (%d frugal, %d promoted, %d promotions)\n",
		len(snaps), merged.Count(), merged.Keys(), merged.FrugalKeys(), merged.PromotedKeys(), merged.Promotions())
	heavy := merged.HeavyKeys(support)
	probes := parsePhis(phis)
	fmt.Printf("heavy keys (support %g):\n", support)
	for i, it := range heavy {
		if i >= top {
			fmt.Printf("  ... and %d more\n", len(heavy)-top)
			break
		}
		fmt.Printf("  key %v: freq >= %d, quantiles", it.Value, it.Freq)
		for _, phi := range probes {
			if v, ok := merged.Quantile(it.Value, phi); ok {
				fmt.Printf(" %.3f->%v", phi, v)
			}
		}
		fmt.Println()
	}
	return nil
}

// run loads, merges, and either re-emits or reports the snapshots at value
// type T.
func run[T gpustream.Value](paths []string, out, phis string, support float64, top int) error {
	snaps := make([]gpustream.Snapshot[T], 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		s, err := gpustream.UnmarshalSnapshot[T](data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		snaps = append(snaps, s)
	}
	merged, err := gpustream.MergeAll(snaps...)
	if err != nil {
		return err
	}

	if out != "" {
		blob, err := gpustream.MarshalSnapshot(merged)
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("merged %d snapshots covering %d values into %s (%d bytes, %d summary entries)\n",
			len(snaps), merged.Count(), out, len(blob), merged.Size())
		return nil
	}

	fmt.Printf("merged %d snapshots: %d values, %d summary entries\n",
		len(snaps), merged.Count(), merged.Size())
	answered := false
	if _, ok := merged.Quantile(0.5); ok {
		answered = true
		fmt.Println("quantiles:")
		for _, phi := range parsePhis(phis) {
			v, _ := merged.Quantile(phi)
			fmt.Printf("  phi=%.3f -> %v\n", phi, v)
		}
	}
	if items, ok := merged.HeavyHitters(support); ok {
		answered = true
		fmt.Printf("heavy hitters (support %g):\n", support)
		for i, it := range items {
			if i >= top {
				fmt.Printf("  ... and %d more\n", len(items)-top)
				break
			}
			fmt.Printf("  value %v: freq >= %d\n", it.Value, it.Freq)
		}
	}
	if !answered {
		fmt.Println("snapshot family answers no queries on an empty stream")
	}
	return nil
}

func parsePhis(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		phi, err := strconv.ParseFloat(part, 64)
		if err != nil || phi < 0 || phi > 1 {
			fatalf("bad quantile probe %q", part)
		}
		out = append(out, phi)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snapmerge: "+format+"\n", args...)
	os.Exit(1)
}
