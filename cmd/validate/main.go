// Command validate empirically checks every estimator's accuracy guarantee
// against exact ground truth: for each estimator family, epsilon and input
// distribution it measures the worst observed error and prints it next to
// the advertised bound. Every row must show measured <= bound; the process
// exits non-zero otherwise, so this doubles as an acceptance harness.
//
// Usage:
//
//	validate [-n 200000] [-seed 1] [-backend gpu|gpu-bitonic|cpu|cpu-parallel|samplesort|auto]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"text/tabwriter"

	"gpustream"
	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

var failed bool

func main() {
	n := flag.Int("n", 200_000, "stream length per experiment")
	seed := flag.Uint64("seed", 1, "generator seed")
	backendName := flag.String("backend", "gpu", "sorting backend: gpu|gpu-bitonic|cpu|cpu-parallel|samplesort|auto")
	flag.Parse()

	backend, err := gpustream.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "validate: %v\n", err)
		os.Exit(2)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "estimator\tdistribution\teps\tmeasured-max-error\tbound\tok\t")

	dists := func(s uint64) map[string][]float32 {
		return map[string][]float32{
			"uniform": stream.Uniform(*n, s),
			"zipf":    stream.Zipf(*n, 1.2, *n/50+10, s+1),
			"gauss":   stream.Gaussian(*n, 0, 100, s+2),
			"sorted":  stream.Sorted(*n),
		}
	}

	eng := gpustream.New(backend)
	for _, eps := range []float64{0.01, 0.001} {
		for name, data := range dists(*seed) {
			validateFrequency(w, eng, name, eps, data)
			validateQuantile(w, eng, name, eps, data)
		}
	}
	// Sliding windows are pricier; validate on a subset.
	for name, data := range dists(*seed + 10) {
		validateSlidingFrequency(w, eng, name, 0.01, data, *n/5)
		validateSlidingQuantile(w, eng, name, 0.01, data, *n/5)
	}
	w.Flush()
	if failed {
		fmt.Fprintln(os.Stderr, "validate: BOUND VIOLATION")
		os.Exit(1)
	}
	fmt.Println("all measured errors within advertised bounds")
}

func report(w *tabwriter.Writer, est, dist string, eps, measured, bound float64) {
	ok := measured <= bound+1e-12
	if !ok {
		failed = true
	}
	fmt.Fprintf(w, "%s\t%s\t%g\t%.6f\t%.6f\t%v\t\n", est, dist, eps, measured, bound, ok)
}

func validateFrequency(w *tabwriter.Writer, eng *gpustream.Engine[float32], dist string, eps float64, data []float32) {
	est := eng.NewFrequencyEstimator(eps)
	est.ProcessSlice(data)
	exact := map[float32]int64{}
	for _, v := range data {
		exact[v]++
	}
	n := float64(len(data))
	worst := 0.0
	for v, truth := range exact {
		got := est.Estimate(v)
		if got > truth {
			report(w, "frequency", dist, eps, math.Inf(1), eps) // overcount: impossible
			return
		}
		if d := float64(truth-got) / n; d > worst {
			worst = d
		}
	}
	report(w, "frequency", dist, eps, worst, eps)
}

// rankError measures the normalized rank distance of value got from target
// rank r within sorted reference ref.
func rankError(ref []float32, got float32, r int) float64 {
	lo := sort.Search(len(ref), func(i int) bool { return ref[i] >= got }) + 1
	hi := sort.Search(len(ref), func(i int) bool { return ref[i] > got })
	var d int
	switch {
	case r < lo:
		d = lo - r
	case r > hi:
		d = r - hi
	}
	return float64(d) / float64(len(ref))
}

func validateQuantile(w *tabwriter.Writer, eng *gpustream.Engine[float32], dist string, eps float64, data []float32) {
	est := eng.NewQuantileEstimator(eps, int64(len(data)))
	est.ProcessSlice(data)
	ref := append([]float32(nil), data...)
	cpusort.Quicksort(ref)
	worst := 0.0
	for p := 0; p <= 40; p++ {
		phi := float64(p) / 40
		r := int(math.Ceil(phi * float64(len(ref))))
		if r < 1 {
			r = 1
		}
		if e := rankError(ref, est.Query(phi), r); e > worst {
			worst = e
		}
	}
	report(w, "quantile", dist, eps, worst, eps)
}

func validateSlidingFrequency(w *tabwriter.Writer, eng *gpustream.Engine[float32], dist string, eps float64, data []float32, win int) {
	est := eng.NewSlidingFrequency(eps, win)
	est.ProcessSlice(data)
	exact := map[float32]int64{}
	for _, v := range data[len(data)-win:] {
		exact[v]++
	}
	worst := 0.0
	for v, truth := range exact {
		got := est.Estimate(v)
		if d := math.Abs(float64(got-truth)) / float64(win); d > worst {
			worst = d
		}
	}
	report(w, "sliding-frequency", dist, eps, worst, eps)
}

func validateSlidingQuantile(w *tabwriter.Writer, eng *gpustream.Engine[float32], dist string, eps float64, data []float32, win int) {
	est := eng.NewSlidingQuantile(eps, win)
	est.ProcessSlice(data)
	ref := append([]float32(nil), data[len(data)-win:]...)
	cpusort.Quicksort(ref)
	worst := 0.0
	for p := 0; p <= 20; p++ {
		phi := float64(p) / 20
		r := int(math.Ceil(phi * float64(win)))
		if r < 1 {
			r = 1
		}
		if e := rankError(ref, est.Query(phi), r); e > worst {
			worst = e
		}
	}
	report(w, "sliding-quantile", dist, eps, worst, eps)
}
