// Command tracegen writes a synthetic stream to a trace file that
// streammine (or any stream.TraceSource user) can replay, and can also
// externally sort an existing trace with bounded memory — the disk-spilling
// path the paper's introduction describes.
//
// Usage:
//
//	tracegen -o stream.trace -n 10000000 -dist zipf -seed 1
//	tracegen -sort stream.trace -o sorted.trace -runsize 1048576 -backend gpu
package main

import (
	"flag"
	"fmt"
	"os"

	"gpustream"
	"gpustream/internal/extsort"
	"gpustream/internal/half"
	"gpustream/internal/stream"
)

func main() {
	out := flag.String("o", "stream.trace", "output trace path")
	n := flag.Int("n", 1_000_000, "number of values")
	dist := flag.String("dist", "zipf", "distribution: zipf|uniform|gauss|bursty|sorted")
	seed := flag.Uint64("seed", 1, "generator seed")
	quantize := flag.Bool("half", false, "quantize values through 16-bit floats (paper's stream precision)")
	sortIn := flag.String("sort", "", "externally sort this existing trace instead of generating")
	runSize := flag.Int("runsize", 1<<20, "external-sort in-memory run size")
	backend := flag.String("backend", "cpu", "external-sort run backend: gpu|gpu-bitonic|cpu|cpu-parallel|samplesort|auto (auto runs sample sort statically)")
	flag.Parse()

	if *sortIn != "" {
		externalSort(*sortIn, *out, *runSize, *backend)
		return
	}

	var data []float32
	switch *dist {
	case "zipf":
		data = stream.Zipf(*n, 1.1, *n/100+10, *seed)
	case "uniform":
		data = stream.Uniform(*n, *seed)
	case "gauss":
		data = stream.Gaussian(*n, 0, 1, *seed)
	case "bursty":
		data = stream.Bursty(*n, *n/100+10, 1000, 0.001, *seed)
	case "sorted":
		data = stream.Sorted(*n)
	default:
		fatalf("unknown distribution %q", *dist)
	}
	if *quantize {
		half.Quantize(data)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	if err := stream.WriteTrace(f, data); err != nil {
		fatalf("%v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %d %s values to %s\n", *n, *dist, *out)
}

func externalSort(in, out string, runSize int, backend string) {
	b, err := gpustream.ParseBackend(backend)
	if err != nil {
		fatalf("%v", err)
	}
	srt := gpustream.New(b).Sorter()
	inF, err := os.Open(in)
	if err != nil {
		fatalf("%v", err)
	}
	defer inF.Close()
	src, err := stream.NewTraceSource(inF)
	if err != nil {
		fatalf("%v", err)
	}
	outF, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	st, err := extsort.Sort(src, outF, extsort.Config{RunSize: runSize, Sorter: srt})
	if err != nil {
		fatalf("%v", err)
	}
	if err := outF.Close(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("externally sorted %d values: %d runs, %d extra merge passes, %.1f MB spilled\n",
		st.Values, st.InitialRuns, st.MergePasses, float64(st.SpilledBytes)/1e6)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(2)
}
