package gpustream

// Supporting toolkit re-exports: baselines, streaming histograms, external
// sorting and trace I/O, so downstream users need only the root package.

import (
	"io"

	"gpustream/internal/extsort"
	"gpustream/internal/frequency"
	"gpustream/internal/histogram"
	"gpustream/internal/stream"
)

// Baseline summaries from the paper's related work (Section 2.1).
type (
	// MisraGries is the deterministic k-counter frequent-items baseline.
	MisraGries = frequency.MisraGries
	// SpaceSaving is the overcounting k-counter baseline.
	SpaceSaving = frequency.SpaceSaving
	// CountMin is the hash-based sketch baseline (supports deletions).
	CountMin = frequency.CountMin
	// StreamingHistogram maintains an approximate equi-depth histogram
	// over a stream (the dynamic histograms of Section 3.2).
	StreamingHistogram = histogram.StreamingEquiDepth
	// HistogramBucket is one range of a StreamingHistogram.
	HistogramBucket = histogram.Bucket
	// ExternalSortConfig controls a bounded-memory external sort.
	ExternalSortConfig = extsort.Config
	// ExternalSortStats reports external-sort work.
	ExternalSortStats = extsort.Stats
	// Source is a pull-based stream of values.
	Source = stream.Source
)

// NewMisraGries returns a k-counter Misra-Gries summary.
func NewMisraGries(k int) *MisraGries { return frequency.NewMisraGries(k) }

// NewSpaceSaving returns a k-counter Space-Saving summary.
func NewSpaceSaving(k int) *SpaceSaving { return frequency.NewSpaceSaving(k) }

// NewCountMin returns a Count-Min sketch with error eps and failure
// probability delta.
func NewCountMin(eps, delta float64) *CountMin { return frequency.NewCountMin(eps, delta) }

// NewStreamingHistogram returns a k-bucket approximate equi-depth histogram
// with boundary rank error eps, backed by this engine's sorter.
func (e *Engine) NewStreamingHistogram(k int, eps float64) *StreamingHistogram {
	return histogram.NewStreamingEquiDepth(k, eps, e.srt)
}

// ExternalSort sorts the values of src with bounded memory — runs formed on
// this engine's backend, spilled to disk, k-way merged — writing the
// ascending result to out in trace format.
func (e *Engine) ExternalSort(src Source, out io.Writer, cfg ExternalSortConfig) (ExternalSortStats, error) {
	if cfg.Sorter == nil {
		cfg.Sorter = e.srt
	}
	return extsort.Sort(src, out, cfg)
}

// WriteTrace records data to w in the library's binary trace format.
func WriteTrace(w io.Writer, data []float32) error { return stream.WriteTrace(w, data) }

// ReadTrace loads a whole trace from r.
func ReadTrace(r io.Reader) ([]float32, error) { return stream.ReadTrace(r) }

// NewSliceSource adapts an in-memory slice to a Source.
func NewSliceSource(data []float32) Source { return stream.NewSliceSource(data) }
