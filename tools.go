package gpustream

// Supporting toolkit re-exports: baselines, streaming histograms, external
// sorting and trace I/O, so downstream users need only the root package.

import (
	"io"

	"gpustream/internal/extsort"
	"gpustream/internal/frequency"
	"gpustream/internal/histogram"
	"gpustream/internal/stream"
)

// Baseline summaries from the paper's related work (Section 2.1).
type (
	// MisraGries is the deterministic k-counter frequent-items baseline.
	MisraGries[T Value] = frequency.MisraGries[T]
	// SpaceSaving is the overcounting k-counter baseline.
	SpaceSaving[T Value] = frequency.SpaceSaving[T]
	// CountMin is the hash-based sketch baseline (supports deletions).
	CountMin[T Value] = frequency.CountMin[T]
	// StreamingHistogram maintains an approximate equi-depth histogram
	// over a stream (the dynamic histograms of Section 3.2).
	StreamingHistogram[T Value] = histogram.StreamingEquiDepth[T]
	// HistogramBucket is one range of a StreamingHistogram.
	HistogramBucket[T Value] = histogram.Bucket[T]
	// ExternalSortConfig controls a bounded-memory external sort.
	ExternalSortConfig = extsort.Config
	// ExternalSortStats reports external-sort work.
	ExternalSortStats = extsort.Stats
	// Source is a pull-based stream of values.
	Source[T Value] = stream.Source[T]
)

// NewMisraGries returns a k-counter Misra-Gries summary.
func NewMisraGries[T Value](k int) *MisraGries[T] { return frequency.NewMisraGries[T](k) }

// NewSpaceSaving returns a k-counter Space-Saving summary.
func NewSpaceSaving[T Value](k int) *SpaceSaving[T] { return frequency.NewSpaceSaving[T](k) }

// NewCountMin returns a Count-Min sketch with error eps and failure
// probability delta.
func NewCountMin[T Value](eps, delta float64) *CountMin[T] {
	return frequency.NewCountMin[T](eps, delta)
}

// NewStreamingHistogram returns a k-bucket approximate equi-depth histogram
// with boundary rank error eps, backed by this engine's sorter.
func (e *Engine[T]) NewStreamingHistogram(k int, eps float64) *StreamingHistogram[T] {
	return histogram.NewStreamingEquiDepth(k, eps, e.newBackendSorter())
}

// ExternalSort sorts the float32 values of src with bounded memory — runs
// formed on this engine's backend, spilled to disk, k-way merged — writing
// the ascending result to out in trace format (the trace format is float32,
// whatever the engine's element type).
func (e *Engine[T]) ExternalSort(src Source[float32], out io.Writer, cfg ExternalSortConfig) (ExternalSortStats, error) {
	if cfg.Sorter == nil {
		cfg.Sorter = newBackendSorter[float32](e.backend)
	}
	return extsort.Sort(src, out, cfg)
}

// WriteTrace records data to w in the library's binary trace format.
func WriteTrace(w io.Writer, data []float32) error { return stream.WriteTrace(w, data) }

// ReadTrace loads a whole trace from r.
func ReadTrace(r io.Reader) ([]float32, error) { return stream.ReadTrace(r) }

// NewSliceSource adapts an in-memory slice to a Source.
func NewSliceSource[T Value](data []T) Source[T] { return stream.NewSliceSource(data) }
