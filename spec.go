package gpustream

// Declarative estimator specification: a Spec is a JSON-(de)serializable
// description of one estimator — family, error budget, window, sharding,
// ingestion mode, backend — that any process can validate and instantiate
// with Engine.NewFromSpec. It is the construction path of the streaming
// service daemon (cmd/streamd: the PUT handler's request body is a Spec),
// and the cmd tools build their estimators through it too, so every flag
// combination a tool accepts is expressible as a stored document.
//
//	spec := gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 1e-3}
//	est, err := eng.NewFromSpec(spec)
//
// Estimators built from a Spec are bit-identical to the same family built
// through the typed constructors (the matrix test in spec_test.go pins
// this): NewFromSpec adds no wrapping, it only dispatches.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Family identifies an estimator family — one of the seven concrete
// implementations behind the Estimator interface. The zero value is
// invalid, so a Spec decoded from JSON with no "family" key fails
// validation instead of silently defaulting.
type Family int

const (
	// FamilyFrequency is the whole-history lossy-counting frequency
	// estimator (NewFrequencyEstimator).
	FamilyFrequency Family = iota + 1
	// FamilyQuantile is the whole-history GK quantile estimator
	// (NewQuantileEstimator).
	FamilyQuantile
	// FamilySlidingFrequency answers frequency queries over the most
	// recent Window elements (NewSlidingFrequency).
	FamilySlidingFrequency
	// FamilySlidingQuantile answers quantile queries over the most recent
	// Window elements (NewSlidingQuantile).
	FamilySlidingQuantile
	// FamilyParallelFrequency shards frequency ingestion across K workers
	// (NewParallelFrequencyEstimator).
	FamilyParallelFrequency
	// FamilyParallelQuantile shards quantile ingestion across K workers
	// (NewParallelQuantileEstimator).
	FamilyParallelQuantile
	// FamilyFrugal is the frugal-streaming point-estimate tracker bank
	// (NewFrugalEstimator) — heuristic answers, a few words of state.
	FamilyFrugal
)

// String returns the canonical family name, matching the Kind strings
// Engine.Stats reports.
func (f Family) String() string {
	switch f {
	case FamilyFrequency:
		return "frequency"
	case FamilyQuantile:
		return "quantile"
	case FamilySlidingFrequency:
		return "sliding-frequency"
	case FamilySlidingQuantile:
		return "sliding-quantile"
	case FamilyParallelFrequency:
		return "parallel-frequency"
	case FamilyParallelQuantile:
		return "parallel-quantile"
	case FamilyFrugal:
		return "frugal"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// ParseFamily resolves a family name to a Family, mirroring ParseBackend.
// The canonical names are the Family.String forms; "window-frequency" and
// "window-quantile" are accepted as aliases for the sliding families, and
// "sharded-frequency"/"sharded-quantile" for the parallel ones. Matching is
// case-insensitive.
func ParseFamily(name string) (Family, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "frequency":
		return FamilyFrequency, nil
	case "quantile":
		return FamilyQuantile, nil
	case "sliding-frequency", "window-frequency":
		return FamilySlidingFrequency, nil
	case "sliding-quantile", "window-quantile":
		return FamilySlidingQuantile, nil
	case "parallel-frequency", "sharded-frequency":
		return FamilyParallelFrequency, nil
	case "parallel-quantile", "sharded-quantile":
		return FamilyParallelQuantile, nil
	case "frugal":
		return FamilyFrugal, nil
	}
	return 0, fmt.Errorf("gpustream: unknown family %q (want frequency, quantile, sliding-frequency, sliding-quantile, parallel-frequency, parallel-quantile, or frugal)", name)
}

// MarshalText encodes the family as its canonical name, so Family fields
// round-trip through JSON as strings. Invalid families fail.
func (f Family) MarshalText() ([]byte, error) {
	s := f.String()
	if strings.HasPrefix(s, "Family(") {
		return nil, fmt.Errorf("gpustream: cannot marshal invalid family %s", s)
	}
	return []byte(s), nil
}

// UnmarshalText decodes a family name via ParseFamily.
func (f *Family) UnmarshalText(text []byte) error {
	parsed, err := ParseFamily(string(text))
	if err != nil {
		return err
	}
	*f = parsed
	return nil
}

// AsyncMode selects an estimator's ingestion execution mode: synchronous
// (the zero value — sort, merge and compress run inline), asynchronous (the
// paper's co-processing model: a staged executor overlaps the sort of one
// window with the merge/compress of the previous one), or automatic — the
// adaptive controller measures both modes on the live stream and commits to
// the faster one, re-probing on degradation. Mode flips only ever land at
// window boundaries, so every schedule is bit-identical to a fixed mode.
type AsyncMode int

const (
	// AsyncOff ingests synchronously (the default).
	AsyncOff AsyncMode = iota
	// AsyncOn ingests through the staged asynchronous executor.
	AsyncOn
	// AsyncAuto hands the mode to the adaptive controller at runtime.
	AsyncAuto
)

// MarshalJSON encodes the mode in the Spec wire form: the booleans the
// pre-elastic schema used for off/on, or the string "auto".
func (a AsyncMode) MarshalJSON() ([]byte, error) {
	switch a {
	case AsyncOff:
		return []byte("false"), nil
	case AsyncOn:
		return []byte("true"), nil
	case AsyncAuto:
		return []byte(`"auto"`), nil
	}
	return nil, fmt.Errorf("gpustream: cannot marshal invalid async mode %d", int(a))
}

// UnmarshalJSON accepts a boolean (the pre-elastic schema) or one of the
// strings "auto", "on", "off".
func (a *AsyncMode) UnmarshalJSON(data []byte) error {
	switch strings.ToLower(strings.Trim(string(data), `"`)) {
	case "false", "off":
		*a = AsyncOff
	case "true", "on":
		*a = AsyncOn
	case "auto":
		*a = AsyncAuto
	default:
		return fmt.Errorf("gpustream: bad async mode %s (want true, false, or \"auto\")", data)
	}
	return nil
}

// String reports the mode in the -async flag vocabulary.
func (a AsyncMode) String() string {
	switch a {
	case AsyncOn:
		return "on"
	case AsyncAuto:
		return "auto"
	}
	return "off"
}

// ShardCount is a parallel family's worker count: a positive count, zero for
// GOMAXPROCS, or ShardsAuto for elastic sharding — the estimator starts at
// GOMAXPROCS workers and a runtime scaler hill-climbs the count against
// measured throughput, spawning shards at the merge-safe eps/2 budget and
// folding drained shards' summaries back on scale-down (DESIGN.md §16).
type ShardCount int

// ShardsAuto asks the runtime to own the shard count.
const ShardsAuto ShardCount = -1

// MarshalJSON encodes the count as a JSON number, or the string "auto" for
// ShardsAuto.
func (s ShardCount) MarshalJSON() ([]byte, error) {
	if s == ShardsAuto {
		return []byte(`"auto"`), nil
	}
	return json.Marshal(int(s))
}

// UnmarshalJSON accepts a JSON number (the pre-elastic schema) or the string
// "auto".
func (s *ShardCount) UnmarshalJSON(data []byte) error {
	if strings.EqualFold(strings.Trim(string(data), `"`), "auto") {
		*s = ShardsAuto
		return nil
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("gpustream: bad shard count %s (want a number or \"auto\")", data)
	}
	*s = ShardCount(n)
	return nil
}

// String reports the count in the -shards flag vocabulary.
func (s ShardCount) String() string {
	if s == ShardsAuto {
		return "auto"
	}
	return fmt.Sprintf("%d", int(s))
}

// MarshalText encodes the backend as its canonical name (the String form),
// so Backend fields round-trip through JSON as strings — the symmetric
// counterpart of ParseBackend. Unknown backend values fail.
func (b Backend) MarshalText() ([]byte, error) {
	s := b.String()
	if strings.HasPrefix(s, "Backend(") {
		return nil, fmt.Errorf("gpustream: cannot marshal invalid backend %s", s)
	}
	return []byte(s), nil
}

// UnmarshalText decodes a backend name via ParseBackend, accepting the same
// aliases as the cmd tools' -backend flags.
func (b *Backend) UnmarshalText(text []byte) error {
	parsed, err := ParseBackend(string(text))
	if err != nil {
		return err
	}
	*b = parsed
	return nil
}

// Spec is a declarative, JSON-(de)serializable description of one
// estimator. Zero values mean "unset": fields a family does not use must be
// left zero (Validate rejects stray settings loudly, so a misspelled
// configuration cannot silently construct the wrong sketch).
type Spec struct {
	// Family selects the estimator family. Required.
	Family Family `json:"family"`
	// Eps is the approximation error budget in (0, 1). Required for every
	// family except frugal, whose answers carry no eps bound (leave zero).
	Eps float64 `json:"eps,omitempty"`
	// Phis are target quantiles in [0, 1]. For the frugal family they
	// select the tracked quantiles (one tracker each; default
	// frugal.DefaultPhis); for the other quantile-answering families they
	// are the default query probes (cmd/streamd answers /quantile with
	// them when the request names no phi). Frequency families take none.
	Phis []float64 `json:"phis,omitempty"`
	// Window is a window size in elements. For the sliding families it is
	// the query window — required (> 0), part of the answer's semantics.
	// For the whole-history frequency/quantile families (serial and
	// parallel) a positive value overrides the sort-window size — a tuning
	// knob, clamped up to the family's eps floor — and zero keeps the
	// default (or, under backend "auto", lets the controller choose).
	// Frugal takes none.
	Window int `json:"window,omitempty"`
	// Capacity is the expected stream length for the quantile families'
	// bucket sizing; zero picks a generous default.
	Capacity int64 `json:"capacity,omitempty"`
	// Shards is the worker count for the parallel families; zero selects
	// GOMAXPROCS, and ShardsAuto ("auto" in JSON) hands the count to the
	// runtime scaler. Serial families take none.
	Shards ShardCount `json:"shards,omitempty"`
	// Async selects the ingestion execution mode: synchronous (false, the
	// default), staged asynchronous (true — sort overlaps merge/compress),
	// or AsyncAuto ("auto" in JSON) — the adaptive controller owns the mode
	// at runtime. Not applicable to frugal, which never sorts.
	Async AsyncMode `json:"async,omitempty"`
	// Backend is the sorting backend the estimator's pipeline runs on.
	// The zero value is BackendGPU, so an omitted JSON field selects the
	// paper's GPU sorter.
	Backend Backend `json:"backend,omitempty"`
	// Support is the default heavy-hitter support threshold in (0, 1) for
	// frequency-answering families — a query-time default (used by
	// cmd/streamd's /heavyhitters), not a construction parameter.
	Support float64 `json:"support,omitempty"`
}

// epsFamilies need an eps budget; frugal is the one family that does not.
func (f Family) needsEps() bool { return f != FamilyFrugal }

// AnswersQuantiles reports whether the family answers quantile queries
// (Snapshot().Quantile returns ok on a non-empty stream).
func (f Family) AnswersQuantiles() bool {
	switch f {
	case FamilyQuantile, FamilySlidingQuantile, FamilyParallelQuantile, FamilyFrugal:
		return true
	}
	return false
}

// AnswersFrequencies reports whether the family answers heavy-hitter and
// point-frequency queries.
func (f Family) AnswersFrequencies() bool {
	switch f {
	case FamilyFrequency, FamilySlidingFrequency, FamilyParallelFrequency:
		return true
	}
	return false
}

// Sliding reports whether the family is windowed.
func (f Family) Sliding() bool {
	return f == FamilySlidingFrequency || f == FamilySlidingQuantile
}

// Parallel reports whether the family shards ingestion.
func (f Family) Parallel() bool {
	return f == FamilyParallelFrequency || f == FamilyParallelQuantile
}

// Validate checks the spec for internal consistency: a nil error means
// NewFromSpec will construct it without panicking. Unknown families, eps
// outside (0, 1), and any field set for a family that does not use it are
// all rejected with a descriptive error.
func (s Spec) Validate() error {
	switch s.Family {
	case FamilyFrequency, FamilyQuantile, FamilySlidingFrequency,
		FamilySlidingQuantile, FamilyParallelFrequency,
		FamilyParallelQuantile, FamilyFrugal:
	default:
		return fmt.Errorf("gpustream: spec has no valid family (got %v)", s.Family)
	}
	if s.Family.needsEps() {
		if s.Eps <= 0 || s.Eps >= 1 {
			return fmt.Errorf("gpustream: spec eps %v out of (0, 1) for family %v", s.Eps, s.Family)
		}
	} else if s.Eps != 0 {
		return fmt.Errorf("gpustream: family %v carries no eps bound; leave eps zero (got %v)", s.Family, s.Eps)
	}
	if s.Family.Sliding() {
		if s.Window <= 0 {
			return fmt.Errorf("gpustream: family %v needs window > 0 (got %d)", s.Family, s.Window)
		}
	} else if s.Window != 0 {
		if s.Family == FamilyFrugal {
			return fmt.Errorf("gpustream: family %v takes no window (got %d)", s.Family, s.Window)
		}
		if s.Window < 0 {
			return fmt.Errorf("gpustream: spec window %d < 0 (zero keeps the default sort window)", s.Window)
		}
	}
	if s.Family.Parallel() {
		if s.Shards < 0 && s.Shards != ShardsAuto {
			return fmt.Errorf("gpustream: spec shards %d < 0 (zero selects GOMAXPROCS, \"auto\" enables elastic sharding)", int(s.Shards))
		}
	} else if s.Shards != 0 {
		return fmt.Errorf("gpustream: family %v does not shard (got shards %v)", s.Family, s.Shards)
	}
	switch s.Family {
	case FamilyQuantile, FamilyParallelQuantile:
		if s.Capacity < 0 {
			return fmt.Errorf("gpustream: spec capacity %d < 0 (zero picks a default)", s.Capacity)
		}
	default:
		if s.Capacity != 0 {
			return fmt.Errorf("gpustream: family %v takes no capacity (got %d)", s.Family, s.Capacity)
		}
	}
	switch s.Async {
	case AsyncOff, AsyncOn, AsyncAuto:
	default:
		return fmt.Errorf("gpustream: spec has unknown async mode %d", int(s.Async))
	}
	if s.Family == FamilyFrugal && s.Async != AsyncOff {
		return fmt.Errorf("gpustream: family frugal never sorts; async does not apply")
	}
	if len(s.Phis) > 0 && !s.Family.AnswersQuantiles() {
		return fmt.Errorf("gpustream: family %v answers no quantile queries; phis do not apply", s.Family)
	}
	for _, phi := range s.Phis {
		if phi < 0 || phi > 1 {
			return fmt.Errorf("gpustream: spec phi %v out of [0, 1]", phi)
		}
	}
	if s.Support != 0 {
		if !s.Family.AnswersFrequencies() {
			return fmt.Errorf("gpustream: family %v answers no frequency queries; support does not apply", s.Family)
		}
		if s.Support < 0 || s.Support >= 1 {
			return fmt.Errorf("gpustream: spec support %v out of [0, 1)", s.Support)
		}
	}
	switch s.Backend {
	case BackendGPU, BackendGPUBitonic, BackendCPU, BackendCPUParallel,
		BackendSampleSort, BackendAuto:
	default:
		return fmt.Errorf("gpustream: spec has unknown backend %v", s.Backend)
	}
	return nil
}

// ParseSpec decodes and validates a JSON spec document — the request body
// cmd/streamd's PUT handler accepts. Unknown JSON fields are rejected, so a
// misspelled key fails loudly instead of leaving a default in place.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("gpustream: bad spec document: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// NewFromSpec validates the spec and constructs the estimator it describes
// through the same typed constructors callers use directly, so the result
// is bit-identical to a hand-built estimator of the same configuration. The
// spec's backend must match the engine's: the engine is the backend
// binding, and a spec asking for a different sorter is a configuration
// error, not a silent override.
func (e *Engine[T]) NewFromSpec(spec Spec) (Estimator[T], error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Backend != e.backend {
		return nil, fmt.Errorf("gpustream: spec backend %v does not match engine backend %v", spec.Backend, e.backend)
	}
	var eopts []EstimatorOption
	var popts []ParallelOption
	var tn tuningSpec
	switch spec.Async {
	case AsyncOn:
		eopts = append(eopts, WithAsyncIngestion())
		popts = append(popts, WithAsyncShards())
	case AsyncAuto:
		eopts = append(eopts, withAutoAsync())
		tn.autoAsync = true
	}
	shards := int(spec.Shards)
	if spec.Shards == ShardsAuto {
		// Elastic sharding starts at the GOMAXPROCS default; the scaler
		// owns the count from the first observed batch on.
		shards = 0
		tn.autoShards = true
	}
	if spec.Window > 0 && !spec.Family.Sliding() {
		eopts = append(eopts, WithSortWindow(spec.Window))
		popts = append(popts, WithShardSortWindow(spec.Window))
	}
	switch spec.Family {
	case FamilyFrequency:
		return e.NewFrequencyEstimator(spec.Eps, eopts...), nil
	case FamilyQuantile:
		return e.NewQuantileEstimator(spec.Eps, spec.Capacity, eopts...), nil
	case FamilySlidingFrequency:
		return e.NewSlidingFrequency(spec.Eps, spec.Window, eopts...), nil
	case FamilySlidingQuantile:
		return e.NewSlidingQuantile(spec.Eps, spec.Window, eopts...), nil
	case FamilyParallelFrequency:
		return e.newParallelFrequency(spec.Eps, shards, tn, popts...), nil
	case FamilyParallelQuantile:
		return e.newParallelQuantile(spec.Eps, spec.Capacity, shards, tn, popts...), nil
	case FamilyFrugal:
		var fopts []FrugalOption
		if len(spec.Phis) > 0 {
			fopts = append(fopts, WithPhis(spec.Phis...))
		}
		return e.NewFrugalEstimator(fopts...), nil
	}
	// Unreachable: Validate pinned the family above.
	return nil, fmt.Errorf("gpustream: spec has no valid family (got %v)", spec.Family)
}
