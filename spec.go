package gpustream

// Declarative estimator specification: a Spec is a JSON-(de)serializable
// description of one estimator — family, error budget, window, sharding,
// ingestion mode, backend — that any process can validate and instantiate
// with Engine.NewFromSpec. It is the construction path of the streaming
// service daemon (cmd/streamd: the PUT handler's request body is a Spec),
// and the cmd tools build their estimators through it too, so every flag
// combination a tool accepts is expressible as a stored document.
//
//	spec := gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 1e-3}
//	est, err := eng.NewFromSpec(spec)
//
// Estimators built from a Spec are bit-identical to the same family built
// through the typed constructors (the matrix test in spec_test.go pins
// this): NewFromSpec adds no wrapping, it only dispatches.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Family identifies an estimator family — one of the seven concrete
// implementations behind the Estimator interface. The zero value is
// invalid, so a Spec decoded from JSON with no "family" key fails
// validation instead of silently defaulting.
type Family int

const (
	// FamilyFrequency is the whole-history lossy-counting frequency
	// estimator (NewFrequencyEstimator).
	FamilyFrequency Family = iota + 1
	// FamilyQuantile is the whole-history GK quantile estimator
	// (NewQuantileEstimator).
	FamilyQuantile
	// FamilySlidingFrequency answers frequency queries over the most
	// recent Window elements (NewSlidingFrequency).
	FamilySlidingFrequency
	// FamilySlidingQuantile answers quantile queries over the most recent
	// Window elements (NewSlidingQuantile).
	FamilySlidingQuantile
	// FamilyParallelFrequency shards frequency ingestion across K workers
	// (NewParallelFrequencyEstimator).
	FamilyParallelFrequency
	// FamilyParallelQuantile shards quantile ingestion across K workers
	// (NewParallelQuantileEstimator).
	FamilyParallelQuantile
	// FamilyFrugal is the frugal-streaming point-estimate tracker bank
	// (NewFrugalEstimator) — heuristic answers, a few words of state.
	FamilyFrugal
)

// String returns the canonical family name, matching the Kind strings
// Engine.Stats reports.
func (f Family) String() string {
	switch f {
	case FamilyFrequency:
		return "frequency"
	case FamilyQuantile:
		return "quantile"
	case FamilySlidingFrequency:
		return "sliding-frequency"
	case FamilySlidingQuantile:
		return "sliding-quantile"
	case FamilyParallelFrequency:
		return "parallel-frequency"
	case FamilyParallelQuantile:
		return "parallel-quantile"
	case FamilyFrugal:
		return "frugal"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// ParseFamily resolves a family name to a Family, mirroring ParseBackend.
// The canonical names are the Family.String forms; "window-frequency" and
// "window-quantile" are accepted as aliases for the sliding families, and
// "sharded-frequency"/"sharded-quantile" for the parallel ones. Matching is
// case-insensitive.
func ParseFamily(name string) (Family, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "frequency":
		return FamilyFrequency, nil
	case "quantile":
		return FamilyQuantile, nil
	case "sliding-frequency", "window-frequency":
		return FamilySlidingFrequency, nil
	case "sliding-quantile", "window-quantile":
		return FamilySlidingQuantile, nil
	case "parallel-frequency", "sharded-frequency":
		return FamilyParallelFrequency, nil
	case "parallel-quantile", "sharded-quantile":
		return FamilyParallelQuantile, nil
	case "frugal":
		return FamilyFrugal, nil
	}
	return 0, fmt.Errorf("gpustream: unknown family %q (want frequency, quantile, sliding-frequency, sliding-quantile, parallel-frequency, parallel-quantile, or frugal)", name)
}

// MarshalText encodes the family as its canonical name, so Family fields
// round-trip through JSON as strings. Invalid families fail.
func (f Family) MarshalText() ([]byte, error) {
	s := f.String()
	if strings.HasPrefix(s, "Family(") {
		return nil, fmt.Errorf("gpustream: cannot marshal invalid family %s", s)
	}
	return []byte(s), nil
}

// UnmarshalText decodes a family name via ParseFamily.
func (f *Family) UnmarshalText(text []byte) error {
	parsed, err := ParseFamily(string(text))
	if err != nil {
		return err
	}
	*f = parsed
	return nil
}

// MarshalText encodes the backend as its canonical name (the String form),
// so Backend fields round-trip through JSON as strings — the symmetric
// counterpart of ParseBackend. Unknown backend values fail.
func (b Backend) MarshalText() ([]byte, error) {
	s := b.String()
	if strings.HasPrefix(s, "Backend(") {
		return nil, fmt.Errorf("gpustream: cannot marshal invalid backend %s", s)
	}
	return []byte(s), nil
}

// UnmarshalText decodes a backend name via ParseBackend, accepting the same
// aliases as the cmd tools' -backend flags.
func (b *Backend) UnmarshalText(text []byte) error {
	parsed, err := ParseBackend(string(text))
	if err != nil {
		return err
	}
	*b = parsed
	return nil
}

// Spec is a declarative, JSON-(de)serializable description of one
// estimator. Zero values mean "unset": fields a family does not use must be
// left zero (Validate rejects stray settings loudly, so a misspelled
// configuration cannot silently construct the wrong sketch).
type Spec struct {
	// Family selects the estimator family. Required.
	Family Family `json:"family"`
	// Eps is the approximation error budget in (0, 1). Required for every
	// family except frugal, whose answers carry no eps bound (leave zero).
	Eps float64 `json:"eps,omitempty"`
	// Phis are target quantiles in [0, 1]. For the frugal family they
	// select the tracked quantiles (one tracker each; default
	// frugal.DefaultPhis); for the other quantile-answering families they
	// are the default query probes (cmd/streamd answers /quantile with
	// them when the request names no phi). Frequency families take none.
	Phis []float64 `json:"phis,omitempty"`
	// Window is a window size in elements. For the sliding families it is
	// the query window — required (> 0), part of the answer's semantics.
	// For the whole-history frequency/quantile families (serial and
	// parallel) a positive value overrides the sort-window size — a tuning
	// knob, clamped up to the family's eps floor — and zero keeps the
	// default (or, under backend "auto", lets the controller choose).
	// Frugal takes none.
	Window int `json:"window,omitempty"`
	// Capacity is the expected stream length for the quantile families'
	// bucket sizing; zero picks a generous default.
	Capacity int64 `json:"capacity,omitempty"`
	// Shards is the worker count for the parallel families; zero selects
	// GOMAXPROCS. Serial families take none.
	Shards int `json:"shards,omitempty"`
	// Async enables staged asynchronous ingestion (sort overlaps
	// merge/compress). Not applicable to frugal, which never sorts.
	Async bool `json:"async,omitempty"`
	// Backend is the sorting backend the estimator's pipeline runs on.
	// The zero value is BackendGPU, so an omitted JSON field selects the
	// paper's GPU sorter.
	Backend Backend `json:"backend,omitempty"`
	// Support is the default heavy-hitter support threshold in (0, 1) for
	// frequency-answering families — a query-time default (used by
	// cmd/streamd's /heavyhitters), not a construction parameter.
	Support float64 `json:"support,omitempty"`
}

// epsFamilies need an eps budget; frugal is the one family that does not.
func (f Family) needsEps() bool { return f != FamilyFrugal }

// AnswersQuantiles reports whether the family answers quantile queries
// (Snapshot().Quantile returns ok on a non-empty stream).
func (f Family) AnswersQuantiles() bool {
	switch f {
	case FamilyQuantile, FamilySlidingQuantile, FamilyParallelQuantile, FamilyFrugal:
		return true
	}
	return false
}

// AnswersFrequencies reports whether the family answers heavy-hitter and
// point-frequency queries.
func (f Family) AnswersFrequencies() bool {
	switch f {
	case FamilyFrequency, FamilySlidingFrequency, FamilyParallelFrequency:
		return true
	}
	return false
}

// Sliding reports whether the family is windowed.
func (f Family) Sliding() bool {
	return f == FamilySlidingFrequency || f == FamilySlidingQuantile
}

// Parallel reports whether the family shards ingestion.
func (f Family) Parallel() bool {
	return f == FamilyParallelFrequency || f == FamilyParallelQuantile
}

// Validate checks the spec for internal consistency: a nil error means
// NewFromSpec will construct it without panicking. Unknown families, eps
// outside (0, 1), and any field set for a family that does not use it are
// all rejected with a descriptive error.
func (s Spec) Validate() error {
	switch s.Family {
	case FamilyFrequency, FamilyQuantile, FamilySlidingFrequency,
		FamilySlidingQuantile, FamilyParallelFrequency,
		FamilyParallelQuantile, FamilyFrugal:
	default:
		return fmt.Errorf("gpustream: spec has no valid family (got %v)", s.Family)
	}
	if s.Family.needsEps() {
		if s.Eps <= 0 || s.Eps >= 1 {
			return fmt.Errorf("gpustream: spec eps %v out of (0, 1) for family %v", s.Eps, s.Family)
		}
	} else if s.Eps != 0 {
		return fmt.Errorf("gpustream: family %v carries no eps bound; leave eps zero (got %v)", s.Family, s.Eps)
	}
	if s.Family.Sliding() {
		if s.Window <= 0 {
			return fmt.Errorf("gpustream: family %v needs window > 0 (got %d)", s.Family, s.Window)
		}
	} else if s.Window != 0 {
		if s.Family == FamilyFrugal {
			return fmt.Errorf("gpustream: family %v takes no window (got %d)", s.Family, s.Window)
		}
		if s.Window < 0 {
			return fmt.Errorf("gpustream: spec window %d < 0 (zero keeps the default sort window)", s.Window)
		}
	}
	if s.Family.Parallel() {
		if s.Shards < 0 {
			return fmt.Errorf("gpustream: spec shards %d < 0 (zero selects GOMAXPROCS)", s.Shards)
		}
	} else if s.Shards != 0 {
		return fmt.Errorf("gpustream: family %v does not shard (got shards %d)", s.Family, s.Shards)
	}
	switch s.Family {
	case FamilyQuantile, FamilyParallelQuantile:
		if s.Capacity < 0 {
			return fmt.Errorf("gpustream: spec capacity %d < 0 (zero picks a default)", s.Capacity)
		}
	default:
		if s.Capacity != 0 {
			return fmt.Errorf("gpustream: family %v takes no capacity (got %d)", s.Family, s.Capacity)
		}
	}
	if s.Family == FamilyFrugal && s.Async {
		return fmt.Errorf("gpustream: family frugal never sorts; async does not apply")
	}
	if len(s.Phis) > 0 && !s.Family.AnswersQuantiles() {
		return fmt.Errorf("gpustream: family %v answers no quantile queries; phis do not apply", s.Family)
	}
	for _, phi := range s.Phis {
		if phi < 0 || phi > 1 {
			return fmt.Errorf("gpustream: spec phi %v out of [0, 1]", phi)
		}
	}
	if s.Support != 0 {
		if !s.Family.AnswersFrequencies() {
			return fmt.Errorf("gpustream: family %v answers no frequency queries; support does not apply", s.Family)
		}
		if s.Support < 0 || s.Support >= 1 {
			return fmt.Errorf("gpustream: spec support %v out of [0, 1)", s.Support)
		}
	}
	switch s.Backend {
	case BackendGPU, BackendGPUBitonic, BackendCPU, BackendCPUParallel,
		BackendSampleSort, BackendAuto:
	default:
		return fmt.Errorf("gpustream: spec has unknown backend %v", s.Backend)
	}
	return nil
}

// ParseSpec decodes and validates a JSON spec document — the request body
// cmd/streamd's PUT handler accepts. Unknown JSON fields are rejected, so a
// misspelled key fails loudly instead of leaving a default in place.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("gpustream: bad spec document: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// NewFromSpec validates the spec and constructs the estimator it describes
// through the same typed constructors callers use directly, so the result
// is bit-identical to a hand-built estimator of the same configuration. The
// spec's backend must match the engine's: the engine is the backend
// binding, and a spec asking for a different sorter is a configuration
// error, not a silent override.
func (e *Engine[T]) NewFromSpec(spec Spec) (Estimator[T], error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Backend != e.backend {
		return nil, fmt.Errorf("gpustream: spec backend %v does not match engine backend %v", spec.Backend, e.backend)
	}
	var eopts []EstimatorOption
	var popts []ParallelOption
	if spec.Async {
		eopts = append(eopts, WithAsyncIngestion())
		popts = append(popts, WithAsyncShards())
	}
	if spec.Window > 0 && !spec.Family.Sliding() {
		eopts = append(eopts, WithSortWindow(spec.Window))
		popts = append(popts, WithShardSortWindow(spec.Window))
	}
	switch spec.Family {
	case FamilyFrequency:
		return e.NewFrequencyEstimator(spec.Eps, eopts...), nil
	case FamilyQuantile:
		return e.NewQuantileEstimator(spec.Eps, spec.Capacity, eopts...), nil
	case FamilySlidingFrequency:
		return e.NewSlidingFrequency(spec.Eps, spec.Window, eopts...), nil
	case FamilySlidingQuantile:
		return e.NewSlidingQuantile(spec.Eps, spec.Window, eopts...), nil
	case FamilyParallelFrequency:
		return e.NewParallelFrequencyEstimator(spec.Eps, spec.Shards, popts...), nil
	case FamilyParallelQuantile:
		return e.NewParallelQuantileEstimator(spec.Eps, spec.Capacity, spec.Shards, popts...), nil
	case FamilyFrugal:
		var fopts []FrugalOption
		if len(spec.Phis) > 0 {
			fopts = append(fopts, WithPhis(spec.Phis...))
		}
		return e.NewFrugalEstimator(fopts...), nil
	}
	// Unreachable: Validate pinned the family above.
	return nil, fmt.Errorf("gpustream: spec has no valid family (got %v)", spec.Family)
}
