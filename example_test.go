package gpustream_test

import (
	"fmt"

	"gpustream"
)

// ExampleEngine_Sort sorts a slice on the simulated GPU.
func ExampleEngine_Sort() {
	eng := gpustream.New(gpustream.BackendGPU)
	data := []float32{3, 1, 4, 1, 5, 9, 2, 6}
	eng.Sort(data)
	fmt.Println(data)
	// Output: [1 1 2 3 4 5 6 9]
}

// ExampleEngine_NewFrequencyEstimator finds items above a support threshold.
func ExampleEngine_NewFrequencyEstimator() {
	eng := gpustream.New(gpustream.BackendGPU)
	est := eng.NewFrequencyEstimator(0.01)
	for i := 0; i < 900; i++ {
		est.Process(7) // item 7 dominates
	}
	for i := 0; i < 100; i++ {
		est.Process(float32(i % 10 * 100))
	}
	for _, item := range est.Query(0.5) {
		fmt.Printf("item %v appears at least %d times\n", item.Value, item.Freq)
	}
	// Output: item 7 appears at least 900 times
}

// ExampleEngine_NewQuantileEstimator answers quantile queries within eps.
func ExampleEngine_NewQuantileEstimator() {
	eng := gpustream.New(gpustream.BackendGPU)
	est := eng.NewQuantileEstimator(0.01, 1000)
	for i := 1; i <= 1000; i++ {
		est.Process(float32(i))
	}
	fmt.Println(est.Query(0.5))
	// Output: 500
}

// ExampleKthLargest selects without sorting, via GPU counting passes.
func ExampleKthLargest() {
	fmt.Println(gpustream.KthLargest([]float32{10, 40, 30, 20}, 2))
	// Output: 30
}

// ExampleEngine_NewSlidingQuantile queries the most recent elements only.
func ExampleEngine_NewSlidingQuantile() {
	eng := gpustream.New(gpustream.BackendCPU)
	est := eng.NewSlidingQuantile(0.01, 100)
	for i := 0; i < 1000; i++ {
		est.Process(float32(i))
	}
	// Only 900..999 remain in the window; the median is ~950.
	med := est.Query(0.5)
	fmt.Println(med >= 945 && med <= 955)
	// Output: true
}
