package gpustream

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gpustream/internal/sorter"
)

// The goldens under testdata/snapshots pin the wire format at the byte
// level: any encoding change — field order, widths, endianness — fails these
// tests. An intentional format change must bump wire.Version and regenerate
// with `go test -run TestGoldenSnapshots -update`.
var updateGolden = flag.Bool("update", false, "rewrite the golden snapshot files under testdata/snapshots")

const (
	goldenN   = 3001 // not a multiple of any pane size, so partial panes serialize
	goldenEps = 0.02
	goldenW   = 600
)

// goldenValues is a deterministic skewed stream built from an explicit LCG —
// no math/rand dependency, so the byte streams can never drift with the
// standard library. Low ids repeat often enough to be heavy hitters at
// goldenEps; every id converts exactly to every Value type.
func goldenValues[T Value](n int) []T {
	vals := make([]T, n)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range vals {
		x = x*6364136223846793005 + 1442695040888963407
		r := (x >> 33) % 1000
		var id uint64
		switch {
		case r < 500:
			id = r % 8
		case r < 800:
			id = 8 + r%64
		default:
			id = 72 + r%512
		}
		vals[i] = T(id)
	}
	return vals
}

// goldenSnapshots builds one snapshot per unkeyed wire family over the
// golden stream. The parallel estimators marshal through the same two body
// layouts (frequency, quantile), so these five blobs cover every unkeyed
// family's encoding; the keyed family has its own golden in
// TestGoldenKeyedSnapshots because its snapshot is not a Snapshot[T].
func goldenSnapshots[T Value](t testing.TB) map[string]Snapshot[T] {
	t.Helper()
	data := goldenValues[T](goldenN)
	eng := NewOf[T](BackendCPU)

	fe := eng.NewFrequencyEstimator(goldenEps)
	qe := eng.NewQuantileEstimator(goldenEps, goldenN)
	sf := eng.NewSlidingFrequency(goldenEps, goldenW)
	sq := eng.NewSlidingQuantile(goldenEps, goldenW)
	fr := eng.NewFrugalEstimator(WithFrugalSeed(7))
	for _, est := range []Estimator[T]{fe, qe, sf, sq, fr} {
		if err := est.ProcessSlice(data); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	return map[string]Snapshot[T]{
		"frequency":        fe.Snapshot(),
		"quantile":         qe.Snapshot(),
		"window-frequency": sf.Snapshot(),
		"window-quantile":  sq.Snapshot(),
		"frugal":           fr.Snapshot(),
	}
}

func typeName[T Value]() string {
	var z T
	return fmt.Sprintf("%T", z)
}

func mustMarshal[T Value](t testing.TB, s Snapshot[T]) []byte {
	t.Helper()
	blob, err := MarshalSnapshot(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return blob
}

// assertSameAnswers checks that two snapshots answer every View query
// identically. Values are compared through their order-preserving keys, so
// the comparison is bit-exact and NaN-safe.
func assertSameAnswers[T Value](t *testing.T, want, got Snapshot[T]) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Fatalf("Count = %d, want %d", got.Count(), want.Count())
	}
	if got.Size() != want.Size() {
		t.Fatalf("Size = %d, want %d", got.Size(), want.Size())
	}
	for _, phi := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		wv, wok := want.Quantile(phi)
		gv, gok := got.Quantile(phi)
		if wok != gok || sorter.OrderedKey(wv) != sorter.OrderedKey(gv) {
			t.Fatalf("Quantile(%g) = (%v, %v), want (%v, %v)", phi, gv, gok, wv, wok)
		}
	}
	for _, sp := range []float64{0.001, 0.01, 0.05, 0.2} {
		wi, wok := want.HeavyHitters(sp)
		gi, gok := got.HeavyHitters(sp)
		if wok != gok || len(wi) != len(gi) {
			t.Fatalf("HeavyHitters(%g): %d items ok=%v, want %d ok=%v", sp, len(gi), gok, len(wi), wok)
		}
		for i := range wi {
			if sorter.OrderedKey(wi[i].Value) != sorter.OrderedKey(gi[i].Value) || wi[i].Freq != gi[i].Freq {
				t.Fatalf("HeavyHitters(%g)[%d] = %+v, want %+v", sp, i, gi[i], wi[i])
			}
		}
		for _, it := range wi {
			wf, wok2 := want.Frequency(it.Value)
			gf, gok2 := got.Frequency(it.Value)
			if wok2 != gok2 || wf != gf {
				t.Fatalf("Frequency(%v) = (%d, %v), want (%d, %v)", it.Value, gf, gok2, wf, wok2)
			}
		}
	}
}

// TestGoldenSnapshots locks the wire format byte for byte: marshaling the
// golden stream's snapshots must reproduce the committed blobs exactly, and
// decoding the committed blobs must reproduce the live snapshots' answers
// exactly and re-marshal to the same bytes (canonical encoding).
func TestGoldenSnapshots(t *testing.T) {
	t.Run("float32", testGoldenSnapshots[float32])
	t.Run("uint64", testGoldenSnapshots[uint64])
}

func testGoldenSnapshots[T Value](t *testing.T) {
	for name, snap := range goldenSnapshots[T](t) {
		t.Run(name, func(t *testing.T) {
			blob := mustMarshal(t, snap)
			if again := mustMarshal(t, snap); !bytes.Equal(blob, again) {
				t.Fatal("marshal is not deterministic")
			}

			path := filepath.Join("testdata", "snapshots", name+"."+typeName[T]()+".snap")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with `go test -run TestGoldenSnapshots -update`): %v", err)
			}
			if !bytes.Equal(blob, want) {
				t.Fatalf("wire bytes drifted from %s (%d bytes, golden %d): format changes must bump wire.Version and regenerate goldens",
					path, len(blob), len(want))
			}

			dec, err := UnmarshalSnapshot[T](want)
			if err != nil {
				t.Fatalf("unmarshal golden: %v", err)
			}
			assertSameAnswers(t, snap, dec)
			if re := mustMarshal(t, dec); !bytes.Equal(re, want) {
				t.Fatal("decode then re-marshal of the golden is not the identity")
			}
		})
	}
}

// goldenKeyedSnapshot builds the keyed family's golden over the golden
// stream: golden ids as keys (the eight hottest each hold ~6% of the
// stream, so they promote at 5% support) and a deterministic value cycle,
// exercising both tiers plus the nested oracle blob in one encoding.
func goldenKeyedSnapshot[K, T Value](t testing.TB) *KeyedSnapshot[K, T] {
	t.Helper()
	keys := goldenValues[K](goldenN)
	vals := make([]T, goldenN)
	for i := range vals {
		vals[i] = T(i % 257)
	}
	eng := NewOf[T](BackendCPU)
	ke := NewKeyedEstimator[K](eng, goldenEps, 0.05, WithKeyedSeed(3))
	if err := ke.ProcessSlice(keys, vals); err != nil {
		t.Fatalf("keyed ingest: %v", err)
	}
	if err := ke.Flush(); err != nil {
		t.Fatalf("keyed flush: %v", err)
	}
	return ke.Snapshot()
}

func mustMarshalKeyed[K, T Value](t testing.TB, s *KeyedSnapshot[K, T]) []byte {
	t.Helper()
	blob, err := MarshalKeyedSnapshot(s)
	if err != nil {
		t.Fatalf("marshal keyed: %v", err)
	}
	return blob
}

// assertSameKeyedAnswers checks that two keyed snapshots agree on every
// metadata accessor and answer every per-key query identically over the
// probe set (the golden key range plus the key-space boundaries).
func assertSameKeyedAnswers[K, T Value](t *testing.T, want, got *KeyedSnapshot[K, T]) {
	t.Helper()
	if got.Count() != want.Count() || got.Promotions() != want.Promotions() {
		t.Fatalf("Count/Promotions = %d/%d, want %d/%d", got.Count(), got.Promotions(), want.Count(), want.Promotions())
	}
	if got.Phi() != want.Phi() || got.Support() != want.Support() {
		t.Fatalf("Phi/Support = %g/%g, want %g/%g", got.Phi(), got.Support(), want.Phi(), want.Support())
	}
	if got.Keys() != want.Keys() || got.FrugalKeys() != want.FrugalKeys() || got.PromotedKeys() != want.PromotedKeys() {
		t.Fatalf("tiers = %d/%d/%d, want %d/%d/%d",
			got.Keys(), got.FrugalKeys(), got.PromotedKeys(),
			want.Keys(), want.FrugalKeys(), want.PromotedKeys())
	}
	probes := make([]K, 0, 603)
	for id := uint64(0); id < 600; id++ {
		probes = append(probes, K(id))
	}
	for _, b := range []uint64{0, 1 << 30, 1<<31 - 1} {
		probes = append(probes, K(b))
	}
	for _, k := range probes {
		if wp, gp := want.Promoted(k), got.Promoted(k); wp != gp {
			t.Fatalf("Promoted(%v) = %v, want %v", k, gp, wp)
		}
		wc, wok := want.KeyCount(k)
		gc, gok := got.KeyCount(k)
		if wok != gok || wc != gc {
			t.Fatalf("KeyCount(%v) = (%d, %v), want (%d, %v)", k, gc, gok, wc, wok)
		}
		for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
			wv, wok := want.Quantile(k, phi)
			gv, gok := got.Quantile(k, phi)
			if wok != gok || sorter.OrderedKey(wv) != sorter.OrderedKey(gv) {
				t.Fatalf("Quantile(%v, %g) = (%v, %v), want (%v, %v)", k, phi, gv, gok, wv, wok)
			}
		}
	}
	for _, sp := range []float64{0.01, 0.05, 0.2} {
		wi, gi := want.HeavyKeys(sp), got.HeavyKeys(sp)
		if len(wi) != len(gi) {
			t.Fatalf("HeavyKeys(%g): %d items, want %d", sp, len(gi), len(wi))
		}
		for i := range wi {
			if sorter.OrderedKey(wi[i].Value) != sorter.OrderedKey(gi[i].Value) || wi[i].Freq != gi[i].Freq {
				t.Fatalf("HeavyKeys(%g)[%d] = %+v, want %+v", sp, i, gi[i], wi[i])
			}
		}
	}
}

// TestGoldenKeyedSnapshots is the keyed family's byte-level format lock,
// parallel to TestGoldenSnapshots: the keyed snapshot surface (two type
// tags, two tiers, a nested oracle blob) marshals through its own entry
// points, so it gets its own golden and its own answer-equality check.
func TestGoldenKeyedSnapshots(t *testing.T) {
	t.Run("uint64-float32", testGoldenKeyedSnapshots[uint64, float32])
	t.Run("uint32-uint64", testGoldenKeyedSnapshots[uint32, uint64])
}

func testGoldenKeyedSnapshots[K, T Value](t *testing.T) {
	snap := goldenKeyedSnapshot[K, T](t)
	blob := mustMarshalKeyed(t, snap)
	if again := mustMarshalKeyed(t, snap); !bytes.Equal(blob, again) {
		t.Fatal("keyed marshal is not deterministic")
	}

	path := filepath.Join("testdata", "snapshots", "keyed."+typeName[K]()+"-"+typeName[T]()+".snap")
	if *updateGolden {
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with `go test -run TestGoldenKeyedSnapshots -update`): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("keyed wire bytes drifted from %s (%d bytes, golden %d): format changes must bump wire.Version and regenerate goldens",
			path, len(blob), len(want))
	}

	dec, err := UnmarshalKeyedSnapshot[K, T](want)
	if err != nil {
		t.Fatalf("unmarshal keyed golden: %v", err)
	}
	if snap.PromotedKeys() == 0 || snap.FrugalKeys() == 0 {
		t.Fatalf("golden keyed stream must populate both tiers, got %d frugal / %d promoted",
			snap.FrugalKeys(), snap.PromotedKeys())
	}
	assertSameKeyedAnswers(t, snap, dec)
	if re := mustMarshalKeyed(t, dec); !bytes.Equal(re, want) {
		t.Fatal("decode then re-marshal of the keyed golden is not the identity")
	}
}
