package gpustream

// Integration tests: end-to-end flows across modules — trace recording and
// replay feeding both estimator families on both backends, checked against
// exact ground truth; determinism; and whole-history vs sliding-window
// consistency.

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

func TestTraceReplayPipeline(t *testing.T) {
	// Record a synthetic "finance log", replay it through a TraceSource in
	// windows, and mine it on both backends.
	const n = 50000
	const eps = 0.005
	original := stream.Zipf(n, 1.2, 2000, 101)
	var buf bytes.Buffer
	if err := stream.WriteTrace(&buf, original); err != nil {
		t.Fatal(err)
	}

	for _, backend := range []Backend{BackendGPU, BackendCPU} {
		src, err := stream.NewTraceSource(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		eng := New(backend)
		freq := eng.NewFrequencyEstimator(eps)
		quant := eng.NewQuantileEstimator(eps, n)

		w := stream.NewWindower(src, 4096)
		for {
			win, ok := w.Next()
			if !ok {
				break
			}
			freq.ProcessSlice(win)
			quant.ProcessSlice(win)
		}
		if src.Err() != nil {
			t.Fatal(src.Err())
		}

		// Frequency vs exact.
		exact := map[float32]int64{}
		for _, v := range original {
			exact[v]++
		}
		for v, c := range exact {
			est := freq.Estimate(v)
			if est > c || float64(c-est) > eps*float64(n)+1e-9 {
				t.Fatalf("%v: freq of %v = %d, true %d", backend, v, est, c)
			}
		}

		// Quantiles vs exact ranks.
		ref := append([]float32(nil), original...)
		cpusort.Quicksort(ref)
		for _, phi := range []float64{0.1, 0.5, 0.9} {
			got := quant.Query(phi)
			r := int(math.Ceil(phi * float64(n)))
			lo := sort.Search(len(ref), func(i int) bool { return ref[i] >= got }) + 1
			hi := sort.Search(len(ref), func(i int) bool { return ref[i] > got })
			var d int
			switch {
			case r < lo:
				d = lo - r
			case r > hi:
				d = r - hi
			}
			if float64(d) > eps*float64(n)+1 {
				t.Fatalf("%v: phi=%v rank error %d", backend, phi, d)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]Item[float32], float32) {
		eng := New(BackendGPU)
		data := stream.Bursty(20000, 500, 300, 0.005, 7)
		f := eng.NewFrequencyEstimator(0.01)
		q := eng.NewQuantileEstimator(0.01, 20000)
		f.ProcessSlice(data)
		q.ProcessSlice(data)
		return f.Query(0.05), q.Query(0.5)
	}
	f1, q1 := run()
	f2, q2 := run()
	if q1 != q2 || len(f1) != len(f2) {
		t.Fatal("pipeline not deterministic")
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("frequency results not deterministic")
		}
	}
}

func TestSlidingMatchesWholeHistoryWhenWindowCoversStream(t *testing.T) {
	// A sliding window larger than the whole stream must answer like the
	// whole-history estimator, within combined error bounds.
	const n = 8000
	const eps = 0.01
	data := stream.Zipf(n, 1.3, 400, 9)
	eng := New(BackendCPU)

	whole := eng.NewFrequencyEstimator(eps)
	sliding := eng.NewSlidingFrequency(eps, 2*n)
	whole.ProcessSlice(data)
	sliding.ProcessSlice(data)

	exact := map[float32]int64{}
	for _, v := range data {
		exact[v]++
	}
	for v, c := range exact {
		if c < int64(3*eps*n) {
			continue // below both structures' noise floors
		}
		w := whole.Estimate(v)
		s := sliding.Estimate(v)
		// Each is within eps-ish of truth; they must be within combined
		// slack of each other.
		if math.Abs(float64(w-s)) > 2*eps*float64(2*n)+1 {
			t.Fatalf("whole=%d sliding=%d for %v (true %d)", w, s, v, c)
		}
	}

	wq := eng.NewQuantileEstimator(eps, n)
	sq := eng.NewSlidingQuantile(eps, 2*n)
	wq.ProcessSlice(data)
	sq.ProcessSlice(data)
	ref := append([]float32(nil), data...)
	cpusort.Quicksort(ref)
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		a, b := wq.Query(phi), sq.Query(phi)
		ia := sort.Search(len(ref), func(i int) bool { return ref[i] >= a })
		ib := sort.Search(len(ref), func(i int) bool { return ref[i] >= b })
		if math.Abs(float64(ia-ib)) > 4*eps*float64(2*n)+2 {
			t.Fatalf("phi=%v: whole %v (rank %d) vs sliding %v (rank %d)", phi, a, ia, b, ib)
		}
	}
}

func TestAllSortersAgreeOnManyDistributions(t *testing.T) {
	dists := map[string][]float32{
		"uniform":  stream.Uniform(30000, 1),
		"zipf":     stream.Zipf(30000, 1.1, 777, 2),
		"gauss":    stream.Gaussian(30000, 0, 5, 3),
		"sorted":   stream.Sorted(30000),
		"reversed": stream.ReverseSorted(30000),
		"nearly":   stream.NearlySorted(30000, 0.02, 4),
		"bursty":   stream.Bursty(30000, 100, 500, 0.01, 5),
	}
	backends := []Backend{BackendGPU, BackendGPUBitonic, BackendCPU, BackendCPUParallel}
	for name, data := range dists {
		want := append([]float32(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, b := range backends {
			got := append([]float32(nil), data...)
			New(b).Sort(got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v on %s: mismatch at %d", b, name, i)
				}
			}
		}
		// Radix baseline agrees too.
		got := append([]float32(nil), data...)
		cpusort.RadixSort(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("radix on %s: mismatch at %d", name, i)
			}
		}
	}
}
