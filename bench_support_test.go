package gpustream

import (
	"fmt"
	"testing"

	"gpustream/internal/gpu"
	"gpustream/internal/gpusort"
	"gpustream/internal/stream"
)

// benchRowBlocks drives one PBSN step with the optimized full-height quads
// and with naive per-row quads over the same texture.
func benchRowBlocks(b *testing.B) {
	const W, H = 256, 256
	data := stream.Uniform(W*H, 14)
	variants := map[string]func(*gpu.Device[float32], *gpu.Texture[float32], int){
		"row-block-quads": gpusort.SortStep[float32],
		"per-row-quads":   gpusort.SortStepPerRow[float32],
	}
	for name, step := range variants {
		b.Run(name, func(b *testing.B) {
			tex := gpu.NewTexture[float32](W, H)
			tex.LoadChannel(0, data)
			dev := gpu.NewDevice[float32](W, H)
			gpusort.Copy(dev, tex)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for blk := 2; blk <= W; blk *= 2 {
					step(dev, tex, blk)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(dev.Stats().DrawCalls)/float64(b.N), "draw-calls/op")
		})
	}
	_ = fmt.Sprintf
}
