package gpustream

// The paper states (Section 1.2) that its approach "is also applicable to
// hierarchical heavy hitter and correlated sum aggregate queries"; this file
// exposes those two extensions plus the sensor-network aggregation model the
// quantile algorithm builds on, all bound to the engine's sorting backend.
//
// HHH estimation is generic over unsigned integer item types (hhh.Item:
// ~uint32 | ~uint64) and a method cannot introduce its own type parameter,
// so the HHH constructor is the free function NewHHHEstimator over the
// engine. The correlated-sum and DSMS extensions process (float32, float64)
// pair streams and float32 batches respectively; their constructors bind a
// fresh float32 sorter of the engine's backend whatever the engine's own
// element type.

import (
	"gpustream/internal/corrsum"
	"gpustream/internal/dsms"
	"gpustream/internal/gpusort"
	"gpustream/internal/half"
	"gpustream/internal/hhh"
	"gpustream/internal/sensortree"
)

// HHHItem constrains the integer item types a prefix hierarchy aggregates.
type HHHItem = hhh.Item

// Re-exported extension types.
type (
	// HHHEstimator answers hierarchical heavy hitter queries over native
	// integer items.
	HHHEstimator[T HHHItem] = hhh.Estimator[T]
	// HHHPrefix is one reported hierarchical heavy hitter.
	HHHPrefix[T HHHItem] = hhh.Prefix[T]
	// Hierarchy maps items to their ancestors.
	Hierarchy[T HHHItem] = hhh.Hierarchy[T]
	// BitHierarchy is a fixed-stride prefix hierarchy over integer items.
	BitHierarchy[T HHHItem] = hhh.BitHierarchy[T]
	// Pair is one (key, value) element of a correlated-sum stream.
	Pair = corrsum.Pair
	// CorrelatedSum answers SUM(value) WHERE key <= t queries.
	CorrelatedSum = corrsum.Estimator
	// SensorNode is one sensor in an aggregation tree.
	SensorNode = sensortree.Node
	// SensorStats reports aggregation communication cost.
	SensorStats = sensortree.Stats
)

// NewBitHierarchy returns a prefix hierarchy over items of the given bit
// width aggregated stride bits at a time. The full native width is
// supported: 32 bits for uint32 items (IPv4 addresses), 64 for uint64.
func NewBitHierarchy[T HHHItem](bits, stride int) BitHierarchy[T] {
	return hhh.NewBitHierarchy[T](bits, stride)
}

// NewHHHEstimator returns an eps-approximate hierarchical heavy hitter
// estimator over the given hierarchy, sorting with a fresh instance of the
// engine's backend. Items flow through the stack natively as T — uint32
// hierarchies cover IPv4 outright, uint64 the full 64-bit key space — with
// no float encoding and no width cap.
func NewHHHEstimator[T HHHItem](e *Engine[T], h Hierarchy[T], eps float64) *HHHEstimator[T] {
	return hhh.NewEstimator(h, eps, e.newBackendSorter())
}

// NewCorrelatedSum returns an eps-approximate correlated-sum estimator for
// streams of up to capacity pairs, sorting with this engine's backend.
// Pair streams are (float32 key, float64 value) regardless of the engine's
// element type.
func (e *Engine[T]) NewCorrelatedSum(eps float64, capacity int64) *CorrelatedSum {
	return corrsum.NewEstimator(eps, capacity, newBackendSorter[float32](e.backend))
}

// AggregateSensorTree runs a Greenwald-Khanna sensor-network aggregation
// over the tree rooted at root with error eps, sorting each node's local
// float32 observations on this engine's backend. It returns the root
// quantile summary (queryable via Query/QueryRank) and communication
// statistics.
func (e *Engine[T]) AggregateSensorTree(root *SensorNode, eps float64) (*QuantileSummary[float32], SensorStats) {
	return sensortree.NewAggregator(eps, newBackendSorter[float32](e.backend)).Aggregate(root)
}

// KthLargest returns the k-th largest value of data (k = 1 is the maximum)
// using GPU occlusion-query selection: at most KeyBits counting passes (32
// or 64 by element type), no sort. The computation always runs on the GPU
// simulator regardless of the engine's sorting backend, since it is a
// GPU-native primitive.
func KthLargest[T Value](data []T, k int) T {
	return gpusort.KthLargest(data, k)
}

// Quantize16 rounds data in place through IEEE half precision, emulating
// the paper's 16-bit input streams and render targets. Order is preserved,
// so every estimator guarantee survives quantization (values simply
// coarsen to ~3 decimal digits).
func Quantize16(data []float32) { half.Quantize(data) }

// NewExecutor returns a miniature DSMS around this engine's backend:
// register continuous queries, push arriving float32 batches, read results.
// budget caps the elements processed per Push; excess arrivals are
// load-shed (0 disables shedding).
func (e *Engine[T]) NewExecutor(budget int) *Executor {
	return dsms.NewExecutor(newBackendSorter[float32](e.backend), budget)
}

// DSMS re-exports.
type (
	// Executor runs registered continuous queries over arriving batches.
	Executor = dsms.Executor
	// QuerySpec declares one continuous query for an Executor.
	QuerySpec = dsms.QuerySpec
	// QueryResult is one evaluated continuous-query snapshot.
	QueryResult = dsms.Result
	// ExecutorStats accounts executor ingest and load shedding.
	ExecutorStats = dsms.Stats
)

// Continuous-query kinds.
const (
	// FrequencyAbove reports items above a support threshold.
	FrequencyAbove = dsms.FrequencyAbove
	// QuantileAt reports the phi-quantile.
	QuantileAt = dsms.QuantileAt
	// SlidingFrequencyAbove is FrequencyAbove over the last W elements.
	SlidingFrequencyAbove = dsms.SlidingFrequencyAbove
	// SlidingQuantileAt is QuantileAt over the last W elements.
	SlidingQuantileAt = dsms.SlidingQuantileAt
)
