package gpustream

// The paper states (Section 1.2) that its approach "is also applicable to
// hierarchical heavy hitter and correlated sum aggregate queries"; this file
// exposes those two extensions plus the sensor-network aggregation model the
// quantile algorithm builds on, all bound to the engine's sorting backend.

import (
	"gpustream/internal/corrsum"
	"gpustream/internal/dsms"
	"gpustream/internal/gpusort"
	"gpustream/internal/half"
	"gpustream/internal/hhh"
	"gpustream/internal/sensortree"
)

// Re-exported extension types.
type (
	// HHHEstimator answers hierarchical heavy hitter queries.
	HHHEstimator = hhh.Estimator
	// HHHPrefix is one reported hierarchical heavy hitter.
	HHHPrefix = hhh.Prefix
	// BitHierarchy is a fixed-stride prefix hierarchy over integer items.
	BitHierarchy = hhh.BitHierarchy
	// Pair is one (key, value) element of a correlated-sum stream.
	Pair = corrsum.Pair
	// CorrelatedSum answers SUM(value) WHERE key <= t queries.
	CorrelatedSum = corrsum.Estimator
	// SensorNode is one sensor in an aggregation tree.
	SensorNode = sensortree.Node
	// SensorStats reports aggregation communication cost.
	SensorStats = sensortree.Stats
)

// NewBitHierarchy returns a prefix hierarchy over items of the given bit
// width (<= 24, so prefixes stay exact in float32) aggregated stride bits
// at a time.
func NewBitHierarchy(bits, stride int) BitHierarchy {
	return hhh.NewBitHierarchy(bits, stride)
}

// NewHHHEstimator returns an eps-approximate hierarchical heavy hitter
// estimator over the given hierarchy, backed by this engine's sorter.
func (e *Engine) NewHHHEstimator(h hhh.Hierarchy, eps float64) *HHHEstimator {
	return hhh.NewEstimator(h, eps, e.srt)
}

// NewCorrelatedSum returns an eps-approximate correlated-sum estimator for
// streams of up to capacity pairs, backed by this engine's sorter.
func (e *Engine) NewCorrelatedSum(eps float64, capacity int64) *CorrelatedSum {
	return corrsum.NewEstimator(eps, capacity, e.srt)
}

// AggregateSensorTree runs a Greenwald-Khanna sensor-network aggregation
// over the tree rooted at root with error eps, sorting each node's local
// observations on this engine's backend. It returns the root quantile
// summary (queryable via Query/QueryRank) and communication statistics.
func (e *Engine) AggregateSensorTree(root *SensorNode, eps float64) (*QuantileSummary, SensorStats) {
	return sensortree.NewAggregator(eps, e.srt).Aggregate(root)
}

// KthLargest returns the k-th largest value of data (k = 1 is the maximum)
// using GPU occlusion-query selection: at most 32 counting passes, no sort.
// The computation always runs on the GPU simulator regardless of the
// engine's sorting backend, since it is a GPU-native primitive.
func KthLargest(data []float32, k int) float32 {
	return gpusort.KthLargest(data, k)
}

// Quantize16 rounds data in place through IEEE half precision, emulating
// the paper's 16-bit input streams and render targets. Order is preserved,
// so every estimator guarantee survives quantization (values simply
// coarsen to ~3 decimal digits).
func Quantize16(data []float32) { half.Quantize(data) }

// NewExecutor returns a miniature DSMS around this engine's backend:
// register continuous queries, push arriving batches, read results.
// budget caps the elements processed per Push; excess arrivals are
// load-shed (0 disables shedding).
func (e *Engine) NewExecutor(budget int) *Executor {
	return dsms.NewExecutor(e.srt, budget)
}

// DSMS re-exports.
type (
	// Executor runs registered continuous queries over arriving batches.
	Executor = dsms.Executor
	// QuerySpec declares one continuous query for an Executor.
	QuerySpec = dsms.QuerySpec
	// QueryResult is one evaluated continuous-query snapshot.
	QueryResult = dsms.Result
	// ExecutorStats accounts executor ingest and load shedding.
	ExecutorStats = dsms.Stats
)

// Continuous-query kinds.
const (
	// FrequencyAbove reports items above a support threshold.
	FrequencyAbove = dsms.FrequencyAbove
	// QuantileAt reports the phi-quantile.
	QuantileAt = dsms.QuantileAt
	// SlidingFrequencyAbove is FrequencyAbove over the last W elements.
	SlidingFrequencyAbove = dsms.SlidingFrequencyAbove
	// SlidingQuantileAt is QuantileAt over the last W elements.
	SlidingQuantileAt = dsms.SlidingQuantileAt
)
