package gpustream

// The acceptance matrix: every estimator family, on every backend, across
// distributions and epsilon values, checked against exact ground truth.
// This is the library's broadest single guarantee check; cmd/validate is
// its runnable, report-producing sibling.

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

func matrixDistributions(n int) map[string][]float32 {
	return map[string][]float32{
		"uniform": stream.Uniform(n, 1),
		"zipf":    stream.Zipf(n, 1.2, n/100+5, 2),
		"sorted":  stream.Sorted(n),
		"bursty":  stream.Bursty(n, n/50+5, n/100+1, 0.01, 3),
	}
}

func TestAcceptanceMatrix(t *testing.T) {
	const n = 20000
	backends := []Backend{BackendGPU, BackendCPU, BackendCPUParallel, BackendSampleSort}
	epsilons := []float64{0.02, 0.005}

	for name, data := range matrixDistributions(n) {
		ref := append([]float32(nil), data...)
		cpusort.Quicksort(ref)
		exact := map[float32]int64{}
		for _, v := range data {
			exact[v]++
		}

		for _, backend := range backends {
			for _, eps := range epsilons {
				t.Run(name+"/"+backend.String(), func(t *testing.T) {
					eng := New(backend)

					// Frequency: undercount within eps*N, never over.
					fe := eng.NewFrequencyEstimator(eps)
					fe.ProcessSlice(data)
					for v, truth := range exact {
						got := fe.Estimate(v)
						if got > truth || float64(truth-got) > eps*n+1e-9 {
							t.Fatalf("eps=%v frequency(%v) = %d, true %d", eps, v, got, truth)
						}
					}

					// Quantile: rank error within eps*N at a probe grid.
					qe := eng.NewQuantileEstimator(eps, n)
					qe.ProcessSlice(data)
					for p := 0; p <= 10; p++ {
						phi := float64(p) / 10
						r := int(math.Ceil(phi * n))
						if r < 1 {
							r = 1
						}
						got := qe.Query(phi)
						lo := sort.Search(len(ref), func(i int) bool { return ref[i] >= got }) + 1
						hi := sort.Search(len(ref), func(i int) bool { return ref[i] > got })
						var d int
						switch {
						case r < lo:
							d = lo - r
						case r > hi:
							d = r - hi
						}
						if float64(d) > eps*n+1 {
							t.Fatalf("eps=%v phi=%v rank error %d", eps, phi, d)
						}
					}
				})
			}
		}
	}
}

func TestAcceptanceMatrixSliding(t *testing.T) {
	const n, w = 20000, 4000
	const eps = 0.01
	for name, data := range matrixDistributions(n) {
		for _, backend := range []Backend{BackendGPU, BackendCPU, BackendSampleSort} {
			t.Run(name+"/"+backend.String(), func(t *testing.T) {
				eng := New(backend)
				sf := eng.NewSlidingFrequency(eps, w)
				sq := eng.NewSlidingQuantile(eps, w)
				sf.ProcessSlice(data)
				sq.ProcessSlice(data)

				win := append([]float32(nil), data[n-w:]...)
				exact := map[float32]int64{}
				for _, v := range win {
					exact[v]++
				}
				for v, truth := range exact {
					if got := sf.Estimate(v); math.Abs(float64(got-truth)) > eps*w+1e-9 {
						t.Fatalf("sliding frequency(%v) = %d, true %d", v, got, truth)
					}
				}
				cpusort.Quicksort(win)
				med := sq.Query(0.5)
				r := w / 2
				lo := sort.Search(len(win), func(i int) bool { return win[i] >= med }) + 1
				hi := sort.Search(len(win), func(i int) bool { return win[i] > med })
				var d int
				switch {
				case r < lo:
					d = lo - r
				case r > hi:
					d = r - hi
				}
				if float64(d) > eps*w+1 {
					t.Fatalf("sliding median rank error %d", d)
				}
			})
		}
	}
}

// typedDistributions builds the uint64 and float64 analogs of the float32
// acceptance distributions. The uint64 streams deliberately occupy the high
// bits (flow keys, nanosecond timestamps) so values are far outside any
// float's exact-integer range; the float64 streams exercise the wide
// mantissa.
func typedDistributionsU64(n int) map[string][]uint64 {
	zipf := stream.ZipfOf[uint64](n, 1.2, n/100+5, 21)
	for i, v := range zipf {
		zipf[i] = v<<40 | 0xF00D // hot items live in the high 24 bits
	}
	return map[string][]uint64{
		"uniform-full-width": stream.UniformU64(n, 20),
		"zipf-high-bits":     zipf,
	}
}

func typedDistributionsF64(n int) map[string][]float64 {
	return map[string][]float64{
		"uniform": stream.UniformOf[float64](n, 22),
		"zipf":    stream.ZipfOf[float64](n, 1.2, n/100+5, 23),
	}
}

// rankError reports how far v lies from rank r in the sorted reference.
func rankError[T Value](ref []T, v T, r int) int {
	lo := sort.Search(len(ref), func(i int) bool { return ref[i] >= v }) + 1
	hi := sort.Search(len(ref), func(i int) bool { return ref[i] > v })
	switch {
	case r < lo:
		return lo - r
	case r > hi:
		return r - hi
	}
	return 0
}

// typedMatrixCase runs every estimator family over one typed stream on one
// backend and checks each family's eps guarantee against exact answers
// computed on the typed data.
func typedMatrixCase[T Value](t *testing.T, data []T, backend Backend, eps float64) {
	n := len(data)
	w := n / 5
	ref := append([]T(nil), data...)
	cpusort.Quicksort(ref)
	exact := map[T]int64{}
	for _, v := range data {
		exact[v]++
	}
	winExact := map[T]int64{}
	for _, v := range data[n-w:] {
		winExact[v]++
	}
	winRef := append([]T(nil), data[n-w:]...)
	cpusort.Quicksort(winRef)

	eng := NewOf[T](backend)

	fe := eng.NewFrequencyEstimator(eps)
	fe.ProcessSlice(data)
	pf := eng.NewParallelFrequencyEstimator(eps, 3, WithBatchSize(1<<12))
	pf.ProcessSlice(data)
	pf.Close()
	for v, truth := range exact {
		if got := fe.Estimate(v); got > truth || float64(truth-got) > eps*float64(n)+1e-9 {
			t.Fatalf("frequency(%v) = %d, true %d", v, got, truth)
		}
		if got := pf.Estimate(v); got > truth || float64(truth-got) > eps*float64(n)+1e-9 {
			t.Fatalf("parallel frequency(%v) = %d, true %d", v, got, truth)
		}
	}

	qe := eng.NewQuantileEstimator(eps, int64(n))
	qe.ProcessSlice(data)
	pq := eng.NewParallelQuantileEstimator(eps, int64(n), 3, WithBatchSize(1<<12))
	pq.ProcessSlice(data)
	pq.Close()
	for p := 0; p <= 10; p++ {
		phi := float64(p) / 10
		r := int(math.Ceil(phi * float64(n)))
		if r < 1 {
			r = 1
		}
		if d := rankError(ref, qe.Query(phi), r); float64(d) > eps*float64(n)+1 {
			t.Fatalf("phi=%v rank error %d", phi, d)
		}
		if d := rankError(ref, pq.Query(phi), r); float64(d) > eps*float64(n)+1 {
			t.Fatalf("parallel phi=%v rank error %d", phi, d)
		}
	}

	sf := eng.NewSlidingFrequency(eps, w)
	sf.ProcessSlice(data)
	for v, truth := range winExact {
		if got := sf.Estimate(v); math.Abs(float64(got-truth)) > eps*float64(w)+1e-9 {
			t.Fatalf("sliding frequency(%v) = %d, true %d", v, got, truth)
		}
	}

	sq := eng.NewSlidingQuantile(eps, w)
	sq.ProcessSlice(data)
	if d := rankError(winRef, sq.Query(0.5), w/2); float64(d) > eps*float64(w)+1 {
		t.Fatalf("sliding median rank error %d", d)
	}
}

// TestAcceptanceMatrixTypedUint64 and TestAcceptanceMatrixTypedFloat64 are
// the full family matrix at the integer and wide-float instantiations: the
// same guarantees the float32 matrix pins, checked on values no float32
// stack could represent.
func TestAcceptanceMatrixTypedUint64(t *testing.T) {
	const n = 20000
	for name, data := range typedDistributionsU64(n) {
		for _, backend := range []Backend{BackendGPU, BackendCPU, BackendSampleSort} {
			t.Run(name+"/"+backend.String(), func(t *testing.T) {
				typedMatrixCase(t, data, backend, 0.01)
			})
		}
	}
}

func TestAcceptanceMatrixTypedFloat64(t *testing.T) {
	const n = 20000
	for name, data := range typedDistributionsF64(n) {
		for _, backend := range []Backend{BackendGPU, BackendCPU, BackendSampleSort} {
			t.Run(name+"/"+backend.String(), func(t *testing.T) {
				typedMatrixCase(t, data, backend, 0.01)
			})
		}
	}
}

// k1BitIdenticalCase pins the acceptance criterion that a K=1 sharded
// estimator is bit-identical to its serial sibling at type T on the given
// backend: same quantile answers at every probe, same frequency estimates
// and heavy-hitter lists.
func k1BitIdenticalCase[T Value](t *testing.T, backend Backend, data []T) {
	n := int64(len(data))
	const eps = 0.005
	eng := NewOf[T](backend)

	sq := eng.NewQuantileEstimator(eps, n)
	sq.ProcessSlice(data)
	pq := eng.NewParallelQuantileEstimator(eps, n, 1, WithBatchSize(1024))
	pq.ProcessSlice(data)
	pq.Close()
	for p := 0; p <= 20; p++ {
		phi := float64(p) / 20
		if s, par := sq.Query(phi), pq.Query(phi); s != par {
			t.Fatalf("phi=%v: serial %v != K=1 sharded %v", phi, s, par)
		}
	}

	sf := eng.NewFrequencyEstimator(eps)
	sf.ProcessSlice(data)
	pf := eng.NewParallelFrequencyEstimator(eps, 1, WithBatchSize(1024))
	pf.ProcessSlice(data)
	pf.Close()
	if s, par := sf.Query(4*eps), pf.Query(4*eps); !reflect.DeepEqual(s, par) {
		t.Fatalf("heavy hitters diverge:\n  serial:  %v\n  sharded: %v", s, par)
	}
	for _, v := range data[:200] {
		if s, par := sf.Estimate(v), pf.Estimate(v); s != par {
			t.Fatalf("Estimate(%v): serial %d != K=1 sharded %d", v, s, par)
		}
	}
}

func TestShardK1BitIdenticalAcrossTypes(t *testing.T) {
	const n = 30000
	t.Run("float32", func(t *testing.T) {
		k1BitIdenticalCase(t, BackendCPU, stream.Zipf(n, 1.2, 300, 31))
	})
	t.Run("float32-samplesort", func(t *testing.T) {
		k1BitIdenticalCase(t, BackendSampleSort, stream.Zipf(n, 1.2, 300, 31))
	})
	t.Run("float64", func(t *testing.T) {
		k1BitIdenticalCase(t, BackendCPU, stream.ZipfOf[float64](n, 1.2, 300, 32))
	})
	t.Run("uint32", func(t *testing.T) {
		k1BitIdenticalCase(t, BackendCPU, stream.ZipfOf[uint32](n, 1.2, 300, 33))
	})
	t.Run("uint64", func(t *testing.T) {
		data := stream.ZipfOf[uint64](n, 1.2, 300, 34)
		for i, v := range data {
			data[i] = v << 40 // exercise the high bits
		}
		k1BitIdenticalCase(t, BackendSampleSort, data)
	})
	t.Run("int64", func(t *testing.T) {
		data := stream.ZipfOf[int64](n, 1.2, 300, 35)
		for i, v := range data {
			if i%2 == 1 {
				data[i] = -v // signed streams cross zero
			}
		}
		k1BitIdenticalCase(t, BackendCPU, data)
	})
}
