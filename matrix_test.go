package gpustream

// The acceptance matrix: every estimator family, on every backend, across
// distributions and epsilon values, checked against exact ground truth.
// This is the library's broadest single guarantee check; cmd/validate is
// its runnable, report-producing sibling.

import (
	"math"
	"sort"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

func matrixDistributions(n int) map[string][]float32 {
	return map[string][]float32{
		"uniform": stream.Uniform(n, 1),
		"zipf":    stream.Zipf(n, 1.2, n/100+5, 2),
		"sorted":  stream.Sorted(n),
		"bursty":  stream.Bursty(n, n/50+5, n/100+1, 0.01, 3),
	}
}

func TestAcceptanceMatrix(t *testing.T) {
	const n = 20000
	backends := []Backend{BackendGPU, BackendCPU, BackendCPUParallel}
	epsilons := []float64{0.02, 0.005}

	for name, data := range matrixDistributions(n) {
		ref := append([]float32(nil), data...)
		cpusort.Quicksort(ref)
		exact := map[float32]int64{}
		for _, v := range data {
			exact[v]++
		}

		for _, backend := range backends {
			for _, eps := range epsilons {
				t.Run(name+"/"+backend.String(), func(t *testing.T) {
					eng := New(backend)

					// Frequency: undercount within eps*N, never over.
					fe := eng.NewFrequencyEstimator(eps)
					fe.ProcessSlice(data)
					for v, truth := range exact {
						got := fe.Estimate(v)
						if got > truth || float64(truth-got) > eps*n+1e-9 {
							t.Fatalf("eps=%v frequency(%v) = %d, true %d", eps, v, got, truth)
						}
					}

					// Quantile: rank error within eps*N at a probe grid.
					qe := eng.NewQuantileEstimator(eps, n)
					qe.ProcessSlice(data)
					for p := 0; p <= 10; p++ {
						phi := float64(p) / 10
						r := int(math.Ceil(phi * n))
						if r < 1 {
							r = 1
						}
						got := qe.Query(phi)
						lo := sort.Search(len(ref), func(i int) bool { return ref[i] >= got }) + 1
						hi := sort.Search(len(ref), func(i int) bool { return ref[i] > got })
						var d int
						switch {
						case r < lo:
							d = lo - r
						case r > hi:
							d = r - hi
						}
						if float64(d) > eps*n+1 {
							t.Fatalf("eps=%v phi=%v rank error %d", eps, phi, d)
						}
					}
				})
			}
		}
	}
}

func TestAcceptanceMatrixSliding(t *testing.T) {
	const n, w = 20000, 4000
	const eps = 0.01
	for name, data := range matrixDistributions(n) {
		for _, backend := range []Backend{BackendGPU, BackendCPU} {
			t.Run(name+"/"+backend.String(), func(t *testing.T) {
				eng := New(backend)
				sf := eng.NewSlidingFrequency(eps, w)
				sq := eng.NewSlidingQuantile(eps, w)
				sf.ProcessSlice(data)
				sq.ProcessSlice(data)

				win := append([]float32(nil), data[n-w:]...)
				exact := map[float32]int64{}
				for _, v := range win {
					exact[v]++
				}
				for v, truth := range exact {
					if got := sf.Estimate(v); math.Abs(float64(got-truth)) > eps*w+1e-9 {
						t.Fatalf("sliding frequency(%v) = %d, true %d", v, got, truth)
					}
				}
				cpusort.Quicksort(win)
				med := sq.Query(0.5)
				r := w / 2
				lo := sort.Search(len(win), func(i int) bool { return win[i] >= med }) + 1
				hi := sort.Search(len(win), func(i int) bool { return win[i] > med })
				var d int
				switch {
				case r < lo:
					d = lo - r
				case r > hi:
					d = r - hi
				}
				if float64(d) > eps*w+1 {
					t.Fatalf("sliding median rank error %d", d)
				}
			})
		}
	}
}
