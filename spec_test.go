package gpustream_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gpustream"
	"gpustream/internal/stream"
)

// allFamilies is the full family enumeration, used by the round-trip and
// matrix tests below.
var allFamilies = []gpustream.Family{
	gpustream.FamilyFrequency,
	gpustream.FamilyQuantile,
	gpustream.FamilySlidingFrequency,
	gpustream.FamilySlidingQuantile,
	gpustream.FamilyParallelFrequency,
	gpustream.FamilyParallelQuantile,
	gpustream.FamilyFrugal,
}

func TestParseFamilyRoundTrip(t *testing.T) {
	for _, f := range allFamilies {
		got, err := gpustream.ParseFamily(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFamily(%q) = %v, %v; want %v", f.String(), got, err, f)
		}
		// Case-insensitive with surrounding space.
		got, err = gpustream.ParseFamily("  " + strings.ToUpper(f.String()) + " ")
		if err != nil || got != f {
			t.Errorf("ParseFamily(upper %q) = %v, %v; want %v", f.String(), got, err, f)
		}
	}
	for alias, want := range map[string]gpustream.Family{
		"window-frequency": gpustream.FamilySlidingFrequency,
		"window-quantile":  gpustream.FamilySlidingQuantile,
		"sharded-frequency": gpustream.FamilyParallelFrequency,
		"sharded-quantile":  gpustream.FamilyParallelQuantile,
	} {
		if got, err := gpustream.ParseFamily(alias); err != nil || got != want {
			t.Errorf("ParseFamily(%q) = %v, %v; want %v", alias, got, err, want)
		}
	}
	if _, err := gpustream.ParseFamily("nope"); err == nil {
		t.Error("ParseFamily(nope) succeeded")
	}
	if _, err := gpustream.Family(0).MarshalText(); err == nil {
		t.Error("Family(0).MarshalText succeeded")
	}
}

func TestBackendTextRoundTrip(t *testing.T) {
	for _, b := range []gpustream.Backend{
		gpustream.BackendGPU, gpustream.BackendGPUBitonic,
		gpustream.BackendCPU, gpustream.BackendCPUParallel,
	} {
		text, err := b.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", b, err)
		}
		var back gpustream.Backend
		if err := back.UnmarshalText(text); err != nil || back != b {
			t.Errorf("UnmarshalText(%q) = %v, %v; want %v", text, back, err, b)
		}
		// JSON round-trip through a struct field, the shape /statsz and
		// stored specs use.
		blob, err := json.Marshal(struct{ B gpustream.Backend }{b})
		if err != nil {
			t.Fatalf("json.Marshal backend %v: %v", b, err)
		}
		if want := `{"B":"` + b.String() + `"}`; string(blob) != want {
			t.Errorf("json.Marshal backend %v = %s, want %s", b, blob, want)
		}
	}
	if _, err := gpustream.Backend(99).MarshalText(); err == nil {
		t.Error("MarshalText of unknown backend succeeded")
	}
	var b gpustream.Backend
	if err := b.UnmarshalText([]byte("not-a-backend")); err == nil {
		t.Error("UnmarshalText of unknown backend succeeded")
	}
	// Legacy -backend flag aliases keep working through the text decoder.
	if err := b.UnmarshalText([]byte("cpu-ht")); err != nil || b != gpustream.BackendCPUParallel {
		t.Errorf("UnmarshalText(cpu-ht) = %v, %v", b, err)
	}
}

func TestSpecValidate(t *testing.T) {
	valid := []gpustream.Spec{
		{Family: gpustream.FamilyFrequency, Eps: 0.001, Support: 0.01},
		{Family: gpustream.FamilyQuantile, Eps: 0.001, Capacity: 1 << 20, Phis: []float64{0.5, 0.99}},
		{Family: gpustream.FamilySlidingFrequency, Eps: 0.01, Window: 1000},
		{Family: gpustream.FamilySlidingQuantile, Eps: 0.01, Window: 1000, Async: gpustream.AsyncOn},
		{Family: gpustream.FamilyParallelFrequency, Eps: 0.001, Shards: 4},
		{Family: gpustream.FamilyParallelQuantile, Eps: 0.001, Shards: 0, Async: gpustream.AsyncOn},
		{Family: gpustream.FamilyFrugal, Phis: []float64{0.5}},
		{Family: gpustream.FamilyQuantile, Eps: 0.001, Backend: gpustream.BackendCPU},
		{Family: gpustream.FamilyQuantile, Eps: 0.001, Window: 5000, Backend: gpustream.BackendSampleSort},
		{Family: gpustream.FamilyParallelFrequency, Eps: 0.01, Window: 2000, Backend: gpustream.BackendAuto},
		{Family: gpustream.FamilyParallelQuantile, Eps: 0.001, Shards: gpustream.ShardsAuto, Async: gpustream.AsyncAuto},
		{Family: gpustream.FamilyQuantile, Eps: 0.001, Async: gpustream.AsyncAuto},
		{Family: gpustream.FamilySlidingFrequency, Eps: 0.01, Window: 1000, Async: gpustream.AsyncAuto},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}

	invalid := []struct {
		name string
		spec gpustream.Spec
		want string // substring of the error
	}{
		{"zero spec", gpustream.Spec{}, "no valid family"},
		{"unknown family", gpustream.Spec{Family: gpustream.Family(42), Eps: 0.01}, "no valid family"},
		{"eps zero", gpustream.Spec{Family: gpustream.FamilyQuantile}, "out of (0, 1)"},
		{"eps one", gpustream.Spec{Family: gpustream.FamilyFrequency, Eps: 1}, "out of (0, 1)"},
		{"eps negative", gpustream.Spec{Family: gpustream.FamilyParallelQuantile, Eps: -0.5}, "out of (0, 1)"},
		{"frugal with eps", gpustream.Spec{Family: gpustream.FamilyFrugal, Eps: 0.01}, "no eps bound"},
		{"sliding without window", gpustream.Spec{Family: gpustream.FamilySlidingQuantile, Eps: 0.01}, "needs window"},
		{"window on frugal", gpustream.Spec{Family: gpustream.FamilyFrugal, Window: 100}, "takes no window"},
		{"negative sort window", gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01, Window: -5}, "window -5"},
		{"shards on serial", gpustream.Spec{Family: gpustream.FamilyFrequency, Eps: 0.01, Shards: 4}, "does not shard"},
		{"negative shards", gpustream.Spec{Family: gpustream.FamilyParallelQuantile, Eps: 0.01, Shards: -2}, "shards -2"},
		{"auto shards on serial", gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01, Shards: gpustream.ShardsAuto}, "does not shard"},
		{"frugal auto async", gpustream.Spec{Family: gpustream.FamilyFrugal, Async: gpustream.AsyncAuto}, "never sorts"},
		{"bad async mode", gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01, Async: gpustream.AsyncMode(7)}, "unknown async mode"},
		{"capacity on frequency", gpustream.Spec{Family: gpustream.FamilyFrequency, Eps: 0.01, Capacity: 10}, "takes no capacity"},
		{"negative capacity", gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01, Capacity: -1}, "capacity -1"},
		{"frugal async", gpustream.Spec{Family: gpustream.FamilyFrugal, Async: gpustream.AsyncOn}, "never sorts"},
		{"phis on frequency", gpustream.Spec{Family: gpustream.FamilyFrequency, Eps: 0.01, Phis: []float64{0.5}}, "phis do not apply"},
		{"phi out of range", gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01, Phis: []float64{1.5}}, "out of [0, 1]"},
		{"support on quantile", gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01, Support: 0.1}, "support does not apply"},
		{"support out of range", gpustream.Spec{Family: gpustream.FamilyFrequency, Eps: 0.01, Support: 1.5}, "out of [0, 1)"},
		{"unknown backend", gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01, Backend: gpustream.Backend(9)}, "unknown backend"},
	}
	for _, tc := range invalid {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) = nil, want error containing %q", tc.spec, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate(%+v) = %q, want substring %q", tc.spec, err, tc.want)
			}
			// A spec that fails validation must fail construction with the
			// same error, never panic.
			eng := gpustream.New(gpustream.BackendGPU)
			if _, cerr := eng.NewFromSpec(tc.spec); cerr == nil {
				t.Errorf("NewFromSpec(%+v) succeeded on invalid spec", tc.spec)
			}
		})
	}
}

func TestNewFromSpecBackendMismatch(t *testing.T) {
	eng := gpustream.New(gpustream.BackendGPU)
	spec := gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01, Backend: gpustream.BackendCPU}
	if _, err := eng.NewFromSpec(spec); err == nil || !strings.Contains(err.Error(), "does not match engine backend") {
		t.Errorf("NewFromSpec with mismatched backend: %v", err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []gpustream.Spec{
		{Family: gpustream.FamilyQuantile, Eps: 0.001, Capacity: 1 << 20, Phis: []float64{0.5, 0.99}, Async: gpustream.AsyncOn, Backend: gpustream.BackendCPU},
		{Family: gpustream.FamilyParallelFrequency, Eps: 0.01, Shards: 8, Support: 0.02},
		{Family: gpustream.FamilySlidingQuantile, Eps: 0.01, Window: 4096},
		{Family: gpustream.FamilyFrugal, Phis: []float64{0.25, 0.5, 0.75}},
		{Family: gpustream.FamilyParallelQuantile, Eps: 0.001, Shards: gpustream.ShardsAuto, Async: gpustream.AsyncAuto},
	}
	for _, s := range specs {
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("Marshal(%+v): %v", s, err)
		}
		got, err := gpustream.ParseSpec(blob)
		if err != nil {
			t.Fatalf("ParseSpec(%s): %v", blob, err)
		}
		if !specEqual(got, s) {
			t.Errorf("round trip %s: got %+v, want %+v", blob, got, s)
		}
	}
	// The family name travels as a string, not an int.
	blob, _ := json.Marshal(gpustream.Spec{Family: gpustream.FamilySlidingFrequency, Eps: 0.01, Window: 10})
	if !bytes.Contains(blob, []byte(`"sliding-frequency"`)) {
		t.Errorf("marshaled spec %s does not carry the family name", blob)
	}

	if _, err := gpustream.ParseSpec([]byte(`{"family":"quantile","eps":0.01,"bogus":1}`)); err == nil {
		t.Error("ParseSpec accepted an unknown field")
	}
	if _, err := gpustream.ParseSpec([]byte(`{"family":"quantile"}`)); err == nil {
		t.Error("ParseSpec accepted an invalid spec (no eps)")
	}
	if _, err := gpustream.ParseSpec([]byte(`not json`)); err == nil {
		t.Error("ParseSpec accepted garbage")
	}
	if _, err := gpustream.ParseSpec([]byte(`{"family":"florble","eps":0.01}`)); err == nil {
		t.Error("ParseSpec accepted an unknown family name")
	}

	// The elastic wire forms: "auto" strings for shards and async, and the
	// legacy boolean/number forms, all through the same decoder.
	got, err := gpustream.ParseSpec([]byte(`{"family":"parallel-quantile","eps":0.001,"shards":"auto","async":"auto"}`))
	if err != nil {
		t.Fatalf("ParseSpec(elastic): %v", err)
	}
	if got.Shards != gpustream.ShardsAuto || got.Async != gpustream.AsyncAuto {
		t.Errorf("ParseSpec(elastic) = shards %v async %v, want auto/auto", got.Shards, got.Async)
	}
	blob, err = json.Marshal(got)
	if err != nil {
		t.Fatalf("Marshal(elastic): %v", err)
	}
	if !bytes.Contains(blob, []byte(`"shards":"auto"`)) || !bytes.Contains(blob, []byte(`"async":"auto"`)) {
		t.Errorf("marshaled elastic spec %s does not carry the auto forms", blob)
	}
	got, err = gpustream.ParseSpec([]byte(`{"family":"parallel-quantile","eps":0.001,"shards":4,"async":true}`))
	if err != nil {
		t.Fatalf("ParseSpec(legacy): %v", err)
	}
	if got.Shards != 4 || got.Async != gpustream.AsyncOn {
		t.Errorf("ParseSpec(legacy) = shards %v async %v, want 4/on", got.Shards, got.Async)
	}
	if _, err := gpustream.ParseSpec([]byte(`{"family":"quantile","eps":0.01,"async":"sideways"}`)); err == nil {
		t.Error("ParseSpec accepted a bad async mode")
	}
	if _, err := gpustream.ParseSpec([]byte(`{"family":"parallel-quantile","eps":0.01,"shards":"many"}`)); err == nil {
		t.Error("ParseSpec accepted a bad shard count")
	}
}

func specEqual(a, b gpustream.Spec) bool {
	if len(a.Phis) != len(b.Phis) {
		return false
	}
	for i := range a.Phis {
		if a.Phis[i] != b.Phis[i] {
			return false
		}
	}
	a.Phis, b.Phis = nil, nil
	return reflect.DeepEqual(a, b)
}

// TestNewFromSpecMatchesTypedConstructors pins the acceptance criterion
// that spec-built estimators are bit-identical to hand-built ones: for
// every family, the same stream ingested through NewFromSpec and through
// the typed constructor yields byte-equal marshaled snapshots and equal
// query answers.
func TestNewFromSpecMatchesTypedConstructors(t *testing.T) {
	const n = 30_000
	data := stream.Zipf(n, 1.2, 800, 11)
	phis := []float64{0.05, 0.25, 0.5, 0.75, 0.95, 0.99}

	cases := []struct {
		spec  gpustream.Spec
		typed func(eng *gpustream.Engine[float32]) gpustream.Estimator[float32]
	}{
		{
			spec: gpustream.Spec{Family: gpustream.FamilyFrequency, Eps: 0.001},
			typed: func(eng *gpustream.Engine[float32]) gpustream.Estimator[float32] {
				return eng.NewFrequencyEstimator(0.001)
			},
		},
		{
			spec: gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.001, Capacity: n},
			typed: func(eng *gpustream.Engine[float32]) gpustream.Estimator[float32] {
				return eng.NewQuantileEstimator(0.001, n)
			},
		},
		{
			spec: gpustream.Spec{Family: gpustream.FamilySlidingFrequency, Eps: 0.005, Window: 8192},
			typed: func(eng *gpustream.Engine[float32]) gpustream.Estimator[float32] {
				return eng.NewSlidingFrequency(0.005, 8192)
			},
		},
		{
			spec: gpustream.Spec{Family: gpustream.FamilySlidingQuantile, Eps: 0.005, Window: 8192},
			typed: func(eng *gpustream.Engine[float32]) gpustream.Estimator[float32] {
				return eng.NewSlidingQuantile(0.005, 8192)
			},
		},
		{
			spec: gpustream.Spec{Family: gpustream.FamilyParallelFrequency, Eps: 0.001, Shards: 2},
			typed: func(eng *gpustream.Engine[float32]) gpustream.Estimator[float32] {
				return eng.NewParallelFrequencyEstimator(0.001, 2)
			},
		},
		{
			spec: gpustream.Spec{Family: gpustream.FamilyParallelQuantile, Eps: 0.001, Capacity: n, Shards: 2},
			typed: func(eng *gpustream.Engine[float32]) gpustream.Estimator[float32] {
				return eng.NewParallelQuantileEstimator(0.001, n, 2)
			},
		},
		{
			spec: gpustream.Spec{Family: gpustream.FamilyFrugal, Phis: phis},
			typed: func(eng *gpustream.Engine[float32]) gpustream.Estimator[float32] {
				return eng.NewFrugalEstimator(gpustream.WithPhis(phis...))
			},
		},
		// Async specs must be bit-identical too (the staged executor is
		// bit-identical to sync by construction, so spec-vs-typed stays
		// byte-equal).
		{
			spec: gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.001, Capacity: n, Async: gpustream.AsyncOn},
			typed: func(eng *gpustream.Engine[float32]) gpustream.Estimator[float32] {
				return eng.NewQuantileEstimator(0.001, n, gpustream.WithAsyncIngestion())
			},
		},
	}

	for _, tc := range cases {
		name := tc.spec.Family.String()
		if tc.spec.Async == gpustream.AsyncOn {
			name += "-async"
		}
		t.Run(name, func(t *testing.T) {
			engSpec := gpustream.New(gpustream.BackendGPU)
			fromSpec, err := engSpec.NewFromSpec(tc.spec)
			if err != nil {
				t.Fatalf("NewFromSpec: %v", err)
			}
			engTyped := gpustream.New(gpustream.BackendGPU)
			typed := tc.typed(engTyped)

			for _, est := range []gpustream.Estimator[float32]{fromSpec, typed} {
				if err := est.ProcessSlice(data); err != nil {
					t.Fatalf("ProcessSlice: %v", err)
				}
				if err := est.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			}
			if a, b := fromSpec.Count(), typed.Count(); a != b {
				t.Fatalf("Count: spec %d, typed %d", a, b)
			}

			sa, sb := fromSpec.Snapshot(), typed.Snapshot()
			for _, phi := range phis {
				va, oka := sa.Quantile(phi)
				vb, okb := sb.Quantile(phi)
				if va != vb || oka != okb {
					t.Errorf("Quantile(%g): spec (%v, %v), typed (%v, %v)", phi, va, oka, vb, okb)
				}
			}
			ha, oka := sa.HeavyHitters(0.01)
			hb, okb := sb.HeavyHitters(0.01)
			if oka != okb || len(ha) != len(hb) {
				t.Fatalf("HeavyHitters: spec (%d items, %v), typed (%d items, %v)", len(ha), oka, len(hb), okb)
			}
			for i := range ha {
				if ha[i] != hb[i] {
					t.Errorf("HeavyHitters[%d]: spec %+v, typed %+v", i, ha[i], hb[i])
				}
			}

			blobA, errA := gpustream.MarshalSnapshot(sa)
			blobB, errB := gpustream.MarshalSnapshot(sb)
			if errA != nil || errB != nil {
				t.Fatalf("MarshalSnapshot: spec %v, typed %v", errA, errB)
			}
			if !bytes.Equal(blobA, blobB) {
				t.Errorf("marshaled snapshots differ: %d vs %d bytes", len(blobA), len(blobB))
			}
		})
	}
}
