package gpustream

// Allocation benchmarks for the hot ingestion path. The windowed-ingestion
// core reuses window buffers and sort/merge scratch across windows, so at
// steady state ProcessSlice should allocate only what the retained summaries
// themselves grow by — allocs/op here is the regression gate for that.
// CHANGES.md records the before/after numbers.

import (
	"fmt"
	"testing"

	"gpustream/internal/stream"
)

const allocBenchN = 1 << 20 // ~1M values, eps=1e-3 -> 1000-value windows

func allocStream() []float32 {
	return stream.Zipf(allocBenchN, 1.1, allocBenchN/100+10, 31)
}

// BenchmarkSerialIngestAllocs measures steady-state allocations of serial
// frequency and quantile ingestion at eps=1e-3 over 1M zipf values. The
// estimator is constructed once outside the timed loop: each iteration
// re-ingests the stream through the already-warm summary, so one-time
// buffer growth is excluded and allocs/op reflects per-window costs only.
func BenchmarkSerialIngestAllocs(b *testing.B) {
	const eps = 1e-3
	data := allocStream()
	b.Run("frequency", func(b *testing.B) {
		eng := New(BackendCPU)
		est := eng.NewFrequencyEstimator(eps)
		est.ProcessSlice(data) // warm the summary and scratch
		b.ReportAllocs()
		b.SetBytes(allocBenchN * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est.ProcessSlice(data)
		}
	})
	b.Run("quantile", func(b *testing.B) {
		eng := New(BackendCPU)
		est := eng.NewQuantileEstimator(eps, int64(allocBenchN)*int64(b.N+2))
		est.ProcessSlice(data)
		b.ReportAllocs()
		b.SetBytes(allocBenchN * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est.ProcessSlice(data)
		}
	})
	b.Run("sliding-frequency", func(b *testing.B) {
		eng := New(BackendCPU)
		est := eng.NewSlidingFrequency(eps, 100_000)
		est.ProcessSlice(data)
		b.ReportAllocs()
		b.SetBytes(allocBenchN * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est.ProcessSlice(data)
		}
	})
	b.Run("sliding-quantile", func(b *testing.B) {
		eng := New(BackendCPU)
		est := eng.NewSlidingQuantile(eps, 100_000)
		est.ProcessSlice(data)
		b.ReportAllocs()
		b.SetBytes(allocBenchN * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est.ProcessSlice(data)
		}
	})
}

// BenchmarkShardedIngestAllocs is the sharded counterpart: K workers each
// run the serial pipeline, so per-window allocations multiply with K unless
// the shared core pools them.
func BenchmarkShardedIngestAllocs(b *testing.B) {
	const eps = 1e-3
	data := allocStream()
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("frequency/k=%d", k), func(b *testing.B) {
			eng := New(BackendCPU)
			est := eng.NewParallelFrequencyEstimator(eps, k)
			est.ProcessSlice(data)
			est.Flush()
			b.ReportAllocs()
			b.SetBytes(allocBenchN * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est.ProcessSlice(data)
				est.Flush()
			}
			b.StopTimer()
			est.Close()
		})
		b.Run(fmt.Sprintf("quantile/k=%d", k), func(b *testing.B) {
			eng := New(BackendCPU)
			est := eng.NewParallelQuantileEstimator(eps, int64(allocBenchN)*int64(b.N+2), k)
			est.ProcessSlice(data)
			est.Flush()
			b.ReportAllocs()
			b.SetBytes(allocBenchN * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est.ProcessSlice(data)
				est.Flush()
			}
			b.StopTimer()
			est.Close()
		})
	}
}
