// Package gpustream is a reproduction of "Fast and Approximate Stream
// Mining of Quantiles and Frequencies Using Graphics Processors"
// (Govindaraju, Raghuvanshi, Manocha; SIGMOD 2005): epsilon-approximate
// quantile and frequency estimation over large data streams, with the
// dominant sorting step executed on a (simulated) GPU via the paper's
// rasterization-based periodic balanced sorting network.
//
// The entry point is Engine, which binds a sorting backend — the GPU PBSN
// sorter, the prior-work GPU bitonic sorter, or CPU quicksorts — to the
// stream-mining estimators:
//
//	eng := gpustream.New(gpustream.BackendGPU)
//	freq := eng.NewFrequencyEstimator(0.001)
//	freq.ProcessSlice(values)
//	heavy := freq.Query(0.01) // items above 1% support, no false negatives
//
//	quant := eng.NewQuantileEstimator(0.001, int64(len(values)))
//	quant.ProcessSlice(values)
//	median := quant.Query(0.5)
//
// Sliding-window variants (NewSlidingFrequency, NewSlidingQuantile) answer
// the same queries over the most recent W elements, for fixed and
// variable-sized windows.
//
// The whole stack is generic over the ordered value types of sorter.Value:
// float32 (the paper's native stream type, what New returns), float64,
// uint32, uint64, int32 and int64. NewOf instantiates an engine at any of
// them — e.g. NewOf[uint64] mines streams of nanosecond timestamps or flow
// keys natively, with no lossy float encoding:
//
//	eng := gpustream.NewOf[uint64](gpustream.BackendGPU)
//	quant := eng.NewQuantileEstimator(0.001, int64(len(stamps)))
//	quant.ProcessSlice(stamps)
//	p99 := quant.Query(0.99)
//
// Because no real 2004 GPU is attached, the GPU backend runs against a
// functional simulator that executes the paper's rasterization routines
// with real data and counts every primitive operation; the perfmodel
// converts those counts into modeled GeForce-6800-Ultra time (see DESIGN.md
// for the substitution argument and EXPERIMENTS.md for paper-vs-measured
// results). The simulator's primitive-op counts depend only on input shape,
// never on the element type, so modeled GPU time is identical across
// instantiations (DESIGN.md section 10).
package gpustream

import (
	"fmt"
	"sync"

	"gpustream/internal/cpusort"
	"gpustream/internal/frequency"
	"gpustream/internal/frugal"
	"gpustream/internal/gpusort"
	"gpustream/internal/perfmodel"
	"gpustream/internal/pipeline"
	"gpustream/internal/quantile"
	"gpustream/internal/shard"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
	"gpustream/internal/window"
)

// Value constrains the stream element types the stack supports: the ordered
// numeric types every sorting backend and estimator family is generic over.
type Value = sorter.Value

// Sorter sorts slices of T ascending in place; all backends satisfy it.
type Sorter[T Value] = sorter.Sorter[T]

// Backend selects the sorting hardware path.
type Backend int

const (
	// BackendGPU is the paper's contribution: the PBSN sorter on the GPU
	// simulator (4-channel packing, blending comparators).
	BackendGPU Backend = iota
	// BackendGPUBitonic is the prior-work GPU baseline (fragment-program
	// bitonic sort).
	BackendGPUBitonic
	// BackendCPU is a serial median-of-3 quicksort (the MSVC analog).
	BackendCPU
	// BackendCPUParallel is a multi-threaded quicksort (the Intel
	// hyper-threaded analog).
	BackendCPUParallel
)

// PipelineBackend maps the engine backend to the perfmodel's sort-costing
// backend, for modeled-time reporting of instrumented pipelines.
func (b Backend) PipelineBackend() perfmodel.Backend {
	switch b {
	case BackendGPU, BackendGPUBitonic:
		return perfmodel.BackendGPU
	}
	return perfmodel.BackendCPU
}

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendGPU:
		return "gpu"
	case BackendGPUBitonic:
		return "gpu-bitonic"
	case BackendCPU:
		return "cpu"
	case BackendCPUParallel:
		return "cpu-parallel"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Re-exported result and instrumentation types. The generic aliases follow
// the same shape as the engine: instantiate at float32 for the paper's
// native streams, or any other Value type.
type (
	// Item is a frequency-query result: a value and its estimated count.
	Item[T Value] = frequency.Item[T]
	// WindowItem is a sliding-window frequency-query result.
	WindowItem[T Value] = window.Item[T]
	// FrequencyEstimator answers eps-approximate frequency queries over
	// the whole stream history (Manku-Motwani lossy counting).
	FrequencyEstimator[T Value] = frequency.Estimator[T]
	// QuantileEstimator answers eps-approximate quantile queries over the
	// whole stream history (Greenwald-Khanna + exponential histogram).
	QuantileEstimator[T Value] = quantile.Estimator[T]
	// SlidingFrequency answers frequency queries over the most recent W
	// elements.
	SlidingFrequency[T Value] = window.SlidingFrequency[T]
	// SlidingQuantile answers quantile queries over the most recent W
	// elements.
	SlidingQuantile[T Value] = window.SlidingQuantile[T]
	// QuantileSummary is a mergeable Greenwald-Khanna quantile summary
	// with rank bounds, as returned by sensor-tree aggregation.
	QuantileSummary[T Value] = summary.Summary[T]
	// ParallelQuantileEstimator answers eps-approximate quantile queries
	// over a stream ingested concurrently by K shard workers.
	ParallelQuantileEstimator[T Value] = shard.Quantile[T]
	// ParallelFrequencyEstimator answers eps-approximate frequency queries
	// over a stream ingested concurrently by K shard workers.
	ParallelFrequencyEstimator[T Value] = shard.Frequency[T]
	// ParallelOption configures sharded ingestion (e.g. WithBatchSize).
	ParallelOption = shard.Option
	// PerfModel converts operation counts to modeled 2004-testbed time.
	PerfModel = perfmodel.Model
	// SortBreakdown decomposes one modeled GPU sort (Figure 4).
	SortBreakdown = perfmodel.SortBreakdown
	// Stats is the unified per-stage pipeline telemetry every estimator
	// reports: operation counters plus wall clock for sort, merge,
	// compress, and (for sharded ingestion) worker idle time.
	Stats = pipeline.Stats
	// Snapshot is an immutable point-in-time queryable view of an
	// estimator, as returned by Snapshot() on every family. See Estimator.
	Snapshot[T Value] = pipeline.View[T]
	// FrequencySnapshot is the concrete view of a FrequencyEstimator (and
	// of a K=1 ParallelFrequencyEstimator).
	FrequencySnapshot[T Value] = frequency.Snapshot[T]
	// QuantileSnapshot is the concrete view of a QuantileEstimator or
	// ParallelQuantileEstimator.
	QuantileSnapshot[T Value] = quantile.Snapshot[T]
	// SlidingFrequencySnapshot is the concrete view of a SlidingFrequency,
	// answering variable-span window queries.
	SlidingFrequencySnapshot[T Value] = window.FrequencySnapshot[T]
	// SlidingQuantileSnapshot is the concrete view of a SlidingQuantile,
	// answering variable-span window queries.
	SlidingQuantileSnapshot[T Value] = window.QuantileSnapshot[T]
	// FrugalEstimator maintains a bank of frugal-streaming quantile
	// trackers — one or two words of state per target quantile, no summary,
	// no sort. Answers are converging point estimates, not eps-bounded
	// ranks.
	FrugalEstimator[T Value] = frugal.Estimator[T]
	// FrugalOption configures a FrugalEstimator (WithPhis, WithFrugalSeed).
	FrugalOption = frugal.Option
	// FrugalSnapshot is the concrete view of a FrugalEstimator.
	FrugalSnapshot[T Value] = frugal.Snapshot[T]
)

// ErrClosed is the sentinel error for ingestion after Close. Every
// estimator's Process/ProcessSlice returns an error wrapping it once the
// estimator is closed; test with errors.Is(err, gpustream.ErrClosed).
var ErrClosed = pipeline.ErrClosed

// EstimatorStats is one engine-created estimator's telemetry snapshot, as
// returned by Engine.Stats.
type EstimatorStats struct {
	// Kind identifies the estimator family: "frequency", "quantile",
	// "sliding-frequency", "sliding-quantile", "parallel-frequency",
	// "parallel-quantile", "frugal", or "keyed".
	Kind  string
	Stats Stats
	// Keyed carries tier occupancy for "keyed" estimators (per-tier key
	// counts, promotion rate); nil for every other kind.
	Keyed *KeyedTierStats
}

// Engine binds a sorting backend to the stream-mining algorithms over
// streams of element type T.
type Engine[T Value] struct {
	backend Backend
	srt     Sorter[T]
	model   perfmodel.Model

	mu       sync.Mutex
	trackers []tracker
}

// tracker is one registered estimator: its kind and closures reading its
// live telemetry. keyed is non-nil only for keyed estimators, whose tier
// occupancy rides along with the pipeline stats.
type tracker struct {
	kind  string
	stats func() Stats
	keyed func() KeyedTierStats
}

// track registers an estimator's stats reader, in creation order.
func (e *Engine[T]) track(kind string, fn func() Stats) {
	e.mu.Lock()
	e.trackers = append(e.trackers, tracker{kind: kind, stats: fn})
	e.mu.Unlock()
}

// trackKeyed registers a keyed estimator's stats and tier-occupancy readers.
func (e *Engine[T]) trackKeyed(stats func() Stats, keyed func() KeyedTierStats) {
	e.mu.Lock()
	e.trackers = append(e.trackers, tracker{kind: "keyed", stats: stats, keyed: keyed})
	e.mu.Unlock()
}

// Stats snapshots the unified pipeline telemetry of every estimator this
// engine has created, in creation order. It is safe to call at any time,
// including mid-ingestion: every estimator synchronizes its stats reads
// with its ingestion, so each report's counters are internally consistent
// (no torn sort/merge/compress totals).
func (e *Engine[T]) Stats() []EstimatorStats {
	e.mu.Lock()
	trackers := append([]tracker(nil), e.trackers...)
	e.mu.Unlock()
	out := make([]EstimatorStats, len(trackers))
	for i, t := range trackers {
		out[i] = EstimatorStats{Kind: t.kind, Stats: t.stats()}
		if t.keyed != nil {
			ks := t.keyed()
			out[i].Keyed = &ks
		}
	}
	return out
}

// New returns an Engine over float32 streams — the paper's native element
// type — using the given backend.
func New(backend Backend) *Engine[float32] { return NewOf[float32](backend) }

// NewOf returns an Engine over streams of element type T using the given
// backend. All four backends support every Value type; GPU primitive-op
// counts (and therefore modeled GPU time) are identical across types for
// equal input sizes.
func NewOf[T Value](backend Backend) *Engine[T] {
	e := &Engine[T]{backend: backend, model: perfmodel.Default()}
	e.srt = newBackendSorter[T](backend)
	return e
}

// newBackendSorter constructs a fresh sorter instance for the given backend
// at element type T. Parallel estimators call it once per shard: the GPU
// simulator keeps per-sort state (LastStats), so sorter instances must
// never be shared across goroutines.
func newBackendSorter[T Value](backend Backend) Sorter[T] {
	switch backend {
	case BackendGPU:
		return gpusort.NewSorter[T]()
	case BackendGPUBitonic:
		return gpusort.NewBitonicSorter[T]()
	case BackendCPU:
		return cpusort.QuicksortSorter[T]{}
	case BackendCPUParallel:
		return cpusort.ParallelSorter[T]{}
	}
	panic(fmt.Sprintf("gpustream: unknown backend %v", backend))
}

// newBackendSorter is the engine-bound form of the package-level helper.
func (e *Engine[T]) newBackendSorter() Sorter[T] { return newBackendSorter[T](e.backend) }

// WithBatchSize overrides the parallel estimators' ingestion hand-off batch
// size (default ~64K values).
func WithBatchSize(n int) ParallelOption { return shard.WithBatchSize(n) }

// WithAsyncShards enables staged asynchronous ingestion inside every shard of
// a parallel estimator: each worker's windows sort on a dedicated stage
// goroutine that overlaps the merge/compress of the previous window. Answers
// stay bit-identical to synchronous shards.
func WithAsyncShards() ParallelOption { return shard.WithAsync() }

// EstimatorOption configures a serial estimator constructor
// (NewFrequencyEstimator, NewQuantileEstimator, NewSlidingFrequency,
// NewSlidingQuantile).
type EstimatorOption func(*estimatorConfig)

type estimatorConfig struct {
	async bool
}

// WithAsyncIngestion enables staged asynchronous ingestion — the paper's
// co-processing execution model: each full window is handed to a sort stage
// goroutine (the simulated GPU's non-blocking render + readback) while the
// merge/compress of the previous window proceeds concurrently, with two
// pooled window buffers double-buffering ingestion. Answers and sort
// operation counts are bit-identical to the default synchronous mode;
// Stats.Overlap reports the measured co-processing time.
func WithAsyncIngestion() EstimatorOption { return func(c *estimatorConfig) { c.async = true } }

func parseEstimatorOptions(opts []EstimatorOption) estimatorConfig {
	var cfg estimatorConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Backend reports the engine's configured backend.
func (e *Engine[T]) Backend() Backend { return e.backend }

// Sorter exposes the engine's sorting backend.
func (e *Engine[T]) Sorter() Sorter[T] { return e.srt }

// Model exposes the 2004-testbed performance model.
func (e *Engine[T]) Model() PerfModel { return e.model }

// Sort orders data ascending in place using the configured backend.
func (e *Engine[T]) Sort(data []T) { e.srt.Sort(data) }

// LastSortBreakdown models the cost of the most recent GPU-backed
// Engine.Sort call on the paper's testbed. It returns ok=false for CPU
// backends, which have no transfer/setup decomposition, and before any Sort
// call. Estimators sort through their own sorter instances and report
// through Stats instead.
func (e *Engine[T]) LastSortBreakdown() (SortBreakdown, bool) {
	switch s := e.srt.(type) {
	case *gpusort.Sorter[T]:
		if st := s.LastStats(); st.GPU.Transfers > 0 {
			return e.model.GPUSortFromStats(st.GPU, st.MergeCmps), true
		}
	case *gpusort.BitonicSorter[T]:
		if st := s.LastStats(); st.GPU.Transfers > 0 {
			return e.model.GPUSortFromStats(st.GPU, st.MergeCmps), true
		}
	}
	return SortBreakdown{}, false
}

// NewFrequencyEstimator returns an eps-approximate frequency estimator
// backed by this engine's sorter. Estimated counts undercount true ones by
// at most eps*N; Query(s) reports every item above support s with no false
// negatives.
// Each estimator gets its own sorter instance: stateful backends (the GPU
// simulator's LastStats) must not be shared between estimators, and this
// also keeps Engine.Sort's LastSortBreakdown isolated from estimator
// ingestion.
func (e *Engine[T]) NewFrequencyEstimator(eps float64, opts ...EstimatorOption) *FrequencyEstimator[T] {
	var fopts []frequency.Option
	if parseEstimatorOptions(opts).async {
		fopts = append(fopts, frequency.WithAsync())
	}
	est := frequency.NewEstimator(eps, e.newBackendSorter(), fopts...)
	e.track("frequency", est.Stats)
	return est
}

// NewQuantileEstimator returns an eps-approximate quantile estimator for
// streams of up to capacity elements (capacity <= 0 picks a generous
// default), backed by this engine's sorter.
func (e *Engine[T]) NewQuantileEstimator(eps float64, capacity int64, opts ...EstimatorOption) *QuantileEstimator[T] {
	var qopts []quantile.Option
	if parseEstimatorOptions(opts).async {
		qopts = append(qopts, quantile.WithAsync())
	}
	est := quantile.NewEstimator(eps, capacity, e.newBackendSorter(), qopts...)
	e.track("quantile", est.Stats)
	return est
}

// NewParallelQuantileEstimator returns an eps-approximate quantile
// estimator that partitions ingestion across `shards` goroutine workers
// (shards <= 0 selects runtime.GOMAXPROCS(0)), each with its own sorter
// instance of this engine's backend. Per-shard summaries carry an eps/2
// budget and queries merge them, so answers stay eps-approximate; with one
// shard the output is bit-identical to NewQuantileEstimator. Call Flush to
// make buffered values queryable and Close when ingestion ends.
func (e *Engine[T]) NewParallelQuantileEstimator(eps float64, capacity int64, shards int, opts ...ParallelOption) *ParallelQuantileEstimator[T] {
	est := shard.NewQuantile(eps, capacity, shards, e.newBackendSorter, opts...)
	e.track("parallel-quantile", est.Stats)
	return est
}

// NewParallelFrequencyEstimator returns an eps-approximate frequency
// estimator that partitions ingestion across `shards` goroutine workers
// (shards <= 0 selects runtime.GOMAXPROCS(0)), each with its own sorter
// instance of this engine's backend. Lossy-counting undercounts are
// additive across shards, so merged answers keep the serial estimator's
// no-false-negative guarantee; with one shard the output is bit-identical
// to NewFrequencyEstimator.
func (e *Engine[T]) NewParallelFrequencyEstimator(eps float64, shards int, opts ...ParallelOption) *ParallelFrequencyEstimator[T] {
	est := shard.NewFrequency(eps, shards, e.newBackendSorter, opts...)
	e.track("parallel-frequency", est.Stats)
	return est
}

// NewSlidingFrequency returns an eps-approximate frequency estimator over
// sliding windows of w elements, backed by this engine's sorter.
func (e *Engine[T]) NewSlidingFrequency(eps float64, w int, opts ...EstimatorOption) *SlidingFrequency[T] {
	var wopts []window.Option
	if parseEstimatorOptions(opts).async {
		wopts = append(wopts, window.WithAsync())
	}
	est := window.NewSlidingFrequency(eps, w, e.newBackendSorter(), wopts...)
	e.track("sliding-frequency", est.Stats)
	return est
}

// NewSlidingQuantile returns an eps-approximate quantile estimator over
// sliding windows of w elements, backed by this engine's sorter.
func (e *Engine[T]) NewSlidingQuantile(eps float64, w int, opts ...EstimatorOption) *SlidingQuantile[T] {
	var wopts []window.Option
	if parseEstimatorOptions(opts).async {
		wopts = append(wopts, window.WithAsync())
	}
	est := window.NewSlidingQuantile(eps, w, e.newBackendSorter(), wopts...)
	e.track("sliding-quantile", est.Stats)
	return est
}

// WithPhis selects the target quantiles a FrugalEstimator tracks, one word
// of state each (default frugal.DefaultPhis).
func WithPhis(phis ...float64) FrugalOption { return frugal.WithPhis(phis...) }

// WithFrugalSeed seeds a FrugalEstimator's randomized rank gates; estimates
// are deterministic for a fixed seed and ingestion order.
func WithFrugalSeed(seed uint64) FrugalOption { return frugal.WithSeed(seed) }

// NewFrugalEstimator returns a frugal-streaming quantile estimator: one
// converging point estimate per tracked target quantile, in one or two
// machine words each — the opposite end of the memory spectrum from the
// summary-based families, with heuristic (not eps-bounded) answers. It uses
// no sorter; it registers with the engine only for Stats reporting.
func (e *Engine[T]) NewFrugalEstimator(opts ...FrugalOption) *FrugalEstimator[T] {
	est := frugal.NewEstimator[T](opts...)
	e.track("frugal", est.Stats)
	return est
}
