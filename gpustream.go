// Package gpustream is a reproduction of "Fast and Approximate Stream
// Mining of Quantiles and Frequencies Using Graphics Processors"
// (Govindaraju, Raghuvanshi, Manocha; SIGMOD 2005): epsilon-approximate
// quantile and frequency estimation over large data streams, with the
// dominant sorting step executed on a (simulated) GPU via the paper's
// rasterization-based periodic balanced sorting network.
//
// The entry point is Engine, which binds a sorting backend — the GPU PBSN
// sorter, the prior-work GPU bitonic sorter, or CPU quicksorts — to the
// stream-mining estimators:
//
//	eng := gpustream.New(gpustream.BackendGPU)
//	freq := eng.NewFrequencyEstimator(0.001)
//	freq.ProcessSlice(values)
//	heavy := freq.Query(0.01) // items above 1% support, no false negatives
//
//	quant := eng.NewQuantileEstimator(0.001, int64(len(values)))
//	quant.ProcessSlice(values)
//	median := quant.Query(0.5)
//
// Sliding-window variants (NewSlidingFrequency, NewSlidingQuantile) answer
// the same queries over the most recent W elements, for fixed and
// variable-sized windows.
//
// The whole stack is generic over the ordered value types of sorter.Value:
// float32 (the paper's native stream type, what New returns), float64,
// uint32, uint64, int32 and int64. NewOf instantiates an engine at any of
// them — e.g. NewOf[uint64] mines streams of nanosecond timestamps or flow
// keys natively, with no lossy float encoding:
//
//	eng := gpustream.NewOf[uint64](gpustream.BackendGPU)
//	quant := eng.NewQuantileEstimator(0.001, int64(len(stamps)))
//	quant.ProcessSlice(stamps)
//	p99 := quant.Query(0.99)
//
// Because no real 2004 GPU is attached, the GPU backend runs against a
// functional simulator that executes the paper's rasterization routines
// with real data and counts every primitive operation; the perfmodel
// converts those counts into modeled GeForce-6800-Ultra time (see DESIGN.md
// for the substitution argument and EXPERIMENTS.md for paper-vs-measured
// results). The simulator's primitive-op counts depend only on input shape,
// never on the element type, so modeled GPU time is identical across
// instantiations (DESIGN.md section 10).
package gpustream

import (
	"fmt"
	"sync"
	"time"

	"gpustream/internal/adaptive"
	"gpustream/internal/cpusort"
	"gpustream/internal/frequency"
	"gpustream/internal/frugal"
	"gpustream/internal/gpusort"
	"gpustream/internal/perfmodel"
	"gpustream/internal/pipeline"
	"gpustream/internal/quantile"
	"gpustream/internal/samplesort"
	"gpustream/internal/shard"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
	"gpustream/internal/window"
)

// Value constrains the stream element types the stack supports: the ordered
// numeric types every sorting backend and estimator family is generic over.
type Value = sorter.Value

// Sorter sorts slices of T ascending in place; all backends satisfy it.
type Sorter[T Value] = sorter.Sorter[T]

// Backend selects the sorting hardware path.
type Backend int

const (
	// BackendGPU is the paper's contribution: the PBSN sorter on the GPU
	// simulator (4-channel packing, blending comparators).
	BackendGPU Backend = iota
	// BackendGPUBitonic is the prior-work GPU baseline (fragment-program
	// bitonic sort).
	BackendGPUBitonic
	// BackendCPU is a serial median-of-3 quicksort (the MSVC analog).
	BackendCPU
	// BackendCPUParallel is a multi-threaded quicksort (the Intel
	// hyper-threaded analog).
	BackendCPUParallel
	// BackendSampleSort is the deterministic CPU sample sort: splitter-based
	// bucketing brings the comparator count to O(n log n), beating the
	// simulated GPU's O(n log^2 n) sorting network on large windows.
	BackendSampleSort
	// BackendAuto starts every estimator pipeline on sample sort and
	// attaches an adaptive controller that probes all five concrete
	// backends at runtime, commits to the measured-cheapest one, and (for
	// the whole-history families) hill-climbs the sort-window size. The
	// controller only ever moves knobs at window boundaries, so every
	// eps guarantee is preserved.
	BackendAuto
)

// PipelineBackend maps the engine backend to the perfmodel's sort-costing
// backend, for modeled-time reporting of instrumented pipelines. BackendAuto
// maps to the sample-sort cost model, its construction-time backend.
func (b Backend) PipelineBackend() perfmodel.Backend {
	switch b {
	case BackendGPU, BackendGPUBitonic:
		return perfmodel.BackendGPU
	case BackendSampleSort, BackendAuto:
		return perfmodel.BackendSampleSort
	}
	return perfmodel.BackendCPU
}

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendGPU:
		return "gpu"
	case BackendGPUBitonic:
		return "gpu-bitonic"
	case BackendCPU:
		return "cpu"
	case BackendCPUParallel:
		return "cpu-parallel"
	case BackendSampleSort:
		return "samplesort"
	case BackendAuto:
		return "auto"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// Re-exported result and instrumentation types. The generic aliases follow
// the same shape as the engine: instantiate at float32 for the paper's
// native streams, or any other Value type.
type (
	// Item is a frequency-query result: a value and its estimated count.
	Item[T Value] = frequency.Item[T]
	// WindowItem is a sliding-window frequency-query result.
	WindowItem[T Value] = window.Item[T]
	// FrequencyEstimator answers eps-approximate frequency queries over
	// the whole stream history (Manku-Motwani lossy counting).
	FrequencyEstimator[T Value] = frequency.Estimator[T]
	// QuantileEstimator answers eps-approximate quantile queries over the
	// whole stream history (Greenwald-Khanna + exponential histogram).
	QuantileEstimator[T Value] = quantile.Estimator[T]
	// SlidingFrequency answers frequency queries over the most recent W
	// elements.
	SlidingFrequency[T Value] = window.SlidingFrequency[T]
	// SlidingQuantile answers quantile queries over the most recent W
	// elements.
	SlidingQuantile[T Value] = window.SlidingQuantile[T]
	// QuantileSummary is a mergeable Greenwald-Khanna quantile summary
	// with rank bounds, as returned by sensor-tree aggregation.
	QuantileSummary[T Value] = summary.Summary[T]
	// ParallelQuantileEstimator answers eps-approximate quantile queries
	// over a stream ingested concurrently by K shard workers.
	ParallelQuantileEstimator[T Value] = shard.Quantile[T]
	// ParallelFrequencyEstimator answers eps-approximate frequency queries
	// over a stream ingested concurrently by K shard workers.
	ParallelFrequencyEstimator[T Value] = shard.Frequency[T]
	// ParallelOption configures sharded ingestion (e.g. WithBatchSize).
	ParallelOption = shard.Option
	// PerfModel converts operation counts to modeled 2004-testbed time.
	PerfModel = perfmodel.Model
	// SortBreakdown decomposes one modeled GPU sort (Figure 4).
	SortBreakdown = perfmodel.SortBreakdown
	// Stats is the unified per-stage pipeline telemetry every estimator
	// reports: operation counters plus wall clock for sort, merge,
	// compress, and (for sharded ingestion) worker idle time.
	Stats = pipeline.Stats
	// Snapshot is an immutable point-in-time queryable view of an
	// estimator, as returned by Snapshot() on every family. See Estimator.
	Snapshot[T Value] = pipeline.View[T]
	// FrequencySnapshot is the concrete view of a FrequencyEstimator (and
	// of a K=1 ParallelFrequencyEstimator).
	FrequencySnapshot[T Value] = frequency.Snapshot[T]
	// QuantileSnapshot is the concrete view of a QuantileEstimator or
	// ParallelQuantileEstimator.
	QuantileSnapshot[T Value] = quantile.Snapshot[T]
	// SlidingFrequencySnapshot is the concrete view of a SlidingFrequency,
	// answering variable-span window queries.
	SlidingFrequencySnapshot[T Value] = window.FrequencySnapshot[T]
	// SlidingQuantileSnapshot is the concrete view of a SlidingQuantile,
	// answering variable-span window queries.
	SlidingQuantileSnapshot[T Value] = window.QuantileSnapshot[T]
	// FrugalEstimator maintains a bank of frugal-streaming quantile
	// trackers — one or two words of state per target quantile, no summary,
	// no sort. Answers are converging point estimates, not eps-bounded
	// ranks.
	FrugalEstimator[T Value] = frugal.Estimator[T]
	// FrugalOption configures a FrugalEstimator (WithPhis, WithFrugalSeed).
	FrugalOption = frugal.Option
	// FrugalSnapshot is the concrete view of a FrugalEstimator.
	FrugalSnapshot[T Value] = frugal.Snapshot[T]
)

// ErrClosed is the sentinel error for ingestion after Close. Every
// estimator's Process/ProcessSlice returns an error wrapping it once the
// estimator is closed; test with errors.Is(err, gpustream.ErrClosed).
var ErrClosed = pipeline.ErrClosed

// EstimatorStats is one engine-created estimator's telemetry snapshot, as
// returned by Engine.Stats.
type EstimatorStats struct {
	// Kind identifies the estimator family: "frequency", "quantile",
	// "sliding-frequency", "sliding-quantile", "parallel-frequency",
	// "parallel-quantile", "frugal", or "keyed".
	Kind  string
	Stats Stats
	// Backend is the canonical name of the sorting backend the estimator's
	// pipeline is currently running — under BackendAuto this tracks the
	// adaptive controller's live selection. Empty for sorter-less families
	// (frugal, keyed frugal tiers).
	Backend string
	// Window is the pipeline's currently selected sort-window size in
	// elements; zero for sorter-less families.
	Window int
	// Async reports whether the pipeline is currently ingesting through the
	// staged asynchronous executor — under elastic concurrency
	// ("async":"auto") this tracks the adaptive controller's live mode
	// decision. Always false for sorter-less families.
	Async bool
	// Shards is the live worker count of the parallel families — under
	// elastic sharding ("shards":"auto") this tracks the scaler's live
	// count. Zero for serial families.
	Shards int
	// Tuning carries the adaptive controller's externally visible state for
	// estimators created under BackendAuto or with elastic concurrency (for
	// parallel families, shard 0's controller — all shards see
	// statistically identical substreams); nil for pinned or fully static
	// configurations.
	Tuning *TuningDecision
	// Keyed carries tier occupancy for "keyed" estimators (per-tier key
	// counts, promotion rate); nil for every other kind.
	Keyed *KeyedTierStats
}

// TuningDecision is an adaptive controller's externally visible state: what
// it has selected, which phase of the probe/climb/steady state machine it is
// in, and its per-backend measurements. Surfaced through Engine.Stats,
// streammine -stats, and cmd/streamd's /statsz.
type TuningDecision struct {
	// Backend is the committed (or currently probing) backend name.
	Backend string `json:"backend"`
	// Window is the controller's selected sort-window size.
	Window int `json:"window"`
	// Phase is "probe", "window", or "steady".
	Phase string `json:"phase"`
	// Switches counts backend swaps the controller has scheduled,
	// including probe cycling.
	Switches int `json:"switches"`
	// Async is the controller's live execution-mode observation ("sync" or
	// "async"), empty until the first retune.
	Async string `json:"async,omitempty"`
	// NsPerValue holds the latest measured sort cost per value for every
	// backend probed so far.
	NsPerValue map[string]float64 `json:"ns_per_value,omitempty"`
	// Shards, ShardPhase and Rescales carry the shard-count scaler's state
	// for elastic parallel estimators ("shards":"auto"); zero otherwise.
	Shards     int    `json:"shards,omitempty"`
	ShardPhase string `json:"shard_phase,omitempty"`
	Rescales   int    `json:"rescales,omitempty"`
	// ShardNsPerValue holds the scaler's latest measured wall clock per
	// value for every shard count tried so far, keyed by the decimal count.
	ShardNsPerValue map[string]float64 `json:"shard_ns_per_value,omitempty"`
}

// Engine binds a sorting backend to the stream-mining algorithms over
// streams of element type T.
type Engine[T Value] struct {
	backend Backend
	srt     Sorter[T]
	model   perfmodel.Model

	mu       sync.Mutex
	trackers []tracker
}

// tracker is one registered estimator: its kind and closures reading its
// live telemetry. knobs/tuning are nil for sorter-less families and static
// backends respectively; keyed is non-nil only for keyed estimators, whose
// tier occupancy rides along with the pipeline stats.
type tracker struct {
	kind   string
	stats  func() Stats
	knobs  func() (string, int)
	async  func() bool
	shards func() int
	tuning func() *TuningDecision
	keyed  func() KeyedTierStats
}

// track registers an estimator's stats reader, in creation order.
func (e *Engine[T]) track(kind string, fn func() Stats) {
	e.mu.Lock()
	e.trackers = append(e.trackers, tracker{kind: kind, stats: fn})
	e.mu.Unlock()
}

// trackTuned registers a sorter-backed estimator's stats, live-knob,
// execution-mode, and (when ctrl is non-nil) tuning-decision readers.
func (e *Engine[T]) trackTuned(kind string, stats func() Stats, knobs func() (Sorter[T], int), async func() bool, ctrl *adaptive.Controller[T]) {
	e.trackElastic(kind, stats, knobs, async, nil, ctrl, nil)
}

// trackElastic is trackTuned plus the elastic-concurrency readers of the
// parallel families: the live shard count and (when a Scaler drives it) the
// scaler's decision, folded into the same TuningDecision as the
// controller's.
func (e *Engine[T]) trackElastic(kind string, stats func() Stats, knobs func() (Sorter[T], int), async func() bool, shards func() int, ctrl *adaptive.Controller[T], scaler *adaptive.Scaler) {
	t := tracker{kind: kind, stats: stats, async: async, shards: shards}
	t.knobs = func() (string, int) {
		s, w := knobs()
		return backendNameOf[T](s), w
	}
	if ctrl != nil || scaler != nil {
		t.tuning = func() *TuningDecision {
			d := &TuningDecision{}
			if ctrl != nil {
				cd := ctrl.Decision()
				d.Backend = cd.Backend
				d.Window = cd.Window
				d.Phase = cd.Phase
				d.Switches = cd.Switches
				d.Async = cd.Async
				d.NsPerValue = cd.NsPerValue
			}
			if scaler != nil {
				sd := scaler.Decision()
				d.Shards = sd.Shards
				d.ShardPhase = sd.Phase
				d.Rescales = sd.Rescales
				d.ShardNsPerValue = sd.NsPerValue
			}
			return d
		}
	}
	e.mu.Lock()
	e.trackers = append(e.trackers, t)
	e.mu.Unlock()
}

// trackKeyed registers a keyed estimator's stats and tier-occupancy readers.
func (e *Engine[T]) trackKeyed(stats func() Stats, keyed func() KeyedTierStats) {
	e.mu.Lock()
	e.trackers = append(e.trackers, tracker{kind: "keyed", stats: stats, keyed: keyed})
	e.mu.Unlock()
}

// Stats snapshots the unified pipeline telemetry of every estimator this
// engine has created, in creation order. It is safe to call at any time,
// including mid-ingestion: every estimator synchronizes its stats reads
// with its ingestion, so each report's counters are internally consistent
// (no torn sort/merge/compress totals).
func (e *Engine[T]) Stats() []EstimatorStats {
	e.mu.Lock()
	trackers := append([]tracker(nil), e.trackers...)
	e.mu.Unlock()
	out := make([]EstimatorStats, len(trackers))
	for i, t := range trackers {
		out[i] = EstimatorStats{Kind: t.kind, Stats: t.stats()}
		if t.knobs != nil {
			out[i].Backend, out[i].Window = t.knobs()
		}
		if t.async != nil {
			out[i].Async = t.async()
		}
		if t.shards != nil {
			out[i].Shards = t.shards()
		}
		if t.tuning != nil {
			out[i].Tuning = t.tuning()
		}
		if t.keyed != nil {
			ks := t.keyed()
			out[i].Keyed = &ks
		}
	}
	return out
}

// New returns an Engine over float32 streams — the paper's native element
// type — using the given backend.
func New(backend Backend) *Engine[float32] { return NewOf[float32](backend) }

// NewOf returns an Engine over streams of element type T using the given
// backend. All four backends support every Value type; GPU primitive-op
// counts (and therefore modeled GPU time) are identical across types for
// equal input sizes.
func NewOf[T Value](backend Backend) *Engine[T] {
	e := &Engine[T]{backend: backend, model: perfmodel.Default()}
	e.srt = newBackendSorter[T](backend)
	return e
}

// newBackendSorter constructs a fresh sorter instance for the given backend
// at element type T. Parallel estimators call it once per shard: the GPU
// simulator keeps per-sort state (LastStats), so sorter instances must
// never be shared across goroutines. BackendAuto constructs its sample-sort
// starting point — the extension surfaces (HHH, correlated sum, sensor
// trees, the DSMS executor) have no pipeline telemetry to tune against, so
// under auto they simply run sample sort statically.
func newBackendSorter[T Value](backend Backend) Sorter[T] {
	switch backend {
	case BackendGPU:
		return gpusort.NewSorter[T]()
	case BackendGPUBitonic:
		return gpusort.NewBitonicSorter[T]()
	case BackendCPU:
		return cpusort.QuicksortSorter[T]{}
	case BackendCPUParallel:
		return cpusort.ParallelSorter[T]{}
	case BackendSampleSort, BackendAuto:
		return samplesort.NewSorter[T]()
	}
	panic(fmt.Sprintf("gpustream: unknown backend %v", backend))
}

// backendNameOf maps a live sorter instance back to its canonical backend
// name, for telemetry (EstimatorStats.Backend, streammine -stats, /statsz).
func backendNameOf[T Value](s Sorter[T]) string {
	switch s.(type) {
	case *gpusort.Sorter[T]:
		return "gpu"
	case *gpusort.BitonicSorter[T]:
		return "gpu-bitonic"
	case cpusort.QuicksortSorter[T]:
		return "cpu"
	case cpusort.ParallelSorter[T]:
		return "cpu-parallel"
	case *samplesort.Sorter[T]:
		return "samplesort"
	case nil:
		return ""
	}
	return s.Name()
}

// autoCandidates is the adaptive controller's probe set: every concrete
// backend, ordered at runtime by the perfmodel's closed-form prior for the
// pipeline's current window size.
func autoCandidates[T Value](m perfmodel.Model) []adaptive.Candidate[T] {
	return []adaptive.Candidate[T]{
		{
			Backend: "gpu",
			New:     func() Sorter[T] { return gpusort.NewSorter[T]() },
			Modeled: func(n int) time.Duration { return m.PBSNSortTime(n).Total() },
		},
		{
			Backend: "gpu-bitonic",
			New:     func() Sorter[T] { return gpusort.NewBitonicSorter[T]() },
			Modeled: func(n int) time.Duration { return m.BitonicSortTime(n).Total() },
		},
		{
			Backend: "cpu",
			New:     func() Sorter[T] { return cpusort.QuicksortSorter[T]{} },
			Modeled: func(n int) time.Duration { return m.QuicksortTime(n, perfmodel.MSVC) },
		},
		{
			Backend: "cpu-parallel",
			New:     func() Sorter[T] { return cpusort.ParallelSorter[T]{} },
			Modeled: func(n int) time.Duration { return m.QuicksortTime(n, perfmodel.IntelHT) },
		},
		{
			Backend: "samplesort",
			New:     func() Sorter[T] { return samplesort.NewSorter[T]() },
			Modeled: m.SampleSortTime,
		},
	}
}

// candidateFor resolves a static backend to its single adaptive candidate —
// the probe set of an elastic-concurrency controller on a non-auto engine,
// which tunes the execution mode but must never move the backend knob.
func candidateFor[T Value](b Backend, m perfmodel.Model) adaptive.Candidate[T] {
	name := b.String()
	for _, c := range autoCandidates[T](m) {
		if c.Backend == name {
			return c
		}
	}
	panic(fmt.Sprintf("gpustream: no adaptive candidate for backend %v", b))
}

// newBackendSorter is the engine-bound form of the package-level helper.
func (e *Engine[T]) newBackendSorter() Sorter[T] { return newBackendSorter[T](e.backend) }

// WithBatchSize overrides the parallel estimators' ingestion hand-off batch
// size (default ~64K values).
func WithBatchSize(n int) ParallelOption { return shard.WithBatchSize(n) }

// WithAsyncShards enables staged asynchronous ingestion inside every shard of
// a parallel estimator: each worker's windows sort on a dedicated stage
// goroutine that overlaps the merge/compress of the previous window. Answers
// stay bit-identical to synchronous shards.
func WithAsyncShards() ParallelOption { return shard.WithAsync() }

// WithShardSortWindow overrides the per-shard sort-window size of a parallel
// estimator, the sharded counterpart of WithSortWindow. Values below the
// per-shard eps floor are clamped up.
func WithShardSortWindow(n int) ParallelOption { return shard.WithWindow(n) }

// WithPinnedShardTuning installs a do-nothing tuner on every shard pipeline
// of a parallel estimator — the sharded counterpart of WithPinnedTuning. T
// must match the engine's element type.
func WithPinnedShardTuning[T Value]() ParallelOption {
	return shard.WithTunerFactory(func() pipeline.Tuner[T] { return adaptive.Pinned[T]() })
}

// EstimatorOption configures a serial estimator constructor
// (NewFrequencyEstimator, NewQuantileEstimator, NewSlidingFrequency,
// NewSlidingQuantile).
type EstimatorOption func(*estimatorConfig)

type estimatorConfig struct {
	async     bool
	autoAsync bool
	window    int
	pinned    bool
}

// withAutoAsync hands the execution mode (sync vs staged async ingestion) to
// the adaptive controller: the concurrency phase measures both modes on the
// live stream and commits to the faster one, re-probing on degradation. The
// construction path of Spec{Async: AsyncAuto}; unexported because Spec is the
// declarative surface for elastic concurrency.
func withAutoAsync() EstimatorOption { return func(c *estimatorConfig) { c.autoAsync = true } }

// WithAsyncIngestion enables staged asynchronous ingestion — the paper's
// co-processing execution model: each full window is handed to a sort stage
// goroutine (the simulated GPU's non-blocking render + readback) while the
// merge/compress of the previous window proceeds concurrently, with two
// pooled window buffers double-buffering ingestion. Answers and sort
// operation counts are bit-identical to the default synchronous mode;
// Stats.Overlap reports the measured co-processing time.
func WithAsyncIngestion() EstimatorOption { return func(c *estimatorConfig) { c.async = true } }

// WithSortWindow overrides the whole-history families' sort-window size in
// elements. Values below a family's eps floor are clamped up by the
// estimator; the sliding families ignore it (their pane size is the query
// parameter w, part of the answer's semantics, not a tuning knob). Under
// BackendAuto this sets the adaptive controller's minimum window.
func WithSortWindow(n int) EstimatorOption {
	if n <= 0 {
		panic("gpustream: sort window must be positive")
	}
	return func(c *estimatorConfig) { c.window = n }
}

// WithPinnedTuning installs a do-nothing tuner on the estimator's pipeline:
// the retune hook runs at every window boundary but never moves a knob, so
// answers are bit-identical to the same backend with no tuner at all. Under
// BackendAuto this pins the pipeline to its sample-sort starting point —
// the harness for the bit-identity tests, and an escape hatch when adaptive
// behavior is unwanted on one estimator of an auto engine.
func WithPinnedTuning() EstimatorOption {
	return func(c *estimatorConfig) { c.pinned = true }
}

func parseEstimatorOptions(opts []EstimatorOption) estimatorConfig {
	var cfg estimatorConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// tunable is the SetTuner surface every sorter-backed estimator family
// exposes.
type tunable[T Value] interface {
	SetTuner(pipeline.Tuner[T])
}

// attachTuner wires the estimator's pipeline to an adaptive controller
// (BackendAuto, or any backend with elastic concurrency), a pinned tuner
// (WithPinnedTuning), or nothing (fully static configurations). It returns
// the controller when one was attached, for telemetry registration.
// tuneWindow gates the controller's window hill-climb — off for the sliding
// families, whose pane size is query semantics. On a static backend with
// autoAsync the controller sees exactly one candidate, so the probe phase
// degenerates to a baseline measurement and only the execution mode moves.
func (e *Engine[T]) attachTuner(est tunable[T], cfg estimatorConfig, tuneWindow bool) *adaptive.Controller[T] {
	switch {
	case cfg.pinned:
		est.SetTuner(adaptive.Pinned[T]())
	case e.backend == BackendAuto:
		ctrl := adaptive.New(autoCandidates[T](e.model), adaptive.Config{TuneWindow: tuneWindow, ProbeFirst: "samplesort", TuneAsync: cfg.autoAsync})
		est.SetTuner(ctrl)
		return ctrl
	case cfg.autoAsync:
		cand := candidateFor[T](e.backend, e.model)
		ctrl := adaptive.New([]adaptive.Candidate[T]{cand}, adaptive.Config{ProbeFirst: cand.Backend, TuneAsync: true})
		est.SetTuner(ctrl)
		return ctrl
	}
	return nil
}

// Backend reports the engine's configured backend.
func (e *Engine[T]) Backend() Backend { return e.backend }

// Sorter exposes the engine's sorting backend.
func (e *Engine[T]) Sorter() Sorter[T] { return e.srt }

// Model exposes the 2004-testbed performance model.
func (e *Engine[T]) Model() PerfModel { return e.model }

// Sort orders data ascending in place using the configured backend.
func (e *Engine[T]) Sort(data []T) { e.srt.Sort(data) }

// LastSortBreakdown models the cost of the most recent GPU-backed
// Engine.Sort call on the paper's testbed. It returns ok=false for CPU
// backends, which have no transfer/setup decomposition, and before any Sort
// call. Estimators sort through their own sorter instances and report
// through Stats instead.
func (e *Engine[T]) LastSortBreakdown() (SortBreakdown, bool) {
	switch s := e.srt.(type) {
	case *gpusort.Sorter[T]:
		if st := s.LastStats(); st.GPU.Transfers > 0 {
			return e.model.GPUSortFromStats(st.GPU, st.MergeCmps), true
		}
	case *gpusort.BitonicSorter[T]:
		if st := s.LastStats(); st.GPU.Transfers > 0 {
			return e.model.GPUSortFromStats(st.GPU, st.MergeCmps), true
		}
	}
	return SortBreakdown{}, false
}

// NewFrequencyEstimator returns an eps-approximate frequency estimator
// backed by this engine's sorter. Estimated counts undercount true ones by
// at most eps*N; Query(s) reports every item above support s with no false
// negatives.
// Each estimator gets its own sorter instance: stateful backends (the GPU
// simulator's LastStats) must not be shared between estimators, and this
// also keeps Engine.Sort's LastSortBreakdown isolated from estimator
// ingestion.
func (e *Engine[T]) NewFrequencyEstimator(eps float64, opts ...EstimatorOption) *FrequencyEstimator[T] {
	cfg := parseEstimatorOptions(opts)
	var fopts []frequency.Option
	if cfg.async {
		fopts = append(fopts, frequency.WithAsync())
	}
	if cfg.window > 0 {
		fopts = append(fopts, frequency.WithWindow(cfg.window))
	}
	est := frequency.NewEstimator(eps, e.newBackendSorter(), fopts...)
	ctrl := e.attachTuner(est, cfg, true)
	e.trackTuned("frequency", est.Stats, est.Knobs, est.Async, ctrl)
	return est
}

// NewQuantileEstimator returns an eps-approximate quantile estimator for
// streams of up to capacity elements (capacity <= 0 picks a generous
// default), backed by this engine's sorter.
func (e *Engine[T]) NewQuantileEstimator(eps float64, capacity int64, opts ...EstimatorOption) *QuantileEstimator[T] {
	cfg := parseEstimatorOptions(opts)
	var qopts []quantile.Option
	if cfg.async {
		qopts = append(qopts, quantile.WithAsync())
	}
	if cfg.window > 0 {
		qopts = append(qopts, quantile.WithWindow(cfg.window))
	}
	est := quantile.NewEstimator(eps, capacity, e.newBackendSorter(), qopts...)
	ctrl := e.attachTuner(est, cfg, true)
	e.trackTuned("quantile", est.Stats, est.Knobs, est.Async, ctrl)
	return est
}

// NewParallelQuantileEstimator returns an eps-approximate quantile
// estimator that partitions ingestion across `shards` goroutine workers
// (shards <= 0 selects runtime.GOMAXPROCS(0)), each with its own sorter
// instance of this engine's backend. Per-shard summaries carry an eps/2
// budget and queries merge them, so answers stay eps-approximate; with one
// shard the output is bit-identical to NewQuantileEstimator. Call Flush to
// make buffered values queryable and Close when ingestion ends.
func (e *Engine[T]) NewParallelQuantileEstimator(eps float64, capacity int64, shards int, opts ...ParallelOption) *ParallelQuantileEstimator[T] {
	return e.newParallelQuantile(eps, capacity, shards, tuningSpec{}, opts...)
}

func (e *Engine[T]) newParallelQuantile(eps float64, capacity int64, shards int, tn tuningSpec, opts ...ParallelOption) *ParallelQuantileEstimator[T] {
	opts, ctrl, scaler := e.shardTuning(tn, opts)
	est := shard.NewQuantile(eps, capacity, shards, e.newBackendSorter, opts...)
	e.trackElastic("parallel-quantile", est.Stats, est.Knobs, est.Async, est.Shards, ctrl(), scaler)
	return est
}

// NewParallelFrequencyEstimator returns an eps-approximate frequency
// estimator that partitions ingestion across `shards` goroutine workers
// (shards <= 0 selects runtime.GOMAXPROCS(0)), each with its own sorter
// instance of this engine's backend. Lossy-counting undercounts are
// additive across shards, so merged answers keep the serial estimator's
// no-false-negative guarantee; with one shard the output is bit-identical
// to NewFrequencyEstimator.
func (e *Engine[T]) NewParallelFrequencyEstimator(eps float64, shards int, opts ...ParallelOption) *ParallelFrequencyEstimator[T] {
	return e.newParallelFrequency(eps, shards, tuningSpec{}, opts...)
}

func (e *Engine[T]) newParallelFrequency(eps float64, shards int, tn tuningSpec, opts ...ParallelOption) *ParallelFrequencyEstimator[T] {
	opts, ctrl, scaler := e.shardTuning(tn, opts)
	est := shard.NewFrequency(eps, shards, e.newBackendSorter, opts...)
	e.trackElastic("parallel-frequency", est.Stats, est.Knobs, est.Async, est.Shards, ctrl(), scaler)
	return est
}

// tuningSpec names the elastic axes a Spec asked the runtime to own:
// autoAsync hands each shard pipeline's execution mode to its adaptive
// controller ("async":"auto"), autoShards installs a Scaler that hill-climbs
// the worker count ("shards":"auto").
type tuningSpec struct {
	autoAsync  bool
	autoShards bool
}

// shardTuning prepends the engine's adaptive tuner factory to the parallel
// options when the backend is auto or the spec asked for elastic concurrency
// (prepended, so caller-supplied factories — e.g. WithPinnedShardTuning —
// still win), installs the shard-count scaler under autoShards, and returns
// a getter for shard 0's controller, valid once the sharded constructor has
// run the factory. Shard 0 is never retired by a scale-down (the pool
// removes workers from the tail and keeps at least one), so its controller
// stays live for telemetry across any rescale schedule.
func (e *Engine[T]) shardTuning(tn tuningSpec, opts []ParallelOption) ([]ParallelOption, func() *adaptive.Controller[T], *adaptive.Scaler) {
	var scaler *adaptive.Scaler
	if tn.autoShards {
		scaler = adaptive.NewScaler(adaptive.ScalerConfig{})
		opts = append([]ParallelOption{shard.WithRescaler(scaler)}, opts...)
	}
	if e.backend != BackendAuto && !tn.autoAsync {
		return opts, func() *adaptive.Controller[T] { return nil }, scaler
	}
	// The factory runs under the family's shard lock — at construction and
	// again on every elastic scale-up — so guard the shard-0 capture with
	// its own mutex against a concurrent Stats reader.
	var (
		mu    sync.Mutex
		first *adaptive.Controller[T]
	)
	factory := func() pipeline.Tuner[T] {
		cands := autoCandidates[T](e.model)
		cfg := adaptive.Config{TuneWindow: true, ProbeFirst: "samplesort", TuneAsync: tn.autoAsync}
		if e.backend != BackendAuto {
			cand := candidateFor[T](e.backend, e.model)
			cands = []adaptive.Candidate[T]{cand}
			cfg = adaptive.Config{ProbeFirst: cand.Backend, TuneAsync: true}
		}
		c := adaptive.New(cands, cfg)
		mu.Lock()
		if first == nil {
			first = c
		}
		mu.Unlock()
		return c
	}
	opts = append([]ParallelOption{shard.WithTunerFactory(factory)}, opts...)
	return opts, func() *adaptive.Controller[T] {
		mu.Lock()
		defer mu.Unlock()
		return first
	}, scaler
}

// NewSlidingFrequency returns an eps-approximate frequency estimator over
// sliding windows of w elements, backed by this engine's sorter.
func (e *Engine[T]) NewSlidingFrequency(eps float64, w int, opts ...EstimatorOption) *SlidingFrequency[T] {
	cfg := parseEstimatorOptions(opts)
	var wopts []window.Option
	if cfg.async {
		wopts = append(wopts, window.WithAsync())
	}
	est := window.NewSlidingFrequency(eps, w, e.newBackendSorter(), wopts...)
	ctrl := e.attachTuner(est, cfg, false)
	e.trackTuned("sliding-frequency", est.Stats, est.Knobs, est.Async, ctrl)
	return est
}

// NewSlidingQuantile returns an eps-approximate quantile estimator over
// sliding windows of w elements, backed by this engine's sorter.
func (e *Engine[T]) NewSlidingQuantile(eps float64, w int, opts ...EstimatorOption) *SlidingQuantile[T] {
	cfg := parseEstimatorOptions(opts)
	var wopts []window.Option
	if cfg.async {
		wopts = append(wopts, window.WithAsync())
	}
	est := window.NewSlidingQuantile(eps, w, e.newBackendSorter(), wopts...)
	ctrl := e.attachTuner(est, cfg, false)
	e.trackTuned("sliding-quantile", est.Stats, est.Knobs, est.Async, ctrl)
	return est
}

// WithPhis selects the target quantiles a FrugalEstimator tracks, one word
// of state each (default frugal.DefaultPhis).
func WithPhis(phis ...float64) FrugalOption { return frugal.WithPhis(phis...) }

// WithFrugalSeed seeds a FrugalEstimator's randomized rank gates; estimates
// are deterministic for a fixed seed and ingestion order.
func WithFrugalSeed(seed uint64) FrugalOption { return frugal.WithSeed(seed) }

// NewFrugalEstimator returns a frugal-streaming quantile estimator: one
// converging point estimate per tracked target quantile, in one or two
// machine words each — the opposite end of the memory spectrum from the
// summary-based families, with heuristic (not eps-bounded) answers. It uses
// no sorter; it registers with the engine only for Stats reporting.
func (e *Engine[T]) NewFrugalEstimator(opts ...FrugalOption) *FrugalEstimator[T] {
	est := frugal.NewEstimator[T](opts...)
	e.track("frugal", est.Stats)
	return est
}
