package gpustream

import (
	"math"
	"testing"

	"gpustream/internal/stream"
)

func TestHHHThroughEngine(t *testing.T) {
	eng := NewOf[uint32](BackendGPU)
	est := NewHHHEstimator(eng, NewBitHierarchy[uint32](16, 8), 0.005)
	r := stream.NewRNG(1)
	for i := 0; i < 30000; i++ {
		if i%5 == 0 {
			est.Process(0xAB00 | uint32(r.Intn(100)))
		} else {
			est.Process(uint32(r.Intn(1 << 16)))
		}
	}
	hits := est.Query(0.1)
	found := false
	for _, p := range hits {
		if p.Level == 1 && p.Value == 0xAB00 {
			found = true
		}
	}
	if !found {
		t.Fatalf("collectively-heavy prefix missing: %v", hits)
	}
}

func TestCorrelatedSumThroughEngine(t *testing.T) {
	eng := New(BackendGPU)
	est := eng.NewCorrelatedSum(0.01, 20000)
	var pairs []Pair
	r := stream.NewRNG(2)
	for i := 0; i < 20000; i++ {
		p := Pair{X: float32(r.Float64() * 100), Y: r.Float64() * 3}
		pairs = append(pairs, p)
		est.Process(p)
	}
	truth := func(t float32) float64 {
		total := 0.0
		for _, p := range pairs {
			if p.X <= t {
				total += p.Y
			}
		}
		return total
	}
	for _, tt := range []float32{10, 50, 90} {
		got := est.Sum(tt)
		want := truth(tt)
		if math.Abs(got-want) > 0.01*truth(1000)+30 {
			t.Fatalf("Sum(%v) = %v, truth %v", tt, got, want)
		}
	}
}

func TestSensorTreeThroughEngine(t *testing.T) {
	eng := New(BackendGPU)
	root := &SensorNode{
		Children: []*SensorNode{
			{Observations: stream.Gaussian(4096, 10, 2, 1)},
			{Observations: stream.Gaussian(4096, 20, 2, 2)},
			{Children: []*SensorNode{
				{Observations: stream.Gaussian(4096, 30, 2, 3)},
			}},
		},
	}
	s, st := eng.AggregateSensorTree(root, 0.02)
	if s.N != 3*4096 {
		t.Fatalf("N = %d", s.N)
	}
	if st.Nodes != 5 || st.Observations != 3*4096 {
		t.Fatalf("stats = %+v", st)
	}
	med := s.Query(0.5)
	if med < 12 || med > 28 {
		t.Fatalf("median = %v", med)
	}
}

func TestKthLargestFacade(t *testing.T) {
	data := stream.Uniform(2000, 5)
	ref := append([]float32(nil), data...)
	New(BackendCPU).Sort(ref)
	for _, k := range []int{1, 1000, 2000} {
		if got := KthLargest(data, k); got != ref[len(ref)-k] {
			t.Fatalf("KthLargest(%d) = %v, want %v", k, got, ref[len(ref)-k])
		}
	}
}

func TestQuantize16Facade(t *testing.T) {
	data := []float32{1.0000001, 3.14159265}
	Quantize16(data)
	if data[0] != 1 {
		t.Fatalf("Quantize16 = %v", data)
	}
	// Order preserved on a random stream.
	d := stream.Uniform(1000, 6)
	sorted := append([]float32(nil), d...)
	New(BackendCPU).Sort(sorted)
	Quantize16(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatal("quantization broke ordering")
		}
	}
}

func TestExecutorFacade(t *testing.T) {
	eng := New(BackendGPU)
	ex := eng.NewExecutor(0)
	ex.Register(QuerySpec{Kind: FrequencyAbove, Eps: 0.01, Param: 0.1, Name: "hh"})
	ex.Register(QuerySpec{Kind: SlidingQuantileAt, Eps: 0.02, Param: 0.5, Window: 1000, Name: "m"})
	ex.Push(stream.Zipf(5000, 1.3, 100, 7))
	res := ex.Results()
	if len(res) != 2 || len(res[0].Items) == 0 {
		t.Fatalf("executor results = %+v", res)
	}
	if st := ex.Stats(); st.Ingested != 5000 {
		t.Fatalf("stats = %+v", st)
	}
}
