package gpustream_test

import (
	"math/rand"
	"reflect"
	"testing"

	"gpustream"
	"gpustream/internal/stream"
)

// The ingestion metamorphic property: how a stream is chunked across
// Process/ProcessSlice calls is invisible to queries. The pipeline core
// re-batches everything into windows, so feeding the whole stream in one
// slice, one element at a time, or in random-size chunks must produce
// bit-identical answers for every estimator family.

// chunkPlans returns the three ingestion plans as chunk-length sequences.
func chunkPlans(n int, seed int64) [][]int {
	whole := []int{n}
	ones := make([]int, n)
	for i := range ones {
		ones[i] = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var random []int
	for left := n; left > 0; {
		c := 1 + rng.Intn(2500)
		if c > left {
			c = left
		}
		random = append(random, c)
		left -= c
	}
	return [][]int{whole, ones, random}
}

// ingest feeds data according to plan, using Process for 1-chunks and
// ProcessSlice otherwise, so both entry points are exercised.
func ingest[T gpustream.Value](est interface {
	Process(T) error
	ProcessSlice([]T) error
}, data []T, plan []int) {
	off := 0
	for _, c := range plan {
		if c == 1 {
			_ = est.Process(data[off])
		} else {
			_ = est.ProcessSlice(data[off : off+c])
		}
		off += c
	}
}

func metamorphicStream(n int) []float32 {
	return stream.Zipf(n, 1.2, n/50+10, 99)
}

// answersEqual fails the test when any two plans' answers differ.
func answersEqual(t *testing.T, name string, answers []any) {
	t.Helper()
	for i := 1; i < len(answers); i++ {
		if !reflect.DeepEqual(answers[0], answers[i]) {
			t.Fatalf("%s: ingestion plan %d disagrees with plan 0:\n  plan 0: %v\n  plan %d: %v",
				name, i, answers[0], i, answers[i])
		}
	}
}

func TestMetamorphicFrequency(t *testing.T) {
	const n = 30_000
	data := metamorphicStream(n)
	var answers []any
	for _, plan := range chunkPlans(n, 7) {
		est := gpustream.New(gpustream.BackendCPU).NewFrequencyEstimator(0.002)
		ingest(est, data, plan)
		ans := struct {
			Items []gpustream.Item[float32]
			Est   []int64
			Size  int
		}{Items: est.Query(0.01), Size: est.SummarySize()}
		for _, v := range []float32{0, 1, 5, 17, 1e6} {
			ans.Est = append(ans.Est, est.Estimate(v))
		}
		answers = append(answers, any(ans))
	}
	answersEqual(t, "frequency", answers)
}

func TestMetamorphicQuantile(t *testing.T) {
	const n = 30_000
	data := metamorphicStream(n)
	var answers []any
	for _, plan := range chunkPlans(n, 8) {
		est := gpustream.New(gpustream.BackendCPU).NewQuantileEstimator(0.005, n)
		ingest(est, data, plan)
		var qs []float32
		for _, phi := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
			qs = append(qs, est.Query(phi))
		}
		answers = append(answers, any(qs))
	}
	answersEqual(t, "quantile", answers)
}

func TestMetamorphicSlidingFrequency(t *testing.T) {
	const n = 30_000
	data := metamorphicStream(n)
	var answers []any
	for _, plan := range chunkPlans(n, 9) {
		est := gpustream.New(gpustream.BackendCPU).NewSlidingFrequency(0.01, 8_000)
		ingest(est, data, plan)
		ans := struct {
			Full []gpustream.WindowItem[float32]
			Sub  []gpustream.WindowItem[float32]
			Est  int64
		}{Full: est.Query(0.02), Sub: est.QueryWindow(0.02, 3_000), Est: est.Estimate(1)}
		answers = append(answers, any(ans))
	}
	answersEqual(t, "sliding-frequency", answers)
}

func TestMetamorphicSlidingQuantile(t *testing.T) {
	const n = 30_000
	data := metamorphicStream(n)
	var answers []any
	for _, plan := range chunkPlans(n, 10) {
		est := gpustream.New(gpustream.BackendCPU).NewSlidingQuantile(0.01, 8_000)
		ingest(est, data, plan)
		var qs []float32
		for _, phi := range []float64{0.1, 0.5, 0.9} {
			qs = append(qs, est.Query(phi), est.QueryWindow(phi, 3_000))
		}
		answers = append(answers, any(qs))
	}
	answersEqual(t, "sliding-quantile", answers)
}

// TestMetamorphicParallelK1 pins the K=1 sharded estimators to the same
// property: batching through the shard pool must not change answers either.
func TestMetamorphicParallelK1(t *testing.T) {
	const n = 30_000
	data := metamorphicStream(n)
	var freqAns, quantAns []any
	for _, plan := range chunkPlans(n, 11) {
		eng := gpustream.New(gpustream.BackendCPU)
		fe := eng.NewParallelFrequencyEstimator(0.002, 1, gpustream.WithBatchSize(1000))
		qe := eng.NewParallelQuantileEstimator(0.005, n, 1, gpustream.WithBatchSize(1000))
		ingest(fe, data, plan)
		ingest(qe, data, plan)
		fe.Close()
		qe.Close()
		freqAns = append(freqAns, any(fe.Query(0.01)))
		quantAns = append(quantAns, any([]float32{qe.Query(0.25), qe.Query(0.5), qe.Query(0.75)}))
	}
	answersEqual(t, "parallel-frequency", freqAns)
	answersEqual(t, "parallel-quantile", quantAns)
}

// TestMetamorphicAsyncMatchesSync extends the chunking property across the
// staged executor: for every ingestion plan, async ingestion must agree
// bit-for-bit with synchronous ingestion of the same chunks — for all four
// serial families and for K∈{1,4} sharded ingestion. (For K>1 the shard
// assignment depends on the chunk plan, so async is pinned to sync per plan
// rather than across plans.)
func TestMetamorphicAsyncMatchesSync(t *testing.T) {
	const n = 30_000
	data := metamorphicStream(n)
	for pi, plan := range chunkPlans(n, 14) {
		serial := func(async bool) any {
			var eopts []gpustream.EstimatorOption
			if async {
				eopts = append(eopts, gpustream.WithAsyncIngestion())
			}
			eng := gpustream.New(gpustream.BackendCPU)
			fe := eng.NewFrequencyEstimator(0.002, eopts...)
			qe := eng.NewQuantileEstimator(0.005, n, eopts...)
			sf := eng.NewSlidingFrequency(0.01, 8_000, eopts...)
			sq := eng.NewSlidingQuantile(0.01, 8_000, eopts...)
			for _, est := range []interface {
				Process(float32) error
				ProcessSlice([]float32) error
			}{fe, qe, sf, sq} {
				ingest(est, data, plan)
			}
			ans := struct {
				Heavy   []gpustream.Item[float32]
				Medians []float32
				SlideHH []gpustream.WindowItem[float32]
				SlideQ  []float32
			}{Heavy: fe.Query(0.01), SlideHH: sf.Query(0.02)}
			for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
				ans.Medians = append(ans.Medians, qe.Query(phi))
				ans.SlideQ = append(ans.SlideQ, sq.Query(phi))
			}
			fe.Close()
			qe.Close()
			sf.Close()
			sq.Close()
			return ans
		}
		parallel := func(k int, async bool) any {
			popts := []gpustream.ParallelOption{gpustream.WithBatchSize(1024)}
			if async {
				popts = append(popts, gpustream.WithAsyncShards())
			}
			eng := gpustream.New(gpustream.BackendCPU)
			pf := eng.NewParallelFrequencyEstimator(0.002, k, popts...)
			pq := eng.NewParallelQuantileEstimator(0.005, n, k, popts...)
			ingest(pf, data, plan)
			ingest(pq, data, plan)
			pf.Close()
			pq.Close()
			return any(struct {
				HH []gpustream.Item[float32]
				Qs []float32
			}{HH: pf.Query(0.01), Qs: []float32{pq.Query(0.25), pq.Query(0.5), pq.Query(0.75)}})
		}
		if s, a := serial(false), serial(true); !reflect.DeepEqual(s, a) {
			t.Fatalf("plan %d: serial async diverged from sync:\n  sync:  %v\n  async: %v", pi, s, a)
		}
		for _, k := range []int{1, 4} {
			if s, a := parallel(k, false), parallel(k, true); !reflect.DeepEqual(s, a) {
				t.Fatalf("plan %d: K=%d async diverged from sync:\n  sync:  %v\n  async: %v", pi, k, s, a)
			}
		}
	}
}

// typedChunkCase runs the whole family matrix at element type T under the
// three ingestion plans and demands bit-identical answers, extending the
// chunking metamorphic property beyond float32.
func typedChunkCase[T gpustream.Value](t *testing.T, data []T, seed int64) {
	n := len(data)
	var answers []any
	for _, plan := range chunkPlans(n, seed) {
		eng := gpustream.NewOf[T](gpustream.BackendCPU)
		fe := eng.NewFrequencyEstimator(0.002)
		qe := eng.NewQuantileEstimator(0.005, int64(n))
		sf := eng.NewSlidingFrequency(0.01, n/4)
		sq := eng.NewSlidingQuantile(0.01, n/4)
		pf := eng.NewParallelFrequencyEstimator(0.002, 1, gpustream.WithBatchSize(1000))
		pq := eng.NewParallelQuantileEstimator(0.005, int64(n), 1, gpustream.WithBatchSize(1000))
		for _, est := range []interface {
			Process(T) error
			ProcessSlice([]T) error
		}{fe, qe, sf, sq, pf, pq} {
			ingest(est, data, plan)
		}
		pf.Close()
		pq.Close()
		ans := struct {
			Heavy   []gpustream.Item[T]
			Medians []T
			SlideHH []gpustream.WindowItem[T]
			SlideQ  []T
			ParHH   []gpustream.Item[T]
			ParQ    []T
		}{
			Heavy:   fe.Query(0.01),
			SlideHH: sf.Query(0.02),
			ParHH:   pf.Query(0.01),
		}
		for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
			ans.Medians = append(ans.Medians, qe.Query(phi))
			ans.SlideQ = append(ans.SlideQ, sq.Query(phi))
			ans.ParQ = append(ans.ParQ, pq.Query(phi))
		}
		answers = append(answers, any(ans))
	}
	answersEqual(t, "typed-chunking", answers)
}

func TestMetamorphicTypedUint64(t *testing.T) {
	const n = 30_000
	data := stream.ZipfOf[uint64](n, 1.2, n/50+10, 41)
	for i, v := range data {
		data[i] = v<<40 | 0xBEEF // answers live beyond float32's exact range
	}
	typedChunkCase(t, data, 12)
}

func TestMetamorphicTypedFloat64(t *testing.T) {
	const n = 30_000
	typedChunkCase(t, stream.ZipfOf[float64](n, 1.2, n/50+10, 42), 13)
}
