module gpustream

go 1.24
