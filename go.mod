module gpustream

go 1.22
