// Hierarchy: the two extension queries the paper names in Section 1.2 —
// hierarchical heavy hitters and correlated sum aggregates — on a synthetic
// web-tracking workload. Requests carry a full 32-bit client id (aggregated
// like IPv4 /24, /16, /8 prefixes, natively as uint32 — no float encoding,
// no 24-bit cap) and a byte count; we ask (1) which prefixes dominate
// request volume even when no single client does, and (2) how many bytes
// the slowest half of clients account for.
package main

import (
	"fmt"

	"gpustream"
	"gpustream/internal/stream"
)

const (
	requests = 1_000_000
	eps      = 0.001
)

func main() {
	eng := gpustream.NewOf[uint32](gpustream.BackendGPU)
	r := stream.NewRNG(99)

	// Workload: background traffic over the whole 24-bit space, one hot
	// client (a crawler), and one collectively-hot /16 prefix (a campus
	// NAT block) whose individual clients stay small.
	hier := gpustream.NewBitHierarchy[uint32](32, 8)
	hhh := gpustream.NewHHHEstimator(eng, hier, eps)
	bytesBelow := eng.NewCorrelatedSum(eps, requests)

	for i := 0; i < requests; i++ {
		var client uint32
		switch {
		case i%10 == 0: // 10%: the crawler
			client = 0xC0C0FFEE
		case i%10 < 4: // 30%: spread over a /16 block (256 hosts used)
			client = 0xABCD0000 | uint32(r.Intn(256))
		default: // background
			client = uint32(r.Uint64())
		}
		hhh.Process(client)
		// Response size correlates with client id in this synthetic world.
		// The correlated-sum stream keys are float32 by design, so the id is
		// coarsened to its top bits for that query.
		respBytes := 200 + float64(client%1000)
		bytesBelow.Process(gpustream.Pair{X: float32(client >> 8), Y: respBytes})
	}

	fmt.Printf("processed %d requests (eps=%g)\n\n", requests, eps)

	fmt.Println("hierarchical heavy hitters at 8% support:")
	for _, p := range hhh.Query(0.08) {
		bits := 32 - p.Level*8
		fmt.Printf("  prefix 0x%08X/%d  level=%d  count~%d (%.1f%%)\n",
			p.Value, bits, p.Level, p.Count, 100*float64(p.Count)/float64(requests))
	}

	fmt.Println("\ncorrelated sums (bytes served to clients with id <= t):")
	total := bytesBelow.Total()
	for _, t := range []float32{1 << 12, 1 << 18, 1 << 22, 1 << 24} {
		s := bytesBelow.Sum(t)
		fmt.Printf("  t=0x%06X00: %.0f bytes (%.1f%% of %.0f)\n", uint32(t), s, 100*s/total, total)
	}
	fmt.Printf("\nbytes at or below the median client id (by traffic weight): %.0f (%.1f%%)\n",
		bytesBelow.SumAtQuantile(0.5), 100*bytesBelow.SumAtQuantile(0.5)/total)
}
