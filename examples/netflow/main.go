// Netflow: sliding-window heavy-hitter detection on a synthetic network
// traffic stream — the high-speed networking use case the paper's
// introduction motivates. A bursty generator injects hot destinations
// (think a flash crowd or a DDoS target) into background traffic; the
// sliding-window frequency estimator surfaces them as they happen and
// forgets them as the window slides past.
package main

import (
	"fmt"

	"gpustream"
	"gpustream/internal/stream"
)

const (
	flows      = 2_000_000 // packets in the replayed trace
	hosts      = 50_000    // distinct destination hosts
	windowSize = 200_000   // "recent traffic" horizon in packets
	eps        = 0.002     // approximation error
	support    = 0.05      // alert threshold: 5% of window traffic
)

func main() {
	// Background traffic with bursts: during a burst nearly every packet
	// hits one destination.
	packets := stream.Bursty(flows, hosts, 30_000, 0.00002, 7)

	eng := gpustream.New(gpustream.BackendGPU)
	detector := eng.NewSlidingFrequency(eps, windowSize)

	fmt.Printf("replaying %d packets over %d hosts; window=%d, alert at %.0f%% of window\n",
		flows, hosts, windowSize, support*100)

	// Replay in chunks, checking for hot destinations periodically, the
	// way a monitoring loop would.
	const chunk = 100_000
	for off := 0; off < len(packets); off += chunk {
		end := off + chunk
		if end > len(packets) {
			end = len(packets)
		}
		detector.ProcessSlice(packets[off:end])

		alerts := detector.Query(support)
		if len(alerts) > 0 {
			fmt.Printf("t=%-9d ALERT:", end)
			for _, a := range alerts {
				fmt.Printf(" host %v (~%d pkts, %.1f%% of window)",
					a.Value, a.Freq, 100*float64(a.Freq)/float64(windowSize))
			}
			fmt.Println()
		} else {
			fmt.Printf("t=%-9d ok (no host above %.0f%% of recent traffic)\n", end, support*100)
		}
	}

	// Variable-size window: zoom into just the last 50K packets.
	fmt.Println("\nzoomed query over the most recent 50000 packets:")
	for _, a := range detector.QueryWindow(support, 50_000) {
		fmt.Printf("  host %v: ~%d pkts\n", a.Value, a.Freq)
	}
}
