// Quickstart: sort a stream on the simulated GPU, then answer
// epsilon-approximate frequency and quantile queries over it.
package main

import (
	"fmt"

	"gpustream"
	"gpustream/internal/stream"
)

func main() {
	// A million Zipf-distributed item ids: a few items dominate.
	data := stream.Zipf(1_000_000, 1.2, 10_000, 42)

	// The engine binds everything to a sorting backend; BackendGPU runs
	// the paper's PBSN sorter on the GPU simulator.
	eng := gpustream.New(gpustream.BackendGPU)

	// 1. Sorting: the primitive everything else is built on.
	sample := append([]float32(nil), data[:100_000]...)
	eng.Sort(sample)
	fmt.Printf("sorted %d values; min=%v max=%v\n", len(sample), sample[0], sample[len(sample)-1])
	if b, ok := eng.LastSortBreakdown(); ok {
		fmt.Printf("modeled GeForce-6800 cost: compute=%v transfer=%v setup=%v\n",
			b.Compute, b.Transfer, b.Setup)
	}

	// 2. Frequency estimation: which items exceed 1% of the stream?
	freq := eng.NewFrequencyEstimator(0.001) // estimates within 0.1% of N
	freq.ProcessSlice(data)
	fmt.Println("heavy hitters (support 1%):")
	for _, it := range freq.Query(0.01) {
		fmt.Printf("  item %v appears >= %d times\n", it.Value, it.Freq)
	}

	// 3. Quantile estimation: the stream's median and tails.
	quant := eng.NewQuantileEstimator(0.001, int64(len(data)))
	quant.ProcessSlice(data)
	for _, phi := range []float64{0.5, 0.9, 0.99} {
		fmt.Printf("phi=%.2f quantile: %v\n", phi, quant.Query(phi))
	}
}
