// DSMS: the data-stream-management-system setting from the paper's
// introduction. Continuous queries are registered once; batches arrive
// faster than the system can process them during a burst, so the executor
// load-sheds ("dropping excess data items") — and the run reports how much
// was shed and whether the answers survived, the trade-off that motivates
// throwing faster (GPU) hardware at stream processing.
package main

import (
	"fmt"

	"gpustream"
	"gpustream/internal/stream"
)

func main() {
	eng := gpustream.New(gpustream.BackendGPU)

	// A system provisioned for 50K elements per tick.
	ex := eng.NewExecutor(50_000)
	ex.Register(gpustream.QuerySpec{
		Kind: gpustream.FrequencyAbove, Eps: 0.002, Param: 0.05, Name: "heavy-hitters",
	})
	ex.Register(gpustream.QuerySpec{
		Kind: gpustream.QuantileAt, Eps: 0.005, Param: 0.99, Name: "p99",
	})
	ex.Register(gpustream.QuerySpec{
		Kind: gpustream.SlidingQuantileAt, Eps: 0.01, Param: 0.5, Window: 100_000, Name: "recent-median",
	})

	r := stream.NewRNG(3)
	fmt.Println("tick   arrivals   shed(total)   heavy-hitters        p99      recent-median")
	for tick := 1; tick <= 8; tick++ {
		// Normal ticks fit the budget; ticks 4-5 are a burst at 4x rate.
		arrivals := 40_000
		if tick == 4 || tick == 5 {
			arrivals = 160_000
		}
		batch := stream.Zipf(arrivals, 1.25, 5_000, r.Uint64())
		ex.Push(batch)

		results := ex.Results()
		hh := results[0].Items
		hhDesc := "none"
		if len(hh) > 0 {
			hhDesc = fmt.Sprintf("%d items, top=%v", len(hh), hh[0].Value)
		}
		st := ex.Stats()
		fmt.Printf("%4d   %8d   %11d   %-18s  %7.1f   %10.1f\n",
			tick, arrivals, st.Shed, hhDesc, results[1].Quantile, results[2].Quantile)
	}

	st := ex.Stats()
	fmt.Printf("\ningested %d elements, shed %d (%.1f%%) during bursts\n",
		st.Ingested, st.Shed, 100*float64(st.Shed)/float64(st.Ingested+st.Shed))
	fmt.Println("heavy hitters survive shedding: the uniform-stride sample preserves frequent items")
}
