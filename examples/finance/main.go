// Finance: streaming latency/price percentiles over sliding windows — the
// finance-logs use case from the paper's introduction. A synthetic
// order-latency stream with a regime change (a slowdown partway through)
// is monitored with sliding-window quantiles: p50/p95/p99 react as the
// window slides over the slowdown, while whole-history quantiles smear it.
package main

import (
	"fmt"
	"math"

	"gpustream"
	"gpustream/internal/stream"
)

const (
	events     = 1_500_000
	windowSize = 250_000
	eps        = 0.001
)

// syntheticLatencies builds a lognormal-ish latency stream (microseconds)
// with a slowdown regime in the middle third.
func syntheticLatencies() []float32 {
	base := stream.Gaussian(events, 4.0, 0.4, 21) // log-latency
	out := make([]float32, events)
	for i, v := range base {
		lat := float32(math.Exp(float64(v))) // ~ e^4 = 55us median
		if i > events/3 && i < 2*events/3 {
			lat *= 3 // slowdown regime
		}
		out[i] = lat
	}
	return out
}

func main() {
	lat := syntheticLatencies()
	eng := gpustream.New(gpustream.BackendGPU)
	sla := eng.NewSlidingQuantile(eps, windowSize)

	fmt.Printf("monitoring %d latency events; window=%d, eps=%g\n", events, windowSize, eps)
	fmt.Println("t          p50(us)   p95(us)   p99(us)")

	const step = 250_000
	for off := 0; off < len(lat); off += step {
		end := off + step
		if end > len(lat) {
			end = len(lat)
		}
		sla.ProcessSlice(lat[off:end])
		fmt.Printf("%-9d  %8.1f  %8.1f  %8.1f\n",
			end, sla.Query(0.50), sla.Query(0.95), sla.Query(0.99))
	}

	// Contrast with whole-history quantiles, which dilute the slowdown.
	hist := eng.NewQuantileEstimator(eps, int64(len(lat)))
	hist.ProcessSlice(lat)
	fmt.Printf("\nwhole-history: p50=%.1f p95=%.1f p99=%.1f (slowdown diluted)\n",
		hist.Query(0.50), hist.Query(0.95), hist.Query(0.99))

	// A tail-risk style probe on the most recent 100K events only.
	fmt.Printf("last-100K p99.5: %.1f us\n", sla.WindowSummary(100_000).Query(0.995))
}
