// Sensornet: the Greenwald-Khanna sensor-network aggregation model the
// paper's quantile algorithm builds on (Section 5.2). A tree of sensor
// nodes each observes local readings; every node summarizes by sorting
// locally (the GPU-accelerated step on gateway-class nodes), parents merge
// children's summaries and prune them to bound the message size, and the
// root answers quantile queries over the whole network within eps — without
// any node ever shipping raw readings up the tree.
package main

import (
	"fmt"

	"gpustream"
	"gpustream/internal/stream"
)

const (
	fanout   = 4
	depth    = 3 // levels below the root -> 4^3 = 64 leaf sensors
	readings = 8192
	eps      = 0.02
)

// buildTree constructs the sensor hierarchy and collects the raw readings
// (kept only to validate accuracy at the end).
func buildTree(level, id int, raw *[]float32) *gpustream.SensorNode {
	n := &gpustream.SensorNode{}
	if level == depth {
		obs := stream.Gaussian(readings, float64(50+id%7*10), 12, uint64(id+1))
		*raw = append(*raw, obs...)
		n.Observations = obs
		return n
	}
	for c := 0; c < fanout; c++ {
		n.Children = append(n.Children, buildTree(level+1, id*fanout+c, raw))
	}
	return n
}

func main() {
	eng := gpustream.New(gpustream.BackendGPU)
	var raw []float32
	root := buildTree(0, 0, &raw)

	s, st := eng.AggregateSensorTree(root, eps)
	fmt.Printf("aggregated %d readings from %d sensors across %d nodes\n",
		st.Observations, 1<<(2*depth), st.Nodes)
	fmt.Printf("communication: %d summary entries total, largest message %d entries\n",
		st.MessageEntries, st.MaxMessage)
	fmt.Printf("(shipping raw readings would have cost %d entries)\n\n", len(raw))

	// Validate against ground truth.
	exact := append([]float32(nil), raw...)
	eng.Sort(exact)
	fmt.Println("phi     network-estimate   exact")
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		est := s.Query(phi)
		truth := exact[int(phi*float64(len(exact)-1))]
		fmt.Printf("%.2f    %16.2f   %6.2f\n", phi, est, truth)
	}
	fmt.Printf("worst normalized rank error vs ground truth: %.5f (eps %.3f)\n",
		s.TrueRankError(exact), eps)
}
