package gpustream

import (
	"bytes"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

func TestBaselineConstructors(t *testing.T) {
	data := stream.Zipf(10000, 1.3, 200, 1)
	mg := NewMisraGries[float32](99)
	ss := NewSpaceSaving[float32](100)
	cm := NewCountMin[float32](0.01, 0.01)
	mg.ProcessSlice(data)
	ss.ProcessSlice(data)
	cm.ProcessSlice(data)
	if mg.Estimate(0) == 0 || ss.Estimate(0) == 0 || cm.Estimate(0) == 0 {
		t.Fatal("baselines missed the Zipf head")
	}
}

func TestStreamingHistogramThroughEngine(t *testing.T) {
	eng := New(BackendGPU)
	h := eng.NewStreamingHistogram(10, 0.01)
	h.ProcessSlice(stream.Uniform(20000, 2))
	buckets := h.Buckets()
	if len(buckets) != 10 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if sel := h.Selectivity(0.5); sel < 0.4 || sel > 0.6 {
		t.Fatalf("Selectivity(0.5) = %v", sel)
	}
}

func TestExternalSortThroughEngine(t *testing.T) {
	eng := New(BackendGPU)
	data := stream.Zipf(30000, 1.1, 3000, 3)
	var buf bytes.Buffer
	st, err := eng.ExternalSort(NewSliceSource(data), &buf, ExternalSortConfig{RunSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if st.InitialRuns < 7 {
		t.Fatalf("runs = %d", st.InitialRuns)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float32(nil), data...)
	cpusort.Quicksort(want)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestTraceHelpersRoundTrip(t *testing.T) {
	data := stream.Uniform(500, 4)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil || len(got) != 500 {
		t.Fatalf("round trip: %v %v", len(got), err)
	}
}
