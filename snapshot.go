package gpustream

import (
	"encoding"
	"fmt"

	"gpustream/internal/frequency"
	"gpustream/internal/frugal"
	"gpustream/internal/quantile"
	"gpustream/internal/window"
	"gpustream/internal/wire"
)

// Snapshot wire format: every concrete snapshot type marshals to a compact,
// versioned, endian-stable binary blob (wire.Version, little-endian
// fixed-width fields) that any process can unmarshal and merge. Together
// with Merge and TreeEps this is the cross-process contract of a
// distributed aggregation tree: ingest workers run at TreeEps(eps, h),
// marshal their snapshots, and each aggregation level unmarshals and merges
// children, keeping the end-to-end answer eps-approximate (DESIGN.md
// section 12). cmd/snapmerge is the file-level fan-in tool built on it.

// ErrNotMergeable is wrapped by Merge when the two snapshots cannot be
// combined: different families, or a snapshot type with no merge rule.
var ErrNotMergeable = fmt.Errorf("gpustream: snapshots not mergeable")

// MarshalSnapshot encodes a snapshot in the versioned binary wire format.
// Every snapshot the unkeyed estimator families produce (and every snapshot
// UnmarshalSnapshot or Merge returns) supports it; the error case exists
// for foreign implementations of the Snapshot interface.
func MarshalSnapshot[T Value](s Snapshot[T]) ([]byte, error) {
	m, ok := s.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("gpustream: snapshot type %T does not support the wire format", s)
	}
	return m.MarshalBinary()
}

// UnmarshalSnapshot decodes a snapshot blob produced by MarshalSnapshot in
// any process, dispatching on the family tag in the header. The value type
// T must match the blob's value-type tag. Corrupt, truncated, or
// version-mismatched input returns an error wrapping the wire package's
// sentinel errors (wire.ErrBadMagic, wire.ErrVersion, wire.ErrValueType,
// wire.ErrFamily, wire.ErrTruncated, wire.ErrCorrupt) — never a panic.
func UnmarshalSnapshot[T Value](data []byte) (Snapshot[T], error) {
	fam, tag, err := wire.ReadHeader(data)
	if err != nil {
		return nil, err
	}
	if want := wire.TagOf[T](); tag != want {
		return nil, fmt.Errorf("gpustream: snapshot carries %v values, want %v: %w", tag, want, wire.ErrValueType)
	}
	// Each arm converts the concrete pointer to the Snapshot interface only
	// on success, so a failed decode returns a true nil interface — not a
	// typed-nil pointer that compares non-nil.
	switch fam {
	case wire.FamilyFrequency:
		return wrapNonNil(frequency.UnmarshalSnapshot[T](data))
	case wire.FamilyQuantile:
		return wrapNonNil(quantile.UnmarshalSnapshot[T](data))
	case wire.FamilyWindowFrequency:
		return wrapNonNil(window.UnmarshalFrequencySnapshot[T](data))
	case wire.FamilyWindowQuantile:
		return wrapNonNil(window.UnmarshalQuantileSnapshot[T](data))
	case wire.FamilyFrugal:
		return wrapNonNil(frugal.UnmarshalSnapshot[T](data))
	case wire.FamilyKeyed:
		// Keyed snapshots answer per-key queries, not the Snapshot[T]
		// surface, and carry a second type parameter the dispatcher cannot
		// infer — they decode through UnmarshalKeyedSnapshot[K, T].
		return nil, fmt.Errorf("gpustream: keyed snapshots decode via UnmarshalKeyedSnapshot, not UnmarshalSnapshot: %w", wire.ErrFamily)
	}
	return nil, fmt.Errorf("gpustream: unknown snapshot family %d: %w", uint8(fam), wire.ErrFamily)
}

// wrapNonNil lifts a concrete (snapshot, error) pair into the Snapshot
// interface, converting the pointer only on success so a failed decode
// returns a true nil interface — never a typed-nil pointer that compares
// non-nil.
func wrapNonNil[T Value, S Snapshot[T]](s S, err error) (Snapshot[T], error) {
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Merge combines two snapshots of the same family taken over disjoint
// substreams — typically in different processes, exchanged through the wire
// format — into one snapshot over their union, using the shard merge rules:
//
//   - quantile: the GK sensor-network rank-combination rule; the merged
//     summary is max(epsA, epsB)-approximate over the combined stream.
//   - frequency: value-aligned addition of estimated counts and undercount
//     bounds; undercounts are additive across disjoint substreams, so the
//     no-false-negative guarantee survives.
//   - sliding windows: the per-process windows merge into one combined
//     window of WA+WB elements with the same rules applied to the window
//     contents.
//   - frugal: per target quantile, the tracker backed by more observations
//     wins (deterministic tie-break); the merged estimate stays inside the
//     input envelope but remains heuristic, like everything frugal.
//
// Merging is error-preserving at any fan-in, so an aggregation tree of
// height h whose ingest workers run at TreeEps(eps, h) answers within eps
// end to end. Mismatched families (or foreign snapshot implementations)
// return an error wrapping ErrNotMergeable. The inputs are not mutated.
func Merge[T Value](a, b Snapshot[T]) (Snapshot[T], error) {
	switch x := a.(type) {
	case *frequency.Snapshot[T]:
		if y, ok := b.(*frequency.Snapshot[T]); ok {
			return frequency.MergeSnapshots(x, y), nil
		}
	case *quantile.Snapshot[T]:
		if y, ok := b.(*quantile.Snapshot[T]); ok {
			return quantile.MergeSnapshots(x, y), nil
		}
	case *window.FrequencySnapshot[T]:
		if y, ok := b.(*window.FrequencySnapshot[T]); ok {
			return window.MergeFrequencySnapshots(x, y), nil
		}
	case *window.QuantileSnapshot[T]:
		if y, ok := b.(*window.QuantileSnapshot[T]); ok {
			return window.MergeQuantileSnapshots(x, y), nil
		}
	case *frugal.Snapshot[T]:
		if y, ok := b.(*frugal.Snapshot[T]); ok {
			// Frugal trackers merge by keeping the better-backed estimate
			// per target; mismatched phi banks fail (ErrMismatchedPhis).
			return wrapNonNil(frugal.MergeSnapshots(x, y))
		}
	}
	return nil, fmt.Errorf("%w: %T and %T", ErrNotMergeable, a, b)
}

// MergeAll folds Merge left to right over one or more snapshots. The merge
// rules are associative in their guarantees (partition-order metamorphic
// tests pin this), so the fold order does not affect correctness.
func MergeAll[T Value](snaps ...Snapshot[T]) (Snapshot[T], error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("gpustream: MergeAll of no snapshots")
	}
	acc := snaps[0]
	for _, s := range snaps[1:] {
		var err error
		if acc, err = Merge(acc, s); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// TreeEps sizes the per-worker error budget for an aggregation tree of
// height h (h = 1 is a lone estimator, h = 2 is workers + a root merge,
// h = 3 adds an intermediate aggregator level): workers run at eps/h so the
// end-to-end answer stays eps-approximate even if every level prunes its
// merged summary with its share of the budget. Merging alone preserves the
// worker bound (the GK rule takes the max, lossy undercounts stay additive),
// so eps/h leaves each level 1/h of the budget as compression headroom —
// the same sizing rule the in-process h=2 shard engine uses with eps/2
// (DESIGN.md sections 7 and 12). It panics on eps outside (0, 1) or h < 1,
// matching the estimator constructors.
func TreeEps(eps float64, h int) float64 {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("gpustream: eps %v out of (0, 1)", eps))
	}
	if h < 1 {
		panic(fmt.Sprintf("gpustream: tree height %d < 1", h))
	}
	return eps / float64(h)
}
