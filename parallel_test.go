package gpustream

import (
	"sort"
	"testing"

	"gpustream/internal/stream"
)

// TestParallelQuantileAPI drives the public sharded-quantile API on every
// backend and checks merged answers against a full sort.
func TestParallelQuantileAPI(t *testing.T) {
	t.Parallel()
	data := stream.Uniform(40_000, 41)
	sorted := append([]float32(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	const eps = 0.02
	for _, backend := range []Backend{BackendCPU, BackendGPU} {
		eng := New(backend)
		est := eng.NewParallelQuantileEstimator(eps, int64(len(data)), 4, WithBatchSize(2048))
		est.ProcessSlice(data)
		est.Close()
		if est.Shards() != 4 {
			t.Fatalf("%v: Shards=%d want 4", backend, est.Shards())
		}
		for _, phi := range []float64{0.1, 0.5, 0.9} {
			v := est.Query(phi)
			r := int(phi * float64(len(sorted)))
			lo := sorted[max(0, r-int(2*eps*float64(len(sorted))))]
			hi := sorted[min(len(sorted)-1, r+int(2*eps*float64(len(sorted))))]
			if v < lo || v > hi {
				t.Errorf("%v phi=%g: %v outside [%v, %v]", backend, phi, v, lo, hi)
			}
		}
		bd := est.ModeledTime(eng.Model(), backend.PipelineBackend())
		if bd.Total() <= 0 {
			t.Errorf("%v: modeled sharded time not positive", backend)
		}
	}
}

// TestParallelFrequencyAPI drives the public sharded-frequency API and
// checks the no-false-negative guarantee end to end.
func TestParallelFrequencyAPI(t *testing.T) {
	t.Parallel()
	data := stream.Zipf(40_000, 1.2, 500, 42)
	exact := make(map[float32]int64)
	for _, v := range data {
		exact[v]++
	}
	const eps, support = 0.005, 0.02
	eng := New(BackendCPU)
	est := eng.NewParallelFrequencyEstimator(eps, 4, WithBatchSize(2048))
	est.ProcessSlice(data)
	est.Close()
	reported := make(map[float32]bool)
	for _, it := range est.Query(support) {
		reported[it.Value] = true
	}
	n := float64(len(data))
	for v, f := range exact {
		if float64(f) >= support*n && !reported[v] {
			t.Errorf("false negative for %v (freq %d)", v, f)
		}
	}
	if top := est.TopK(5); len(top) == 0 || exact[top[0].Value] < exact[top[len(top)-1].Value] {
		t.Errorf("TopK not ordered by frequency: %v", top)
	}
}

// TestParallelSingleShardMatchesSerialAPI pins the K=1 contract at the
// public API level: identical output to the serial estimators.
func TestParallelSingleShardMatchesSerialAPI(t *testing.T) {
	t.Parallel()
	data := stream.UniformInts(30_000, 1<<10, 43)
	const eps = 0.01
	eng := New(BackendCPU)

	sq := eng.NewQuantileEstimator(eps, int64(len(data)))
	sq.ProcessSlice(data)
	pq := eng.NewParallelQuantileEstimator(eps, int64(len(data)), 1)
	pq.ProcessSlice(data)
	pq.Close()
	for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got, want := pq.Query(phi), sq.Query(phi); got != want {
			t.Errorf("quantile phi=%g: sharded %v != serial %v", phi, got, want)
		}
	}

	sf := eng.NewFrequencyEstimator(eps)
	sf.ProcessSlice(data)
	pf := eng.NewParallelFrequencyEstimator(eps, 1)
	pf.ProcessSlice(data)
	pf.Close()
	got, want := pf.Query(0.01), sf.Query(0.01)
	if len(got) != len(want) {
		t.Fatalf("item count: sharded %d != serial %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("item %d: sharded %v != serial %v", i, got[i], want[i])
		}
	}
}
