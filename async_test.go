package gpustream_test

import (
	"reflect"
	"runtime"
	"testing"

	"gpustream"
	"gpustream/internal/frequency"
	"gpustream/internal/gpusort"
	"gpustream/internal/stream"
)

// Staged asynchronous ingestion must be invisible to queries: the async
// executor sorts windows on a stage goroutine overlapping the previous
// window's merge/compress, but windows still enter the sort stage in arrival
// order, are sorted by the same sorter instance one at a time, and merge in
// order — so every answer, summary size, and operation counter must be
// bit-identical to synchronous ingestion of the same stream.

func asyncStream(n int) []float32 {
	return stream.Zipf(n, 1.2, n/50+10, 123)
}

// counterStats projects pipeline.Stats onto its deterministic operation
// counters, dropping the measured wall-clock fields (which legitimately
// differ between sync and async runs).
type counterStats struct {
	Windows, SortedValues, MergeOps, CompressOps int64
}

func counters(s gpustream.Stats) counterStats {
	return counterStats{
		Windows:      s.Windows,
		SortedValues: s.SortedValues,
		MergeOps:     s.MergeOps,
		CompressOps:  s.CompressOps,
	}
}

// pinIdentical fails unless the sync and async answers (and counters) match
// exactly.
func pinIdentical(t *testing.T, name string, sync, async any) {
	t.Helper()
	if !reflect.DeepEqual(sync, async) {
		t.Fatalf("%s: async ingestion diverged from sync:\n  sync:  %v\n  async: %v", name, sync, async)
	}
}

func TestAsyncBitIdenticalFrequency(t *testing.T) {
	const n = 60_000
	data := asyncStream(n)
	run := func(opts ...gpustream.EstimatorOption) any {
		est := gpustream.New(gpustream.BackendGPU).NewFrequencyEstimator(0.002, opts...)
		est.ProcessSlice(data)
		ans := struct {
			Items    []gpustream.Item[float32]
			Est      []int64
			Size     int
			Counters counterStats
		}{Items: est.Query(0.01), Size: est.SummarySize()}
		for _, v := range []float32{0, 1, 5, 17, 1e6} {
			ans.Est = append(ans.Est, est.Estimate(v))
		}
		ans.Counters = counters(est.Stats())
		est.Close()
		return ans
	}
	pinIdentical(t, "frequency", run(), run(gpustream.WithAsyncIngestion()))
}

func TestAsyncBitIdenticalQuantile(t *testing.T) {
	const n = 60_000
	data := asyncStream(n)
	// The sample sorter's SortAsync goes through the generic goroutine
	// adapter rather than the GPU simulator's staged path, so both async
	// executions are pinned.
	for _, backend := range []gpustream.Backend{gpustream.BackendGPU, gpustream.BackendSampleSort} {
		run := func(opts ...gpustream.EstimatorOption) any {
			est := gpustream.New(backend).NewQuantileEstimator(0.005, n, opts...)
			est.ProcessSlice(data)
			ans := struct {
				Qs       []float32
				Entries  int
				Buckets  int
				Counters counterStats
			}{Entries: est.SummaryEntries(), Buckets: est.Buckets()}
			for _, phi := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
				ans.Qs = append(ans.Qs, est.Query(phi))
			}
			ans.Counters = counters(est.Stats())
			est.Close()
			return ans
		}
		pinIdentical(t, "quantile/"+backend.String(), run(), run(gpustream.WithAsyncIngestion()))
	}
}

func TestAsyncBitIdenticalSlidingFrequency(t *testing.T) {
	const n = 60_000
	data := asyncStream(n)
	run := func(opts ...gpustream.EstimatorOption) any {
		est := gpustream.New(gpustream.BackendGPU).NewSlidingFrequency(0.01, 8_000, opts...)
		est.ProcessSlice(data)
		ans := struct {
			Full     []gpustream.WindowItem[float32]
			Sub      []gpustream.WindowItem[float32]
			Est      int64
			Counters counterStats
		}{Full: est.Query(0.02), Sub: est.QueryWindow(0.02, 3_000), Est: est.Estimate(1)}
		ans.Counters = counters(est.Stats())
		est.Close()
		return ans
	}
	pinIdentical(t, "sliding-frequency", run(), run(gpustream.WithAsyncIngestion()))
}

func TestAsyncBitIdenticalSlidingQuantile(t *testing.T) {
	const n = 60_000
	data := asyncStream(n)
	run := func(opts ...gpustream.EstimatorOption) any {
		est := gpustream.New(gpustream.BackendGPU).NewSlidingQuantile(0.01, 8_000, opts...)
		est.ProcessSlice(data)
		ans := struct {
			Qs       []float32
			Counters counterStats
		}{}
		for _, phi := range []float64{0.1, 0.5, 0.9} {
			ans.Qs = append(ans.Qs, est.Query(phi), est.QueryWindow(phi, 3_000))
		}
		ans.Counters = counters(est.Stats())
		est.Close()
		return ans
	}
	pinIdentical(t, "sliding-quantile", run(), run(gpustream.WithAsyncIngestion()))
}

// TestAsyncBitIdenticalParallel pins K-shard async ingestion (K pipeline
// stage pairs running concurrently) to the synchronous sharded answers, for
// both a serial-equivalent K=1 and a genuinely parallel K=4.
func TestAsyncBitIdenticalParallel(t *testing.T) {
	const n = 60_000
	data := asyncStream(n)
	for _, k := range []int{1, 4} {
		run := func(opts ...gpustream.ParallelOption) (any, any) {
			opts = append(opts, gpustream.WithBatchSize(1024))
			eng := gpustream.New(gpustream.BackendGPU)
			fe := eng.NewParallelFrequencyEstimator(0.002, k, opts...)
			qe := eng.NewParallelQuantileEstimator(0.005, n, k, opts...)
			fe.ProcessSlice(data)
			qe.ProcessSlice(data)
			fe.Close()
			qe.Close()
			freq := struct {
				Items    []gpustream.Item[float32]
				Size     int
				Counters counterStats
			}{Items: fe.Query(0.01), Size: fe.SummarySize(), Counters: counters(fe.Stats())}
			quant := struct {
				Qs       []float32
				Entries  int
				Counters counterStats
			}{Entries: qe.SummaryEntries(), Counters: counters(qe.Stats())}
			for _, phi := range []float64{0.25, 0.5, 0.75} {
				quant.Qs = append(quant.Qs, qe.Query(phi))
			}
			return freq, quant
		}
		sf, sq := run()
		af, aq := run(gpustream.WithAsyncShards())
		pinIdentical(t, "parallel-frequency", sf, af)
		pinIdentical(t, "parallel-quantile", sq, aq)
	}
}

// TestAsyncSortStatsIdentical pins the GPU simulator's per-sort counters:
// the async executor hands windows to the same sorter instance in the same
// order, so the simulated draw calls, fragments, and transfers of the last
// window sort must match the synchronous run exactly.
func TestAsyncSortStatsIdentical(t *testing.T) {
	const n = 40_000
	data := asyncStream(n)
	run := func(opts ...frequency.Option) gpusort.SortStats {
		srt := gpusort.NewSorter[float32]()
		est := frequency.NewEstimator[float32](0.002, srt, opts...)
		est.ProcessSlice(data)
		est.Flush()
		st := srt.LastStats()
		est.Close()
		return st
	}
	pinIdentical(t, "sort-stats", run(), run(frequency.WithAsync()))
}

// TestAsyncOverlapReported asserts the staged executor's telemetry surfaces
// through the public Stats: a multi-window async run reports its stage
// depth via MaxInFlight and accrues Overlap (wall clock during which the
// sort and merge stages were busy simultaneously), while a synchronous run
// reports zero for all executor fields. On a single-CPU host the overlap
// assertion is advisory — with one P, accrual needs the scheduler to
// preempt mid-sort — so the deterministic nonzero-overlap pin lives in
// internal/pipeline's TestAsyncOverlapAccrues, which forces concurrency
// with sleeping stages.
func TestAsyncOverlapReported(t *testing.T) {
	const n = 200_000
	data := asyncStream(n)

	sync := gpustream.New(gpustream.BackendGPU).NewFrequencyEstimator(0.01)
	sync.ProcessSlice(data)
	sync.Flush()
	if st := sync.Stats(); st.Overlap != 0 || st.Stall != 0 || st.MaxInFlight != 0 {
		t.Fatalf("sync run reported staged-executor stats: %+v", st)
	}
	sync.Close()

	est := gpustream.New(gpustream.BackendGPU).NewFrequencyEstimator(0.01, gpustream.WithAsyncIngestion())
	est.ProcessSlice(data)
	est.Flush()
	st := est.Stats()
	est.Close()
	if st.Windows < 2 {
		t.Fatalf("want a multi-window run, got %d windows", st.Windows)
	}
	if st.MaxInFlight < 1 {
		t.Fatalf("async run reported MaxInFlight=%d, want >= 1", st.MaxInFlight)
	}
	if st.Overlap <= 0 {
		if runtime.GOMAXPROCS(0) > 1 {
			t.Fatalf("async run reported no overlap with %d Ps: %+v", runtime.GOMAXPROCS(0), st)
		}
		t.Logf("no overlap accrued on a single-P host (preemption-dependent): %+v", st)
	}
}
