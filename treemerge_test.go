package gpustream

import (
	"fmt"
	"math"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

// lcg is a tiny deterministic generator for partitioning and shuffling —
// explicit so the property tests replay identically everywhere.
type lcg struct{ x uint64 }

func (l *lcg) next() uint64 {
	l.x = l.x*6364136223846793005 + 1442695040888963407
	return l.x >> 33
}

// partitionStream deals every element of data into one of p parts, chosen
// pseudo-randomly per element: the partitioning a load balancer would give P
// ingest processes.
func partitionStream[T Value](data []T, p int, seed uint64) [][]T {
	parts := make([][]T, p)
	rng := lcg{x: seed*0x9E3779B97F4A7C15 + 1}
	for _, v := range data {
		i := int(rng.next() % uint64(p))
		parts[i] = append(parts[i], v)
	}
	return parts
}

func shuffleBlobs(blobs [][]byte, rng *lcg) {
	for i := len(blobs) - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		blobs[i], blobs[j] = blobs[j], blobs[i]
	}
}

// mergeBlobs unmarshals a set of snapshot blobs and folds them into one
// snapshot — one aggregation node's work.
func mergeBlobs[T Value](t *testing.T, blobs [][]byte) Snapshot[T] {
	t.Helper()
	snaps := make([]Snapshot[T], len(blobs))
	for i, b := range blobs {
		s, err := UnmarshalSnapshot[T](b)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		snaps[i] = s
	}
	merged, err := MergeAll(snaps...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return merged
}

// treeMerge reassembles the root snapshot from marshaled leaf blobs through
// an aggregation tree of height h, re-marshaling at every intermediate level
// — exactly what distinct processes exchanging snapshot files do. Merge
// orders are shuffled by seed: the merge rules are order-independent in
// their guarantees, so any order must land within the same budget
// (metamorphic over partitioning).
func treeMerge[T Value](t *testing.T, blobs [][]byte, h int, seed uint64) Snapshot[T] {
	t.Helper()
	rng := lcg{x: seed ^ 0xD1B54A32D192ED03}
	level := append([][]byte(nil), blobs...)
	for lvl := h; lvl > 2 && len(level) > 1; lvl-- {
		shuffleBlobs(level, &rng)
		const fan = 4
		var next [][]byte
		for i := 0; i < len(level); i += fan {
			end := min(i+fan, len(level))
			next = append(next, mustMarshal(t, mergeBlobs[T](t, level[i:end])))
		}
		level = next
	}
	shuffleBlobs(level, &rng)
	return mergeBlobs[T](t, level)
}

// TestTreeMergeEquivalence is the cross-process aggregation property: P
// ingest processes run at TreeEps(eps, h), marshal their snapshots, and an
// aggregation tree of height h merges the blobs. The root's answers must
// satisfy the end-to-end eps bound a serial estimator promises — for every
// tree shape, every process count, and every random partitioning.
func TestTreeMergeEquivalence(t *testing.T) {
	const (
		n   = 24000
		eps = 0.05
	)
	data := stream.ZipfOf[float32](n, 1.2, 400, 11)
	ref := append([]float32(nil), data...)
	cpusort.Quicksort(ref)
	exact := map[float32]int64{}
	for _, v := range data {
		exact[v]++
	}

	for _, h := range []int{2, 3} {
		for _, p := range []int{4, 16} {
			for seed := uint64(1); seed <= 2; seed++ {
				t.Run(fmt.Sprintf("h=%d/P=%d/seed=%d", h, p, seed), func(t *testing.T) {
					parts := partitionStream(data, p, seed)
					checkQuantileTree(t, ref, parts, eps, h, seed)
					checkFrequencyTree(t, exact, int64(n), parts, eps, h, seed)
				})
			}
		}
	}
}

func checkQuantileTree(t *testing.T, ref []float32, parts [][]float32, eps float64, h int, seed uint64) {
	t.Helper()
	epsW := TreeEps(eps, h)
	blobs := make([][]byte, 0, len(parts))
	for _, part := range parts {
		eng := New(BackendCPU)
		est := eng.NewQuantileEstimator(epsW, int64(len(part))+1)
		if err := est.ProcessSlice(part); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		blobs = append(blobs, mustMarshal(t, est.Snapshot()))
	}
	root := treeMerge[float32](t, blobs, h, seed)

	n := int64(len(ref))
	if root.Count() != n {
		t.Fatalf("merged Count = %d, want %d", root.Count(), n)
	}
	slack := int64(math.Ceil(eps*float64(n))) + 1
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v, ok := root.Quantile(phi)
		if !ok {
			t.Fatalf("Quantile(%g) unanswered", phi)
		}
		r := int(math.Ceil(phi * float64(n)))
		if r < 1 {
			r = 1
		}
		if re := int64(rankError(ref, v, r)); re > slack {
			t.Errorf("phi=%.2f: tree answer %v has rank error %d > eps*n = %d", phi, v, re, slack)
		}
	}
}

func checkFrequencyTree(t *testing.T, exact map[float32]int64, n int64, parts [][]float32, eps float64, h int, seed uint64) {
	t.Helper()
	epsW := TreeEps(eps, h)
	blobs := make([][]byte, 0, len(parts))
	for _, part := range parts {
		eng := New(BackendCPU)
		est := eng.NewFrequencyEstimator(epsW)
		if err := est.ProcessSlice(part); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		blobs = append(blobs, mustMarshal(t, est.Snapshot()))
	}
	root := treeMerge[float32](t, blobs, h, seed)

	if root.Count() != n {
		t.Fatalf("merged Count = %d, want %d", root.Count(), n)
	}
	slack := int64(math.Ceil(eps * float64(n)))
	for v, want := range exact {
		got, ok := root.Frequency(v)
		if !ok {
			t.Fatalf("Frequency(%v) unanswered", v)
		}
		if got > want {
			t.Errorf("value %v: merged estimate %d overcounts true %d", v, got, want)
		}
		if want-got > slack {
			t.Errorf("value %v: merged estimate %d undercounts true %d by more than eps*n = %d", v, got, want, slack)
		}
	}
	// No false negatives: every value at or above support must be reported.
	const support = 0.02
	items, ok := root.HeavyHitters(support)
	if !ok {
		t.Fatal("HeavyHitters unanswered")
	}
	reported := map[float32]bool{}
	for _, it := range items {
		reported[it.Value] = true
	}
	for v, c := range exact {
		if float64(c) >= support*float64(n) && !reported[v] {
			t.Errorf("value %v (true count %d) above support %g but missing from merged heavy hitters", v, c, support)
		}
	}
}

// TestTreeMergeSlidingWindows extends the aggregation property to the
// sliding-window families: P processes each watch a window over their whole
// partition, and the merged root answers for the union window of
// W1+...+WP elements within the end-to-end eps budget.
func TestTreeMergeSlidingWindows(t *testing.T) {
	const (
		n   = 12000
		p   = 4
		eps = 0.05
	)
	epsW := TreeEps(eps, 2)
	data := stream.ZipfOf[float32](n, 1.2, 300, 23)
	ref := append([]float32(nil), data...)
	cpusort.Quicksort(ref)
	exact := map[float32]int64{}
	for _, v := range data {
		exact[v]++
	}
	parts := partitionStream(data, p, 5)

	var freqBlobs, quantBlobs [][]byte
	for _, part := range parts {
		eng := New(BackendCPU)
		sf := eng.NewSlidingFrequency(epsW, len(part))
		sq := eng.NewSlidingQuantile(epsW, len(part))
		if err := sf.ProcessSlice(part); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		if err := sq.ProcessSlice(part); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		freqBlobs = append(freqBlobs, mustMarshal(t, sf.Snapshot()))
		quantBlobs = append(quantBlobs, mustMarshal(t, sq.Snapshot()))
	}

	slack := int64(math.Ceil(eps * float64(n)))

	froot := mergeBlobs[float32](t, freqBlobs)
	if froot.Count() != n {
		t.Fatalf("merged sliding-frequency Count = %d, want %d", froot.Count(), n)
	}
	for v, want := range exact {
		got, ok := froot.Frequency(v)
		if !ok {
			t.Fatalf("Frequency(%v) unanswered", v)
		}
		if got > want || want-got > slack {
			t.Errorf("value %v: merged window estimate %d vs true %d (slack %d)", v, got, want, slack)
		}
	}

	qroot := mergeBlobs[float32](t, quantBlobs)
	if qroot.Count() != n {
		t.Fatalf("merged sliding-quantile Count = %d, want %d", qroot.Count(), n)
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		v, ok := qroot.Quantile(phi)
		if !ok {
			t.Fatalf("Quantile(%g) unanswered", phi)
		}
		r := int(math.Ceil(phi * float64(n)))
		if r < 1 {
			r = 1
		}
		if re := int64(rankError(ref, v, r)); re > slack+1 {
			t.Errorf("phi=%.2f: merged window answer %v has rank error %d > %d", phi, v, re, slack+1)
		}
	}
}
