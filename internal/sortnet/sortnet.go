// Package sortnet builds comparator schedules for the sorting networks the
// paper uses: the periodic balanced sorting network (PBSN, Dowd et al.),
// which the paper's GPU algorithm implements with rasterization, and the
// bitonic network (Batcher), which the prior GPU sorters it compares against
// implement as fragment programs.
//
// The schedules are pure data — stages of (i, j) comparators — so the same
// network can be executed on the CPU (for reference and testing) or mapped
// onto GPU quads.
package sortnet

import (
	"fmt"

	"gpustream/internal/sorter"
)

// Comparator orders the pair (I, J): after it fires, position I holds the
// smaller value and position J the larger.
type Comparator struct{ I, J int }

// Stage is a set of comparators that fire simultaneously. Within a valid
// stage no position appears twice.
type Stage []Comparator

// Network is a full sorting network over N inputs.
type Network struct {
	N      int
	Stages []Stage
}

// Comparators reports the total comparator count across all stages.
func (n *Network) Comparators() int {
	total := 0
	for _, s := range n.Stages {
		total += len(s)
	}
	return total
}

// Apply executes the network on data in place. The schedule is pure data, so
// one Network drives any ordered element type. It panics if len(data) != n.N.
func Apply[T sorter.Value](n *Network, data []T) {
	if len(data) != n.N {
		panic(fmt.Sprintf("sortnet: Apply on %d values with a %d-input network", len(data), n.N))
	}
	for _, stage := range n.Stages {
		for _, c := range stage {
			if data[c.I] > data[c.J] {
				data[c.I], data[c.J] = data[c.J], data[c.I]
			}
		}
	}
}

// applyBits executes the network on a 0/1 vector, used by the 0-1 principle
// verifier.
func (n *Network) applyBits(bits []uint8) {
	for _, stage := range n.Stages {
		for _, c := range stage {
			if bits[c.I] > bits[c.J] {
				bits[c.I], bits[c.J] = bits[c.J], bits[c.I]
			}
		}
	}
}

// Validate checks structural sanity: indices in range, I != J, and no
// position touched twice within a stage (so the stage is truly parallel).
func (n *Network) Validate() error {
	for si, stage := range n.Stages {
		seen := make(map[int]bool, 2*len(stage))
		for _, c := range stage {
			if c.I < 0 || c.I >= n.N || c.J < 0 || c.J >= n.N {
				return fmt.Errorf("sortnet: stage %d comparator %v out of range [0,%d)", si, c, n.N)
			}
			if c.I == c.J {
				return fmt.Errorf("sortnet: stage %d has degenerate comparator %v", si, c)
			}
			if seen[c.I] || seen[c.J] {
				return fmt.Errorf("sortnet: stage %d touches a position twice (%v)", si, c)
			}
			seen[c.I], seen[c.J] = true, true
		}
	}
	return nil
}

// SortsAllZeroOne exhaustively verifies the network against the 0-1
// principle: a comparator network sorts every input iff it sorts every
// binary input. Exponential in N — use only for small networks.
func (n *Network) SortsAllZeroOne() bool {
	if n.N > 24 {
		panic("sortnet: SortsAllZeroOne is exponential; N too large")
	}
	bits := make([]uint8, n.N)
	for mask := 0; mask < 1<<n.N; mask++ {
		for i := range bits {
			bits[i] = uint8(mask >> i & 1)
		}
		n.applyBits(bits)
		for i := 1; i < n.N; i++ {
			if bits[i-1] > bits[i] {
				return false
			}
		}
	}
	return true
}

// log2 returns ceil(log2(n)) for n >= 1.
func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// PBSN constructs the periodic balanced sorting network over n inputs
// (n a power of two). The network runs log n identical periods; each period
// has log n stages with block sizes n, n/2, ..., 2. A stage with block size
// B partitions the input into contiguous blocks and, within each block,
// compares position i against its mirror B-1-i, keeping the minimum in the
// lower half (paper Section 4.4).
func PBSN(n int) *Network {
	if !isPow2(n) {
		panic(fmt.Sprintf("sortnet: PBSN requires a power-of-two size, got %d", n))
	}
	net := &Network{N: n}
	L := log2(n)
	for period := 0; period < L; period++ {
		for b := L; b >= 1; b-- {
			B := 1 << b
			stage := make(Stage, 0, n/2)
			for block := 0; block < n; block += B {
				for i := 0; i < B/2; i++ {
					stage = append(stage, Comparator{block + i, block + B - 1 - i})
				}
			}
			net.Stages = append(net.Stages, stage)
		}
	}
	return net
}

// PBSNStep returns the comparator stage for one step of PBSN with the given
// block size over n inputs, the unit of work that maps to a set of quads on
// the GPU.
func PBSNStep(n, blockSize int) Stage {
	if !isPow2(n) || !isPow2(blockSize) || blockSize > n || blockSize < 2 {
		panic(fmt.Sprintf("sortnet: invalid PBSN step n=%d block=%d", n, blockSize))
	}
	stage := make(Stage, 0, n/2)
	for block := 0; block < n; block += blockSize {
		for i := 0; i < blockSize/2; i++ {
			stage = append(stage, Comparator{block + i, block + blockSize - 1 - i})
		}
	}
	return stage
}

// Bitonic constructs Batcher's bitonic sorting network over n inputs
// (n a power of two): log n phases; phase k merges bitonic runs of length
// 2^k with stages of XOR-partner comparators. This is the network the prior
// GPU sorters the paper benchmarks against implement.
func Bitonic(n int) *Network {
	if !isPow2(n) {
		panic(fmt.Sprintf("sortnet: Bitonic requires a power-of-two size, got %d", n))
	}
	net := &Network{N: n}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			stage := make(Stage, 0, n/2)
			for i := 0; i < n; i++ {
				partner := i ^ j
				if partner <= i {
					continue
				}
				// Ascending if the k-block of i has bit clear.
				if i&k == 0 {
					stage = append(stage, Comparator{i, partner})
				} else {
					stage = append(stage, Comparator{partner, i})
				}
			}
			net.Stages = append(net.Stages, stage)
		}
	}
	return net
}

// PadPow2 pads data up to the next power of two with pad (typically the
// type's maximum so padding sorts to the end) and returns the padded slice.
func PadPow2[T sorter.Value](data []T, pad T) []T {
	n := len(data)
	if isPow2(n) {
		return data
	}
	m := 1
	for m < n {
		m <<= 1
	}
	out := make([]T, m)
	copy(out, data)
	for i := n; i < m; i++ {
		out[i] = pad
	}
	return out
}

// OddEvenMerge constructs Batcher's odd-even merge sorting network over n
// inputs (n a power of two). It uses fewer comparators than both PBSN and
// bitonic — the classic comparator-count optimum among practical networks —
// but its irregular stage structure maps poorly to full-quad rasterization,
// which is why the paper builds on PBSN instead; the ablation benches
// quantify that trade.
func OddEvenMerge(n int) *Network {
	if !isPow2(n) {
		panic(fmt.Sprintf("sortnet: OddEvenMerge requires a power-of-two size, got %d", n))
	}
	net := &Network{N: n}
	// Iterative Batcher construction: p is the sorted-block size being
	// merged, k the comparison distance within the merge.
	for p := 1; p < n; p <<= 1 {
		for k := p; k >= 1; k >>= 1 {
			stage := Stage{}
			for j := k % p; j <= n-1-k; j += 2 * k {
				for i := 0; i <= min(k-1, n-j-k-1); i++ {
					if (i+j)/(2*p) == (i+j+k)/(2*p) {
						stage = append(stage, Comparator{i + j, i + j + k})
					}
				}
			}
			net.Stages = append(net.Stages, stage)
		}
	}
	return net
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
