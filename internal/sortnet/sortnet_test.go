package sortnet

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPBSNZeroOnePrinciple(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		net := PBSN(n)
		if err := net.Validate(); err != nil {
			t.Fatalf("PBSN(%d): %v", n, err)
		}
		if !net.SortsAllZeroOne() {
			t.Fatalf("PBSN(%d) fails the 0-1 principle", n)
		}
	}
}

func TestBitonicZeroOnePrinciple(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		net := Bitonic(n)
		if err := net.Validate(); err != nil {
			t.Fatalf("Bitonic(%d): %v", n, err)
		}
		if !net.SortsAllZeroOne() {
			t.Fatalf("Bitonic(%d) fails the 0-1 principle", n)
		}
	}
}

func TestPBSNStageCounts(t *testing.T) {
	for _, n := range []int{2, 8, 64, 256} {
		net := PBSN(n)
		L := log2(n)
		if got, want := len(net.Stages), L*L; got != want {
			t.Fatalf("PBSN(%d) stages = %d, want log^2 n = %d", n, got, want)
		}
		if got, want := net.Comparators(), L*L*n/2; got != want {
			t.Fatalf("PBSN(%d) comparators = %d, want %d", n, got, want)
		}
	}
}

func TestBitonicStageCounts(t *testing.T) {
	for _, n := range []int{2, 8, 64, 256} {
		net := Bitonic(n)
		L := log2(n)
		if got, want := len(net.Stages), L*(L+1)/2; got != want {
			t.Fatalf("Bitonic(%d) stages = %d, want %d", n, got, want)
		}
	}
}

func TestNetworksSortRandomInputs(t *testing.T) {
	builders := map[string]func(int) *Network{"pbsn": PBSN, "bitonic": Bitonic}
	for name, build := range builders {
		for _, n := range []int{32, 128, 1024} {
			net := build(n)
			prop := func(seed int64) bool {
				data := make([]float32, n)
				s := uint64(seed) | 1
				for i := range data {
					s ^= s << 13
					s ^= s >> 7
					s ^= s << 17
					data[i] = float32(int32(s))
				}
				Apply(net, data)
				return sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] })
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatalf("%s(%d): %v", name, n, err)
			}
		}
	}
}

func TestNetworksSortDuplicatesAndExtremes(t *testing.T) {
	data := []float32{3, 3, 1, float32(math.Inf(1)), -2, 3, float32(math.Inf(-1)), 0}
	for _, build := range []func(int) *Network{PBSN, Bitonic} {
		d := append([]float32(nil), data...)
		Apply(build(len(d)), d)
		if !sort.SliceIsSorted(d, func(i, j int) bool { return d[i] < d[j] }) {
			t.Fatalf("network failed on duplicates/extremes: %v", d)
		}
	}
}

func TestPBSNStepMatchesFullNetwork(t *testing.T) {
	n := 16
	net := PBSN(n)
	// The first log n stages of the network must equal the per-step
	// construction with block sizes n, n/2, ..., 2.
	idx := 0
	for b := n; b >= 2; b /= 2 {
		step := PBSNStep(n, b)
		full := net.Stages[idx]
		if len(step) != len(full) {
			t.Fatalf("block %d: step size %d != stage size %d", b, len(step), len(full))
		}
		for i := range step {
			if step[i] != full[i] {
				t.Fatalf("block %d comparator %d: %v != %v", b, i, step[i], full[i])
			}
		}
		idx++
	}
}

func TestPBSNStepPairsMirrors(t *testing.T) {
	stage := PBSNStep(8, 4)
	want := Stage{{0, 3}, {1, 2}, {4, 7}, {5, 6}}
	if len(stage) != len(want) {
		t.Fatalf("stage = %v", stage)
	}
	for i := range want {
		if stage[i] != want[i] {
			t.Fatalf("stage = %v, want %v", stage, want)
		}
	}
}

func TestApplyPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Apply(PBSN(8), make([]float32, 7))
}

func TestBuildersPanicOnNonPow2(t *testing.T) {
	for _, fn := range []func(){
		func() { PBSN(6) },
		func() { Bitonic(12) },
		func() { PBSNStep(8, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic for non-power-of-two size")
				}
			}()
			fn()
		}()
	}
}

func TestValidateCatchesBadNetworks(t *testing.T) {
	bad := []*Network{
		{N: 4, Stages: []Stage{{{0, 4}}}},         // out of range
		{N: 4, Stages: []Stage{{{2, 2}}}},         // degenerate
		{N: 4, Stages: []Stage{{{0, 1}, {1, 2}}}}, // position reused in stage
	}
	for i, n := range bad {
		if n.Validate() == nil {
			t.Fatalf("bad network %d validated", i)
		}
	}
}

func TestPadPow2(t *testing.T) {
	inf := float32(math.Inf(1))
	out := PadPow2([]float32{1, 2, 3}, inf)
	if len(out) != 4 || out[3] != inf {
		t.Fatalf("PadPow2 = %v", out)
	}
	same := []float32{1, 2, 3, 4}
	if got := PadPow2(same, inf); &got[0] != &same[0] {
		t.Fatal("PadPow2 copied an already power-of-two slice")
	}
}

func TestOddEvenMergeZeroOnePrinciple(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		net := OddEvenMerge(n)
		if err := net.Validate(); err != nil {
			t.Fatalf("OddEvenMerge(%d): %v", n, err)
		}
		if !net.SortsAllZeroOne() {
			t.Fatalf("OddEvenMerge(%d) fails the 0-1 principle", n)
		}
	}
}

func TestOddEvenMergeSortsRandom(t *testing.T) {
	for _, n := range []int{32, 256, 1024} {
		net := OddEvenMerge(n)
		data := make([]float32, n)
		s := uint64(n) | 1
		for i := range data {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			data[i] = float32(int32(s))
		}
		Apply(net, data)
		if !sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] }) {
			t.Fatalf("OddEvenMerge(%d) failed to sort", n)
		}
	}
}

func TestOddEvenFewerComparatorsThanPBSN(t *testing.T) {
	for _, n := range []int{64, 1024} {
		oe := OddEvenMerge(n).Comparators()
		pb := PBSN(n).Comparators()
		bi := Bitonic(n).Comparators()
		if oe >= bi || bi >= pb {
			t.Fatalf("n=%d: comparator ordering violated: oddeven=%d bitonic=%d pbsn=%d", n, oe, bi, pb)
		}
	}
}

func TestOddEvenPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	OddEvenMerge(6)
}
