package cpusort

import (
	"fmt"
	"testing"

	"gpustream/internal/stream"
)

func benchSort(b *testing.B, fn func([]float32)) {
	for _, n := range []int{1 << 12, 1 << 18} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			data := stream.Uniform(n, uint64(n))
			buf := make([]float32, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, data)
				fn(buf)
			}
		})
	}
}

func BenchmarkQuicksort(b *testing.B) { benchSort(b, Quicksort) }
func BenchmarkParallelQuicksort(b *testing.B) {
	benchSort(b, func(d []float32) { ParallelQuicksort(d, 2) })
}
func BenchmarkHeapsort(b *testing.B)  { benchSort(b, Heapsort) }
func BenchmarkRadixSort(b *testing.B) { benchSort(b, RadixSort) }
