// Package cpusort implements the CPU sorting baselines the paper benchmarks
// against: a classic qsort-style quicksort (the "MSVC" baseline) and a
// multi-threaded quicksort standing in for the Intel compiler's
// hyper-threaded implementation. A heapsort fallback bounds the worst case
// (introsort-style), and k-way merging supports the GPU sorter's CPU-side
// combine of the four channel-sorted runs. Every routine is generic over the
// stack's ordered value types; comparison counts and recursion structure are
// identical across instantiations.
package cpusort

import (
	"runtime"
	"sync"

	"gpustream/internal/sorter"
)

// insertionCutoff is the partition size below which quicksort switches to
// insertion sort; small partitions are cheaper to finish without recursion.
const insertionCutoff = 24

// Quicksort sorts data ascending in place using median-of-three pivoting
// with an insertion-sort cutoff and a depth-bounded heapsort fallback, the
// structure of a production qsort implementation.
func Quicksort[T sorter.Value](data []T) {
	quicksort(data, 2*log2ceil(len(data)))
}

func quicksort[T sorter.Value](data []T, depth int) {
	for len(data) > insertionCutoff {
		if depth == 0 {
			Heapsort(data)
			return
		}
		depth--
		p := partition(data)
		// Recurse on the smaller side, loop on the larger: O(log n) stack.
		if p < len(data)-p-1 {
			quicksort(data[:p], depth)
			data = data[p+1:]
		} else {
			quicksort(data[p+1:], depth)
			data = data[:p]
		}
	}
	InsertionSort(data)
}

// partition picks a median-of-three pivot, partitions data around it, and
// returns the pivot's final index.
func partition[T sorter.Value](data []T) int {
	n := len(data)
	mid := n / 2
	// Order data[0], data[mid], data[n-1]; the median ends up at data[mid].
	if data[mid] < data[0] {
		data[mid], data[0] = data[0], data[mid]
	}
	if data[n-1] < data[mid] {
		data[n-1], data[mid] = data[mid], data[n-1]
		if data[mid] < data[0] {
			data[mid], data[0] = data[0], data[mid]
		}
	}
	// Move the pivot out of the way.
	data[mid], data[n-2] = data[n-2], data[mid]
	pivot := data[n-2]
	i, j := 0, n-2
	for {
		for i++; data[i] < pivot; i++ {
		}
		for j--; data[j] > pivot; j-- {
		}
		if i >= j {
			break
		}
		data[i], data[j] = data[j], data[i]
	}
	data[i], data[n-2] = data[n-2], data[i]
	return i
}

// InsertionSort sorts data ascending in place; efficient for short or
// nearly-sorted inputs.
func InsertionSort[T sorter.Value](data []T) {
	for i := 1; i < len(data); i++ {
		v := data[i]
		j := i - 1
		for j >= 0 && data[j] > v {
			data[j+1] = data[j]
			j--
		}
		data[j+1] = v
	}
}

// Heapsort sorts data ascending in place. It is the depth-bound fallback for
// Quicksort and is also exposed for direct use.
func Heapsort[T sorter.Value](data []T) {
	n := len(data)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(data, i, n)
	}
	for end := n - 1; end > 0; end-- {
		data[0], data[end] = data[end], data[0]
		siftDown(data, 0, end)
	}
}

func siftDown[T sorter.Value](data []T, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && data[child+1] > data[child] {
			child++
		}
		if data[root] >= data[child] {
			return
		}
		data[root], data[child] = data[child], data[root]
		root = child
	}
}

// ParallelQuicksort sorts data ascending in place, splitting recursion
// across up to workers goroutines. With workers=2 it stands in for the
// paper's Intel-compiled hyper-threaded quicksort; workers<=1 degrades to
// the serial Quicksort.
func ParallelQuicksort[T sorter.Value](data []T, workers int) {
	if workers <= 1 || len(data) <= insertionCutoff {
		Quicksort(data)
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers-1)
	var rec func(d []T, depth int)
	rec = func(d []T, depth int) {
		for len(d) > insertionCutoff {
			if depth == 0 {
				Heapsort(d)
				return
			}
			depth--
			p := partition(d)
			left, right := d[:p], d[p+1:]
			if len(left) > len(right) {
				left, right = right, left
			}
			// Offload the smaller side if a worker slot is free and the
			// piece is big enough to amortize the goroutine.
			if len(left) > 4096 {
				select {
				case sem <- struct{}{}:
					wg.Add(1)
					go func(d []T, depth int) {
						defer wg.Done()
						rec(d, depth)
						<-sem
					}(left, depth)
				default:
					rec(left, depth)
				}
			} else {
				rec(left, depth)
			}
			d = right
		}
		InsertionSort(d)
	}
	rec(data, 2*log2ceil(len(data)))
	wg.Wait()
}

// IsSorted reports whether data is in ascending order.
func IsSorted[T sorter.Value](data []T) bool {
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			return false
		}
	}
	return true
}

func log2ceil(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// DefaultWorkers reports the worker count used by the parallel sorter when
// the caller does not specify one: 2, matching a hyper-threaded Pentium IV,
// capped at the machine's parallelism.
func DefaultWorkers() int {
	w := 2
	if p := runtime.GOMAXPROCS(0); p < w {
		w = p
	}
	return w
}
