package cpusort

import (
	"math"

	"gpustream/internal/sorter"
)

// RadixSort sorts float32 values ascending with a 4-pass LSD byte radix
// sort over order-preserving key transforms. It is the non-comparison CPU
// baseline from the database sorting literature the paper's related work
// cites: O(n) passes, but each pass streams the whole array through memory,
// so its cache behaviour differs sharply from quicksort's.
func RadixSort(data []float32) {
	n := len(data)
	if n < 2 {
		return
	}
	// Order-preserving bijection float32 -> uint32: flip all bits of
	// negatives, flip only the sign bit of non-negatives.
	keys := make([]uint32, n)
	for i, v := range data {
		b := math.Float32bits(v)
		if b&0x80000000 != 0 {
			b = ^b
		} else {
			b |= 0x80000000
		}
		keys[i] = b
	}
	buf := make([]uint32, n)
	var counts [256]int
	for shift := uint(0); shift < 32; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range keys {
			counts[(k>>shift)&0xFF]++
		}
		// Skip passes where every key shares the byte.
		if counts[keys[0]>>shift&0xFF] == n {
			continue
		}
		pos := 0
		for i := 0; i < 256; i++ {
			c := counts[i]
			counts[i] = pos
			pos += c
		}
		for _, k := range keys {
			b := (k >> shift) & 0xFF
			buf[counts[b]] = k
			counts[b]++
		}
		keys, buf = buf, keys
	}
	for i, k := range keys {
		if k&0x80000000 != 0 {
			k &^= 0x80000000
		} else {
			k = ^k
		}
		data[i] = math.Float32frombits(k)
	}
}

// RadixSorter exposes RadixSort behind the sorter.Sorter interface.
type RadixSorter struct{}

// Sort implements sorter.Sorter.
func (RadixSorter) Sort(data []float32) { RadixSort(data) }

// Name implements sorter.Sorter.
func (RadixSorter) Name() string { return "cpu-radix" }

var _ sorter.Sorter = RadixSorter{}
