package cpusort

import (
	"gpustream/internal/sorter"
)

// RadixSort sorts values ascending with an LSD byte radix sort over the
// order-preserving key transform of sorter.OrderedKey (bit flips for floats,
// sign-bit flip for signed integers, identity for unsigned). It is the
// non-comparison CPU baseline from the database sorting literature the
// paper's related work cites: O(n) passes, but each pass streams the whole
// array through memory, so its cache behaviour differs sharply from
// quicksort's. 32-bit types take 4 passes, 64-bit types 8.
func RadixSort[T sorter.Value](data []T) {
	n := len(data)
	if n < 2 {
		return
	}
	bits := uint(sorter.KeyBits[T]())
	keys := make([]uint64, n)
	for i, v := range data {
		keys[i] = sorter.OrderedKey(v)
	}
	buf := make([]uint64, n)
	var counts [256]int
	for shift := uint(0); shift < bits; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, k := range keys {
			counts[(k>>shift)&0xFF]++
		}
		// Skip passes where every key shares the byte.
		if counts[keys[0]>>shift&0xFF] == n {
			continue
		}
		pos := 0
		for i := 0; i < 256; i++ {
			c := counts[i]
			counts[i] = pos
			pos += c
		}
		for _, k := range keys {
			b := (k >> shift) & 0xFF
			buf[counts[b]] = k
			counts[b]++
		}
		keys, buf = buf, keys
	}
	for i, k := range keys {
		data[i] = sorter.FromOrderedKey[T](k)
	}
}

// RadixSorter exposes RadixSort behind the sorter.Sorter interface.
type RadixSorter[T sorter.Value] struct{}

// Sort implements sorter.Sorter.
func (RadixSorter[T]) Sort(data []T) { RadixSort(data) }

// Name implements sorter.Sorter.
func (RadixSorter[T]) Name() string { return "cpu-radix" }

var _ sorter.Sorter[float32] = RadixSorter[float32]{}
