package cpusort

import "gpustream/internal/sorter"

// QuicksortSorter is the serial quicksort baseline ("MSVC qsort" analog in
// the paper's Figure 3).
type QuicksortSorter struct{}

// Sort implements sorter.Sorter.
func (QuicksortSorter) Sort(data []float32) { Quicksort(data) }

// Name implements sorter.Sorter.
func (QuicksortSorter) Name() string { return "cpu-quicksort" }

// ParallelSorter is the multi-threaded quicksort baseline (the "Intel
// compiler with Hyper-Threading" analog in the paper's Figure 3).
type ParallelSorter struct {
	// Workers is the goroutine budget; 0 means DefaultWorkers().
	Workers int
}

// Sort implements sorter.Sorter.
func (s ParallelSorter) Sort(data []float32) {
	w := s.Workers
	if w == 0 {
		w = DefaultWorkers()
	}
	ParallelQuicksort(data, w)
}

// Name implements sorter.Sorter.
func (s ParallelSorter) Name() string { return "cpu-quicksort-ht" }

var (
	_ sorter.Sorter = QuicksortSorter{}
	_ sorter.Sorter = ParallelSorter{}
)
