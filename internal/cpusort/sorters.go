package cpusort

import "gpustream/internal/sorter"

// QuicksortSorter is the serial quicksort baseline ("MSVC qsort" analog in
// the paper's Figure 3).
type QuicksortSorter[T sorter.Value] struct{}

// Sort implements sorter.Sorter.
func (QuicksortSorter[T]) Sort(data []T) { Quicksort(data) }

// SortAsync implements sorter.AsyncSorter: the quicksort runs on its own
// goroutine (a sort offloaded to another core) and the handle resolves when
// it completes.
func (s QuicksortSorter[T]) SortAsync(data []T) *sorter.Handle { return sorter.Submit[T](s, data) }

// Name implements sorter.Sorter.
func (QuicksortSorter[T]) Name() string { return "cpu-quicksort" }

// ParallelSorter is the multi-threaded quicksort baseline (the "Intel
// compiler with Hyper-Threading" analog in the paper's Figure 3).
type ParallelSorter[T sorter.Value] struct {
	// Workers is the goroutine budget; 0 means DefaultWorkers().
	Workers int
}

// Sort implements sorter.Sorter.
func (s ParallelSorter[T]) Sort(data []T) {
	w := s.Workers
	if w == 0 {
		w = DefaultWorkers()
	}
	ParallelQuicksort(data, w)
}

// SortAsync implements sorter.AsyncSorter for the multi-threaded baseline.
func (s ParallelSorter[T]) SortAsync(data []T) *sorter.Handle { return sorter.Submit[T](s, data) }

// Name implements sorter.Sorter.
func (s ParallelSorter[T]) Name() string { return "cpu-quicksort-ht" }

var (
	_ sorter.Sorter[float32]      = QuicksortSorter[float32]{}
	_ sorter.Sorter[uint64]       = QuicksortSorter[uint64]{}
	_ sorter.Sorter[float32]      = ParallelSorter[float32]{}
	_ sorter.Sorter[float64]      = ParallelSorter[float64]{}
	_ sorter.AsyncSorter[float32] = QuicksortSorter[float32]{}
	_ sorter.AsyncSorter[float32] = ParallelSorter[float32]{}
)
