package cpusort

import "gpustream/internal/sorter"

// Merge2 merges two ascending runs into dst, which must have capacity for
// both. It returns the filled dst.
func Merge2[T sorter.Value](dst, a, b []T) []T {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// Merge4 merges four ascending runs into one ascending slice. This is the
// CPU-side combine of the paper's sorter: the GPU sorts the four texture
// channels independently and the CPU merges them with O(n) comparisons
// (Section 4.4). It merges pairwise (a+b, c+d, then the two halves), which
// is branch-friendlier than a 4-way tournament for runs of similar length.
func Merge4[T sorter.Value](a, b, c, d []T) []T {
	ab := Merge2(make([]T, 0, len(a)+len(b)), a, b)
	cd := Merge2(make([]T, 0, len(c)+len(d)), c, d)
	return Merge2(make([]T, 0, len(ab)+len(cd)), ab, cd)
}

// KWayMerge merges any number of ascending runs into one ascending slice
// using a simple loser-tree-free heap of run heads.
func KWayMerge[T sorter.Value](runs [][]T) []T {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]T, 0, total)

	// heads[i] is the next unconsumed index in runs[i].
	type head struct{ run, idx int }
	heap := make([]head, 0, len(runs))
	val := func(h head) T { return runs[h.run][h.idx] }
	less := func(i, j int) bool { return val(heap[i]) < val(heap[j]) }
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(l, m) {
				m = l
			}
			if r < len(heap) && less(r, m) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	for i, r := range runs {
		if len(r) > 0 {
			heap = append(heap, head{i, 0})
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for len(heap) > 0 {
		h := heap[0]
		out = append(out, val(h))
		if h.idx+1 < len(runs[h.run]) {
			heap[0].idx++
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		down(0)
	}
	return out
}
