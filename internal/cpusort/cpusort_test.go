package cpusort

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gpustream/internal/stream"
)

func toF32(raw []int32) []float32 {
	out := make([]float32, len(raw))
	for i, v := range raw {
		out[i] = float32(v)
	}
	return out
}

func checkSortsLike(t *testing.T, name string, fn func([]float32)) {
	t.Helper()
	prop := func(raw []int32) bool {
		data := toF32(raw)
		want := append([]float32(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		fn(data)
		for i := range want {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestQuicksortQuick(t *testing.T)     { checkSortsLike(t, "Quicksort", Quicksort) }
func TestHeapsortQuick(t *testing.T)      { checkSortsLike(t, "Heapsort", Heapsort) }
func TestInsertionSortQuick(t *testing.T) { checkSortsLike(t, "InsertionSort", InsertionSort) }
func TestParallelQuicksortQuick(t *testing.T) {
	checkSortsLike(t, "ParallelQuicksort", func(d []float32) { ParallelQuicksort(d, 4) })
}

func TestQuicksortLargeAndAdversarial(t *testing.T) {
	inputs := map[string][]float32{
		"uniform":  stream.Uniform(100000, 1),
		"sorted":   stream.Sorted(100000),
		"reversed": stream.ReverseSorted(100000),
		"constant": make([]float32, 100000),
		"fewvals":  stream.UniformInts(100000, 4, 2),
		"empty":    nil,
		"one":      {5},
		"two":      {7, 3},
	}
	for name, data := range inputs {
		d := append([]float32(nil), data...)
		Quicksort(d)
		if !IsSorted(d) {
			t.Fatalf("Quicksort failed on %s", name)
		}
		d2 := append([]float32(nil), data...)
		ParallelQuicksort(d2, 4)
		if !IsSorted(d2) {
			t.Fatalf("ParallelQuicksort failed on %s", name)
		}
	}
}

func TestQuicksortSpecials(t *testing.T) {
	inf := float32(math.Inf(1))
	d := []float32{inf, -inf, 0, inf, -1, 1, -inf}
	Quicksort(d)
	want := []float32{-inf, -inf, -1, 0, 1, inf, inf}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("specials sorted to %v", d)
		}
	}
}

func TestSortersInterface(t *testing.T) {
	data := stream.Uniform(5000, 9)
	for _, s := range []interface {
		Sort([]float32)
		Name() string
	}{QuicksortSorter[float32]{}, ParallelSorter[float32]{}, ParallelSorter[float32]{Workers: 3}} {
		d := append([]float32(nil), data...)
		s.Sort(d)
		if !IsSorted(d) {
			t.Fatalf("%s did not sort", s.Name())
		}
		if s.Name() == "" {
			t.Fatal("empty sorter name")
		}
	}
}

func TestMerge2(t *testing.T) {
	got := Merge2(nil, []float32{1, 3, 5}, []float32{2, 3, 6, 7})
	want := []float32{1, 2, 3, 3, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("Merge2 = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge2 = %v, want %v", got, want)
		}
	}
}

func TestMerge2Empty(t *testing.T) {
	if got := Merge2[float32](nil, nil, nil); len(got) != 0 {
		t.Fatalf("Merge2(nil,nil) = %v", got)
	}
	got := Merge2(nil, []float32{1}, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Merge2 one-sided = %v", got)
	}
}

func TestMerge4Property(t *testing.T) {
	prop := func(a, b, c, d []int32) bool {
		runs := [][]float32{toF32(a), toF32(b), toF32(c), toF32(d)}
		var all []float32
		for _, r := range runs {
			Quicksort(r)
			all = append(all, r...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		got := Merge4(runs[0], runs[1], runs[2], runs[3])
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKWayMergeProperty(t *testing.T) {
	prop := func(raw [][]int32) bool {
		if len(raw) > 16 {
			raw = raw[:16]
		}
		runs := make([][]float32, len(raw))
		var all []float32
		for i, r := range raw {
			runs[i] = toF32(r)
			Quicksort(runs[i])
			all = append(all, runs[i]...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		got := KWayMerge(runs)
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKWayMergeEmpty(t *testing.T) {
	if got := KWayMerge[float32](nil); len(got) != 0 {
		t.Fatalf("KWayMerge[float32](nil) = %v", got)
	}
	if got := KWayMerge([][]float32{nil, {}, nil}); len(got) != 0 {
		t.Fatalf("KWayMerge(empties) = %v", got)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted[float32](nil) || !IsSorted([]float32{1}) || !IsSorted([]float32{1, 1, 2}) {
		t.Fatal("IsSorted false negative")
	}
	if IsSorted([]float32{2, 1}) {
		t.Fatal("IsSorted false positive")
	}
}

func TestDefaultWorkers(t *testing.T) {
	if w := DefaultWorkers(); w < 1 || w > 2 {
		t.Fatalf("DefaultWorkers = %d", w)
	}
}

func TestRadixSortQuick(t *testing.T) { checkSortsLike(t, "RadixSort", RadixSort) }

func TestRadixSortFloatEdgeCases(t *testing.T) {
	inf := float32(math.Inf(1))
	data := []float32{0, -0.0, 1.5, -1.5, inf, -inf, 1e-38, -1e-38, 3.4e38, -3.4e38}
	want := append([]float32(nil), data...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	RadixSort(data)
	for i := range want {
		// Compare bitwise classes: -0.0 == 0.0 under ==, ordering between
		// them is unobservable, so value equality suffices.
		if data[i] != want[i] {
			t.Fatalf("radix edge sort = %v, want %v", data, want)
		}
	}
}

func TestRadixSortLargeMatchesQuicksort(t *testing.T) {
	data := stream.Gaussian(200000, 0, 1000, 31)
	a := append([]float32(nil), data...)
	b := append([]float32(nil), data...)
	RadixSort(a)
	Quicksort(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("radix diverged from quicksort at %d", i)
		}
	}
}

func TestRadixSorterInterface(t *testing.T) {
	s := RadixSorter[float32]{}
	if s.Name() != "cpu-radix" {
		t.Fatal("name")
	}
	d := stream.Uniform(1000, 32)
	s.Sort(d)
	if !IsSorted(d) {
		t.Fatal("RadixSorter did not sort")
	}
}

func TestRadixSortConstantInput(t *testing.T) {
	d := make([]float32, 1000)
	for i := range d {
		d[i] = 7
	}
	RadixSort(d)
	for _, v := range d {
		if v != 7 {
			t.Fatal("constant input mangled")
		}
	}
}
