package cachesim

import (
	"testing"

	"gpustream/internal/stream"
)

func BenchmarkTracedQuicksort(b *testing.B) {
	data := stream.Uniform(1<<15, 1)
	buf := make([]float32, len(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, data)
		TracedQuicksort(buf, PentiumIV())
	}
}

func BenchmarkTracedMergesort(b *testing.B) {
	data := stream.Uniform(1<<15, 2)
	buf := make([]float32, len(data))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, data)
		TracedMergesort(buf, PentiumIV())
	}
}
