package cachesim

import (
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

func TestCacheHitsOnRepeatedAccess(t *testing.T) {
	c := NewCache(Config{Size: 1024, Line: 64, Assoc: 2, Latency: 1})
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("repeated access missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next-line cold access hit")
	}
	if c.Accesses() != 4 || c.Misses() != 2 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("MissRate = %v", c.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 1 set: capacity two lines.
	c := NewCache(Config{Size: 128, Line: 64, Assoc: 2, Latency: 1})
	c.Access(0)       // line A
	c.Access(64)      // line B
	c.Access(0)       // touch A -> B is LRU
	c.Access(128)     // line C evicts B
	if !c.Access(0) { // A still resident
		t.Fatal("LRU evicted the recently used line")
	}
	if c.Access(64) { // B was evicted
		t.Fatal("LRU kept the least recently used line")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Size: 0, Line: 64, Assoc: 1},
		{Size: 100, Line: 64, Assoc: 2}, // not a multiple
		{Size: 64, Line: 64, Assoc: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v accepted", cfg)
				}
			}()
			NewCache(cfg)
		}()
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := PentiumIV()
	if got := h.Access(0); got != h.MemLat {
		t.Fatalf("cold access cost %d, want %d", got, h.MemLat)
	}
	if got := h.Access(0); got != 2 {
		t.Fatalf("L1 hit cost %d, want 2", got)
	}
	if h.Cycles() != h.MemLat+2 {
		t.Fatalf("Cycles = %d", h.Cycles())
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := PentiumIV()
	// Touch enough distinct lines to evict from the 16 KB L1 but stay in
	// the 1 MB L2, then re-touch the first line: should cost 10 (L2).
	for addr := uint64(0); addr < 64<<10; addr += 64 {
		h.Access(addr)
	}
	if got := h.Access(0); got != 10 {
		t.Fatalf("expected L2 hit cost 10, got %d", got)
	}
}

func TestTracedQuicksortSortsAndCounts(t *testing.T) {
	data := stream.Uniform(20000, 21)
	h := PentiumIV()
	TracedQuicksort(data, h)
	if !cpusort.IsSorted(data) {
		t.Fatal("TracedQuicksort did not sort")
	}
	if h.L1.Accesses() == 0 || h.Cycles() == 0 {
		t.Fatal("no accesses recorded")
	}
}

func TestTracedMergesortSortsAndCounts(t *testing.T) {
	data := stream.Uniform(20000, 22)
	h := PentiumIV()
	TracedMergesort(data, h)
	if !cpusort.IsSorted(data) {
		t.Fatal("TracedMergesort did not sort")
	}
	if h.L1.Accesses() == 0 {
		t.Fatal("no accesses recorded")
	}
}

// TestQuicksortMissGrowth reproduces the LaMarca-Ladner observation the
// paper cites: once the input outgrows the cache, quicksort's misses per
// element rise substantially.
func TestQuicksortMissGrowth(t *testing.T) {
	missesPerElem := func(n int) float64 {
		data := stream.Uniform(n, uint64(n))
		h := PentiumIV()
		TracedQuicksort(data, h)
		return float64(h.L2.Misses()) / float64(n)
	}
	small := missesPerElem(32 << 10)  // 128 KB of data: fits L2
	large := missesPerElem(512 << 10) // 2 MB of data: exceeds L2
	if large < 2*small {
		t.Fatalf("expected miss growth beyond cache: small=%.4f large=%.4f", small, large)
	}
}

// TestAnalyticModelTracksSimulatedQuicksort checks the LaMarca-Ladner-style
// prediction against the full simulation within a factor of three across
// two orders of magnitude of input size — first-order agreement, which is
// all the model claims.
func TestAnalyticModelTracksSimulatedQuicksort(t *testing.T) {
	for _, n := range []int{1 << 14, 1 << 17, 1 << 19} {
		data := stream.Uniform(n, uint64(n))
		h := PentiumIV()
		TracedQuicksort(data, h)
		measured := float64(h.L2.Misses())
		predicted := PredictQuicksortMisses(n, 1<<20, 64)
		ratio := measured / predicted
		if ratio < 1/3.0 || ratio > 3 {
			t.Fatalf("n=%d: measured %v vs predicted %v (ratio %.2f)", n, measured, predicted, ratio)
		}
	}
}

func TestAnalyticModelsGrowSuperlinearly(t *testing.T) {
	small := PredictQuicksortMisses(1<<16, 1<<20, 64)
	large := PredictQuicksortMisses(1<<22, 1<<20, 64)
	if large < 64*small*1.2 {
		t.Fatalf("beyond-cache misses should grow superlinearly: %v -> %v", small, large)
	}
	if PredictQuicksortMisses(0, 1<<20, 64) != 0 || PredictMergesortMisses(0, 1<<20, 64) != 0 {
		t.Fatal("zero input should predict zero misses")
	}
	ms := PredictMergesortMisses(1<<20, 1<<20, 64)
	qs := PredictQuicksortMisses(1<<20, 1<<20, 64)
	if ms <= qs {
		t.Fatalf("mergesort (two arrays) should predict more misses: %v vs %v", ms, qs)
	}
}
