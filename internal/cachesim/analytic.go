package cachesim

import "math"

// Analytic cache-miss models in the style of LaMarca and Ladner ("The
// influence of caches on the performance of sorting"), the study the paper
// cites for CPU sorting behaviour (Section 3.2). The predictions are
// first-order — capacity misses only, fully associative approximation —
// and the tests compare them against the simulator's measured counts.

// PredictQuicksortMisses estimates cache misses for quicksorting n
// float32 values with a cache of cacheBytes and lineBytes lines.
//
// LaMarca-Ladner: while a partition fits in cache it incurs one miss per
// line (compulsory); each partitioning pass over data that exceeds the
// cache streams it through memory once, costing n/B misses per pass, with
// ~log2(n/M) such passes until partitions fit.
func PredictQuicksortMisses(n int, cacheBytes, lineBytes int) float64 {
	if n <= 0 {
		return 0
	}
	valsPerLine := float64(lineBytes) / 4
	lines := float64(n) / valsPerLine
	capacity := float64(cacheBytes) / 4
	if float64(n) <= capacity {
		return lines // compulsory only
	}
	passes := math.Log2(float64(n) / capacity)
	return lines * (1 + passes)
}

// PredictMergesortMisses estimates cache misses for a top-down mergesort
// of n float32 values: every merge level beyond cache residency streams
// both the source and destination arrays through memory.
func PredictMergesortMisses(n int, cacheBytes, lineBytes int) float64 {
	if n <= 0 {
		return 0
	}
	valsPerLine := float64(lineBytes) / 4
	lines := 2 * float64(n) / valsPerLine // data + scratch
	capacity := float64(cacheBytes) / 8   // both arrays must fit
	if float64(n) <= capacity {
		return lines
	}
	levels := math.Log2(float64(n) / capacity)
	return lines * (1 + levels)
}
