// Package cachesim models the CPU memory hierarchy whose behaviour the paper
// identifies as the main bottleneck of CPU sorting (Section 3.2, citing
// LaMarca and Ladner): a set-associative L1 and L2 cache in front of slow
// main memory. Instrumented sorts replay their exact element-access traces
// through the hierarchy, yielding miss counts and a cycle estimate that feed
// the Pentium-IV side of the performance model and the cache ablation bench.
package cachesim

// Config describes one cache level.
type Config struct {
	Size    int   // total bytes
	Line    int   // line size in bytes
	Assoc   int   // ways per set
	Latency int64 // access latency in cycles on a hit at this level
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg      Config
	sets     int
	tags     []uint64 // sets x assoc, tag+1 (0 = invalid)
	stamps   []int64  // LRU timestamps parallel to tags
	clock    int64
	accesses int64
	misses   int64
}

// NewCache builds a cache from cfg. Size must be divisible by Line*Assoc.
func NewCache(cfg Config) *Cache {
	if cfg.Size <= 0 || cfg.Line <= 0 || cfg.Assoc <= 0 {
		panic("cachesim: invalid cache config")
	}
	sets := cfg.Size / (cfg.Line * cfg.Assoc)
	if sets == 0 || cfg.Size%(cfg.Line*cfg.Assoc) != 0 {
		panic("cachesim: size must be a multiple of line*assoc")
	}
	return &Cache{
		cfg:    cfg,
		sets:   sets,
		tags:   make([]uint64, sets*cfg.Assoc),
		stamps: make([]int64, sets*cfg.Assoc),
	}
}

// Access touches addr and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	c.clock++
	line := addr / uint64(c.cfg.Line)
	set := int(line % uint64(c.sets))
	tag := line/uint64(c.sets) + 1
	base := set * c.cfg.Assoc
	victim := base
	for i := base; i < base+c.cfg.Assoc; i++ {
		if c.tags[i] == tag {
			c.stamps[i] = c.clock
			return true
		}
		if c.stamps[i] < c.stamps[victim] {
			victim = i
		}
	}
	c.misses++
	c.tags[victim] = tag
	c.stamps[victim] = c.clock
	return false
}

// Accesses reports the number of Access calls.
func (c *Cache) Accesses() int64 { return c.accesses }

// Misses reports the number of misses.
func (c *Cache) Misses() int64 { return c.misses }

// MissRate reports misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Hierarchy is a two-level cache in front of main memory.
type Hierarchy struct {
	L1, L2 *Cache
	MemLat int64 // main-memory latency in cycles
	cycles int64
}

// PentiumIV builds the hierarchy of the paper's 3.4 GHz Pentium IV testbed:
// 16 KB 8-way L1 and 1 MB 8-way L2 with 64-byte lines, and the latencies the
// paper quotes in Section 3.2 — 1-2 cycles for L1, ~10 for L2 and ~100 for
// main memory.
func PentiumIV() *Hierarchy {
	return &Hierarchy{
		L1:     NewCache(Config{Size: 16 << 10, Line: 64, Assoc: 8, Latency: 2}),
		L2:     NewCache(Config{Size: 1 << 20, Line: 64, Assoc: 8, Latency: 10}),
		MemLat: 100,
	}
}

// Access touches addr through the hierarchy and returns the cycles spent.
func (h *Hierarchy) Access(addr uint64) int64 {
	var cost int64
	if h.L1.Access(addr) {
		cost = h.L1.cfg.Latency
	} else if h.L2.Access(addr) {
		cost = h.L2.cfg.Latency
	} else {
		cost = h.MemLat
	}
	h.cycles += cost
	return cost
}

// Cycles reports total memory-access cycles so far.
func (h *Hierarchy) Cycles() int64 { return h.cycles }
