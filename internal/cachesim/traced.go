package cachesim

// tracedData wraps a float32 slice so every element access is replayed
// through a cache hierarchy at its real (simulated) address.
type tracedData struct {
	data []float32
	h    *Hierarchy
	base uint64
}

func (t *tracedData) get(i int) float32 {
	t.h.Access(t.base + uint64(i)*4)
	return t.data[i]
}

func (t *tracedData) set(i int, v float32) {
	t.h.Access(t.base + uint64(i)*4)
	t.data[i] = v
}

func (t *tracedData) swap(i, j int) {
	a, b := t.get(i), t.get(j)
	t.set(i, b)
	t.set(j, a)
}

// TracedQuicksort sorts data in place, replaying every element access
// through h. It mirrors cpusort.Quicksort's structure (median-of-3,
// insertion cutoff) so the measured cache behaviour is representative of the
// real baseline.
func TracedQuicksort(data []float32, h *Hierarchy) {
	t := &tracedData{data: data, h: h}
	tracedQuicksort(t, 0, len(data))
}

func tracedQuicksort(t *tracedData, lo, hi int) {
	for hi-lo > 16 {
		p := tracedPartition(t, lo, hi)
		if p-lo < hi-p-1 {
			tracedQuicksort(t, lo, p)
			lo = p + 1
		} else {
			tracedQuicksort(t, p+1, hi)
			hi = p
		}
	}
	// Insertion sort tail.
	for i := lo + 1; i < hi; i++ {
		v := t.get(i)
		j := i - 1
		for j >= lo && t.get(j) > v {
			t.set(j+1, t.get(j))
			j--
		}
		t.set(j+1, v)
	}
}

func tracedPartition(t *tracedData, lo, hi int) int {
	mid := lo + (hi-lo)/2
	if t.get(mid) < t.get(lo) {
		t.swap(mid, lo)
	}
	if t.get(hi-1) < t.get(mid) {
		t.swap(hi-1, mid)
		if t.get(mid) < t.get(lo) {
			t.swap(mid, lo)
		}
	}
	t.swap(mid, hi-2)
	pivot := t.get(hi - 2)
	i, j := lo, hi-2
	for {
		for i++; t.get(i) < pivot; i++ {
		}
		for j--; t.get(j) > pivot; j-- {
		}
		if i >= j {
			break
		}
		t.swap(i, j)
	}
	t.swap(i, hi-2)
	return i
}

// TracedMergesort sorts data in place via a top-down mergesort with a traced
// scratch buffer, the cache-friendlier comparison point LaMarca and Ladner
// analyze against quicksort.
func TracedMergesort(data []float32, h *Hierarchy) {
	scratch := make([]float32, len(data))
	src := &tracedData{data: data, h: h}
	dst := &tracedData{data: scratch, h: h, base: uint64(len(data)) * 4}
	tracedMergesort(src, dst, 0, len(data))
}

func tracedMergesort(src, scratch *tracedData, lo, hi int) {
	if hi-lo <= 1 {
		return
	}
	mid := lo + (hi-lo)/2
	tracedMergesort(src, scratch, lo, mid)
	tracedMergesort(src, scratch, mid, hi)
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		if i < mid && (j >= hi || src.get(i) <= src.get(j)) {
			scratch.set(k, src.get(i))
			i++
		} else {
			scratch.set(k, src.get(j))
			j++
		}
	}
	for k := lo; k < hi; k++ {
		src.set(k, scratch.get(k))
	}
}
