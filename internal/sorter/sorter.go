// Package sorter defines the interface between the stream-mining algorithms
// and the sorting backends. Sorting dominates the runtime of the paper's
// summary construction (70-95% on the CPU, Section 3.2), so the estimators
// are parameterized over a Sorter: the GPU-simulated PBSN sorter, the GPU
// bitonic baseline, or the CPU quicksorts.
package sorter

// Sorter sorts a slice of float32 values in ascending order, in place.
type Sorter interface {
	// Sort orders data ascending in place.
	Sort(data []float32)
	// Name identifies the backend in benchmark output.
	Name() string
}

// Func adapts a plain function to the Sorter interface.
type Func struct {
	SortFunc func([]float32)
	Label    string
}

// Sort implements Sorter.
func (f Func) Sort(data []float32) { f.SortFunc(data) }

// Name implements Sorter.
func (f Func) Name() string { return f.Label }
