// Package sorter defines the interface between the stream-mining algorithms
// and the sorting backends, and the ordered-value constraint the whole stack
// is generic over. Sorting dominates the runtime of the paper's summary
// construction (70-95% on the CPU, Section 3.2), so the estimators are
// parameterized over a Sorter: the GPU-simulated PBSN sorter, the GPU
// bitonic baseline, or the CPU quicksorts.
//
// The paper's algorithms are comparator-based — PBSN, lossy counting, GK
// summaries and exponential-histogram windows only ever compare values — so
// every layer is generic over Value, the six ordered numeric types a stream
// can carry. float32 remains the paper-faithful default (the 2004 hardware
// blended float32 render targets); the other instantiations open integer
// and double-precision workloads on the same substrate.
package sorter

import (
	"math"
	"reflect"
)

// Value is the ordered-numeric constraint every layer of the stack is
// generic over: stream values, sorter elements, summary entries, histogram
// bins and query results all carry one of these types. All six types are
// totally ordered by < (modulo NaN for the float instantiations, which the
// estimators exclude the same way the paper's float32 pipeline does).
type Value interface {
	~float32 | ~float64 | ~uint32 | ~uint64 | ~int32 | ~int64
}

// Sorter sorts a slice of T values in ascending order, in place.
type Sorter[T Value] interface {
	// Sort orders data ascending in place.
	Sort(data []T)
	// Name identifies the backend in benchmark output.
	Name() string
}

// Func adapts a plain function to the Sorter interface.
type Func[T Value] struct {
	SortFunc func([]T)
	Label    string
}

// Sort implements Sorter.
func (f Func[T]) Sort(data []T) { f.SortFunc(data) }

// Name implements Sorter.
func (f Func[T]) Name() string { return f.Label }

// MaxValue returns the largest representable T: +Inf for the float
// instantiations, the maximum integer otherwise. It is the generic analog of
// the paper's +Inf padding — a sentinel that sorts to the end of every
// channel.
func MaxValue[T Value]() T {
	var z T
	v := reflect.ValueOf(&z).Elem()
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		v.SetFloat(math.Inf(1))
	case reflect.Uint32, reflect.Uint64:
		v.SetUint(math.MaxUint64) // SetUint truncates to the field width
	case reflect.Int32:
		v.SetInt(math.MaxInt32)
	case reflect.Int64:
		v.SetInt(math.MaxInt64)
	}
	return z
}

// MinValue returns the smallest representable T: -Inf for the float
// instantiations, the minimum integer otherwise.
func MinValue[T Value]() T {
	var z T
	v := reflect.ValueOf(&z).Elem()
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		v.SetFloat(math.Inf(-1))
	case reflect.Uint32, reflect.Uint64:
		v.SetUint(0)
	case reflect.Int32:
		v.SetInt(math.MinInt32)
	case reflect.Int64:
		v.SetInt(math.MinInt64)
	}
	return z
}

// KeyBits reports the width in bits of T's order-preserving integer key
// space: 32 for float32/uint32/int32, 64 for the rest.
func KeyBits[T Value]() int {
	var z T
	switch reflect.ValueOf(&z).Elem().Kind() {
	case reflect.Float32, reflect.Uint32, reflect.Int32:
		return 32
	}
	return 64
}

// OrderedKey maps v to a uint64 key such that a < b iff
// OrderedKey(a) < OrderedKey(b): the classic bit flips for floats (flip all
// bits of negatives, the sign bit of non-negatives), a sign-bit flip for
// signed integers, identity for unsigned. Radix sorting and the GPU
// selection's key-space binary search build on it.
func OrderedKey[T Value](v T) uint64 {
	rv := reflect.ValueOf(&v).Elem()
	switch rv.Kind() {
	case reflect.Float32:
		b := math.Float32bits(float32(rv.Float()))
		if b&0x80000000 != 0 {
			b = ^b
		} else {
			b |= 0x80000000
		}
		return uint64(b)
	case reflect.Float64:
		b := math.Float64bits(rv.Float())
		if b&(1<<63) != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		return b
	case reflect.Uint32, reflect.Uint64:
		return rv.Uint()
	case reflect.Int32:
		return uint64(uint32(int32(rv.Int())) ^ 0x80000000)
	default: // Int64
		return uint64(rv.Int()) ^ (1 << 63)
	}
}

// FromOrderedKey inverts OrderedKey.
func FromOrderedKey[T Value](k uint64) T {
	var z T
	rv := reflect.ValueOf(&z).Elem()
	switch rv.Kind() {
	case reflect.Float32:
		b := uint32(k)
		if b&0x80000000 != 0 {
			b &^= 0x80000000
		} else {
			b = ^b
		}
		rv.SetFloat(float64(math.Float32frombits(b)))
	case reflect.Float64:
		if k&(1<<63) != 0 {
			k &^= 1 << 63
		} else {
			k = ^k
		}
		rv.SetFloat(math.Float64frombits(k))
	case reflect.Uint32, reflect.Uint64:
		rv.SetUint(k)
	case reflect.Int32:
		rv.SetInt(int64(int32(uint32(k) ^ 0x80000000)))
	default: // Int64
		rv.SetInt(int64(k ^ (1 << 63)))
	}
	return z
}
