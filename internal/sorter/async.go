package sorter

// Asynchronous submission surface. The paper's co-processing claim (Sections
// 3-4) rests on the GPU sorting the current window while the CPU merges and
// compresses the previous one; the API analog is a sort submission that
// returns immediately with a completion handle instead of blocking the
// caller. Every backend in this repository implements AsyncSorter: the GPU
// sorters model the paper's non-blocking render submission followed by a
// blocking framebuffer readback, and the CPU sorters model a sort offloaded
// to another core.
//
// The contract mirrors the hardware: one submission in flight per sorter
// instance. Backends keep per-sort state (the GPU simulator's LastStats), so
// overlapping two SortAsync calls on the same instance is a data race, the
// same way overlapping two render passes on one 2004-era context would be.
// The staged pipeline executor obeys this by construction — its sort stage
// submits one window at a time.

// Handle is the completion handle of an asynchronous sort submission. Wait
// blocks until the submitted sort has finished and its results are visible
// to the waiting goroutine (the handle closure establishes the
// happens-before edge); Done exposes the underlying channel for select
// loops.
type Handle struct {
	done chan struct{}
}

// NewHandle returns an unresolved handle. Backends that implement SortAsync
// without Submit resolve it with Complete when their sort finishes.
func NewHandle() *Handle { return &Handle{done: make(chan struct{})} }

// Complete resolves the handle, releasing every Wait. It must be called
// exactly once.
func (h *Handle) Complete() { close(h.done) }

// Wait blocks until the sort completes.
func (h *Handle) Wait() { <-h.done }

// Done returns a channel closed when the sort completes.
func (h *Handle) Done() <-chan struct{} { return h.done }

// AsyncSorter is a Sorter that also accepts non-blocking submissions: the
// data slice is handed to the backend, SortAsync returns immediately, and
// the slice is sorted ascending in place by the time the handle resolves.
// The caller must not touch data between submission and Wait.
type AsyncSorter[T Value] interface {
	Sorter[T]
	// SortAsync submits data for sorting and returns a completion handle.
	// At most one submission may be in flight per sorter instance.
	SortAsync(data []T) *Handle
}

// Submit runs s.Sort(data) on its own goroutine and returns the completion
// handle — the generic adapter the backends build their SortAsync on. The
// goroutine is short-lived (one sort) and always terminates, so Submit
// introduces no lifecycle to manage beyond the handle itself.
func Submit[T Value](s Sorter[T], data []T) *Handle {
	h := NewHandle()
	go func() {
		s.Sort(data)
		h.Complete()
	}()
	return h
}

// SortVia sorts data with s, preferring the asynchronous surface when the
// backend offers one (submit + wait, the shape of a render call followed by
// readback) and falling back to the blocking Sort otherwise.
func SortVia[T Value](s Sorter[T], data []T) {
	if as, ok := s.(AsyncSorter[T]); ok {
		as.SortAsync(data).Wait()
		return
	}
	s.Sort(data)
}
