package summary

import (
	"fmt"
	"math"

	"gpustream/internal/sorter"
)

// gkTuple is one tuple of the classic streaming Greenwald-Khanna summary:
// value v, g = rmin(v) - rmin(prev), delta = rmax(v) - rmin(v).
type gkTuple[T sorter.Value] struct {
	v     T
	g     int64
	delta int64
}

// GK is the classic one-pass Greenwald-Khanna eps-approximate quantile
// summary with single-element insertion. The paper's window-based algorithm
// (Section 5.2) outperforms it in practice because it inserts far fewer
// elements into the summary; GK is kept as the single-element-insertion
// baseline for that comparison (Section 3.2).
type GK[T sorter.Value] struct {
	eps      float64
	n        int64
	tuples   []gkTuple[T]
	sinceCmp int64
	every    int64 // compress interval in inserts
}

// NewGK returns an empty eps-approximate streaming summary that compresses
// every 1/(2*eps) inserts, the standard schedule.
func NewGK[T sorter.Value](eps float64) *GK[T] {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("summary: GK eps %v out of (0, 1)", eps))
	}
	return &GK[T]{eps: eps, every: int64(1 / (2 * eps))}
}

// NewGKCompressEvery returns a GK summary compressing every `every`
// inserts. Less frequent compression trades memory for insert throughput;
// the compress-interval ablation bench sweeps this knob.
func NewGKCompressEvery[T sorter.Value](eps float64, every int64) *GK[T] {
	g := NewGK[T](eps)
	if every < 1 {
		panic("summary: compress interval must be positive")
	}
	g.every = every
	return g
}

// Count reports the number of inserted elements.
func (g *GK[T]) Count() int64 { return g.n }

// Size reports the number of retained tuples.
func (g *GK[T]) Size() int { return len(g.tuples) }

// Insert adds one observation.
func (g *GK[T]) Insert(v T) {
	g.n++
	// Find the first tuple with value >= v.
	lo, hi := 0, len(g.tuples)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.tuples[mid].v < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var delta int64
	if lo != 0 && lo != len(g.tuples) {
		delta = int64(math.Floor(2*g.eps*float64(g.n))) - 1
		if delta < 0 {
			delta = 0
		}
	}
	g.tuples = append(g.tuples, gkTuple[T]{})
	copy(g.tuples[lo+1:], g.tuples[lo:])
	g.tuples[lo] = gkTuple[T]{v: v, g: 1, delta: delta}

	g.sinceCmp++
	if g.sinceCmp >= g.every {
		g.Compress()
		g.sinceCmp = 0
	}
}

// Compress merges adjacent tuples whose combined uncertainty stays within
// the 2*eps*n budget, bounding the summary size.
func (g *GK[T]) Compress() {
	if len(g.tuples) < 3 {
		return
	}
	budget := int64(math.Floor(2 * g.eps * float64(g.n)))
	out := g.tuples[:1]
	for i := 1; i < len(g.tuples)-1; i++ {
		t := g.tuples[i]
		next := g.tuples[i+1]
		if t.g+next.g+next.delta <= budget {
			// Merge t into its successor.
			g.tuples[i+1].g += t.g
			continue
		}
		out = append(out, t)
	}
	out = append(out, g.tuples[len(g.tuples)-1])
	g.tuples = out
}

// Query returns an eps-approximate phi-quantile of the inserted elements.
// It panics if nothing has been inserted.
func (g *GK[T]) Query(phi float64) T {
	if g.n == 0 {
		panic("summary: GK query on empty summary")
	}
	r := int64(math.Ceil(phi * float64(g.n)))
	if r < 1 {
		r = 1
	}
	if r > g.n {
		r = g.n
	}
	var rmin int64
	best := g.tuples[0].v
	bestScore := int64(math.MaxInt64)
	for _, t := range g.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		score := rmax - r
		if d := r - rmin; d > score {
			score = d
		}
		if score < bestScore {
			best, bestScore = t.v, score
		}
	}
	return best
}

// ToSummary converts the GK structure to the windowed Summary representation
// so both estimator families share merge/prune machinery.
func (g *GK[T]) ToSummary() *Summary[T] {
	s := &Summary[T]{N: g.n, Eps: g.eps}
	var rmin int64
	for _, t := range g.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		if rmax > g.n {
			// delta is sized against the 2*eps*n budget at insert time, so a
			// late interior insert can carry rmin+delta past n; the true rank
			// never exceeds n, which is the tighter bound the Summary
			// representation requires (RMax <= N).
			rmax = g.n
		}
		s.Entries = append(s.Entries, Entry[T]{V: t.v, RMin: rmin, RMax: rmax})
	}
	return s
}
