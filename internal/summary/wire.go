package summary

import (
	"gpustream/internal/sorter"
	"gpustream/internal/wire"
)

// Wire layout of one Summary (no header — summaries are embedded inside
// family bodies, which carry the header):
//
//	eps     float64
//	n       int64
//	count   uint32
//	entries count × (value[4|8] + rmin int64 + rmax int64)
//
// See DESIGN.md section 12.

// EncodedSize reports the exact encoded byte length of s, so callers can
// pre-size their buffers.
func EncodedSize[T sorter.Value](s *Summary[T]) int {
	return 8 + 8 + 4 + len(s.Entries)*(wire.ValueSize[T]()+16)
}

// AppendBinary appends the wire encoding of s to b. The encoding is
// canonical: equal summaries produce equal bytes.
func AppendBinary[T sorter.Value](b []byte, s *Summary[T]) []byte {
	b = wire.AppendF64(b, s.Eps)
	b = wire.AppendI64(b, s.N)
	b = wire.AppendU32(b, uint32(len(s.Entries)))
	for _, e := range s.Entries {
		b = wire.AppendValue(b, e.V)
		b = wire.AppendI64(b, e.RMin)
		b = wire.AppendI64(b, e.RMax)
	}
	return b
}

// Decode reads one summary from r, validating lengths before allocating and
// the GK structural invariants (value-ascending entries, rank bounds inside
// [1, N]) after. Failures wrap the wire sentinels; Decode never panics.
func Decode[T sorter.Value](r *wire.Reader) (*Summary[T], error) {
	eps, err := r.F64()
	if err != nil {
		return nil, err
	}
	n, err := r.I64()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, wire.Corruptf("summary: negative element count %d", n)
	}
	count, err := r.Count(wire.ValueSize[T]() + 16)
	if err != nil {
		return nil, err
	}
	if n > 0 && count == 0 {
		// A GK summary over a non-empty stream always retains entries (the
		// coverage invariant needs at least the extremes); a headless body
		// claiming otherwise would panic rank queries downstream.
		return nil, wire.Corruptf("summary: %d elements but no entries", n)
	}
	s := &Summary[T]{Eps: eps, N: n}
	if count > 0 {
		s.Entries = make([]Entry[T], count)
	}
	for i := range s.Entries {
		if s.Entries[i].V, err = wire.ReadValue[T](r); err != nil {
			return nil, err
		}
		if s.Entries[i].RMin, err = r.I64(); err != nil {
			return nil, err
		}
		if s.Entries[i].RMax, err = r.I64(); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, wire.Corruptf("summary: %v", err)
	}
	return s, nil
}
