package summary

import (
	"math/rand"
	"sort"
	"testing"
)

// buildParts assigns each stream element to one of k parts at random and
// returns one FromSortedWindow summary per non-empty part.
func buildParts(rng *rand.Rand, data []float32, k int, eps float64) []*Summary[float32] {
	parts := make([][]float32, k)
	for _, v := range data {
		i := rng.Intn(k)
		parts[i] = append(parts[i], v)
	}
	var out []*Summary[float32]
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
		out = append(out, FromSortedWindow(p, eps))
	}
	return out
}

// mergeInOrder folds the summaries left-to-right in the given visit order.
func mergeInOrder(parts []*Summary[float32], order []int) *Summary[float32] {
	var acc *Summary[float32]
	for _, idx := range order {
		if acc == nil {
			acc = parts[idx]
			continue
		}
		acc = Merge(acc, parts[idx])
	}
	return acc
}

// mergePairwiseTree merges the summaries as a balanced binary tree (the
// sensor-tree shape) over the given visit order.
func mergePairwiseTree(parts []*Summary[float32], order []int) *Summary[float32] {
	level := make([]*Summary[float32], len(order))
	for i, idx := range order {
		level[i] = parts[idx]
	}
	for len(level) > 1 {
		var next []*Summary[float32]
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, Merge(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// TestMergePartitionOrderMetamorphic is the metamorphic property sharded
// ingestion relies on: partition a stream randomly, summarize each part,
// and merge the parts in any order and any tree shape — the result must
// answer rank queries within the same bound as one-shot construction from
// the fully sorted stream. This catches order-dependence bugs in Merge
// before internal/shard depends on it.
func TestMergePartitionOrderMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2_000 + rng.Intn(4_000)
		eps := []float64{0.2, 0.05, 0.02}[trial%3]
		data := make([]float32, n)
		for i := range data {
			switch trial % 2 {
			case 0:
				data[i] = rng.Float32()
			default:
				data[i] = float32(rng.Intn(50)) // heavy duplication
			}
		}
		sortedAll := append([]float32(nil), data...)
		sort.Slice(sortedAll, func(i, j int) bool { return sortedAll[i] < sortedAll[j] })

		oneShot := FromSortedWindow(sortedAll, eps)
		if got := oneShot.TrueRankError(sortedAll); got > oneShot.Eps+1e-9 {
			t.Fatalf("trial %d: one-shot construction violates its own bound: %g > %g",
				trial, got, oneShot.Eps)
		}

		k := 2 + rng.Intn(7)
		parts := buildParts(rng, data, k, eps)

		for round := 0; round < 4; round++ {
			order := rng.Perm(len(parts))
			var merged *Summary[float32]
			if round%2 == 0 {
				merged = mergeInOrder(parts, order)
			} else {
				merged = mergePairwiseTree(parts, order)
			}
			if merged.N != int64(n) {
				t.Fatalf("trial %d round %d: merged N=%d want %d", trial, round, merged.N, n)
			}
			if err := merged.Validate(); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			// The merged summary carries Eps = max over parts; each part is
			// built with the same construction as one-shot, so the bound it
			// must meet is its own advertised Eps — identical in kind to the
			// one-shot bound, regardless of partition or merge order.
			if got := merged.TrueRankError(sortedAll); got > merged.Eps+1e-9 {
				t.Errorf("trial %d round %d (k=%d, order %v): rank error %g > bound %g",
					trial, round, len(parts), order, got, merged.Eps)
			}
		}
	}
}
