package summary

import (
	"testing"

	"gpustream/internal/stream"
)

func BenchmarkFromSortedWindow(b *testing.B) {
	win := sortedCopy(stream.Uniform(1<<16, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromSortedWindow(win, 0.001)
	}
}

func BenchmarkMerge(b *testing.B) {
	s1 := FromSortedWindow(sortedCopy(stream.Uniform(1<<16, 2)), 0.001)
	s2 := FromSortedWindow(sortedCopy(stream.Uniform(1<<16, 3)), 0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(s1, s2)
	}
}

func BenchmarkPrune(b *testing.B) {
	s := FromSortedWindow(sortedCopy(stream.Uniform(1<<18, 4)), 0.0001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Prune(1000)
	}
}

func BenchmarkGKInsert(b *testing.B) {
	data := stream.Uniform(1<<16, 5)
	b.SetBytes(4)
	b.ResetTimer()
	g := NewGK[float32](0.01)
	for i := 0; i < b.N; i++ {
		g.Insert(data[i%len(data)])
	}
}
