package summary

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

func sortedCopy(data []float32) []float32 {
	out := append([]float32(nil), data...)
	cpusort.Quicksort(out)
	return out
}

func TestFromSortedWindowExactWhenStepOne(t *testing.T) {
	win := sortedCopy(stream.Uniform(100, 1))
	s := FromSortedWindow(win, 0.001) // step 1: keeps everything
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := int64(1); r <= 100; r++ {
		v := s.QueryRank(r)
		if v != win[r-1] {
			t.Fatalf("rank %d: got %v want %v", r, v, win[r-1])
		}
	}
}

func TestFromSortedWindowErrorBound(t *testing.T) {
	for _, eps := range []float64{0.01, 0.05, 0.1} {
		for _, n := range []int{100, 1000, 9999} {
			win := sortedCopy(stream.Uniform(n, uint64(n)))
			s := FromSortedWindow(win, eps)
			if err := s.Validate(); err != nil {
				t.Fatalf("eps=%v n=%d: %v", eps, n, err)
			}
			if got := s.TrueRankError(win); got > eps/2+1e-9 {
				t.Fatalf("eps=%v n=%d: rank error %v > eps/2", eps, n, got)
			}
			// Space: about 1/eps + 2 entries.
			if s.Size() > int(1/eps)+3 {
				t.Fatalf("eps=%v n=%d: size %d exceeds budget", eps, n, s.Size())
			}
		}
	}
}

func TestFromSortedWindowDetectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted window accepted")
		}
	}()
	FromSortedWindow([]float32{3, 1, 2}, 0.1)
}

func TestFromSortedWindowEmpty(t *testing.T) {
	s := FromSortedWindow[float32](nil, 0.1)
	if s.N != 0 || s.Size() != 0 {
		t.Fatalf("empty window summary = %+v", s)
	}
}

func TestFromSortedWindowBadEps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("eps=0 accepted")
		}
	}()
	FromSortedWindow([]float32{1}, 0)
}

func TestMergePreservesError(t *testing.T) {
	const eps = 0.05
	a := sortedCopy(stream.Uniform(2000, 2))
	b := sortedCopy(stream.Gaussian(3000, 0.5, 0.2, 3))
	sa := FromSortedWindow(a, eps)
	sb := FromSortedWindow(b, eps)
	m := Merge(sa, sb)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N != 5000 {
		t.Fatalf("merged N = %d", m.N)
	}
	ref := sortedCopy(append(append([]float32(nil), a...), b...))
	if got := m.TrueRankError(ref); got > m.Eps+1e-9 {
		t.Fatalf("merged rank error %v > eps %v", got, m.Eps)
	}
}

func TestMergeQuick(t *testing.T) {
	prop := func(rawA, rawB []int16) bool {
		if len(rawA) == 0 || len(rawB) == 0 {
			return true
		}
		a := make([]float32, len(rawA))
		for i, v := range rawA {
			a[i] = float32(v)
		}
		b := make([]float32, len(rawB))
		for i, v := range rawB {
			b[i] = float32(v)
		}
		cpusort.Quicksort(a)
		cpusort.Quicksort(b)
		const eps = 0.2
		m := Merge(FromSortedWindow(a, eps), FromSortedWindow(b, eps))
		if m.Validate() != nil {
			return false
		}
		ref := sortedCopy(append(append([]float32(nil), a...), b...))
		return m.TrueRankError(ref) <= m.Eps+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeWithEmpty(t *testing.T) {
	win := sortedCopy(stream.Uniform(100, 4))
	s := FromSortedWindow(win, 0.1)
	empty := &Summary[float32]{Eps: 0.05}
	m1 := Merge(s, empty)
	m2 := Merge(empty, s)
	if m1.N != 100 || m2.N != 100 {
		t.Fatal("merge with empty lost elements")
	}
	if m1.QueryRank(50) != s.QueryRank(50) {
		t.Fatal("merge with empty changed answers")
	}
}

func TestPruneBoundsSizeAndError(t *testing.T) {
	win := sortedCopy(stream.Uniform(10000, 5))
	s := FromSortedWindow(win, 0.002) // large summary
	b := 20
	p := s.Prune(b)
	if p.Size() > b+1 {
		t.Fatalf("pruned size %d > b+1 = %d", p.Size(), b+1)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	wantEps := s.Eps + 1/(2*float64(b))
	if math.Abs(p.Eps-wantEps) > 1e-12 {
		t.Fatalf("pruned eps = %v, want %v", p.Eps, wantEps)
	}
	if got := p.TrueRankError(win); got > p.Eps+1e-9 {
		t.Fatalf("pruned rank error %v > eps %v", got, p.Eps)
	}
}

func TestPrunePanicsOnBadBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Summary[float32]{}).Prune(0)
}

func TestQueryRankClamps(t *testing.T) {
	win := sortedCopy(stream.Uniform(100, 6))
	s := FromSortedWindow(win, 0.1)
	if s.QueryRank(-5) != s.QueryRank(1) {
		t.Fatal("low rank not clamped")
	}
	if s.QueryRank(1e9) != s.QueryRank(100) {
		t.Fatal("high rank not clamped")
	}
}

func TestQueryEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&Summary[float32]{}).QueryRank(1)
}

func TestQueryQuantile(t *testing.T) {
	win := sortedCopy(stream.Sorted(1000))
	s := FromSortedWindow(win, 0.01)
	med := s.Query(0.5)
	if med < 480 || med > 520 {
		t.Fatalf("median of 0..999 reported as %v", med)
	}
	if s.Query(0) != win[0] {
		t.Fatalf("phi=0 gave %v", s.Query(0))
	}
	if s.Query(1) < 990 {
		t.Fatalf("phi=1 gave %v", s.Query(1))
	}
}

func TestGKErrorBound(t *testing.T) {
	for _, eps := range []float64{0.01, 0.05} {
		for _, gen := range map[string][]float32{
			"uniform": stream.Uniform(20000, 7),
			"zipf":    stream.Zipf(20000, 1.1, 1000, 8),
			"sorted":  stream.Sorted(20000),
		} {
			g := NewGK[float32](eps)
			for _, v := range gen {
				g.Insert(v)
			}
			s := g.ToSummary()
			ref := sortedCopy(gen)
			if got := s.TrueRankError(ref); got > eps+1e-9 {
				t.Fatalf("eps=%v: GK[float32] rank error %v", eps, got)
			}
		}
	}
}

func TestGKSpaceSublinear(t *testing.T) {
	g := NewGK[float32](0.01)
	data := stream.Uniform(50000, 9)
	for _, v := range data {
		g.Insert(v)
	}
	if g.Size() > 2000 {
		t.Fatalf("GK[float32] size %d not sublinear (n=50000, eps=0.01)", g.Size())
	}
	if g.Count() != 50000 {
		t.Fatalf("Count = %d", g.Count())
	}
}

func TestGKQueryMedianAccuracy(t *testing.T) {
	g := NewGK[float32](0.01)
	for _, v := range stream.Sorted(10000) {
		g.Insert(v)
	}
	med := g.Query(0.5)
	if med < 4800 || med > 5200 {
		t.Fatalf("GK[float32] median = %v", med)
	}
}

func TestGKPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGK[float32](0) },
		func() { NewGK[float32](1) },
		func() { NewGK[float32](0.1).Query(0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestGKQuick(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 10 {
			return true
		}
		const eps = 0.1
		g := NewGK[float32](eps)
		data := make([]float32, len(raw))
		for i, v := range raw {
			data[i] = float32(v)
			g.Insert(float32(v))
		}
		s := g.ToSummary()
		return s.TrueRankError(sortedCopy(data)) <= eps+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	bad := []*Summary[float32]{
		{N: 10, Entries: []Entry[float32]{{V: 1, RMin: 0, RMax: 5}}},                           // rmin < 1
		{N: 10, Entries: []Entry[float32]{{V: 1, RMin: 2, RMax: 12}}},                          // rmax > N
		{N: 10, Entries: []Entry[float32]{{V: 1, RMin: 5, RMax: 3}}},                           // inverted
		{N: 10, Entries: []Entry[float32]{{V: 2, RMin: 1, RMax: 1}, {V: 1, RMin: 5, RMax: 5}}}, // unordered values
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Fatalf("bad summary %d validated", i)
		}
	}
}

func TestRepeatedMergeChainErrorStaysBounded(t *testing.T) {
	// Merge 8 windows pairwise like a sensor tree; error must stay at the
	// per-window eps since Merge does not inflate Eps.
	const eps = 0.05
	var all []float32
	var sums []*Summary[float32]
	for i := 0; i < 8; i++ {
		win := sortedCopy(stream.Uniform(1000, uint64(i+10)))
		all = append(all, win...)
		sums = append(sums, FromSortedWindow(win, eps))
	}
	for len(sums) > 1 {
		var next []*Summary[float32]
		for i := 0; i+1 < len(sums); i += 2 {
			next = append(next, Merge(sums[i], sums[i+1]))
		}
		if len(sums)%2 == 1 {
			next = append(next, sums[len(sums)-1])
		}
		sums = next
	}
	root := sums[0]
	if root.N != 8000 {
		t.Fatalf("root N = %d", root.N)
	}
	ref := sortedCopy(all)
	if got := root.TrueRankError(ref); got > root.Eps+1e-9 {
		t.Fatalf("tree-merged error %v > %v", got, root.Eps)
	}
	_ = sort.Float64s
}

func TestGKCompressEvery(t *testing.T) {
	data := stream.Uniform(20000, 33)
	lazy := NewGKCompressEvery[float32](0.01, 10000)
	eager := NewGKCompressEvery[float32](0.01, 10)
	for _, v := range data {
		lazy.Insert(v)
		eager.Insert(v)
	}
	if lazy.Size() <= eager.Size() {
		t.Fatalf("lazy compression should retain more tuples: lazy=%d eager=%d", lazy.Size(), eager.Size())
	}
	ref := sortedCopy(data)
	for _, g := range []*GK[float32]{lazy, eager} {
		if got := g.ToSummary().TrueRankError(ref); got > 0.01+1e-9 {
			t.Fatalf("rank error %v", got)
		}
	}
}

func TestGKCompressEveryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGKCompressEvery[float32](0.1, 0)
}
