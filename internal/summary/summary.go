// Package summary implements the epsilon-approximate quantile summaries the
// paper builds on (Greenwald and Khanna): the windowed summary of the
// sensor-network model — construct from a sorted window, merge, prune — and
// the classic streaming GK summary used as the single-element-insertion
// baseline. These are the tuples-with-rank-bounds structures of Section 3.2
// and Section 5.2. Summaries are comparator-based, so they are generic over
// the stack's ordered value types.
package summary

import (
	"fmt"
	"math"
	"sort"

	"gpustream/internal/sorter"
)

// Entry is one summary tuple: a value and bounds on its rank in the
// underlying (conceptual) sorted stream.
type Entry[T sorter.Value] struct {
	V          T
	RMin, RMax int64
}

// Summary is an eps-approximate quantile summary over N observed elements:
// a value-ascending list of entries with rank bounds such that any rank
// query can be answered within Eps*N.
type Summary[T sorter.Value] struct {
	Entries []Entry[T]
	N       int64
	Eps     float64
}

// FromSortedWindow builds an (eps/2)-approximate summary from an ascending
// window, the per-node construction of the paper's Section 5.2: select the
// elements at ranks 1, ceil(eps*W), 2*ceil(eps*W), ..., W, recording each
// element's exact rank. Consecutive selected ranks are at most eps*W apart,
// so any rank query lands within eps*W/2 of a kept element.
//
// It panics if window is not sorted.
func FromSortedWindow[T sorter.Value](window []T, eps float64) *Summary[T] {
	w := int64(len(window))
	if w == 0 {
		return &Summary[T]{Eps: eps / 2}
	}
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("summary: eps %v out of (0, 1]", eps))
	}
	step := int64(eps * float64(w))
	if step < 1 {
		step = 1
	}
	// Sized exactly for the selected ranks (1, step, 2*step, ..., w) so the
	// per-window construction is a single allocation on the ingestion path.
	s := &Summary[T]{N: w, Entries: make([]Entry[T], 0, w/step+2)}
	var prev T
	lastRank := int64(0)
	// Each kept element is one instance with an exact rank; duplicates of
	// the same value stay separate entries, preserving GK tuple semantics
	// (an entry's [RMin, RMax] is rank uncertainty, never multiplicity).
	add := func(rank int64) {
		if rank == lastRank {
			return
		}
		v := window[rank-1]
		if lastRank != 0 && v < prev {
			panic("summary: window not sorted")
		}
		lastRank = rank
		prev = v
		s.Entries = append(s.Entries, Entry[T]{V: v, RMin: rank, RMax: rank})
	}
	add(1)
	for r := step; r <= w; r += step {
		add(r)
	}
	add(w)
	s.Eps = float64(step) / (2 * float64(w))
	if half := eps / 2; s.Eps < half {
		s.Eps = half
	}
	return s
}

// Size reports the number of entries.
func (s *Summary[T]) Size() int { return len(s.Entries) }

// Merge combines two summaries over disjoint substreams into one over their
// union, using the rank-combination rules of Greenwald and Khanna's
// sensor-network algorithm: for an entry from A with value v, bracketed in B
// by predecessor p and successor q,
//
//	rmin'(v) = rminA(v) + rminB(p)        (0 if no predecessor)
//	rmax'(v) = rmaxA(v) + rmaxB(q) - 1    (rmaxA(v) + NB if no successor)
//
// The merged summary is max(epsA, epsB)-approximate over NA + NB elements.
func Merge[T sorter.Value](a, b *Summary[T]) *Summary[T] {
	return MergeInto(&Summary[T]{Entries: make([]Entry[T], 0, len(a.Entries)+len(b.Entries))}, a, b)
}

// MergeInto is Merge writing its result into dst, whose entry storage is
// reused across calls — the ingestion hot path holds one scratch summary
// per estimator so cascading bucket combines allocate nothing at steady
// state. dst must not alias a or b; any prior contents are discarded. A nil
// dst allocates a fresh summary. Returns dst.
func MergeInto[T sorter.Value](dst, a, b *Summary[T]) *Summary[T] {
	if dst == nil {
		dst = &Summary[T]{}
	}
	dst.Entries = dst.Entries[:0]
	if a.N == 0 {
		dst.N, dst.Eps = b.N, b.Eps
		dst.Entries = append(dst.Entries, b.Entries...)
		return dst
	}
	if b.N == 0 {
		dst.N, dst.Eps = a.N, a.Eps
		dst.Entries = append(dst.Entries, a.Entries...)
		return dst
	}
	out := dst
	out.N, out.Eps = a.N+b.N, math.Max(a.Eps, b.Eps)
	i, j := 0, 0
	for i < len(a.Entries) || j < len(b.Entries) {
		var e Entry[T]
		var other *Summary[T]
		var oi int
		if j >= len(b.Entries) || (i < len(a.Entries) && a.Entries[i].V <= b.Entries[j].V) {
			e, other, oi = a.Entries[i], b, j
			i++
		} else {
			e, other, oi = b.Entries[j], a, i
			j++
		}
		// other.Entries[oi-1] is the predecessor (last entry with value
		// <= e.V already consumed or smaller), other.Entries[oi] the
		// successor.
		var predRMin, succRMax int64
		if oi > 0 {
			predRMin = other.Entries[oi-1].RMin
		}
		if oi < len(other.Entries) {
			succRMax = other.Entries[oi].RMax - 1
		} else {
			succRMax = other.N
		}
		out.Entries = append(out.Entries, Entry[T]{
			V:    e.V,
			RMin: e.RMin + predRMin,
			RMax: e.RMax + succRMax,
		})
	}
	return out
}

func clone[T sorter.Value](s *Summary[T]) *Summary[T] {
	c := &Summary[T]{N: s.N, Eps: s.Eps}
	c.Entries = append([]Entry[T](nil), s.Entries...)
	return c
}

// Prune shrinks the summary to at most b+1 entries by querying the ranks
// 1, N/b, 2N/b, ..., N and keeping the selected entries with their original
// rank bounds. The pruned summary is (eps + 1/(2b))-approximate — the
// compress operation of the paper's Section 5.2.
func (s *Summary[T]) Prune(b int) *Summary[T] {
	if b <= 0 {
		panic("summary: Prune with non-positive budget")
	}
	if len(s.Entries) <= b+1 {
		out := clone(s)
		out.Eps = s.Eps + 1/(2*float64(b))
		return out
	}
	out := &Summary[T]{N: s.N, Eps: s.Eps + 1/(2*float64(b)), Entries: make([]Entry[T], 0, b+1)}
	// Grid ranks increase monotonically and entry rank bounds are
	// non-decreasing, so the best-scoring entry index is non-decreasing
	// too: a two-pointer sweep replaces b+1 linear scans (O(b + m) total).
	score := func(idx int, r int64) int64 {
		e := s.Entries[idx]
		sc := e.RMax - r
		if d := r - e.RMin; d > sc {
			sc = d
		}
		return sc
	}
	idx, lastIdx := 0, -1
	for i := 0; i <= b; i++ {
		r := int64(math.Ceil(float64(i) * float64(s.N) / float64(b)))
		if r < 1 {
			r = 1
		}
		if r > s.N {
			r = s.N
		}
		for idx+1 < len(s.Entries) && score(idx+1, r) <= score(idx, r) {
			idx++
		}
		if idx != lastIdx {
			out.Entries = append(out.Entries, s.Entries[idx])
			lastIdx = idx
		}
	}
	return out
}

// queryIndex returns the index of the entry answering rank r: the one
// minimizing max(r - RMin, RMax - r). Any value whose true rank lies within
// [RMin, RMax] then differs from r by at most that score, and the GK
// coverage invariant guarantees some entry scores <= Eps*N.
func (s *Summary[T]) queryIndex(r int64) int {
	best, bestScore := 0, int64(math.MaxInt64)
	for i, e := range s.Entries {
		score := e.RMax - r
		if d := r - e.RMin; d > score {
			score = d
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// QueryRank returns a value whose rank in the underlying stream is within
// Eps*N of r. r is clamped to [1, N]. Querying an empty summary panics.
func (s *Summary[T]) QueryRank(r int64) T {
	if len(s.Entries) == 0 {
		panic("summary: query on empty summary")
	}
	if r < 1 {
		r = 1
	}
	if r > s.N {
		r = s.N
	}
	return s.Entries[s.queryIndex(r)].V
}

// Query returns an Eps-approximate phi-quantile, phi in [0, 1].
func (s *Summary[T]) Query(phi float64) T {
	r := int64(math.Ceil(phi * float64(s.N)))
	return s.QueryRank(r)
}

// Validate checks structural invariants: ascending values, sane rank bounds.
func (s *Summary[T]) Validate() error {
	for i, e := range s.Entries {
		if e.RMin < 1 || e.RMax > s.N || e.RMin > e.RMax {
			return fmt.Errorf("summary: entry %d has bad ranks [%d,%d] with N=%d", i, e.RMin, e.RMax, s.N)
		}
		if i > 0 && e.V < s.Entries[i-1].V {
			return fmt.Errorf("summary: entries not value-ascending at %d", i)
		}
	}
	return nil
}

// TrueRankError computes, for validation in tests and experiments, the
// worst-case normalized rank error of the summary against the full sorted
// reference data: max over probe ranks r of dist(r, true rank range of
// QueryRank(r)) / N.
func (s *Summary[T]) TrueRankError(sortedRef []T) float64 {
	n := int64(len(sortedRef))
	if n == 0 || len(s.Entries) == 0 {
		return 0
	}
	worst := 0.0
	probes := int64(100)
	for p := int64(0); p <= probes; p++ {
		r := 1 + p*(n-1)/probes
		v := s.QueryRank(r)
		lo := int64(sort.Search(len(sortedRef), func(i int) bool { return sortedRef[i] >= v })) + 1
		hi := int64(sort.Search(len(sortedRef), func(i int) bool { return sortedRef[i] > v }))
		var d int64
		switch {
		case r < lo:
			d = lo - r
		case r > hi:
			d = r - hi
		}
		if e := float64(d) / float64(n); e > worst {
			worst = e
		}
	}
	return worst
}
