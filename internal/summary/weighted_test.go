package summary

import (
	"sort"
	"testing"
	"testing/quick"

	"gpustream/internal/stream"
)

// pairSet is a sortable (key, weight) sample.
type pairSet struct {
	xs []float32
	ys []float64
}

func randomPairs(n int, seed uint64) pairSet {
	r := stream.NewRNG(seed)
	p := pairSet{xs: make([]float32, n), ys: make([]float64, n)}
	for i := 0; i < n; i++ {
		p.xs[i] = float32(r.Float64() * 100)
		p.ys[i] = r.Float64() * 10
	}
	p.sort()
	return p
}

func (p *pairSet) sort() {
	idx := make([]int, len(p.xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p.xs[idx[a]] < p.xs[idx[b]] })
	xs := make([]float32, len(p.xs))
	ys := make([]float64, len(p.ys))
	for i, j := range idx {
		xs[i], ys[i] = p.xs[j], p.ys[j]
	}
	p.xs, p.ys = xs, ys
}

// trueCum computes the exact cumulative weight at t.
func (p *pairSet) trueCum(t float32) float64 {
	total := 0.0
	for i, x := range p.xs {
		if x <= t {
			total += p.ys[i]
		}
	}
	return total
}

func (p *pairSet) totalW() float64 {
	total := 0.0
	for _, y := range p.ys {
		total += y
	}
	return total
}

func (p *pairSet) maxW() float64 {
	m := 0.0
	for _, y := range p.ys {
		if y > m {
			m = y
		}
	}
	return m
}

func checkWeightedError(t *testing.T, w *Weighted, p pairSet, slackEps float64) {
	t.Helper()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bound := slackEps*p.totalW() + p.maxW() + 1e-6
	for i := 0; i <= 50; i++ {
		tt := float32(i) * 2
		got := w.CumWeight(tt)
		truth := p.trueCum(tt)
		if d := got - truth; d > bound || d < -bound {
			t.Fatalf("CumWeight(%v) = %v, truth %v, |err| > %v", tt, got, truth, bound)
		}
	}
}

func TestWeightedFromSortedPairs(t *testing.T) {
	p := randomPairs(5000, 1)
	w := WeightedFromSortedPairs(p.xs, p.ys, 0.02)
	checkWeightedError(t, w, p, 0.01)
	// Space proportional to 1/eps.
	if w.Size() > 2*50+4 {
		t.Fatalf("size %d exceeds ~1/eps budget", w.Size())
	}
}

func TestWeightedExactWhenAllKept(t *testing.T) {
	p := randomPairs(100, 2)
	w := WeightedFromSortedPairs(p.xs, p.ys, 1e-9)
	for i := 0; i <= 20; i++ {
		tt := float32(i) * 5
		if got, truth := w.CumWeight(tt), p.trueCum(tt); got < truth-p.maxW()-1e-6 || got > truth+p.maxW()+1e-6 {
			t.Fatalf("dense summary CumWeight(%v) = %v, truth %v", tt, got, truth)
		}
	}
}

func TestWeightedMerge(t *testing.T) {
	a := randomPairs(3000, 3)
	b := randomPairs(2000, 4)
	wa := WeightedFromSortedPairs(a.xs, a.ys, 0.02)
	wb := WeightedFromSortedPairs(b.xs, b.ys, 0.02)
	m := MergeWeighted(wa, wb)
	combined := pairSet{xs: append(append([]float32(nil), a.xs...), b.xs...),
		ys: append(append([]float64(nil), a.ys...), b.ys...)}
	combined.sort()
	checkWeightedError(t, m, combined, 0.02)
	if m.W != wa.W+wb.W {
		t.Fatalf("merged W = %v", m.W)
	}
}

func TestWeightedMergeQuick(t *testing.T) {
	prop := func(rawA, rawB []uint8) bool {
		if len(rawA) == 0 || len(rawB) == 0 {
			return true
		}
		mk := func(raw []uint8) pairSet {
			p := pairSet{}
			for i, v := range raw {
				p.xs = append(p.xs, float32(v%100))
				p.ys = append(p.ys, float64(raw[(i+1)%len(raw)]%10)+1)
			}
			p.sort()
			return p
		}
		a, b := mk(rawA), mk(rawB)
		m := MergeWeighted(
			WeightedFromSortedPairs(a.xs, a.ys, 0.1),
			WeightedFromSortedPairs(b.xs, b.ys, 0.1),
		)
		if m.Validate() != nil {
			return false
		}
		combined := pairSet{xs: append(append([]float32(nil), a.xs...), b.xs...),
			ys: append(append([]float64(nil), a.ys...), b.ys...)}
		combined.sort()
		bound := 0.1*combined.totalW() + combined.maxW() + 1e-6
		for i := 0; i <= 20; i++ {
			tt := float32(i * 5)
			if d := m.CumWeight(tt) - combined.trueCum(tt); d > bound || d < -bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedPrune(t *testing.T) {
	p := randomPairs(10000, 5)
	w := WeightedFromSortedPairs(p.xs, p.ys, 0.002)
	pr := w.Prune(25)
	if pr.Size() > 26 {
		t.Fatalf("pruned size %d", pr.Size())
	}
	checkWeightedError(t, pr, p, pr.Eps)
}

func TestWeightedQueryWeight(t *testing.T) {
	p := randomPairs(5000, 6)
	w := WeightedFromSortedPairs(p.xs, p.ys, 0.01)
	half := w.W / 2
	v := w.QueryWeight(half)
	truth := p.trueCum(v)
	if d := truth - half; d > 0.02*w.W+p.maxW() || d < -(0.02*w.W+p.maxW()) {
		t.Fatalf("weighted median key %v has cum %v, want ~%v", v, truth, half)
	}
	// Clamping.
	if w.QueryWeight(-5) != w.QueryWeight(0) {
		t.Fatal("negative target not clamped")
	}
}

func TestWeightedEmptyAndPanics(t *testing.T) {
	w := WeightedFromSortedPairs(nil, nil, 0.1)
	if w.CumWeight(5) != 0 {
		t.Fatal("empty CumWeight != 0")
	}
	for _, fn := range []func(){
		func() { WeightedFromSortedPairs([]float32{1}, nil, 0.1) },
		func() { WeightedFromSortedPairs([]float32{1}, []float64{1}, 0) },
		func() { WeightedFromSortedPairs([]float32{2, 1}, []float64{1, 1}, 0.1) },
		func() { WeightedFromSortedPairs([]float32{1}, []float64{-1}, 0.1) },
		func() { w.QueryWeight(1) },
		func() { w.Prune(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestWeightedUniformWeightsMatchRanks(t *testing.T) {
	// With unit weights the weighted summary must answer like the rank
	// summary: cum weight of x <= t equals the count of elements <= t.
	data := sortedCopy(stream.Uniform(2000, 7))
	ys := make([]float64, len(data))
	for i := range ys {
		ys[i] = 1
	}
	w := WeightedFromSortedPairs(data, ys, 0.02)
	for i := 0; i <= 10; i++ {
		tt := float32(i) / 10
		truth := float64(sort.Search(len(data), func(j int) bool { return data[j] > tt }))
		if d := w.CumWeight(tt) - truth; d > 0.02*2000+1 || d < -(0.02*2000+1) {
			t.Fatalf("unit-weight CumWeight(%v) = %v, truth %v", tt, w.CumWeight(tt), truth)
		}
	}
}
