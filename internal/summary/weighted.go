package summary

import (
	"fmt"
	"math"
)

// WEntry is one tuple of a weighted summary: a key value, the entry's own
// weight, and bounds on its cumulative weight (the total weight of all
// elements with keys at or below it).
type WEntry struct {
	V          float32
	Wt         float64
	WMin, WMax float64
}

// Weighted is the weight-generalized quantile summary that powers
// correlated-sum aggregate queries, the second extension the paper names in
// Section 1.2: where the plain Summary bounds an element's rank (count of
// elements below it), Weighted bounds its cumulative weight, so
// "SUM(y) WHERE x <= t" becomes the weighted analog of a rank query. All
// the GK machinery — build from a sorted window, merge, prune — carries
// over with counts replaced by weights.
type Weighted struct {
	Entries []WEntry
	W       float64 // total weight
	MaxWt   float64 // largest single weight seen (enters the error bound)
	Eps     float64 // relative error in units of W
}

// WeightedFromSortedPairs builds an (eps/2)-approximate weighted summary
// from keys xs (ascending) with non-negative weights ys: checkpoints are
// kept every eps*W of cumulative weight. Any cumulative-weight query is
// answered within eps/2*W + MaxWt.
//
// It panics if the inputs differ in length, xs is unsorted, or any weight
// is negative.
func WeightedFromSortedPairs(xs []float32, ys []float64, eps float64) *Weighted {
	if len(xs) != len(ys) {
		panic("summary: weighted inputs differ in length")
	}
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("summary: eps %v out of (0, 1]", eps))
	}
	w := &Weighted{}
	for i, y := range ys {
		if y < 0 {
			panic("summary: negative weight")
		}
		if i > 0 && xs[i] < xs[i-1] {
			panic("summary: weighted keys not sorted")
		}
		w.W += y
		if y > w.MaxWt {
			w.MaxWt = y
		}
	}
	w.Eps = eps / 2
	if len(xs) == 0 {
		return w
	}
	step := eps * w.W
	cum := 0.0
	nextMark := 0.0
	for i, y := range ys {
		prev := cum
		cum += y
		last := i == len(xs)-1
		if cum >= nextMark || last || i == 0 {
			w.Entries = append(w.Entries, WEntry{V: xs[i], Wt: y, WMin: prev, WMax: cum})
			for nextMark <= cum {
				nextMark += step
				if step == 0 {
					break
				}
			}
		}
	}
	return w
}

// Size reports the number of entries.
func (w *Weighted) Size() int { return len(w.Entries) }

// MergeWeighted combines two weighted summaries over disjoint substreams,
// the weight analog of Merge: for an entry from A bracketed in B by
// predecessor p and successor q,
//
//	wmin'(v) = wminA(v) + wmaxB(p)           (0 if no predecessor)
//	wmax'(v) = wmaxA(v) + wmaxB(q) - wt(q)   (wmaxA(v) + WB if no successor)
func MergeWeighted(a, b *Weighted) *Weighted {
	if a.W == 0 && len(a.Entries) == 0 {
		return cloneWeighted(b)
	}
	if b.W == 0 && len(b.Entries) == 0 {
		return cloneWeighted(a)
	}
	out := &Weighted{W: a.W + b.W, Eps: math.Max(a.Eps, b.Eps), MaxWt: math.Max(a.MaxWt, b.MaxWt)}
	out.Entries = make([]WEntry, 0, len(a.Entries)+len(b.Entries))
	i, j := 0, 0
	for i < len(a.Entries) || j < len(b.Entries) {
		var e WEntry
		var other *Weighted
		var oi int
		if j >= len(b.Entries) || (i < len(a.Entries) && a.Entries[i].V <= b.Entries[j].V) {
			e, other, oi = a.Entries[i], b, j
			i++
		} else {
			e, other, oi = b.Entries[j], a, i
			j++
		}
		// predLower under-approximates the other summary's weight at or
		// below e.V; succUpper over-approximates its weight strictly
		// below e.V's successor.
		var predLower, succUpper float64
		if oi > 0 {
			predLower = other.Entries[oi-1].WMin
		}
		if oi < len(other.Entries) {
			succUpper = other.Entries[oi].WMax - other.Entries[oi].Wt
			if succUpper < predLower {
				succUpper = predLower
			}
		} else {
			succUpper = other.W
		}
		out.Entries = append(out.Entries, WEntry{
			V:    e.V,
			Wt:   e.Wt,
			WMin: e.WMin + predLower,
			WMax: e.WMax + succUpper,
		})
	}
	return out
}

func cloneWeighted(w *Weighted) *Weighted {
	c := &Weighted{W: w.W, Eps: w.Eps, MaxWt: w.MaxWt}
	c.Entries = append([]WEntry(nil), w.Entries...)
	return c
}

// Prune shrinks the summary to at most b+1 entries, adding 1/(2b) to Eps,
// exactly as Summary.Prune does for ranks.
func (w *Weighted) Prune(b int) *Weighted {
	if b <= 0 {
		panic("summary: Prune with non-positive budget")
	}
	if len(w.Entries) <= b+1 {
		out := cloneWeighted(w)
		out.Eps = w.Eps + 1/(2*float64(b))
		return out
	}
	out := &Weighted{W: w.W, Eps: w.Eps + 1/(2*float64(b)), MaxWt: w.MaxWt}
	score := func(idx int, t float64) float64 {
		e := w.Entries[idx]
		sc := e.WMax - t
		if d := t - e.WMin; d > sc {
			sc = d
		}
		return sc
	}
	idx, lastIdx := 0, -1
	for i := 0; i <= b; i++ {
		t := float64(i) * w.W / float64(b)
		for idx+1 < len(w.Entries) && score(idx+1, t) <= score(idx, t) {
			idx++
		}
		if idx != lastIdx {
			out.Entries = append(out.Entries, w.Entries[idx])
			lastIdx = idx
		}
	}
	return out
}

// CumWeight estimates the total weight of elements with keys <= t, within
// Eps*W + MaxWt of the truth.
func (w *Weighted) CumWeight(t float32) float64 {
	if len(w.Entries) == 0 {
		return 0
	}
	// Last entry with V <= t.
	lo, hi := 0, len(w.Entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if w.Entries[mid].V <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		// The smallest key is always checkpointed, so nothing lies below.
		return 0
	}
	if lo == len(w.Entries) {
		// The largest key is always checkpointed, so everything lies at
		// or below t.
		return w.W
	}
	e := w.Entries[lo-1]
	// cum(t) >= cum(e.V) >= e.WMin + e.Wt, and cum(t) is at most the
	// weight strictly below the next entry, bounded by its WMax - Wt.
	lower := e.WMin + e.Wt
	upper := w.W
	if lo < len(w.Entries) {
		upper = w.Entries[lo].WMax - w.Entries[lo].Wt
	}
	if upper < lower {
		upper = lower
	}
	return (lower + upper) / 2
}

// QueryWeight returns a key whose cumulative weight is within
// Eps*W + MaxWt of target — the weighted quantile query.
func (w *Weighted) QueryWeight(target float64) float32 {
	if len(w.Entries) == 0 {
		panic("summary: weighted query on empty summary")
	}
	if target < 0 {
		target = 0
	}
	if target > w.W {
		target = w.W
	}
	best, bestScore := 0, math.Inf(1)
	for i, e := range w.Entries {
		sc := e.WMax - target
		if d := target - e.WMin; d > sc {
			sc = d
		}
		if sc < bestScore {
			best, bestScore = i, sc
		}
	}
	return w.Entries[best].V
}

// Validate checks structural invariants.
func (w *Weighted) Validate() error {
	for i, e := range w.Entries {
		if e.WMin < 0 || e.WMax > w.W+1e-6 || e.WMin > e.WMax+1e-9 {
			return fmt.Errorf("summary: weighted entry %d has bad bounds [%v,%v] with W=%v", i, e.WMin, e.WMax, w.W)
		}
		if i > 0 && e.V < w.Entries[i-1].V {
			return fmt.Errorf("summary: weighted entries not key-ascending at %d", i)
		}
	}
	return nil
}
