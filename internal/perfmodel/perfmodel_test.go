package perfmodel

import (
	"testing"
	"time"

	"gpustream/internal/gpusort"
	"gpustream/internal/pipeline"
	"gpustream/internal/stream"
)

func TestClosedFormMatchesSimPBSN(t *testing.T) {
	for _, n := range []int{2, 5, 100, 4096, 10000, 65536} {
		s := gpusort.NewSorter[float32]()
		s.Sort(stream.Uniform(n, uint64(n)))
		got := s.LastStats().GPU
		want := PBSNStats(n)
		if got != want {
			t.Fatalf("n=%d: sim counters %+v != closed form %+v", n, got, want)
		}
	}
}

func TestClosedFormMatchesSimBitonic(t *testing.T) {
	for _, n := range []int{2, 100, 2048, 10000} {
		s := gpusort.NewBitonicSorter[float32]()
		s.Sort(stream.Uniform(n, uint64(n)))
		got := s.LastStats().GPU
		want := BitonicStats(n)
		if got != want {
			t.Fatalf("n=%d: sim counters %+v != closed form %+v", n, got, want)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	m := Default()

	// Paper Section 4.5: "around 3 times slower than optimized CPU-based
	// Quicksort for small values of n (n < 16K)".
	small := 16 << 10
	gpuSmall := m.PBSNSortTime(small).Total()
	cpuSmall := m.QuicksortTime(small, IntelHT)
	if ratio := float64(gpuSmall) / float64(cpuSmall); ratio < 1.5 || ratio > 6 {
		t.Fatalf("small-n GPU/CPU ratio = %.2f, want ~3x slower", ratio)
	}

	// Figure 3: at 8M the GPU sort is comparable to (slightly ahead of)
	// the Intel hyper-threaded quicksort.
	big := 8 << 20
	gpuBig := m.PBSNSortTime(big).Total()
	cpuBig := m.QuicksortTime(big, IntelHT)
	if ratio := float64(cpuBig) / float64(gpuBig); ratio < 0.8 || ratio > 2 {
		t.Fatalf("8M CPU/GPU ratio = %.2f, want comparable (~1x)", ratio)
	}

	// MSVC build is clearly slower than the Intel build.
	if m.QuicksortTime(big, MSVC) <= cpuBig {
		t.Fatal("MSVC quicksort should be slower than Intel's")
	}

	// Section 4.5: PBSN is "nearly an order of magnitude faster" than the
	// prior GPU bitonic sort.
	bit := m.BitonicSortTime(big).Total()
	if ratio := float64(bit) / float64(gpuBig); ratio < 5 || ratio > 20 {
		t.Fatalf("bitonic/PBSN ratio = %.2f, want ~10x", ratio)
	}
}

func TestFigure4Shape(t *testing.T) {
	m := Default()
	// "The data transfer times are not significant in comparison to the
	// time spent in performing comparisons and sorting" (Figure 4).
	for _, n := range []int{1 << 20, 4 << 20, 8 << 20} {
		b := m.PBSNSortTime(n)
		if b.Transfer*3 > b.Compute {
			t.Fatalf("n=%d: transfer %v not small vs compute %v", n, b.Transfer, b.Compute)
		}
	}
	// O(n log^2 n) scaling: estimating 1M from the 8M anchor must land
	// within a few percent of the direct model (paper: "within a few
	// milliseconds of accuracy").
	anchor := m.PBSNSortTime(8 << 20).Compute
	nBig, nSmall := float64(8<<20), float64(1<<20)
	lg := func(x float64) float64 {
		l := 0.0
		for v := 1.0; v < x/4; v *= 2 {
			l++
		}
		return l
	}
	est := time.Duration(float64(anchor) * (nSmall * lg(nSmall) * lg(nSmall)) / (nBig * lg(nBig) * lg(nBig)))
	direct := m.PBSNSortTime(1 << 20).Compute
	ratio := float64(est) / float64(direct)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("scaling estimate off: est=%v direct=%v", est, direct)
	}
}

func TestMonotoneInN(t *testing.T) {
	m := Default()
	prev := time.Duration(0)
	for n := 1 << 12; n <= 1<<23; n <<= 1 {
		cur := m.PBSNSortTime(n).Total()
		if cur <= prev {
			t.Fatalf("PBSN time not increasing at n=%d", n)
		}
		prev = cur
	}
}

func TestBusTime(t *testing.T) {
	m := Default()
	s := PBSNStats(1 << 20)
	bt := m.BusTime(s)
	// 1M values / 4 channels = 256K texels * 16 B = 4 MB each way at
	// 800 MB/s -> ~10 ms plus per-transfer latency.
	if bt < 9*time.Millisecond || bt > 12*time.Millisecond {
		t.Fatalf("BusTime = %v, want ~10ms", bt)
	}
}

func TestPipelineShapeFigure6(t *testing.T) {
	m := Default()
	// A typical frequency run: 100M values, eps = 1e-5 -> windows of 100K.
	c := pipeline.Stats{
		Windows:      1000,
		SortedValues: 100e6,
		MergeOps:     100e6,
		CompressOps:  10e6,
	}
	for _, backend := range []Backend{BackendCPU, BackendGPU} {
		b := m.PipelineTime(c, backend)
		// Section 3.2 / Figure 6: sorting takes 70-95% of the time.
		if share := b.SortShare(); share < 0.70 || share > 0.98 {
			t.Fatalf("%v sort share = %.2f, want within the paper's 70-95%%", backend, share)
		}
	}
}

func TestPipelineGPUWinsAtLargeWindows(t *testing.T) {
	m := Default()
	mk := func(w int) pipeline.Stats {
		total := int64(16 << 20) // multiple of both window sizes below
		return pipeline.Stats{
			Windows:      total / int64(w),
			SortedValues: total,
			MergeOps:     total,
			CompressOps:  total / 10,
		}
	}
	// Figure 5: GPU better for large windows, worse for small ones.
	largeGPU := m.PipelineTime(mk(1<<20), BackendGPU).Total()
	largeCPU := m.PipelineTime(mk(1<<20), BackendCPU).Total()
	if largeGPU >= largeCPU {
		t.Fatalf("large windows: GPU %v not faster than CPU %v", largeGPU, largeCPU)
	}
	smallGPU := m.PipelineTime(mk(256), BackendGPU).Total()
	smallCPU := m.PipelineTime(mk(256), BackendCPU).Total()
	if smallGPU <= smallCPU {
		t.Fatalf("small windows: GPU %v should be slower than CPU %v", smallGPU, smallCPU)
	}
}

func TestVariantAndBackendStrings(t *testing.T) {
	if IntelHT.String() != "cpu-intel-ht" || MSVC.String() != "cpu-msvc" {
		t.Fatal("CPUVariant strings")
	}
	if BackendGPU.String() != "gpu" || BackendCPU.String() != "cpu" {
		t.Fatal("Backend strings")
	}
}

func TestDegenerateInputs(t *testing.T) {
	m := Default()
	if m.PBSNSortTime(0).Total() != 0 || m.PBSNSortTime(1).Total() != 0 {
		t.Fatal("trivial sorts should cost nothing")
	}
	if m.QuicksortTime(1, IntelHT) != 0 {
		t.Fatal("trivial quicksort should cost nothing")
	}
	if m.BitonicSortTime(1).Total() != 0 {
		t.Fatal("trivial bitonic should cost nothing")
	}
	var zero PipelineBreakdown
	if zero.SortShare() != 0 {
		t.Fatal("zero breakdown SortShare should be 0")
	}
}

func TestProjectionWidensGap(t *testing.T) {
	// Section 4.5: the GPU/CPU gap should widen on future generations.
	base := Default()
	n := 8 << 20
	ratio := func(m Model) float64 {
		return float64(m.QuicksortTime(n, IntelHT)) / float64(m.PBSNSortTime(n).Total())
	}
	r0 := ratio(base)
	r2 := ratio(base.Project(2, PaperGrowthRates()))
	r4 := ratio(base.Project(4, PaperGrowthRates()))
	if !(r4 > r2 && r2 > r0) {
		t.Fatalf("gap not widening: %v, %v, %v", r0, r2, r4)
	}
	// After 4 years at 2x vs 1.5x the compute ratio alone grows (2/1.5)^4 ~ 3.2x.
	if r4 < 2*r0 {
		t.Fatalf("4-year projection ratio %v too small vs base %v", r4, r0)
	}
}

func TestProjectionZeroYearsIdentity(t *testing.T) {
	base := Default()
	p := base.Project(0, PaperGrowthRates())
	if p.GPU.CoreClockHz != base.GPU.CoreClockHz || p.CPU.ClockHz != base.CPU.ClockHz {
		t.Fatal("zero-year projection changed the model")
	}
}
