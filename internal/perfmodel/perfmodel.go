// Package perfmodel converts the exact operation counts produced by the GPU
// simulator and the instrumented stream-mining pipelines into modeled wall
// time on the paper's 2004 testbed: an NVIDIA GeForce 6800 Ultra GPU, an AGP
// 8X bus, and a 3.4 GHz Pentium IV CPU.
//
// Every constant below is either stated in the paper or derived from a claim
// it makes:
//
//   - 400 MHz GPU core clock, 1.2 GHz memory clock, 35.2 GB/s video memory
//     bandwidth, 16 fragment pipes each with 4-wide vector units (Section 3.3);
//   - 6-7 GPU clock cycles per blend operation and >= 53 fragment-program
//     instructions per pixel for the prior bitonic sort (Section 4.5);
//   - ~800 MB/s effective AGP 8X transfer rate (Section 4.1);
//   - a fixed per-sort setup overhead that makes the GPU ~3x slower than the
//     CPU below n ~ 16K (Section 4.5);
//   - Pentium IV quicksort cost per comparison calibrated so the Intel
//     hyper-threaded quicksort is comparable to the GPU sort at n = 8M
//     (Figure 3), with the MSVC build ~2x slower (Figure 3).
//
// Absolute values are a model, not a measurement; the figures they reproduce
// should be read for shape (who wins, by what factor, where the crossover
// falls), exactly as EXPERIMENTS.md does.
package perfmodel

import (
	"time"

	"gpustream/internal/gpu"
)

// GPUSpec describes the modeled graphics processor.
type GPUSpec struct {
	CoreClockHz      float64 // fragment-pipeline clock
	MemBandwidth     float64 // video memory bandwidth, bytes/sec
	Pipes            int     // parallel fragment processors
	CyclesPerBlend   float64 // core cycles per 4-wide blend operation
	BytesPerFragment float64 // effective video-memory traffic per blended fragment
	SetupOverhead    time.Duration
}

// GeForce6800Ultra returns the spec of the paper's GPU.
func GeForce6800Ultra() GPUSpec {
	return GPUSpec{
		CoreClockHz:    400e6,
		MemBandwidth:   35.2e9,
		Pipes:          16,
		CyclesPerBlend: 6.5,
		// 16 B texel fetch + framebuffer read-modify-write, discounted
		// for the texture caches the paper credits with saving bandwidth.
		BytesPerFragment: 32,
		SetupOverhead:    2500 * time.Microsecond,
	}
}

// BusSpec describes the CPU<->GPU interconnect.
type BusSpec struct {
	BytesPerSec float64
	PerTransfer time.Duration // fixed latency per transfer
}

// AGP8X returns the paper's bus: ~800 MB/s effective out of the 2.1 GB/s
// theoretical peak (Section 4.1).
func AGP8X() BusSpec {
	return BusSpec{BytesPerSec: 800e6, PerTransfer: 50 * time.Microsecond}
}

// CPUSpec describes the modeled host processor.
type CPUSpec struct {
	ClockHz float64
	// CyclesPerCmp is the effective cost of one quicksort comparison on
	// the Intel hyper-threaded build, amortizing branch mispredicts (17
	// cycles each, Section 3.2) and cache misses.
	CyclesPerCmp float64
	// MSVCFactor scales CyclesPerCmp for the plain MSVC qsort build.
	MSVCFactor float64
	// MergeCyclesPerCmp is the cost of one comparison in the streaming
	// 4-way merge, which is branch-predictable and cache-friendly.
	MergeCyclesPerCmp float64
	// SummaryMergeCycles is the per-element cost of merging histogram
	// entries into an eps-approximate summary.
	SummaryMergeCycles float64
	// CompressCycles is the per-element cost of a compress scan.
	CompressCycles float64
}

// PentiumIV34 returns the spec of the paper's 3.4 GHz CPU.
func PentiumIV34() CPUSpec {
	return CPUSpec{
		ClockHz:            3.4e9,
		CyclesPerCmp:       14,
		MSVCFactor:         2.0,
		MergeCyclesPerCmp:  6,
		SummaryMergeCycles: 40,
		CompressCycles:     12,
	}
}

// Model bundles the three component specs.
type Model struct {
	GPU GPUSpec
	Bus BusSpec
	CPU CPUSpec
}

// Default returns the paper's testbed model.
func Default() Model {
	return Model{GPU: GeForce6800Ultra(), Bus: AGP8X(), CPU: PentiumIV34()}
}

// secondsToDuration converts float seconds, saturating at the extremes.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// GPUCompute converts simulator counters to GPU execution time: the maximum
// of the compute-bound estimate (blend cycles and program instructions
// spread over the fragment pipes) and the memory-bound estimate (fragment
// traffic over the video-memory bandwidth).
func (m Model) GPUCompute(s gpu.Stats) time.Duration {
	blendCycles := float64(s.BlendOps) * m.GPU.CyclesPerBlend
	instrCycles := float64(s.ProgramInstr)
	compute := (blendCycles + instrCycles) / float64(m.GPU.Pipes) / m.GPU.CoreClockHz
	memBytes := float64(s.Fragments) * m.GPU.BytesPerFragment
	mem := memBytes / m.GPU.MemBandwidth
	if mem > compute {
		compute = mem
	}
	return secondsToDuration(compute)
}

// BusTime converts simulator counters to CPU<->GPU transfer time.
func (m Model) BusTime(s gpu.Stats) time.Duration {
	t := secondsToDuration(float64(s.BytesUp+s.BytesDown) / m.Bus.BytesPerSec)
	return t + time.Duration(s.Transfers)*m.Bus.PerTransfer
}

// MergeTime models the CPU-side k-way merge of channel-sorted runs.
func (m Model) MergeTime(cmps int64) time.Duration {
	return secondsToDuration(float64(cmps) * m.CPU.MergeCyclesPerCmp / m.CPU.ClockHz)
}

// SortBreakdown is the modeled cost of one GPU sort, the decomposition
// Figure 4 plots.
type SortBreakdown struct {
	Compute  time.Duration // GPU rasterization/blending
	Transfer time.Duration // bus traffic both ways
	Setup    time.Duration // fixed invocation overhead
	Merge    time.Duration // CPU channel merge
}

// Total sums the components.
func (b SortBreakdown) Total() time.Duration {
	return b.Compute + b.Transfer + b.Setup + b.Merge
}

// GPUSortFromStats models a completed simulated sort from its exact
// counters.
func (m Model) GPUSortFromStats(s gpu.Stats, mergeCmps int64) SortBreakdown {
	return SortBreakdown{
		Compute:  m.GPUCompute(s),
		Transfer: m.BusTime(s),
		Setup:    m.GPU.SetupOverhead,
		Merge:    m.MergeTime(mergeCmps),
	}
}
