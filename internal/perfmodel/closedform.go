package perfmodel

import (
	"math"
	"time"

	"gpustream/internal/gpu"
	"gpustream/internal/pipeline"
	"gpustream/internal/samplesort"
)

// Closed-form cost formulas. They predict the same quantities the simulator
// counts, without running it, so the figure harness can sweep to the paper's
// full 8M-element and 100M-value scales quickly. TestClosedFormMatchesSim
// verifies the formulas agree exactly with the simulator's counters.

// pbsnChannels is the channel packing of the paper's sorter.
const pbsnChannels = 4

// bitonicPackedChannels mirrors gpusort's bitonic baseline packing.
const bitonicPackedChannels = 2

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// texelsFor reproduces the sorter's texture sizing: per-channel count padded
// to a power-of-two W*H product.
func texelsFor(n, channels int) int {
	per := (n + channels - 1) / channels
	w, h := gpu.TextureDims(per)
	return w * h
}

// PBSNStats predicts the simulator counters for sorting n values with the
// paper's 4-channel PBSN sorter.
func PBSNStats(n int) gpu.Stats {
	if n <= 1 {
		return gpu.Stats{}
	}
	per := texelsFor(n, pbsnChannels)
	L := log2ceil(per)
	steps := int64(L) * int64(L)
	texels := int64(per)
	frag := texels * steps
	var drawCalls int64 = 1 // the initial Copy
	// Per step: 2 quads per block when blocks span rows, 2 per row block
	// otherwise. Count them exactly as SortStep issues them.
	w, _ := gpu.TextureDims((n + pbsnChannels - 1) / pbsnChannels)
	for s := 0; s < L; s++ {
		for b := L; b >= 1; b-- {
			B := 1 << b
			if B <= w {
				drawCalls += 2 * int64(w/B)
			} else {
				drawCalls += 2 * int64(per/B)
			}
		}
	}
	bytes := int64(per) * gpu.Channels * 4
	return gpu.Stats{
		DrawCalls:    drawCalls,
		Fragments:    frag + texels, // + initial Copy pass
		BlendOps:     frag,
		TexelFetches: frag + texels,
		BytesUp:      bytes,
		BytesDown:    bytes,
		Transfers:    2,
	}
}

// BitonicStats predicts the simulator counters for the prior-work GPU
// bitonic sorter on n values (2-channel packing, one fragment pass per
// stage, 53 instructions per fragment).
func BitonicStats(n int) gpu.Stats {
	if n <= 1 {
		return gpu.Stats{}
	}
	per := texelsFor(n, bitonicPackedChannels)
	L := log2ceil(per)
	stages := int64(L) * int64(L+1) / 2
	frag := int64(per) * stages
	bytes := int64(per) * gpu.Channels * 4
	return gpu.Stats{
		Passes:       stages,
		Fragments:    frag,
		ProgramInstr: frag * 53,
		TexelFetches: frag * 2,
		BytesUp:      bytes,
		BytesDown:    bytes,
		Transfers:    2,
	}
}

// PBSNSortTime models a full GPU PBSN sort of n values, including transfer,
// setup and the CPU channel merge (2n comparisons across two merge levels).
func (m Model) PBSNSortTime(n int) SortBreakdown {
	if n <= 1 {
		return SortBreakdown{}
	}
	return m.GPUSortFromStats(PBSNStats(n), int64(2*n))
}

// BitonicSortTime models a full prior-work GPU bitonic sort of n values.
func (m Model) BitonicSortTime(n int) SortBreakdown {
	if n <= 1 {
		return SortBreakdown{}
	}
	return m.GPUSortFromStats(BitonicStats(n), int64(n))
}

// CPUVariant selects a CPU quicksort build.
type CPUVariant int

const (
	// IntelHT is the Intel-compiled hyper-threaded quicksort.
	IntelHT CPUVariant = iota
	// MSVC is the plain qsort build.
	MSVC
)

// String implements fmt.Stringer.
func (v CPUVariant) String() string {
	if v == MSVC {
		return "cpu-msvc"
	}
	return "cpu-intel-ht"
}

// QuicksortTime models sorting n uniform values on the Pentium IV:
// ~1.386 n log2 n expected comparisons at the calibrated per-comparison
// cost.
func (m Model) QuicksortTime(n int, v CPUVariant) time.Duration {
	if n <= 1 {
		return 0
	}
	cmps := 1.386 * float64(n) * math.Log2(float64(n))
	cyc := cmps * m.CPU.CyclesPerCmp
	if v == MSVC {
		cyc *= m.CPU.MSVCFactor
	}
	return secondsToDuration(cyc / m.CPU.ClockHz)
}

// SampleSortTime models the deterministic sample sort of n values on the
// Pentium IV: the splitter-sample quicksort, the fixed-depth branchless
// classification (exactly n·log2 k comparisons), and the per-bucket
// quicksorts under the balanced-bucket assumption (k buckets of n/k values
// each), all at the calibrated Intel-build comparison cost. The total is
// O(n log n) against PBSN's O(n log² n) comparator count, so this curve
// undercuts PBSNSortTime at large windows — the crossover the adaptive
// controller uses as its prior before live measurements arrive.
func (m Model) SampleSortTime(n int) time.Duration {
	if n <= 1 {
		return 0
	}
	cmps := 1.386 * float64(n) * math.Log2(float64(n))
	if k := samplesort.Buckets(n); k >= 2 {
		sample := float64(k * samplesort.Oversample)
		cmps = 1.386*sample*math.Log2(sample) +
			float64(n)*math.Log2(float64(k)) +
			1.386*float64(n)*math.Log2(float64(n)/float64(k))
	}
	return secondsToDuration(cmps * m.CPU.CyclesPerCmp / m.CPU.ClockHz)
}

// Backend selects how window sorting is costed in PipelineTime.
type Backend int

const (
	// BackendGPU sorts windows with the GPU PBSN sorter.
	BackendGPU Backend = iota
	// BackendCPU sorts windows with the Intel quicksort.
	BackendCPU
	// BackendSampleSort sorts windows with the deterministic CPU sample
	// sort (splitter selection, scatter, per-bucket quicksort).
	BackendSampleSort
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendCPU:
		return "cpu"
	case BackendSampleSort:
		return "samplesort"
	default:
		return "gpu"
	}
}

// PipelineBreakdown is the modeled cost of a summary-construction pipeline,
// decomposed into the paper's three operations (Figure 6).
type PipelineBreakdown struct {
	Sort     time.Duration
	Merge    time.Duration
	Compress time.Duration
}

// Total sums the components.
func (b PipelineBreakdown) Total() time.Duration { return b.Sort + b.Merge + b.Compress }

// SortShare reports the fraction of total time spent sorting.
func (b PipelineBreakdown) SortShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Sort) / float64(t)
}

// OverlappedBreakdown is the modeled cost of the staged co-processing
// pipeline (the paper's execution model and the async executor's): the GPU
// sorts window i while the CPU merges and compresses window i-1, so per
// steady-state window only the slower stage contributes to the makespan. For
// a two-stage pipeline over W windows with per-window stage times s and m,
// the makespan is s + (W-1)*max(s,m) + m = max(S, M+C) + min(s, m): the
// totals of the dominant stage, plus one exposure of the non-dominant stage
// while the pipeline fills (or drains). Startup is that exposed fill cost.
type OverlappedBreakdown struct {
	PipelineBreakdown
	Startup time.Duration
}

// Total is the overlapped makespan: max(Sort, Merge+Compress) + Startup.
// Compare with the embedded PipelineBreakdown's additive Total (promoted
// methods are shadowed here) to see what co-processing hides.
func (b OverlappedBreakdown) Total() time.Duration {
	t := b.Sort
	if mc := b.Merge + b.Compress; mc > t {
		t = mc
	}
	return t + b.Startup
}

// Hidden reports the modeled time co-processing removes from the additive
// pipeline: Sequential() - Total().
func (b OverlappedBreakdown) Hidden() time.Duration { return b.Sequential() - b.Total() }

// Sequential is the additive makespan of the same work without overlap.
func (b OverlappedBreakdown) Sequential() time.Duration { return b.PipelineBreakdown.Total() }

// Speedup reports Sequential()/Total(); 1.0 when nothing overlaps.
func (b OverlappedBreakdown) Speedup() float64 {
	t := b.Total()
	if t == 0 {
		return 1
	}
	return float64(b.Sequential()) / float64(t)
}

// OverlappedPipelineTime models the same run as PipelineTime executed under
// the staged co-processing schedule: summary maintenance hides behind
// sorting (or vice versa when merge dominates), leaving the per-window
// minimum stage time exposed once as Startup.
func (m Model) OverlappedPipelineTime(c pipeline.Stats, backend Backend) OverlappedBreakdown {
	b := m.PipelineTime(c, backend)
	out := OverlappedBreakdown{PipelineBreakdown: b}
	if c.Windows > 0 {
		perSort := b.Sort / time.Duration(c.Windows)
		perMC := (b.Merge + b.Compress) / time.Duration(c.Windows)
		if perSort < perMC {
			out.Startup = perSort
		} else {
			out.Startup = perMC
		}
	}
	return out
}

// ShardedPipelineTime models a K-way sharded ingestion run from per-shard
// pipeline stats: shards ingest concurrently, so modeled ingest time is
// the slowest shard's pipeline, while the query-time merge of the K shard
// summaries is serial and costed at SummaryMergeCycles per visited entry.
func (m Model) ShardedPipelineTime(perShard []pipeline.Stats, backend Backend, queryMergeOps int64) PipelineBreakdown {
	var worst PipelineBreakdown
	for _, c := range perShard {
		b := m.PipelineTime(c, backend)
		if b.Total() > worst.Total() {
			worst = b
		}
	}
	worst.Merge += secondsToDuration(float64(queryMergeOps) * m.CPU.SummaryMergeCycles / m.CPU.ClockHz)
	return worst
}

// PipelineTime models a full frequency- or quantile-estimation run from the
// unified pipeline telemetry's operation counters (the measured durations in
// c are ignored — the model re-costs the counted work on the 2004 testbed).
func (m Model) PipelineTime(c pipeline.Stats, backend Backend) PipelineBreakdown {
	var sortTime time.Duration
	if c.Windows > 0 {
		avg := int(c.SortedValues / c.Windows)
		if avg < 2 {
			avg = 2
		}
		switch backend {
		case BackendGPU:
			sortTime = time.Duration(c.Windows) * m.PBSNSortTime(avg).Total()
		case BackendSampleSort:
			sortTime = time.Duration(c.Windows) * m.SampleSortTime(avg)
		default:
			sortTime = time.Duration(c.Windows) * m.QuicksortTime(avg, IntelHT)
		}
	}
	merge := secondsToDuration(float64(c.MergeOps) * m.CPU.SummaryMergeCycles / m.CPU.ClockHz)
	compress := secondsToDuration(float64(c.CompressOps) * m.CPU.CompressCycles / m.CPU.ClockHz)
	return PipelineBreakdown{Sort: sortTime, Merge: merge, Compress: compress}
}
