package perfmodel

import (
	"math"
	"time"
)

// The paper closes its sorting analysis (Section 4.5) predicting that
// because GPU performance "has been growing at a rate of 2-3 times a year,
// which is faster than Moore's Law for CPUs", the gap between the GPU
// sorter and CPU quicksort "would increase on future generations". This
// file models that projection.

// GrowthRates captures annual performance multipliers.
type GrowthRates struct {
	GPU float64 // per-year GPU throughput growth (paper: 2-3x)
	CPU float64 // per-year CPU throughput growth (Moore's-law pace)
	Bus float64 // per-year interconnect bandwidth growth
}

// PaperGrowthRates returns the rates the paper assumes: GPUs at the low end
// of the quoted 2-3x per year, CPUs at the classic Moore's-law ~1.5x, buses
// on the slower AGP->PCIe cadence.
func PaperGrowthRates() GrowthRates {
	return GrowthRates{GPU: 2.0, CPU: 1.5, Bus: 1.3}
}

// Project returns a model whose component speeds have grown for the given
// number of years at the given rates. Fixed per-invocation overheads (sort
// setup, transfer latency) shrink with their component's growth too, a
// generous assumption for both sides.
func (m Model) Project(years float64, r GrowthRates) Model {
	g := math.Pow(r.GPU, years)
	c := math.Pow(r.CPU, years)
	b := math.Pow(r.Bus, years)
	out := m
	out.GPU.CoreClockHz *= g
	out.GPU.MemBandwidth *= g
	out.GPU.SetupOverhead = scaleDuration(out.GPU.SetupOverhead, 1/g)
	out.CPU.ClockHz *= c
	out.Bus.BytesPerSec *= b
	out.Bus.PerTransfer = scaleDuration(out.Bus.PerTransfer, 1/b)
	return out
}

func scaleDuration(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}
