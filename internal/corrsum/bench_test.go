package corrsum

import (
	"testing"

	"gpustream/internal/cpusort"
)

func BenchmarkCorrelatedSumProcess(b *testing.B) {
	pairs := randomPairs(1<<15, 1)
	b.SetBytes(int64(len(pairs) * 12))
	for i := 0; i < b.N; i++ {
		e := NewEstimator(0.005, int64(len(pairs)), cpusort.QuicksortSorter[float32]{})
		e.ProcessSlice(pairs)
	}
}

func BenchmarkCorrelatedSumQuery(b *testing.B) {
	e := NewEstimator(0.005, 1<<16, cpusort.QuicksortSorter[float32]{})
	e.ProcessSlice(randomPairs(1<<16, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Sum(50)
	}
}
