package corrsum

import (
	"math"
	"testing"
	"testing/quick"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/stream"
)

func randomPairs(n int, seed uint64) []Pair {
	r := stream.NewRNG(seed)
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{X: float32(r.Float64() * 100), Y: r.Float64() * 5}
	}
	return out
}

func trueSum(pairs []Pair, t float32) float64 {
	total := 0.0
	for _, p := range pairs {
		if p.X <= t {
			total += p.Y
		}
	}
	return total
}

func maxY(pairs []Pair) float64 {
	m := 0.0
	for _, p := range pairs {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

func newCPU(eps float64, cap int64) *Estimator {
	return NewEstimator(eps, cap, cpusort.QuicksortSorter[float32]{})
}

func TestSumErrorBound(t *testing.T) {
	const eps = 0.01
	pairs := randomPairs(30000, 1)
	e := newCPU(eps, 30000)
	e.ProcessSlice(pairs)

	totalW := trueSum(pairs, math.MaxFloat32)
	bound := eps*totalW + 10*maxY(pairs)
	for i := 0; i <= 20; i++ {
		tt := float32(i * 5)
		got := e.Sum(tt)
		truth := trueSum(pairs, tt)
		if d := got - truth; d > bound || d < -bound {
			t.Fatalf("Sum(%v) = %v, truth %v (bound %v)", tt, got, truth, bound)
		}
	}
	if d := e.Total() - totalW; d > 1e-6*totalW || d < -1e-6*totalW {
		t.Fatalf("Total = %v, want %v", e.Total(), totalW)
	}
}

func TestSumWithPartialWindow(t *testing.T) {
	const eps = 0.05
	pairs := randomPairs(1237, 2) // not a multiple of the window
	e := newCPU(eps, 10000)
	e.ProcessSlice(pairs)
	totalW := trueSum(pairs, math.MaxFloat32)
	bound := eps*totalW + 5*maxY(pairs)
	for i := 0; i <= 10; i++ {
		tt := float32(i * 10)
		if d := e.Sum(tt) - trueSum(pairs, tt); d > bound || d < -bound {
			t.Fatalf("partial-window Sum(%v) off by %v", tt, d)
		}
	}
	// State undisturbed by queries.
	more := randomPairs(500, 3)
	e.ProcessSlice(more)
	all := append(append([]Pair(nil), pairs...), more...)
	if d := e.Total() - trueSum(all, math.MaxFloat32); math.Abs(d) > 1e-6*e.Total() {
		t.Fatalf("Total drifted by %v after queries", d)
	}
}

func TestSumQuick(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		const eps = 0.1
		e := newCPU(eps, int64(len(raw)))
		pairs := make([]Pair, len(raw))
		for i, b := range raw {
			pairs[i] = Pair{X: float32(b % 50), Y: float64(b%7) + 1}
			e.Process(pairs[i])
		}
		totalW := trueSum(pairs, math.MaxFloat32)
		bound := eps*totalW + 10*maxY(pairs) + 1e-6
		for _, tt := range []float32{0, 10, 25, 49} {
			if d := e.Sum(tt) - trueSum(pairs, tt); d > bound || d < -bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSumGPUBackendMatchesCPU(t *testing.T) {
	pairs := randomPairs(10000, 4)
	cpu := newCPU(0.02, 10000)
	gpu := NewEstimator(0.02, 10000, gpusort.NewSorter[float32]())
	cpu.ProcessSlice(pairs)
	gpu.ProcessSlice(pairs)
	for i := 0; i <= 10; i++ {
		tt := float32(i * 10)
		if cpu.Sum(tt) != gpu.Sum(tt) {
			t.Fatalf("backends disagree at %v: %v vs %v", tt, cpu.Sum(tt), gpu.Sum(tt))
		}
	}
}

func TestSumAtQuantile(t *testing.T) {
	// Keys 0..999 with unit values: SUM below the median key ~ N/2.
	e := newCPU(0.01, 10000)
	for i := 0; i < 10000; i++ {
		e.Process(Pair{X: float32(i % 1000), Y: 1})
	}
	got := e.SumAtQuantile(0.5)
	if got < 4500 || got > 5500 {
		t.Fatalf("SumAtQuantile(0.5) = %v, want ~5000", got)
	}
	if e.SumAtQuantile(1) < 9000 {
		t.Fatalf("SumAtQuantile(1) = %v", e.SumAtQuantile(1))
	}
}

func TestDuplicateKeysWithDistinctValues(t *testing.T) {
	// Many pairs share keys; total mass must be preserved exactly.
	e := newCPU(0.05, 1000)
	var want float64
	for i := 0; i < 1000; i++ {
		y := float64(i%5) + 0.5
		e.Process(Pair{X: float32(i % 10), Y: y})
		want += y
	}
	if d := e.Total() - want; math.Abs(d) > 1e-6 {
		t.Fatalf("Total = %v, want %v", e.Total(), want)
	}
	if got := e.Sum(100); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Sum beyond max key = %v, want %v", got, want)
	}
	if got := e.Sum(-1); got != 0 {
		t.Fatalf("Sum below min key = %v", got)
	}
}

func TestSpaceAndInstrumentation(t *testing.T) {
	e := newCPU(0.01, 100000)
	e.ProcessSlice(randomPairs(50000, 5))
	if e.SummaryEntries() > 40000 {
		t.Fatalf("summary entries %d not sublinear", e.SummaryEntries())
	}
	if e.SortedValues() == 0 || e.Stats().Sort <= 0 {
		t.Fatal("instrumentation missing")
	}
	if e.Count() != 50000 {
		t.Fatalf("Count = %d", e.Count())
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewEstimator(0, 10, cpusort.QuicksortSorter[float32]{}) },
		func() { NewEstimator(1, 10, cpusort.QuicksortSorter[float32]{}) },
		func() { newCPU(0.1, 10).Process(Pair{X: 1, Y: -2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestEmptyEstimator(t *testing.T) {
	e := newCPU(0.1, 10)
	if e.Sum(5) != 0 || e.Total() != 0 || e.SumAtQuantile(0.5) != 0 {
		t.Fatal("empty estimator should answer 0")
	}
}

func TestAccessors(t *testing.T) {
	e := newCPU(0.05, 1000)
	if e.Eps() != 0.05 {
		t.Fatal("Eps accessor")
	}
	e.ProcessSlice(randomPairs(500, 9))
	if e.Stats().Total() <= 0 || e.Stats().Windows == 0 {
		t.Fatal("Stats accessor")
	}
	// Deep stream exercises the top-level parking branch of flush.
	deep := NewEstimator(0.2, 10, cpusort.QuicksortSorter[float32]{})
	pairs := randomPairs(2000, 10)
	deep.ProcessSlice(pairs)
	total := 0.0
	for _, p := range pairs {
		total += p.Y
	}
	if d := deep.Total() - total; math.Abs(d) > 1e-3*total {
		t.Fatalf("deep-stream Total = %v, want %v", deep.Total(), total)
	}
}

func TestSumAtQuantileClamps(t *testing.T) {
	e := newCPU(0.1, 100)
	for i := 0; i < 100; i++ {
		e.Process(Pair{X: float32(i), Y: 1})
	}
	if e.SumAtQuantile(-1) != e.SumAtQuantile(0) {
		t.Fatal("negative phi not clamped")
	}
	if e.SumAtQuantile(2) != e.SumAtQuantile(1) {
		t.Fatal("phi > 1 not clamped")
	}
}
