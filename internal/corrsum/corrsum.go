// Package corrsum implements epsilon-approximate correlated sum aggregate
// queries over streams of (key, value) pairs, the second extension the
// paper names in Section 1.2: given a threshold t (often itself a quantile
// of the keys), estimate SUM(value) over all pairs with key <= t, using
// limited memory.
//
// Structurally this is the quantile estimator of Section 5.2 with counts
// generalized to weights: each window of pairs is sorted by key (the
// GPU-accelerated step), reduced to a weighted summary, and inserted into
// an exponential histogram whose same-id buckets combine by weighted merge
// and prune with a per-level error budget.
package corrsum

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// Pair is one stream element: a key and a non-negative value.
type Pair struct {
	X float32
	Y float64
}

// Estimator answers correlated-sum queries within
// eps * totalWeight + O(levels) * maxWeight.
type Estimator struct {
	eps     float64
	window  int
	levels  int
	pruneB  int
	sorter  sorter.Sorter[float32]
	buckets map[int]*summary.Weighted
	buf     []Pair
	n       int64
	stats   pipeline.Stats
}

// NewEstimator returns a correlated-sum estimator with error eps for
// streams of up to capacity pairs (capacity <= 0 picks a generous
// default), sorting window keys with s.
func NewEstimator(eps float64, capacity int64, s sorter.Sorter[float32]) *Estimator {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("corrsum: eps %v out of (0, 1)", eps))
	}
	if capacity <= 0 {
		capacity = 1 << 40
	}
	e := &Estimator{
		eps:     eps,
		window:  int(math.Ceil(1 / eps)),
		sorter:  s,
		buckets: make(map[int]*summary.Weighted),
	}
	maxWindows := capacity/int64(e.window) + 1
	e.levels = 1
	for int64(1)<<e.levels < maxWindows {
		e.levels++
	}
	e.levels++
	e.pruneB = int(math.Ceil(float64(e.levels) / eps))
	e.buf = make([]Pair, 0, e.window)
	return e
}

// Eps reports the configured error bound.
func (e *Estimator) Eps() float64 { return e.eps }

// Count reports the number of pairs processed, including buffered ones.
func (e *Estimator) Count() int64 { return e.n + int64(len(e.buf)) }

// SortedValues reports how many keys have passed through the sorter.
func (e *Estimator) SortedValues() int64 { return e.stats.SortedValues }

// Stats returns the unified per-stage pipeline telemetry. Pairs buffer in
// this package (the shared float32 core cannot hold (key, value) tuples),
// but the telemetry schema is the same one every other estimator reports.
func (e *Estimator) Stats() pipeline.Stats { return e.stats }

// SummaryEntries reports total retained entries across buckets.
func (e *Estimator) SummaryEntries() int {
	total := 0
	for _, b := range e.buckets {
		total += b.Size()
	}
	return total
}

// Process consumes one pair. It panics on negative values, which would
// break the summary's monotone cumulative weights.
func (e *Estimator) Process(p Pair) {
	if p.Y < 0 {
		panic("corrsum: negative value")
	}
	e.buf = append(e.buf, p)
	if len(e.buf) == e.window {
		e.flush()
	}
}

// ProcessSlice consumes a batch of pairs.
func (e *Estimator) ProcessSlice(pairs []Pair) {
	for _, p := range pairs {
		e.Process(p)
	}
}

// summarizeBuf sorts the buffered pairs by key through the configured
// sorter and builds a weighted summary. The value reattachment is CPU-side:
// the sorter orders the keys (that is the expensive, GPU-offloaded step)
// and values are re-associated by key afterwards.
func (e *Estimator) summarizeBuf(buf []Pair) *summary.Weighted {
	t0 := time.Now()
	xs := make([]float32, len(buf))
	byKey := make(map[float32][]float64, len(buf))
	for i, p := range buf {
		xs[i] = p.X
		byKey[p.X] = append(byKey[p.X], p.Y)
	}
	e.sorter.Sort(xs)
	e.stats.SortedValues += int64(len(xs))
	ys := make([]float64, len(xs))
	for i, x := range xs {
		vals := byKey[x]
		ys[i] = vals[len(vals)-1]
		byKey[x] = vals[:len(vals)-1]
	}
	w := summary.WeightedFromSortedPairs(xs, ys, e.eps)
	e.stats.Sort += time.Since(t0)
	return w
}

// flush turns the buffered window into a bucket and cascades combines.
func (e *Estimator) flush() {
	e.stats.Windows++
	s := e.summarizeBuf(e.buf)
	e.n += int64(len(e.buf))
	e.buf = e.buf[:0]

	id := 1
	for {
		old, ok := e.buckets[id]
		if !ok {
			e.buckets[id] = s
			return
		}
		delete(e.buckets, id)
		t1 := time.Now()
		m := summary.MergeWeighted(old, s)
		e.stats.Merge += time.Since(t1)
		e.stats.MergeOps += int64(m.Size())
		t2 := time.Now()
		s = m.Prune(e.pruneB)
		e.stats.Compress += time.Since(t2)
		e.stats.CompressOps += int64(m.Size())
		id++
		if id > e.levels+1 {
			if top, ok := e.buckets[id]; ok {
				s = summary.MergeWeighted(top, s).Prune(e.pruneB)
			}
			e.buckets[id] = s
			return
		}
	}
}

// snapshot merges live buckets and the buffered partial window.
func (e *Estimator) snapshot() *summary.Weighted {
	var acc *summary.Weighted
	if len(e.buf) > 0 {
		acc = e.summarizeBuf(append([]Pair(nil), e.buf...))
	}
	ids := make([]int, 0, len(e.buckets))
	for id := range e.buckets {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if acc == nil {
			acc = e.buckets[id]
		} else {
			acc = summary.MergeWeighted(acc, e.buckets[id])
		}
	}
	return acc
}

// Sum estimates SUM(Y) over all pairs with X <= t.
func (e *Estimator) Sum(t float32) float64 {
	s := e.snapshot()
	if s == nil {
		return 0
	}
	return s.CumWeight(t)
}

// Total reports the estimator's view of SUM(Y) over the whole stream
// (exact, since weights only ever accumulate).
func (e *Estimator) Total() float64 {
	s := e.snapshot()
	if s == nil {
		return 0
	}
	return s.W
}

// SumAtQuantile estimates SUM(Y) over the pairs whose keys fall at or below
// the phi-quantile of the key distribution (by weight) — the paper's
// correlated aggregate formulation.
func (e *Estimator) SumAtQuantile(phi float64) float64 {
	s := e.snapshot()
	if s == nil {
		return 0
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	return s.CumWeight(s.QueryWeight(phi * s.W))
}
