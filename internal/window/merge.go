package window

import (
	"math"

	"gpustream/internal/histogram"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// Cross-process merging of sliding-window snapshots. When a logical stream
// is partitioned across P ingest processes, each process's window covers the
// most recent W_i elements of its partition; the merged snapshot covers
// their union — a combined window of W = sum W_i elements — so a fan-in
// aggregator answers "the recent stream" queries over all partitions at
// once. Error bounds compose exactly like the shard rules: histogram
// undercounts are additive and GK rank errors combine by the sensor rule, so
// the merged window is max(epsA, epsB)-approximate over its combined size
// (DESIGN.md section 12).
//
// The merged snapshot collapses each input's pane ring into a single
// combined pane: per-partition pane boundaries have no global time order, so
// variable-span queries narrower than the combined window are not
// meaningful after a cross-process merge and the merged view answers whole-
// window queries.

// MergeFrequencySnapshots combines two sliding-frequency snapshots from
// disjoint stream partitions into one whole-window view over their union.
// The inputs are not mutated and may be used afterwards.
func MergeFrequencySnapshots[T sorter.Value](a, b *FrequencySnapshot[T]) *FrequencySnapshot[T] {
	binsA, coveredA := mergePaneBins(a.panes, a.partialBins, a.partialCount, a.w)
	binsB, coveredB := mergePaneBins(b.panes, b.partialBins, b.partialCount, b.w)
	return &FrequencySnapshot[T]{
		eps:          math.Max(a.eps, b.eps),
		w:            a.w + b.w,
		count:        a.count + b.count,
		partialBins:  histogram.Merge(binsA, binsB),
		partialCount: coveredA + coveredB,
	}
}

// MergeQuantileSnapshots combines two sliding-quantile snapshots from
// disjoint stream partitions into one whole-window view over their union.
// The inputs are not mutated and may be used afterwards.
func MergeQuantileSnapshots[T sorter.Value](a, b *QuantileSnapshot[T]) *QuantileSnapshot[T] {
	ma := mergePaneSummaries(a.panes, a.partial, a.w)
	mb := mergePaneSummaries(b.panes, b.partial, b.w)
	merged := &QuantileSnapshot[T]{
		eps:   math.Max(a.eps, b.eps),
		w:     a.w + b.w,
		count: a.count + b.count,
	}
	switch {
	case ma == nil || ma.N == 0:
		merged.partial = mb
	case mb == nil || mb.N == 0:
		merged.partial = ma
	default:
		merged.partial = summary.Merge(ma, mb)
	}
	return merged
}
