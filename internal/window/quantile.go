package window

import (
	"fmt"
	"time"

	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// SlidingQuantile answers eps-approximate quantile queries over the most
// recent W elements. Panes of ceil(eps*W/2) elements are sorted and reduced
// to (eps/2)-approximate GK summaries; a query merges the summaries of the
// panes covering the requested suffix. The merged summary's rank error plus
// the boundary quantization of the oldest pane stays within eps*W.
//
// Pane summaries are immutable once sealed (and may be exposed through
// WindowSummary or a QuantileSnapshot), so unlike SlidingFrequency their
// storage is never recycled on expiry — snapshots alias them for free.
//
// One writer and any number of query goroutines may use the estimator
// concurrently.
type SlidingQuantile struct {
	eps    float64
	w      int
	core   *pipeline.Core
	sorter sorter.Sorter
	panes  []*summary.Summary // oldest first
}

// NewSlidingQuantile returns a sliding-window quantile estimator of window
// size w and error eps, sorting panes with s.
func NewSlidingQuantile(eps float64, w int, s sorter.Sorter) *SlidingQuantile {
	q := &SlidingQuantile{eps: eps, w: w, sorter: s}
	q.core = pipeline.NewCore(paneSize(eps, w), q.sealPane)
	return q
}

// Eps reports the configured error bound.
func (q *SlidingQuantile) Eps() float64 { return q.eps }

// WindowSize reports W.
func (q *SlidingQuantile) WindowSize() int { return q.w }

// PaneSize reports the pane length.
func (q *SlidingQuantile) PaneSize() int { return q.core.WindowSize() }

// Count reports the number of elements processed so far (whole stream).
func (q *SlidingQuantile) Count() int64 { return q.core.Count() }

// Stats returns the unified per-stage pipeline telemetry. Safe to call
// mid-ingestion; counters are internally consistent.
func (q *SlidingQuantile) Stats() pipeline.Stats { return q.core.Stats() }

// SortedValues reports how many values have passed through the sorter.
func (q *SlidingQuantile) SortedValues() int64 { return q.core.Stats().SortedValues }

// Panes reports the number of retained panes.
func (q *SlidingQuantile) Panes() int {
	q.core.Lock()
	defer q.core.Unlock()
	return len(q.panes)
}

// SummaryEntries reports the total retained summary entries, the
// estimator's memory footprint.
func (q *SlidingQuantile) SummaryEntries() int {
	q.core.Lock()
	defer q.core.Unlock()
	total := q.core.BufferedLocked()
	for _, p := range q.panes {
		total += p.Size()
	}
	return total
}

// Process consumes one stream element. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (q *SlidingQuantile) Process(v float32) error { return q.core.Process(v) }

// ProcessSlice consumes a batch of elements. After Close it returns an
// error wrapping pipeline.ErrClosed.
func (q *SlidingQuantile) ProcessSlice(data []float32) error { return q.core.ProcessSlice(data) }

// Flush seals the buffered partial pane. Queries do not need it — the
// partial pane is always visible — but it makes the state self-contained
// before Close or hand-off.
func (q *SlidingQuantile) Flush() error { return q.core.Flush() }

// Close flushes and releases the pane buffer back to the shared pool. The
// estimator remains queryable; further ingestion reports
// pipeline.ErrClosed. Close is idempotent.
func (q *SlidingQuantile) Close() error { return q.core.Close() }

// sealPane summarizes one full pane handed over by the core and expires old
// panes. The core holds the lock.
func (q *SlidingQuantile) sealPane(win []float32) {
	t0 := time.Now()
	q.sorter.Sort(win)
	s := summary.FromSortedWindow(win, q.eps)
	q.core.AddSort(time.Since(t0), int64(len(win)))
	q.panes = append(q.panes, s)

	maxPanes := (q.w + q.core.WindowSize() - 1) / q.core.WindowSize()
	if len(q.panes) > maxPanes {
		q.panes = q.panes[len(q.panes)-maxPanes:]
	}
}

// mergePaneSummaries merges the newest panes covering span elements with an
// already-summarized partial pane into one queryable summary. All inputs
// are immutable; summary.Merge allocates fresh output.
func mergePaneSummaries(panes []*summary.Summary, partial *summary.Summary, span int) *summary.Summary {
	acc := partial
	covered := int64(0)
	if acc != nil {
		covered = acc.N
	}
	for i := len(panes) - 1; i >= 0 && covered < int64(span); i-- {
		if acc == nil {
			acc = panes[i]
		} else {
			acc = summary.Merge(acc, panes[i])
		}
		covered += panes[i].N
	}
	return acc
}

// partialSummaryLocked summarizes a copy of the buffered partial pane.
// Caller must hold the core lock.
func (q *SlidingQuantile) partialSummaryLocked() *summary.Summary {
	if q.core.BufferedLocked() == 0 {
		return nil
	}
	tmp := append(q.core.Scratch(q.core.BufferedLocked()), q.core.Partial()...)
	q.sorter.Sort(tmp)
	return summary.FromSortedWindow(tmp, q.eps)
}

// snapshot merges the newest panes covering span elements with the partial
// pane buffer into one queryable summary. Caller must hold the core lock;
// the result is immutable and may outlive the locked region.
func (q *SlidingQuantile) snapshot(span int) *summary.Summary {
	t1 := time.Now()
	acc := mergePaneSummaries(q.panes, q.partialSummaryLocked(), span)
	q.core.AddMerge(time.Since(t1), 0)
	return acc
}

// Query returns an eps-approximate phi-quantile of the most recent W
// elements. It panics if nothing has been processed. Safe under concurrent
// ingestion.
func (q *SlidingQuantile) Query(phi float64) float32 {
	return q.QueryWindow(phi, q.w)
}

// QueryWindow answers the variable-size query over the most recent w
// elements, w <= W. Rank error is bounded by eps*W (absolute). Safe under
// concurrent ingestion.
func (q *SlidingQuantile) QueryWindow(phi float64, w int) float32 {
	if w <= 0 || w > q.w {
		panic(fmt.Sprintf("window: query window %d out of (0, %d]", w, q.w))
	}
	q.core.Lock()
	s := q.snapshot(w)
	q.core.Unlock()
	if s == nil || s.N == 0 {
		panic("window: quantile query on empty window")
	}
	return s.Query(phi)
}

// WindowSummary exposes the merged snapshot over the most recent w
// elements, for validation harnesses.
func (q *SlidingQuantile) WindowSummary(w int) *summary.Summary {
	q.core.Lock()
	defer q.core.Unlock()
	return q.snapshot(w)
}

// QuantileSnapshot is an immutable point-in-time view of a sliding-window
// quantile estimator. Pane summaries are aliased directly — they are never
// mutated or recycled — so taking one costs O(partial pane). A
// QuantileSnapshot is safe for concurrent use and implements pipeline.View.
type QuantileSnapshot struct {
	eps     float64
	w       int
	count   int64
	panes   []*summary.Summary // oldest first
	partial *summary.Summary   // nil when the pane buffer was empty
}

// Snapshot returns an immutable view of the current window state. The view
// answers Quantile (and variable-span QueryWindow) queries and never sees
// ingestion that happens after this call.
func (q *SlidingQuantile) Snapshot() pipeline.View {
	q.core.Lock()
	defer q.core.Unlock()
	return &QuantileSnapshot{
		eps:     q.eps,
		w:       q.w,
		count:   q.core.CountLocked(),
		panes:   append([]*summary.Summary(nil), q.panes...),
		partial: q.partialSummaryLocked(),
	}
}

// Count reports the whole-stream length the snapshot was taken at.
func (s *QuantileSnapshot) Count() int64 { return s.count }

// Size reports the total retained summary entries.
func (s *QuantileSnapshot) Size() int {
	total := 0
	if s.partial != nil {
		total += s.partial.Size()
	}
	for _, p := range s.panes {
		total += p.Size()
	}
	return total
}

// Eps reports the snapshot's error bound.
func (s *QuantileSnapshot) Eps() float64 { return s.eps }

// WindowSize reports W.
func (s *QuantileSnapshot) WindowSize() int { return s.w }

// Query returns an eps-approximate phi-quantile over the most recent W
// elements as of the snapshot. It panics on an empty window (use Quantile
// for the non-panicking form).
func (s *QuantileSnapshot) Query(phi float64) float32 { return s.QueryWindow(phi, s.w) }

// QueryWindow answers the variable-size query over the most recent w
// elements as of the snapshot, w <= W.
func (s *QuantileSnapshot) QueryWindow(phi float64, w int) float32 {
	if w <= 0 || w > s.w {
		panic(fmt.Sprintf("window: query window %d out of (0, %d]", w, s.w))
	}
	m := mergePaneSummaries(s.panes, s.partial, w)
	if m == nil || m.N == 0 {
		panic("window: quantile query on empty window")
	}
	return m.Query(phi)
}

// Quantile implements pipeline.View; ok is false on an empty window.
func (s *QuantileSnapshot) Quantile(phi float64) (float32, bool) {
	m := mergePaneSummaries(s.panes, s.partial, s.w)
	if m == nil || m.N == 0 {
		return 0, false
	}
	return m.Query(phi), true
}

// HeavyHitters implements pipeline.View; quantile sketches do not answer
// frequency queries.
func (s *QuantileSnapshot) HeavyHitters(float64) ([]pipeline.Item, bool) { return nil, false }

// Frequency implements pipeline.View; quantile sketches do not answer
// point-frequency queries.
func (s *QuantileSnapshot) Frequency(float32) (int64, bool) { return 0, false }
