package window

import (
	"fmt"
	"math"
	"time"

	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// SlidingQuantile answers eps-approximate quantile queries over the most
// recent W elements. Panes of ceil(eps*W/2) elements are sorted and reduced
// to (eps/2)-approximate GK summaries; a query merges the summaries of the
// panes covering the requested suffix. The merged summary's rank error plus
// the boundary quantization of the oldest pane stays within eps*W.
type SlidingQuantile struct {
	eps     float64
	w       int
	pane    int
	sorter  sorter.Sorter
	panes   []*summary.Summary // oldest first
	buf     []float32
	n       int64
	timings Timings
	sorted  int64
}

// NewSlidingQuantile returns a sliding-window quantile estimator of window
// size w and error eps, sorting panes with s.
func NewSlidingQuantile(eps float64, w int, s sorter.Sorter) *SlidingQuantile {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("window: eps %v out of (0, 1)", eps))
	}
	if w <= 0 {
		panic("window: window size must be positive")
	}
	pane := int(math.Ceil(eps * float64(w) / 2))
	if pane < 1 {
		pane = 1
	}
	if pane > w {
		pane = w
	}
	return &SlidingQuantile{eps: eps, w: w, pane: pane, sorter: s, buf: make([]float32, 0, pane)}
}

// Eps reports the configured error bound.
func (q *SlidingQuantile) Eps() float64 { return q.eps }

// WindowSize reports W.
func (q *SlidingQuantile) WindowSize() int { return q.w }

// PaneSize reports the pane length.
func (q *SlidingQuantile) PaneSize() int { return q.pane }

// Count reports the number of elements processed so far (whole stream).
func (q *SlidingQuantile) Count() int64 { return q.n }

// Timings returns measured per-phase host wall time.
func (q *SlidingQuantile) Timings() Timings { return q.timings }

// SortedValues reports how many values have passed through the sorter.
func (q *SlidingQuantile) SortedValues() int64 { return q.sorted }

// Panes reports the number of retained panes.
func (q *SlidingQuantile) Panes() int { return len(q.panes) }

// SummaryEntries reports the total retained summary entries, the
// estimator's memory footprint.
func (q *SlidingQuantile) SummaryEntries() int {
	total := len(q.buf)
	for _, p := range q.panes {
		total += p.Size()
	}
	return total
}

// Process consumes one stream element.
func (q *SlidingQuantile) Process(v float32) {
	q.n++
	q.buf = append(q.buf, v)
	if len(q.buf) == q.pane {
		q.sealPane()
	}
}

// ProcessSlice consumes a batch of elements.
func (q *SlidingQuantile) ProcessSlice(data []float32) {
	for _, v := range data {
		q.Process(v)
	}
}

func (q *SlidingQuantile) sealPane() {
	t0 := time.Now()
	q.sorter.Sort(q.buf)
	s := summary.FromSortedWindow(q.buf, q.eps)
	q.timings.Sort += time.Since(t0)
	q.sorted += int64(len(q.buf))
	q.panes = append(q.panes, s)
	q.buf = q.buf[:0]

	maxPanes := (q.w + q.pane - 1) / q.pane
	if len(q.panes) > maxPanes {
		q.panes = q.panes[len(q.panes)-maxPanes:]
	}
}

// snapshot merges the newest panes covering span elements with the partial
// pane buffer into one queryable summary.
func (q *SlidingQuantile) snapshot(span int) *summary.Summary {
	t1 := time.Now()
	var acc *summary.Summary
	covered := int64(0)
	if len(q.buf) > 0 {
		tmp := append([]float32(nil), q.buf...)
		q.sorter.Sort(tmp)
		acc = summary.FromSortedWindow(tmp, q.eps)
		covered = acc.N
	}
	for i := len(q.panes) - 1; i >= 0 && covered < int64(span); i-- {
		if acc == nil {
			acc = q.panes[i]
		} else {
			acc = summary.Merge(acc, q.panes[i])
		}
		covered += q.panes[i].N
	}
	q.timings.Merge += time.Since(t1)
	return acc
}

// Query returns an eps-approximate phi-quantile of the most recent W
// elements. It panics if nothing has been processed.
func (q *SlidingQuantile) Query(phi float64) float32 {
	return q.QueryWindow(phi, q.w)
}

// QueryWindow answers the variable-size query over the most recent w
// elements, w <= W. Rank error is bounded by eps*W (absolute).
func (q *SlidingQuantile) QueryWindow(phi float64, w int) float32 {
	if w <= 0 || w > q.w {
		panic(fmt.Sprintf("window: query window %d out of (0, %d]", w, q.w))
	}
	s := q.snapshot(w)
	if s == nil || s.N == 0 {
		panic("window: quantile query on empty window")
	}
	return s.Query(phi)
}

// WindowSummary exposes the merged snapshot over the most recent w
// elements, for validation harnesses.
func (q *SlidingQuantile) WindowSummary(w int) *summary.Summary { return q.snapshot(w) }
