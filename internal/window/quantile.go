package window

import (
	"fmt"
	"time"

	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// SlidingQuantile answers eps-approximate quantile queries over the most
// recent W elements. Panes of ceil(eps*W/2) elements are sorted and reduced
// to (eps/2)-approximate GK summaries; a query merges the summaries of the
// panes covering the requested suffix. The merged summary's rank error plus
// the boundary quantization of the oldest pane stays within eps*W.
//
// Pane summaries are immutable once sealed (and may be exposed through
// WindowSummary or a QuantileSnapshot), so unlike SlidingFrequency their
// storage is never recycled on expiry — snapshots alias them for free.
//
// One writer and any number of query goroutines may use the estimator
// concurrently.
type SlidingQuantile[T sorter.Value] struct {
	eps   float64
	w     int
	core  *pipeline.Core[T]
	panes []*summary.Summary[T] // oldest first
}

// NewSlidingQuantile returns a sliding-window quantile estimator of window
// size w and error eps, sorting panes with s.
func NewSlidingQuantile[T sorter.Value](eps float64, w int, s sorter.Sorter[T], opts ...Option) *SlidingQuantile[T] {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	q := &SlidingQuantile[T]{eps: eps, w: w}
	q.core = pipeline.NewStagedCore(paneSize(eps, w), s, q.sealSorted)
	if cfg.async {
		q.core.StartAsync()
	}
	return q
}

// Eps reports the configured error bound.
func (q *SlidingQuantile[T]) Eps() float64 { return q.eps }

// WindowSize reports W.
func (q *SlidingQuantile[T]) WindowSize() int { return q.w }

// PaneSize reports the pane length.
func (q *SlidingQuantile[T]) PaneSize() int { return q.core.WindowSize() }

// SetTuner installs a runtime controller over the pipeline's sorter knob;
// it must be called before ingestion. Sliding estimators adapt the backend
// only: the pane size is query semantics (it fixes the eps*W error split),
// so the engine configures window tuning off for this family.
func (q *SlidingQuantile[T]) SetTuner(t pipeline.Tuner[T]) { q.core.SetTuner(t) }

// Knobs reports the currently selected sorter and pane size.
func (q *SlidingQuantile[T]) Knobs() (sorter.Sorter[T], int) { return q.core.Tuning() }

// Async reports the commanded execution mode of the pane pipeline.
func (q *SlidingQuantile[T]) Async() bool { return q.core.Async() }

// Count reports the number of elements processed so far (whole stream).
func (q *SlidingQuantile[T]) Count() int64 { return q.core.Count() }

// Stats returns the unified per-stage pipeline telemetry. Safe to call
// mid-ingestion; counters are internally consistent.
func (q *SlidingQuantile[T]) Stats() pipeline.Stats { return q.core.Stats() }

// SortedValues reports how many values have passed through the sorter.
func (q *SlidingQuantile[T]) SortedValues() int64 { return q.core.Stats().SortedValues }

// Panes reports the number of retained panes.
func (q *SlidingQuantile[T]) Panes() int {
	q.core.Lock()
	defer q.core.Unlock()
	q.core.BarrierLocked()
	return len(q.panes)
}

// SummaryEntries reports the total retained summary entries, the
// estimator's memory footprint.
func (q *SlidingQuantile[T]) SummaryEntries() int {
	q.core.Lock()
	defer q.core.Unlock()
	q.core.BarrierLocked()
	total := q.core.BufferedLocked()
	for _, p := range q.panes {
		total += p.Size()
	}
	return total
}

// Process consumes one stream element. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (q *SlidingQuantile[T]) Process(v T) error { return q.core.Process(v) }

// ProcessSlice consumes a batch of elements. After Close it returns an
// error wrapping pipeline.ErrClosed.
func (q *SlidingQuantile[T]) ProcessSlice(data []T) error { return q.core.ProcessSlice(data) }

// Flush seals the buffered partial pane. Queries do not need it — the
// partial pane is always visible — but it makes the state self-contained
// before Close or hand-off.
func (q *SlidingQuantile[T]) Flush() error { return q.core.Flush() }

// Close flushes and releases the pane buffer back to the shared pool. The
// estimator remains queryable; further ingestion reports
// pipeline.ErrClosed. Close is idempotent.
func (q *SlidingQuantile[T]) Close() error { return q.core.Close() }

// sealSorted is the merge-stage half of the pane pipeline: it receives a
// pane the core has already sorted (inline, or on the sort stage goroutine
// in async mode), reduces it to a summary, and expires old panes. The core
// holds the lock around the call in both modes.
func (q *SlidingQuantile[T]) sealSorted(win []T) {
	// Summary reduction belongs to the paper's sort stage accounting; the
	// values were already counted when the core timed the sort itself.
	t0 := time.Now()
	s := summary.FromSortedWindow(win, q.eps)
	q.core.AddSort(time.Since(t0), 0)
	q.panes = append(q.panes, s)

	maxPanes := (q.w + q.core.WindowSizeLocked() - 1) / q.core.WindowSizeLocked()
	if len(q.panes) > maxPanes {
		q.panes = q.panes[len(q.panes)-maxPanes:]
	}
}

// mergePaneSummaries merges the newest panes covering span elements with an
// already-summarized partial pane into one queryable summary. All inputs
// are immutable; summary.Merge allocates fresh output.
func mergePaneSummaries[T sorter.Value](panes []*summary.Summary[T], partial *summary.Summary[T], span int) *summary.Summary[T] {
	acc := partial
	covered := int64(0)
	if acc != nil {
		covered = acc.N
	}
	for i := len(panes) - 1; i >= 0 && covered < int64(span); i-- {
		if acc == nil {
			acc = panes[i]
		} else {
			acc = summary.Merge(acc, panes[i])
		}
		covered += panes[i].N
	}
	return acc
}

// partialSummaryLocked summarizes a copy of the buffered partial pane.
// Caller must hold the core lock.
func (q *SlidingQuantile[T]) partialSummaryLocked() *summary.Summary[T] {
	if q.core.BufferedLocked() == 0 {
		return nil
	}
	tmp := append(q.core.Scratch(q.core.BufferedLocked()), q.core.Partial()...)
	q.core.SorterLocked().Sort(tmp)
	return summary.FromSortedWindow(tmp, q.eps)
}

// snapshot merges the newest panes covering span elements with the partial
// pane buffer into one queryable summary. Caller must hold the core lock;
// the result is immutable and may outlive the locked region.
func (q *SlidingQuantile[T]) snapshot(span int) *summary.Summary[T] {
	// Drain in-flight panes so the ring covers the whole emitted prefix and
	// the sorter is idle for the partial-pane sort.
	q.core.BarrierLocked()
	t1 := time.Now()
	acc := mergePaneSummaries(q.panes, q.partialSummaryLocked(), span)
	q.core.AddMerge(time.Since(t1), 0)
	return acc
}

// Query returns an eps-approximate phi-quantile of the most recent W
// elements. It panics if nothing has been processed. Safe under concurrent
// ingestion.
func (q *SlidingQuantile[T]) Query(phi float64) T {
	return q.QueryWindow(phi, q.w)
}

// QueryWindow answers the variable-size query over the most recent w
// elements, w <= W. Rank error is bounded by eps*W (absolute). Safe under
// concurrent ingestion.
func (q *SlidingQuantile[T]) QueryWindow(phi float64, w int) T {
	if w <= 0 || w > q.w {
		panic(fmt.Sprintf("window: query window %d out of (0, %d]", w, q.w))
	}
	q.core.Lock()
	s := q.snapshot(w)
	q.core.Unlock()
	if s == nil || s.N == 0 {
		panic("window: quantile query on empty window")
	}
	return s.Query(phi)
}

// WindowSummary exposes the merged snapshot over the most recent w
// elements, for validation harnesses.
func (q *SlidingQuantile[T]) WindowSummary(w int) *summary.Summary[T] {
	q.core.Lock()
	defer q.core.Unlock()
	return q.snapshot(w)
}

// QuantileSnapshot is an immutable point-in-time view of a sliding-window
// quantile estimator. Pane summaries are aliased directly — they are never
// mutated or recycled — so taking one costs O(partial pane). A
// QuantileSnapshot is safe for concurrent use and implements pipeline.View.
type QuantileSnapshot[T sorter.Value] struct {
	eps     float64
	w       int
	count   int64
	panes   []*summary.Summary[T] // oldest first
	partial *summary.Summary[T]   // nil when the pane buffer was empty
}

// Snapshot returns an immutable view of the current window state. The view
// answers Quantile (and variable-span QueryWindow) queries and never sees
// ingestion that happens after this call.
func (q *SlidingQuantile[T]) Snapshot() pipeline.View[T] {
	q.core.Lock()
	defer q.core.Unlock()
	q.core.BarrierLocked()
	return &QuantileSnapshot[T]{
		eps:     q.eps,
		w:       q.w,
		count:   q.core.CountLocked(),
		panes:   append([]*summary.Summary[T](nil), q.panes...),
		partial: q.partialSummaryLocked(),
	}
}

// Count reports the whole-stream length the snapshot was taken at.
func (s *QuantileSnapshot[T]) Count() int64 { return s.count }

// Size reports the total retained summary entries.
func (s *QuantileSnapshot[T]) Size() int {
	total := 0
	if s.partial != nil {
		total += s.partial.Size()
	}
	for _, p := range s.panes {
		total += p.Size()
	}
	return total
}

// Eps reports the snapshot's error bound.
func (s *QuantileSnapshot[T]) Eps() float64 { return s.eps }

// WindowSize reports W.
func (s *QuantileSnapshot[T]) WindowSize() int { return s.w }

// Query returns an eps-approximate phi-quantile over the most recent W
// elements as of the snapshot. It panics on an empty window (use Quantile
// for the non-panicking form).
func (s *QuantileSnapshot[T]) Query(phi float64) T { return s.QueryWindow(phi, s.w) }

// QueryWindow answers the variable-size query over the most recent w
// elements as of the snapshot, w <= W.
func (s *QuantileSnapshot[T]) QueryWindow(phi float64, w int) T {
	if w <= 0 || w > s.w {
		panic(fmt.Sprintf("window: query window %d out of (0, %d]", w, s.w))
	}
	m := mergePaneSummaries(s.panes, s.partial, w)
	if m == nil || m.N == 0 {
		panic("window: quantile query on empty window")
	}
	return m.Query(phi)
}

// Quantile implements pipeline.View; ok is false on an empty window.
func (s *QuantileSnapshot[T]) Quantile(phi float64) (T, bool) {
	m := mergePaneSummaries(s.panes, s.partial, s.w)
	if m == nil || m.N == 0 {
		var z T
		return z, false
	}
	return m.Query(phi), true
}

// HeavyHitters implements pipeline.View; quantile sketches do not answer
// frequency queries.
func (s *QuantileSnapshot[T]) HeavyHitters(float64) ([]pipeline.Item[T], bool) { return nil, false }

// Frequency implements pipeline.View; quantile sketches do not answer
// point-frequency queries.
func (s *QuantileSnapshot[T]) Frequency(T) (int64, bool) { return 0, false }
