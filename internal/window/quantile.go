package window

import (
	"fmt"
	"time"

	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// SlidingQuantile answers eps-approximate quantile queries over the most
// recent W elements. Panes of ceil(eps*W/2) elements are sorted and reduced
// to (eps/2)-approximate GK summaries; a query merges the summaries of the
// panes covering the requested suffix. The merged summary's rank error plus
// the boundary quantization of the oldest pane stays within eps*W.
//
// Pane summaries are retained (and may be exposed through WindowSummary),
// so unlike SlidingFrequency their storage is not recycled on expiry.
type SlidingQuantile struct {
	eps    float64
	w      int
	core   *pipeline.Core
	sorter sorter.Sorter
	panes  []*summary.Summary // oldest first
}

// NewSlidingQuantile returns a sliding-window quantile estimator of window
// size w and error eps, sorting panes with s.
func NewSlidingQuantile(eps float64, w int, s sorter.Sorter) *SlidingQuantile {
	q := &SlidingQuantile{eps: eps, w: w, sorter: s}
	q.core = pipeline.NewCore(paneSize(eps, w), q.sealPane)
	return q
}

// Eps reports the configured error bound.
func (q *SlidingQuantile) Eps() float64 { return q.eps }

// WindowSize reports W.
func (q *SlidingQuantile) WindowSize() int { return q.w }

// PaneSize reports the pane length.
func (q *SlidingQuantile) PaneSize() int { return q.core.WindowSize() }

// Count reports the number of elements processed so far (whole stream).
func (q *SlidingQuantile) Count() int64 { return q.core.Count() }

// Stats returns the unified per-stage pipeline telemetry.
func (q *SlidingQuantile) Stats() pipeline.Stats { return q.core.Stats() }

// SortedValues reports how many values have passed through the sorter.
func (q *SlidingQuantile) SortedValues() int64 { return q.core.Stats().SortedValues }

// Panes reports the number of retained panes.
func (q *SlidingQuantile) Panes() int { return len(q.panes) }

// SummaryEntries reports the total retained summary entries, the
// estimator's memory footprint.
func (q *SlidingQuantile) SummaryEntries() int {
	total := q.core.Buffered()
	for _, p := range q.panes {
		total += p.Size()
	}
	return total
}

// Process consumes one stream element.
func (q *SlidingQuantile) Process(v float32) { q.core.Process(v) }

// ProcessSlice consumes a batch of elements.
func (q *SlidingQuantile) ProcessSlice(data []float32) { q.core.ProcessSlice(data) }

// Flush seals the buffered partial pane. Queries do not need it — the
// partial pane is always visible — but it makes the state self-contained
// before Close or hand-off.
func (q *SlidingQuantile) Flush() { q.core.Flush() }

// Close flushes and releases the pane buffer back to the shared pool. The
// estimator remains queryable; further ingestion panics.
func (q *SlidingQuantile) Close() { q.core.Close() }

// sealPane summarizes one full pane handed over by the core and expires old
// panes.
func (q *SlidingQuantile) sealPane(win []float32) {
	t0 := time.Now()
	q.sorter.Sort(win)
	s := summary.FromSortedWindow(win, q.eps)
	q.core.AddSort(time.Since(t0), int64(len(win)))
	q.panes = append(q.panes, s)

	maxPanes := (q.w + q.core.WindowSize() - 1) / q.core.WindowSize()
	if len(q.panes) > maxPanes {
		q.panes = q.panes[len(q.panes)-maxPanes:]
	}
}

// snapshot merges the newest panes covering span elements with the partial
// pane buffer into one queryable summary.
func (q *SlidingQuantile) snapshot(span int) *summary.Summary {
	t1 := time.Now()
	var acc *summary.Summary
	covered := int64(0)
	if q.core.Buffered() > 0 {
		tmp := append(q.core.Scratch(q.core.Buffered()), q.core.Partial()...)
		q.sorter.Sort(tmp)
		acc = summary.FromSortedWindow(tmp, q.eps)
		covered = acc.N
	}
	for i := len(q.panes) - 1; i >= 0 && covered < int64(span); i-- {
		if acc == nil {
			acc = q.panes[i]
		} else {
			acc = summary.Merge(acc, q.panes[i])
		}
		covered += q.panes[i].N
	}
	q.core.AddMerge(time.Since(t1), 0)
	return acc
}

// Query returns an eps-approximate phi-quantile of the most recent W
// elements. It panics if nothing has been processed.
func (q *SlidingQuantile) Query(phi float64) float32 {
	return q.QueryWindow(phi, q.w)
}

// QueryWindow answers the variable-size query over the most recent w
// elements, w <= W. Rank error is bounded by eps*W (absolute).
func (q *SlidingQuantile) QueryWindow(phi float64, w int) float32 {
	if w <= 0 || w > q.w {
		panic(fmt.Sprintf("window: query window %d out of (0, %d]", w, q.w))
	}
	s := q.snapshot(w)
	if s == nil || s.N == 0 {
		panic("window: quantile query on empty window")
	}
	return s.Query(phi)
}

// WindowSummary exposes the merged snapshot over the most recent w
// elements, for validation harnesses.
func (q *SlidingQuantile) WindowSummary(w int) *summary.Summary { return q.snapshot(w) }
