package window

import (
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

var benchData = stream.Zipf(1<<16, 1.1, 1<<12, 1)

func BenchmarkSlidingFrequency(b *testing.B) {
	b.SetBytes(int64(len(benchData) * 4))
	for i := 0; i < b.N; i++ {
		f := NewSlidingFrequency(0.01, 1<<14, cpusort.QuicksortSorter[float32]{})
		f.ProcessSlice(benchData)
		_ = f.Query(0.05)
	}
}

func BenchmarkSlidingQuantile(b *testing.B) {
	b.SetBytes(int64(len(benchData) * 4))
	for i := 0; i < b.N; i++ {
		q := NewSlidingQuantile(0.01, 1<<14, cpusort.QuicksortSorter[float32]{})
		q.ProcessSlice(benchData)
		_ = q.Query(0.5)
	}
}

func BenchmarkCountEH(b *testing.B) {
	r := stream.NewRNG(2)
	bits := make([]bool, 1<<16)
	for i := range bits {
		bits[i] = r.Float64() < 0.5
	}
	b.SetBytes(int64(len(bits)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eh := NewCountEH(1<<12, 8)
		for _, bit := range bits {
			eh.Process(bit)
		}
	}
}
