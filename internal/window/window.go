// Package window implements the paper's sliding-window variants of the
// epsilon-approximate frequency and quantile queries (Section 5.3): queries
// over the most recent W stream elements, for both fixed-size windows and
// variable-size ("any suffix up to W") queries.
//
// The published text truncates partway through Section 5.3; the
// reconstruction here follows the setup it describes — the stream is cut
// into panes whose per-pane summaries are built by sorting (the GPU-
// accelerated step, identical to the whole-stream algorithms) and a ring of
// recent panes answers queries, with the pane size chosen so that boundary
// quantization and per-pane summarization each cost at most eps*W/2.
// DESIGN.md records this assumption.
package window

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gpustream/internal/histogram"
	"gpustream/internal/sorter"
)

// Item is a reported element with its estimated in-window frequency.
type Item struct {
	Value float32
	Freq  int64
}

// Timings records measured host wall time per phase, matching the
// whole-stream estimators.
type Timings struct {
	Sort, Merge, Compress time.Duration
}

// Total sums the phases.
func (t Timings) Total() time.Duration { return t.Sort + t.Merge + t.Compress }

// freqPane is one completed pane: its filtered histogram and total count.
type freqPane struct {
	bins  []histogram.Bin
	total int64
}

// SlidingFrequency answers eps-approximate frequency queries over the most
// recent W elements. The stream is split into panes of ceil(eps*W/2)
// elements; each completed pane is sorted, collapsed to a histogram, and
// compressed by dropping bins with count <= eps*pane/2. Estimates are within
// eps*W of the true frequency over the window, with no false negatives at
// support s when querying with threshold (s-eps)*W.
type SlidingFrequency struct {
	eps     float64
	w       int
	pane    int
	sorter  sorter.Sorter
	panes   []freqPane // oldest first
	buf     []float32
	n       int64
	timings Timings
	sorted  int64 // values sorted, for instrumentation
}

// NewSlidingFrequency returns a sliding-window frequency estimator of window
// size w and error eps, sorting panes with s.
func NewSlidingFrequency(eps float64, w int, s sorter.Sorter) *SlidingFrequency {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("window: eps %v out of (0, 1)", eps))
	}
	if w <= 0 {
		panic("window: window size must be positive")
	}
	pane := int(math.Ceil(eps * float64(w) / 2))
	if pane < 1 {
		pane = 1
	}
	if pane > w {
		pane = w
	}
	return &SlidingFrequency{eps: eps, w: w, pane: pane, sorter: s, buf: make([]float32, 0, pane)}
}

// Eps reports the configured error bound.
func (f *SlidingFrequency) Eps() float64 { return f.eps }

// WindowSize reports W.
func (f *SlidingFrequency) WindowSize() int { return f.w }

// PaneSize reports the pane length.
func (f *SlidingFrequency) PaneSize() int { return f.pane }

// Count reports the number of elements processed so far (whole stream).
func (f *SlidingFrequency) Count() int64 { return f.n }

// Timings returns measured per-phase host wall time.
func (f *SlidingFrequency) Timings() Timings { return f.timings }

// SortedValues reports how many values have passed through the sorter.
func (f *SlidingFrequency) SortedValues() int64 { return f.sorted }

// Panes reports the number of retained panes.
func (f *SlidingFrequency) Panes() int { return len(f.panes) }

// Process consumes one stream element.
func (f *SlidingFrequency) Process(v float32) {
	f.n++
	f.buf = append(f.buf, v)
	if len(f.buf) == f.pane {
		f.sealPane()
	}
}

// ProcessSlice consumes a batch of elements.
func (f *SlidingFrequency) ProcessSlice(data []float32) {
	for _, v := range data {
		f.Process(v)
	}
}

// sealPane summarizes the buffered pane and expires old panes.
func (f *SlidingFrequency) sealPane() {
	t0 := time.Now()
	f.sorter.Sort(f.buf)
	bins := histogram.FromSorted(f.buf)
	f.timings.Sort += time.Since(t0)
	f.sorted += int64(len(f.buf))

	// Compress: drop light bins; each drop undercounts an item by at most
	// eps*pane/2, and with <= 2/eps panes in a window the total stays
	// under eps*W/2.
	t2 := time.Now()
	thresh := int64(f.eps * float64(len(f.buf)) / 2)
	kept := bins[:0]
	var total int64
	for _, b := range bins {
		total += b.Count
		if b.Count > thresh {
			kept = append(kept, b)
		}
	}
	f.timings.Compress += time.Since(t2)

	f.panes = append(f.panes, freqPane{bins: append([]histogram.Bin(nil), kept...), total: total})
	f.buf = f.buf[:0]

	// Keep enough panes to cover W elements beyond the buffer.
	maxPanes := (f.w + f.pane - 1) / f.pane
	if len(f.panes) > maxPanes {
		f.panes = f.panes[len(f.panes)-maxPanes:]
	}
}

// merged returns the combined histogram over the newest panes covering at
// least span elements, plus the current partial pane, along with the element
// count it represents.
func (f *SlidingFrequency) merged(span int) ([]histogram.Bin, int64) {
	t1 := time.Now()
	var bins []histogram.Bin
	covered := int64(len(f.buf))
	if len(f.buf) > 0 {
		tmp := append([]float32(nil), f.buf...)
		f.sorter.Sort(tmp)
		bins = histogram.FromSorted(tmp)
	}
	for i := len(f.panes) - 1; i >= 0 && covered < int64(span); i-- {
		bins = histogram.Merge(bins, f.panes[i].bins)
		covered += f.panes[i].total
	}
	f.timings.Merge += time.Since(t1)
	return bins, covered
}

// Query returns the elements whose estimated frequency over the most recent
// W elements is at least (s - eps) * min(W, N), ordered by decreasing
// frequency.
func (f *SlidingFrequency) Query(s float64) []Item {
	return f.QueryWindow(s, f.w)
}

// QueryWindow answers the variable-size query over the most recent w
// elements, w <= W. Error is bounded by eps*W (absolute, in elements).
func (f *SlidingFrequency) QueryWindow(s float64, w int) []Item {
	if s < 0 || s > 1 {
		panic(fmt.Sprintf("window: support %v out of [0, 1]", s))
	}
	if w <= 0 || w > f.w {
		panic(fmt.Sprintf("window: query window %d out of (0, %d]", w, f.w))
	}
	bins, covered := f.merged(w)
	span := int64(w)
	if covered < span {
		span = covered
	}
	thresh := (s - f.eps) * float64(span)
	var out []Item
	for _, b := range bins {
		if float64(b.Count) >= thresh {
			out = append(out, Item{Value: b.Value, Freq: b.Count})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Estimate returns the estimated frequency of v over the most recent W
// elements.
func (f *SlidingFrequency) Estimate(v float32) int64 {
	bins, _ := f.merged(f.w)
	for _, b := range bins {
		if b.Value == v {
			return b.Count
		}
	}
	return 0
}
