// Package window implements the paper's sliding-window variants of the
// epsilon-approximate frequency and quantile queries (Section 5.3): queries
// over the most recent W stream elements, for both fixed-size windows and
// variable-size ("any suffix up to W") queries.
//
// The published text truncates partway through Section 5.3; the
// reconstruction here follows the setup it describes — the stream is cut
// into panes whose per-pane summaries are built by sorting (the GPU-
// accelerated step, identical to the whole-stream algorithms) and a ring of
// recent panes answers queries, with the pane size chosen so that boundary
// quantization and per-pane summarization each cost at most eps*W/2.
// DESIGN.md records this assumption.
//
// Pane buffering, lifecycle, locking, and telemetry come from the shared
// internal/pipeline core (a pane is just a window by another name); this
// file contributes the sort -> histogram -> compress pane sink and the
// pane ring. Queries are safe under concurrent ingestion; Snapshot returns
// an immutable view whose pane histograms are protected from the expiry
// freelist by a copy-on-write mark.
package window

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gpustream/internal/histogram"
	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
)

// Item is a reported element with its estimated in-window frequency.
type Item[T sorter.Value] = pipeline.Item[T]

// Option configures a sliding estimator (either kind; the knobs tune the
// execution mode, not the summaries).
type Option func(*config)

type config struct {
	async bool
}

// WithAsync enables staged asynchronous ingestion: panes sort on a dedicated
// stage goroutine overlapping the histogram/summary sealing of the previous
// pane. Answers are bit-identical to synchronous mode.
func WithAsync() Option { return func(c *config) { c.async = true } }

// paneSize derives the pane length from eps and W, clamped to [1, W].
func paneSize(eps float64, w int) int {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("window: eps %v out of (0, 1)", eps))
	}
	if w <= 0 {
		panic("window: window size must be positive")
	}
	pane := int(math.Ceil(eps * float64(w) / 2))
	if pane < 1 {
		pane = 1
	}
	if pane > w {
		pane = w
	}
	return pane
}

// freqPane is one completed pane: its filtered histogram and total count.
// shared marks the bins as aliased by a FrequencySnapshot, which excludes
// them from the expiry freelist (copy-on-write: the ring allocates fresh
// storage instead of overwriting what a snapshot still reads).
type freqPane[T sorter.Value] struct {
	bins   []histogram.Bin[T]
	total  int64
	shared bool
}

// SlidingFrequency answers eps-approximate frequency queries over the most
// recent W elements. The stream is split into panes of ceil(eps*W/2)
// elements; each completed pane is sorted, collapsed to a histogram, and
// compressed by dropping bins with count <= eps*pane/2. Estimates are within
// eps*W of the true frequency over the window, with no false negatives at
// support s when querying with threshold (s-eps)*W.
//
// One writer and any number of query goroutines may use the estimator
// concurrently.
type SlidingFrequency[T sorter.Value] struct {
	eps   float64
	w     int
	core  *pipeline.Core[T]
	panes []freqPane[T] // oldest first
	// binScratch is the reusable histogram scratch; binFree recycles the
	// bins storage of expired panes so steady-state panes allocate nothing.
	binScratch []histogram.Bin[T]
	binFree    [][]histogram.Bin[T]
}

// NewSlidingFrequency returns a sliding-window frequency estimator of window
// size w and error eps, sorting panes with s.
func NewSlidingFrequency[T sorter.Value](eps float64, w int, s sorter.Sorter[T], opts ...Option) *SlidingFrequency[T] {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	f := &SlidingFrequency[T]{eps: eps, w: w}
	f.core = pipeline.NewStagedCore(paneSize(eps, w), s, f.sealSorted)
	if cfg.async {
		f.core.StartAsync()
	}
	return f
}

// Eps reports the configured error bound.
func (f *SlidingFrequency[T]) Eps() float64 { return f.eps }

// WindowSize reports W.
func (f *SlidingFrequency[T]) WindowSize() int { return f.w }

// PaneSize reports the pane length.
func (f *SlidingFrequency[T]) PaneSize() int { return f.core.WindowSize() }

// SetTuner installs a runtime controller over the pipeline's sorter knob;
// it must be called before ingestion. Sliding estimators adapt the backend
// only: the pane size is query semantics (it fixes the eps*W error split),
// so the engine configures window tuning off for this family.
func (f *SlidingFrequency[T]) SetTuner(t pipeline.Tuner[T]) { f.core.SetTuner(t) }

// Knobs reports the currently selected sorter and pane size.
func (f *SlidingFrequency[T]) Knobs() (sorter.Sorter[T], int) { return f.core.Tuning() }

// Async reports the commanded execution mode of the pane pipeline.
func (f *SlidingFrequency[T]) Async() bool { return f.core.Async() }

// Count reports the number of elements processed so far (whole stream).
func (f *SlidingFrequency[T]) Count() int64 { return f.core.Count() }

// Stats returns the unified per-stage pipeline telemetry. Safe to call
// mid-ingestion; counters are internally consistent.
func (f *SlidingFrequency[T]) Stats() pipeline.Stats { return f.core.Stats() }

// SortedValues reports how many values have passed through the sorter.
func (f *SlidingFrequency[T]) SortedValues() int64 { return f.core.Stats().SortedValues }

// Panes reports the number of retained panes.
func (f *SlidingFrequency[T]) Panes() int {
	f.core.Lock()
	defer f.core.Unlock()
	f.core.BarrierLocked()
	return len(f.panes)
}

// Process consumes one stream element. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (f *SlidingFrequency[T]) Process(v T) error { return f.core.Process(v) }

// ProcessSlice consumes a batch of elements. After Close it returns an
// error wrapping pipeline.ErrClosed.
func (f *SlidingFrequency[T]) ProcessSlice(data []T) error { return f.core.ProcessSlice(data) }

// Flush seals the buffered partial pane. Queries do not need it — the
// partial pane is always visible — but it makes the state self-contained
// before Close or hand-off.
func (f *SlidingFrequency[T]) Flush() error { return f.core.Flush() }

// Close flushes and releases the pane buffer back to the shared pool. The
// estimator remains queryable; further ingestion reports
// pipeline.ErrClosed. Close is idempotent.
func (f *SlidingFrequency[T]) Close() error { return f.core.Close() }

// sealSorted is the merge-stage half of the pane pipeline: it receives a
// pane the core has already sorted (inline, or on the sort stage goroutine
// in async mode), collapses it to a histogram, compresses it, and expires
// old panes. The core holds the lock around the call in both modes.
func (f *SlidingFrequency[T]) sealSorted(win []T) {
	// The histogram collapse belongs to the paper's sort stage accounting;
	// the values were already counted when the core timed the sort itself.
	t0 := time.Now()
	f.binScratch = histogram.AppendSorted(f.binScratch[:0], win)
	bins := f.binScratch
	f.core.AddSort(time.Since(t0), 0)

	// Compress: drop light bins; each drop undercounts an item by at most
	// eps*pane/2, and with <= 2/eps panes in a window the total stays
	// under eps*W/2.
	t2 := time.Now()
	thresh := int64(f.eps * float64(len(win)) / 2)
	kept := bins[:0]
	var total int64
	for _, b := range bins {
		total += b.Count
		if b.Count > thresh {
			kept = append(kept, b)
		}
	}
	f.core.AddCompress(time.Since(t2), int64(len(bins)))

	// The pane copy reuses storage recycled from expired panes.
	var paneBins []histogram.Bin[T]
	if n := len(f.binFree); n > 0 {
		paneBins = f.binFree[n-1][:0]
		f.binFree = f.binFree[:n-1]
	}
	f.panes = append(f.panes, freqPane[T]{bins: append(paneBins, kept...), total: total})

	// Keep enough panes to cover W elements beyond the buffer. Bins aliased
	// by a snapshot are abandoned to it rather than recycled.
	maxPanes := (f.w + f.core.WindowSizeLocked() - 1) / f.core.WindowSizeLocked()
	if len(f.panes) > maxPanes {
		for _, p := range f.panes[:len(f.panes)-maxPanes] {
			if !p.shared {
				f.binFree = append(f.binFree, p.bins)
			}
		}
		f.panes = f.panes[len(f.panes)-maxPanes:]
	}
}

// mergePaneBins combines the newest panes covering at least span elements
// with an already-binned partial pane, returning the merged histogram and
// the element count it represents. histogram.Merge always writes a fresh
// output slice, so the inputs are never mutated.
func mergePaneBins[T sorter.Value](panes []freqPane[T], partialBins []histogram.Bin[T], partialCount int64, span int) ([]histogram.Bin[T], int64) {
	bins := partialBins
	covered := partialCount
	for i := len(panes) - 1; i >= 0 && covered < int64(span); i-- {
		bins = histogram.Merge(bins, panes[i].bins)
		covered += panes[i].total
	}
	return bins, covered
}

// heavyFromBins answers the support-s frequency query over a merged
// histogram covering `covered` of the requested w elements.
func heavyFromBins[T sorter.Value](bins []histogram.Bin[T], covered int64, w int, eps, s float64) []Item[T] {
	span := int64(w)
	if covered < span {
		span = covered
	}
	thresh := (s - eps) * float64(span)
	var out []Item[T]
	for _, b := range bins {
		if float64(b.Count) >= thresh {
			out = append(out, Item[T]{Value: b.Value, Freq: b.Count})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// estimateFromBins scans a merged histogram for v.
func estimateFromBins[T sorter.Value](bins []histogram.Bin[T], v T) int64 {
	for _, b := range bins {
		if b.Value == v {
			return b.Count
		}
	}
	return 0
}

// partialBinsLocked sorts a copy of the buffered partial pane into a fresh
// histogram. Caller must hold the core lock.
func (f *SlidingFrequency[T]) partialBinsLocked() []histogram.Bin[T] {
	if f.core.BufferedLocked() == 0 {
		return nil
	}
	tmp := append(f.core.Scratch(f.core.BufferedLocked()), f.core.Partial()...)
	f.core.SorterLocked().Sort(tmp)
	return histogram.FromSorted(tmp)
}

// merged returns the combined histogram over the newest panes covering at
// least span elements, plus the current partial pane, along with the element
// count it represents. Caller must hold the core lock.
func (f *SlidingFrequency[T]) merged(span int) ([]histogram.Bin[T], int64) {
	// Drain in-flight panes so the ring covers the whole emitted prefix and
	// the sorter is idle for the partial-pane sort.
	f.core.BarrierLocked()
	t1 := time.Now()
	bins, covered := mergePaneBins(f.panes, f.partialBinsLocked(), int64(f.core.BufferedLocked()), span)
	f.core.AddMerge(time.Since(t1), 0)
	return bins, covered
}

// Query returns the elements whose estimated frequency over the most recent
// W elements is at least (s - eps) * min(W, N), ordered by decreasing
// frequency. Safe under concurrent ingestion.
func (f *SlidingFrequency[T]) Query(s float64) []Item[T] {
	return f.QueryWindow(s, f.w)
}

// QueryWindow answers the variable-size query over the most recent w
// elements, w <= W. Error is bounded by eps*W (absolute, in elements).
// Safe under concurrent ingestion.
func (f *SlidingFrequency[T]) QueryWindow(s float64, w int) []Item[T] {
	if s < 0 || s > 1 {
		panic(fmt.Sprintf("window: support %v out of [0, 1]", s))
	}
	if w <= 0 || w > f.w {
		panic(fmt.Sprintf("window: query window %d out of (0, %d]", w, f.w))
	}
	f.core.Lock()
	bins, covered := f.merged(w)
	f.core.Unlock()
	return heavyFromBins(bins, covered, w, f.eps, s)
}

// Estimate returns the estimated frequency of v over the most recent W
// elements. Safe under concurrent ingestion.
func (f *SlidingFrequency[T]) Estimate(v T) int64 {
	f.core.Lock()
	bins, _ := f.merged(f.w)
	f.core.Unlock()
	return estimateFromBins(bins, v)
}

// FrequencySnapshot is an immutable point-in-time view of a sliding-window
// frequency estimator. It aliases the live pane histograms under the
// copy-on-write discipline (the ring abandons shared bins to the snapshot
// instead of recycling them on expiry), so taking one costs O(partial pane).
// A FrequencySnapshot is safe for concurrent use and implements
// pipeline.View.
type FrequencySnapshot[T sorter.Value] struct {
	eps          float64
	w            int
	count        int64
	panes        []freqPane[T] // oldest first; bins shared with the estimator
	partialBins  []histogram.Bin[T]
	partialCount int64
}

// Snapshot returns an immutable view of the current window state. The view
// answers HeavyHitters/Frequency (and variable-span QueryWindow) queries
// and never sees ingestion that happens after this call.
func (f *SlidingFrequency[T]) Snapshot() pipeline.View[T] {
	f.core.Lock()
	defer f.core.Unlock()
	f.core.BarrierLocked()
	pbins := f.partialBinsLocked()
	if pbins != nil {
		// The scratch-backed histogram copy is reused by later queries;
		// give the snapshot its own storage.
		pbins = append([]histogram.Bin[T](nil), pbins...)
	}
	for i := range f.panes {
		f.panes[i].shared = true
	}
	return &FrequencySnapshot[T]{
		eps:          f.eps,
		w:            f.w,
		count:        f.core.CountLocked(),
		panes:        append([]freqPane[T](nil), f.panes...),
		partialBins:  pbins,
		partialCount: int64(f.core.BufferedLocked()),
	}
}

// Count reports the whole-stream length the snapshot was taken at.
func (s *FrequencySnapshot[T]) Count() int64 { return s.count }

// Size reports the retained histogram bins across panes and the partial
// pane.
func (s *FrequencySnapshot[T]) Size() int {
	total := len(s.partialBins)
	for _, p := range s.panes {
		total += len(p.bins)
	}
	return total
}

// Eps reports the snapshot's error bound.
func (s *FrequencySnapshot[T]) Eps() float64 { return s.eps }

// WindowSize reports W.
func (s *FrequencySnapshot[T]) WindowSize() int { return s.w }

// Query answers the support-sp frequency query over the most recent W
// elements as of the snapshot.
func (s *FrequencySnapshot[T]) Query(sp float64) []Item[T] { return s.QueryWindow(sp, s.w) }

// QueryWindow answers the variable-size query over the most recent w
// elements as of the snapshot, w <= W.
func (s *FrequencySnapshot[T]) QueryWindow(sp float64, w int) []Item[T] {
	if sp < 0 || sp > 1 {
		panic(fmt.Sprintf("window: support %v out of [0, 1]", sp))
	}
	if w <= 0 || w > s.w {
		panic(fmt.Sprintf("window: query window %d out of (0, %d]", w, s.w))
	}
	bins, covered := mergePaneBins(s.panes, s.partialBins, s.partialCount, w)
	return heavyFromBins(bins, covered, w, s.eps, sp)
}

// Estimate returns the estimated frequency of v over the most recent W
// elements as of the snapshot.
func (s *FrequencySnapshot[T]) Estimate(v T) int64 {
	bins, _ := mergePaneBins(s.panes, s.partialBins, s.partialCount, s.w)
	return estimateFromBins(bins, v)
}

// Quantile implements pipeline.View; frequency sketches do not answer
// quantile queries.
func (s *FrequencySnapshot[T]) Quantile(float64) (T, bool) { var z T; return z, false }

// HeavyHitters implements pipeline.View.
func (s *FrequencySnapshot[T]) HeavyHitters(support float64) ([]Item[T], bool) {
	return s.Query(support), true
}

// Frequency implements pipeline.View.
func (s *FrequencySnapshot[T]) Frequency(v T) (int64, bool) { return s.Estimate(v), true }
