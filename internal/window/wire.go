package window

import (
	"gpustream/internal/histogram"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
	"gpustream/internal/wire"
)

// Wire layouts of the sliding-window snapshots. Both serialize the pane ring
// at full fidelity — per-pane state, not a pre-merged view — so a decoded
// snapshot answers variable-span QueryWindow queries exactly like the
// original. See DESIGN.md section 12.
//
// FrequencySnapshot (family tag wire.FamilyWindowFrequency):
//
//	header       wire.HeaderSize bytes
//	eps          float64
//	w            int64
//	count        int64
//	partialCount int64
//	partialBins  uint32 + count × (value[4|8] + count int64)
//	panes        uint32 + count × (total int64, uint32 + bins)
//
// QuantileSnapshot (family tag wire.FamilyWindowQuantile):
//
//	header  wire.HeaderSize bytes
//	eps     float64
//	w       int64
//	count   int64
//	partial uint8 (0|1) + summary wire encoding when 1
//	panes   uint32 + count × summary wire encoding

// appendBins appends a histogram bin list: uint32 count then value+count
// pairs.
func appendBins[T sorter.Value](b []byte, bins []histogram.Bin[T]) []byte {
	b = wire.AppendU32(b, uint32(len(bins)))
	for _, bin := range bins {
		b = wire.AppendValue(b, bin.Value)
		b = wire.AppendI64(b, bin.Count)
	}
	return b
}

// decodeBins reads a histogram bin list, enforcing strict value order so
// decoded panes uphold the same invariants as live ones.
func decodeBins[T sorter.Value](r *wire.Reader) ([]histogram.Bin[T], error) {
	count, err := r.Count(wire.ValueSize[T]() + 8)
	if err != nil {
		return nil, err
	}
	var bins []histogram.Bin[T]
	if count > 0 {
		bins = make([]histogram.Bin[T], count)
	}
	for i := range bins {
		if bins[i].Value, err = wire.ReadValue[T](r); err != nil {
			return nil, err
		}
		if bins[i].Count, err = r.I64(); err != nil {
			return nil, err
		}
		if i > 0 && !(bins[i-1].Value < bins[i].Value) {
			return nil, wire.Corruptf("window: histogram bins not strictly value-ascending at %d", i)
		}
	}
	return bins, nil
}

// MarshalBinary implements encoding.BinaryMarshaler: the versioned,
// endian-stable wire encoding of the snapshot. The encoding is canonical —
// unmarshal then marshal reproduces the bytes exactly.
func (s *FrequencySnapshot[T]) MarshalBinary() ([]byte, error) {
	b := wire.AppendHeader(nil, wire.FamilyWindowFrequency, wire.TagOf[T]())
	b = wire.AppendF64(b, s.eps)
	b = wire.AppendI64(b, int64(s.w))
	b = wire.AppendI64(b, s.count)
	b = wire.AppendI64(b, s.partialCount)
	b = appendBins(b, s.partialBins)
	b = wire.AppendU32(b, uint32(len(s.panes)))
	for _, p := range s.panes {
		b = wire.AppendI64(b, p.total)
		b = appendBins(b, p.bins)
	}
	return b, nil
}

// UnmarshalFrequencySnapshot decodes a sliding-frequency snapshot marshaled
// by any process. Every failure returns a wrapped wire sentinel error; it
// never panics and never allocates from an unvalidated length field.
func UnmarshalFrequencySnapshot[T sorter.Value](data []byte) (*FrequencySnapshot[T], error) {
	r := wire.NewReader(data)
	if err := r.Header(wire.FamilyWindowFrequency, wire.TagOf[T]()); err != nil {
		return nil, err
	}
	s := &FrequencySnapshot[T]{}
	var err error
	if s.eps, err = r.F64(); err != nil {
		return nil, err
	}
	w, err := r.I64()
	if err != nil {
		return nil, err
	}
	if w <= 0 || int64(int(w)) != w {
		return nil, wire.Corruptf("window: window size %d out of range", w)
	}
	s.w = int(w)
	if s.count, err = r.I64(); err != nil {
		return nil, err
	}
	if s.partialCount, err = r.I64(); err != nil {
		return nil, err
	}
	if s.count < 0 || s.partialCount < 0 {
		return nil, wire.Corruptf("window: negative counts (%d, %d)", s.count, s.partialCount)
	}
	if s.partialBins, err = decodeBins[T](r); err != nil {
		return nil, err
	}
	// A pane is at least its total plus an empty bin list.
	paneCount, err := r.Count(8 + 4)
	if err != nil {
		return nil, err
	}
	if paneCount > 0 {
		s.panes = make([]freqPane[T], paneCount)
	}
	for i := range s.panes {
		if s.panes[i].total, err = r.I64(); err != nil {
			return nil, err
		}
		if s.panes[i].total < 0 {
			return nil, wire.Corruptf("window: pane %d has negative total %d", i, s.panes[i].total)
		}
		if s.panes[i].bins, err = decodeBins[T](r); err != nil {
			return nil, err
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// MarshalBinary implements encoding.BinaryMarshaler: the versioned,
// endian-stable wire encoding of the snapshot. The encoding is canonical —
// unmarshal then marshal reproduces the bytes exactly.
func (s *QuantileSnapshot[T]) MarshalBinary() ([]byte, error) {
	b := wire.AppendHeader(nil, wire.FamilyWindowQuantile, wire.TagOf[T]())
	b = wire.AppendF64(b, s.eps)
	b = wire.AppendI64(b, int64(s.w))
	b = wire.AppendI64(b, s.count)
	if s.partial == nil {
		b = wire.AppendU8(b, 0)
	} else {
		b = wire.AppendU8(b, 1)
		b = summary.AppendBinary(b, s.partial)
	}
	b = wire.AppendU32(b, uint32(len(s.panes)))
	for _, p := range s.panes {
		b = summary.AppendBinary(b, p)
	}
	return b, nil
}

// UnmarshalQuantileSnapshot decodes a sliding-quantile snapshot marshaled by
// any process. Every failure returns a wrapped wire sentinel error; it never
// panics and never allocates from an unvalidated length field.
func UnmarshalQuantileSnapshot[T sorter.Value](data []byte) (*QuantileSnapshot[T], error) {
	r := wire.NewReader(data)
	if err := r.Header(wire.FamilyWindowQuantile, wire.TagOf[T]()); err != nil {
		return nil, err
	}
	s := &QuantileSnapshot[T]{}
	var err error
	if s.eps, err = r.F64(); err != nil {
		return nil, err
	}
	w, err := r.I64()
	if err != nil {
		return nil, err
	}
	if w <= 0 || int64(int(w)) != w {
		return nil, wire.Corruptf("window: window size %d out of range", w)
	}
	s.w = int(w)
	if s.count, err = r.I64(); err != nil {
		return nil, err
	}
	if s.count < 0 {
		return nil, wire.Corruptf("window: negative count %d", s.count)
	}
	present, err := r.U8()
	if err != nil {
		return nil, err
	}
	switch present {
	case 0:
	case 1:
		if s.partial, err = summary.Decode[T](r); err != nil {
			return nil, err
		}
	default:
		return nil, wire.Corruptf("window: partial-present flag %d", present)
	}
	// A pane summary is at least eps + n + an empty entry list.
	paneCount, err := r.Count(8 + 8 + 4)
	if err != nil {
		return nil, err
	}
	if paneCount > 0 {
		s.panes = make([]*summary.Summary[T], paneCount)
	}
	for i := range s.panes {
		if s.panes[i], err = summary.Decode[T](r); err != nil {
			return nil, err
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
