package window

import (
	"math"
	"testing"
	"testing/quick"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/stream"
)

func exactWindowCounts(data []float32, w int) map[float32]int64 {
	start := len(data) - w
	if start < 0 {
		start = 0
	}
	out := map[float32]int64{}
	for _, v := range data[start:] {
		out[v]++
	}
	return out
}

func TestSlidingFrequencyErrorBound(t *testing.T) {
	const eps = 0.02
	const W = 5000
	data := stream.Zipf(30000, 1.2, 300, 1)
	f := NewSlidingFrequency(eps, W, cpusort.QuicksortSorter[float32]{})
	f.ProcessSlice(data)
	truth := exactWindowCounts(data, W)
	for v := 0; v < 300; v++ {
		val := float32(v)
		est := f.Estimate(val)
		diff := math.Abs(float64(est - truth[val]))
		if diff > eps*float64(W)+1e-9 {
			t.Fatalf("value %d: est %d true %d diff %v > epsW", v, est, truth[val], diff)
		}
	}
}

func TestSlidingFrequencyNoFalseNegatives(t *testing.T) {
	const eps, s = 0.01, 0.05
	const W = 4000
	data := stream.Zipf(20000, 1.4, 500, 2)
	f := NewSlidingFrequency(eps, W, cpusort.QuicksortSorter[float32]{})
	f.ProcessSlice(data)
	truth := exactWindowCounts(data, W)
	reported := map[float32]bool{}
	for _, it := range f.Query(s) {
		reported[it.Value] = true
	}
	for v, c := range truth {
		if float64(c) >= s*float64(W) && !reported[v] {
			t.Fatalf("false negative: %v with true window count %d", v, c)
		}
	}
}

func TestSlidingFrequencyBeforeWindowFills(t *testing.T) {
	const eps = 0.05
	f := NewSlidingFrequency(eps, 1000, cpusort.QuicksortSorter[float32]{})
	f.ProcessSlice([]float32{1, 1, 2})
	if got := f.Estimate(1); got != 2 {
		t.Fatalf("Estimate(1) = %d before window fills", got)
	}
	items := f.Query(0.5)
	if len(items) == 0 || items[0].Value != 1 {
		t.Fatalf("Query = %v", items)
	}
}

func TestSlidingFrequencyVariableWindow(t *testing.T) {
	const eps = 0.02
	const W = 8000
	data := stream.Zipf(30000, 1.3, 200, 3)
	f := NewSlidingFrequency(eps, W, cpusort.QuicksortSorter[float32]{})
	f.ProcessSlice(data)
	for _, w := range []int{1000, 2500, 8000} {
		truth := exactWindowCounts(data, w)
		for _, it := range f.QueryWindow(0.05, w) {
			// Reported items must have a plausible true count: within
			// eps*W absolute of the estimate.
			if math.Abs(float64(it.Freq-truth[it.Value])) > eps*float64(W)+1e-9 {
				t.Fatalf("w=%d value %v: est %d true %d", w, it.Value, it.Freq, truth[it.Value])
			}
		}
	}
}

func TestSlidingFrequencyMemoryBounded(t *testing.T) {
	const eps = 0.01
	const W = 100000
	f := NewSlidingFrequency(eps, W, cpusort.QuicksortSorter[float32]{})
	f.ProcessSlice(stream.UniformInts(300000, 1000000, 4))
	if f.Panes() > (W+f.PaneSize()-1)/f.PaneSize() {
		t.Fatalf("panes = %d beyond ring bound", f.Panes())
	}
	bins := 0
	for _, p := range f.panes {
		bins += len(p.bins)
	}
	// Each pane keeps at most 2/eps heavy bins.
	if perPane := 2/eps + 2; float64(bins) > perPane*float64(f.Panes()) {
		t.Fatalf("retained bins %d exceed per-pane bound", bins)
	}
}

func TestSlidingFrequencyGPUBackendMatchesCPU(t *testing.T) {
	const eps = 0.05
	data := stream.Zipf(5000, 1.2, 100, 5)
	cpu := NewSlidingFrequency(eps, 2000, cpusort.QuicksortSorter[float32]{})
	gpu := NewSlidingFrequency(eps, 2000, gpusort.NewSorter[float32]())
	cpu.ProcessSlice(data)
	gpu.ProcessSlice(data)
	for v := 0; v < 100; v++ {
		if cpu.Estimate(float32(v)) != gpu.Estimate(float32(v)) {
			t.Fatalf("backends disagree on %d", v)
		}
	}
}

func TestSlidingFrequencyPanics(t *testing.T) {
	mk := func() *SlidingFrequency[float32] {
		return NewSlidingFrequency(0.1, 100, cpusort.QuicksortSorter[float32]{})
	}
	for _, fn := range []func(){
		func() { NewSlidingFrequency(0, 100, cpusort.QuicksortSorter[float32]{}) },
		func() { NewSlidingFrequency(0.1, 0, cpusort.QuicksortSorter[float32]{}) },
		func() { mk().Query(2) },
		func() { mk().QueryWindow(0.5, 0) },
		func() { mk().QueryWindow(0.5, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func trueWindowQuantile(data []float32, w int, phi float64) (float32, float32, float64) {
	start := len(data) - w
	if start < 0 {
		start = 0
	}
	win := append([]float32(nil), data[start:]...)
	cpusort.Quicksort(win)
	r := int(math.Ceil(phi * float64(len(win))))
	if r < 1 {
		r = 1
	}
	return win[r-1], 0, float64(len(win))
}

func windowRankOf(data []float32, w int, v float32) (lo, hi int) {
	start := len(data) - w
	if start < 0 {
		start = 0
	}
	win := append([]float32(nil), data[start:]...)
	cpusort.Quicksort(win)
	lo = len(win) + 1
	hi = 0
	for i, x := range win {
		if x == v {
			if i+1 < lo {
				lo = i + 1
			}
			hi = i + 1
		}
	}
	if hi == 0 { // value absent: rank position where it would insert
		for i, x := range win {
			if x > v {
				lo, hi = i, i
				return
			}
		}
		lo, hi = len(win), len(win)
	}
	return
}

func TestSlidingQuantileErrorBound(t *testing.T) {
	const eps = 0.02
	const W = 5000
	data := stream.Uniform(30000, 6)
	q := NewSlidingQuantile(eps, W, cpusort.QuicksortSorter[float32]{})
	q.ProcessSlice(data)
	for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		got := q.Query(phi)
		r := int(math.Ceil(phi * float64(W)))
		lo, hi := windowRankOf(data, W, got)
		var d int
		switch {
		case r < lo:
			d = lo - r
		case r > hi:
			d = r - hi
		}
		if float64(d) > eps*float64(W)+1 {
			t.Fatalf("phi=%v: rank error %d > epsW", phi, d)
		}
	}
	_, _, _ = trueWindowQuantile(data, W, 0.5)
}

func TestSlidingQuantileQuick(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 4 {
			return true
		}
		const eps = 0.2
		const W = 50
		q := NewSlidingQuantile(eps, W, cpusort.QuicksortSorter[float32]{})
		data := make([]float32, len(raw))
		for i, v := range raw {
			data[i] = float32(v)
			q.Process(float32(v))
		}
		got := q.Query(0.5)
		span := W
		if len(data) < span {
			span = len(data)
		}
		r := (span + 1) / 2
		lo, hi := windowRankOf(data, W, got)
		var d int
		switch {
		case r < lo:
			d = lo - r
		case r > hi:
			d = r - hi
		}
		return float64(d) <= eps*float64(W)+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSlidingQuantileVariableWindow(t *testing.T) {
	const eps = 0.02
	const W = 8000
	data := stream.Gaussian(30000, 100, 15, 7)
	q := NewSlidingQuantile(eps, W, cpusort.QuicksortSorter[float32]{})
	q.ProcessSlice(data)
	for _, w := range []int{2000, 4000, 8000} {
		med := q.QueryWindow(0.5, w)
		r := (w + 1) / 2
		lo, hi := windowRankOf(data, w, med)
		var d int
		switch {
		case r < lo:
			d = lo - r
		case r > hi:
			d = r - hi
		}
		// Guarantee is absolute eps*W even for smaller w.
		if float64(d) > eps*float64(W)+1 {
			t.Fatalf("w=%d: rank error %d", w, d)
		}
	}
}

func TestSlidingQuantileMemoryBounded(t *testing.T) {
	const eps = 0.01
	const W = 100000
	q := NewSlidingQuantile(eps, W, cpusort.QuicksortSorter[float32]{})
	q.ProcessSlice(stream.Uniform(250000, 8))
	// O((2/eps)^2) entries plus pane buffer.
	if got := q.SummaryEntries(); float64(got) > 4/(eps*eps)+float64(q.PaneSize()) {
		t.Fatalf("summary entries = %d beyond bound", got)
	}
}

func TestSlidingQuantileEmptyPanics(t *testing.T) {
	q := NewSlidingQuantile(0.1, 100, cpusort.QuicksortSorter[float32]{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	q.Query(0.5)
}

func TestCountEHAccuracy(t *testing.T) {
	const W = 1000
	const k = 10
	eh := NewCountEH(W, k)
	r := stream.NewRNG(9)
	bits := make([]bool, 0, 20000)
	for i := 0; i < 20000; i++ {
		one := r.Float64() < 0.3
		bits = append(bits, one)
		eh.Process(one)
		if i%1000 == 999 {
			var truth int64
			start := len(bits) - W
			if start < 0 {
				start = 0
			}
			for _, b := range bits[start:] {
				if b {
					truth++
				}
			}
			est := eh.Estimate()
			if truth > 0 && math.Abs(float64(est-truth)) > float64(truth)/float64(k)+1 {
				t.Fatalf("at %d: est %d true %d beyond 1/k", i, est, truth)
			}
		}
	}
}

func TestCountEHSpace(t *testing.T) {
	eh := NewCountEH(100000, 5)
	r := stream.NewRNG(10)
	for i := 0; i < 200000; i++ {
		eh.Process(r.Float64() < 0.5)
	}
	// O(k log W) buckets.
	if eh.Buckets() > 6*18 {
		t.Fatalf("buckets = %d, not logarithmic", eh.Buckets())
	}
}

func TestCountEHAllZeros(t *testing.T) {
	eh := NewCountEH(100, 4)
	for i := 0; i < 500; i++ {
		eh.Process(false)
	}
	if eh.Estimate() != 0 {
		t.Fatalf("Estimate = %d on all-zero stream", eh.Estimate())
	}
}

func TestCountEHPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCountEH(0, 1)
}

func TestAccessorsAndStats(t *testing.T) {
	sf := NewSlidingFrequency(0.05, 1000, cpusort.QuicksortSorter[float32]{})
	sq := NewSlidingQuantile(0.05, 1000, cpusort.QuicksortSorter[float32]{})
	data := stream.Uniform(3000, 30)
	sf.ProcessSlice(data)
	sq.ProcessSlice(data)

	if sf.Eps() != 0.05 || sq.Eps() != 0.05 {
		t.Fatal("Eps accessor")
	}
	if sf.WindowSize() != 1000 || sq.WindowSize() != 1000 {
		t.Fatal("WindowSize accessor")
	}
	if sf.Count() != 3000 || sq.Count() != 3000 {
		t.Fatal("Count accessor")
	}
	if sf.SortedValues() == 0 || sq.SortedValues() == 0 {
		t.Fatal("SortedValues accessor")
	}
	if sf.Panes() == 0 || sq.Panes() == 0 {
		t.Fatal("Panes accessor")
	}
	_ = sf.Query(0.1)
	_ = sq.Query(0.5)
	if sf.Stats().Total() <= 0 || sq.Stats().Total() <= 0 {
		t.Fatal("Stats accessor")
	}
	if sf.Stats().Windows == 0 || sq.Stats().Windows == 0 {
		t.Fatal("Stats window count")
	}
	ws := sq.WindowSummary(500)
	if ws == nil || ws.N == 0 {
		t.Fatal("WindowSummary empty")
	}
}

func TestSlidingQuantilePaneClamp(t *testing.T) {
	// eps*W/2 > W forces the pane clamp branch.
	q := NewSlidingQuantile(0.9, 2, cpusort.QuicksortSorter[float32]{})
	if q.PaneSize() != 1 {
		t.Fatalf("PaneSize = %d", q.PaneSize())
	}
	f := NewSlidingFrequency(0.9, 1, cpusort.QuicksortSorter[float32]{})
	if f.PaneSize() != 1 {
		t.Fatalf("freq PaneSize = %d", f.PaneSize())
	}
}
