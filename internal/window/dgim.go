package window

import "fmt"

// CountEH is an exponential histogram for counting ones over a sliding
// window (Datar, Gionis, Indyk, Motwani), the structure the paper cites as
// the basis for sliding-window statistics [13] and which Section 5.2 adapts
// for quantile summaries. It maintains buckets of exponentially growing
// sizes with at most k buckets per size, answering "how many ones in the
// last W elements" within a 1/k relative error in O(k log W) space.
type CountEH struct {
	w       int
	k       int
	time    int64
	buckets []ehBucket // newest first
}

type ehBucket struct {
	stamp int64 // arrival time of the most recent one in the bucket
	size  int64
}

// NewCountEH returns an exponential histogram over windows of w elements
// with at most k buckets per size (relative error <= 1/k).
func NewCountEH(w, k int) *CountEH {
	if w <= 0 || k <= 0 {
		panic(fmt.Sprintf("window: CountEH with w=%d k=%d", w, k))
	}
	return &CountEH{w: w, k: k}
}

// Process consumes one bit of the stream.
func (c *CountEH) Process(one bool) {
	c.time++
	// Expire buckets that fell out of the window.
	for len(c.buckets) > 0 {
		last := c.buckets[len(c.buckets)-1]
		if last.stamp <= c.time-int64(c.w) {
			c.buckets = c.buckets[:len(c.buckets)-1]
		} else {
			break
		}
	}
	if !one {
		return
	}
	c.buckets = append([]ehBucket{{stamp: c.time, size: 1}}, c.buckets...)
	// Cascade merges: allow at most k buckets of each size; merging two
	// oldest buckets of a size doubles them.
	size := int64(1)
	for {
		count := 0
		firstIdx, secondIdx := -1, -1
		for i, b := range c.buckets {
			if b.size == size {
				count++
				if count == c.k+1 {
					secondIdx = i
				}
				if count == c.k+2 {
					firstIdx = i
				}
			}
		}
		if firstIdx < 0 {
			return
		}
		// Merge the two oldest buckets of this size (they are the ones at
		// the larger indices: secondIdx and firstIdx with firstIdx older).
		merged := ehBucket{stamp: c.buckets[secondIdx].stamp, size: 2 * size}
		c.buckets[secondIdx] = merged
		c.buckets = append(c.buckets[:firstIdx], c.buckets[firstIdx+1:]...)
		size *= 2
	}
}

// Buckets reports the number of live buckets.
func (c *CountEH) Buckets() int { return len(c.buckets) }

// Estimate returns the approximate number of ones in the last W elements:
// the full sizes of all but the oldest bucket plus half the oldest.
func (c *CountEH) Estimate() int64 {
	if len(c.buckets) == 0 {
		return 0
	}
	var total int64
	for _, b := range c.buckets {
		total += b.size
	}
	oldest := c.buckets[len(c.buckets)-1].size
	return total - oldest + (oldest+1)/2
}
