package shard

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// stepRescaler commands a fixed shard-count sequence, one command per
// Observe call once `after` values have been ingested, then keeps.
type stepRescaler struct {
	after int64
	steps []int
	i     int
}

func (r *stepRescaler) Observe(total int64, shards int) int {
	if r.i >= len(r.steps) || total < r.after*int64(r.i+1) {
		return 0
	}
	cmd := r.steps[r.i]
	r.i++
	return cmd
}

// TestElasticQuantileRescale walks a quantile family up and back down
// through scripted rescales and checks the invariants the elastic design
// promises: no values lost, eps holds over the union of live and retired
// shards, the live count tracks the last command, and retired telemetry is
// folded into Stats.
func TestElasticQuantileRescale(t *testing.T) {
	t.Parallel()
	const n = 30_000
	const eps = 0.02
	rng := rand.New(rand.NewSource(11))
	data := genStream(rng, n, 1)

	r := &stepRescaler{after: 4_000, steps: []int{3, 4, 2, 1}}
	q := NewQuantile(eps, int64(n), 1, cpuSorter, WithBatchSize(1024), WithRescaler(r))
	if got := q.ShardEps(); got != eps/2 {
		t.Fatalf("elastic K=1 shard eps = %v, want merge-safe %v", got, eps/2)
	}
	if err := q.ProcessSlice(data); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if r.i != len(r.steps) {
		t.Fatalf("executed %d of %d rescale commands", r.i, len(r.steps))
	}
	if got := q.Shards(); got != 1 {
		t.Fatalf("final shards = %d, want 1", got)
	}
	if got := q.Count(); got != int64(n) {
		t.Fatalf("Count = %d, want %d", got, n)
	}
	sorted := append([]float32(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
		rk := int64(math.Ceil(phi * float64(n)))
		if rk < 1 {
			rk = 1
		}
		if d := rankDist(sorted, q.Query(phi), rk); float64(d) > eps*float64(n)+1e-9 {
			t.Errorf("phi=%g: rank error %d > eps*N=%g", phi, d, eps*float64(n))
		}
	}
	// Retired shards' windows fold into the aggregate telemetry: the sum
	// over live + retired must cover every ingested value exactly once.
	if st := q.Stats(); st.SortedValues != int64(n) {
		t.Fatalf("Stats.SortedValues = %d after rescales, want %d", st.SortedValues, n)
	}
	// Snapshot over live + retired shards covers the whole stream too.
	if c := q.Snapshot().Count(); c != int64(n) {
		t.Fatalf("snapshot count = %d, want %d", c, n)
	}
}

// TestElasticFrequencyRescale is the frequency-family analogue: additive
// undercounts across live and retired shards keep the no-overcount /
// bounded-undercount contract through any reshard schedule.
func TestElasticFrequencyRescale(t *testing.T) {
	t.Parallel()
	const n = 30_000
	const eps = 0.01
	rng := rand.New(rand.NewSource(12))
	data := genStream(rng, n, 0)

	r := &stepRescaler{after: 4_000, steps: []int{4, 2, 3}}
	fq := NewFrequency(eps, 2, cpuSorter, WithBatchSize(1024), WithRescaler(r))
	if err := fq.ProcessSlice(data); err != nil {
		t.Fatal(err)
	}
	if err := fq.Close(); err != nil {
		t.Fatal(err)
	}
	if r.i != len(r.steps) {
		t.Fatalf("executed %d of %d rescale commands", r.i, len(r.steps))
	}
	if got := fq.Shards(); got != 3 {
		t.Fatalf("final shards = %d, want 3", got)
	}
	exact := map[float32]int64{}
	for _, v := range data {
		exact[v]++
	}
	for v, truth := range exact {
		got := fq.Estimate(v)
		if got > truth {
			t.Fatalf("Estimate(%v) = %d overcounts true %d", v, got, truth)
		}
		if float64(truth-got) > eps*float64(n)+1e-9 {
			t.Fatalf("Estimate(%v) = %d undercounts true %d beyond eps*N", v, got, truth)
		}
	}
}

// TestPoolWorkerLifecycle pins the pool's add/remove primitives directly:
// round-robin picks up fresh workers, removal quiesces and joins exactly
// the tail, boundary commands are rejected, and a closed pool refuses both.
func TestPoolWorkerLifecycle(t *testing.T) {
	t.Parallel()
	counts := make([]int64, 4)
	proc := func(i int) func([]float32) {
		return func(b []float32) { counts[i] += int64(len(b)) }
	}
	p := newPool([]func([]float32){proc(0), proc(1)}, config{batch: 8}, nil)

	feed := func(k int) {
		for i := 0; i < k; i++ {
			if err := p.ProcessSlice(make([]float32, 8)); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(4)
	if !p.addWorkers([]func([]float32){proc(2), proc(3)}) {
		t.Fatal("addWorkers on live pool failed")
	}
	if got := p.Shards(); got != 4 {
		t.Fatalf("Shards after add = %d, want 4", got)
	}
	feed(8) // round-robin must now include workers 2 and 3
	if _, ok := p.removeWorkers(0); ok {
		t.Fatal("removeWorkers(0) succeeded")
	}
	if _, ok := p.removeWorkers(4); ok {
		t.Fatal("removeWorkers(all) succeeded; pool must keep one worker")
	}
	idle, ok := p.removeWorkers(2)
	if !ok || len(idle) != 2 {
		t.Fatalf("removeWorkers(2) = %v, %v", idle, ok)
	}
	if got := p.Shards(); got != 2 {
		t.Fatalf("Shards after remove = %d, want 2", got)
	}
	feed(4)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if counts[2] == 0 || counts[3] == 0 {
		t.Fatalf("added workers never dispatched: counts = %v", counts)
	}
	if total := counts[0] + counts[1] + counts[2] + counts[3]; total != 16*8 {
		t.Fatalf("dispatched %d values, want %d", total, 16*8)
	}
	if p.addWorkers([]func([]float32){proc(0)}) {
		t.Fatal("addWorkers on closed pool succeeded")
	}
	if _, ok := p.removeWorkers(1); ok {
		t.Fatal("removeWorkers on closed pool succeeded")
	}
}

// TestElasticRescaleAfterCloseRollsBack exercises the scale-up rollback:
// when the pool refuses new workers (closed), the family must close the
// speculatively built shard estimators and restore its shard set.
func TestElasticRescaleAfterCloseRollsBack(t *testing.T) {
	t.Parallel()
	r := &stepRescaler{}
	q := NewQuantile(0.02, 1_000, 2, cpuSorter, WithBatchSize(64), WithRescaler(r))
	data := make([]float32, 256)
	for i := range data {
		data[i] = float32(i)
	}
	if err := q.ProcessSlice(data); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	q.rescale(4) // pool is closed: addWorkers fails, shard set must roll back
	if got := q.Shards(); got != 2 {
		t.Fatalf("Shards after rolled-back rescale = %d, want 2", got)
	}
	q.mu.RLock()
	ests := len(q.ests)
	q.mu.RUnlock()
	if ests != 2 {
		t.Fatalf("estimator set after rolled-back rescale = %d, want 2", ests)
	}
	// Queries still answer from the intact shard set.
	if v := q.Query(0.5); v < 0 || v > 256 {
		t.Fatalf("post-rollback median = %v", v)
	}
}
