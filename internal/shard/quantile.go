package shard

import (
	"context"
	"fmt"
	"sync/atomic"

	"gpustream/internal/perfmodel"
	"gpustream/internal/pipeline"
	"gpustream/internal/quantile"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// Quantile answers eps-approximate quantile queries over a stream ingested
// in parallel by K shard workers. Each shard runs the exponential-histogram
// GK estimator with an eps/2 budget; queries merge the shard summaries,
// which by the GK merge rule stay eps/2-approximate over the union — within
// the user's eps with headroom to spare (DESIGN.md section 7).
//
// With a single shard the estimator runs at the full eps and delegates
// queries directly, so K=1 output is bit-identical to the serial
// quantile.Estimator fed the same stream.
//
// Queries and snapshots are safe against concurrent ingestion: each shard
// estimator is internally synchronized by its pipeline core.
type Quantile[T sorter.Value] struct {
	pool   *pool[T]
	eps    float64
	ests   []*quantile.Estimator[T]
	tuners []pipeline.Tuner[T] // per-shard tuners, empty without WithTunerFactory

	queryMergeOps atomic.Int64
}

// NewQuantile returns a sharded eps-approximate quantile estimator for
// streams of up to capacity elements. shards <= 0 selects
// runtime.GOMAXPROCS(0). newSorter is invoked once per shard so stateful
// backends (the GPU simulator) are never shared across goroutines.
func NewQuantile[T sorter.Value](eps float64, capacity int64, shards int, newSorter func() sorter.Sorter[T], opts ...Option) *Quantile[T] {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("shard: eps %v out of (0, 1)", eps))
	}
	k := Resolve(shards)
	shardEps := eps
	if k > 1 {
		shardEps = eps / 2
	}
	cfg := parseOptions(opts)
	var estOpts []quantile.Option
	if cfg.async {
		estOpts = append(estOpts, quantile.WithAsync())
	}
	if cfg.window > 0 {
		estOpts = append(estOpts, quantile.WithWindow(cfg.window))
	}
	newTuner := shardTuner[T](cfg)
	q := &Quantile[T]{eps: eps}
	procs := make([]func([]T), k)
	for i := 0; i < k; i++ {
		est := quantile.NewEstimator(shardEps, capacity, newSorter(), estOpts...)
		if newTuner != nil {
			t := newTuner()
			est.SetTuner(t)
			q.tuners = append(q.tuners, t)
		}
		q.ests = append(q.ests, est)
		// The pool never closes shard estimators while workers still hand
		// them batches, so ingestion here cannot fail.
		procs[i] = func(b []T) { _ = est.ProcessSlice(b) }
	}
	q.pool = newPool(procs, cfg, func() {
		for _, est := range q.ests {
			_ = est.Close()
		}
	})
	return q
}

// Eps reports the configured end-to-end error bound.
func (q *Quantile[T]) Eps() float64 { return q.eps }

// ShardEps reports the per-shard error budget (eps/2 for K > 1).
func (q *Quantile[T]) ShardEps() float64 { return q.ests[0].Eps() }

// Shards reports the number of shard workers.
func (q *Quantile[T]) Shards() int { return q.pool.Shards() }

// Count reports the number of stream elements ingested.
func (q *Quantile[T]) Count() int64 { return q.pool.Count() }

// Process ingests one stream element. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (q *Quantile[T]) Process(v T) error { return q.pool.Process(v) }

// ProcessSlice ingests a batch of stream elements. After Close it returns
// an error wrapping pipeline.ErrClosed.
func (q *Quantile[T]) ProcessSlice(data []T) error { return q.pool.ProcessSlice(data) }

// Flush dispatches buffered values and waits until every shard has absorbed
// its in-flight batches.
func (q *Quantile[T]) Flush() error { return q.pool.Flush() }

// Close drains and stops the shard workers with no deadline. The estimator
// remains queryable; further ingestion reports pipeline.ErrClosed.
func (q *Quantile[T]) Close() error { return q.pool.Close() }

// CloseContext is Close with a deadline: if ctx expires while the shards
// are still absorbing backpressure, the remaining hand-off is abandoned and
// the context error is returned wrapped. See pool.CloseContext.
func (q *Quantile[T]) CloseContext(ctx context.Context) error { return q.pool.CloseContext(ctx) }

// Summary flushes and returns the merged cross-shard summary (nil before
// any data arrives), mainly for validation harnesses.
func (q *Quantile[T]) Summary() *summary.Summary[T] { return q.snapshot() }

// snapshot flushes the pipeline and folds the per-shard snapshots with
// quantile.MergeSnapshots — the same GK sensor-rule merge the cross-process
// aggregation tree uses on marshaled snapshots — returning the merged
// summary. Each shard estimator synchronizes internally, so this is safe
// against concurrent ingestion; the result is immutable.
func (q *Quantile[T]) snapshot() *summary.Summary[T] {
	q.pool.Flush()
	if len(q.ests) == 1 {
		return q.ests[0].Summary()
	}
	var acc *quantile.Snapshot[T]
	var mergeOps int64
	for _, est := range q.ests {
		s := est.Snapshot().(*quantile.Snapshot[T])
		if s.Count() == 0 {
			continue
		}
		if acc == nil {
			acc = s
			continue
		}
		acc = quantile.MergeSnapshots(acc, s)
		mergeOps += int64(acc.Size())
	}
	if mergeOps > 0 {
		q.queryMergeOps.Add(mergeOps)
	}
	if acc == nil {
		return nil
	}
	return acc.Summary()
}

// Snapshot returns an immutable point-in-time view over the merged shard
// summaries. With K=1 the view is bit-identical to the serial estimator's.
func (q *Quantile[T]) Snapshot() pipeline.View[T] {
	return quantile.NewSnapshot(q.snapshot(), q.eps)
}

// Query returns an eps-approximate phi-quantile of everything ingested so
// far. It panics if the stream is empty.
func (q *Quantile[T]) Query(phi float64) T {
	s := q.snapshot()
	if s == nil || s.N == 0 {
		panic("shard: quantile query on empty stream")
	}
	return s.Query(phi)
}

// QueryRank returns a value whose rank is within eps*N of r.
func (q *Quantile[T]) QueryRank(r int64) T {
	s := q.snapshot()
	if s == nil || s.N == 0 {
		panic("shard: quantile query on empty stream")
	}
	return s.QueryRank(r)
}

// SummaryEntries reports the total summary entries retained across shards,
// the estimator's memory footprint.
func (q *Quantile[T]) SummaryEntries() int {
	total := 0
	for _, est := range q.ests {
		total += est.SummaryEntries()
	}
	return total
}

// Stats sums the unified pipeline telemetry across shards, including each
// worker's channel-wait time as Idle. Because shards run concurrently, the
// stage durations reflect total work, not wall clock.
func (q *Quantile[T]) Stats() pipeline.Stats {
	var agg pipeline.Stats
	for _, st := range q.PerShardStats() {
		agg.Add(st)
	}
	return agg
}

// PerShardStats exposes each shard's unified pipeline telemetry; the shard
// worker's channel-wait time is folded in as Idle.
func (q *Quantile[T]) PerShardStats() []pipeline.Stats {
	out := make([]pipeline.Stats, len(q.ests))
	for i, est := range q.ests {
		st := est.Stats()
		st.Idle += q.pool.workers[i].idleTime()
		out[i] = st
	}
	return out
}

// QueryMergeOps reports the cumulative summary entries visited by
// query-time cross-shard merges.
func (q *Quantile[T]) QueryMergeOps() int64 { return q.queryMergeOps.Load() }

// Knobs reports shard 0's currently selected sorter and window size (all
// shards run the same configuration and converge on the same telemetry).
func (q *Quantile[T]) Knobs() (sorter.Sorter[T], int) { return q.ests[0].Knobs() }

// Tuners exposes the per-shard tuners attached via WithTunerFactory, in
// shard order; empty when none were attached.
func (q *Quantile[T]) Tuners() []pipeline.Tuner[T] { return q.tuners }

// ModeledTime converts the per-shard counters into modeled 2004-testbed
// time for a K-way sharded run: concurrent shard ingestion plus the serial
// query-time merge.
func (q *Quantile[T]) ModeledTime(m perfmodel.Model, backend perfmodel.Backend) perfmodel.PipelineBreakdown {
	return m.ShardedPipelineTime(q.PerShardStats(), backend, q.QueryMergeOps())
}
