package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gpustream/internal/perfmodel"
	"gpustream/internal/pipeline"
	"gpustream/internal/quantile"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// Quantile answers eps-approximate quantile queries over a stream ingested
// in parallel by K shard workers. Each shard runs the exponential-histogram
// GK estimator with an eps/2 budget; queries merge the shard summaries,
// which by the GK merge rule stay eps/2-approximate over the union — within
// the user's eps with headroom to spare (DESIGN.md section 7).
//
// With a single shard the estimator runs at the full eps and delegates
// queries directly, so K=1 output is bit-identical to the serial
// quantile.Estimator fed the same stream.
//
// Queries and snapshots are safe against concurrent ingestion: each shard
// estimator is internally synchronized by its pipeline core.
type Quantile[T sorter.Value] struct {
	pool *pool[T]
	eps  float64

	// mu guards the elastic shard set: ests/tuners mutate when a Rescaler
	// commands a new count. Queries take the read side; rescales (rare, on
	// the ingestion goroutine) take the write side. Lock order is always
	// family mu -> pool mu -> estimator core locks.
	mu       sync.RWMutex
	ests     []*quantile.Estimator[T]
	tuners   []pipeline.Tuner[T] // per-shard tuners, empty without WithTunerFactory
	mkEst    func() *quantile.Estimator[T]
	newTuner func() pipeline.Tuner[T]

	// Elastic state: rescaler owns the shard count; retired accumulates the
	// folded snapshots of drained shards (scale-down) and retiredStats their
	// telemetry, so queries and stats cover the whole ingested stream.
	rescaler     Rescaler
	sinceObs     atomic.Int64
	retired      *quantile.Snapshot[T]
	retiredStats pipeline.Stats

	queryMergeOps atomic.Int64
}

// NewQuantile returns a sharded eps-approximate quantile estimator for
// streams of up to capacity elements. shards <= 0 selects
// runtime.GOMAXPROCS(0). newSorter is invoked once per shard so stateful
// backends (the GPU simulator) are never shared across goroutines.
func NewQuantile[T sorter.Value](eps float64, capacity int64, shards int, newSorter func() sorter.Sorter[T], opts ...Option) *Quantile[T] {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("shard: eps %v out of (0, 1)", eps))
	}
	k := Resolve(shards)
	cfg := parseOptions(opts)
	shardEps := eps
	if k > 1 || cfg.rescaler != nil {
		// The halved budget is what makes the merge rule eps-safe at any
		// shard count, so an elastic estimator pays it from the start even
		// at K=1: a later scale-up then never widens the merged error.
		shardEps = eps / 2
	}
	var estOpts []quantile.Option
	if cfg.async {
		estOpts = append(estOpts, quantile.WithAsync())
	}
	if cfg.window > 0 {
		estOpts = append(estOpts, quantile.WithWindow(cfg.window))
	}
	q := &Quantile[T]{eps: eps, rescaler: cfg.rescaler}
	q.newTuner = shardTuner[T](cfg)
	q.mkEst = func() *quantile.Estimator[T] {
		return quantile.NewEstimator(shardEps, capacity, newSorter(), estOpts...)
	}
	procs := make([]func([]T), k)
	for i := 0; i < k; i++ {
		procs[i] = q.addShardLocked()
	}
	q.pool = newPool(procs, cfg, func() {
		q.mu.RLock()
		defer q.mu.RUnlock()
		for _, est := range q.ests {
			_ = est.Close()
		}
	})
	return q
}

// addShardLocked builds one shard estimator (plus its tuner when a factory
// is configured) and returns the worker processor bound to it. The caller
// holds mu (or is the constructor). The pool never closes shard estimators
// while workers still hand them batches, so ingestion in the processor
// cannot fail.
func (q *Quantile[T]) addShardLocked() func([]T) {
	est := q.mkEst()
	if q.newTuner != nil {
		t := q.newTuner()
		est.SetTuner(t)
		q.tuners = append(q.tuners, t)
	}
	q.ests = append(q.ests, est)
	return func(b []T) { _ = est.ProcessSlice(b) }
}

// maybeRescale consults the rescaler roughly once per dispatched batch and
// applies its command. It runs on the ingestion goroutine — the pool's
// single writer — so removeWorkers' quiesce wait terminates: no new batches
// arrive while it blocks.
func (q *Quantile[T]) maybeRescale(n int64) {
	if q.rescaler == nil {
		return
	}
	if q.sinceObs.Add(n) < int64(q.pool.BatchSize()) {
		return
	}
	q.sinceObs.Store(0)
	if want := q.rescaler.Observe(q.pool.Count(), q.pool.Shards()); want > 0 {
		q.rescale(want)
	}
}

// rescale applies a commanded shard count. Scale-up spawns fresh shards at
// the same eps/2 budget every shard already runs; scale-down quiesces the
// pool, retires the tail shards through their close path, and folds their
// snapshots into the retained accumulator with the GK sensor merge rule —
// error-neutral, so the merged answer stays within eps under any schedule
// (DESIGN.md §16).
func (q *Quantile[T]) rescale(want int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	cur := len(q.ests)
	switch {
	case want > cur:
		procs := make([]func([]T), 0, want-cur)
		for len(q.ests) < want {
			procs = append(procs, q.addShardLocked())
		}
		if !q.pool.addWorkers(procs) {
			for _, est := range q.ests[cur:] {
				_ = est.Close()
			}
			q.ests = q.ests[:cur]
			if len(q.tuners) > cur {
				q.tuners = q.tuners[:cur]
			}
		}
	case want < cur && want >= 1:
		idle, ok := q.pool.removeWorkers(cur - want)
		if !ok {
			return
		}
		victims := q.ests[want:]
		q.ests = q.ests[:want]
		if len(q.tuners) > want {
			q.tuners = q.tuners[:want]
		}
		for i, est := range victims {
			_ = est.Flush()
			snap := est.Snapshot().(*quantile.Snapshot[T])
			st := est.Stats()
			if i < len(idle) {
				st.Idle += idle[i]
			}
			_ = est.Close()
			q.retiredStats.Add(st)
			if snap.Count() == 0 {
				continue
			}
			if q.retired == nil {
				q.retired = snap
			} else {
				q.retired = quantile.MergeSnapshots(q.retired, snap)
			}
		}
	}
}

// Eps reports the configured end-to-end error bound.
func (q *Quantile[T]) Eps() float64 { return q.eps }

// ShardEps reports the per-shard error budget (eps/2 for K > 1 and for any
// elastic estimator).
func (q *Quantile[T]) ShardEps() float64 {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.ests[0].Eps()
}

// Shards reports the number of shard workers.
func (q *Quantile[T]) Shards() int { return q.pool.Shards() }

// Count reports the number of stream elements ingested.
func (q *Quantile[T]) Count() int64 { return q.pool.Count() }

// Process ingests one stream element. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (q *Quantile[T]) Process(v T) error {
	if err := q.pool.Process(v); err != nil {
		return err
	}
	q.maybeRescale(1)
	return nil
}

// ProcessSlice ingests a batch of stream elements. After Close it returns
// an error wrapping pipeline.ErrClosed. An elastic estimator chunks the
// slice at the dispatch batch size so the rescaler observes per-batch
// throughput even when the caller hands the whole stream in one call.
func (q *Quantile[T]) ProcessSlice(data []T) error {
	if q.rescaler == nil {
		return q.pool.ProcessSlice(data)
	}
	step := q.pool.BatchSize()
	for len(data) > 0 {
		n := min(step, len(data))
		if err := q.pool.ProcessSlice(data[:n]); err != nil {
			return err
		}
		q.maybeRescale(int64(n))
		data = data[n:]
	}
	return nil
}

// Flush dispatches buffered values and waits until every shard has absorbed
// its in-flight batches.
func (q *Quantile[T]) Flush() error { return q.pool.Flush() }

// Close drains and stops the shard workers with no deadline. The estimator
// remains queryable; further ingestion reports pipeline.ErrClosed.
func (q *Quantile[T]) Close() error { return q.pool.Close() }

// CloseContext is Close with a deadline: if ctx expires while the shards
// are still absorbing backpressure, the remaining hand-off is abandoned and
// the context error is returned wrapped. See pool.CloseContext.
func (q *Quantile[T]) CloseContext(ctx context.Context) error { return q.pool.CloseContext(ctx) }

// Summary flushes and returns the merged cross-shard summary (nil before
// any data arrives), mainly for validation harnesses.
func (q *Quantile[T]) Summary() *summary.Summary[T] { return q.snapshot() }

// snapshot flushes the pipeline and folds the per-shard snapshots with
// quantile.MergeSnapshots — the same GK sensor-rule merge the cross-process
// aggregation tree uses on marshaled snapshots — returning the merged
// summary. Each shard estimator synchronizes internally, so this is safe
// against concurrent ingestion; the result is immutable.
func (q *Quantile[T]) snapshot() *summary.Summary[T] {
	q.pool.Flush()
	q.mu.RLock()
	defer q.mu.RUnlock()
	if len(q.ests) == 1 && q.retired == nil {
		return q.ests[0].Summary()
	}
	acc := q.retired
	var mergeOps int64
	for _, est := range q.ests {
		s := est.Snapshot().(*quantile.Snapshot[T])
		if s.Count() == 0 {
			continue
		}
		if acc == nil {
			acc = s
			continue
		}
		acc = quantile.MergeSnapshots(acc, s)
		mergeOps += int64(acc.Size())
	}
	if mergeOps > 0 {
		q.queryMergeOps.Add(mergeOps)
	}
	if acc == nil {
		return nil
	}
	return acc.Summary()
}

// Snapshot returns an immutable point-in-time view over the merged shard
// summaries. With K=1 the view is bit-identical to the serial estimator's.
func (q *Quantile[T]) Snapshot() pipeline.View[T] {
	return quantile.NewSnapshot(q.snapshot(), q.eps)
}

// Query returns an eps-approximate phi-quantile of everything ingested so
// far. It panics if the stream is empty.
func (q *Quantile[T]) Query(phi float64) T {
	s := q.snapshot()
	if s == nil || s.N == 0 {
		panic("shard: quantile query on empty stream")
	}
	return s.Query(phi)
}

// QueryRank returns a value whose rank is within eps*N of r.
func (q *Quantile[T]) QueryRank(r int64) T {
	s := q.snapshot()
	if s == nil || s.N == 0 {
		panic("shard: quantile query on empty stream")
	}
	return s.QueryRank(r)
}

// SummaryEntries reports the total summary entries retained across shards
// (plus the retired accumulator of an elastic estimator), the estimator's
// memory footprint.
func (q *Quantile[T]) SummaryEntries() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	total := 0
	for _, est := range q.ests {
		total += est.SummaryEntries()
	}
	if q.retired != nil {
		total += q.retired.Size()
	}
	return total
}

// Stats sums the unified pipeline telemetry across shards, including each
// worker's channel-wait time as Idle. Because shards run concurrently, the
// stage durations reflect total work, not wall clock.
func (q *Quantile[T]) Stats() pipeline.Stats {
	var agg pipeline.Stats
	for _, st := range q.PerShardStats() {
		agg.Add(st)
	}
	q.mu.RLock()
	agg.Add(q.retiredStats)
	q.mu.RUnlock()
	return agg
}

// PerShardStats exposes each live shard's unified pipeline telemetry; the
// shard worker's channel-wait time is folded in as Idle. Shards retired by
// a scale-down are not listed — their totals live on in Stats.
func (q *Quantile[T]) PerShardStats() []pipeline.Stats {
	q.mu.RLock()
	defer q.mu.RUnlock()
	idle := q.pool.idleTimes()
	out := make([]pipeline.Stats, len(q.ests))
	for i, est := range q.ests {
		st := est.Stats()
		if i < len(idle) {
			st.Idle += idle[i]
		}
		out[i] = st
	}
	return out
}

// QueryMergeOps reports the cumulative summary entries visited by
// query-time cross-shard merges.
func (q *Quantile[T]) QueryMergeOps() int64 { return q.queryMergeOps.Load() }

// Knobs reports shard 0's currently selected sorter and window size (all
// shards run the same configuration and converge on the same telemetry;
// shard 0 is never retired by a rescale).
func (q *Quantile[T]) Knobs() (sorter.Sorter[T], int) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.ests[0].Knobs()
}

// Async reports shard 0's commanded execution mode.
func (q *Quantile[T]) Async() bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return q.ests[0].Async()
}

// Tuners exposes the tuners of the live shards attached via
// WithTunerFactory, in shard order; empty when none were attached.
func (q *Quantile[T]) Tuners() []pipeline.Tuner[T] {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return append([]pipeline.Tuner[T](nil), q.tuners...)
}

// ModeledTime converts the per-shard counters into modeled 2004-testbed
// time for a K-way sharded run: concurrent shard ingestion plus the serial
// query-time merge.
func (q *Quantile[T]) ModeledTime(m perfmodel.Model, backend perfmodel.Backend) perfmodel.PipelineBreakdown {
	return m.ShardedPipelineTime(q.PerShardStats(), backend, q.QueryMergeOps())
}
