package shard

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestConcurrentIngestAndQuery stress-tests the pool[float32] under -race: several
// producer goroutines ingest concurrently while other goroutines issue
// Query calls mid-stream; final answers must still satisfy the error bound.
func TestConcurrentIngestAndQuery(t *testing.T) {
	t.Parallel()
	const (
		producers = 4
		chunks    = 8
	)
	chunkLen := 4_000
	if testing.Short() {
		chunkLen = 1_000
	}
	const eps = 0.05

	n := producers * chunks * chunkLen
	q := NewQuantile(eps, int64(n)+1, 4, cpuSorter, WithBatchSize(512))
	fq := NewFrequency(eps, 4, cpuSorter, WithBatchSize(512))

	// Seed both so mid-stream queries never hit an empty stream.
	q.Process(0)
	fq.Process(0)
	q.Flush()
	fq.Flush()

	var all [][]float32
	var allMu sync.Mutex
	var prodWg, queryWg sync.WaitGroup
	done := make(chan struct{})
	for p := 0; p < producers; p++ {
		prodWg.Add(1)
		go func(p int) {
			defer prodWg.Done()
			rng := rand.New(rand.NewSource(int64(100 + p)))
			for c := 0; c < chunks; c++ {
				chunk := genStream(rng, chunkLen, p%3)
				allMu.Lock()
				all = append(all, chunk)
				allMu.Unlock()
				if c%2 == 0 {
					q.ProcessSlice(chunk)
					fq.ProcessSlice(chunk)
				} else {
					for _, v := range chunk {
						q.Process(v)
						fq.Process(v)
					}
				}
			}
		}(p)
	}
	// Concurrent queriers: answers mid-stream are approximate over whatever
	// has been absorbed; the point is that they are race-free and return.
	for i := 0; i < 2; i++ {
		queryWg.Add(1)
		go func() {
			defer queryWg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = q.Query(0.5)
				_ = fq.Query(0.1)
				_ = fq.Estimate(1)
			}
		}()
	}
	prodWg.Wait()
	close(done)
	queryWg.Wait()

	q.Close()
	fq.Close()

	var flat []float32
	flat = append(flat, 0) // the seed value
	allMu.Lock()
	for _, c := range all {
		flat = append(flat, c...)
	}
	allMu.Unlock()
	sorted := append([]float32(nil), flat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		r := int64(phi * float64(len(sorted)))
		if r < 1 {
			r = 1
		}
		v := q.Query(phi)
		if d := rankDist(sorted, v, r); float64(d) > eps*float64(len(sorted))+1e-9 {
			t.Errorf("phi=%g: rank error %d > eps*N after concurrent ingest", phi, d)
		}
	}
}

// TestConcurrentFlush checks that overlapping Flush calls from multiple
// goroutines are safe and leave nothing buffered.
func TestConcurrentFlush(t *testing.T) {
	t.Parallel()
	q := NewQuantile(0.05, 1<<20, 3, cpuSorter, WithBatchSize(64))
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < 50; i++ {
				q.ProcessSlice(genStream(rng, 100, 0))
				q.Flush()
			}
		}(p)
	}
	wg.Wait()
	q.Close()
	if got := q.Count(); got != 4*50*100 {
		t.Fatalf("Count=%d want %d", got, 4*50*100)
	}
	if s := q.Summary(); s == nil || s.N != q.Count() {
		t.Fatalf("summary N does not match ingested count")
	}
}
