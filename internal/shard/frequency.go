package shard

import (
	"context"
	"fmt"
	"sync/atomic"

	"gpustream/internal/frequency"
	"gpustream/internal/perfmodel"
	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
)

// Frequency answers eps-approximate frequency queries over a stream
// ingested in parallel by K shard workers, each running an independent
// lossy-counting estimator at the full eps budget. Lossy-counting error is
// additive across disjoint substreams — each shard undercounts by at most
// eps*N_i, so the merged estimate undercounts by at most eps*N — which
// preserves the no-false-negative guarantee of the serial estimator
// (DESIGN.md section 7).
//
// With a single shard, queries delegate directly to the underlying
// estimator, so K=1 output is bit-identical to the serial
// frequency.Estimator fed the same stream.
//
// Queries and snapshots are safe against concurrent ingestion: each shard
// estimator is internally synchronized by its pipeline core.
type Frequency[T sorter.Value] struct {
	pool   *pool[T]
	eps    float64
	ests   []*frequency.Estimator[T]
	tuners []pipeline.Tuner[T] // per-shard tuners, empty without WithTunerFactory

	queryMergeOps atomic.Int64
}

// NewFrequency returns a sharded eps-approximate frequency estimator.
// shards <= 0 selects runtime.GOMAXPROCS(0). newSorter is invoked once per
// shard so stateful backends (the GPU simulator) are never shared across
// goroutines.
func NewFrequency[T sorter.Value](eps float64, shards int, newSorter func() sorter.Sorter[T], opts ...Option) *Frequency[T] {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("shard: eps %v out of (0, 1)", eps))
	}
	k := Resolve(shards)
	cfg := parseOptions(opts)
	var estOpts []frequency.Option
	if cfg.async {
		estOpts = append(estOpts, frequency.WithAsync())
	}
	if cfg.window > 0 {
		estOpts = append(estOpts, frequency.WithWindow(cfg.window))
	}
	newTuner := shardTuner[T](cfg)
	fq := &Frequency[T]{eps: eps}
	procs := make([]func([]T), k)
	for i := 0; i < k; i++ {
		est := frequency.NewEstimator(eps, newSorter(), estOpts...)
		if newTuner != nil {
			t := newTuner()
			est.SetTuner(t)
			fq.tuners = append(fq.tuners, t)
		}
		fq.ests = append(fq.ests, est)
		// The pool never closes shard estimators while workers still hand
		// them batches, so ingestion here cannot fail.
		procs[i] = func(b []T) { _ = est.ProcessSlice(b) }
	}
	fq.pool = newPool(procs, cfg, func() {
		for _, est := range fq.ests {
			_ = est.Close()
		}
	})
	return fq
}

// Eps reports the configured error bound.
func (fq *Frequency[T]) Eps() float64 { return fq.eps }

// Knobs reports shard 0's currently selected sorter and window size (all
// shards run the same configuration and converge on the same telemetry).
func (fq *Frequency[T]) Knobs() (sorter.Sorter[T], int) { return fq.ests[0].Knobs() }

// Tuners exposes the per-shard tuners attached via WithTunerFactory, in
// shard order; empty when none were attached.
func (fq *Frequency[T]) Tuners() []pipeline.Tuner[T] { return fq.tuners }

// Shards reports the number of shard workers.
func (fq *Frequency[T]) Shards() int { return fq.pool.Shards() }

// Count reports the number of stream elements ingested.
func (fq *Frequency[T]) Count() int64 { return fq.pool.Count() }

// Process ingests one stream element. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (fq *Frequency[T]) Process(v T) error { return fq.pool.Process(v) }

// ProcessSlice ingests a batch of stream elements. After Close it returns
// an error wrapping pipeline.ErrClosed.
func (fq *Frequency[T]) ProcessSlice(data []T) error { return fq.pool.ProcessSlice(data) }

// Flush dispatches buffered values and waits until every shard has absorbed
// its in-flight batches.
func (fq *Frequency[T]) Flush() error { return fq.pool.Flush() }

// Close drains and stops the shard workers with no deadline. The estimator
// remains queryable; further ingestion reports pipeline.ErrClosed.
func (fq *Frequency[T]) Close() error { return fq.pool.Close() }

// CloseContext is Close with a deadline: if ctx expires while the shards
// are still absorbing backpressure, the remaining hand-off is abandoned and
// the context error is returned wrapped. See pool.CloseContext.
func (fq *Frequency[T]) CloseContext(ctx context.Context) error { return fq.pool.CloseContext(ctx) }

// merged flushes, snapshots every shard, and folds the per-shard summaries
// with frequency.MergeSnapshots — the same value-aligned additive-undercount
// rule the cross-process aggregation tree uses on marshaled snapshots.
func (fq *Frequency[T]) merged() *frequency.Snapshot[T] {
	fq.pool.Flush()
	var acc *frequency.Snapshot[T]
	var ops int64
	for _, est := range fq.ests {
		snap := est.Snapshot().(*frequency.Snapshot[T])
		if acc == nil {
			acc = snap
			continue
		}
		acc = frequency.MergeSnapshots(acc, snap)
		ops += int64(acc.Size())
	}
	if ops > 0 {
		fq.queryMergeOps.Add(ops)
	}
	return acc
}

// Snapshot returns an immutable point-in-time view over the merged shard
// summaries. With K=1 the view is bit-identical to the serial estimator's.
func (fq *Frequency[T]) Snapshot() pipeline.View[T] {
	if len(fq.ests) == 1 {
		fq.pool.Flush()
		return fq.ests[0].Snapshot()
	}
	return fq.merged()
}

// Query returns every element whose merged estimated frequency is at least
// (s - eps) * N, ordered by decreasing frequency. The result has no false
// negatives: any element with true frequency >= s*N is present.
func (fq *Frequency[T]) Query(s float64) []frequency.Item[T] {
	if s < 0 || s > 1 {
		panic(fmt.Sprintf("shard: support %v out of [0, 1]", s))
	}
	if len(fq.ests) == 1 {
		fq.pool.Flush()
		return fq.ests[0].Query(s)
	}
	return fq.merged().Query(s)
}

// Estimate returns the merged estimated frequency of v (0 if no shard
// tracks it). Estimates never exceed the true count and undercount it by at
// most eps*N.
func (fq *Frequency[T]) Estimate(v T) int64 {
	fq.pool.Flush()
	var total int64
	for _, est := range fq.ests {
		total += est.Estimate(v)
	}
	return total
}

// TopK returns the k elements with the highest merged estimated
// frequencies, ordered by decreasing frequency.
func (fq *Frequency[T]) TopK(k int) []frequency.Item[T] {
	items := fq.Query(0)
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// SummarySize reports the total summary entries retained across shards.
func (fq *Frequency[T]) SummarySize() int {
	total := 0
	for _, est := range fq.ests {
		total += est.SummarySize()
	}
	return total
}

// Stats sums the unified pipeline telemetry across shards, including each
// worker's channel-wait time as Idle. Because shards run concurrently, the
// stage durations reflect total work, not wall clock.
func (fq *Frequency[T]) Stats() pipeline.Stats {
	var agg pipeline.Stats
	for _, st := range fq.PerShardStats() {
		agg.Add(st)
	}
	return agg
}

// PerShardStats exposes each shard's unified pipeline telemetry; the shard
// worker's channel-wait time is folded in as Idle.
func (fq *Frequency[T]) PerShardStats() []pipeline.Stats {
	out := make([]pipeline.Stats, len(fq.ests))
	for i, est := range fq.ests {
		st := est.Stats()
		st.Idle += fq.pool.workers[i].idleTime()
		out[i] = st
	}
	return out
}

// QueryMergeOps reports the cumulative summary entries visited by
// query-time cross-shard merges.
func (fq *Frequency[T]) QueryMergeOps() int64 { return fq.queryMergeOps.Load() }

// ModeledTime converts the per-shard counters into modeled 2004-testbed
// time for a K-way sharded run: concurrent shard ingestion plus the serial
// query-time merge.
func (fq *Frequency[T]) ModeledTime(m perfmodel.Model, backend perfmodel.Backend) perfmodel.PipelineBreakdown {
	return m.ShardedPipelineTime(fq.PerShardStats(), backend, fq.QueryMergeOps())
}
