package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gpustream/internal/frequency"
	"gpustream/internal/perfmodel"
	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
)

// Frequency answers eps-approximate frequency queries over a stream
// ingested in parallel by K shard workers, each running an independent
// lossy-counting estimator at the full eps budget. Lossy-counting error is
// additive across disjoint substreams — each shard undercounts by at most
// eps*N_i, so the merged estimate undercounts by at most eps*N — which
// preserves the no-false-negative guarantee of the serial estimator
// (DESIGN.md section 7).
//
// With a single shard, queries delegate directly to the underlying
// estimator, so K=1 output is bit-identical to the serial
// frequency.Estimator fed the same stream.
//
// Queries and snapshots are safe against concurrent ingestion: each shard
// estimator is internally synchronized by its pipeline core.
type Frequency[T sorter.Value] struct {
	pool *pool[T]
	eps  float64

	// mu guards the elastic shard set: ests/tuners mutate when a Rescaler
	// commands a new count. Queries take the read side; rescales (rare, on
	// the ingestion goroutine) take the write side. Lock order is always
	// family mu -> pool mu -> estimator core locks.
	mu       sync.RWMutex
	ests     []*frequency.Estimator[T]
	tuners   []pipeline.Tuner[T] // per-shard tuners, empty without WithTunerFactory
	mkEst    func() *frequency.Estimator[T]
	newTuner func() pipeline.Tuner[T]

	// Elastic state: rescaler owns the shard count; retired accumulates the
	// folded snapshots of drained shards (scale-down) and retiredStats their
	// telemetry. Lossy-counting undercounts are additive across disjoint
	// substreams, so every shard — and the retired fold — runs at the full
	// eps at any count.
	rescaler     Rescaler
	sinceObs     atomic.Int64
	retired      *frequency.Snapshot[T]
	retiredStats pipeline.Stats

	queryMergeOps atomic.Int64
}

// NewFrequency returns a sharded eps-approximate frequency estimator.
// shards <= 0 selects runtime.GOMAXPROCS(0). newSorter is invoked once per
// shard so stateful backends (the GPU simulator) are never shared across
// goroutines.
func NewFrequency[T sorter.Value](eps float64, shards int, newSorter func() sorter.Sorter[T], opts ...Option) *Frequency[T] {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("shard: eps %v out of (0, 1)", eps))
	}
	k := Resolve(shards)
	cfg := parseOptions(opts)
	var estOpts []frequency.Option
	if cfg.async {
		estOpts = append(estOpts, frequency.WithAsync())
	}
	if cfg.window > 0 {
		estOpts = append(estOpts, frequency.WithWindow(cfg.window))
	}
	fq := &Frequency[T]{eps: eps, rescaler: cfg.rescaler}
	fq.newTuner = shardTuner[T](cfg)
	fq.mkEst = func() *frequency.Estimator[T] {
		return frequency.NewEstimator(eps, newSorter(), estOpts...)
	}
	procs := make([]func([]T), k)
	for i := 0; i < k; i++ {
		procs[i] = fq.addShardLocked()
	}
	fq.pool = newPool(procs, cfg, func() {
		fq.mu.RLock()
		defer fq.mu.RUnlock()
		for _, est := range fq.ests {
			_ = est.Close()
		}
	})
	return fq
}

// addShardLocked builds one shard estimator (plus its tuner when a factory
// is configured) and returns the worker processor bound to it. The caller
// holds mu (or is the constructor). The pool never closes shard estimators
// while workers still hand them batches, so ingestion in the processor
// cannot fail.
func (fq *Frequency[T]) addShardLocked() func([]T) {
	est := fq.mkEst()
	if fq.newTuner != nil {
		t := fq.newTuner()
		est.SetTuner(t)
		fq.tuners = append(fq.tuners, t)
	}
	fq.ests = append(fq.ests, est)
	return func(b []T) { _ = est.ProcessSlice(b) }
}

// maybeRescale consults the rescaler roughly once per dispatched batch and
// applies its command. It runs on the ingestion goroutine — the pool's
// single writer — so removeWorkers' quiesce wait terminates: no new batches
// arrive while it blocks.
func (fq *Frequency[T]) maybeRescale(n int64) {
	if fq.rescaler == nil {
		return
	}
	if fq.sinceObs.Add(n) < int64(fq.pool.BatchSize()) {
		return
	}
	fq.sinceObs.Store(0)
	if want := fq.rescaler.Observe(fq.pool.Count(), fq.pool.Shards()); want > 0 {
		fq.rescale(want)
	}
}

// rescale applies a commanded shard count. Scale-up spawns fresh shards at
// the full eps budget (lossy-counting undercounts are additive across any
// partition); scale-down quiesces the pool, retires the tail shards through
// their close path, and folds their snapshots into the retained accumulator
// with the value-aligned additive merge — so the merged estimate still
// undercounts by at most eps*N under any schedule (DESIGN.md §16).
func (fq *Frequency[T]) rescale(want int) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	cur := len(fq.ests)
	switch {
	case want > cur:
		procs := make([]func([]T), 0, want-cur)
		for len(fq.ests) < want {
			procs = append(procs, fq.addShardLocked())
		}
		if !fq.pool.addWorkers(procs) {
			for _, est := range fq.ests[cur:] {
				_ = est.Close()
			}
			fq.ests = fq.ests[:cur]
			if len(fq.tuners) > cur {
				fq.tuners = fq.tuners[:cur]
			}
		}
	case want < cur && want >= 1:
		idle, ok := fq.pool.removeWorkers(cur - want)
		if !ok {
			return
		}
		victims := fq.ests[want:]
		fq.ests = fq.ests[:want]
		if len(fq.tuners) > want {
			fq.tuners = fq.tuners[:want]
		}
		for i, est := range victims {
			_ = est.Flush()
			snap := est.Snapshot().(*frequency.Snapshot[T])
			st := est.Stats()
			if i < len(idle) {
				st.Idle += idle[i]
			}
			_ = est.Close()
			fq.retiredStats.Add(st)
			if snap.Count() == 0 {
				continue
			}
			if fq.retired == nil {
				fq.retired = snap
			} else {
				fq.retired = frequency.MergeSnapshots(fq.retired, snap)
			}
		}
	}
}

// Eps reports the configured error bound.
func (fq *Frequency[T]) Eps() float64 { return fq.eps }

// Knobs reports shard 0's currently selected sorter and window size (all
// shards run the same configuration and converge on the same telemetry;
// shard 0 is never retired by a rescale).
func (fq *Frequency[T]) Knobs() (sorter.Sorter[T], int) {
	fq.mu.RLock()
	defer fq.mu.RUnlock()
	return fq.ests[0].Knobs()
}

// Async reports shard 0's commanded execution mode.
func (fq *Frequency[T]) Async() bool {
	fq.mu.RLock()
	defer fq.mu.RUnlock()
	return fq.ests[0].Async()
}

// Tuners exposes the tuners of the live shards attached via
// WithTunerFactory, in shard order; empty when none were attached.
func (fq *Frequency[T]) Tuners() []pipeline.Tuner[T] {
	fq.mu.RLock()
	defer fq.mu.RUnlock()
	return append([]pipeline.Tuner[T](nil), fq.tuners...)
}

// Shards reports the number of shard workers.
func (fq *Frequency[T]) Shards() int { return fq.pool.Shards() }

// Count reports the number of stream elements ingested.
func (fq *Frequency[T]) Count() int64 { return fq.pool.Count() }

// Process ingests one stream element. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (fq *Frequency[T]) Process(v T) error {
	if err := fq.pool.Process(v); err != nil {
		return err
	}
	fq.maybeRescale(1)
	return nil
}

// ProcessSlice ingests a batch of stream elements. After Close it returns
// an error wrapping pipeline.ErrClosed. An elastic estimator chunks the
// slice at the dispatch batch size so the rescaler observes per-batch
// throughput even when the caller hands the whole stream in one call.
func (fq *Frequency[T]) ProcessSlice(data []T) error {
	if fq.rescaler == nil {
		return fq.pool.ProcessSlice(data)
	}
	step := fq.pool.BatchSize()
	for len(data) > 0 {
		n := min(step, len(data))
		if err := fq.pool.ProcessSlice(data[:n]); err != nil {
			return err
		}
		fq.maybeRescale(int64(n))
		data = data[n:]
	}
	return nil
}

// Flush dispatches buffered values and waits until every shard has absorbed
// its in-flight batches.
func (fq *Frequency[T]) Flush() error { return fq.pool.Flush() }

// Close drains and stops the shard workers with no deadline. The estimator
// remains queryable; further ingestion reports pipeline.ErrClosed.
func (fq *Frequency[T]) Close() error { return fq.pool.Close() }

// CloseContext is Close with a deadline: if ctx expires while the shards
// are still absorbing backpressure, the remaining hand-off is abandoned and
// the context error is returned wrapped. See pool.CloseContext.
func (fq *Frequency[T]) CloseContext(ctx context.Context) error { return fq.pool.CloseContext(ctx) }

// merged flushes, snapshots every shard, and folds the per-shard summaries
// with frequency.MergeSnapshots — the same value-aligned additive-undercount
// rule the cross-process aggregation tree uses on marshaled snapshots.
func (fq *Frequency[T]) merged() *frequency.Snapshot[T] {
	fq.pool.Flush()
	fq.mu.RLock()
	defer fq.mu.RUnlock()
	acc := fq.retired
	var ops int64
	for _, est := range fq.ests {
		snap := est.Snapshot().(*frequency.Snapshot[T])
		if acc == nil {
			acc = snap
			continue
		}
		acc = frequency.MergeSnapshots(acc, snap)
		ops += int64(acc.Size())
	}
	if ops > 0 {
		fq.queryMergeOps.Add(ops)
	}
	return acc
}

// Snapshot returns an immutable point-in-time view over the merged shard
// summaries. With K=1 the view is bit-identical to the serial estimator's.
func (fq *Frequency[T]) Snapshot() pipeline.View[T] {
	if fq.single() {
		fq.pool.Flush()
		return fq.ests[0].Snapshot()
	}
	return fq.merged()
}

// single reports whether the one-shard fast path applies: exactly one
// shard, fixed for the estimator's lifetime (elastic estimators always go
// through the merge path — their shard set can change under a racing
// query).
func (fq *Frequency[T]) single() bool {
	if fq.rescaler != nil {
		return false
	}
	fq.mu.RLock()
	defer fq.mu.RUnlock()
	return len(fq.ests) == 1
}

// Query returns every element whose merged estimated frequency is at least
// (s - eps) * N, ordered by decreasing frequency. The result has no false
// negatives: any element with true frequency >= s*N is present.
func (fq *Frequency[T]) Query(s float64) []frequency.Item[T] {
	if s < 0 || s > 1 {
		panic(fmt.Sprintf("shard: support %v out of [0, 1]", s))
	}
	if fq.single() {
		fq.pool.Flush()
		return fq.ests[0].Query(s)
	}
	return fq.merged().Query(s)
}

// Estimate returns the merged estimated frequency of v (0 if no shard
// tracks it). Estimates never exceed the true count and undercount it by at
// most eps*N.
func (fq *Frequency[T]) Estimate(v T) int64 {
	fq.pool.Flush()
	fq.mu.RLock()
	defer fq.mu.RUnlock()
	var total int64
	for _, est := range fq.ests {
		total += est.Estimate(v)
	}
	if fq.retired != nil {
		total += fq.retired.Estimate(v)
	}
	return total
}

// TopK returns the k elements with the highest merged estimated
// frequencies, ordered by decreasing frequency.
func (fq *Frequency[T]) TopK(k int) []frequency.Item[T] {
	items := fq.Query(0)
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// SummarySize reports the total summary entries retained across shards
// (plus the retired accumulator of an elastic estimator).
func (fq *Frequency[T]) SummarySize() int {
	fq.mu.RLock()
	defer fq.mu.RUnlock()
	total := 0
	for _, est := range fq.ests {
		total += est.SummarySize()
	}
	if fq.retired != nil {
		total += fq.retired.Size()
	}
	return total
}

// Stats sums the unified pipeline telemetry across shards, including each
// worker's channel-wait time as Idle. Because shards run concurrently, the
// stage durations reflect total work, not wall clock.
func (fq *Frequency[T]) Stats() pipeline.Stats {
	var agg pipeline.Stats
	for _, st := range fq.PerShardStats() {
		agg.Add(st)
	}
	fq.mu.RLock()
	agg.Add(fq.retiredStats)
	fq.mu.RUnlock()
	return agg
}

// PerShardStats exposes each live shard's unified pipeline telemetry; the
// shard worker's channel-wait time is folded in as Idle. Shards retired by
// a scale-down are not listed — their totals live on in Stats.
func (fq *Frequency[T]) PerShardStats() []pipeline.Stats {
	fq.mu.RLock()
	defer fq.mu.RUnlock()
	idle := fq.pool.idleTimes()
	out := make([]pipeline.Stats, len(fq.ests))
	for i, est := range fq.ests {
		st := est.Stats()
		if i < len(idle) {
			st.Idle += idle[i]
		}
		out[i] = st
	}
	return out
}

// QueryMergeOps reports the cumulative summary entries visited by
// query-time cross-shard merges.
func (fq *Frequency[T]) QueryMergeOps() int64 { return fq.queryMergeOps.Load() }

// ModeledTime converts the per-shard counters into modeled 2004-testbed
// time for a K-way sharded run: concurrent shard ingestion plus the serial
// query-time merge.
func (fq *Frequency[T]) ModeledTime(m perfmodel.Model, backend perfmodel.Backend) perfmodel.PipelineBreakdown {
	return m.ShardedPipelineTime(fq.PerShardStats(), backend, fq.QueryMergeOps())
}
