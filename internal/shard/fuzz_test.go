package shard

import (
	"math"
	"sort"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/samplesort"
	"gpustream/internal/sorter"
)

// rankDistOf is rankDist at any element type.
func rankDistOf[T sorter.Value](sortedRef []T, v T, r int64) int64 {
	lo := int64(sort.Search(len(sortedRef), func(i int) bool { return sortedRef[i] >= v })) + 1
	hi := int64(sort.Search(len(sortedRef), func(i int) bool { return sortedRef[i] > v }))
	switch {
	case r < lo:
		return lo - r
	case r > hi:
		return r - hi
	}
	return 0
}

// checkShardedQuantile runs one sharded ingest at element type T with the
// given per-shard sorter factory and checks the merged rank guarantee
// against a full sort.
func checkShardedQuantile[T sorter.Value](t *testing.T, vals []T, k, batch int, newSorter func() sorter.Sorter[T]) {
	t.Helper()
	const eps = 0.1
	n := int64(len(vals))
	q := NewQuantile(eps, n, k, newSorter, WithBatchSize(batch))
	q.ProcessSlice(vals)
	q.Close()
	if q.Count() != n {
		t.Fatalf("Count=%d want %d", q.Count(), n)
	}
	if s := q.Summary(); s == nil || s.N != n {
		t.Fatalf("merged summary N mismatch")
	} else if err := s.Validate(); err != nil {
		t.Fatalf("merged summary invalid: %v", err)
	}
	sorted := append([]T(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
		r := int64(math.Ceil(phi * float64(n)))
		if r < 1 {
			r = 1
		}
		v := q.Query(phi)
		if d := rankDistOf(sorted, v, r); float64(d) > eps*float64(n)+1e-9 {
			t.Fatalf("k=%d batch=%d phi=%g: rank error %d > eps*N=%g",
				k, batch, phi, d, eps*float64(n))
		}
	}
}

// u64FromByte maps one fuzz byte to a uint64 stream value, steering a fifth
// of the byte space onto the integer boundary cases: zero, MaxUint64, and
// both sides of the MaxInt64 sign boundary — values no float64 (let alone
// float32) can represent exactly.
func u64FromByte(b byte) uint64 {
	switch b % 16 {
	case 0:
		return 0
	case 1:
		return math.MaxUint64
	case 2:
		return math.MaxInt64 // 2^63 - 1
	case 3:
		return math.MaxInt64 + 1 // 2^63
	default:
		return uint64(b)<<56 | uint64(b)
	}
}

// FuzzShardedQuantile feeds arbitrary byte streams through sharded
// ingestion (shard count and batch size derived from the input) and checks
// the merged rank guarantee against a full sort, mirroring the package's
// other fuzz harnesses (internal/frequency, internal/stream). Every input
// is run twice: once at float32 and once at uint64, where the byte-to-value
// map pins the integer boundaries (0, MaxUint64, MaxInt64±1).
func FuzzShardedQuantile(f *testing.F) {
	f.Add([]byte{4, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{255, 9, 9, 9, 9, 1, 2, 3})
	// Integer-boundary seeds: bytes 0..3 hit u64FromByte's special cases,
	// so these streams mix 0, MaxUint64, and the MaxInt64 sign boundary.
	f.Add([]byte{2, 3, 0, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte{3, 7, 1, 1, 1, 17, 2, 64, 3, 0})
	f.Add([]byte{8, 2, 16, 0, 32, 1, 48, 2, 64, 3, 80})
	// High bit of the batch byte set: sample-sort shards.
	f.Add([]byte{5, 0x83, 9, 0, 1, 2, 3, 200, 100, 50})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 3 {
			return
		}
		k := int(raw[0])%8 + 1
		batch := int(raw[1])%16 + 1
		f32 := make([]float32, 0, len(raw)-2)
		u64 := make([]uint64, 0, len(raw)-2)
		for _, b := range raw[2:] {
			f32 = append(f32, float32(b%64))
			u64 = append(u64, u64FromByte(b))
		}
		// The high bit of the batch byte selects the per-shard sorter, so
		// the corpus exercises quicksort and sample-sort shards alike.
		if raw[1]&0x80 != 0 {
			checkShardedQuantile(t, f32, k, batch, func() sorter.Sorter[float32] { return samplesort.NewSorter[float32]() })
			checkShardedQuantile(t, u64, k, batch, func() sorter.Sorter[uint64] { return samplesort.NewSorter[uint64]() })
		} else {
			checkShardedQuantile(t, f32, k, batch, func() sorter.Sorter[float32] { return cpusort.QuicksortSorter[float32]{} })
			checkShardedQuantile(t, u64, k, batch, func() sorter.Sorter[uint64] { return cpusort.QuicksortSorter[uint64]{} })
		}
	})
}
