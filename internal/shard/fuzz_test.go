package shard

import (
	"math"
	"sort"
	"testing"
)

// FuzzShardedQuantile feeds arbitrary byte streams through sharded
// ingestion (shard count and batch size derived from the input) and checks
// the merged rank guarantee against a full sort, mirroring the package's
// other fuzz harnesses (internal/frequency, internal/stream).
func FuzzShardedQuantile(f *testing.F) {
	f.Add([]byte{4, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{255, 9, 9, 9, 9, 1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 {
			return
		}
		k := int(raw[0])%8 + 1
		batch := int(raw[1])%16 + 1
		vals := make([]float32, 0, len(raw)-2)
		for _, b := range raw[2:] {
			vals = append(vals, float32(b%64))
		}
		if len(vals) == 0 {
			return
		}
		const eps = 0.1
		n := int64(len(vals))
		q := NewQuantile(eps, n, k, cpuSorter, WithBatchSize(batch))
		q.ProcessSlice(vals)
		q.Close()
		if q.Count() != n {
			t.Fatalf("Count=%d want %d", q.Count(), n)
		}
		if s := q.Summary(); s == nil || s.N != n {
			t.Fatalf("merged summary N mismatch")
		} else if err := s.Validate(); err != nil {
			t.Fatalf("merged summary invalid: %v", err)
		}
		sorted := append([]float32(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
			r := int64(math.Ceil(phi * float64(n)))
			if r < 1 {
				r = 1
			}
			v := q.Query(phi)
			if d := rankDist(sorted, v, r); float64(d) > eps*float64(n)+1e-9 {
				t.Fatalf("k=%d batch=%d phi=%g: rank error %d > eps*N=%g",
					k, batch, phi, d, eps*float64(n))
			}
		}
	})
}
