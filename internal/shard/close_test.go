package shard

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseContextDrains: a generous deadline behaves exactly like Close —
// everything buffered and in flight lands in the shard estimators.
func TestCloseContextDrains(t *testing.T) {
	t.Parallel()
	var processed atomic.Int64
	p := newPool[float32]([]func([]float32){
		func(b []float32) { processed.Add(int64(len(b))) },
		func(b []float32) { processed.Add(int64(len(b))) },
	}, parseOptions([]Option{WithBatchSize(8)}), nil)
	for i := 0; i < 100; i++ {
		if err := p.Process(float32(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := p.CloseContext(ctx); err != nil {
		t.Fatalf("CloseContext: %v", err)
	}
	if processed.Load() != 100 || p.Count() != 100 {
		t.Fatalf("processed=%d count=%d, want 100", processed.Load(), p.Count())
	}
	if err := p.Process(1); !errors.Is(err, errClosed) {
		t.Fatalf("Process after CloseContext = %v", err)
	}
}

// TestCloseContextBackpressure wedges the single worker so its channel
// fills, then closes with a short deadline: the drain must give up, drop
// the un-handed-off buffer from the count, and still mark the pool[float32] closed.
// The values already dispatched are absorbed once the worker unblocks.
func TestCloseContextBackpressure(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	var processed atomic.Int64
	p := newPool[float32]([]func([]float32){func(b []float32) {
		<-release
		processed.Add(int64(len(b)))
	}}, parseOptions([]Option{WithBatchSize(4)}), nil)

	// 12 values = 3 batches: one held by the blocked worker, two filling
	// the channel buffer. 3 more stay in the hand-off buffer — dispatching
	// them would block, so the expiring CloseContext must drop them.
	for i := 0; i < 15; i++ {
		if err := p.Process(float32(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.CloseContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseContext = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("CloseContext blocked %v past its deadline", waited)
	}
	if p.Count() != 12 {
		t.Fatalf("Count = %d, want 12 (3 undispatched values dropped)", p.Count())
	}
	if err := p.Process(1); !errors.Is(err, errClosed) {
		t.Fatalf("Process after abandoned close = %v", err)
	}

	// Unblock the worker: the dispatched batches drain and the goroutine
	// exits via its closed channel.
	close(release)
	p.wg.Wait()
	if processed.Load() != 12 {
		t.Fatalf("processed = %d after release, want 12", processed.Load())
	}
}

// TestCloseContextWaitExpiry covers the cond-wait path: the buffer is
// empty but batches are in flight behind a wedged worker, so CloseContext
// must wake from its drain wait when the context expires.
func TestCloseContextWaitExpiry(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	p := newPool[float32]([]func([]float32){func(b []float32) { <-release }}, parseOptions([]Option{WithBatchSize(4)}), nil)
	for i := 0; i < 12; i++ { // exactly 3 dispatched batches, empty buffer
		if err := p.Process(float32(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.CloseContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseContext = %v, want context.DeadlineExceeded", err)
	}
	if p.Count() != 12 {
		t.Fatalf("Count = %d, want 12 (dispatched batches stay counted)", p.Count())
	}
	close(release)
	p.wg.Wait()
}
