package shard

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/frequency"
	"gpustream/internal/pipeline"
	"gpustream/internal/quantile"
	"gpustream/internal/sorter"
)

func cpuSorter() sorter.Sorter[float32] { return cpusort.QuicksortSorter[float32]{} }

// rankDist measures how far v's true rank range in sortedRef is from the
// target rank r (0 when r falls inside the range).
func rankDist(sortedRef []float32, v float32, r int64) int64 {
	lo := int64(sort.Search(len(sortedRef), func(i int) bool { return sortedRef[i] >= v })) + 1
	hi := int64(sort.Search(len(sortedRef), func(i int) bool { return sortedRef[i] > v }))
	switch {
	case r < lo:
		return lo - r
	case r > hi:
		return r - hi
	}
	return 0
}

// genStream produces a deterministic pseudo-random stream with repeated
// values (so frequency queries have heavy hitters) drawn from one of a few
// shapes.
func genStream(rng *rand.Rand, n int, shape int) []float32 {
	out := make([]float32, n)
	switch shape % 3 {
	case 0: // uniform over a small domain: every value is frequent
		for i := range out {
			out[i] = float32(rng.Intn(64))
		}
	case 1: // skewed: geometric-ish over a larger domain
		for i := range out {
			v := 0
			for v < 1000 && rng.Intn(2) == 0 {
				v++
			}
			out[i] = float32(v)
		}
	default: // continuous uniform: all values distinct w.h.p.
		for i := range out {
			out[i] = rng.Float32()
		}
	}
	return out
}

// TestShardedQuantileWithinEps is property (a): for random streams, shard
// counts, and eps values, merged quantile ranks stay within eps*N of true
// ranks computed by a full sort.
func TestShardedQuantileWithinEps(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 4, 8} {
		for _, eps := range []float64{0.1, 0.02} {
			for shape := 0; shape < 3; shape++ {
				n := 20_000 + rng.Intn(10_000)
				data := genStream(rng, n, shape)
				q := NewQuantile(eps, int64(n), k, cpuSorter, WithBatchSize(777))
				q.ProcessSlice(data)
				q.Close()
				if got := q.Count(); got != int64(n) {
					t.Fatalf("k=%d: Count=%d want %d", k, got, n)
				}
				sorted := append([]float32(nil), data...)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				for _, phi := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
					r := int64(math.Ceil(phi * float64(n)))
					if r < 1 {
						r = 1
					}
					v := q.Query(phi)
					if d := rankDist(sorted, v, r); float64(d) > eps*float64(n)+1e-9 {
						t.Errorf("k=%d eps=%g shape=%d phi=%g: rank error %d > eps*N=%g",
							k, eps, shape, phi, d, eps*float64(n))
					}
				}
			}
		}
	}
}

// TestShardedFrequencyNoFalseNegatives is property (b): frequency queries
// report every item above support s, and merged estimates never overcount
// nor undercount by more than eps*N.
func TestShardedFrequencyNoFalseNegatives(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{1, 2, 4, 8} {
		for _, eps := range []float64{0.02, 0.005} {
			for shape := 0; shape < 2; shape++ {
				n := 20_000 + rng.Intn(10_000)
				data := genStream(rng, n, shape)
				fq := NewFrequency(eps, k, cpuSorter, WithBatchSize(777))
				fq.ProcessSlice(data)
				fq.Close()
				exact := frequency.NewExact[float32]()
				exact.ProcessSlice(data)
				s := 4 * eps // support threshold
				reported := make(map[float32]bool)
				for _, it := range fq.Query(s) {
					reported[it.Value] = true
				}
				for _, it := range exact.Query(s) {
					if !reported[it.Value] {
						t.Errorf("k=%d eps=%g shape=%d: false negative for %v (true freq %d, sN=%g)",
							k, eps, shape, it.Value, it.Freq, s*float64(n))
					}
				}
				for v := range reported {
					truth := exact.Estimate(v)
					est := fq.Estimate(v)
					if est > truth {
						t.Errorf("k=%d: overcount on %v: est %d > true %d", k, v, est, truth)
					}
					if float64(truth-est) > eps*float64(n)+1e-9 {
						t.Errorf("k=%d: undercount beyond eps*N on %v: est %d true %d", k, v, est, truth)
					}
				}
			}
		}
	}
}

// TestSingleShardMatchesSerial is property (c): K=1 sharded output is
// bit-identical to the serial estimators fed the same stream.
func TestSingleShardMatchesSerial(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	for shape := 0; shape < 3; shape++ {
		n := 15_000 + rng.Intn(5_000)
		data := genStream(rng, n, shape)
		const eps = 0.01

		sq := quantile.NewEstimator(eps, int64(n), cpuSorter())
		sq.ProcessSlice(data)
		pq := NewQuantile(eps, int64(n), 1, cpuSorter, WithBatchSize(1024))
		pq.ProcessSlice(data)
		pq.Close()
		if pq.ShardEps() != eps {
			t.Fatalf("K=1 shard eps %g, want full eps %g", pq.ShardEps(), eps)
		}
		for _, phi := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			if got, want := pq.Query(phi), sq.Query(phi); got != want {
				t.Errorf("shape=%d quantile phi=%g: sharded %v != serial %v", shape, phi, got, want)
			}
		}

		sf := frequency.NewEstimator(eps, cpuSorter())
		sf.ProcessSlice(data)
		pf := NewFrequency(eps, 1, cpuSorter, WithBatchSize(1024))
		pf.ProcessSlice(data)
		pf.Close()
		gotItems := pf.Query(0.05)
		wantItems := sf.Query(0.05)
		if len(gotItems) != len(wantItems) {
			t.Fatalf("shape=%d: sharded reports %d items, serial %d", shape, len(gotItems), len(wantItems))
		}
		for i := range gotItems {
			if gotItems[i] != wantItems[i] {
				t.Errorf("shape=%d item %d: sharded %v != serial %v", shape, i, gotItems[i], wantItems[i])
			}
		}
		for v := float32(0); v < 64; v++ {
			if got, want := pf.Estimate(v), sf.Estimate(v); got != want {
				t.Errorf("shape=%d Estimate(%v): sharded %d != serial %d", shape, v, got, want)
			}
		}
	}
}

// TestShardedLifecycle exercises Flush/Close semantics and the small-stream
// paths (empty shards, partial batches, Process one-at-a-time).
func TestShardedLifecycle(t *testing.T) {
	t.Parallel()
	q := NewQuantile(0.1, 1000, 4, cpuSorter, WithBatchSize(8))
	for i := 0; i < 100; i++ {
		q.Process(float32(i))
	}
	q.Flush() // queryable mid-stream
	if med := q.Query(0.5); med < 30 || med > 70 {
		t.Fatalf("median %v out of range after Flush", med)
	}
	for i := 100; i < 200; i++ {
		q.Process(float32(i))
	}
	q.Close()
	q.Close() // idempotent
	if med := q.Query(0.5); med < 80 || med > 120 {
		t.Fatalf("median %v out of range after Close", med)
	}
	if q.Count() != 200 {
		t.Fatalf("Count=%d want 200", q.Count())
	}
	if q.SummaryEntries() <= 0 {
		t.Fatal("no summary entries retained")
	}
	if err := q.Process(1); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("Process after Close = %v, want pipeline.ErrClosed", err)
	}
	if err := q.ProcessSlice([]float32{1, 2}); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("ProcessSlice after Close = %v, want pipeline.ErrClosed", err)
	}
	if q.Count() != 200 {
		t.Fatalf("rejected ingestion changed Count to %d", q.Count())
	}
}

// TestShardedSmallStream keeps every value in the hand-off buffer (fewer
// values than one batch) and checks queries still see them.
func TestShardedSmallStream(t *testing.T) {
	t.Parallel()
	fq := NewFrequency(0.1, 4, cpuSorter)
	fq.ProcessSlice([]float32{5, 5, 5, 7})
	if got := fq.Estimate(5); got != 3 {
		t.Fatalf("Estimate(5)=%d want 3", got)
	}
	fq.Close()

	q := NewQuantile(0.1, 100, 4, cpuSorter)
	q.Process(42)
	if got := q.Query(0.5); got != 42 {
		t.Fatalf("Query(0.5)=%v want 42", got)
	}
	q.Close()
}

// TestShardedStats checks the perfmodel threading: per-shard stats
// reflect the ingested work and modeled time is positive and decreases as
// shards spread the sorting.
func TestShardedStats(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(4))
	data := genStream(rng, 60_000, 2)
	q := NewQuantile(0.01, int64(len(data)), 4, cpuSorter, WithBatchSize(1000))
	q.ProcessSlice(data)
	q.Close()
	_ = q.Query(0.5)

	stats := q.PerShardStats()
	if len(stats) != 4 {
		t.Fatalf("PerShardStats len %d want 4", len(stats))
	}
	var sorted int64
	busy := 0
	for _, c := range stats {
		sorted += c.SortedValues
		if c.SortedValues > 0 {
			busy++
		}
	}
	if sorted != int64(len(data)) {
		t.Fatalf("per-shard SortedValues sum %d want %d", sorted, len(data))
	}
	if busy < 2 {
		t.Fatalf("only %d shards did work; batches not spreading", busy)
	}
	if agg := q.Stats(); agg.SortedValues != int64(len(data)) || agg.Idle <= 0 {
		t.Fatalf("aggregate Stats = %+v; want full SortedValues and positive Idle", agg)
	}
	if q.QueryMergeOps() <= 0 {
		t.Fatal("query-time merges not counted")
	}
}
