// Package shard implements worker-parallel sharded ingestion for the
// stream-mining estimators: an incoming stream is partitioned across K
// goroutine workers, each running an independent per-shard estimator, and
// queries are answered by merging the shard states.
//
// The correctness argument is the MERGE/COMPRESS error-budget calculus of
// Greenwald and Khanna's sensor-network algorithm (the same calculus XGBoost
// uses for distributed sketch construction): merging eps'-approximate
// summaries over disjoint substreams yields an eps'-approximate summary over
// the union, so giving each shard a budget of eps/2 leaves half the user's
// budget as headroom for downstream compression while the merged answer stays
// eps-approximate. For lossy counting the budget is additive instead of
// max-composed — per-shard undercounts of at most eps*N_i sum to at most
// eps*N — so frequency shards run at the full eps. DESIGN.md section 7 states
// both arguments precisely.
//
// Ingestion is batched: values accumulate in a hand-off buffer and full
// batches (DefaultBatchSize values unless overridden) are dispatched
// round-robin to the shard channels, amortizing synchronization exactly the
// way the paper's window batching amortizes GPU invocation overhead.
//
// Lifecycle is error-based: ingestion after Close reports an error wrapping
// pipeline.ErrClosed, and CloseContext drains the in-flight batches with a
// deadline — if the context expires while shards are still absorbing
// backpressure, the remaining hand-off is abandoned and the context error
// is returned, leaving the estimator queryable over what was absorbed.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
)

// DefaultBatchSize is the ingestion hand-off batch size: large enough that
// channel synchronization is amortized over ~64K values (mirroring the
// paper's practice of batching four windows per GPU invocation), small
// enough that shards stay busy on multi-window streams.
const DefaultBatchSize = 1 << 16

// errClosed is what ingestion into a closed pool reports; it wraps
// pipeline.ErrClosed so callers test with errors.Is.
var errClosed = fmt.Errorf("shard: ingestion after Close: %w", pipeline.ErrClosed)

// Option configures a sharded estimator.
type Option func(*config)

type config struct {
	batch  int
	async  bool
	window int
	// tunerFactory, when set, holds a func() pipeline.Tuner[T] invoked
	// once per shard (Option is not generic, so the factory is carried
	// type-erased and asserted by the typed constructors).
	tunerFactory any
	rescaler     Rescaler
}

// Rescaler decides the worker count of an elastic sharded estimator. The
// family consults it roughly once per dispatched batch with the cumulative
// ingested count and the live shard count; a positive return commands that
// count, zero keeps the current one. adaptive.Scaler satisfies this
// structurally — the interface lives here so the shard package needs no
// dependency on the controller package.
type Rescaler interface {
	Observe(totalValues int64, shards int) int
}

// WithRescaler makes the estimator elastic: the shard count becomes a
// runtime knob owned by r. Every shard then runs at the merge-safe reduced
// error budget from construction (quantile shards at eps/2 even when the
// initial count is 1), so scale-up never widens the merged error, and
// scale-down drains the retiring shards and folds their snapshots into a
// retained accumulator via the MergeSnapshots rules (DESIGN.md §16).
func WithRescaler(r Rescaler) Option { return func(c *config) { c.rescaler = r } }

// WithBatchSize overrides the hand-off batch size (default
// DefaultBatchSize). Smaller batches spread short streams across more
// shards at higher synchronization cost.
func WithBatchSize(n int) Option {
	return func(c *config) {
		if n <= 0 {
			panic("shard: batch size must be positive")
		}
		c.batch = n
	}
}

// WithAsync enables staged asynchronous ingestion inside every shard
// estimator: each worker's windows sort on a dedicated stage goroutine
// overlapping the merge/compress of the previous window, so a K-shard
// estimator runs up to 2K pipeline stages concurrently. Answers stay
// bit-identical to synchronous shards.
func WithAsync() Option { return func(c *config) { c.async = true } }

// WithWindow overrides the per-shard sort-window size. Values below a
// family's eps floor are clamped up by the per-shard estimator.
func WithWindow(n int) Option {
	return func(c *config) {
		if n <= 0 {
			panic("shard: window must be positive")
		}
		c.window = n
	}
}

// WithTunerFactory attaches a runtime tuner to every shard pipeline. f must
// be a func() pipeline.Tuner[T] for the constructor's element type T; it is
// called once per shard, so each shard gets its own controller (controllers
// own per-pipeline sorter instances and must not be shared).
func WithTunerFactory(f any) Option { return func(c *config) { c.tunerFactory = f } }

// shardTuner resolves the type-erased tuner factory for element type T,
// returning nil when no factory is configured.
func shardTuner[T sorter.Value](cfg config) func() pipeline.Tuner[T] {
	if cfg.tunerFactory == nil {
		return nil
	}
	f, ok := cfg.tunerFactory.(func() pipeline.Tuner[T])
	if !ok {
		panic(fmt.Sprintf("shard: tuner factory is %T, want func() pipeline.Tuner[%T]", cfg.tunerFactory, *new(T)))
	}
	return f
}

// parseOptions folds opts over the default configuration.
func parseOptions(opts []Option) config {
	cfg := config{batch: DefaultBatchSize}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Resolve normalizes a user-supplied shard count: values <= 0 select
// runtime.GOMAXPROCS(0).
func Resolve(shards int) int {
	if shards <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return shards
}

// worker is one shard: a channel feeding a goroutine that owns a per-shard
// estimator. The estimator is internally synchronized (its pipeline core
// carries the lock), so the worker needs no mutex of its own — query-time
// snapshots from other goroutines interleave safely with ProcessSlice.
type worker[T sorter.Value] struct {
	ch      chan []T
	process func([]T)
	// done is closed when the worker goroutine exits, so removeWorkers can
	// join a retiring worker individually (the shared WaitGroup only joins
	// the whole pool).
	done chan struct{}
	// idle accumulates nanoseconds the worker goroutine spent blocked
	// waiting for a batch. It feeds pipeline.Stats.Idle so shard starvation
	// is visible in the unified telemetry.
	idle atomic.Int64
}

func (w *worker[T]) idleTime() time.Duration { return time.Duration(w.idle.Load()) }

// pool fans batches out to the shard workers. Safe for concurrent use by
// multiple producers; Flush and queries may run concurrently with ingestion.
type pool[T sorter.Value] struct {
	batch   int
	workers []*worker[T]
	wg      sync.WaitGroup
	// cleanup runs once after every worker has exited; the sharded
	// estimators use it to Close their per-shard estimators so async stage
	// goroutines terminate with the pool.
	cleanup func()

	mu       sync.Mutex // guards cur, next, inflight, total, closed
	cond     *sync.Cond // signaled when inflight reaches zero
	cur      []T
	next     int
	inflight int
	total    int64
	closed   bool
}

// newPool starts one worker goroutine per processor. cleanup (may be nil)
// runs once after the last worker exits.
func newPool[T sorter.Value](processors []func([]T), cfg config, cleanup func()) *pool[T] {
	p := &pool[T]{batch: cfg.batch, cleanup: cleanup}
	p.cond = sync.NewCond(&p.mu)
	p.cur = make([]T, 0, p.batch)
	for _, proc := range processors {
		w := &worker[T]{ch: make(chan []T, 2), process: proc, done: make(chan struct{})}
		p.workers = append(p.workers, w)
		p.wg.Add(1)
		go p.run(w)
	}
	return p
}

func (p *pool[T]) run(w *worker[T]) {
	defer close(w.done)
	defer p.wg.Done()
	for {
		t0 := time.Now()
		batch, ok := <-w.ch
		if !ok {
			return
		}
		w.idle.Add(int64(time.Since(t0)))
		w.process(batch)
		p.mu.Lock()
		p.inflight--
		if p.inflight == 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// dispatchLocked hands the current buffer to the next worker round-robin.
// The channel send happens with p.mu released: a full channel would
// otherwise deadlock against workers that need p.mu to decrement inflight.
// A nil (or Done-less) ctx blocks until the shard accepts the batch; with a
// cancellable ctx the send is abandoned on expiry — the batch's values are
// dropped and subtracted from the ingest total — and the context error is
// returned.
func (p *pool[T]) dispatchLocked(ctx context.Context) error {
	b := p.cur
	p.cur = make([]T, 0, p.batch)
	w := p.workers[p.next]
	p.next = (p.next + 1) % len(p.workers)
	p.inflight++
	p.mu.Unlock()
	var err error
	if ctx == nil || ctx.Done() == nil {
		w.ch <- b
	} else {
		select {
		case w.ch <- b:
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	p.mu.Lock()
	if err != nil {
		p.inflight--
		p.total -= int64(len(b))
		if p.inflight == 0 {
			p.cond.Broadcast()
		}
	}
	return err
}

// Process ingests one value. After Close it returns an error wrapping
// pipeline.ErrClosed.
func (p *pool[T]) Process(v T) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errClosed
	}
	p.total++
	p.cur = append(p.cur, v)
	if len(p.cur) >= p.batch {
		p.dispatchLocked(nil)
	}
	return nil
}

// ProcessSlice ingests a batch of values. The slice is copied into the
// hand-off buffer, so the caller may reuse it immediately. After Close it
// returns an error wrapping pipeline.ErrClosed.
func (p *pool[T]) ProcessSlice(data []T) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errClosed
	}
	p.total += int64(len(data))
	for len(data) > 0 {
		room := p.batch - len(p.cur)
		if room > len(data) {
			room = len(data)
		}
		p.cur = append(p.cur, data[:room]...)
		data = data[room:]
		if len(p.cur) >= p.batch {
			p.dispatchLocked(nil)
		}
	}
	return nil
}

// Flush dispatches any buffered values and blocks until every dispatched
// batch has been absorbed by its shard estimator. While Flush holds the
// ingest lock new producers stall, so the drain is guaranteed to terminate.
func (p *pool[T]) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.cur) > 0 && !p.closed {
		p.dispatchLocked(nil)
	}
	for p.inflight > 0 {
		p.cond.Wait()
	}
	return nil
}

// Close drains and stops the workers with no deadline; it never fails.
func (p *pool[T]) Close() error { return p.CloseContext(context.Background()) }

// CloseContext drains buffered and in-flight batches into the shard
// estimators, stops the worker goroutines, and waits for them to exit. The
// drain is backpressure-aware: if ctx expires while shard channels are
// still full, the un-handed-off values are dropped (and subtracted from
// Count), the workers are left to finish their queued batches
// asynchronously, and the context error is returned wrapped. Either way
// the pool is closed afterwards — the estimator remains queryable and
// further ingestion reports pipeline.ErrClosed. CloseContext is idempotent
// and must not race with Process/ProcessSlice.
func (p *pool[T]) CloseContext(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	// A watcher turns context expiry into a cond broadcast so the drain
	// wait below can observe it.
	var stop chan struct{}
	if d := ctx.Done(); d != nil {
		stop = make(chan struct{})
		go func() {
			select {
			case <-d:
				p.mu.Lock()
				p.cond.Broadcast()
				p.mu.Unlock()
			case <-stop:
			}
		}()
	}
	var err error
	for len(p.cur) > 0 || p.inflight > 0 {
		if err = ctx.Err(); err != nil {
			if len(p.cur) > 0 {
				p.total -= int64(len(p.cur))
				p.cur = p.cur[:0]
			}
			break
		}
		if len(p.cur) > 0 {
			if err = p.dispatchLocked(ctx); err != nil {
				break
			}
			continue
		}
		p.cond.Wait()
	}
	p.closed = true
	p.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	for _, w := range p.workers {
		close(w.ch)
	}
	if err != nil {
		// The workers are still absorbing their queued batches; run the
		// estimator cleanup once they exit so no stage goroutine outlives
		// them, without blocking past the caller's deadline.
		if p.cleanup != nil {
			go func() {
				p.wg.Wait()
				p.cleanup()
			}()
		}
		return fmt.Errorf("shard: Close abandoned drain: %w", err)
	}
	p.wg.Wait()
	if p.cleanup != nil {
		p.cleanup()
	}
	return nil
}

// addWorkers grows the pool by one worker per processor. Safe against
// concurrent dispatch (the append happens under p.mu, and round-robin
// simply starts including the new shards); reports false on a closed pool.
func (p *pool[T]) addWorkers(processors []func([]T)) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	for _, proc := range processors {
		w := &worker[T]{ch: make(chan []T, 2), process: proc, done: make(chan struct{})}
		p.workers = append(p.workers, w)
		p.wg.Add(1)
		go p.run(w)
	}
	return true
}

// removeWorkers retires the last n workers: it quiesces the pool (inflight
// is incremented under p.mu before any channel send, so inflight == 0
// observed under the lock means no batch is queued, mid-send, or being
// processed), truncates the round-robin set so no new batch reaches the
// victims, then closes their channels and joins them. It returns the
// victims' accumulated idle time (the caller folds it into the retired
// telemetry) and reports false when nothing was removed — pool closed,
// n out of range, or fewer than n+1 workers. Like CloseContext it must not
// race with Process/ProcessSlice; the elastic families call it from the
// ingestion path itself.
func (p *pool[T]) removeWorkers(n int) ([]time.Duration, bool) {
	p.mu.Lock()
	if p.closed || n <= 0 || n >= len(p.workers) {
		p.mu.Unlock()
		return nil, false
	}
	for p.inflight > 0 {
		p.cond.Wait()
	}
	victims := p.workers[len(p.workers)-n:]
	p.workers = p.workers[:len(p.workers)-n]
	if p.next >= len(p.workers) {
		p.next = 0
	}
	p.mu.Unlock()
	idle := make([]time.Duration, 0, n)
	for _, w := range victims {
		// Quiesced and out of the round-robin set: the worker is blocked on
		// an empty channel, so close makes it exit without touching p.mu.
		close(w.ch)
		<-w.done
		idle = append(idle, w.idleTime())
	}
	return idle, true
}

// idleTimes snapshots every live worker's accumulated channel-wait time,
// index-aligned with the shard estimators.
func (p *pool[T]) idleTimes() []time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]time.Duration, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.idleTime()
	}
	return out
}

// Count reports the number of values ingested, including any still buffered
// or in flight.
func (p *pool[T]) Count() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Shards reports the number of shard workers, which a Rescaler may change
// at runtime.
func (p *pool[T]) Shards() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// BatchSize reports the hand-off batch size.
func (p *pool[T]) BatchSize() int { return p.batch }
