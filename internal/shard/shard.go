// Package shard implements worker-parallel sharded ingestion for the
// stream-mining estimators: an incoming stream is partitioned across K
// goroutine workers, each running an independent per-shard estimator, and
// queries are answered by merging the shard states.
//
// The correctness argument is the MERGE/COMPRESS error-budget calculus of
// Greenwald and Khanna's sensor-network algorithm (the same calculus XGBoost
// uses for distributed sketch construction): merging eps'-approximate
// summaries over disjoint substreams yields an eps'-approximate summary over
// the union, so giving each shard a budget of eps/2 leaves half the user's
// budget as headroom for downstream compression while the merged answer stays
// eps-approximate. For lossy counting the budget is additive instead of
// max-composed — per-shard undercounts of at most eps*N_i sum to at most
// eps*N — so frequency shards run at the full eps. DESIGN.md section 7 states
// both arguments precisely.
//
// Ingestion is batched: values accumulate in a hand-off buffer and full
// batches (DefaultBatchSize values unless overridden) are dispatched
// round-robin to the shard channels, amortizing synchronization exactly the
// way the paper's window batching amortizes GPU invocation overhead.
package shard

import (
	"runtime"
	"sync"
	"time"
)

// DefaultBatchSize is the ingestion hand-off batch size: large enough that
// channel synchronization is amortized over ~64K values (mirroring the
// paper's practice of batching four windows per GPU invocation), small
// enough that shards stay busy on multi-window streams.
const DefaultBatchSize = 1 << 16

// Option configures a sharded estimator.
type Option func(*config)

type config struct {
	batch int
}

// WithBatchSize overrides the hand-off batch size (default
// DefaultBatchSize). Smaller batches spread short streams across more
// shards at higher synchronization cost.
func WithBatchSize(n int) Option {
	return func(c *config) {
		if n <= 0 {
			panic("shard: batch size must be positive")
		}
		c.batch = n
	}
}

// Resolve normalizes a user-supplied shard count: values <= 0 select
// runtime.GOMAXPROCS(0).
func Resolve(shards int) int {
	if shards <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return shards
}

// worker is one shard: a channel feeding a goroutine that owns a per-shard
// estimator. mu guards every access to the estimator, both the worker's own
// ProcessSlice calls and query-time snapshots from other goroutines.
type worker struct {
	ch      chan []float32
	mu      sync.Mutex
	process func([]float32)
	// idle accumulates the time the worker goroutine spent blocked waiting
	// for a batch, guarded by mu. It feeds pipeline.Stats.Idle so shard
	// starvation is visible in the unified telemetry.
	idle time.Duration
}

// pool fans batches out to the shard workers. Safe for concurrent use by
// multiple producers; Flush and queries may run concurrently with ingestion.
type pool struct {
	batch   int
	workers []*worker
	wg      sync.WaitGroup

	mu       sync.Mutex // guards cur, next, inflight, total, closed
	cond     *sync.Cond // signaled when inflight reaches zero
	cur      []float32
	next     int
	inflight int
	total    int64
	closed   bool
}

// newPool starts one worker goroutine per processor.
func newPool(processors []func([]float32), opts ...Option) *pool {
	cfg := config{batch: DefaultBatchSize}
	for _, o := range opts {
		o(&cfg)
	}
	p := &pool{batch: cfg.batch}
	p.cond = sync.NewCond(&p.mu)
	p.cur = make([]float32, 0, p.batch)
	for _, proc := range processors {
		w := &worker{ch: make(chan []float32, 2), process: proc}
		p.workers = append(p.workers, w)
		p.wg.Add(1)
		go p.run(w)
	}
	return p
}

func (p *pool) run(w *worker) {
	defer p.wg.Done()
	for {
		t0 := time.Now()
		batch, ok := <-w.ch
		wait := time.Since(t0)
		if !ok {
			return
		}
		w.mu.Lock()
		w.idle += wait
		w.process(batch)
		w.mu.Unlock()
		p.mu.Lock()
		p.inflight--
		if p.inflight == 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// dispatchLocked hands the current buffer to the next worker round-robin.
// The channel send happens with p.mu released: a full channel would
// otherwise deadlock against workers that need p.mu to decrement inflight.
func (p *pool) dispatchLocked() {
	b := p.cur
	p.cur = make([]float32, 0, p.batch)
	w := p.workers[p.next]
	p.next = (p.next + 1) % len(p.workers)
	p.inflight++
	p.mu.Unlock()
	w.ch <- b
	p.mu.Lock()
}

// Process ingests one value.
func (p *pool) Process(v float32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		panic("shard: ingestion after Close")
	}
	p.total++
	p.cur = append(p.cur, v)
	if len(p.cur) >= p.batch {
		p.dispatchLocked()
	}
}

// ProcessSlice ingests a batch of values. The slice is copied into the
// hand-off buffer, so the caller may reuse it immediately.
func (p *pool) ProcessSlice(data []float32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		panic("shard: ingestion after Close")
	}
	p.total += int64(len(data))
	for len(data) > 0 {
		room := p.batch - len(p.cur)
		if room > len(data) {
			room = len(data)
		}
		p.cur = append(p.cur, data[:room]...)
		data = data[room:]
		if len(p.cur) >= p.batch {
			p.dispatchLocked()
		}
	}
}

// Flush dispatches any buffered values and blocks until every dispatched
// batch has been absorbed by its shard estimator. While Flush holds the
// ingest lock new producers stall, so the drain is guaranteed to terminate.
func (p *pool) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.cur) > 0 && !p.closed {
		p.dispatchLocked()
	}
	for p.inflight > 0 {
		p.cond.Wait()
	}
}

// Close flushes, stops the worker goroutines, and waits for them to exit.
// The estimator remains queryable after Close; further ingestion panics.
// Close must not race with Process/ProcessSlice; it is idempotent.
func (p *pool) Close() {
	p.Flush()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, w := range p.workers {
		close(w.ch)
	}
	p.wg.Wait()
}

// Count reports the number of values ingested, including any still buffered
// or in flight.
func (p *pool) Count() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Shards reports the number of shard workers.
func (p *pool) Shards() int { return len(p.workers) }

// BatchSize reports the hand-off batch size.
func (p *pool) BatchSize() int { return p.batch }
