package frugal

import (
	"fmt"

	"gpustream/internal/sorter"
)

// MergeSnapshots combines two frugal snapshots over disjoint substreams into
// one over their union. Frugal state is a point estimate, not a summary —
// there is no rank algebra to merge two trackers exactly — so the rule is the
// conservative one the keyed tier also uses: for each target quantile, keep
// the tracker backed by more data (the snapshot with the larger stream
// count), breaking ties deterministically toward the smaller estimate in
// ordered-key space. The merged estimate therefore always lies inside the
// envelope [min(estA, estB), max(estA, estB)] — it never invents a value
// neither input saw — and the rule is commutative.
//
// Both snapshots must track the same target-quantile bank; otherwise the
// error wraps ErrMismatchedPhis.
func MergeSnapshots[T sorter.Value](a, b *Snapshot[T]) (*Snapshot[T], error) {
	if len(a.phis) != len(b.phis) {
		return nil, fmt.Errorf("frugal: %d vs %d trackers: %w", len(a.phis), len(b.phis), ErrMismatchedPhis)
	}
	for i := range a.phis {
		if a.phis[i] != b.phis[i] {
			return nil, fmt.Errorf("frugal: tracker %d targets %v vs %v: %w", i, a.phis[i], b.phis[i], ErrMismatchedPhis)
		}
	}
	out := &Snapshot[T]{
		phis: a.phis,
		ests: make([]T, len(a.phis)),
		ctls: make([]uint8, len(a.phis)),
		n:    a.n + b.n,
	}
	for i := range a.phis {
		out.ests[i], out.ctls[i] = pickTracker(a.ests[i], a.ctls[i], a.n, b.ests[i], b.ctls[i], b.n)
	}
	return out, nil
}

// pickTracker resolves two frugal trackers of the same target: the one backed
// by more observations wins; equal backing breaks toward the smaller estimate
// in ordered-key space (then the smaller packed control byte), so the rule is
// symmetric in its arguments.
func pickTracker[T sorter.Value](estA T, ctlA uint8, nA int64, estB T, ctlB uint8, nB int64) (T, uint8) {
	switch {
	case nA > nB:
		return estA, ctlA
	case nB > nA:
		return estB, ctlB
	}
	ka, kb := sorter.OrderedKey(estA), sorter.OrderedKey(estB)
	if ka < kb || (ka == kb && ctlA <= ctlB) {
		return estA, ctlA
	}
	return estB, ctlB
}
