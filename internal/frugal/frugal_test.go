package frugal

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
	"gpustream/internal/wire"
)

// rankError reports the normalized rank distance between the estimate for
// phi and the true phi-quantile of data: 0 when the estimate lands inside
// the rank interval occupied by values equal to it at the target rank, else
// the interval distance divided by the stream length.
func rankError[T sorter.Value](est T, phi float64, sorted []T) float64 {
	n := len(sorted)
	lo := sort.Search(n, func(i int) bool { return !(sorted[i] < est) })
	hi := sort.Search(n, func(i int) bool { return sorted[i] > est })
	target := phi * float64(n)
	switch {
	case target < float64(lo):
		return (float64(lo) - target) / float64(n)
	case target > float64(hi):
		return (target - float64(hi)) / float64(n)
	}
	return 0
}

// convergenceCase is one stream shape the property test feeds a tracker
// bank.
type convergenceCase struct {
	name string
	gen  func(rng *rand.Rand, n int) []float64
	tol  float64
}

// TestConvergence pins the frugal guarantee empirically: on stationary
// streams the tracker bank converges to within a few percent of rank error
// at every probed quantile. Tolerances are loose — frugal estimates are
// heuristic, and the test exists to catch drift in the step rule, not to
// claim an eps bound the algorithm does not have.
func TestConvergence(t *testing.T) {
	const n = 200_000
	phis := []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	cases := []convergenceCase{
		{
			name: "uniform",
			gen: func(rng *rand.Rand, n int) []float64 {
				out := make([]float64, n)
				for i := range out {
					out[i] = rng.Float64()
				}
				return out
			},
			tol: 0.05,
		},
		{
			name: "normal",
			gen: func(rng *rand.Rand, n int) []float64 {
				out := make([]float64, n)
				for i := range out {
					out[i] = rng.NormFloat64() * 100
				}
				return out
			},
			tol: 0.10,
		},
		{
			name: "zipf-discrete",
			gen: func(rng *rand.Rand, n int) []float64 {
				z := rand.NewZipf(rng, 1.3, 1, 1<<16)
				out := make([]float64, n)
				for i := range out {
					out[i] = float64(z.Uint64())
				}
				return out
			},
			tol: 0.20,
		},
		{
			// Adversarially ordered: the stream arrives as repeated sorted
			// ascending blocks — monotone runs are the classic frugal failure
			// mode, softened here because the block distribution is
			// stationary. Tolerance is wider accordingly.
			name: "sorted-blocks",
			gen: func(rng *rand.Rand, n int) []float64 {
				const block = 1000
				out := make([]float64, 0, n)
				for len(out) < n {
					b := make([]float64, block)
					for i := range b {
						b[i] = rng.Float64()
					}
					sort.Float64s(b)
					out = append(out, b...)
				}
				return out[:n]
			},
			tol: 0.15,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			data := tc.gen(rng, n)
			e := NewEstimator[float64](WithPhis(phis...), WithSeed(7))
			if err := e.ProcessSlice(data); err != nil {
				t.Fatal(err)
			}
			sorted := append([]float64(nil), data...)
			sort.Float64s(sorted)
			for _, phi := range phis {
				est, target, ok := e.Estimate(phi)
				if !ok || target != phi {
					t.Fatalf("Estimate(%v) = (_, %v, %v), want tracked target", phi, target, ok)
				}
				if got := rankError(est, phi, sorted); got > tc.tol {
					t.Errorf("phi=%v: estimate %v has rank error %.4f > %.4f", phi, est, got, tc.tol)
				}
			}
		})
	}
}

// TestSortedRampBounded pins the failure-mode honesty: on a single fully
// sorted ramp the estimate need not converge, but it must stay inside the
// observed envelope — the step rule clamps on overshoot and never
// extrapolates past an observation.
func TestSortedRampBounded(t *testing.T) {
	e := NewEstimator[uint64](WithPhis(0.5), WithSeed(3))
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		if err := e.Process(i * 1000); err != nil {
			t.Fatal(err)
		}
	}
	est, _, ok := e.Estimate(0.5)
	if !ok {
		t.Fatal("Estimate not ok on non-empty stream")
	}
	if est > (n-1)*1000 {
		t.Errorf("estimate %d outside observed envelope [0, %d]", est, (n-1)*1000)
	}
}

// TestDeterminism pins that a fixed seed and ingestion order reproduce the
// tracker bank bit-exactly — the property the wire golden tests and the
// keyed tier both rely on.
func TestDeterminism(t *testing.T) {
	run := func() []float32 {
		rng := rand.New(rand.NewSource(5))
		e := NewEstimator[float32](WithSeed(11))
		for i := 0; i < 10_000; i++ {
			if err := e.Process(float32(rng.NormFloat64())); err != nil {
				t.Fatal(err)
			}
		}
		snap := e.Snapshot().(*Snapshot[float32])
		return snap.ests
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tracker %d: %v vs %v across identical runs", i, a[i], b[i])
		}
	}
}

func TestLifecycle(t *testing.T) {
	e := NewEstimator[float64]()
	if err := e.Process(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	if err := e.Process(2); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("Process after Close = %v, want ErrClosed", err)
	}
	if err := e.ProcessSlice([]float64{3}); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("ProcessSlice after Close = %v, want ErrClosed", err)
	}
	if got := e.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	if _, _, ok := e.Estimate(0.5); !ok {
		t.Fatal("closed estimator no longer queryable")
	}
	if got := e.Stats(); got != (pipeline.Stats{}) {
		t.Fatalf("Stats = %+v, want zero", got)
	}
}

func TestNearestPhi(t *testing.T) {
	e := NewEstimator[float64](WithPhis(0.25, 0.75))
	if err := e.Process(1); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		phi, want float64
	}{
		{0.0, 0.25}, {0.25, 0.25}, {0.5, 0.25}, {0.51, 0.75}, {1.0, 0.75},
	} {
		if _, target, _ := e.Estimate(tc.phi); target != tc.want {
			t.Errorf("Estimate(%v) answered target %v, want %v", tc.phi, target, tc.want)
		}
	}
}

func TestNewEstimatorValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("phi>1", func() { NewEstimator[float64](WithPhis(1.5)) })
	mustPanic("phi<0", func() { NewEstimator[float64](WithPhis(-0.1)) })
	mustPanic("NaN", func() { NewEstimator[float64](WithPhis(math.NaN())) })
	mustPanic("empty", func() { NewEstimator[float64](WithPhis()) })
	// Duplicates collapse rather than panic.
	if e := NewEstimator[float64](WithPhis(0.5, 0.5, 0.9)); len(e.Phis()) != 2 {
		t.Errorf("duplicate phis kept: %v", e.Phis())
	}
}

func TestSnapshotView(t *testing.T) {
	e := NewEstimator[float64](WithPhis(0.5), WithSeed(2))
	empty := e.Snapshot()
	if _, ok := empty.Quantile(0.5); ok {
		t.Fatal("empty snapshot answered a quantile")
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50_000; i++ {
		if err := e.Process(rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Snapshot()
	before, ok := snap.Quantile(0.5)
	if !ok {
		t.Fatal("snapshot Quantile not ok")
	}
	// The view is immutable under further ingestion.
	for i := 0; i < 50_000; i++ {
		if err := e.Process(100 + rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	if after, _ := snap.Quantile(0.5); after != before {
		t.Fatalf("snapshot answer moved under ingestion: %v -> %v", before, after)
	}
	if snap.Count() != 50_000 {
		t.Fatalf("snapshot Count = %d, want 50000", snap.Count())
	}
	if _, ok := snap.HeavyHitters(0.1); ok {
		t.Fatal("frugal snapshot claimed to answer HeavyHitters")
	}
	if _, ok := snap.Frequency(0.5); ok {
		t.Fatal("frugal snapshot claimed to answer Frequency")
	}
}

// ingestRandom builds a snapshot over n uniform values with the given seeds.
func ingestRandom(t *testing.T, dataSeed int64, stepSeed uint64, n int, shift float64) *Snapshot[float64] {
	t.Helper()
	rng := rand.New(rand.NewSource(dataSeed))
	e := NewEstimator[float64](WithSeed(stepSeed))
	for i := 0; i < n; i++ {
		if err := e.Process(rng.Float64() + shift); err != nil {
			t.Fatal(err)
		}
	}
	return e.Snapshot().(*Snapshot[float64])
}

func TestMergeSnapshots(t *testing.T) {
	a := ingestRandom(t, 1, 2, 60_000, 0)
	b := ingestRandom(t, 3, 4, 30_000, 0.25)
	ab, err := MergeSnapshots(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := MergeSnapshots(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Count() != 90_000 || ba.Count() != 90_000 {
		t.Fatalf("merged counts %d, %d, want 90000", ab.Count(), ba.Count())
	}
	for i, phi := range ab.Phis() {
		x, _, _ := ab.Estimate(phi)
		y, _, _ := ba.Estimate(phi)
		if x != y {
			t.Errorf("phi=%v: merge not commutative: %v vs %v", phi, x, y)
		}
		// A merged tracker is one of the inputs' trackers: inside the envelope.
		ea, _, _ := a.Estimate(phi)
		eb, _, _ := b.Estimate(phi)
		lo, hi := math.Min(ea, eb), math.Max(ea, eb)
		if x < lo || x > hi {
			t.Errorf("phi=%v: merged estimate %v outside envelope [%v, %v]", phi, x, lo, hi)
		}
		// The side with more backing data won.
		if x != ea {
			t.Errorf("tracker %d: larger-stream side did not win (%v, want %v)", i, x, ea)
		}
	}
}

func TestMergeMismatchedPhis(t *testing.T) {
	a := NewEstimator[float64](WithPhis(0.5))
	b := NewEstimator[float64](WithPhis(0.25, 0.75))
	_, err := MergeSnapshots(a.Snapshot().(*Snapshot[float64]), b.Snapshot().(*Snapshot[float64]))
	if !errors.Is(err, ErrMismatchedPhis) {
		t.Fatalf("err = %v, want ErrMismatchedPhis", err)
	}
	c := NewEstimator[float64](WithPhis(0.5))
	d := NewEstimator[float64](WithPhis(0.6))
	_, err = MergeSnapshots(c.Snapshot().(*Snapshot[float64]), d.Snapshot().(*Snapshot[float64]))
	if !errors.Is(err, ErrMismatchedPhis) {
		t.Fatalf("err = %v, want ErrMismatchedPhis", err)
	}
}

func TestWireRoundTrip(t *testing.T) {
	s := ingestRandom(t, 7, 8, 12_345, 0)
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSnapshot[float64](blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != s.Count() {
		t.Fatalf("Count %d, want %d", got.Count(), s.Count())
	}
	for _, phi := range s.Phis() {
		want, _, _ := s.Estimate(phi)
		have, _, _ := got.Estimate(phi)
		if want != have {
			t.Fatalf("phi=%v: decoded estimate %v, want %v", phi, have, want)
		}
	}
	// Canonical: decode then re-encode is the identity on bytes.
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("re-encoded bytes differ from original")
	}
	// Wrong instantiation is a clean tag mismatch.
	if _, err := UnmarshalSnapshot[float32](blob); !errors.Is(err, wire.ErrValueType) {
		t.Fatalf("wrong-type decode err = %v, want ErrValueType", err)
	}
}

// TestWireCorrupt drives the decoder through hostile mutations of a valid
// blob; every one must fail with a wrapped wire sentinel, never a panic.
func TestWireCorrupt(t *testing.T) {
	s := ingestRandom(t, 7, 8, 500, 0)
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Offsets into the body: header(8) + n(8) + count(4), then per-tracker
	// phi(8) + est(8) + ctl(1).
	const body = wire.HeaderSize
	const tracker0 = body + 8 + 4
	mut := func(name string, want error, fn func(b []byte) []byte) {
		t.Run(name, func(t *testing.T) {
			b := fn(append([]byte(nil), blob...))
			_, err := UnmarshalSnapshot[float64](b)
			if !errors.Is(err, want) {
				t.Fatalf("err = %v, want %v", err, want)
			}
		})
	}
	mut("empty", wire.ErrTruncated, func(b []byte) []byte { return nil })
	mut("truncated-body", wire.ErrTruncated, func(b []byte) []byte { return b[:len(b)-3] })
	mut("trailing", wire.ErrCorrupt, func(b []byte) []byte { return append(b, 0) })
	mut("bad-magic", wire.ErrBadMagic, func(b []byte) []byte { b[0] ^= 0xFF; return b })
	mut("negative-n", wire.ErrCorrupt, func(b []byte) []byte {
		copy(b[body:body+8], []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
		return b
	})
	t.Run("zero-count", func(t *testing.T) {
		// A blob claiming zero trackers is structurally corrupt even when
		// the byte count works out (no trailing tracker bytes to trip on).
		s2 := &Snapshot[float64]{phis: nil, ests: nil, ctls: nil, n: 0}
		bb, err := s2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := UnmarshalSnapshot[float64](bb); !errors.Is(err, wire.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	mut("phi-out-of-range", wire.ErrCorrupt, func(b []byte) []byte {
		copy(b[tracker0:], f64bytes(1.5))
		return b
	})
	mut("phi-nan", wire.ErrCorrupt, func(b []byte) []byte {
		copy(b[tracker0:], f64bytes(math.NaN()))
		return b
	})
	mut("unsorted-phis", wire.ErrCorrupt, func(b []byte) []byte {
		copy(b[tracker0+17:], f64bytes(0.0)) // second tracker's phi below the first
		return b
	})
	mut("invalid-sign", wire.ErrCorrupt, func(b []byte) []byte {
		b[tracker0+16] = 0xC0
		return b
	})
	mut("exp-too-big", wire.ErrCorrupt, func(b []byte) []byte {
		b[tracker0+16] = signUp | 63
		return b
	})
	mut("fresh-nonempty", wire.ErrCorrupt, func(b []byte) []byte {
		b[tracker0+16] = signFresh
		return b
	})
}

// f64bytes is the little-endian encoding of v, matching the wire format.
func f64bytes(v float64) []byte { return wire.AppendF64(nil, v) }

// TestWireFreshEmpty pins the one legal fresh encoding: an empty stream.
func TestWireFreshEmpty(t *testing.T) {
	e := NewEstimator[float64](WithPhis(0.5))
	blob, err := e.Snapshot().(*Snapshot[float64]).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSnapshot[float64](blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 {
		t.Fatalf("Count = %d, want 0", got.Count())
	}
}

func BenchmarkProcess(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 1<<16)
	for i := range data {
		data[i] = rng.Float64()
	}
	e := NewEstimator[float64]()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Process(data[i&(1<<16-1)])
	}
}
