// Package frugal implements the frugal-streaming quantile estimator of Ma,
// Muthukrishnan and Sandler ("Frugal Streaming for Estimating Quantiles: One
// (or two) memory suffices", arXiv:1407.1121): a converging estimate of one
// stream quantile maintained in one or two machine words, with no window, no
// summary, and no sort. It is the opposite end of the memory spectrum from
// the paper's GK stack — a GK summary costs O((1/eps) log(eps N)) entries per
// stream, a frugal tracker costs 9-10 bytes — which is what makes one
// estimator *per key* feasible at massive cardinality (the keyed front-end in
// internal/keyed pools millions of these and promotes only heavy keys to full
// summaries).
//
// The update rule is the paper's Frugal-2U adapted to the generic value
// domain: steps are taken in the order-preserving integer key space of
// sorter.OrderedKey (a monotone bijection, so the phi-quantile of the key
// stream maps back to the phi-quantile of the value stream), and the step
// size self-calibrates to the stream's scale: the control byte carries a
// slow median tracker of bitlen(|v - est|), and each accepted move steps
// 2^(scale-stepShift) keys — a small fixed fraction of the typical
// observation distance, capped below a binade. Scale calibration replaces
// the paper's additive f(step)=1 schedule because the key space is up to
// 2^64 wide: a fixed or run-length adapted step either strands the estimate
// ulps at a time or lets it wander by whole percentiles, while
// distance-derived steps converge from anywhere in the key space and then
// jitter by a fraction of a percentile. The comments on Step, adapt and
// stepSize record the correlation hazards that shaped the rule — every
// statistic of the distance stream that responds faster in one direction
// than the other, or faster than the stream's own sweep period, shows up as
// estimator bias.
//
// Guarantees are correspondingly frugal: the estimate converges toward the
// target quantile on stationary streams and tracks slow drift, but it carries
// no eps rank bound — DESIGN.md section 13 develops the error accounting used
// when a frugal estimate seeds a promoted GK summary.
package frugal

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
)

// Packed control-byte layout: low 6 bits hold the scale (the tracker's
// bitlen estimate of the typical key-space observation distance; steps are
// 2^(scale-stepShift) keys), the top 2 bits hold the direction of the last
// accepted move. A zero control byte is the fresh state, so
// zero-initialized slab storage is a valid tracker.
const (
	expMask   = 0x3F
	signFresh = 0x00
	signUp    = 0x40
	signDown  = 0x80
	signMask  = 0xC0
	// maxExp caps the step at 2^62 so key-space arithmetic can never wrap.
	maxExp = 62
)

// RNG is the xorshift64* generator driving the randomized rank gates. One
// generator is shared across all trackers of an estimator (and across all
// keys of a keyed front-end): frugal states carry no per-stream randomness.
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return RNG{s: seed}
}

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// unit maps 64 random bits to a uniform float64 in [0, 1).
func unit(rnd uint64) float64 { return float64(rnd>>11) * (1.0 / (1 << 53)) }

// Step advances one frugal tracker by a single observation. est and ctl are
// the tracker's two words of state (current estimate and packed
// exponent+direction), phi is the target quantile in [0, 1], and rnd supplies
// the random bits for the rank gate. It returns the updated state.
//
// The rule follows Frugal-2U: when v is above the estimate, move up with
// probability phi; when below, move down with probability 1-phi. At the true
// phi-quantile the expected drift is zero — P(v > est) = 1-phi, so upward
// mass (1-phi)·phi balances downward mass phi·(1-phi) — and anywhere else the
// drift points toward the quantile. Moves step by 2^(scale-stepShift) in
// ordered-key space, where scale is the control byte's slow median tracker
// of bitlen(|v - est|) — each step covers a small fixed fraction of the
// typical observation distance. When the remaining distance fits inside one
// step the estimate adopts the observation outright.
func Step[T sorter.Value](est T, ctl uint8, v T, phi float64, rnd uint64) (T, uint8) {
	if ctl&signMask == signFresh {
		// First observation: adopt it as the estimate. Exponent starts at 0.
		return v, signUp
	}
	vk, ek := sorter.OrderedKey(v), sorter.OrderedKey(est)
	if vk == ek {
		// A zero distance still informs the scale (bitlen 0 decays it).
		// Censoring repeats would inflate the scale median to the inter-mass
		// distance on discrete streams, unsticking the estimate from exactly
		// the point masses it should pin to.
		return est, ctl&signMask | adapt(ctl&expMask, 0, rnd&adaptMask == 0)
	}
	// Fold this observation's distance into the scale estimate before the
	// rank gate, so the scale sees every observation regardless of side or
	// gate outcome. Adapting only on accepted moves would correlate the step
	// size with the move direction — for an off-center phi the rare far-side
	// moves carry systematically larger distances (in a signed float key
	// space, crossing zero spans nearly the whole key range), and a
	// direction-correlated step size biases the drift toward the heavy side
	// no matter what the gate probabilities say.
	var d uint64
	up := vk > ek
	if up {
		d = vk - ek
	} else {
		d = ek - vk
	}
	// This move steps at the PRE-update scale; the adapted scale only feeds
	// future moves. Stepping at the scale the current distance just pushed
	// would re-correlate step size with move direction — a far-side
	// observation bumps the scale and then steps double, a near-side one
	// decays it and steps half, and that factor-two size asymmetry cancels
	// the rank gates' count asymmetry instead of letting it drive the
	// estimate toward the target quantile.
	step := stepSize(ctl & expMask)
	scale := adapt(ctl&expMask, d, rnd&adaptMask == 0)
	if up {
		if unit(rnd) >= phi {
			return est, ctl&signMask | scale
		}
		if step < d {
			return sorter.FromOrderedKey[T](ek + step), signUp | scale
		}
		// The whole remaining distance is within one step: adopt the
		// observation.
		return v, signUp | scale
	}
	if unit(rnd) >= 1-phi {
		return est, ctl&signMask | scale
	}
	if step < d {
		return sorter.FromOrderedKey[T](ek - step), signDown | scale
	}
	return v, signDown | scale
}

// ValidCtl reports whether a packed control byte is structurally valid: step
// exponent within maxExp and direction bits not both set. Wire decoders of
// embedded tracker state (this package's and the keyed container's) share it.
func ValidCtl(ctl uint8) bool { return ctl&expMask <= maxExp && ctl&signMask != signMask }

// Fresh reports whether a control byte is the fresh (never-stepped) state.
func Fresh(ctl uint8) bool { return ctl&signMask == signFresh }

// adapt folds one observation's distance into the tracker's scale estimate —
// a slow median tracker of the bitlen(|v - est|) distribution. Two regimes:
//
//   - Gross undershoot (b exceeds scale by adaptJump or more — a fresh or
//     badly miscalibrated tracker): raise scale by half the gap immediately,
//     so calibration from scale 0 takes a handful of observations.
//   - Otherwise: move one toward b, and only on a tick (one observation in
//     adaptMask+1, drawn from rnd bits the rank gate does not consume).
//
// The slow symmetric walk is deliberate twice over. Symmetric, because the
// far-side distances an off-center tracker sees are systematically enormous
// (in the sign-log float key space any cross-zero distance spans nearly the
// whole key range), so an estimator that chases large distances faster than
// it forgets them ends up direction-correlated — and a step size correlated
// with move direction biases the drift toward the heavy side no matter what
// the rank gates say. Slow, because a scale that tracks the current
// distance closely makes every step proportional to that distance, which
// drags the tracker toward an expectile instead of the quantile; sorted or
// periodic streams sweep their distances over hundreds of observations, and
// the scale must stay a property of the whole stream, not of the sweep
// phase. The fast-raise regime never fires at equilibrium (distance bitlen
// swings stay well inside adaptJump bits) and never lowers the scale, so it
// cannot reintroduce either correlation.
func adapt(scale uint8, d uint64, tick bool) uint8 {
	b := uint8(bits.Len64(d))
	if b > maxExp {
		b = maxExp
	}
	if b >= scale+adaptJump {
		return scale + (b-scale+1)/2
	}
	if !tick {
		return scale
	}
	switch {
	case b > scale:
		scale++
	case b < scale:
		scale--
	}
	return scale
}

// adaptMask subsamples the ±1 scale walk to one observation in 64; adaptJump
// is the undershoot gap that triggers immediate recalibration instead.
const (
	adaptMask = 0x1FF
	adaptJump = 16
)

// stepShift sets the step size to 2^(scale-stepShift) — 1/2048 of the
// tracker's typical observation distance. Small enough that equilibrium
// jitter is a fraction of a percentile, large enough that convergence from
// anywhere in the key space takes a few thousand accepted moves.
const stepShift = 11

// stepCap bounds the step exponent at 2^48 keys — 1/16 of a float64 binade,
// a ~4% relative move. Typical distances in a sign-crossing float stream
// are dominated by the key-space gulf around zero (half the key range), and
// an uncapped 1/256 of that is still a many-binade teleport; the cap keeps
// every move local in value space so the rank gates, not the key-space
// geometry, decide where the tracker settles.
const stepCap = 48

// stepSize is the key-space step at the given scale, at least one ulp.
func stepSize(scale uint8) uint64 {
	if scale <= stepShift {
		return 1
	}
	e := scale - stepShift
	if e > stepCap {
		e = stepCap
	}
	return uint64(1) << e
}

// DefaultPhis is the tracker bank a standalone estimator maintains when the
// caller does not pick target quantiles: the probes the rest of the module's
// tooling reports.
var DefaultPhis = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}

// Estimator is a bank of frugal trackers over one stream, one tracker per
// target quantile. It implements the same surface as the other estimator
// families (Process/ProcessSlice/Flush/Close/Count/Stats/Snapshot) so callers
// can program against the root Estimator interface, but its answers are
// heuristic point estimates, not eps-bounded ranks — and its footprint is a
// few words total, not a summary.
//
// One writer and any number of query goroutines may use an Estimator
// concurrently.
type Estimator[T sorter.Value] struct {
	mu     sync.Mutex
	phis   []float64 // ascending, deduplicated
	ests   []T
	ctls   []uint8
	n      int64
	rng    RNG
	closed bool
}

// Option configures an Estimator.
type Option func(*config)

type config struct {
	phis []float64
	seed uint64
}

// WithPhis selects the target quantiles to track, one word of state each.
// Values must lie in [0, 1]; duplicates collapse.
func WithPhis(phis ...float64) Option {
	return func(c *config) { c.phis = phis }
}

// WithSeed seeds the randomized rank gates. Estimates are deterministic for a
// fixed seed and ingestion order.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// NewEstimator returns a frugal estimator tracking DefaultPhis (or the
// WithPhis override).
func NewEstimator[T sorter.Value](opts ...Option) *Estimator[T] {
	cfg := config{phis: DefaultPhis, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	phis := append([]float64(nil), cfg.phis...)
	sort.Float64s(phis)
	kept := phis[:0]
	for i, phi := range phis {
		if phi < 0 || phi > 1 || math.IsNaN(phi) {
			panic(fmt.Sprintf("frugal: phi %v out of [0, 1]", phi))
		}
		if i > 0 && phi == kept[len(kept)-1] {
			continue
		}
		kept = append(kept, phi)
	}
	if len(kept) == 0 {
		panic("frugal: no target quantiles")
	}
	return &Estimator[T]{
		phis: kept,
		ests: make([]T, len(kept)),
		ctls: make([]uint8, len(kept)),
		rng:  NewRNG(cfg.seed),
	}
}

// Phis reports the tracked target quantiles, ascending.
func (e *Estimator[T]) Phis() []float64 { return append([]float64(nil), e.phis...) }

// Count reports the number of stream elements processed.
func (e *Estimator[T]) Count() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Process consumes one stream element. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (e *Estimator[T]) Process(v T) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("frugal: %w", pipeline.ErrClosed)
	}
	e.step(v)
	return nil
}

// ProcessSlice consumes a batch of stream elements; the caller may reuse the
// slice immediately. After Close it returns an error wrapping
// pipeline.ErrClosed.
func (e *Estimator[T]) ProcessSlice(data []T) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("frugal: %w", pipeline.ErrClosed)
	}
	for _, v := range data {
		e.step(v)
	}
	return nil
}

// step advances every tracker by one observation; the caller holds the lock.
func (e *Estimator[T]) step(v T) {
	e.n++
	for i := range e.phis {
		e.ests[i], e.ctls[i] = Step(e.ests[i], e.ctls[i], v, e.phis[i], e.rng.Next())
	}
}

// Flush implements the estimator surface; frugal state has no buffer to
// flush, so it is a no-op that still reports closure misuse consistently.
func (e *Estimator[T]) Flush() error { return nil }

// Close stops ingestion; the estimator remains queryable. Idempotent.
func (e *Estimator[T]) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}

// Stats implements the estimator surface. Frugal updates never sort, merge,
// or compress, so the unified pipeline telemetry is identically zero — the
// honest report for an estimator whose whole point is doing almost nothing
// per element.
func (e *Estimator[T]) Stats() pipeline.Stats { return pipeline.Stats{} }

// Estimate returns the current estimate of the tracker whose target is
// nearest phi, and that tracker's target. ok is false on an empty stream.
func (e *Estimator[T]) Estimate(phi float64) (v T, target float64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		return v, 0, false
	}
	i := nearestPhi(e.phis, phi)
	return e.ests[i], e.phis[i], true
}

// nearestPhi returns the index of the tracked target closest to phi (lower
// index on ties). phis is ascending and non-empty.
func nearestPhi(phis []float64, phi float64) int {
	i := sort.SearchFloat64s(phis, phi)
	if i == len(phis) {
		return i - 1
	}
	if i > 0 && phi-phis[i-1] <= phis[i]-phi {
		return i - 1
	}
	return i
}

// Snapshot is an immutable point-in-time view of a frugal estimator: a copy
// of the tracker bank. It is safe for concurrent use and implements
// pipeline.View, answering Quantile from the nearest tracked target —
// a heuristic point estimate, not an eps-bounded rank.
type Snapshot[T sorter.Value] struct {
	phis []float64
	ests []T
	ctls []uint8
	n    int64
}

// Snapshot returns an immutable view of the tracker bank. The view never
// sees ingestion that happens after this call.
func (e *Estimator[T]) Snapshot() pipeline.View[T] {
	e.mu.Lock()
	defer e.mu.Unlock()
	return &Snapshot[T]{
		phis: e.phis, // immutable after construction
		ests: append([]T(nil), e.ests...),
		ctls: append([]uint8(nil), e.ctls...),
		n:    e.n,
	}
}

// Count reports the stream length the snapshot covers.
func (s *Snapshot[T]) Count() int64 { return s.n }

// Size reports the number of trackers — the snapshot's whole footprint in
// state words.
func (s *Snapshot[T]) Size() int { return len(s.phis) }

// Phis reports the tracked target quantiles, ascending.
func (s *Snapshot[T]) Phis() []float64 { return append([]float64(nil), s.phis...) }

// Estimate returns the estimate of the tracker whose target is nearest phi,
// and that tracker's target. ok is false on an empty stream.
func (s *Snapshot[T]) Estimate(phi float64) (v T, target float64, ok bool) {
	if s.n == 0 {
		return v, 0, false
	}
	i := nearestPhi(s.phis, phi)
	return s.ests[i], s.phis[i], true
}

// Quantile implements pipeline.View: the estimate of the nearest tracked
// target. ok is false on an empty stream.
func (s *Snapshot[T]) Quantile(phi float64) (T, bool) {
	v, _, ok := s.Estimate(phi)
	return v, ok
}

// HeavyHitters implements pipeline.View; frugal trackers do not answer
// frequency queries.
func (s *Snapshot[T]) HeavyHitters(float64) ([]pipeline.Item[T], bool) { return nil, false }

// Frequency implements pipeline.View; frugal trackers do not answer
// point-frequency queries.
func (s *Snapshot[T]) Frequency(T) (int64, bool) { return 0, false }

// ErrMismatchedPhis is wrapped by MergeSnapshots when two snapshots track
// different target-quantile banks and therefore cannot be combined.
var ErrMismatchedPhis = errors.New("frugal: snapshots track different target quantiles")
