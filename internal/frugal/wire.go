package frugal

import (
	"gpustream/internal/sorter"
	"gpustream/internal/wire"
)

// Wire layout of a frugal Snapshot (family tag wire.FamilyFrugal):
//
//	header   wire.HeaderSize bytes
//	n        int64
//	count    uint32
//	trackers count × (phi float64 + est value[4|8] + ctl uint8)
//
// Trackers are strictly phi-ascending with targets in [0, 1]; the control
// byte packs the step exponent (<= 62) and last-move direction, and a fresh
// direction is legal exactly when n is zero — every tracker steps on every
// observation, so a non-empty stream leaves no tracker fresh. The decoder
// enforces all of it so a decoded snapshot upholds the same invariants as a
// live one. See DESIGN.md section 13.

// MarshalBinary implements encoding.BinaryMarshaler: the versioned,
// endian-stable wire encoding of the snapshot. The encoding is canonical —
// unmarshal then marshal reproduces the bytes exactly.
func (s *Snapshot[T]) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, wire.HeaderSize+8+4+len(s.phis)*(8+wire.ValueSize[T]()+1))
	b = wire.AppendHeader(b, wire.FamilyFrugal, wire.TagOf[T]())
	b = wire.AppendI64(b, s.n)
	b = wire.AppendU32(b, uint32(len(s.phis)))
	for i, phi := range s.phis {
		b = wire.AppendF64(b, phi)
		b = wire.AppendValue(b, s.ests[i])
		b = wire.AppendU8(b, s.ctls[i])
	}
	return b, nil
}

// UnmarshalSnapshot decodes a frugal snapshot marshaled by any process.
// Every failure — truncation, bad header, mismatched tags, overflowed
// lengths, violated tracker invariants — returns a wrapped wire sentinel
// error; it never panics and never allocates from an unvalidated length
// field.
func UnmarshalSnapshot[T sorter.Value](data []byte) (*Snapshot[T], error) {
	r := wire.NewReader(data)
	if err := r.Header(wire.FamilyFrugal, wire.TagOf[T]()); err != nil {
		return nil, err
	}
	s := &Snapshot[T]{}
	var err error
	if s.n, err = r.I64(); err != nil {
		return nil, err
	}
	if s.n < 0 {
		return nil, wire.Corruptf("frugal: negative stream length %d", s.n)
	}
	count, err := r.Count(8 + wire.ValueSize[T]() + 1)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, wire.Corruptf("frugal: snapshot tracks no target quantiles")
	}
	s.phis = make([]float64, count)
	s.ests = make([]T, count)
	s.ctls = make([]uint8, count)
	for i := 0; i < count; i++ {
		if s.phis[i], err = r.F64(); err != nil {
			return nil, err
		}
		if !(s.phis[i] >= 0 && s.phis[i] <= 1) { // also rejects NaN
			return nil, wire.Corruptf("frugal: tracker %d target %v out of [0, 1]", i, s.phis[i])
		}
		if i > 0 && !(s.phis[i-1] < s.phis[i]) {
			return nil, wire.Corruptf("frugal: trackers not strictly phi-ascending at %d", i)
		}
		if s.ests[i], err = wire.ReadValue[T](r); err != nil {
			return nil, err
		}
		if s.ctls[i], err = r.U8(); err != nil {
			return nil, err
		}
		if s.ctls[i]&expMask > maxExp {
			return nil, wire.Corruptf("frugal: tracker %d step exponent %d > %d", i, s.ctls[i]&expMask, maxExp)
		}
		if s.ctls[i]&signMask == signMask {
			return nil, wire.Corruptf("frugal: tracker %d direction bits 0x%02X invalid", i, s.ctls[i]&signMask)
		}
		if fresh := s.ctls[i]&signMask == signFresh; fresh != (s.n == 0) {
			return nil, wire.Corruptf("frugal: tracker %d freshness inconsistent with stream length %d", i, s.n)
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
