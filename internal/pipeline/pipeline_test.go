package pipeline

import (
	"errors"
	"testing"
	"time"
)

// collect returns a core of the given window plus the record of every
// window the sink saw (copied, since the sink slice is reused).
func collect(window int) (*Core[float32], *[][]float32) {
	var wins [][]float32
	c := NewCore(window, func(win []float32) {
		wins = append(wins, append([]float32(nil), win...))
	})
	return c, &wins
}

func TestWindowingAndBatching(t *testing.T) {
	c, wins := collect(4)
	c.Process(1)
	c.ProcessSlice([]float32{2, 3, 4, 5, 6, 7, 8, 9, 10})
	if len(*wins) != 2 {
		t.Fatalf("windows = %d, want 2", len(*wins))
	}
	for i, w := range *wins {
		if len(w) != 4 {
			t.Fatalf("window %d has %d values", i, len(w))
		}
	}
	if (*wins)[0][0] != 1 || (*wins)[1][3] != 8 {
		t.Fatalf("window contents wrong: %v", *wins)
	}
	if c.Count() != 10 || c.Buffered() != 2 {
		t.Fatalf("Count=%d Buffered=%d", c.Count(), c.Buffered())
	}
	if got := c.Stats().Windows; got != 2 {
		t.Fatalf("Stats().Windows = %d", got)
	}
}

func TestFlushPartialWindow(t *testing.T) {
	c, wins := collect(10)
	c.ProcessSlice([]float32{1, 2, 3})
	c.Flush()
	if len(*wins) != 1 || len((*wins)[0]) != 3 {
		t.Fatalf("partial flush: %v", *wins)
	}
	if c.Buffered() != 0 {
		t.Fatalf("Buffered = %d after Flush", c.Buffered())
	}
}

func TestFlushOnEmptyBufferIsNoop(t *testing.T) {
	c, wins := collect(10)
	c.Flush()
	if len(*wins) != 0 {
		t.Fatal("Flush on empty buffer invoked the sink")
	}
	if got := c.Stats().Windows; got != 0 {
		t.Fatalf("Windows = %d after empty Flush", got)
	}
}

func TestDoubleFlushIsNoop(t *testing.T) {
	c, wins := collect(10)
	c.ProcessSlice([]float32{1, 2, 3})
	c.Flush()
	c.Flush() // buffer now empty: must not re-invoke the sink
	if len(*wins) != 1 {
		t.Fatalf("double Flush produced %d windows, want 1", len(*wins))
	}
}

func TestCloseFlushesAndIsIdempotent(t *testing.T) {
	c, wins := collect(10)
	c.ProcessSlice([]float32{1, 2})
	c.Close()
	if len(*wins) != 1 {
		t.Fatal("Close did not flush the partial window")
	}
	if !c.Closed() {
		t.Fatal("Closed() false after Close")
	}
	c.Close() // idempotent
	c.Flush() // safe no-op after Close
	if len(*wins) != 1 {
		t.Fatalf("post-Close lifecycle produced %d windows", len(*wins))
	}
	if c.Count() != 2 {
		t.Fatalf("Count = %d after Close", c.Count())
	}
}

func TestProcessAfterCloseErrors(t *testing.T) {
	for name, fn := range map[string]func(c *Core[float32]) error{
		"Process":      func(c *Core[float32]) error { return c.Process(1) },
		"ProcessSlice": func(c *Core[float32]) error { return c.ProcessSlice([]float32{1}) },
	} {
		c, wins := collect(4)
		if err := fn(c); err != nil {
			t.Fatalf("%s before Close: %v", name, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		before := len(*wins)
		err := fn(c)
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("%s after Close = %v, want ErrClosed", name, err)
		}
		if len(*wins) != before || c.Count() != 1 {
			t.Fatalf("%s after Close mutated state: windows %d->%d count %d",
				name, before, len(*wins), c.Count())
		}
	}
}

func TestStatsAccumulation(t *testing.T) {
	c, _ := collect(2)
	c.AddSort(time.Second, 100)
	c.AddMerge(2*time.Second, 10)
	c.AddCompress(3*time.Second, 5)
	c.AddIdle(time.Minute)
	st := c.Stats()
	if st.SortedValues != 100 || st.MergeOps != 10 || st.CompressOps != 5 {
		t.Fatalf("counters: %+v", st)
	}
	if st.Total() != 6*time.Second {
		t.Fatalf("Total = %v, want 6s (idle excluded)", st.Total())
	}
	var sum Stats
	sum.Add(st)
	sum.Add(st)
	if sum.SortedValues != 200 || sum.Total() != 12*time.Second || sum.Idle != 2*time.Minute {
		t.Fatalf("Add: %+v", sum)
	}
}

func TestScratchReuse(t *testing.T) {
	c, _ := collect(4)
	s1 := c.Scratch(8)
	if len(s1) != 0 || cap(s1) < 8 {
		t.Fatalf("Scratch: len=%d cap=%d", len(s1), cap(s1))
	}
	s1 = append(s1, 1, 2, 3)
	s2 := c.Scratch(4)
	if cap(s2) != cap(s1) {
		t.Fatal("Scratch did not reuse its backing array")
	}
}

func TestBufferPooling(t *testing.T) {
	// A closed core's buffer must be reusable by a new core of the same
	// window size. sync.Pool gives no hard guarantee, so assert only that
	// the recycled core behaves correctly, not that pooling happened.
	c1, _ := collect(64)
	c1.ProcessSlice(make([]float32, 40))
	c1.Close()
	c2, wins := collect(64)
	c2.ProcessSlice(make([]float32, 64))
	if len(*wins) != 1 || len((*wins)[0]) != 64 {
		t.Fatal("recycled core mis-windowed")
	}
	c2.Close()
}

func TestNewCorePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for window 0")
		}
	}()
	NewCore(0, func([]float32) {})
}

func TestSinkSliceReused(t *testing.T) {
	// The sink must treat its argument as borrowed: the core reuses the
	// backing array for the next window.
	var first []float32
	c := NewCore(2, func(win []float32) {
		if first == nil {
			first = win
		}
	})
	c.ProcessSlice([]float32{1, 2, 3, 4})
	if first[0] != 3 || first[1] != 4 {
		t.Fatalf("buffer not reused across windows: %v", first)
	}
}
