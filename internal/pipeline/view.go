package pipeline

import "gpustream/internal/sorter"

// Item is one reported heavy hitter: a stream value and its estimated
// frequency. It is the common currency of every frequency-flavoured result
// in the module (the frequency and window packages alias it).
type Item[T sorter.Value] struct {
	Value T
	Freq  int64
}

// View is an immutable, point-in-time queryable snapshot of an estimator.
// Every estimator family returns one from Snapshot(): the view keeps
// answering — without locks and without seeing later ingestion — after the
// live estimator moves on, is safe for concurrent use from any number of
// goroutines, and stays valid after the estimator is closed.
//
// Views are cheap: they share summary storage with the live estimator under
// a copy-on-write discipline (the estimator allocates fresh storage the
// next time it would have overwritten shared state), so taking one is O(1)
// to O(partial window), never O(stream).
//
// Not every family answers every query shape, so the query methods report
// ok=false when the underlying sketch does not support them: quantile
// estimators answer Quantile, frequency estimators answer HeavyHitters and
// Frequency. Type-assert to the concrete snapshot type
// (frequency.Snapshot, quantile.Snapshot, window.FrequencySnapshot,
// window.QuantileSnapshot) for the family-specific surface, including
// sliding-window variable-span queries.
type View[T sorter.Value] interface {
	// Count reports the number of stream values the snapshot covers.
	Count() int64
	// Size reports the retained summary entries (or histogram bins), the
	// snapshot's memory footprint in elements.
	Size() int
	// Quantile returns an eps-approximate phi-quantile, phi in [0, 1].
	// ok is false if the family does not answer quantile queries or the
	// snapshot covers an empty stream.
	Quantile(phi float64) (T, bool)
	// HeavyHitters returns all values with estimated relative frequency
	// at least support. ok is false if the family does not answer
	// frequency queries.
	HeavyHitters(support float64) ([]Item[T], bool)
	// Frequency returns the estimated absolute count of v. ok is false if
	// the family does not answer point-frequency queries.
	Frequency(v T) (int64, bool)
}
