package pipeline

// Staged asynchronous execution: the paper's co-processing model (Sections
// 3-4) runs the GPU sort of window i concurrently with the CPU merge and
// compress of window i-1, hiding summary maintenance behind sorting. The
// executor here is that model on goroutines: a sort stage that owns the
// sorter, a merge stage that owns the summary state (it runs mergeFn under
// the core lock), and two pooled window buffers so ingestion fills buffer B
// while buffer A is in flight.
//
//	ingestion ── sortCh(1) ──> sort stage ── sortedCh(1) ──> merge stage
//	    ^                                                        │
//	    └────────────────────── freeCh(2) <──────────────────────┘
//
// Bit-identity with synchronous mode holds because nothing about the work is
// reordered: windows enter sortCh in ingestion order, the single sort-stage
// goroutine sorts them one at a time with the same sorter instance, and the
// single merge-stage goroutine merges them in arrival order. Only the
// interleaving with ingestion changes, and queries re-serialize through
// BarrierLocked before reading summary state.
//
// Query barrier: BarrierLocked waits (on the core's cond, lock held) until
// no window is mid-hand-off and inflight == 0. inflight is incremented under
// the lock when a window is handed off and decremented by the merge stage
// under the lock after mergeFn returns, so inflight == 0 observed under the
// lock means both stage goroutines are idle and every emitted window has
// been merged — at that point the summary equals the serial-prefix state and
// the sorter is quiescent (safe for query-time partial sorts).

import (
	"sync"
	"time"

	"gpustream/internal/sorter"
)

// sortJob carries a sealed window to the sort stage together with the
// sorter it was sealed under. The sorter rides with the job rather than
// being read from the core so a tuner may swap backends at a window
// boundary without racing the sort stage: a window already handed off
// keeps the sorter that was active when it was sealed.
type sortJob[T sorter.Value] struct {
	win []T
	srt sorter.Sorter[T]
}

// sortedWindow carries a sorted window from the sort stage to the merge
// stage along with the sort's measured wall clock, which the merge stage
// folds into Stats under the lock (the sort stage itself never takes it).
type sortedWindow[T sorter.Value] struct {
	win []T
	dur time.Duration
}

// executor owns the two stage goroutines and the channels between them.
type executor[T sorter.Value] struct {
	sortCh   chan sortJob[T]      // ingestion -> sort stage, cap 1
	sortedCh chan sortedWindow[T] // sort stage -> merge stage, cap 1
	freeCh   chan []T             // merge stage -> ingestion buffer recycling
	done     chan struct{}        // closed when the merge stage exits
	ov       overlapTracker
}

const (
	stageSort  = 0
	stageMerge = 1
)

// overlapTracker measures the wall clock during which both stages were busy
// simultaneously — the executor's analog of the paper's hidden CPU time. It
// has its own mutex because the sort stage never takes the core lock.
type overlapTracker struct {
	mu        sync.Mutex
	busy      [2]bool
	bothSince time.Time
	acc       time.Duration
}

func (o *overlapTracker) enter(stage int) {
	o.mu.Lock()
	o.busy[stage] = true
	if o.busy[0] && o.busy[1] {
		o.bothSince = time.Now()
	}
	o.mu.Unlock()
}

func (o *overlapTracker) exit(stage int) {
	o.mu.Lock()
	if o.busy[0] && o.busy[1] {
		o.acc += time.Since(o.bothSince)
	}
	o.busy[stage] = false
	o.mu.Unlock()
}

func (o *overlapTracker) total() time.Duration {
	o.mu.Lock()
	defer o.mu.Unlock()
	t := o.acc
	if o.busy[0] && o.busy[1] {
		t += time.Since(o.bothSince)
	}
	return t
}

// StartAsync switches a staged core from inline to overlapped execution:
// subsequent full windows are handed to the sort stage goroutine and their
// merge/compress runs on the merge stage goroutine while ingestion refills.
// It must be called on a staged core (NewStagedCore), at most once, and
// before any value is ingested — it picks the initial mode; a Tuner owns
// the mode at runtime through the Knobs.Async knob. Close drains and
// terminates both stage goroutines.
func (c *Core[T]) StartAsync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.srt == nil {
		panic("pipeline: StartAsync requires a staged core")
	}
	if c.exec != nil {
		panic("pipeline: StartAsync called twice")
	}
	if c.closed || c.count != 0 {
		panic("pipeline: StartAsync must precede ingestion")
	}
	c.asyncWant = true
	c.startExecutorLocked()
}

// startExecutorLocked spins up the two stage goroutines. The caller must
// hold the lock with no window mid-hand-off; starting between windows is
// always safe because the executor begins empty — the very next sealed
// window is simply handed off instead of sorted inline.
func (c *Core[T]) startExecutorLocked() {
	e := &executor[T]{
		sortCh:   make(chan sortJob[T], 1),
		sortedCh: make(chan sortedWindow[T], 1),
		freeCh:   make(chan []T, 2),
		done:     make(chan struct{}),
	}
	// The second window buffer: ingestion swaps its full buffer for this one
	// at the first hand-off and the two then alternate through freeCh.
	e.freeCh <- getBuf[T](c.window)
	c.exec = e
	go c.runSort(e)
	go c.runMerge(e)
}

// stopExecutorLocked quiesces and joins the stage goroutines, folding the
// executor's overlap total into the base stats so nothing is lost across the
// transition. The caller must hold the lock. Waiting for done while holding
// the lock is safe: after BarrierLocked both stages are idle and blocked on
// their channels, and the shutdown cascade (close sortCh -> sort stage
// closes sortedCh -> merge stage closes done) takes no core lock because
// neither range loop has an item left to process.
func (c *Core[T]) stopExecutorLocked() {
	c.BarrierLocked()
	exec := c.exec
	c.exec = nil
	c.stats.Overlap += exec.ov.total()
	close(exec.sortCh)
	<-exec.done
	for {
		select {
		case b := <-exec.freeCh:
			putBuf(b)
		default:
			return
		}
	}
}

// emitAsync hands the full window to the executor and swaps in a recycled
// buffer. It runs with the lock held and releases it across the hand-off
// (the merge stage needs the lock to make progress, and holding it while
// blocked on a channel would deadlock exactly like a shard dispatch would);
// the handoff flag plus waitHandoff keep other writers and flushes out of
// the half-swapped state in the meantime.
func (c *Core[T]) emitAsync() {
	win := c.buf
	c.buf = nil
	c.handoff = true
	c.inflight++
	if int64(c.inflight) > c.stats.MaxInFlight {
		c.stats.MaxInFlight = int64(c.inflight)
	}
	exec := c.exec
	srt := c.srt
	c.mu.Unlock()
	t0 := time.Now()
	exec.sortCh <- sortJob[T]{win: win, srt: srt}
	fresh := <-exec.freeCh
	d := time.Since(t0)
	c.mu.Lock()
	c.stats.Stall += d
	c.buf = fresh[:0]
	c.handoff = false
	c.cond.Broadcast()
}

// waitHandoff blocks (lock held) until no window is mid-hand-off, so callers
// never observe the nil buffer of a half-completed swap.
func (c *Core[T]) waitHandoff() {
	for c.handoff {
		c.cond.Wait()
	}
}

// BarrierLocked drains the executor: it blocks (lock held) until every
// emitted window has been sorted and merged. On return the summary state is
// identical to what synchronous execution of the same prefix would have
// produced and the sorter is idle, so query paths may walk summary state and
// reuse the sorter for partial-window sorts. On a synchronous core it is a
// no-op. The caller must hold the lock.
func (c *Core[T]) BarrierLocked() {
	if c.exec == nil {
		return
	}
	for c.handoff || c.inflight > 0 {
		c.cond.Wait()
	}
}

// runSort is the sort stage: it sorts windows one at a time in arrival
// order with the sorter each job was sealed under, submitting through the
// backend's async surface when it has one (the paper's non-blocking render
// + readback). The executor is passed explicitly: c.exec may already point
// at a successor (or nil) by the time a stopped executor's goroutines wind
// down.
func (c *Core[T]) runSort(e *executor[T]) {
	for job := range e.sortCh {
		e.ov.enter(stageSort)
		t0 := time.Now()
		if as, ok := job.srt.(sorter.AsyncSorter[T]); ok {
			as.SortAsync(job.win).Wait()
		} else {
			job.srt.Sort(job.win)
		}
		d := time.Since(t0)
		e.ov.exit(stageSort)
		e.sortedCh <- sortedWindow[T]{win: job.win, dur: d}
	}
	close(e.sortedCh)
}

// runMerge is the merge/compress stage: it folds sorted windows into the
// summary state under the core lock (the same contract a synchronous sink
// has), lands the sort stage's telemetry, and recycles the buffer.
func (c *Core[T]) runMerge(e *executor[T]) {
	for sw := range e.sortedCh {
		e.ov.enter(stageMerge)
		c.mu.Lock()
		c.stats.Sort += sw.dur
		c.stats.SortedValues += int64(len(sw.win))
		c.mergeFn(sw.win)
		c.inflight--
		c.retune()
		c.cond.Broadcast()
		c.mu.Unlock()
		e.ov.exit(stageMerge)
		e.freeCh <- sw.win[:0]
	}
	close(e.done)
}
