package pipeline

import (
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"
)

// stagedCollect returns a staged core whose merge stage records every sorted
// window it receives, plus the record. startAsync selects the executor.
func stagedCollect(window int, startAsync bool) (*Core[float32], *[][]float32) {
	var wins [][]float32
	c := NewStagedCore(window, sliceSorter{}, func(win []float32) {
		wins = append(wins, append([]float32(nil), win...))
	})
	if startAsync {
		c.StartAsync()
	}
	return c, &wins
}

// sliceSorter is a minimal synchronous sorter.Sorter[float32].
type sliceSorter struct{}

func (sliceSorter) Sort(data []float32) {
	sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
}

func (sliceSorter) Name() string { return "test-slice" }

func TestStagedCoreSyncSortsWindows(t *testing.T) {
	c, wins := stagedCollect(4, false)
	c.ProcessSlice([]float32{4, 3, 2, 1, 8, 7, 6, 5})
	c.Flush()
	want := [][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}}
	if !reflect.DeepEqual(*wins, want) {
		t.Fatalf("merge stage saw %v, want %v", *wins, want)
	}
	st := c.Stats()
	if st.Windows != 2 || st.SortedValues != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Overlap != 0 || st.Stall != 0 || st.MaxInFlight != 0 {
		t.Fatalf("sync staged core reported executor stats: %+v", st)
	}
}

// TestAsyncMatchesSyncAtCoreLevel pins the executor's ordering guarantee at
// the lowest layer: the merge stage must see the same sorted windows in the
// same order regardless of mode, for whole-stream, per-element, and
// partial-final-window ingestion.
func TestAsyncMatchesSyncAtCoreLevel(t *testing.T) {
	data := make([]float32, 1037)
	for i := range data {
		data[i] = float32((i * 7919) % 1000)
	}
	run := func(async bool, oneByOne bool) [][]float32 {
		c, wins := stagedCollect(64, async)
		if oneByOne {
			for _, v := range data {
				c.Process(v)
			}
		} else {
			c.ProcessSlice(data)
		}
		c.Close()
		return *wins
	}
	for _, oneByOne := range []bool{false, true} {
		syncWins, asyncWins := run(false, oneByOne), run(true, oneByOne)
		if !reflect.DeepEqual(syncWins, asyncWins) {
			t.Fatalf("oneByOne=%v: async merge order diverged (%d vs %d windows)",
				oneByOne, len(syncWins), len(asyncWins))
		}
	}
}

func TestAsyncBarrierMakesStateVisible(t *testing.T) {
	var total float64
	c := NewStagedCore(8, sliceSorter{}, func(win []float32) {
		for _, v := range win {
			total += float64(v)
		}
	})
	c.StartAsync()
	var want float64
	for i := 0; i < 1024; i++ {
		c.Process(float32(i % 97))
		want += float64(i % 97)
	}
	// Without the barrier `total` may lag by up to two in-flight windows;
	// with it every emitted window must have merged. The last partial window
	// is still buffered, so flush first.
	c.Flush()
	c.mu.Lock()
	c.BarrierLocked()
	got := total
	c.mu.Unlock()
	if got != want {
		t.Fatalf("after barrier merged total = %v, want %v", got, want)
	}
	c.Close()
}

func TestAsyncStatsCountersMatchSync(t *testing.T) {
	run := func(async bool) Stats {
		c, _ := stagedCollect(32, async)
		for i := 0; i < 10; i++ {
			buf := make([]float32, 100)
			for j := range buf {
				buf[j] = float32((i*100 + j) % 53)
			}
			c.ProcessSlice(buf)
		}
		c.Close()
		s := c.Stats()
		// Wall-clock fields differ between modes by construction.
		s.Sort, s.Merge, s.Compress, s.Idle = 0, 0, 0, 0
		s.Overlap, s.Stall, s.MaxInFlight = 0, 0, 0
		return s
	}
	if syncStats, asyncStats := run(false), run(true); !reflect.DeepEqual(syncStats, asyncStats) {
		t.Fatalf("counter mismatch:\n  sync:  %+v\n  async: %+v", syncStats, asyncStats)
	}
}

func TestAsyncReportsStallAndInFlight(t *testing.T) {
	slow := slowSorter{d: 200 * time.Microsecond}
	c := NewStagedCore[float32](16, slow, func([]float32) {})
	c.StartAsync()
	for i := 0; i < 16*64; i++ {
		c.Process(float32(i))
	}
	c.Close()
	st := c.Stats()
	if st.MaxInFlight < 1 {
		t.Fatalf("MaxInFlight = %d, want >= 1", st.MaxInFlight)
	}
	if st.Windows != 64 {
		t.Fatalf("Windows = %d, want 64", st.Windows)
	}
}

// slowSorter sleeps before sorting so ingestion outruns the sort stage and
// must stall on the free-buffer channel.
type slowSorter struct{ d time.Duration }

func (s slowSorter) Sort(data []float32) {
	time.Sleep(s.d)
	sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
}

func (slowSorter) Name() string { return "test-slow" }

// TestAsyncOverlapAccrues pins the acceptance criterion that a multi-window
// async run reports nonzero Stats.Overlap. Slow stages make it
// deterministic on any host, single-core included: while the sort stage
// sleeps in window i, the merge stage is inside window i-1, so both busy
// flags are set and the tracker must accrue wall clock.
func TestAsyncOverlapAccrues(t *testing.T) {
	mergeDelay := 2 * time.Millisecond
	c := NewStagedCore[float32](16, slowSorter{d: 4 * time.Millisecond}, func([]float32) {
		time.Sleep(mergeDelay)
	})
	c.StartAsync()
	for i := 0; i < 16*8; i++ {
		c.Process(float32(i))
	}
	c.Close()
	st := c.Stats()
	if st.Windows != 8 {
		t.Fatalf("Windows = %d, want 8", st.Windows)
	}
	if st.Overlap <= 0 {
		t.Fatalf("multi-window async run accrued no overlap: %+v", st)
	}
	if st.MaxInFlight < 2 {
		t.Fatalf("MaxInFlight = %d, want 2 with both stages saturated", st.MaxInFlight)
	}
}

func TestAsyncCloseIsIdempotentAndFinal(t *testing.T) {
	c, wins := stagedCollect(4, true)
	c.ProcessSlice([]float32{3, 1, 2})
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := c.Process(9); !errors.Is(err, ErrClosed) {
		t.Fatalf("Process after Close = %v, want ErrClosed", err)
	}
	if want := [][]float32{{1, 2, 3}}; !reflect.DeepEqual(*wins, want) {
		t.Fatalf("final flush through async path saw %v, want %v", *wins, want)
	}
}

// flipTuner commands an executor transition at almost every window
// boundary — on, off, keep, on, off — exercising mid-stream mode changes in
// both directions.
type flipTuner struct{ i int }

func (f *flipTuner) Retune(Stats, Knobs[float32]) (Knobs[float32], bool) {
	ring := []AsyncKnob{AsyncOn, AsyncOff, AsyncKeep, AsyncOn, AsyncOff}
	f.i++
	return Knobs[float32]{Async: ring[f.i%len(ring)]}, true
}

// TestAsyncFlipMidStreamBitIdentical pins the elastic execution-mode knob
// at the core level: a schedule of sync↔async flips must hand the merge
// stage the same sorted windows in the same order as a fixed-mode run, from
// either starting mode and for both slice and per-element ingestion — and
// the executor must genuinely start and stop along the way, observed
// between ingestion calls.
func TestAsyncFlipMidStreamBitIdentical(t *testing.T) {
	data := make([]float32, 64*40+17) // 40 full windows plus a partial tail
	for i := range data {
		data[i] = float32((i * 6007) % 997)
	}
	run := func(startAsync, flip, oneByOne bool) ([][]float32, map[bool]bool) {
		c, wins := stagedCollect(64, startAsync)
		if flip {
			c.SetTuner(&flipTuner{})
		}
		modes := map[bool]bool{}
		step := 160 // not a window multiple, so flips land mid-buffer too
		if oneByOne {
			step = 1
		}
		for off := 0; off < len(data); off += step {
			end := min(off+step, len(data))
			if oneByOne {
				c.Process(data[off])
			} else {
				c.ProcessSlice(data[off:end])
			}
			// Reconcile exactly as the next ingestion entry would — barrier
			// so every in-flight retune has landed, then apply the
			// commanded mode — and record the live executor state.
			c.mu.Lock()
			c.BarrierLocked()
			c.applyAsyncLocked()
			modes[c.exec != nil] = true
			c.mu.Unlock()
		}
		c.Close()
		return *wins, modes
	}
	for _, oneByOne := range []bool{false, true} {
		base, _ := run(false, false, oneByOne)
		for _, startAsync := range []bool{false, true} {
			got, modes := run(startAsync, true, oneByOne)
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("oneByOne=%v startAsync=%v: flip schedule diverged from fixed sync (%d vs %d windows)",
					oneByOne, startAsync, len(base), len(got))
			}
			if !modes[true] || !modes[false] {
				t.Fatalf("oneByOne=%v startAsync=%v: executor never transitioned (observed modes %v)",
					oneByOne, startAsync, modes)
			}
		}
	}
}

func TestStartAsyncMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("nil sorter", func() {
		NewStagedCore[float32](4, nil, func([]float32) {})
	})
	expectPanic("nil merge", func() {
		NewStagedCore[float32](4, sliceSorter{}, nil)
	})
	expectPanic("plain core", func() {
		NewCore[float32](4, func([]float32) {}).StartAsync()
	})
	expectPanic("double start", func() {
		c, _ := stagedCollect(4, true)
		defer c.Close()
		c.StartAsync()
	})
	expectPanic("start after ingest", func() {
		c, _ := stagedCollect(4, false)
		c.Process(1)
		c.StartAsync()
	})
}
