// Package pipeline implements the shared windowed-ingestion machinery that
// every estimator family in this repository is built on. The paper's whole
// pipeline is one repeated shape — fill a window, sort it, merge the result
// into a running summary, compress (Sections 4.1 and 5.1) — and Core is that
// shape extracted once: batched Process/ProcessSlice buffering, a sink
// callback invoked per full window, an explicit Flush/Close lifecycle, and
// window-buffer reuse through a sync.Pool so steady-state ingestion does not
// allocate per window.
//
// Telemetry is unified in Stats: per-stage operation counters plus measured
// wall clock for the paper's three operations (sort, merge, compress) and
// the idle time of parallel shard workers. Estimator sinks record into the
// Core's Stats via AddSort/AddMerge/AddCompress; Core itself counts windows.
//
// Lifecycle contract (tested in core_test.go):
//
//   - Flush seals the buffered partial window through the sink; on an empty
//     buffer it is a no-op, so double Flush is safe and idempotent.
//   - Close flushes, returns the window buffer to the pool, and marks the
//     core closed. Close is idempotent.
//   - Process and ProcessSlice after Close return an error wrapping
//     ErrClosed — ingestion after shutdown is a recoverable caller mistake,
//     not a panic.
//
// Concurrency contract: Core owns one mutex that serializes ingestion
// against queries. The stream model of the paper answers queries while the
// stream is still arriving, so estimator query paths take Lock/Unlock
// around their multi-step read (flush partial window, walk summary state)
// and the sink always runs with the lock already held. Public entry points
// (Process, ProcessSlice, Flush, Close, Stats, Count, Buffered, Closed)
// lock internally; the *Locked variants and the query-time accessors
// (Partial, Scratch, Add*) require the caller to hold the lock.
package pipeline

import (
	"errors"
	"reflect"
	"sync"
	"time"

	"gpustream/internal/sorter"
)

// ErrClosed is the sentinel error reported when ingesting into a closed
// estimator. Errors returned by Process/ProcessSlice after Close wrap it, so
// callers test with errors.Is(err, pipeline.ErrClosed).
var ErrClosed = errors.New("pipeline: estimator is closed")

// Stats is the unified per-stage telemetry of a windowed summary pipeline,
// in backend-independent units. It subsumes the Timings/Counts pairs the
// estimator packages used to duplicate: counters match the three operations
// of the paper's Section 3.2 and feed the perfmodel, durations are measured
// host wall clock whose proportions reproduce Figure 6 directly.
type Stats struct {
	Windows      int64 // windows (or panes) flushed through the sink
	SortedValues int64 // stream values that passed through the sort stage
	MergeOps     int64 // summary/histogram elements visited by merges
	CompressOps  int64 // summary elements visited by compress scans

	Sort     time.Duration // wall clock in the sort (histogram) stage
	Merge    time.Duration // wall clock in the merge stage
	Compress time.Duration // wall clock in the compress stage
	Idle     time.Duration // wall clock spent waiting for input (shard workers)

	// Staged-executor telemetry, zero in synchronous mode. Overlap is the
	// wall clock during which the sort stage and the merge/compress stage
	// were busy simultaneously — the co-processing the paper's Section 3
	// claims; Stall is ingestion time blocked handing a full window to the
	// executor (no free buffer or sort stage behind); MaxInFlight is the
	// peak number of windows between hand-off and merge completion.
	Overlap     time.Duration
	Stall       time.Duration
	MaxInFlight int64
}

// Total sums the active processing stages. Idle is excluded: it measures
// starvation, not work, and would double-count against other shards' stages.
func (s Stats) Total() time.Duration { return s.Sort + s.Merge + s.Compress }

// Add accumulates o into s, for aggregating per-shard or per-estimator
// stats into one report.
func (s *Stats) Add(o Stats) {
	s.Windows += o.Windows
	s.SortedValues += o.SortedValues
	s.MergeOps += o.MergeOps
	s.CompressOps += o.CompressOps
	s.Sort += o.Sort
	s.Merge += o.Merge
	s.Compress += o.Compress
	s.Idle += o.Idle
	s.Overlap += o.Overlap
	s.Stall += o.Stall
	if o.MaxInFlight > s.MaxInFlight {
		s.MaxInFlight = o.MaxInFlight
	}
}

// AsyncKnob is the tri-state execution-mode knob. The zero value keeps the
// current mode, matching the "zero means keep" convention of the other knob
// fields, so tuners that only touch the sorter or window never flip modes by
// accident.
type AsyncKnob int8

const (
	AsyncKeep AsyncKnob = iota // keep the current execution mode
	AsyncOn                    // staged overlapped execution (two stage goroutines)
	AsyncOff                   // inline synchronous execution
)

// Knobs are the runtime-tunable execution parameters of a staged core: the
// sorting backend, the window size, and the execution mode. In a Tuner's
// return value a nil Sorter, non-positive Window, or AsyncKeep means "keep
// the current setting".
type Knobs[T sorter.Value] struct {
	Sorter sorter.Sorter[T]
	Window int
	Async  AsyncKnob
}

// Tuner is the runtime controller consulted at every window boundary, right
// after that window's merge completed. It receives the core's telemetry
// snapshot and the currently active knobs and returns the knobs to use for
// subsequent windows (ok false keeps everything unchanged). Retune runs
// with the core lock held — on the merge-stage goroutine in async mode —
// so implementations must be fast and must not call back into the core.
//
// Knob changes take effect at window boundaries only: the window currently
// buffering and any window already in flight keep the sorter they were
// sealed with, which is what keeps dynamic schedules eps-correct — every
// value still passes through exactly one sorted window.
type Tuner[T sorter.Value] interface {
	Retune(st Stats, cur Knobs[T]) (next Knobs[T], ok bool)
}

// bufPools recycles window buffers across estimator lifetimes, one pool per
// element type (generic package-level variables are not a thing, so the
// per-type pools live behind a sync.Map keyed by reflect.Type). Entries
// whose capacity does not fit the requested window are dropped back to the
// allocator rather than grown, keeping each pool self-sizing.
var bufPools sync.Map // reflect.Type -> *sync.Pool

func poolFor[T sorter.Value]() *sync.Pool {
	key := reflect.TypeOf((*T)(nil)).Elem()
	if p, ok := bufPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := bufPools.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

func getBuf[T sorter.Value](capacity int) []T {
	if p, _ := poolFor[T]().Get().(*[]T); p != nil && cap(*p) >= capacity {
		return (*p)[:0]
	}
	return make([]T, 0, capacity)
}

func putBuf[T sorter.Value](b []T) {
	b = b[:0]
	poolFor[T]().Put(&b)
}

// Core is the windowed-ingestion engine shared by the estimator families:
// it owns the window buffer, the ingestion loop, the lifecycle, the Stats,
// and the mutex that makes live queries safe against concurrent ingestion.
// Each full window (and each Flush-forced partial window) is handed to the
// sink, which performs the estimator-specific sort/merge/compress work; the
// slice passed to the sink is only valid for the duration of the call and
// is reused for the next window. The sink is always invoked with the core's
// lock held, so it may touch estimator state and the Add* recorders freely.
//
// One writer and any number of query goroutines may use a Core-backed
// estimator concurrently; multiple concurrent writers are also safe but
// serialize on the lock (internal/shard partitions the stream across
// per-worker estimators instead).
type Core[T sorter.Value] struct {
	mu      sync.Mutex
	cond    *sync.Cond // signals hand-off and in-flight transitions
	window  int
	sink    func(win []T)
	buf     []T
	count   int64
	closed  bool
	stats   Stats
	scratch []T

	// Staged-mode state (NewStagedCore). srt sorts each sealed window and
	// mergeFn folds the sorted window into summary state; in synchronous
	// staged mode emit runs both inline, and after StartAsync the executor
	// runs them on the two stage goroutines.
	srt     sorter.Sorter[T]
	mergeFn func(win []T)
	exec    *executor[T]
	handoff bool // window being handed to the executor, mu released mid-emit
	inflight int // windows between hand-off and merge completion

	// asyncWant is the commanded execution mode. It may disagree with the
	// live mode (exec != nil) for a moment: a tuner flips it on the merge
	// goroutine, where the executor cannot be stopped (stopping joins that
	// very goroutine), and the next ingestion call applies it at a window
	// boundary via applyAsyncLocked.
	asyncWant bool

	// tuner, when set, is consulted after every merged window and may swap
	// the sorter and resize the window at that boundary (SetTuner).
	tuner Tuner[T]
}

// NewCore returns a core buffering windows of the given size. The window
// buffer comes from a shared pool and returns to it on Close.
func NewCore[T sorter.Value](window int, sink func(win []T)) *Core[T] {
	if window <= 0 {
		panic("pipeline: window must be positive")
	}
	c := &Core[T]{window: window, sink: sink, buf: getBuf[T](window)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// NewStagedCore returns a core whose sink is split into the paper's two
// pipeline stages: srt sorts each sealed window ascending in place, and
// mergeFn merges/compresses the sorted window into summary state. The core
// times the sort stage itself (AddSort with the window length); mergeFn
// records its own merge/compress telemetry via the Add* recorders. By
// default both stages still run inline under the lock, bit-identical to a
// NewCore sink that sorts then merges; StartAsync moves them onto
// overlapping stage goroutines.
func NewStagedCore[T sorter.Value](window int, srt sorter.Sorter[T], mergeFn func(win []T)) *Core[T] {
	if srt == nil || mergeFn == nil {
		panic("pipeline: staged core requires a sorter and a merge stage")
	}
	c := NewCore[T](window, nil)
	c.srt = srt
	c.mergeFn = mergeFn
	return c
}

// Lock acquires the core's ingestion/query mutex. Estimator query paths
// hold it across their multi-step reads so answers are snapshot-consistent
// against a concurrent writer.
func (c *Core[T]) Lock() { c.mu.Lock() }

// Unlock releases the core's ingestion/query mutex.
func (c *Core[T]) Unlock() { c.mu.Unlock() }

// WindowSize reports the current window length. It is read under the lock:
// a tuner may resize the window at any window boundary.
func (c *Core[T]) WindowSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.window
}

// WindowSizeLocked is WindowSize for callers already holding the lock
// (estimator sinks and query paths).
func (c *Core[T]) WindowSizeLocked() int { return c.window }

// SorterLocked returns the currently selected sorter. The caller must hold
// the lock; in async mode it must additionally have passed BarrierLocked,
// so the sort stage is quiescent and the instance is safe to reuse for
// query-time partial-window sorts.
func (c *Core[T]) SorterLocked() sorter.Sorter[T] { return c.srt }

// Tuning reports the currently active knobs: the selected sorter and the
// window size. On a plain-sink core the sorter is nil.
func (c *Core[T]) Tuning() (sorter.Sorter[T], int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.srt, c.window
}

// SetTuner installs the runtime controller consulted after every merged
// window. It must be called on a staged core before any value is ingested
// (the same construction-time window StartAsync has); the tuner then owns
// the sorter and window knobs for the core's lifetime. Retune runs with
// the core lock held, so the tuner must not call back into the core.
func (c *Core[T]) SetTuner(t Tuner[T]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.srt == nil {
		panic("pipeline: SetTuner requires a staged core")
	}
	if c.closed || c.count != 0 {
		panic("pipeline: SetTuner must precede ingestion")
	}
	c.tuner = t
}

// retune consults the tuner after a window has been merged (lock held) and
// applies the returned knobs. A sorter swap takes effect with the next
// sealed window: the synchronous path reads c.srt at the next emit and the
// async path snapshots the sorter into each hand-off, so a window already
// in flight keeps the sorter it was sealed with. An Async flip only records
// the commanded mode here; applyAsyncLocked performs the actual executor
// transition on an ingestion goroutine, never on the merge stage (which
// could not join itself).
func (c *Core[T]) retune() {
	if c.tuner == nil {
		return
	}
	cur := Knobs[T]{Sorter: c.srt, Window: c.window, Async: AsyncOff}
	if c.asyncWant {
		cur.Async = AsyncOn
	}
	next, ok := c.tuner.Retune(c.StatsLocked(), cur)
	if !ok {
		return
	}
	if next.Sorter != nil {
		c.srt = next.Sorter
	}
	if next.Window > 0 {
		c.window = next.Window
	}
	switch next.Async {
	case AsyncOn:
		c.asyncWant = true
	case AsyncOff:
		c.asyncWant = false
	}
}

// applyAsyncLocked reconciles the live execution mode with the commanded
// one. It runs on ingestion goroutines only (Process/ProcessSlice entry and
// the synchronous emit path), with the lock held and no window mid-hand-off,
// so transitions always happen between merged windows: stopping quiesces the
// stages through BarrierLocked first, starting just spins the goroutines up.
// Either way every value still passes through exactly one sorted window, so
// a schedule of mode flips is bit-identical to any fixed mode.
func (c *Core[T]) applyAsyncLocked() {
	if c.closed || c.srt == nil || c.asyncWant == (c.exec != nil) {
		return
	}
	if c.asyncWant {
		c.startExecutorLocked()
	} else {
		c.stopExecutorLocked()
	}
}

// Count reports the total values ingested, including buffered ones.
func (c *Core[T]) Count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// CountLocked is Count for callers already holding the lock.
func (c *Core[T]) CountLocked() int64 { return c.count }

// Buffered reports the number of values in the current partial window.
func (c *Core[T]) Buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}

// BufferedLocked is Buffered for callers already holding the lock.
func (c *Core[T]) BufferedLocked() int { return len(c.buf) }

// Partial exposes the current partial window for query-time snapshots. The
// caller must hold the lock; the returned slice aliases the live buffer, so
// callers copy before the lock is released (Scratch provides a reusable
// destination).
func (c *Core[T]) Partial() []T { return c.buf }

// Scratch returns a reusable zero-length scratch slice with capacity at
// least n, for query-time copies of the partial window. The caller must
// hold the lock; the same backing array is handed out on every call, so the
// copy must not outlive the locked region.
func (c *Core[T]) Scratch(n int) []T {
	if cap(c.scratch) < n {
		c.scratch = make([]T, 0, n)
	}
	return c.scratch[:0]
}

// Closed reports whether Close has been called.
func (c *Core[T]) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Process ingests one value. After Close it returns an error wrapping
// ErrClosed.
func (c *Core[T]) Process(v T) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.waitHandoff()
	if c.closed {
		return ErrClosed
	}
	c.applyAsyncLocked()
	c.count++
	c.buf = append(c.buf, v)
	if len(c.buf) >= c.window {
		c.emit()
	}
	return nil
}

// ProcessSlice ingests a batch of values, copying them into the window
// buffer chunk-wise so full windows flush as they complete. After Close it
// returns an error wrapping ErrClosed. The caller may reuse data
// immediately.
func (c *Core[T]) ProcessSlice(data []T) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.waitHandoff()
	if c.closed {
		return ErrClosed
	}
	c.applyAsyncLocked()
	c.count += int64(len(data))
	for len(data) > 0 {
		room := c.window - len(c.buf)
		if room <= 0 {
			// A retune shrank the window below the current fill: seal the
			// buffered values as one (oversized) window and re-check.
			c.emit()
			continue
		}
		if room > len(data) {
			room = len(data)
		}
		c.buf = append(c.buf, data[:room]...)
		data = data[room:]
		if len(c.buf) >= c.window {
			c.emit()
		}
	}
	return nil
}

// Flush seals the buffered partial window through the sink. On an empty
// buffer — including immediately after a previous Flush or after Close —
// it is a no-op, so the returned error is always nil today; the signature
// matches the estimator lifecycle so callers program against one surface.
func (c *Core[T]) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.FlushLocked()
	return nil
}

// FlushLocked is Flush for callers already holding the lock (query paths
// that seal the partial window before walking summary state). In async mode
// it additionally drains every in-flight window, so on return the summary
// state reflects the whole ingested prefix exactly as it would after a
// synchronous flush.
func (c *Core[T]) FlushLocked() {
	c.waitHandoff()
	if len(c.buf) > 0 {
		c.emit()
	}
	c.BarrierLocked()
}

// Close flushes, drains and terminates the stage goroutines if async mode
// is on, returns the window and scratch buffers to the shared pool, and
// marks the core closed. Further Process/ProcessSlice calls return an error
// wrapping ErrClosed; Flush and the accessors remain safe. Close is
// idempotent and always returns nil.
func (c *Core[T]) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.waitHandoff()
	if c.closed {
		return nil
	}
	c.FlushLocked()
	if c.exec != nil {
		c.stopExecutorLocked()
	}
	c.closed = true
	putBuf(c.buf)
	c.buf = nil
	if c.scratch != nil {
		putBuf(c.scratch)
		c.scratch = nil
	}
	return nil
}

// emit seals the buffered window through the pipeline and resets the
// buffer. The lock is already held on every path that reaches here. With a
// plain sink the sink runs inline; a staged core sorts then merges — inline
// in synchronous mode, on the stage goroutines after StartAsync.
func (c *Core[T]) emit() {
	c.stats.Windows++
	switch {
	case c.exec != nil:
		c.emitAsync()
		return
	case c.srt != nil:
		t0 := time.Now()
		c.srt.Sort(c.buf)
		c.AddSort(time.Since(t0), int64(len(c.buf)))
		c.mergeFn(c.buf)
		c.buf = c.buf[:0]
		c.retune()
		// The sync path runs on an ingestion goroutine, so a sync->async
		// decision can take effect immediately (mid-ProcessSlice even).
		c.applyAsyncLocked()
	default:
		c.sink(c.buf)
		c.buf = c.buf[:0]
	}
}

// AddSort records d spent in the sort stage over values sorted elements.
// Caller must hold the lock (sinks and query paths do).
func (c *Core[T]) AddSort(d time.Duration, values int64) {
	c.stats.Sort += d
	c.stats.SortedValues += values
}

// AddMerge records d spent in the merge stage visiting ops elements.
// Caller must hold the lock.
func (c *Core[T]) AddMerge(d time.Duration, ops int64) {
	c.stats.Merge += d
	c.stats.MergeOps += ops
}

// AddCompress records d spent in the compress stage visiting ops elements.
// Caller must hold the lock.
func (c *Core[T]) AddCompress(d time.Duration, ops int64) {
	c.stats.Compress += d
	c.stats.CompressOps += ops
}

// AddIdle records d spent waiting for input. Caller must hold the lock.
func (c *Core[T]) AddIdle(d time.Duration) { c.stats.Idle += d }

// Stats returns a snapshot of the unified telemetry. The counters are read
// under the lock, so a concurrent reader never observes a torn report
// (e.g. a window counted whose sort time has not landed yet).
func (c *Core[T]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.StatsLocked()
}

// StatsLocked is Stats for callers already holding the lock. Overlap
// accumulated by executors already stopped lives in c.stats; the live
// executor's running total is added on top, so mode flips never lose
// overlap already earned.
func (c *Core[T]) StatsLocked() Stats {
	s := c.stats
	if c.exec != nil {
		s.Overlap += c.exec.ov.total()
	}
	return s
}

// Async reports the commanded execution mode: true when the staged executor
// is running (or a tuner has committed to starting it at the next ingestion
// call), false for inline synchronous execution.
func (c *Core[T]) Async() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.asyncWant
}
