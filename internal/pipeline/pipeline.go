// Package pipeline implements the shared windowed-ingestion machinery that
// every estimator family in this repository is built on. The paper's whole
// pipeline is one repeated shape — fill a window, sort it, merge the result
// into a running summary, compress (Sections 4.1 and 5.1) — and Core is that
// shape extracted once: batched Process/ProcessSlice buffering, a sink
// callback invoked per full window, an explicit Flush/Close lifecycle, and
// window-buffer reuse through a sync.Pool so steady-state ingestion does not
// allocate per window.
//
// Telemetry is unified in Stats: per-stage operation counters plus measured
// wall clock for the paper's three operations (sort, merge, compress) and
// the idle time of parallel shard workers. Estimator sinks record into the
// Core's Stats via AddSort/AddMerge/AddCompress; Core itself counts windows.
//
// Lifecycle contract (tested in core_test.go):
//
//   - Flush seals the buffered partial window through the sink; on an empty
//     buffer it is a no-op, so double Flush is safe and idempotent.
//   - Close flushes, returns the window buffer to the pool, and marks the
//     core closed. Close is idempotent.
//   - Process and ProcessSlice after Close panic with ErrClosed's message —
//     ingestion after shutdown is a programming error, matching the
//     established behavior of the sharded pool.
package pipeline

import (
	"sync"
	"time"
)

// ErrClosed is the panic message used when ingesting into a closed Core.
const ErrClosed = "pipeline: Process after Close"

// Stats is the unified per-stage telemetry of a windowed summary pipeline,
// in backend-independent units. It subsumes the Timings/Counts pairs the
// estimator packages used to duplicate: counters match the three operations
// of the paper's Section 3.2 and feed the perfmodel, durations are measured
// host wall clock whose proportions reproduce Figure 6 directly.
type Stats struct {
	Windows      int64 // windows (or panes) flushed through the sink
	SortedValues int64 // stream values that passed through the sort stage
	MergeOps     int64 // summary/histogram elements visited by merges
	CompressOps  int64 // summary elements visited by compress scans

	Sort     time.Duration // wall clock in the sort (histogram) stage
	Merge    time.Duration // wall clock in the merge stage
	Compress time.Duration // wall clock in the compress stage
	Idle     time.Duration // wall clock spent waiting for input (shard workers)
}

// Total sums the active processing stages. Idle is excluded: it measures
// starvation, not work, and would double-count against other shards' stages.
func (s Stats) Total() time.Duration { return s.Sort + s.Merge + s.Compress }

// Add accumulates o into s, for aggregating per-shard or per-estimator
// stats into one report.
func (s *Stats) Add(o Stats) {
	s.Windows += o.Windows
	s.SortedValues += o.SortedValues
	s.MergeOps += o.MergeOps
	s.CompressOps += o.CompressOps
	s.Sort += o.Sort
	s.Merge += o.Merge
	s.Compress += o.Compress
	s.Idle += o.Idle
}

// bufPool recycles window buffers across estimator lifetimes. Entries whose
// capacity does not fit the requested window are dropped back to the
// allocator rather than grown, keeping the pool self-sizing.
var bufPool sync.Pool

func getBuf(capacity int) []float32 {
	if p, _ := bufPool.Get().(*[]float32); p != nil && cap(*p) >= capacity {
		return (*p)[:0]
	}
	return make([]float32, 0, capacity)
}

func putBuf(b []float32) {
	b = b[:0]
	bufPool.Put(&b)
}

// Core is the windowed-ingestion engine shared by the estimator families:
// it owns the window buffer, the ingestion loop, the lifecycle, and the
// Stats. Each full window (and each Flush-forced partial window) is handed
// to the sink, which performs the estimator-specific sort/merge/compress
// work; the slice passed to the sink is only valid for the duration of the
// call and is reused for the next window.
//
// Core is not goroutine-safe; concurrent ingestion goes through
// internal/shard, which gives each worker its own Core-backed estimator.
type Core struct {
	window  int
	sink    func(win []float32)
	buf     []float32
	count   int64
	closed  bool
	stats   Stats
	scratch []float32
}

// NewCore returns a core buffering windows of the given size. The window
// buffer comes from a shared pool and returns to it on Close.
func NewCore(window int, sink func(win []float32)) *Core {
	if window <= 0 {
		panic("pipeline: window must be positive")
	}
	return &Core{window: window, sink: sink, buf: getBuf(window)}
}

// WindowSize reports the buffered window length.
func (c *Core) WindowSize() int { return c.window }

// Count reports the total values ingested, including buffered ones.
func (c *Core) Count() int64 { return c.count }

// Buffered reports the number of values in the current partial window.
func (c *Core) Buffered() int { return len(c.buf) }

// Partial exposes the current partial window for query-time snapshots. The
// returned slice aliases the live buffer: callers must copy before mutating
// (Scratch provides a reusable destination).
func (c *Core) Partial() []float32 { return c.buf }

// Scratch returns a reusable zero-length scratch slice with capacity at
// least n, for query-time copies of the partial window. The same backing
// array is handed out on every call, so at most one scratch use may be live
// at a time.
func (c *Core) Scratch(n int) []float32 {
	if cap(c.scratch) < n {
		c.scratch = make([]float32, 0, n)
	}
	return c.scratch[:0]
}

// Closed reports whether Close has been called.
func (c *Core) Closed() bool { return c.closed }

// Process ingests one value. It panics if the core is closed.
func (c *Core) Process(v float32) {
	if c.closed {
		panic(ErrClosed)
	}
	c.count++
	c.buf = append(c.buf, v)
	if len(c.buf) == c.window {
		c.emit()
	}
}

// ProcessSlice ingests a batch of values, copying them into the window
// buffer chunk-wise so full windows flush as they complete. It panics if
// the core is closed. The caller may reuse data immediately.
func (c *Core) ProcessSlice(data []float32) {
	if c.closed {
		panic(ErrClosed)
	}
	c.count += int64(len(data))
	for len(data) > 0 {
		room := c.window - len(c.buf)
		if room > len(data) {
			room = len(data)
		}
		c.buf = append(c.buf, data[:room]...)
		data = data[room:]
		if len(c.buf) == c.window {
			c.emit()
		}
	}
}

// Flush seals the buffered partial window through the sink. On an empty
// buffer — including immediately after a previous Flush — it is a no-op.
func (c *Core) Flush() {
	if len(c.buf) > 0 {
		c.emit()
	}
}

// Close flushes, returns the window buffer to the shared pool, and marks
// the core closed. Further Process/ProcessSlice calls panic; Flush and the
// accessors remain safe. Close is idempotent.
func (c *Core) Close() {
	if c.closed {
		return
	}
	c.Flush()
	c.closed = true
	putBuf(c.buf)
	c.buf = nil
}

// emit hands the buffered window to the sink and resets the buffer.
func (c *Core) emit() {
	c.stats.Windows++
	c.sink(c.buf)
	c.buf = c.buf[:0]
}

// AddSort records d spent in the sort stage over values sorted elements.
func (c *Core) AddSort(d time.Duration, values int64) {
	c.stats.Sort += d
	c.stats.SortedValues += values
}

// AddMerge records d spent in the merge stage visiting ops elements.
func (c *Core) AddMerge(d time.Duration, ops int64) {
	c.stats.Merge += d
	c.stats.MergeOps += ops
}

// AddCompress records d spent in the compress stage visiting ops elements.
func (c *Core) AddCompress(d time.Duration, ops int64) {
	c.stats.Compress += d
	c.stats.CompressOps += ops
}

// AddIdle records d spent waiting for input.
func (c *Core) AddIdle(d time.Duration) { c.stats.Idle += d }

// Stats returns a snapshot of the unified telemetry.
func (c *Core) Stats() Stats { return c.stats }
