package frequency

import (
	"math"
	"testing"
	"testing/quick"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/stream"
)

func newCPU(eps float64) *Estimator[float32] {
	return NewEstimator(eps, cpusort.QuicksortSorter[float32]{})
}

func TestEstimatorUndercountBound(t *testing.T) {
	const eps = 0.01
	data := stream.Zipf(50000, 1.2, 500, 1)
	e := newCPU(eps)
	x := NewExact[float32]()
	e.ProcessSlice(data)
	x.ProcessSlice(data)
	e.Flush()

	n := float64(e.Count())
	for v, truth := 0, int64(0); v < 500; v++ {
		truth = x.Estimate(float32(v))
		est := e.Estimate(float32(v))
		if est > truth {
			t.Fatalf("value %d overcounted: est %d > true %d", v, est, truth)
		}
		if float64(truth-est) > eps*n+1e-9 {
			t.Fatalf("value %d undercounted beyond eps*N: est %d true %d", v, est, truth)
		}
	}
}

func TestEstimatorNoFalseNegatives(t *testing.T) {
	const eps, s = 0.005, 0.02
	data := stream.Zipf(40000, 1.3, 2000, 2)
	e := newCPU(eps)
	x := NewExact[float32]()
	e.ProcessSlice(data)
	x.ProcessSlice(data)

	reported := map[float32]bool{}
	for _, it := range e.Query(s) {
		reported[it.Value] = true
	}
	for _, it := range x.Query(s) {
		if !reported[it.Value] {
			t.Fatalf("false negative: %v (true freq %d, sN=%v)", it.Value, it.Freq, s*float64(x.Count()))
		}
	}
	// And no wild false positives: everything reported has true frequency
	// >= (s - 2eps) * N (query threshold minus the undercount).
	for _, it := range e.Query(s) {
		if truth := x.Estimate(it.Value); float64(truth) < (s-2*eps)*float64(x.Count())-1e-9 {
			t.Fatalf("false positive beyond guarantee: %v true=%d", it.Value, truth)
		}
	}
}

func TestEstimatorQuick(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		const eps = 0.1
		e := newCPU(eps)
		x := NewExact[float32]()
		for _, b := range raw {
			v := float32(b % 16)
			e.Process(v)
			x.Process(v)
		}
		e.Flush()
		n := float64(x.Count())
		for v := 0; v < 16; v++ {
			truth := x.Estimate(float32(v))
			est := e.Estimate(float32(v))
			if est > truth || float64(truth-est) > eps*n+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorGPUBackendMatchesCPU(t *testing.T) {
	const eps = 0.01
	data := stream.Zipf(20000, 1.1, 300, 3)
	cpu := newCPU(eps)
	gpu := NewEstimator(eps, gpusort.NewSorter[float32]())
	cpu.ProcessSlice(data)
	gpu.ProcessSlice(data)
	for v := 0; v < 300; v++ {
		if cpu.Estimate(float32(v)) != gpu.Estimate(float32(v)) {
			t.Fatalf("backends disagree on value %d", v)
		}
	}
}

func TestEstimatorSpaceBound(t *testing.T) {
	const eps = 0.001
	e := newCPU(eps)
	e.ProcessSlice(stream.UniformInts(200000, 1000000, 4))
	e.Flush()
	// O((1/eps) log(eps N)) with a generous constant.
	bound := int(10 / eps * math.Log(eps*float64(e.Count())+2))
	if e.SummarySize() > bound {
		t.Fatalf("summary size %d exceeds bound %d", e.SummarySize(), bound)
	}
}

func TestEstimatorStats(t *testing.T) {
	e := newCPU(0.01)
	e.ProcessSlice(stream.Uniform(1000, 5))
	e.Flush()
	st := e.Stats()
	if st.Windows != 10 || st.SortedValues != 1000 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MergeOps == 0 || st.CompressOps == 0 {
		t.Fatalf("merge/compress not instrumented: %+v", st)
	}
	if st.Total() <= 0 || st.Sort <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEstimatorPartialWindowVisible(t *testing.T) {
	e := newCPU(0.1) // window 10
	for i := 0; i < 7; i++ {
		e.Process(42)
	}
	if got := e.Estimate(42); got != 7 {
		t.Fatalf("Estimate after partial window = %d, want 7", got)
	}
	if e.Count() != 7 {
		t.Fatalf("Count = %d", e.Count())
	}
}

func TestEstimatorQueryOrdering(t *testing.T) {
	e := newCPU(0.05)
	var data []float32
	for i := 0; i < 100; i++ {
		data = append(data, 1)
	}
	for i := 0; i < 50; i++ {
		data = append(data, 2)
	}
	e.ProcessSlice(data)
	items := e.Query(0.2)
	if len(items) < 2 || items[0].Value != 1 || items[1].Value != 2 {
		t.Fatalf("Query ordering = %v", items)
	}
}

func TestEstimatorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewEstimator(0, cpusort.QuicksortSorter[float32]{}) },
		func() { NewEstimator(1, cpusort.QuicksortSorter[float32]{}) },
		func() { newCPU(0.1).Query(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestMisraGriesBound(t *testing.T) {
	const k = 99 // eps = 1/(k+1) = 0.01
	data := stream.Zipf(30000, 1.2, 400, 6)
	m := NewMisraGries[float32](k)
	x := NewExact[float32]()
	m.ProcessSlice(data)
	x.ProcessSlice(data)
	epsN := float64(m.Count()) / float64(k+1)
	for v := 0; v < 400; v++ {
		truth := x.Estimate(float32(v))
		est := m.Estimate(float32(v))
		if est > truth {
			t.Fatalf("MG overcounted %d", v)
		}
		if float64(truth-est) > epsN+1e-9 {
			t.Fatalf("MG undercounted %d beyond N/(k+1)", v)
		}
	}
	if m.Size() > k {
		t.Fatalf("MG size %d > k", m.Size())
	}
}

func TestMisraGriesNoFalseNegatives(t *testing.T) {
	data := stream.Zipf(30000, 1.4, 1000, 7)
	m := NewMisraGries[float32](199)
	x := NewExact[float32]()
	m.ProcessSlice(data)
	x.ProcessSlice(data)
	reported := map[float32]bool{}
	for _, it := range m.Query(0.05) {
		reported[it.Value] = true
	}
	for _, it := range x.Query(0.05) {
		if !reported[it.Value] {
			t.Fatalf("MG false negative on %v", it.Value)
		}
	}
}

func TestSpaceSavingBounds(t *testing.T) {
	const k = 100
	data := stream.Zipf(30000, 1.2, 400, 8)
	s := NewSpaceSaving[float32](k)
	x := NewExact[float32]()
	s.ProcessSlice(data)
	x.ProcessSlice(data)
	maxOver := float64(s.Count()) / float64(k)
	for v := 0; v < 400; v++ {
		truth := x.Estimate(float32(v))
		est := s.Estimate(float32(v))
		if est != 0 && est < truth {
			t.Fatalf("SS undercounted tracked item %d: est %d true %d", v, est, truth)
		}
		if float64(est-truth) > maxOver+1e-9 {
			t.Fatalf("SS overcounted %d beyond N/k", v)
		}
	}
	if s.Size() > k {
		t.Fatalf("SS size %d > k", s.Size())
	}
}

func TestSpaceSavingNoFalseNegatives(t *testing.T) {
	data := stream.Zipf(30000, 1.4, 1000, 9)
	s := NewSpaceSaving[float32](200)
	x := NewExact[float32]()
	s.ProcessSlice(data)
	x.ProcessSlice(data)
	reported := map[float32]bool{}
	for _, it := range s.Query(0.05) {
		reported[it.Value] = true
	}
	for _, it := range x.Query(0.05) {
		if !reported[it.Value] {
			t.Fatalf("SS false negative on %v", it.Value)
		}
	}
}

func TestBaselinePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMisraGries[float32](0) },
		func() { NewSpaceSaving[float32](-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestExactCounter(t *testing.T) {
	x := NewExact[float32]()
	x.ProcessSlice([]float32{1, 2, 1, 1, 3})
	if x.Count() != 5 || x.Estimate(1) != 3 || x.Estimate(9) != 0 {
		t.Fatal("exact counter wrong")
	}
	items := x.Query(0.4)
	if len(items) != 1 || items[0].Value != 1 {
		t.Fatalf("exact Query = %v", items)
	}
}

func TestCountMinNeverUndercounts(t *testing.T) {
	data := stream.Zipf(30000, 1.2, 400, 14)
	cm := NewCountMin[float32](0.005, 0.01)
	x := NewExact[float32]()
	cm.ProcessSlice(data)
	x.ProcessSlice(data)
	for v := 0; v < 400; v++ {
		if cm.Estimate(float32(v)) < x.Estimate(float32(v)) {
			t.Fatalf("CountMin[float32] undercounted %d", v)
		}
	}
}

func TestCountMinOvercountBound(t *testing.T) {
	data := stream.Zipf(30000, 1.2, 400, 15)
	cm := NewCountMin[float32](0.005, 0.001)
	x := NewExact[float32]()
	cm.ProcessSlice(data)
	x.ProcessSlice(data)
	epsN := 0.005 * float64(cm.Count())
	violations := 0
	for v := 0; v < 400; v++ {
		if float64(cm.Estimate(float32(v))-x.Estimate(float32(v))) > epsN {
			violations++
		}
	}
	// With delta=0.001 per query, at most a couple of the 400 probes may
	// exceed the bound.
	if violations > 4 {
		t.Fatalf("CountMin[float32] exceeded eps*N on %d/400 probes", violations)
	}
}

func TestCountMinDeletions(t *testing.T) {
	cm := NewCountMin[float32](0.01, 0.01)
	for i := 0; i < 100; i++ {
		cm.Update(7, 1)
	}
	cm.Update(7, -40)
	if got := cm.Estimate(7); got != 60 {
		t.Fatalf("after deletions Estimate = %d, want 60", got)
	}
	if cm.Count() != 60 {
		t.Fatalf("Count = %d", cm.Count())
	}
}

func TestCountMinDimensions(t *testing.T) {
	cm := NewCountMin[float32](0.01, 0.01)
	if cm.Width() < int(math.Ceil(math.E/0.01)) {
		t.Fatalf("width %d too small", cm.Width())
	}
	if cm.Depth() < 4 { // ln(100) ~ 4.6
		t.Fatalf("depth %d too small", cm.Depth())
	}
}

func TestCountMinPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCountMin[float32](0, 0.1) },
		func() { NewCountMin[float32](0.1, 0) },
		func() { NewCountMin[float32](1, 0.1) },
		func() { NewCountMin[float32](0.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestCountMinQuick(t *testing.T) {
	prop := func(raw []uint8) bool {
		cm := NewCountMin[float32](0.05, 0.01)
		x := NewExact[float32]()
		for _, b := range raw {
			v := float32(b % 32)
			cm.Process(v)
			x.Process(v)
		}
		for v := 0; v < 32; v++ {
			if cm.Estimate(float32(v)) < x.Estimate(float32(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	e := newCPU(0.001)
	e.ProcessSlice(stream.Zipf(30000, 1.3, 500, 20))
	top := e.TopK(5)
	if len(top) != 5 {
		t.Fatalf("TopK = %d items", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Freq > top[i-1].Freq {
			t.Fatal("TopK not ordered")
		}
	}
	if top[0].Value != 0 {
		t.Fatalf("TopK[0] = %v, want the Zipf head", top[0].Value)
	}
	if got := e.TopK(1 << 20); len(got) > e.SummarySize() {
		t.Fatal("TopK larger than summary")
	}
}
