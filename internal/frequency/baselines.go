package frequency

import (
	"fmt"
	"sort"

	"gpustream/internal/sorter"
)

// MisraGries is the deterministic k-counter frequent-items summary of Misra
// and Gries (re-discovered by Demaine et al. and Karp et al., as the paper's
// related work recounts). It undercounts true frequencies by at most N/(k+1)
// and therefore answers eps-approximate queries with k = ceil(1/eps) - 1.
type MisraGries[T sorter.Value] struct {
	k        int
	n        int64
	counters map[T]int64
}

// NewMisraGries returns a summary with k counters.
func NewMisraGries[T sorter.Value](k int) *MisraGries[T] {
	if k <= 0 {
		panic(fmt.Sprintf("frequency: MisraGries with k=%d", k))
	}
	return &MisraGries[T]{k: k, counters: make(map[T]int64, k+1)}
}

// Count reports the number of processed elements.
func (m *MisraGries[T]) Count() int64 { return m.n }

// Size reports the number of live counters.
func (m *MisraGries[T]) Size() int { return len(m.counters) }

// Process consumes one stream element.
func (m *MisraGries[T]) Process(v T) {
	m.n++
	if _, ok := m.counters[v]; ok {
		m.counters[v]++
		return
	}
	if len(m.counters) < m.k {
		m.counters[v] = 1
		return
	}
	// Decrement all; delete zeros. Amortized O(1) per element.
	for key, c := range m.counters {
		if c == 1 {
			delete(m.counters, key)
		} else {
			m.counters[key] = c - 1
		}
	}
}

// ProcessSlice consumes a batch of elements.
func (m *MisraGries[T]) ProcessSlice(data []T) {
	for _, v := range data {
		m.Process(v)
	}
}

// Estimate returns the (under)estimated frequency of v.
func (m *MisraGries[T]) Estimate(v T) int64 { return m.counters[v] }

// Query returns all elements whose estimated frequency is at least
// (s - 1/(k+1)) * N, ordered by decreasing frequency.
func (m *MisraGries[T]) Query(s float64) []Item[T] {
	eps := 1 / float64(m.k+1)
	thresh := (s - eps) * float64(m.n)
	var out []Item[T]
	for v, c := range m.counters {
		if float64(c) >= thresh {
			out = append(out, Item[T]{Value: v, Freq: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// SpaceSaving is the Metwally et al. k-counter summary: when full, the
// minimum counter is reassigned to the new element and incremented, which
// overcounts by at most N/k. Included as the modern counter-based
// comparison point.
type SpaceSaving[T sorter.Value] struct {
	k        int
	n        int64
	counters map[T]*ssCounter[T]
	heap     []*ssCounter[T] // min-heap on count
}

type ssCounter[T sorter.Value] struct {
	value T
	count int64
	err   int64
	pos   int
}

// NewSpaceSaving returns a summary with k counters.
func NewSpaceSaving[T sorter.Value](k int) *SpaceSaving[T] {
	if k <= 0 {
		panic(fmt.Sprintf("frequency: SpaceSaving with k=%d", k))
	}
	return &SpaceSaving[T]{k: k, counters: make(map[T]*ssCounter[T], k)}
}

// Count reports the number of processed elements.
func (s *SpaceSaving[T]) Count() int64 { return s.n }

// Size reports the number of live counters.
func (s *SpaceSaving[T]) Size() int { return len(s.counters) }

func (s *SpaceSaving[T]) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s.heap) && s.heap[l].count < s.heap[m].count {
			m = l
		}
		if r < len(s.heap) && s.heap[r].count < s.heap[m].count {
			m = r
		}
		if m == i {
			return
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		s.heap[i].pos, s.heap[m].pos = i, m
	}
}

func (s *SpaceSaving[T]) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p].count <= s.heap[i].count {
			return
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		s.heap[i].pos, s.heap[p].pos = i, p
		i = p
	}
}

// Process consumes one stream element.
func (s *SpaceSaving[T]) Process(v T) {
	s.n++
	if c, ok := s.counters[v]; ok {
		c.count++
		s.siftDown(c.pos)
		return
	}
	if len(s.counters) < s.k {
		c := &ssCounter[T]{value: v, count: 1, pos: len(s.heap)}
		s.counters[v] = c
		s.heap = append(s.heap, c)
		s.siftUp(c.pos)
		return
	}
	// Evict the minimum counter.
	min := s.heap[0]
	delete(s.counters, min.value)
	min.err = min.count
	min.count++
	min.value = v
	s.counters[v] = min
	s.siftDown(0)
}

// ProcessSlice consumes a batch of elements.
func (s *SpaceSaving[T]) ProcessSlice(data []T) {
	for _, v := range data {
		s.Process(v)
	}
}

// Estimate returns the (over)estimated frequency of v.
func (s *SpaceSaving[T]) Estimate(v T) int64 {
	if c, ok := s.counters[v]; ok {
		return c.count
	}
	return 0
}

// Query returns all elements whose estimated frequency is at least s*N,
// ordered by decreasing frequency. Space-Saving overestimates, so the
// threshold needs no eps slack to avoid false negatives.
func (s *SpaceSaving[T]) Query(sup float64) []Item[T] {
	thresh := sup * float64(s.n)
	var out []Item[T]
	for _, c := range s.heap {
		if float64(c.count) >= thresh {
			out = append(out, Item[T]{Value: c.value, Freq: c.count})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Exact is a hash-based exact counter used as ground truth in tests and
// experiment validation.
type Exact[T sorter.Value] struct {
	n      int64
	counts map[T]int64
}

// NewExact returns an empty exact counter.
func NewExact[T sorter.Value]() *Exact[T] { return &Exact[T]{counts: make(map[T]int64)} }

// Count reports the number of processed elements.
func (e *Exact[T]) Count() int64 { return e.n }

// Process consumes one stream element.
func (e *Exact[T]) Process(v T) {
	e.n++
	e.counts[v]++
}

// ProcessSlice consumes a batch of elements.
func (e *Exact[T]) ProcessSlice(data []T) {
	for _, v := range data {
		e.Process(v)
	}
}

// Estimate returns the exact frequency of v.
func (e *Exact[T]) Estimate(v T) int64 { return e.counts[v] }

// Query returns all elements with frequency >= s*N, by decreasing frequency.
func (e *Exact[T]) Query(s float64) []Item[T] {
	thresh := s * float64(e.n)
	var out []Item[T]
	for v, c := range e.counts {
		if float64(c) >= thresh {
			out = append(out, Item[T]{Value: v, Freq: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Value < out[j].Value
	})
	return out
}
