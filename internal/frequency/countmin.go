package frequency

import (
	"fmt"
	"math"

	"gpustream/internal/sorter"
)

// CountMin is the hash-based frequency sketch of Cormode and Muthukrishnan,
// representing the hash-based family the paper's related work surveys
// (Section 2.1). Unlike the counter-based summaries it supports deletions
// (processing an item with negative multiplicity), at the cost of
// overcounting by at most eps*N with probability 1-delta.
type CountMin[T sorter.Value] struct {
	width  int
	depth  int
	counts []int64 // depth x width
	seeds  []uint64
	n      int64
}

// NewCountMin returns a sketch with error eps and failure probability
// delta: width = ceil(e/eps), depth = ceil(ln(1/delta)).
func NewCountMin[T sorter.Value](eps, delta float64) *CountMin[T] {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("frequency: CountMin eps=%v delta=%v out of range", eps, delta))
	}
	width := int(math.Ceil(math.E / eps))
	depth := int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	cm := &CountMin[T]{
		width:  width,
		depth:  depth,
		counts: make([]int64, width*depth),
		seeds:  make([]uint64, depth),
	}
	s := uint64(0x9E3779B97F4A7C15)
	for i := range cm.seeds {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		cm.seeds[i] = s
	}
	return cm
}

// Width reports the sketch row width.
func (c *CountMin[T]) Width() int { return c.width }

// Depth reports the number of hash rows.
func (c *CountMin[T]) Depth() int { return c.depth }

// Count reports the net number of processed elements.
func (c *CountMin[T]) Count() int64 { return c.n }

// hash maps v into row r via the type's order-preserving key bijection,
// which gives every element type a well-mixed 64-bit representative.
func (c *CountMin[T]) hash(v T, r int) int {
	bits := sorter.OrderedKey(v)
	x := bits*0x2545F4914F6CDD1D + c.seeds[r]
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return int(x % uint64(c.width))
}

// Process consumes one occurrence of v.
func (c *CountMin[T]) Process(v T) { c.Update(v, 1) }

// ProcessSlice consumes a batch of elements.
func (c *CountMin[T]) ProcessSlice(data []T) {
	for _, v := range data {
		c.Process(v)
	}
}

// Update adds multiplicity delta (negative deletes) for v.
func (c *CountMin[T]) Update(v T, delta int64) {
	c.n += delta
	for r := 0; r < c.depth; r++ {
		c.counts[r*c.width+c.hash(v, r)] += delta
	}
}

// Estimate returns the point estimate for v: the minimum over rows, which
// never undercounts (for non-negative streams) and overcounts by at most
// eps*N with probability 1-delta.
func (c *CountMin[T]) Estimate(v T) int64 {
	min := int64(math.MaxInt64)
	for r := 0; r < c.depth; r++ {
		if cnt := c.counts[r*c.width+c.hash(v, r)]; cnt < min {
			min = cnt
		}
	}
	return min
}
