package frequency

import (
	"math"

	"gpustream/internal/sorter"
)

// MergeSnapshots combines two lossy-counting snapshots over disjoint
// substreams into one over their union: a value-aligned linear merge that
// sums estimated frequencies and undercount bounds of equal values.
// Undercounts are additive across disjoint substreams — each input misses at
// most eps_i*N_i occurrences, so the merged summary misses at most
// max(epsA, epsB)*(NA+NB) — which makes the merged snapshot
// max(epsA, epsB)-approximate with the serial no-false-negative guarantee
// intact (DESIGN.md sections 7 and 12).
//
// It is the cross-process form of the shard merge rule: sharded ingestion
// folds it over its per-shard snapshots, and the aggregation tree folds it
// over per-process snapshots exchanged through the wire format. The inputs
// are not mutated and may be used afterwards.
func MergeSnapshots[T sorter.Value](a, b *Snapshot[T]) *Snapshot[T] {
	out := &Snapshot[T]{
		n:       a.n + b.n,
		eps:     math.Max(a.eps, b.eps),
		entries: make([]entry[T], 0, len(a.entries)+len(b.entries)),
	}
	i, j := 0, 0
	for i < len(a.entries) && j < len(b.entries) {
		switch {
		case a.entries[i].value < b.entries[j].value:
			out.entries = append(out.entries, a.entries[i])
			i++
		case a.entries[i].value > b.entries[j].value:
			out.entries = append(out.entries, b.entries[j])
			j++
		default:
			e := a.entries[i]
			e.freq += b.entries[j].freq
			e.delta += b.entries[j].delta
			out.entries = append(out.entries, e)
			i++
			j++
		}
	}
	out.entries = append(out.entries, a.entries[i:]...)
	out.entries = append(out.entries, b.entries[j:]...)
	return out
}
