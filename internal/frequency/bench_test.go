package frequency

import (
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

var benchData = stream.Zipf(1<<16, 1.1, 1<<12, 1)

func BenchmarkLossyCounting(b *testing.B) {
	b.SetBytes(int64(len(benchData) * 4))
	for i := 0; i < b.N; i++ {
		e := NewEstimator(0.001, cpusort.QuicksortSorter[float32]{})
		e.ProcessSlice(benchData)
		e.Flush()
	}
}

func BenchmarkMisraGries(b *testing.B) {
	b.SetBytes(int64(len(benchData) * 4))
	for i := 0; i < b.N; i++ {
		m := NewMisraGries[float32](999)
		m.ProcessSlice(benchData)
	}
}

func BenchmarkSpaceSaving(b *testing.B) {
	b.SetBytes(int64(len(benchData) * 4))
	for i := 0; i < b.N; i++ {
		s := NewSpaceSaving[float32](1000)
		s.ProcessSlice(benchData)
	}
}

func BenchmarkCountMin(b *testing.B) {
	b.SetBytes(int64(len(benchData) * 4))
	for i := 0; i < b.N; i++ {
		c := NewCountMin[float32](0.001, 0.01)
		c.ProcessSlice(benchData)
	}
}
