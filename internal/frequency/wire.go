package frequency

import (
	"gpustream/internal/sorter"
	"gpustream/internal/wire"
)

// Wire layout of a frequency Snapshot (family tag wire.FamilyFrequency):
//
//	header  wire.HeaderSize bytes
//	eps     float64
//	n       int64
//	count   uint32
//	entries count × (value[4|8] + freq int64 + delta int64)
//
// Entries are strictly value-ascending, matching the in-memory summary; the
// decoder enforces it so a decoded snapshot upholds the same invariants as a
// live one. See DESIGN.md section 12.

// MarshalBinary implements encoding.BinaryMarshaler: the versioned,
// endian-stable wire encoding of the snapshot. The encoding is canonical —
// unmarshal then marshal reproduces the bytes exactly.
func (s *Snapshot[T]) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, wire.HeaderSize+8+8+4+len(s.entries)*(wire.ValueSize[T]()+16))
	b = wire.AppendHeader(b, wire.FamilyFrequency, wire.TagOf[T]())
	b = wire.AppendF64(b, s.eps)
	b = wire.AppendI64(b, s.n)
	b = wire.AppendU32(b, uint32(len(s.entries)))
	for _, e := range s.entries {
		b = wire.AppendValue(b, e.value)
		b = wire.AppendI64(b, e.freq)
		b = wire.AppendI64(b, e.delta)
	}
	return b, nil
}

// UnmarshalSnapshot decodes a frequency snapshot marshaled by any process.
// Every failure — truncation, bad header, mismatched tags, overflowed
// lengths, unsorted entries — returns a wrapped wire sentinel error;
// UnmarshalSnapshot never panics and never allocates from an unvalidated
// length field.
func UnmarshalSnapshot[T sorter.Value](data []byte) (*Snapshot[T], error) {
	r := wire.NewReader(data)
	if err := r.Header(wire.FamilyFrequency, wire.TagOf[T]()); err != nil {
		return nil, err
	}
	s := &Snapshot[T]{}
	var err error
	if s.eps, err = r.F64(); err != nil {
		return nil, err
	}
	if s.n, err = r.I64(); err != nil {
		return nil, err
	}
	if s.n < 0 {
		return nil, wire.Corruptf("frequency: negative stream length %d", s.n)
	}
	count, err := r.Count(wire.ValueSize[T]() + 16)
	if err != nil {
		return nil, err
	}
	if count > 0 {
		s.entries = make([]entry[T], count)
	}
	for i := range s.entries {
		if s.entries[i].value, err = wire.ReadValue[T](r); err != nil {
			return nil, err
		}
		if s.entries[i].freq, err = r.I64(); err != nil {
			return nil, err
		}
		if s.entries[i].delta, err = r.I64(); err != nil {
			return nil, err
		}
		if i > 0 && !(s.entries[i-1].value < s.entries[i].value) {
			return nil, wire.Corruptf("frequency: entries not strictly value-ascending at %d", i)
		}
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
