package frequency

import (
	"testing"

	"gpustream/internal/cpusort"
)

func FuzzLossyCounting(f *testing.F) {
	f.Add([]byte{1, 1, 2, 3, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const eps = 0.1
		e := NewEstimator(eps, cpusort.QuicksortSorter[float32]{})
		x := NewExact[float32]()
		for _, b := range raw {
			v := float32(b % 32)
			e.Process(v)
			x.Process(v)
		}
		e.Flush()
		n := float64(x.Count())
		for v := 0; v < 32; v++ {
			truth := x.Estimate(float32(v))
			est := e.Estimate(float32(v))
			if est > truth {
				t.Fatalf("overcount on %d", v)
			}
			if float64(truth-est) > eps*n+1e-9 {
				t.Fatalf("undercount beyond eps*N on %d: est %d true %d", v, est, truth)
			}
		}
	})
}
