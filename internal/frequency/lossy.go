// Package frequency implements the paper's epsilon-approximate frequency
// estimation over data streams (Section 5.1): Manku and Motwani's
// window-based lossy counting, with the per-window histogram computed by
// sorting — the step the GPU accelerates — followed by the merge and
// compress operations on the summary. Misra-Gries and Space-Saving counters
// are provided as the sample-based baselines the related work surveys.
package frequency

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gpustream/internal/histogram"
	"gpustream/internal/sorter"
)

// Item is a reported stream element with its estimated frequency.
type Item struct {
	Value float32
	Freq  int64
}

// entry is one summary element: estimated frequency f and maximum
// undercount delta (the element may have appeared up to delta times before
// it entered the summary).
type entry struct {
	value float32
	freq  int64
	delta int64
}

// Counts instruments the pipeline in backend-independent units, matching
// the three operations of Section 3.2. The perfmodel package converts these
// to modeled testbed time.
type Counts struct {
	Windows      int64
	SortedValues int64
	MergeOps     int64 // summary + histogram elements visited during merges
	CompressOps  int64 // summary elements visited during compress scans
}

// Timings records measured host wall time per phase; its proportions
// reproduce Figure 6's cost breakdown directly on the host.
type Timings struct {
	Sort, Merge, Compress time.Duration
}

// Total sums the phases.
func (t Timings) Total() time.Duration { return t.Sort + t.Merge + t.Compress }

// Estimator is the lossy-counting frequency summary. For a user-specified
// eps it buffers windows of ceil(1/eps) elements; each full window is
// sorted, collapsed to a histogram, merged into the summary and compressed.
// Estimated frequencies undercount true ones by at most eps*N and the
// summary holds O((1/eps) log(eps*N)) entries.
type Estimator struct {
	eps     float64
	window  int
	sorter  sorter.Sorter
	n       int64
	bucket  int64
	entries []entry
	buf     []float32
	counts  Counts
	timings Timings
}

// NewEstimator returns a lossy-counting estimator with error eps, sorting
// windows with s.
func NewEstimator(eps float64, s sorter.Sorter) *Estimator {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("frequency: eps %v out of (0, 1)", eps))
	}
	w := int(math.Ceil(1 / eps))
	return &Estimator{eps: eps, window: w, sorter: s, buf: make([]float32, 0, w)}
}

// Eps reports the configured error bound.
func (e *Estimator) Eps() float64 { return e.eps }

// WindowSize reports the buffered window length, ceil(1/eps).
func (e *Estimator) WindowSize() int { return e.window }

// Count reports the number of stream elements processed, including buffered
// ones.
func (e *Estimator) Count() int64 { return e.n + int64(len(e.buf)) }

// SummarySize reports the number of summary entries (excluding the buffer).
func (e *Estimator) SummarySize() int { return len(e.entries) }

// Counts returns the pipeline instrumentation counters.
func (e *Estimator) Counts() Counts { return e.counts }

// Timings returns measured per-phase host wall time.
func (e *Estimator) Timings() Timings { return e.timings }

// Process consumes one stream element.
func (e *Estimator) Process(v float32) {
	e.buf = append(e.buf, v)
	if len(e.buf) == e.window {
		e.flush()
	}
}

// ProcessSlice consumes a batch of stream elements.
func (e *Estimator) ProcessSlice(data []float32) {
	for len(data) > 0 {
		room := e.window - len(e.buf)
		if room > len(data) {
			room = len(data)
		}
		e.buf = append(e.buf, data[:room]...)
		data = data[room:]
		if len(e.buf) == e.window {
			e.flush()
		}
	}
}

// Flush forces the buffered partial window into the summary. Queries call
// it implicitly so buffered elements are always visible.
func (e *Estimator) Flush() {
	if len(e.buf) > 0 {
		e.flush()
	}
}

// flush runs the histogram -> merge -> compress pipeline on the buffer.
func (e *Estimator) flush() {
	// Histogram computation: sort the window (GPU or CPU backend) and
	// collapse to (value, count) bins.
	t0 := time.Now()
	e.sorter.Sort(e.buf)
	bins := histogram.FromSorted(e.buf)
	e.timings.Sort += time.Since(t0)
	e.counts.Windows++
	e.counts.SortedValues += int64(len(e.buf))

	// New entries may have been deleted any time up to the last completed
	// bucket before this window, so their undercount is bounded by that
	// bucket index; compress below may drop entries only up to the number
	// of buckets completed *after* this window, keeping the undercount
	// within eps*N even when a partial window is flushed early.
	newDelta := e.n / int64(e.window)
	e.n += int64(len(e.buf))
	e.bucket = e.n / int64(e.window)

	// Merge: both the summary and the histogram are value-ascending, so a
	// single linear pass inserts or updates every bin.
	t1 := time.Now()
	merged := make([]entry, 0, len(e.entries)+len(bins))
	i, j := 0, 0
	for i < len(e.entries) && j < len(bins) {
		switch {
		case e.entries[i].value < bins[j].Value:
			merged = append(merged, e.entries[i])
			i++
		case e.entries[i].value > bins[j].Value:
			merged = append(merged, entry{value: bins[j].Value, freq: bins[j].Count, delta: newDelta})
			j++
		default:
			ent := e.entries[i]
			ent.freq += bins[j].Count
			merged = append(merged, ent)
			i++
			j++
		}
	}
	merged = append(merged, e.entries[i:]...)
	for ; j < len(bins); j++ {
		merged = append(merged, entry{value: bins[j].Value, freq: bins[j].Count, delta: newDelta})
	}
	e.counts.MergeOps += int64(len(e.entries)) + int64(len(bins))
	e.timings.Merge += time.Since(t1)

	// Compress: drop entries whose possible true frequency cannot exceed
	// the bucket threshold; this bounds the summary size.
	t2 := time.Now()
	kept := merged[:0]
	for _, ent := range merged {
		if ent.freq+ent.delta > e.bucket {
			kept = append(kept, ent)
		}
	}
	e.counts.CompressOps += int64(len(merged))
	e.entries = kept
	e.timings.Compress += time.Since(t2)

	e.buf = e.buf[:0]
}

// Query returns every element whose estimated frequency is at least
// (s - eps) * N, ordered by decreasing frequency — the paper's
// epsilon-approximate frequency query. The result has no false negatives:
// any element with true frequency >= s*N is present. Estimated frequencies
// undercount by at most eps*N.
func (e *Estimator) Query(s float64) []Item {
	e.Flush()
	if s < 0 || s > 1 {
		panic(fmt.Sprintf("frequency: support %v out of [0, 1]", s))
	}
	thresh := (s - e.eps) * float64(e.n)
	var out []Item
	for _, ent := range e.entries {
		if float64(ent.freq) >= thresh {
			out = append(out, Item{Value: ent.value, Freq: ent.freq})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// Estimate returns the estimated frequency of v (0 if not tracked).
func (e *Estimator) Estimate(v float32) int64 {
	e.Flush()
	lo, hi := 0, len(e.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.entries[mid].value < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.entries) && e.entries[lo].value == v {
		return e.entries[lo].freq
	}
	return 0
}

// TopK returns the k elements with the highest estimated frequencies (fewer
// if the summary tracks fewer), ordered by decreasing frequency.
func (e *Estimator) TopK(k int) []Item {
	items := e.Query(0)
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// SummaryEntry is an exported view of one lossy-counting summary entry: an
// estimated frequency Freq that undercounts the true one by at most Delta.
type SummaryEntry struct {
	Value float32
	Freq  int64
	Delta int64
}

// Snapshot flushes any buffered values and returns a copy of the summary in
// ascending value order. Sharded ingestion merges these per-shard snapshots
// by summing Freq and Delta for equal values: undercounts are additive
// across disjoint substreams, so the merged summary stays eps-approximate
// over the combined stream.
func (e *Estimator) Snapshot() []SummaryEntry {
	e.Flush()
	out := make([]SummaryEntry, len(e.entries))
	for i, ent := range e.entries {
		out[i] = SummaryEntry{Value: ent.value, Freq: ent.freq, Delta: ent.delta}
	}
	return out
}
