// Package frequency implements the paper's epsilon-approximate frequency
// estimation over data streams (Section 5.1): Manku and Motwani's
// window-based lossy counting, with the per-window histogram computed by
// sorting — the step the GPU accelerates — followed by the merge and
// compress operations on the summary. Misra-Gries and Space-Saving counters
// are provided as the sample-based baselines the related work surveys.
//
// Windowing, buffering, lifecycle, locking, and telemetry come from the
// shared internal/pipeline core; this package contributes only the
// sort -> histogram -> merge -> compress sink. Queries are safe under
// concurrent ingestion, and Snapshot returns an immutable view that keeps
// answering after the stream moves on.
package frequency

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gpustream/internal/histogram"
	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
)

// Item is a reported stream element with its estimated frequency.
type Item[T sorter.Value] = pipeline.Item[T]

// entry is one summary element: estimated frequency f and maximum
// undercount delta (the element may have appeared up to delta times before
// it entered the summary).
type entry[T sorter.Value] struct {
	value T
	freq  int64
	delta int64
}

// Estimator is the lossy-counting frequency summary. For a user-specified
// eps it buffers windows of ceil(1/eps) elements; each full window is
// sorted, collapsed to a histogram, merged into the summary and compressed.
// Estimated frequencies undercount true ones by at most eps*N and the
// summary holds O((1/eps) log(eps*N)) entries.
//
// One writer and any number of query goroutines may use an Estimator
// concurrently; queries flush the partial window and answer over a
// consistent summary state.
type Estimator[T sorter.Value] struct {
	eps  float64
	core *pipeline.Core[T]
	n    int64 // elements folded into the summary (excludes buffered)
	// maxBucket is the highest completed-bucket index observed so far,
	// max over merges of floor(n/w) at the then-current window size w.
	// With a static window floor(n/w) is monotone in n and maxBucket is
	// exactly the classic bucket index, bit-identical to lossy counting;
	// under a dynamic schedule a window *growth* makes floor(n/w) dip, and
	// taking the running max keeps both the new-entry delta and the
	// compress threshold valid bounds (every window is >= ceil(1/eps), so
	// at most eps*n buckets ever complete).
	maxBucket int64
	// entries and scratch swap roles every window so the merge pass writes
	// into recycled storage; bins is the reusable histogram scratch. shared
	// marks entries as aliased by a Snapshot: the next swap then abandons
	// the array to the snapshot instead of recycling it (copy-on-write).
	entries []entry[T]
	scratch []entry[T]
	shared  bool
	bins    []histogram.Bin[T]
}

// Option configures an Estimator.
type Option func(*config)

type config struct {
	async  bool
	window int
}

// WithAsync enables staged asynchronous ingestion: windows sort on a
// dedicated stage goroutine overlapping the merge/compress of the previous
// window. Answers are bit-identical to synchronous mode.
func WithAsync() Option { return func(c *config) { c.async = true } }

// WithWindow overrides the sort-window size. Values below the lossy-
// counting floor ceil(1/eps) are clamped up to it — a smaller window would
// complete buckets faster than the eps*N deletion budget allows.
func WithWindow(n int) Option { return func(c *config) { c.window = n } }

// NewEstimator returns a lossy-counting estimator with error eps, sorting
// windows with s.
func NewEstimator[T sorter.Value](eps float64, s sorter.Sorter[T], opts ...Option) *Estimator[T] {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("frequency: eps %v out of (0, 1)", eps))
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	window := int(math.Ceil(1 / eps))
	if cfg.window > window {
		window = cfg.window
	}
	e := &Estimator[T]{eps: eps}
	e.core = pipeline.NewStagedCore(window, s, e.mergeWindow)
	if cfg.async {
		e.core.StartAsync()
	}
	return e
}

// SetTuner installs a runtime controller over the pipeline's sorter and
// window knobs; it must be called before ingestion. Any schedule the tuner
// produces with windows >= ceil(1/eps) preserves the eps guarantee (see
// maxBucket); the MinWindow the engine configures enforces that floor.
func (e *Estimator[T]) SetTuner(t pipeline.Tuner[T]) { e.core.SetTuner(t) }

// Knobs reports the currently selected sorter and window size.
func (e *Estimator[T]) Knobs() (sorter.Sorter[T], int) { return e.core.Tuning() }

// Async reports the commanded execution mode: overlapped staged execution
// when true (WithAsync at construction or a tuner's AsyncOn), inline
// synchronous execution otherwise.
func (e *Estimator[T]) Async() bool { return e.core.Async() }

// Eps reports the configured error bound.
func (e *Estimator[T]) Eps() float64 { return e.eps }

// WindowSize reports the current sort-window length — ceil(1/eps) by
// default, larger under a WithWindow override or a tuner's schedule.
func (e *Estimator[T]) WindowSize() int { return e.core.WindowSize() }

// Count reports the number of stream elements processed, including buffered
// ones.
func (e *Estimator[T]) Count() int64 { return e.core.Count() }

// SummarySize reports the number of summary entries (excluding the buffer).
func (e *Estimator[T]) SummarySize() int {
	e.core.Lock()
	defer e.core.Unlock()
	e.core.BarrierLocked()
	return len(e.entries)
}

// Stats returns the unified per-stage pipeline telemetry. Safe to call
// mid-ingestion; counters are internally consistent.
func (e *Estimator[T]) Stats() pipeline.Stats { return e.core.Stats() }

// Process consumes one stream element. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (e *Estimator[T]) Process(v T) error { return e.core.Process(v) }

// ProcessSlice consumes a batch of stream elements. After Close it returns
// an error wrapping pipeline.ErrClosed.
func (e *Estimator[T]) ProcessSlice(data []T) error { return e.core.ProcessSlice(data) }

// Flush forces the buffered partial window into the summary. Queries call
// it implicitly so buffered elements are always visible.
func (e *Estimator[T]) Flush() error { return e.core.Flush() }

// Close flushes and releases the window buffer back to the shared pool.
// The estimator remains queryable; further ingestion reports
// pipeline.ErrClosed. Close is idempotent.
func (e *Estimator[T]) Close() error { return e.core.Close() }

// mergeWindow is the merge-stage half of the pipeline: it receives a window
// the core has already sorted (inline, or on the sort stage goroutine in
// async mode) and runs histogram -> merge -> compress. The core holds the
// lock around the call in both modes.
func (e *Estimator[T]) mergeWindow(win []T) {
	// Histogram computation: collapse the sorted window to (value, count)
	// bins. The collapse belongs to the paper's histogram (sort) stage, so
	// its time lands in Stats.Sort; the values were already counted when the
	// core timed the sort itself.
	t0 := time.Now()
	e.bins = histogram.AppendSorted(e.bins[:0], win)
	bins := e.bins
	e.core.AddSort(time.Since(t0), 0)

	// New entries may have been deleted any time up to the last completed
	// bucket before this window, so their undercount is bounded by that
	// bucket index; compress below may drop entries only up to the number
	// of buckets completed *after* this window, keeping the undercount
	// within eps*N even when a partial window is flushed early. Both bounds
	// use the running-max bucket index, which equals floor(n/w) whenever
	// the window has been static (see the maxBucket field comment).
	newDelta := e.maxBucket
	e.n += int64(len(win))
	if b := e.n / int64(e.core.WindowSizeLocked()); b > e.maxBucket {
		e.maxBucket = b
	}

	// Merge: both the summary and the histogram are value-ascending, so a
	// single linear pass inserts or updates every bin. The pass writes into
	// the recycled scratch array, which then swaps with entries.
	t1 := time.Now()
	merged := e.scratch[:0]
	i, j := 0, 0
	for i < len(e.entries) && j < len(bins) {
		switch {
		case e.entries[i].value < bins[j].Value:
			merged = append(merged, e.entries[i])
			i++
		case e.entries[i].value > bins[j].Value:
			merged = append(merged, entry[T]{value: bins[j].Value, freq: bins[j].Count, delta: newDelta})
			j++
		default:
			ent := e.entries[i]
			ent.freq += bins[j].Count
			merged = append(merged, ent)
			i++
			j++
		}
	}
	merged = append(merged, e.entries[i:]...)
	for ; j < len(bins); j++ {
		merged = append(merged, entry[T]{value: bins[j].Value, freq: bins[j].Count, delta: newDelta})
	}
	e.core.AddMerge(time.Since(t1), int64(len(e.entries))+int64(len(bins)))

	// Compress: drop entries whose possible true frequency cannot exceed
	// the bucket threshold; this bounds the summary size.
	t2 := time.Now()
	kept := merged[:0]
	for _, ent := range merged {
		if ent.freq+ent.delta > e.maxBucket {
			kept = append(kept, ent)
		}
	}
	e.core.AddCompress(time.Since(t2), int64(len(merged)))
	// Copy-on-write hand-off: if a Snapshot aliases the outgoing entries
	// array, abandon it to the snapshot and let the next merge allocate
	// fresh storage; otherwise recycle it as the next scratch.
	if e.shared {
		e.scratch = nil
		e.shared = false
	} else {
		e.scratch = e.entries[:0]
	}
	e.entries = kept
}

// queryEntries answers the epsilon-approximate frequency query over a
// value-ascending summary: every entry with estimated frequency at least
// (s - eps) * n, ordered by decreasing frequency.
func queryEntries[T sorter.Value](entries []entry[T], n int64, eps, s float64) []Item[T] {
	if s < 0 || s > 1 {
		panic(fmt.Sprintf("frequency: support %v out of [0, 1]", s))
	}
	thresh := (s - eps) * float64(n)
	var out []Item[T]
	for _, ent := range entries {
		if float64(ent.freq) >= thresh {
			out = append(out, Item[T]{Value: ent.value, Freq: ent.freq})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// estimateEntries binary-searches a value-ascending summary for v.
func estimateEntries[T sorter.Value](entries []entry[T], v T) int64 {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].value < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(entries) && entries[lo].value == v {
		return entries[lo].freq
	}
	return 0
}

// Query returns every element whose estimated frequency is at least
// (s - eps) * N, ordered by decreasing frequency — the paper's
// epsilon-approximate frequency query. The result has no false negatives:
// any element with true frequency >= s*N is present. Estimated frequencies
// undercount by at most eps*N. Safe under concurrent ingestion.
func (e *Estimator[T]) Query(s float64) []Item[T] {
	e.core.Lock()
	defer e.core.Unlock()
	e.core.FlushLocked()
	return queryEntries(e.entries, e.n, e.eps, s)
}

// Estimate returns the estimated frequency of v (0 if not tracked). Safe
// under concurrent ingestion.
func (e *Estimator[T]) Estimate(v T) int64 {
	e.core.Lock()
	defer e.core.Unlock()
	e.core.FlushLocked()
	return estimateEntries(e.entries, v)
}

// TopK returns the k elements with the highest estimated frequencies (fewer
// if the summary tracks fewer), ordered by decreasing frequency.
func (e *Estimator[T]) TopK(k int) []Item[T] {
	items := e.Query(0)
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// SummaryEntry is an exported view of one lossy-counting summary entry: an
// estimated frequency Freq that undercounts the true one by at most Delta.
type SummaryEntry[T sorter.Value] struct {
	Value T
	Freq  int64
	Delta int64
}

// Snapshot is an immutable point-in-time view of a lossy-counting summary.
// It aliases the live estimator's entries array under the copy-on-write
// discipline (the estimator abandons shared storage at its next window),
// so taking one costs O(partial window) for the flush and O(1) beyond it.
// A Snapshot is safe for concurrent use and implements pipeline.View.
type Snapshot[T sorter.Value] struct {
	entries []entry[T]
	n       int64
	eps     float64
}

// Snapshot flushes any buffered values and returns an immutable view of the
// summary. The view answers HeavyHitters/Frequency queries and never sees
// ingestion that happens after this call.
func (e *Estimator[T]) Snapshot() pipeline.View[T] {
	e.core.Lock()
	defer e.core.Unlock()
	e.core.FlushLocked()
	e.shared = true
	return &Snapshot[T]{entries: e.entries, n: e.n, eps: e.eps}
}

// SnapshotFromEntries builds a Snapshot from exported summary entries in
// ascending value order covering n stream elements. Sharded ingestion uses
// it to publish a merged per-shard view; the entries slice is owned by the
// snapshot from here on.
func SnapshotFromEntries[T sorter.Value](entries []SummaryEntry[T], n int64, eps float64) *Snapshot[T] {
	conv := make([]entry[T], len(entries))
	for i, ent := range entries {
		conv[i] = entry[T]{value: ent.Value, freq: ent.Freq, delta: ent.Delta}
	}
	return &Snapshot[T]{entries: conv, n: n, eps: eps}
}

// Count reports the stream length the snapshot covers.
func (s *Snapshot[T]) Count() int64 { return s.n }

// Size reports the retained summary entries.
func (s *Snapshot[T]) Size() int { return len(s.entries) }

// Eps reports the snapshot's error bound.
func (s *Snapshot[T]) Eps() float64 { return s.eps }

// Query answers the epsilon-approximate frequency query at support sp.
func (s *Snapshot[T]) Query(sp float64) []Item[T] { return queryEntries(s.entries, s.n, s.eps, sp) }

// Estimate returns the estimated frequency of v (0 if not tracked).
func (s *Snapshot[T]) Estimate(v T) int64 { return estimateEntries(s.entries, v) }

// TopK returns the k highest-frequency entries.
func (s *Snapshot[T]) TopK(k int) []Item[T] {
	items := s.Query(0)
	if len(items) > k {
		items = items[:k]
	}
	return items
}

// Entries exports a copy of the summary in ascending value order. Sharded
// ingestion merges per-shard entries by summing Freq and Delta for equal
// values: undercounts are additive across disjoint substreams, so the
// merged summary stays eps-approximate over the combined stream.
func (s *Snapshot[T]) Entries() []SummaryEntry[T] {
	out := make([]SummaryEntry[T], len(s.entries))
	for i, ent := range s.entries {
		out[i] = SummaryEntry[T]{Value: ent.value, Freq: ent.freq, Delta: ent.delta}
	}
	return out
}

// Quantile implements pipeline.View; frequency sketches do not answer
// quantile queries.
func (s *Snapshot[T]) Quantile(float64) (T, bool) { var z T; return z, false }

// HeavyHitters implements pipeline.View.
func (s *Snapshot[T]) HeavyHitters(support float64) ([]Item[T], bool) { return s.Query(support), true }

// Frequency implements pipeline.View.
func (s *Snapshot[T]) Frequency(v T) (int64, bool) { return s.Estimate(v), true }
