// Package dsms is a miniature data stream management system around the
// library's estimators: continuous queries are registered once and then
// evaluated against an unbounded arriving stream, the usage model the
// paper's introduction describes. When arrivals outpace the configured
// per-tick processing budget the executor load-sheds — "dropping excess
// data items", the DSMS behaviour the paper cites as the motivation for
// hardware-accelerated stream processing — and accounts for every shed
// element, so experiments can quantify how a faster (GPU) backend reduces
// shedding.
package dsms

import (
	"fmt"

	"gpustream/internal/frequency"
	"gpustream/internal/quantile"
	"gpustream/internal/sorter"
	"gpustream/internal/window"
)

// QueryKind identifies a continuous query type.
type QueryKind int

const (
	// FrequencyAbove reports items above a support threshold.
	FrequencyAbove QueryKind = iota
	// QuantileAt reports the phi-quantile.
	QuantileAt
	// SlidingFrequencyAbove is FrequencyAbove over the last W elements.
	SlidingFrequencyAbove
	// SlidingQuantileAt is QuantileAt over the last W elements.
	SlidingQuantileAt
)

// QuerySpec declares one continuous query.
type QuerySpec struct {
	Kind   QueryKind
	Eps    float64
	Param  float64 // support (frequency kinds) or phi (quantile kinds)
	Window int     // sliding kinds only
	Name   string  // label in results
}

// Result is one evaluated query snapshot.
type Result struct {
	Name     string
	Kind     QueryKind
	Items    []frequency.Item[float32] // frequency kinds
	WItems   []window.Item[float32]    // sliding frequency kind
	Quantile float32                   // quantile kinds
	N        int64                     // elements the answer covers
}

// Stats accounts for executor behaviour.
type Stats struct {
	Ingested int64 // elements accepted
	Shed     int64 // elements dropped by load shedding
	Ticks    int64 // Push calls
}

// Executor runs registered continuous queries over an arriving stream.
type Executor struct {
	srt     sorter.Sorter[float32]
	budget  int // max elements processed per Push; 0 = unlimited
	specs   []QuerySpec
	freqs   []*frequency.Estimator[float32]
	quants  []*quantile.Estimator[float32]
	sfreqs  []*window.SlidingFrequency[float32]
	squants []*window.SlidingQuantile[float32]
	// parallel index: for spec i, impl[i] locates its estimator.
	impl  []int
	stats Stats
}

// NewExecutor returns an executor sorting with s. budget caps the elements
// processed per Push call; arrivals beyond it are shed (0 disables
// shedding).
func NewExecutor(s sorter.Sorter[float32], budget int) *Executor {
	if budget < 0 {
		panic("dsms: negative budget")
	}
	return &Executor{srt: s, budget: budget}
}

// Register adds a continuous query. All queries must be registered before
// the first Push.
func (e *Executor) Register(spec QuerySpec) {
	if e.stats.Ticks > 0 {
		panic("dsms: Register after data arrived")
	}
	if spec.Eps <= 0 || spec.Eps >= 1 {
		panic(fmt.Sprintf("dsms: query %q eps %v out of (0, 1)", spec.Name, spec.Eps))
	}
	switch spec.Kind {
	case FrequencyAbove:
		e.impl = append(e.impl, len(e.freqs))
		e.freqs = append(e.freqs, frequency.NewEstimator(spec.Eps, e.srt))
	case QuantileAt:
		e.impl = append(e.impl, len(e.quants))
		e.quants = append(e.quants, quantile.NewEstimator(spec.Eps, 0, e.srt))
	case SlidingFrequencyAbove:
		e.impl = append(e.impl, len(e.sfreqs))
		e.sfreqs = append(e.sfreqs, window.NewSlidingFrequency(spec.Eps, spec.Window, e.srt))
	case SlidingQuantileAt:
		e.impl = append(e.impl, len(e.squants))
		e.squants = append(e.squants, window.NewSlidingQuantile(spec.Eps, spec.Window, e.srt))
	default:
		panic(fmt.Sprintf("dsms: unknown query kind %d", spec.Kind))
	}
	e.specs = append(e.specs, spec)
}

// Push delivers one arriving batch. If the batch exceeds the per-tick
// budget the executor keeps a uniform-stride sample of it (classic
// load-shedding) and counts the dropped elements.
func (e *Executor) Push(batch []float32) {
	e.stats.Ticks++
	accepted := batch
	if e.budget > 0 && len(batch) > e.budget {
		kept := make([]float32, 0, e.budget)
		stride := float64(len(batch)) / float64(e.budget)
		for i := 0; i < e.budget; i++ {
			kept = append(kept, batch[int(float64(i)*stride)])
		}
		e.stats.Shed += int64(len(batch) - len(kept))
		accepted = kept
	}
	e.stats.Ingested += int64(len(accepted))
	for _, f := range e.freqs {
		f.ProcessSlice(accepted)
	}
	for _, q := range e.quants {
		q.ProcessSlice(accepted)
	}
	for _, f := range e.sfreqs {
		f.ProcessSlice(accepted)
	}
	for _, q := range e.squants {
		q.ProcessSlice(accepted)
	}
}

// Stats reports executor accounting.
func (e *Executor) Stats() Stats { return e.stats }

// Results evaluates every registered query against the current state.
func (e *Executor) Results() []Result {
	out := make([]Result, 0, len(e.specs))
	for i, spec := range e.specs {
		r := Result{Name: spec.Name, Kind: spec.Kind}
		switch spec.Kind {
		case FrequencyAbove:
			f := e.freqs[e.impl[i]]
			r.Items = f.Query(spec.Param)
			r.N = f.Count()
		case QuantileAt:
			q := e.quants[e.impl[i]]
			if q.Count() > 0 {
				r.Quantile = q.Query(spec.Param)
			}
			r.N = q.Count()
		case SlidingFrequencyAbove:
			f := e.sfreqs[e.impl[i]]
			r.WItems = f.Query(spec.Param)
			n := f.Count()
			if w := int64(spec.Window); n > w {
				n = w
			}
			r.N = n
		case SlidingQuantileAt:
			q := e.squants[e.impl[i]]
			if q.Count() > 0 {
				r.Quantile = q.Query(spec.Param)
			}
			n := q.Count()
			if w := int64(spec.Window); n > w {
				n = w
			}
			r.N = n
		}
		out = append(out, r)
	}
	return out
}
