package dsms

import (
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/stream"
)

func newExec(budget int) *Executor {
	return NewExecutor(cpusort.QuicksortSorter[float32]{}, budget)
}

func TestContinuousQueries(t *testing.T) {
	e := newExec(0)
	e.Register(QuerySpec{Kind: FrequencyAbove, Eps: 0.005, Param: 0.05, Name: "hh"})
	e.Register(QuerySpec{Kind: QuantileAt, Eps: 0.01, Param: 0.5, Name: "median"})
	e.Register(QuerySpec{Kind: SlidingFrequencyAbove, Eps: 0.01, Param: 0.1, Window: 2000, Name: "recent-hh"})
	e.Register(QuerySpec{Kind: SlidingQuantileAt, Eps: 0.02, Param: 0.9, Window: 2000, Name: "recent-p90"})

	data := stream.Zipf(20000, 1.3, 500, 1)
	stream.EachWindow(data, 1000, func(win []float32) { e.Push(win) })

	results := e.Results()
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if len(byName["hh"].Items) == 0 {
		t.Fatal("no heavy hitters on a Zipf stream")
	}
	if byName["hh"].Items[0].Value != 0 {
		t.Fatalf("top item = %v, want 0", byName["hh"].Items[0].Value)
	}
	if byName["median"].N != 20000 {
		t.Fatalf("median N = %d", byName["median"].N)
	}
	if byName["recent-hh"].N != 2000 {
		t.Fatalf("sliding N = %d", byName["recent-hh"].N)
	}
	if byName["recent-p90"].Quantile < 0 {
		t.Fatal("p90 missing")
	}
	st := e.Stats()
	if st.Ingested != 20000 || st.Shed != 0 || st.Ticks != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLoadShedding(t *testing.T) {
	e := newExec(500)
	e.Register(QuerySpec{Kind: FrequencyAbove, Eps: 0.01, Param: 0.1, Name: "hh"})
	// One big burst: 10000 arrive, only 500 fit the tick budget.
	e.Push(stream.Zipf(10000, 1.3, 100, 2))
	st := e.Stats()
	if st.Ingested != 500 || st.Shed != 9500 {
		t.Fatalf("stats = %+v", st)
	}
	// The uniform-stride sample preserves heavy hitters.
	res := e.Results()[0]
	if len(res.Items) == 0 || res.Items[0].Value != 0 {
		t.Fatalf("heavy hitter lost under shedding: %v", res.Items)
	}
}

func TestNoSheddingUnderBudget(t *testing.T) {
	e := newExec(1000)
	e.Register(QuerySpec{Kind: QuantileAt, Eps: 0.05, Param: 0.5, Name: "m"})
	for i := 0; i < 10; i++ {
		e.Push(stream.Uniform(800, uint64(i)))
	}
	if st := e.Stats(); st.Shed != 0 || st.Ingested != 8000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGPUBackendMatchesCPU(t *testing.T) {
	mk := func(s interface {
		Sort([]float32)
		Name() string
	}) *Executor {
		e := NewExecutor(s, 0)
		e.Register(QuerySpec{Kind: FrequencyAbove, Eps: 0.01, Param: 0.1, Name: "hh"})
		e.Register(QuerySpec{Kind: QuantileAt, Eps: 0.01, Param: 0.5, Name: "m"})
		return e
	}
	cpu := mk(cpusort.QuicksortSorter[float32]{})
	gpu := mk(gpusort.NewSorter[float32]())
	data := stream.Zipf(10000, 1.2, 200, 3)
	stream.EachWindow(data, 2500, func(win []float32) {
		cpu.Push(win)
		gpu.Push(win)
	})
	cr, gr := cpu.Results(), gpu.Results()
	if cr[1].Quantile != gr[1].Quantile {
		t.Fatalf("medians differ: %v vs %v", cr[1].Quantile, gr[1].Quantile)
	}
	if len(cr[0].Items) != len(gr[0].Items) {
		t.Fatalf("heavy hitter sets differ")
	}
}

func TestEmptyExecutor(t *testing.T) {
	e := newExec(0)
	e.Register(QuerySpec{Kind: QuantileAt, Eps: 0.1, Param: 0.5, Name: "m"})
	res := e.Results()
	if res[0].N != 0 || res[0].Quantile != 0 {
		t.Fatalf("empty result = %+v", res[0])
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewExecutor(cpusort.QuicksortSorter[float32]{}, -1) },
		func() { newExec(0).Register(QuerySpec{Kind: FrequencyAbove, Eps: 0, Name: "x"}) },
		func() { newExec(0).Register(QuerySpec{Kind: QueryKind(99), Eps: 0.1, Name: "x"}) },
		func() {
			e := newExec(0)
			e.Register(QuerySpec{Kind: QuantileAt, Eps: 0.1, Param: 0.5, Name: "m"})
			e.Push([]float32{1})
			e.Register(QuerySpec{Kind: QuantileAt, Eps: 0.1, Param: 0.5, Name: "late"})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}
