package keyed

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/frequency"
	"gpustream/internal/summary"
	"gpustream/internal/wire"
)

// populated returns a snapshot with both tiers occupied: zipf keys so the
// heavy head promotes and the tail stays frugal.
func populated(t *testing.T) *Snapshot[uint64, float64] {
	t.Helper()
	e := newKeyed(0.05, 0.02, WithSeed(13))
	keys, vals := zipfStream(17, 20_000, 1.5, 200)
	if err := e.ProcessSlice(keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.PromotedKeys() == 0 || s.FrugalKeys() == 0 {
		t.Fatalf("setup: want both tiers occupied, got %d promoted / %d frugal",
			s.PromotedKeys(), s.FrugalKeys())
	}
	return s
}

func TestWireRoundTrip(t *testing.T) {
	s := populated(t)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSnapshot[uint64, float64](data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phi() != s.Phi() || got.Support() != s.Support() ||
		got.Count() != s.Count() || got.Promotions() != s.Promotions() ||
		got.Keys() != s.Keys() || got.FrugalKeys() != s.FrugalKeys() ||
		got.PromotedKeys() != s.PromotedKeys() {
		t.Fatal("round-trip changed snapshot metadata")
	}
	for _, f := range s.frugal[:10] {
		for _, phi := range []float64{0.25, 0.5, 0.75} {
			a, okA := s.Quantile(f.Key, phi)
			b, okB := got.Quantile(f.Key, phi)
			if okA != okB || a != b {
				t.Fatalf("key %d phi %v: %v/%v vs %v/%v", f.Key, phi, a, okA, b, okB)
			}
		}
	}
	for _, p := range s.promo {
		a, _ := s.Quantile(p.Key, 0.5)
		b, okB := got.Quantile(p.Key, 0.5)
		if !okB || a != b {
			t.Fatalf("promoted key %d: %v vs %v (ok=%v)", p.Key, a, b, okB)
		}
		if !got.Promoted(p.Key) {
			t.Fatalf("promoted key %d demoted by round-trip", p.Key)
		}
	}
	if ca, okA := s.KeyCount(s.promo[0].Key); true {
		if cb, okB := got.KeyCount(s.promo[0].Key); ca != cb || okA != okB {
			t.Fatalf("oracle count changed: %d/%v vs %d/%v", ca, okA, cb, okB)
		}
	}

	// Canonical: marshal of the decoded snapshot reproduces the bytes.
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("encoding is not canonical")
	}
}

func TestWireRoundTripNarrowTypes(t *testing.T) {
	e := NewEstimator[uint32, float32](0.05, 0.05, cpusort.QuicksortSorter[uint32]{}, WithSeed(3))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		if err := e.Process(uint32(rng.Intn(64)), rng.Float32()*100); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSnapshot[uint32, float32](data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Keys() != s.Keys() || got.Count() != s.Count() {
		t.Fatal("narrow-type round-trip changed the snapshot")
	}
	// Both tag bytes are enforced independently.
	if _, err := UnmarshalSnapshot[uint32, float64](data); !errors.Is(err, wire.ErrValueType) {
		t.Fatalf("value-type mismatch: %v, want wire.ErrValueType", err)
	}
	if _, err := UnmarshalSnapshot[uint64, float32](data); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("key-type mismatch: %v, want wire.ErrCorrupt", err)
	}
}

// validParts returns building blocks for hand-assembled invalid snapshots: a
// decodable oracle snapshot over uint64 keys and a small valid GK summary.
func validParts(t *testing.T) (*frequency.Snapshot[uint64], *summary.Summary[float64]) {
	t.Helper()
	or := frequency.NewEstimator(0.1, cpusort.QuicksortSorter[uint64]{})
	for i := 0; i < 100; i++ {
		if err := or.Process(uint64(i % 5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := or.Flush(); err != nil {
		t.Fatal(err)
	}
	gk := summary.NewGK[float64](0.1)
	for i := 0; i < 50; i++ {
		gk.Insert(float64(i))
	}
	return or.Snapshot().(*frequency.Snapshot[uint64]), gk.ToSummary()
}

func TestWireCorrupt(t *testing.T) {
	oracle, sum := validParts(t)
	valid := func() *Snapshot[uint64, float64] {
		return &Snapshot[uint64, float64]{
			phi:        0.5,
			support:    0.1,
			n:          150,
			promotions: 1,
			frugal: []FrugalEntry[uint64, float64]{
				{Key: 1, Est: 10, Ctl: 0x41, Cnt: 3},
				{Key: 2, Est: 20, Ctl: 0x82, Cnt: 5},
			},
			promo:  []PromotedEntry[uint64, float64]{{Key: 7, Sum: sum}},
			oracle: oracle,
		}
	}
	// The baseline must decode cleanly, or the mutations below prove nothing.
	base, err := valid().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSnapshot[uint64, float64](base); err != nil {
		t.Fatalf("baseline snapshot does not decode: %v", err)
	}

	structural := []struct {
		name string
		mut  func(*Snapshot[uint64, float64])
	}{
		{"phi above 1", func(s *Snapshot[uint64, float64]) { s.phi = 1.5 }},
		{"phi NaN", func(s *Snapshot[uint64, float64]) { s.phi = math.NaN() }},
		{"support zero", func(s *Snapshot[uint64, float64]) { s.support = 0 }},
		{"support above 1", func(s *Snapshot[uint64, float64]) { s.support = 1.5 }},
		{"negative n", func(s *Snapshot[uint64, float64]) { s.n = -1 }},
		{"negative promotions", func(s *Snapshot[uint64, float64]) { s.promotions = -1 }},
		{"frugal keys descending", func(s *Snapshot[uint64, float64]) {
			s.frugal[0].Key, s.frugal[1].Key = s.frugal[1].Key, s.frugal[0].Key
		}},
		{"frugal key duplicated", func(s *Snapshot[uint64, float64]) { s.frugal[1].Key = s.frugal[0].Key }},
		{"fresh control byte", func(s *Snapshot[uint64, float64]) { s.frugal[0].Ctl = 0x00 }},
		{"invalid sign bits", func(s *Snapshot[uint64, float64]) { s.frugal[0].Ctl = 0xC1 }},
		{"scale beyond max", func(s *Snapshot[uint64, float64]) { s.frugal[0].Ctl = 0x40 | 63 }},
		{"zero backing count", func(s *Snapshot[uint64, float64]) { s.frugal[0].Cnt = 0 }},
		{"key in both tiers", func(s *Snapshot[uint64, float64]) { s.promo[0].Key = s.frugal[1].Key }},
		{"empty promoted summary", func(s *Snapshot[uint64, float64]) {
			empty := *sum
			empty.Entries = nil
			empty.N = 0
			s.promo[0].Sum = &empty
		}},
	}
	for _, tc := range structural {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mut(s)
			data, err := s.MarshalBinary()
			if err != nil {
				return // refusing to encode is as good as refusing to decode
			}
			if _, err := UnmarshalSnapshot[uint64, float64](data); err == nil {
				t.Fatal("corrupt snapshot decoded without error")
			}
		})
	}

	raw := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, wire.ErrTruncated},
		{"header only", base[:wire.HeaderSize], wire.ErrTruncated},
		{"truncated tail", base[:len(base)-3], wire.ErrTruncated},
		{"trailing byte", append(append([]byte(nil), base...), 0), wire.ErrCorrupt},
		{"bad magic", mutate(base, 0, 0xFF), wire.ErrBadMagic},
		{"bad key tag", mutate(base, wire.HeaderSize, 0x5A), wire.ErrCorrupt},
	}
	for _, tc := range raw {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalSnapshot[uint64, float64](tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// mutate returns a copy of data with the byte at off XORed with x.
func mutate(data []byte, off int, x byte) []byte {
	out := append([]byte(nil), data...)
	out[off] ^= x
	return out
}

// TestWireMergeAcrossProcesses drives the full cross-process path: snapshot,
// marshal, unmarshal "elsewhere", merge the decoded halves, and answer.
func TestWireMergeAcrossProcesses(t *testing.T) {
	keys, vals := zipfStream(23, 20_000, 1.4, 100)
	half := len(keys) / 2
	var blobs [][]byte
	for _, r := range [][2]int{{0, half}, {half, len(keys)}} {
		e := newKeyed(0.05, 0.02, WithSeed(21))
		if err := e.ProcessSlice(keys[r[0]:r[1]], vals[r[0]:r[1]]); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		data, err := e.Snapshot().MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, data)
	}
	a, err := UnmarshalSnapshot[uint64, float64](blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnmarshalSnapshot[uint64, float64](blobs[1])
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeSnapshots(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != int64(len(keys)) {
		t.Fatalf("merged count %d, want %d", m.Count(), len(keys))
	}
	if _, ok := m.Quantile(keys[0], 0.5); !ok {
		t.Fatal("merged snapshot lost a key")
	}
	// The merge result is itself wire-clean.
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSnapshot[uint64, float64](data); err != nil {
		t.Fatal(err)
	}
}
