// Package keyed implements massive-cardinality keyed quantile estimation:
// one estimator per stream key at a memory cost that stays feasible when
// keys number in the tens of millions. It is the two-tier front-end the
// frugal package exists for:
//
//   - Every key starts in the frugal tier: one frugal-streaming tracker
//     (internal/frugal) per key — a value word and a control byte — pooled
//     in chunked parallel-array slabs with a map index. No per-key
//     allocation, no per-key goroutine; tens of bytes per key all-in.
//   - Keys are simultaneously fed (key only, not value) through the paper's
//     lossy-counting frequency estimator, which acts as the heavy-hitter
//     oracle. Keys whose estimated share crosses the promotion support are
//     promoted to the full tier: a dedicated eps-approximate GK summary
//     (internal/summary) answering any quantile with rank guarantees.
//   - Promotion replays nothing. The promoted summary is seeded with the
//     key's frugal estimate as a point mass weighted by the oracle's count
//     of the key's prefix, so prefix mass is accounted (conservatively,
//     with rank uncertainty up to the prefix length) rather than dropped —
//     DESIGN.md section 13 develops the error argument.
//
// The net effect is the natural division of labor for skewed key
// distributions: the heavy keys that dominate queries get real summaries,
// the long tail gets one word each, and the oracle decides which is which
// as the stream evolves.
package keyed

import (
	"fmt"
	"sort"
	"sync"

	"gpustream/internal/frequency"
	"gpustream/internal/frugal"
	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// promoted is one full-tier key: its dedicated GK summary over the suffix
// observed since promotion, plus the frugal seed standing in for the prefix.
type promoted[T sorter.Value] struct {
	gk      *summary.GK[T]
	seed    T     // frugal estimate at promotion time
	prefixN int64 // oracle's count of the prefix the seed stands in for
}

// effective returns the key's queryable summary: the suffix GK merged with
// the prefix point mass. The point mass spans ranks [1, prefixN], so its
// rank uncertainty is the whole prefix — exactly the honesty the no-replay
// design owes — and it shrinks relative to the stream as the suffix grows.
func (p *promoted[T]) effective(eps float64) *summary.Summary[T] {
	prefix := &summary.Summary[T]{
		Entries: []summary.Entry[T]{{V: p.seed, RMin: 1, RMax: p.prefixN}},
		N:       p.prefixN,
		Eps:     eps,
	}
	return summary.Merge(p.gk.ToSummary(), prefix)
}

// TierStats reports the keyed estimator's tier occupancy, as surfaced
// through Engine.Stats.
type TierStats struct {
	// Keys is the number of distinct keys currently tracked across both
	// tiers.
	Keys int
	// FrugalKeys is the number of keys in the pooled frugal tier.
	FrugalKeys int
	// PromotedKeys is the number of keys holding dedicated GK summaries.
	PromotedKeys int
	// Promotions counts promotion events over the estimator's lifetime.
	Promotions int64
	// PromotionRate is the promoted fraction of distinct keys, in [0, 1].
	PromotionRate float64
	// Observations is the total number of (key, value) pairs processed.
	Observations int64
}

// Option configures an Estimator.
type Option func(*config)

type config struct {
	phi  float64
	seed uint64
}

// WithPhi selects the quantile each frugal-tier tracker targets (default
// 0.5, the per-key median). Promoted keys answer any quantile regardless.
func WithPhi(phi float64) Option {
	return func(c *config) { c.phi = phi }
}

// WithSeed seeds the shared randomized rank gates of the frugal tier.
// Estimates are deterministic for a fixed seed and ingestion order.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// Estimator is the two-tier keyed front-end over (key, value) observations.
// K and T are both stack value types: keys must sort (they feed the
// heavy-hitter oracle's windowed pipeline) and wire-encode (keyed snapshots
// cross processes), which is why K is constrained to sorter.Value rather
// than bare comparable.
//
// One writer and any number of query goroutines may use an Estimator
// concurrently.
type Estimator[K sorter.Value, T sorter.Value] struct {
	mu      sync.Mutex
	phi     float64 // frugal-tier target quantile
	eps     float64 // promoted-tier GK error bound
	support float64 // promotion threshold (share of the stream)

	oracle     *frequency.Estimator[K]
	index      map[K]uint32 // frugal-tier key -> slab slot
	slab       slab[T]
	promoted   map[K]*promoted[T]
	rng        frugal.RNG
	n          int64
	promotions int64
	sinceSweep int
	sweepEvery int
	closed     bool
}

// NewEstimator returns a keyed estimator promoting keys above the given
// support (share of the stream, in (0, 1)) to dedicated eps-approximate GK
// summaries, with the heavy-hitter oracle sorting its windows on s. The
// oracle runs at support/2 error so its threshold (support - eps')·N sits at
// half-support: every key truly above support promotes (the oracle has no
// false negatives), at the cost of also promoting some keys above
// half-support — conservative in the direction that only costs memory,
// never accuracy.
func NewEstimator[K sorter.Value, T sorter.Value](eps, support float64, s sorter.Sorter[K], opts ...Option) *Estimator[K, T] {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("keyed: eps %v out of (0, 1)", eps))
	}
	if support <= 0 || support >= 1 {
		panic(fmt.Sprintf("keyed: support %v out of (0, 1)", support))
	}
	var cfg = config{phi: 0.5, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.phi < 0 || cfg.phi > 1 || cfg.phi != cfg.phi {
		panic(fmt.Sprintf("keyed: phi %v out of [0, 1]", cfg.phi))
	}
	e := &Estimator[K, T]{
		phi:      cfg.phi,
		eps:      eps,
		support:  support,
		oracle:   frequency.NewEstimator(support/2, s),
		index:    make(map[K]uint32),
		promoted: make(map[K]*promoted[T]),
		rng:      frugal.NewRNG(cfg.seed),
	}
	// Sweeping for promotions once per oracle window aligns the sweep with
	// the oracle's natural merge boundary (Query flushes any partial window,
	// so off-cadence sweeps would force extra partial merges) and amortizes
	// the O(summary) scan to O(1) per observation.
	e.sweepEvery = e.oracle.WindowSize()
	return e
}

// Phi reports the frugal-tier target quantile.
func (e *Estimator[K, T]) Phi() float64 { return e.phi }

// Eps reports the promoted-tier error bound.
func (e *Estimator[K, T]) Eps() float64 { return e.eps }

// Support reports the promotion threshold.
func (e *Estimator[K, T]) Support() float64 { return e.support }

// Count reports the number of (key, value) observations processed.
func (e *Estimator[K, T]) Count() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Process consumes one keyed observation. After Close it returns an error
// wrapping pipeline.ErrClosed.
func (e *Estimator[K, T]) Process(k K, v T) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("keyed: %w", pipeline.ErrClosed)
	}
	e.ingestLocked(k, v)
	if err := e.oracle.Process(k); err != nil {
		return err
	}
	e.sinceSweep++
	e.maybeSweepLocked()
	return nil
}

// ProcessSlice consumes a batch of keyed observations; keys and vals must
// have equal length and the caller may reuse both slices immediately. After
// Close it returns an error wrapping pipeline.ErrClosed.
//
// The batch is ingested in sweep-cadence chunks, not en bloc: a promotion
// sweep must get the chance to run every oracle window even inside one huge
// batch, or a key promoted by the batch would have fed its entire batch
// prefix to the frugal tier and hand its GK summary nothing (the no-replay
// design never backfills), collapsing its answers to the seed point mass.
func (e *Estimator[K, T]) ProcessSlice(keys []K, vals []T) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("keyed: %d keys but %d values", len(keys), len(vals))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("keyed: %w", pipeline.ErrClosed)
	}
	for len(keys) > 0 {
		chunk := e.sweepEvery - e.sinceSweep
		if chunk > len(keys) {
			chunk = len(keys)
		}
		for i := 0; i < chunk; i++ {
			e.ingestLocked(keys[i], vals[i])
		}
		if err := e.oracle.ProcessSlice(keys[:chunk]); err != nil {
			return err
		}
		e.sinceSweep += chunk
		e.maybeSweepLocked()
		keys, vals = keys[chunk:], vals[chunk:]
	}
	return nil
}

// ingestLocked routes one observation to the key's tier.
func (e *Estimator[K, T]) ingestLocked(k K, v T) {
	e.n++
	if p, ok := e.promoted[k]; ok {
		p.gk.Insert(v)
		return
	}
	idx, ok := e.index[k]
	if !ok {
		idx = e.slab.alloc()
		e.index[k] = idx
	}
	est, ctl := e.slab.at(idx)
	*est, *ctl = frugal.Step(*est, *ctl, v, e.phi, e.rng.Next())
}

// maybeSweepLocked runs a promotion sweep once per oracle window.
func (e *Estimator[K, T]) maybeSweepLocked() {
	if e.sinceSweep < e.sweepEvery {
		return
	}
	e.sinceSweep = 0
	e.sweepLocked()
}

// sweepLocked promotes every key the oracle currently reports above the
// support threshold: the key's frugal slot is released back to the slab and
// its estimate becomes the seed of a fresh GK summary, weighted by the
// oracle's count of the prefix it stands in for.
func (e *Estimator[K, T]) sweepLocked() {
	for _, item := range e.oracle.Query(e.support) {
		k := item.Value
		if _, ok := e.promoted[k]; ok {
			continue
		}
		idx, ok := e.index[k]
		if !ok {
			continue
		}
		est, _ := e.slab.at(idx)
		prefixN := item.Freq
		if prefixN < 1 {
			prefixN = 1
		}
		e.promoted[k] = &promoted[T]{gk: summary.NewGK[T](e.eps), seed: *est, prefixN: prefixN}
		e.slab.release(idx)
		delete(e.index, k)
		e.promotions++
	}
}

// Flush forces the oracle's buffered partial window into its summary and
// runs a promotion sweep, so tier assignments reflect every observation
// processed so far.
func (e *Estimator[K, T]) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.oracle.Flush(); err != nil {
		return err
	}
	e.sinceSweep = 0
	e.sweepLocked()
	return nil
}

// Close stops ingestion and closes the oracle; the estimator remains
// queryable. Idempotent.
func (e *Estimator[K, T]) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return e.oracle.Close()
}

// Stats returns the unified pipeline telemetry of the heavy-hitter oracle —
// the only windowed (sorting) pipeline inside the keyed front-end; frugal
// steps and GK inserts contribute no sort/merge/compress work.
func (e *Estimator[K, T]) Stats() pipeline.Stats { return e.oracle.Stats() }

// TierStats reports current tier occupancy.
func (e *Estimator[K, T]) TierStats() TierStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tierStatsLocked()
}

func (e *Estimator[K, T]) tierStatsLocked() TierStats {
	st := TierStats{
		FrugalKeys:   len(e.index),
		PromotedKeys: len(e.promoted),
		Promotions:   e.promotions,
		Observations: e.n,
	}
	st.Keys = st.FrugalKeys + st.PromotedKeys
	if st.Keys > 0 {
		st.PromotionRate = float64(st.PromotedKeys) / float64(st.Keys)
	}
	return st
}

// Quantile answers a per-key quantile query. Promoted keys answer any phi
// from their seeded GK summary (eps-approximate over the suffix, plus the
// prefix point-mass uncertainty); frugal-tier keys answer with their single
// tracked estimate — a heuristic point estimate of the configured Phi target
// regardless of the phi requested. ok is false for keys never observed.
func (e *Estimator[K, T]) Quantile(k K, phi float64) (T, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := e.promoted[k]; ok {
		return p.effective(e.eps).Query(phi), true
	}
	if idx, ok := e.index[k]; ok {
		est, _ := e.slab.at(idx)
		return *est, true
	}
	var z T
	return z, false
}

// Promoted reports whether k currently holds a dedicated GK summary.
func (e *Estimator[K, T]) Promoted(k K) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.promoted[k]
	return ok
}

// KeyCount returns the oracle's estimated observation count for k, which
// undercounts the true count by at most (support/2)·N. ok is false for keys
// the oracle no longer tracks (necessarily light keys).
func (e *Estimator[K, T]) KeyCount(k K) (int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cnt := e.oracle.Estimate(k)
	return cnt, cnt > 0
}

// HeavyKeys returns every key whose estimated share of the stream is at
// least s - support/2, ordered by decreasing count — the oracle's
// epsilon-approximate frequency query over the key stream.
func (e *Estimator[K, T]) HeavyKeys(s float64) []pipeline.Item[K] {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.oracle.Query(s)
}

// FrugalEntry is one frugal-tier key in a Snapshot: the tracker state plus
// the oracle's (clamped, at least 1) count of the key's observations, which
// the merge rules use as the tracker's backing weight.
type FrugalEntry[K sorter.Value, T sorter.Value] struct {
	Key K
	Est T
	Ctl uint8
	Cnt int64
}

// PromotedEntry is one promoted key in a Snapshot: its effective summary
// (suffix GK merged with the prefix point mass).
type PromotedEntry[K sorter.Value, T sorter.Value] struct {
	Key K
	Sum *summary.Summary[T]
}

// Snapshot is an immutable point-in-time view of a keyed estimator: both
// tiers (key-ascending, disjoint) plus the heavy-hitter oracle's summary.
// It is safe for concurrent use. Unlike the unkeyed families it does not
// implement pipeline.View — its query surface is per-key — so it travels
// through the keyed-specific wire entry points (MarshalBinary /
// UnmarshalSnapshot / MergeSnapshots in this package).
type Snapshot[K sorter.Value, T sorter.Value] struct {
	phi        float64
	support    float64
	n          int64
	promotions int64
	frugal     []FrugalEntry[K, T]
	promo      []PromotedEntry[K, T]
	oracle     *frequency.Snapshot[K]
}

// Snapshot returns an immutable view of both tiers and the oracle. Taking
// one is O(keys): the frugal slab is copied out into key-ascending entries.
// The view never sees ingestion that happens after this call.
func (e *Estimator[K, T]) Snapshot() *Snapshot[K, T] {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Snapshot[K, T]{
		phi:        e.phi,
		support:    e.support,
		n:          e.n,
		promotions: e.promotions,
		oracle:     e.oracle.Snapshot().(*frequency.Snapshot[K]),
	}
	s.frugal = make([]FrugalEntry[K, T], 0, len(e.index))
	for k, idx := range e.index {
		est, ctl := e.slab.at(idx)
		cnt := s.oracle.Estimate(k)
		if cnt < 1 {
			cnt = 1 // the key exists, so it was observed at least once
		}
		s.frugal = append(s.frugal, FrugalEntry[K, T]{Key: k, Est: *est, Ctl: *ctl, Cnt: cnt})
	}
	sort.Slice(s.frugal, func(i, j int) bool {
		return sorter.OrderedKey(s.frugal[i].Key) < sorter.OrderedKey(s.frugal[j].Key)
	})
	s.promo = make([]PromotedEntry[K, T], 0, len(e.promoted))
	for k, p := range e.promoted {
		s.promo = append(s.promo, PromotedEntry[K, T]{Key: k, Sum: p.effective(e.eps)})
	}
	sort.Slice(s.promo, func(i, j int) bool {
		return sorter.OrderedKey(s.promo[i].Key) < sorter.OrderedKey(s.promo[j].Key)
	})
	return s
}

// Phi reports the frugal-tier target quantile.
func (s *Snapshot[K, T]) Phi() float64 { return s.phi }

// Support reports the promotion threshold.
func (s *Snapshot[K, T]) Support() float64 { return s.support }

// Count reports the number of observations the snapshot covers.
func (s *Snapshot[K, T]) Count() int64 { return s.n }

// Promotions reports lifetime promotion events.
func (s *Snapshot[K, T]) Promotions() int64 { return s.promotions }

// Keys reports the number of distinct keys tracked across both tiers.
func (s *Snapshot[K, T]) Keys() int { return len(s.frugal) + len(s.promo) }

// FrugalKeys reports the frugal-tier key count.
func (s *Snapshot[K, T]) FrugalKeys() int { return len(s.frugal) }

// PromotedKeys reports the promoted-tier key count.
func (s *Snapshot[K, T]) PromotedKeys() int { return len(s.promo) }

// searchFrugal returns the index of k in the frugal tier, or -1.
func (s *Snapshot[K, T]) searchFrugal(k K) int {
	kk := sorter.OrderedKey(k)
	i := sort.Search(len(s.frugal), func(i int) bool {
		return sorter.OrderedKey(s.frugal[i].Key) >= kk
	})
	if i < len(s.frugal) && s.frugal[i].Key == k {
		return i
	}
	return -1
}

// searchPromoted returns the index of k in the promoted tier, or -1.
func (s *Snapshot[K, T]) searchPromoted(k K) int {
	kk := sorter.OrderedKey(k)
	i := sort.Search(len(s.promo), func(i int) bool {
		return sorter.OrderedKey(s.promo[i].Key) >= kk
	})
	if i < len(s.promo) && s.promo[i].Key == k {
		return i
	}
	return -1
}

// Quantile answers a per-key quantile query with the same tier semantics as
// the live estimator. ok is false for keys the snapshot does not track.
func (s *Snapshot[K, T]) Quantile(k K, phi float64) (T, bool) {
	if i := s.searchPromoted(k); i >= 0 {
		return s.promo[i].Sum.Query(phi), true
	}
	if i := s.searchFrugal(k); i >= 0 {
		return s.frugal[i].Est, true
	}
	var z T
	return z, false
}

// Promoted reports whether k holds a dedicated summary in the snapshot.
func (s *Snapshot[K, T]) Promoted(k K) bool { return s.searchPromoted(k) >= 0 }

// HeavyKeys answers the oracle's epsilon-approximate frequency query over
// the key stream at support sp.
func (s *Snapshot[K, T]) HeavyKeys(sp float64) []pipeline.Item[K] { return s.oracle.Query(sp) }

// KeyCount returns the oracle's estimated observation count for k; ok is
// false for keys the oracle no longer tracks.
func (s *Snapshot[K, T]) KeyCount(k K) (int64, bool) {
	cnt := s.oracle.Estimate(k)
	return cnt, cnt > 0
}
