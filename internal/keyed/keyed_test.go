package keyed

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/pipeline"
	"gpustream/internal/summary"
)

func newKeyed(eps, support float64, opts ...Option) *Estimator[uint64, float64] {
	return NewEstimator[uint64, float64](eps, support, cpusort.QuicksortSorter[uint64]{}, opts...)
}

// zipfStream generates n keyed observations: keys zipf-distributed (small
// keys heavy), values uniform in [0, 1000) with a per-key offset so keys have
// distinct distributions.
func zipfStream(seed int64, n int, s float64, nkeys uint64) ([]uint64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, nkeys-1)
	keys := make([]uint64, n)
	vals := make([]float64, n)
	for i := range keys {
		k := z.Uint64()
		keys[i] = k
		vals[i] = float64(k%7)*100 + rng.Float64()*1000
	}
	return keys, vals
}

func TestLifecycle(t *testing.T) {
	e := newKeyed(0.05, 0.02)
	if _, ok := e.Quantile(42, 0.5); ok {
		t.Fatal("unknown key reported ok")
	}
	if err := e.Process(1, 10); err != nil {
		t.Fatal(err)
	}
	if got, ok := e.Quantile(1, 0.5); !ok || got != 10 {
		t.Fatalf("single-observation key: got %v, %v", got, ok)
	}
	if err := e.ProcessSlice([]uint64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched slice lengths accepted")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	if err := e.Process(1, 10); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("Process after Close: %v", err)
	}
	if err := e.ProcessSlice([]uint64{1}, []float64{1}); !errors.Is(err, pipeline.ErrClosed) {
		t.Fatalf("ProcessSlice after Close: %v", err)
	}
	// Still queryable after Close.
	if got, ok := e.Quantile(1, 0.5); !ok || got != 10 {
		t.Fatalf("query after Close: got %v, %v", got, ok)
	}
}

func TestNewEstimatorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { newKeyed(0, 0.01) },
		func() { newKeyed(1, 0.01) },
		func() { newKeyed(0.01, 0) },
		func() { newKeyed(0.01, 1) },
		func() { newKeyed(0.01, 0.01, WithPhi(-0.1)) },
		func() { newKeyed(0.01, 0.01, WithPhi(1.1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor accepted invalid configuration")
				}
			}()
			fn()
		}()
	}
}

// TestPromotionMetamorphic pins the promotion contract: a heavy key's
// promoted answers must agree with a dedicated GK summary fed the same
// suffix of the key's observations, up to the documented error budget —
// 2 eps of GK rank error on each side plus the prefix point mass, whose
// rank uncertainty spans the prefix the frugal seed stands in for.
func TestPromotionMetamorphic(t *testing.T) {
	const (
		eps     = 0.02
		support = 0.02
		heavy   = uint64(7)
		n       = 40_000
	)
	e := newKeyed(eps, support, WithSeed(11))
	rng := rand.New(rand.NewSource(5))

	var heavyVals []float64
	prefixCount := -1
	for i := 0; i < n; i++ {
		var k uint64
		if rng.Float64() < 0.5 {
			k = heavy
		} else {
			k = 100 + uint64(rng.Intn(400))
		}
		v := rng.Float64() * 1000
		if k == heavy {
			heavyVals = append(heavyVals, v)
		}
		if err := e.Process(k, v); err != nil {
			t.Fatal(err)
		}
		if prefixCount < 0 && e.Promoted(heavy) {
			prefixCount = len(heavyVals)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if prefixCount < 0 {
		t.Fatal("heavy key never promoted")
	}
	suffix := heavyVals[prefixCount:]
	if len(suffix) < 1000 {
		t.Fatalf("promotion too late for a meaningful suffix: prefix %d of %d", prefixCount, len(heavyVals))
	}

	ref := summary.NewGK[float64](eps)
	for _, v := range suffix {
		ref.Insert(v)
	}
	sortedSuffix := append([]float64(nil), suffix...)
	sort.Float64s(sortedSuffix)
	sortedAll := append([]float64(nil), heavyVals...)
	sort.Float64s(sortedAll)

	rankIn := func(sorted []float64, v float64) int {
		return sort.SearchFloat64s(sorted, v)
	}
	for _, phi := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		got, ok := e.Quantile(heavy, phi)
		if !ok {
			t.Fatalf("promoted key lost at phi=%v", phi)
		}
		// Against the dedicated suffix GK: both are 2-eps-approximate over
		// the suffix, and the prefix point mass can displace ranks by up to
		// prefixCount.
		want := ref.Query(phi)
		tol := float64(4*eps)*float64(len(suffix)) + float64(prefixCount) + 1
		if diff := rankIn(sortedSuffix, got) - rankIn(sortedSuffix, want); float64(abs(diff)) > tol {
			t.Errorf("phi=%v: promoted answer %v vs dedicated GK %v: suffix rank diff %d > tol %.0f",
				phi, got, want, diff, tol)
		}
		// Against ground truth over everything the key ever saw.
		target := phi * float64(len(heavyVals))
		tolAll := (2*eps+0.03)*float64(len(heavyVals)) + float64(prefixCount)
		if diff := float64(rankIn(sortedAll, got)) - target; diff > tolAll || diff < -tolAll {
			t.Errorf("phi=%v: promoted answer %v rank %0.f vs target %.0f beyond tol %.0f",
				phi, got, float64(rankIn(sortedAll, got)), target, tolAll)
		}
	}

	st := e.TierStats()
	if st.PromotedKeys < 1 || st.Promotions < 1 {
		t.Fatalf("tier stats missed the promotion: %+v", st)
	}
	if st.Keys != st.FrugalKeys+st.PromotedKeys {
		t.Fatalf("inconsistent key counts: %+v", st)
	}
	if st.Observations != n {
		t.Fatalf("observations %d, want %d", st.Observations, n)
	}
	if st.PromotionRate <= 0 || st.PromotionRate > 1 {
		t.Fatalf("promotion rate %v out of (0, 1]", st.PromotionRate)
	}
	if cnt, ok := e.KeyCount(heavy); !ok || cnt < int64(float64(len(heavyVals))*0.9) {
		t.Fatalf("oracle count %d (ok=%v) for a key observed %d times", cnt, ok, len(heavyVals))
	}
	hh := e.HeavyKeys(support)
	if len(hh) == 0 || hh[0].Value != heavy {
		t.Fatalf("heavy key missing from HeavyKeys: %v", hh)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestPartitionOrderInvariance pins the merge algebra: the same stream split
// into shards and merged in any grouping must agree on every structural
// invariant (key set, promoted set, counts), commute exactly on the frugal
// tier, and stay inside the input envelope under re-association — the
// frugal winner is chosen by accumulated backing count, so different
// groupings may crown different shards' estimates, but never an estimate no
// shard produced.
func TestPartitionOrderInvariance(t *testing.T) {
	const (
		eps     = 0.05
		support = 0.02
		n       = 30_000
	)
	keys, vals := zipfStream(3, n, 1.4, 50)

	build := func(lo, hi int) *Snapshot[uint64, float64] {
		e := newKeyed(eps, support, WithSeed(9))
		if err := e.ProcessSlice(keys[lo:hi], vals[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		return e.Snapshot()
	}
	shards := []*Snapshot[uint64, float64]{build(0, n/3), build(n/3, 2*n/3), build(2*n/3, n)}
	a, b, c := shards[0], shards[1], shards[2]

	mustMerge := func(x, y *Snapshot[uint64, float64]) *Snapshot[uint64, float64] {
		m, err := MergeSnapshots(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Commutativity is exact on the frugal tier: the winner rule is
	// symmetric with a deterministic tie-break and counts add.
	ab, ba := mustMerge(a, b), mustMerge(b, a)
	if ab.Keys() != ba.Keys() || ab.Count() != ba.Count() {
		t.Fatalf("commuted merges disagree structurally: %d/%d keys, %d/%d obs",
			ab.Keys(), ba.Keys(), ab.Count(), ba.Count())
	}

	m1 := mustMerge(ab, c)
	m2 := mustMerge(a, mustMerge(b, c))
	m3 := mustMerge(mustMerge(c, a), b)
	orders := []*Snapshot[uint64, float64]{m1, m2, m3}

	for _, m := range orders {
		if m.Count() != int64(n) {
			t.Fatalf("merged count %d, want %d", m.Count(), n)
		}
		if m.Keys() != m1.Keys() || m.FrugalKeys() != m1.FrugalKeys() || m.PromotedKeys() != m1.PromotedKeys() {
			t.Fatalf("tier sizes disagree across merge orders: (%d,%d,%d) vs (%d,%d,%d)",
				m.Keys(), m.FrugalKeys(), m.PromotedKeys(),
				m1.Keys(), m1.FrugalKeys(), m1.PromotedKeys())
		}
	}

	// Per-key sorted values for rank comparisons on promoted keys.
	byKey := map[uint64][]float64{}
	for i, k := range keys {
		byKey[k] = append(byKey[k], vals[i])
	}
	for k := range byKey {
		sort.Float64s(byKey[k])
	}

	for k, sorted := range byKey {
		p1 := m1.Promoted(k)
		if m2.Promoted(k) != p1 || m3.Promoted(k) != p1 {
			t.Fatalf("key %d: promotion disagrees across merge orders", k)
		}
		if qab, ok := ab.Quantile(k, 0.5); ok && !ab.Promoted(k) {
			if qba, _ := ba.Quantile(k, 0.5); qab != qba {
				t.Fatalf("key %d: frugal merge does not commute: %v vs %v", k, qab, qba)
			}
		}
		if !p1 {
			// Envelope property: whichever shard's tracker wins under a given
			// grouping, the answer is always one of the shard estimates.
			candidates := map[float64]bool{}
			for _, s := range shards {
				if v, ok := s.Quantile(k, 0.5); ok && !s.Promoted(k) {
					candidates[v] = true
				}
			}
			for _, m := range orders {
				q, ok := m.Quantile(k, 0.5)
				if !ok {
					t.Fatalf("key %d missing from a merge order", k)
				}
				if !candidates[q] {
					t.Fatalf("key %d: merged frugal answer %v is not any shard's estimate %v", k, q, candidates)
				}
			}
			continue
		}
		// Promoted answers may differ by summary pruning and fold order; they
		// must stay within the merged rank tolerance of each other.
		tol := (4*eps+0.02)*float64(len(sorted)) + 1
		q1, ok := m1.Quantile(k, 0.5)
		if !ok {
			t.Fatalf("key %d missing from merge order 1", k)
		}
		r1 := float64(sort.SearchFloat64s(sorted, q1))
		for _, m := range orders[1:] {
			q, ok := m.Quantile(k, 0.5)
			if !ok {
				t.Fatalf("key %d missing from a merge order", k)
			}
			r := float64(sort.SearchFloat64s(sorted, q))
			if d := r - r1; d > tol || d < -tol {
				t.Fatalf("key %d: promoted answers diverge beyond tol: %v vs %v (ranks %v/%v, tol %v)",
					k, q1, q, r1, r, tol)
			}
		}
	}
}

func TestMergeMismatchedPhi(t *testing.T) {
	a := newKeyed(0.05, 0.02, WithPhi(0.5))
	b := newKeyed(0.05, 0.02, WithPhi(0.9))
	_ = a.Process(1, 1)
	_ = b.Process(1, 1)
	_, err := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if !errors.Is(err, ErrMismatchedConfig) {
		t.Fatalf("got %v, want ErrMismatchedConfig", err)
	}
}

// TestMergePromotionMonotone pins that a key promoted on either side stays
// promoted in the merge, with the frugal side folded in as weighted mass.
func TestMergePromotionMonotone(t *testing.T) {
	const heavy = uint64(3)
	// Side A: heavy key dominant, gets promoted.
	a := newKeyed(0.05, 0.05, WithSeed(2))
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20_000; i++ {
		k := heavy
		if rng.Float64() > 0.6 {
			k = 100 + uint64(rng.Intn(50))
		}
		_ = a.Process(k, rng.Float64()*100)
	}
	_ = a.Flush()
	if !a.Promoted(heavy) {
		t.Fatal("setup: heavy key not promoted on side A")
	}
	// Side B: same key light, stays frugal.
	b := newKeyed(0.05, 0.05, WithSeed(4))
	for i := 0; i < 1000; i++ {
		_ = b.Process(uint64(rng.Intn(200)), rng.Float64()*100)
	}
	_ = b.Process(heavy, 50)
	_ = b.Flush()
	if b.Promoted(heavy) {
		t.Fatal("setup: heavy key unexpectedly promoted on side B")
	}

	for _, pair := range [][2]*Snapshot[uint64, float64]{
		{a.Snapshot(), b.Snapshot()},
		{b.Snapshot(), a.Snapshot()},
	} {
		m, err := MergeSnapshots(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !m.Promoted(heavy) {
			t.Fatal("promotion not monotone under merge")
		}
		if _, ok := m.Quantile(heavy, 0.5); !ok {
			t.Fatal("promoted key unanswerable after merge")
		}
	}
}

func TestSlabRecycling(t *testing.T) {
	var s slab[float64]
	a := s.alloc()
	bIdx := s.alloc()
	est, ctl := s.at(bIdx)
	*est, *ctl = 42, 0x41
	s.release(a)
	if s.used != 1 {
		t.Fatalf("used %d after release, want 1", s.used)
	}
	c := s.alloc()
	if c != a {
		t.Fatalf("freed slot not recycled: got %d, want %d", c, a)
	}
	est, ctl = s.at(c)
	if *est != 0 || *ctl != 0 {
		t.Fatalf("recycled slot not zeroed: est=%v ctl=%#x", *est, *ctl)
	}
	// Crossing a chunk boundary keeps indices distinct and addressable.
	seen := map[uint32]bool{bIdx: true, c: true}
	for i := 0; i < slabChunk+10; i++ {
		idx := s.alloc()
		if seen[idx] {
			t.Fatalf("duplicate live slot %d", idx)
		}
		seen[idx] = true
		e2, c2 := s.at(idx)
		if *e2 != 0 || *c2 != 0 {
			t.Fatalf("fresh slot %d not zeroed", idx)
		}
	}
	if b2, _ := s.at(bIdx); *b2 != 42 {
		t.Fatal("live slot clobbered by growth")
	}
}

// TestEstimatorSlabReuse pins that promotion releases the key's frugal slot
// back to the pool and a later new key reuses it. Promotion must be the last
// event before the check — any new key arriving after a promotion sweep
// reclaims the freed slot immediately — so the heavy key's burst comes after
// all light keys are established.
func TestEstimatorSlabReuse(t *testing.T) {
	e := newKeyed(0.05, 0.3, WithSeed(2))
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		_ = e.Process(100+uint64(i), rng.Float64()*100)
	}
	if e.TierStats().PromotedKeys != 0 {
		t.Fatal("setup: a light key promoted prematurely")
	}
	for i := 0; i < 600; i++ {
		_ = e.Process(3, rng.Float64()*100)
	}
	_ = e.Flush()
	if !e.Promoted(3) {
		t.Fatal("setup: key 3 not promoted")
	}
	if len(e.slab.free) == 0 {
		t.Fatal("promotion did not release the frugal slot")
	}
	before := len(e.slab.free)
	_ = e.Process(999_999, 1)
	if len(e.slab.free) != before-1 {
		t.Fatal("new key did not reuse the freed slot")
	}
}

// TestKeyedConcurrentIngest exercises one writer against concurrent readers;
// run under -race this pins the locking discipline.
func TestKeyedConcurrentIngest(t *testing.T) {
	e := newKeyed(0.05, 0.02, WithSeed(6))
	keys, vals := zipfStream(7, 20_000, 1.5, 100)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_, _ = e.Quantile(uint64(r), 0.5)
				_ = e.TierStats()
				_ = e.Promoted(uint64(r))
				if r == 0 {
					s := e.Snapshot()
					_, _ = s.Quantile(1, 0.5)
				}
			}
		}(r)
	}
	for i := 0; i < len(keys); i += 100 {
		end := i + 100
		if end > len(keys) {
			end = len(keys)
		}
		if err := e.ProcessSlice(keys[i:end], vals[i:end]); err != nil {
			t.Error(err)
			break
		}
	}
	if err := e.Flush(); err != nil {
		t.Error(err)
	}
	close(done)
	wg.Wait()
	if e.Count() != int64(len(keys)) {
		t.Fatalf("count %d, want %d", e.Count(), len(keys))
	}
}
