package keyed

import "gpustream/internal/sorter"

// slabChunkBits sizes the slab chunks: 8192 trackers per chunk keeps any
// single allocation modest while amortizing append overhead across millions
// of keys.
const slabChunkBits = 13

const slabChunk = 1 << slabChunkBits

// slab is the pooled storage of the frugal tier: per-key tracker state packed
// into chunked parallel arrays — one T (the estimate) and one control byte
// per key, with no per-key allocation, no per-key goroutine, and no struct
// padding (the parallel layout stores a 64-bit tracker in exactly 9 bytes
// where a struct would pad to 16). Slots freed by promotion are recycled
// through a free list, so the steady-state footprint is
// (sizeof(T)+1) × live frugal keys plus the key index map.
type slab[T sorter.Value] struct {
	ests [][]T
	ctls [][]uint8
	free []uint32 // indices of slots released by promotion
	used int      // live slots (allocated minus freed)
}

// alloc returns a zeroed slot index, reusing a freed slot when one exists.
func (s *slab[T]) alloc() uint32 {
	s.used++
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		var zero T
		s.ests[idx>>slabChunkBits][idx&(slabChunk-1)] = zero
		s.ctls[idx>>slabChunkBits][idx&(slabChunk-1)] = 0
		return idx
	}
	chunk := len(s.ests) - 1
	if chunk < 0 || len(s.ests[chunk]) == slabChunk {
		s.ests = append(s.ests, make([]T, 0, slabChunk))
		s.ctls = append(s.ctls, make([]uint8, 0, slabChunk))
		chunk++
	}
	s.ests[chunk] = append(s.ests[chunk], *new(T))
	s.ctls[chunk] = append(s.ctls[chunk], 0)
	return uint32(chunk<<slabChunkBits | (len(s.ests[chunk]) - 1))
}

// at returns pointers into the slot's parallel arrays.
func (s *slab[T]) at(idx uint32) (*T, *uint8) {
	return &s.ests[idx>>slabChunkBits][idx&(slabChunk-1)], &s.ctls[idx>>slabChunkBits][idx&(slabChunk-1)]
}

// release returns a slot to the free list (promotion retires the key's
// frugal tracker).
func (s *slab[T]) release(idx uint32) {
	s.free = append(s.free, idx)
	s.used--
}
