package keyed

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkKeyedMemory measures the steady-state footprint of the frugal
// tier: N distinct keys, all light (nothing promotes), reported as bytes per
// tracked key. The acceptance budget is <= 48 bytes/key at 10M keys —
// sizeof(est)+1 slab bytes plus the key index map; the oracle prunes light
// keys so it stays O(1/support) regardless of N.
func BenchmarkKeyedMemory(b *testing.B) {
	for _, nkeys := range []int{1_000_000, 10_000_000} {
		b.Run(fmt.Sprintf("keys=%d", nkeys), func(b *testing.B) {
			const batch = 1 << 16
			keys := make([]uint64, batch)
			vals := make([]float64, batch)
			for i := 0; i < b.N; i++ {
				runtime.GC()
				var before runtime.MemStats
				runtime.ReadMemStats(&before)

				e := newKeyed(0.01, 0.01, WithSeed(1))
				for done := 0; done < nkeys; done += batch {
					n := batch
					if nkeys-done < n {
						n = nkeys - done
					}
					for j := 0; j < n; j++ {
						keys[j] = uint64(done + j)
						vals[j] = float64((done + j) % 1000)
					}
					if err := e.ProcessSlice(keys[:n], vals[:n]); err != nil {
						b.Fatal(err)
					}
				}

				runtime.GC()
				var after runtime.MemStats
				runtime.ReadMemStats(&after)
				live := int64(after.HeapAlloc) - int64(before.HeapAlloc)
				if live < 0 {
					live = 0
				}
				st := e.TierStats()
				if st.Keys != nkeys {
					b.Fatalf("tracked %d keys, want %d", st.Keys, nkeys)
				}
				b.ReportMetric(float64(live)/float64(nkeys), "bytes/key")
				runtime.KeepAlive(e)
			}
		})
	}
}

// BenchmarkKeyedProcess measures keyed ingestion throughput on a zipf key
// stream with promotions live.
func BenchmarkKeyedProcess(b *testing.B) {
	keys, vals := zipfStream(1, 1<<16, 1.3, 1<<20)
	e := newKeyed(0.01, 0.001, WithSeed(1))
	b.ResetTimer()
	b.SetBytes(16)
	for i := 0; i < b.N; i += len(keys) {
		n := len(keys)
		if b.N-i < n {
			n = b.N - i
		}
		if err := e.ProcessSlice(keys[:n], vals[:n]); err != nil {
			b.Fatal(err)
		}
	}
}
