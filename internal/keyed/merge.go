package keyed

import (
	"errors"
	"fmt"

	"gpustream/internal/frequency"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// ErrMismatchedConfig is wrapped by MergeSnapshots when two keyed snapshots
// track different frugal-tier target quantiles and therefore cannot be
// combined.
var ErrMismatchedConfig = errors.New("keyed: snapshots track different frugal target quantiles")

// MergeSnapshots combines two keyed snapshots over disjoint substreams into
// one over their union. The key space is unioned; per key the rules are the
// conservative ones of the tier hierarchy, so merging never launders a
// heuristic estimate into a rank guarantee:
//
//   - promoted + promoted: the GK sensor-network rank-combination rule
//     (summary.Merge); the merged summary is max-eps-approximate over the
//     combined per-key stream.
//   - promoted + frugal: the summary wins the tier; the frugal side is
//     folded in as a point mass spanning ranks [1, cnt] — weighted by its
//     oracle backing count, with rank uncertainty covering everything that
//     side saw. The key stays promoted (promotion is monotone under merge).
//   - frugal + frugal: a point estimate has no rank algebra, so the tracker
//     backed by more observations wins, ties breaking deterministically
//     toward the smaller estimate in ordered-key space (then the smaller
//     control byte) — symmetric, and always inside the input envelope. The
//     backing counts add.
//
// The promoted set of the result is the union of the inputs' promoted sets
// and every per-key rule is commutative, which is what makes the merge
// partition-order invariant. The oracles merge by value-aligned addition of
// counts and undercount bounds, exactly like sharded frequency ingestion.
//
// Both snapshots must track the same frugal target quantile; otherwise the
// error wraps ErrMismatchedConfig. The merged promotion support is the
// larger (more conservative) of the two. The inputs are not mutated.
func MergeSnapshots[K sorter.Value, T sorter.Value](a, b *Snapshot[K, T]) (*Snapshot[K, T], error) {
	if a.phi != b.phi {
		return nil, fmt.Errorf("keyed: frugal targets %v vs %v: %w", a.phi, b.phi, ErrMismatchedConfig)
	}
	out := &Snapshot[K, T]{
		phi:        a.phi,
		support:    a.support,
		n:          a.n + b.n,
		promotions: a.promotions + b.promotions,
		oracle:     frequency.MergeSnapshots(a.oracle, b.oracle),
	}
	if b.support > out.support {
		out.support = b.support
	}
	out.frugal = make([]FrugalEntry[K, T], 0, len(a.frugal)+len(b.frugal))
	out.promo = make([]PromotedEntry[K, T], 0, len(a.promo)+len(b.promo))

	// Walk the union of both key spaces in ascending ordered-key order: each
	// side exposes at most one entry per key (tiers are disjoint within a
	// snapshot), so a four-cursor merge visits every key exactly once and
	// emits the output tiers already sorted.
	fa, pa, fb, pb := 0, 0, 0, 0
	for fa < len(a.frugal) || pa < len(a.promo) || fb < len(b.frugal) || pb < len(b.promo) {
		k := nextKey(a, b, fa, pa, fb, pb)
		var (
			sumA, sumB *summary.Summary[T]
			frA, frB   *FrugalEntry[K, T]
		)
		if fa < len(a.frugal) && a.frugal[fa].Key == k {
			frA = &a.frugal[fa]
			fa++
		}
		if pa < len(a.promo) && a.promo[pa].Key == k {
			sumA = a.promo[pa].Sum
			pa++
		}
		if fb < len(b.frugal) && b.frugal[fb].Key == k {
			frB = &b.frugal[fb]
			fb++
		}
		if pb < len(b.promo) && b.promo[pb].Key == k {
			sumB = b.promo[pb].Sum
			pb++
		}
		if sumA == nil && sumB == nil {
			out.frugal = append(out.frugal, mergeFrugal(k, frA, frB))
			continue
		}
		if frA != nil {
			sumA = pointMass[T](frA.Est, frA.Cnt, epsOf(sumB))
		}
		if frB != nil {
			sumB = pointMass[T](frB.Est, frB.Cnt, epsOf(sumA))
		}
		merged := sumA
		if sumA == nil {
			merged = sumB
		} else if sumB != nil {
			merged = summary.Merge(sumA, sumB)
		}
		out.promo = append(out.promo, PromotedEntry[K, T]{Key: k, Sum: merged})
	}
	return out, nil
}

// nextKey returns the smallest pending key across all four cursors.
func nextKey[K sorter.Value, T sorter.Value](a, b *Snapshot[K, T], fa, pa, fb, pb int) K {
	var best K
	have := false
	consider := func(k K) {
		if !have || sorter.OrderedKey(k) < sorter.OrderedKey(best) {
			best, have = k, true
		}
	}
	if fa < len(a.frugal) {
		consider(a.frugal[fa].Key)
	}
	if pa < len(a.promo) {
		consider(a.promo[pa].Key)
	}
	if fb < len(b.frugal) {
		consider(b.frugal[fb].Key)
	}
	if pb < len(b.promo) {
		consider(b.promo[pb].Key)
	}
	return best
}

// mergeFrugal resolves two frugal-tier entries of the same key (either may
// be nil): the tracker backed by more observations wins, ties breaking
// toward the smaller estimate in ordered-key space then the smaller control
// byte, and the backing counts add.
func mergeFrugal[K sorter.Value, T sorter.Value](k K, a, b *FrugalEntry[K, T]) FrugalEntry[K, T] {
	if a == nil {
		return *b
	}
	if b == nil {
		return *a
	}
	win := a
	switch {
	case b.Cnt > a.Cnt:
		win = b
	case b.Cnt == a.Cnt:
		ka, kb := sorter.OrderedKey(a.Est), sorter.OrderedKey(b.Est)
		if kb < ka || (kb == ka && b.Ctl < a.Ctl) {
			win = b
		}
	}
	return FrugalEntry[K, T]{Key: k, Est: win.Est, Ctl: win.Ctl, Cnt: a.Cnt + b.Cnt}
}

// pointMass is the summary standing in for a frugal tracker when its key is
// promoted on the other side of a merge: the estimate as a single entry
// spanning ranks [1, cnt].
func pointMass[T sorter.Value](est T, cnt int64, eps float64) *summary.Summary[T] {
	if cnt < 1 {
		cnt = 1
	}
	return &summary.Summary[T]{
		Entries: []summary.Entry[T]{{V: est, RMin: 1, RMax: cnt}},
		N:       cnt,
		Eps:     eps,
	}
}

// epsOf reports a summary's error bound, defaulting to 0 for nil — the
// point mass carries no eps budget of its own.
func epsOf[T sorter.Value](s *summary.Summary[T]) float64 {
	if s == nil {
		return 0
	}
	return s.Eps
}
