package keyed

import (
	"gpustream/internal/frequency"
	"gpustream/internal/frugal"
	"gpustream/internal/sorter"
	"gpustream/internal/summary"
	"gpustream/internal/wire"
)

// Wire layout of a keyed Snapshot (family tag wire.FamilyKeyed). The header
// tag byte identifies T (the value type); the key type gets a second tag
// byte of its own immediately after the header — the keyed container is the
// one family instantiated over two value types:
//
//	header      wire.HeaderSize bytes
//	ktag        uint8 (key value-type tag)
//	phi         float64
//	support     float64
//	n           int64
//	promotions  int64
//	fcount      uint32
//	frugal      fcount × (key[4|8] + est[4|8] + ctl uint8 + cnt int64)
//	pcount      uint32
//	promoted    pcount × (key[4|8] + embedded summary)
//	olen        uint32
//	oracle      olen bytes (a complete FamilyFrequency snapshot blob over K)
//
// Both tiers are strictly key-ascending with disjoint key sets, frugal
// control bytes obey the tracker invariants (never fresh — a tracked key
// was observed), and the nested oracle blob revalidates under the frequency
// family's own decoder. See DESIGN.md section 13.

// MarshalBinary implements encoding.BinaryMarshaler: the versioned,
// endian-stable wire encoding of the snapshot. The encoding is canonical —
// unmarshal then marshal reproduces the bytes exactly.
func (s *Snapshot[K, T]) MarshalBinary() ([]byte, error) {
	oracle, err := s.oracle.MarshalBinary()
	if err != nil {
		return nil, err
	}
	ksz, tsz := wire.ValueSize[K](), wire.ValueSize[T]()
	size := wire.HeaderSize + 1 + 8 + 8 + 8 + 8 +
		4 + len(s.frugal)*(ksz+tsz+1+8) +
		4 + 4 + len(oracle)
	for _, p := range s.promo {
		size += ksz + summary.EncodedSize(p.Sum)
	}
	b := make([]byte, 0, size)
	b = wire.AppendHeader(b, wire.FamilyKeyed, wire.TagOf[T]())
	b = wire.AppendU8(b, uint8(wire.TagOf[K]()))
	b = wire.AppendF64(b, s.phi)
	b = wire.AppendF64(b, s.support)
	b = wire.AppendI64(b, s.n)
	b = wire.AppendI64(b, s.promotions)
	b = wire.AppendU32(b, uint32(len(s.frugal)))
	for _, f := range s.frugal {
		b = wire.AppendValue(b, f.Key)
		b = wire.AppendValue(b, f.Est)
		b = wire.AppendU8(b, f.Ctl)
		b = wire.AppendI64(b, f.Cnt)
	}
	b = wire.AppendU32(b, uint32(len(s.promo)))
	for _, p := range s.promo {
		b = wire.AppendValue(b, p.Key)
		b = summary.AppendBinary(b, p.Sum)
	}
	b = wire.AppendU32(b, uint32(len(oracle)))
	return append(b, oracle...), nil
}

// UnmarshalSnapshot decodes a keyed snapshot marshaled by any process. Both
// instantiation types must match the blob's two tag bytes. Every failure —
// truncation, bad header, mismatched tags, overflowed lengths, violated
// tier invariants, a corrupt nested oracle — returns a wrapped wire
// sentinel error; it never panics and never allocates from an unvalidated
// length field.
func UnmarshalSnapshot[K sorter.Value, T sorter.Value](data []byte) (*Snapshot[K, T], error) {
	r := wire.NewReader(data)
	if err := r.Header(wire.FamilyKeyed, wire.TagOf[T]()); err != nil {
		return nil, err
	}
	ktag, err := r.U8()
	if err != nil {
		return nil, err
	}
	if got, want := wire.Tag(ktag), wire.TagOf[K](); got != want {
		return nil, wire.Corruptf("keyed: snapshot carries %v keys (tag byte 0x%02X), want %v", got, ktag, want)
	}
	s := &Snapshot[K, T]{}
	if s.phi, err = r.F64(); err != nil {
		return nil, err
	}
	if !(s.phi >= 0 && s.phi <= 1) { // also rejects NaN
		return nil, wire.Corruptf("keyed: frugal target %v out of [0, 1]", s.phi)
	}
	if s.support, err = r.F64(); err != nil {
		return nil, err
	}
	if !(s.support > 0 && s.support < 1) {
		return nil, wire.Corruptf("keyed: promotion support %v out of (0, 1)", s.support)
	}
	if s.n, err = r.I64(); err != nil {
		return nil, err
	}
	if s.n < 0 {
		return nil, wire.Corruptf("keyed: negative observation count %d", s.n)
	}
	if s.promotions, err = r.I64(); err != nil {
		return nil, err
	}
	if s.promotions < 0 {
		return nil, wire.Corruptf("keyed: negative promotion count %d", s.promotions)
	}
	ksz, tsz := wire.ValueSize[K](), wire.ValueSize[T]()
	fcount, err := r.Count(ksz + tsz + 1 + 8)
	if err != nil {
		return nil, err
	}
	if fcount > 0 {
		s.frugal = make([]FrugalEntry[K, T], fcount)
	}
	for i := range s.frugal {
		f := &s.frugal[i]
		if f.Key, err = wire.ReadValue[K](r); err != nil {
			return nil, err
		}
		if i > 0 && !(sorter.OrderedKey(s.frugal[i-1].Key) < sorter.OrderedKey(f.Key)) {
			return nil, wire.Corruptf("keyed: frugal tier not strictly key-ascending at %d", i)
		}
		if f.Est, err = wire.ReadValue[T](r); err != nil {
			return nil, err
		}
		if f.Ctl, err = r.U8(); err != nil {
			return nil, err
		}
		if !frugal.ValidCtl(f.Ctl) || frugal.Fresh(f.Ctl) {
			return nil, wire.Corruptf("keyed: frugal entry %d control byte 0x%02X invalid", i, f.Ctl)
		}
		if f.Cnt, err = r.I64(); err != nil {
			return nil, err
		}
		if f.Cnt < 1 {
			return nil, wire.Corruptf("keyed: frugal entry %d backing count %d < 1", i, f.Cnt)
		}
	}
	pcount, err := r.Count(ksz + 8 + 8 + 4)
	if err != nil {
		return nil, err
	}
	if pcount > 0 {
		s.promo = make([]PromotedEntry[K, T], pcount)
	}
	for i := range s.promo {
		p := &s.promo[i]
		if p.Key, err = wire.ReadValue[K](r); err != nil {
			return nil, err
		}
		if i > 0 && !(sorter.OrderedKey(s.promo[i-1].Key) < sorter.OrderedKey(p.Key)) {
			return nil, wire.Corruptf("keyed: promoted tier not strictly key-ascending at %d", i)
		}
		if p.Sum, err = summary.Decode[T](r); err != nil {
			return nil, err
		}
		if p.Sum.N < 1 {
			return nil, wire.Corruptf("keyed: promoted key %d summary covers no observations", i)
		}
	}
	// Tier disjointness: both lists are sorted, so one linear pass suffices.
	fi := 0
	for _, p := range s.promo {
		for fi < len(s.frugal) && sorter.OrderedKey(s.frugal[fi].Key) < sorter.OrderedKey(p.Key) {
			fi++
		}
		if fi < len(s.frugal) && s.frugal[fi].Key == p.Key {
			return nil, wire.Corruptf("keyed: key in both tiers")
		}
	}
	olen, err := r.Count(1)
	if err != nil {
		return nil, err
	}
	blob, err := r.Bytes(olen)
	if err != nil {
		return nil, err
	}
	if s.oracle, err = frequency.UnmarshalSnapshot[K](blob); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}
