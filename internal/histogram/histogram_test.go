package histogram

import (
	"testing"
	"testing/quick"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/sorter"
	"gpustream/internal/stream"
)

func TestFromSortedBasics(t *testing.T) {
	bins := FromSorted([]float32{1, 1, 2, 5, 5, 5})
	want := []Bin[float32]{{1, 2}, {2, 1}, {5, 3}}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v", bins)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
}

func TestFromSortedEmpty(t *testing.T) {
	if bins := FromSorted[float32](nil); bins != nil {
		t.Fatalf("FromSorted[float32](nil) = %v", bins)
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromSorted([]float32{2, 1})
}

func TestFromSortedQuick(t *testing.T) {
	prop := func(raw []uint8) bool {
		data := make([]float32, len(raw))
		counts := map[float32]int64{}
		for i, v := range raw {
			data[i] = float32(v)
			counts[float32(v)]++
		}
		cpusort.Quicksort(data)
		bins := FromSorted(data)
		if Total(bins) != int64(len(raw)) {
			return false
		}
		for i, b := range bins {
			if counts[b.Value] != b.Count {
				return false
			}
			if i > 0 && bins[i-1].Value >= b.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeWithBothBackends(t *testing.T) {
	data := stream.UniformInts(5000, 50, 3)
	exact := map[float32]int64{}
	for _, v := range data {
		exact[v]++
	}
	backends := []sorter.Sorter[float32]{cpusort.QuicksortSorter[float32]{}, gpusort.NewSorter[float32]()}
	for _, s := range backends {
		win := append([]float32(nil), data...)
		bins := Compute(win, s)
		if Total(bins) != 5000 {
			t.Fatalf("%s: total %d", s.Name(), Total(bins))
		}
		for _, b := range bins {
			if exact[b.Value] != b.Count {
				t.Fatalf("%s: count for %v = %d, want %d", s.Name(), b.Value, b.Count, exact[b.Value])
			}
		}
	}
}

func TestMergeBins(t *testing.T) {
	a := []Bin[float32]{{1, 2}, {3, 1}}
	b := []Bin[float32]{{2, 5}, {3, 4}, {7, 1}}
	got := Merge(a, b)
	want := []Bin[float32]{{1, 2}, {2, 5}, {3, 5}, {7, 1}}
	if len(got) != len(want) {
		t.Fatalf("Merge = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge = %v, want %v", got, want)
		}
	}
	if Total(got) != Total(a)+Total(b) {
		t.Fatal("Merge lost mass")
	}
}

func TestMergeEmpty(t *testing.T) {
	a := []Bin[float32]{{1, 1}}
	if got := Merge(a, nil); len(got) != 1 || got[0] != a[0] {
		t.Fatalf("Merge with nil = %v", got)
	}
	if got := Merge[float32](nil, nil); len(got) != 0 {
		t.Fatalf("Merge(nil,nil) = %v", got)
	}
}

func TestEquiDepth(t *testing.T) {
	sorted := stream.Sorted(100)
	got := EquiDepth(sorted, 4)
	want := []float32{24, 49, 74, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EquiDepth = %v, want %v", got, want)
		}
	}
	if EquiDepth[float32](nil, 4) != nil || EquiDepth(sorted, 0) != nil {
		t.Fatal("degenerate EquiDepth not nil")
	}
}

func TestStreamingEquiDepthBuckets(t *testing.T) {
	h := NewStreamingEquiDepth(10, 0.005, cpusort.QuicksortSorter[float32]{})
	h.ProcessSlice(stream.Uniform(100000, 7))
	buckets := h.Buckets()
	if len(buckets) != 10 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	var total int64
	for i, b := range buckets {
		total += b.Count
		// Uniform[0,1): bucket i spans roughly [i/10, (i+1)/10).
		wantHi := float32(i+1) / 10
		if b.Hi < wantHi-0.02 || b.Hi > wantHi+0.02 {
			t.Fatalf("bucket %d hi = %v, want ~%v", i, b.Hi, wantHi)
		}
		if b.Lo > b.Hi {
			t.Fatalf("bucket %d inverted: %+v", i, b)
		}
	}
	if total != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.Count())
	}
}

func TestStreamingEquiDepthSelectivity(t *testing.T) {
	h := NewStreamingEquiDepth(20, 0.005, cpusort.QuicksortSorter[float32]{})
	h.ProcessSlice(stream.Uniform(100000, 8))
	for _, tt := range []float32{0.1, 0.33, 0.5, 0.9} {
		got := h.Selectivity(tt)
		if got < float64(tt)-0.07 || got > float64(tt)+0.07 {
			t.Fatalf("Selectivity(%v) = %v", tt, got)
		}
	}
	if got := h.Selectivity(-1); got != 0 {
		t.Fatalf("Selectivity below min = %v", got)
	}
	if got := h.Selectivity(2); got < 0.99 {
		t.Fatalf("Selectivity above max = %v", got)
	}
}

func TestStreamingEquiDepthSkewed(t *testing.T) {
	// On a skewed stream the buckets must narrow around the mass.
	h := NewStreamingEquiDepth(10, 0.005, cpusort.QuicksortSorter[float32]{})
	h.ProcessSlice(stream.Zipf(50000, 1.3, 1000, 9))
	buckets := h.Buckets()
	// Over half the mass of a Zipf(1.3) stream sits on the smallest few
	// items, so early buckets must be far narrower than late ones.
	if buckets[0].Hi-buckets[0].Lo >= buckets[9].Hi-buckets[9].Lo {
		t.Fatalf("skew not reflected: first %+v last %+v", buckets[0], buckets[9])
	}
}

func TestStreamingEquiDepthGPUMatchesCPU(t *testing.T) {
	data := stream.Gaussian(20000, 10, 3, 10)
	cpu := NewStreamingEquiDepth(8, 0.01, cpusort.QuicksortSorter[float32]{})
	gpu := NewStreamingEquiDepth(8, 0.01, gpusort.NewSorter[float32]())
	cpu.ProcessSlice(data)
	gpu.ProcessSlice(data)
	cb, gb := cpu.Buckets(), gpu.Buckets()
	for i := range cb {
		if cb[i] != gb[i] {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, cb[i], gb[i])
		}
	}
}

func TestStreamingEquiDepthPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewStreamingEquiDepth(0, 0.1, cpusort.QuicksortSorter[float32]{}) },
		func() { NewStreamingEquiDepth(4, 0.1, cpusort.QuicksortSorter[float32]{}).Buckets() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}
