package histogram

import (
	"fmt"

	"gpustream/internal/quantile"
	"gpustream/internal/sorter"
)

// StreamingEquiDepth maintains an approximate k-bucket equi-depth histogram
// over a data stream — the "dynamic histogram structures in a continuous
// data stream" the paper's Section 3.2 describes as a major consumer of
// quantile machinery. Bucket boundaries are the k-quantiles of the stream
// so far, answered by the library's window-based quantile estimator, which
// means every histogram refresh is a batch of quantile queries over the
// same GPU-sorted summary.
type StreamingEquiDepth[T sorter.Value] struct {
	k   int
	eps float64
	est *quantile.Estimator[T]
}

// Bucket is one range of a streaming equi-depth histogram.
type Bucket[T sorter.Value] struct {
	Lo, Hi T
	Count  int64 // approximate element count (N/k by construction)
}

// NewStreamingEquiDepth returns a k-bucket histogram with boundary rank
// error eps, sorting windows with s.
func NewStreamingEquiDepth[T sorter.Value](k int, eps float64, s sorter.Sorter[T]) *StreamingEquiDepth[T] {
	if k <= 0 {
		panic(fmt.Sprintf("histogram: k=%d buckets", k))
	}
	return &StreamingEquiDepth[T]{k: k, eps: eps, est: quantile.NewEstimator(eps, 0, s)}
}

// Process consumes one stream element.
func (h *StreamingEquiDepth[T]) Process(v T) { h.est.Process(v) }

// ProcessSlice consumes a batch of elements.
func (h *StreamingEquiDepth[T]) ProcessSlice(data []T) { h.est.ProcessSlice(data) }

// Count reports the number of processed elements.
func (h *StreamingEquiDepth[T]) Count() int64 { return h.est.Count() }

// Buckets materializes the current histogram: k buckets whose boundaries
// are the stream's eps-approximate i/k quantiles and whose counts are N/k
// (exact up to boundary rounding). It panics on an empty stream.
func (h *StreamingEquiDepth[T]) Buckets() []Bucket[T] {
	n := h.est.Count()
	if n == 0 {
		panic("histogram: Buckets on empty stream")
	}
	out := make([]Bucket[T], h.k)
	lo := h.est.Query(0)
	per := n / int64(h.k)
	for i := 0; i < h.k; i++ {
		hi := h.est.Query(float64(i+1) / float64(h.k))
		count := per
		if i == h.k-1 {
			count = n - per*int64(h.k-1) // absorb rounding in the last bucket
		}
		out[i] = Bucket[T]{Lo: lo, Hi: hi, Count: count}
		lo = hi
	}
	return out
}

// Selectivity estimates the fraction of stream elements with value <= t,
// the classic histogram use in query optimization. Error is bounded by
// eps plus one bucket width of probability mass (1/k).
func (h *StreamingEquiDepth[T]) Selectivity(t T) float64 {
	buckets := h.Buckets()
	n := float64(h.est.Count())
	cum := 0.0
	for _, b := range buckets {
		if t >= b.Hi {
			cum += float64(b.Count)
			continue
		}
		if t > b.Lo && b.Hi > b.Lo {
			frac := float64(t-b.Lo) / float64(b.Hi-b.Lo)
			cum += frac * float64(b.Count)
		}
		break
	}
	return cum / n
}
