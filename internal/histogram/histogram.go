// Package histogram computes the per-window histograms at the heart of the
// paper's summary construction (Section 3.2): for each window the elements
// are ordered by sorting, equal values are collapsed into (value, frequency)
// bins, and either the full histogram (frequency estimation) or a sampled
// subset with rank bounds (quantile estimation) feeds the merge step.
package histogram

import (
	"gpustream/internal/sorter"
)

// Bin is one histogram entry: a distinct value and its occurrence count.
type Bin[T sorter.Value] struct {
	Value T
	Count int64
}

// FromSorted collapses an ascending slice into bins. It panics if data is
// not sorted, since that indicates the sorting backend is broken.
func FromSorted[T sorter.Value](data []T) []Bin[T] {
	if len(data) == 0 {
		return nil
	}
	return AppendSorted(make([]Bin[T], 0, 64), data)
}

// AppendSorted collapses an ascending slice into bins appended to dst,
// which callers on the hot ingestion path reuse (dst[:0]) so steady-state
// windows allocate nothing. Like FromSorted it panics on unsorted input.
func AppendSorted[T sorter.Value](dst []Bin[T], data []T) []Bin[T] {
	if len(data) == 0 {
		return dst
	}
	cur := Bin[T]{Value: data[0], Count: 1}
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			panic("histogram: input not sorted")
		}
		if data[i] == cur.Value {
			cur.Count++
			continue
		}
		dst = append(dst, cur)
		cur = Bin[T]{Value: data[i], Count: 1}
	}
	return append(dst, cur)
}

// Compute sorts window in place with s and returns its histogram. This is
// the paper's "histogram computation" operation; the sort inside it is where
// 70-95% of the CPU pipeline's time goes, and what the GPU accelerates.
func Compute[T sorter.Value](window []T, s sorter.Sorter[T]) []Bin[T] {
	s.Sort(window)
	return FromSorted(window)
}

// Total reports the number of stream elements the bins represent.
func Total[T sorter.Value](bins []Bin[T]) int64 {
	var n int64
	for _, b := range bins {
		n += b.Count
	}
	return n
}

// Merge combines two value-ascending bin lists into one, summing counts of
// equal values. Both inputs must be sorted by value; the result is too.
func Merge[T sorter.Value](a, b []Bin[T]) []Bin[T] {
	out := make([]Bin[T], 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Value < b[j].Value:
			out = append(out, a[i])
			i++
		case a[i].Value > b[j].Value:
			out = append(out, b[j])
			j++
		default:
			out = append(out, Bin[T]{Value: a[i].Value, Count: a[i].Count + b[j].Count})
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// EquiDepth returns k bucket boundaries that split the sorted data into
// approximately equal-count ranges — the classic database histogram the
// paper's Section 3.2 references for tracking data distributions. The
// boundaries are the values at ranks i*n/k for i = 1..k.
func EquiDepth[T sorter.Value](sorted []T, k int) []T {
	if k <= 0 || len(sorted) == 0 {
		return nil
	}
	out := make([]T, k)
	n := len(sorted)
	for i := 1; i <= k; i++ {
		idx := i*n/k - 1
		if idx < 0 {
			idx = 0
		}
		out[i-1] = sorted[idx]
	}
	return out
}
