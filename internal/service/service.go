// Package service is the multi-tenant streaming estimation service behind
// cmd/streamd: a long-running stdlib-HTTP daemon where tenants create named
// streams from declarative gpustream.Spec documents, POST batches of values
// into a bounded-queue ingestion path, and GET eps-approximate answers
// served from copy-on-write Snapshot() views so queries never block
// ingestion.
//
// The architecture follows the processor shape of nuclio-style event
// engines: an event source (the HTTP handlers), a per-stream worker (one
// ingest goroutine draining a bounded batch queue into the estimator —
// which may itself fan out across K shard workers or staged async
// executors), and metric sinks (/statsz exports every estimator's
// pipeline.Stats plus service counters; /healthz reports liveness and
// drain state). DESIGN.md section 14 documents the registry lifecycle and
// drain semantics.
package service

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gpustream"
)

// Config tunes the service. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// MaxStreams caps live streams across all tenants; creating one more
	// evicts the least-recently-used stream (drain + spill) first.
	// Default 4096.
	MaxStreams int
	// IdleTTL evicts streams that have seen no ingest or query for this
	// long. Zero disables idle eviction.
	IdleTTL time.Duration
	// SweepInterval is the idle-eviction janitor cadence. Defaults to
	// IdleTTL/4 (clamped to [1s, 1m]) when IdleTTL is set.
	SweepInterval time.Duration
	// QueueDepth bounds each stream's ingest queue, in batches. A POST
	// against a full queue blocks — backpressure — until the writer
	// catches up or the request context expires. Default 64.
	QueueDepth int
	// MaxBatchRows rejects POST batches larger than this many rows with
	// 413. Default 1 << 20.
	MaxBatchRows int
	// MaxBodyBytes caps request bodies. Default 32 MiB.
	MaxBodyBytes int64
	// DrainTimeout is the default deadline for draining one stream — on
	// DELETE (overridable per request) and per stream during shutdown.
	// Default 30s.
	DrainTimeout time.Duration
	// SpillDir, when non-empty, receives every drained stream's final
	// snapshot as a <tenant>__<stream>.snap file in the versioned wire
	// format (gpustream.MarshalSnapshot), so a restart or a downstream
	// merge tree (cmd/snapmerge) can pick up where the daemon left off.
	SpillDir string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxStreams <= 0 {
		c.MaxStreams = 4096
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatchRows <= 0 {
		c.MaxBatchRows = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.IdleTTL > 0 && c.SweepInterval <= 0 {
		c.SweepInterval = c.IdleTTL / 4
		if c.SweepInterval < time.Second {
			c.SweepInterval = time.Second
		}
		if c.SweepInterval > time.Minute {
			c.SweepInterval = time.Minute
		}
	}
	return c
}

// counters are the service-level metric sink exported by /statsz.
type counters struct {
	requests      atomic.Int64 // HTTP requests served
	ingestRows    atomic.Int64 // rows accepted into ingest queues
	ingestBatches atomic.Int64 // batches accepted
	enqueueStall  atomic.Int64 // ns POSTs spent blocked on full queues
	evictions     atomic.Int64 // LRU (capacity) evictions
	idleEvictions atomic.Int64 // idle-TTL evictions
	drained       atomic.Int64 // streams drained (DELETE, eviction, shutdown)
	spills        atomic.Int64 // snapshots spilled to SpillDir
}

// Server is the multi-tenant streaming service over element type T. It
// implements http.Handler; bind it to an http.Server (cmd/streamd) or an
// httptest server. Create with New, stop with Drain.
type Server[T gpustream.Value] struct {
	cfg   Config
	reg   *registry[T]
	mux   *http.ServeMux
	start time.Time

	draining atomic.Bool
	ctr      counters

	janitorStop chan struct{}
	janitorWG   sync.WaitGroup

	drainOnce sync.Once
	drainErr  error
}

// New returns a ready-to-serve Server with cfg's defaults applied. If
// IdleTTL is set, an eviction janitor goroutine runs until Drain.
func New[T gpustream.Value](cfg Config) *Server[T] {
	s := &Server[T]{
		cfg:         cfg.withDefaults(),
		start:       time.Now(),
		janitorStop: make(chan struct{}),
	}
	s.reg = newRegistry[T](&s.cfg, &s.ctr)
	s.mux = s.routes()
	if s.cfg.IdleTTL > 0 {
		s.janitorWG.Add(1)
		go s.janitor()
	}
	return s
}

// ServeHTTP dispatches to the service routes. During drain, stream
// endpoints answer 503 while /healthz and /statsz keep reporting.
func (s *Server[T]) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.ctr.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// janitor periodically evicts idle streams.
func (s *Server[T]) janitor() {
	defer s.janitorWG.Done()
	ticker := time.NewTicker(s.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-ticker.C:
			s.reg.sweepIdle(s.cfg.IdleTTL)
		}
	}
}

// Drain gracefully stops the service: new stream operations are rejected,
// the idle janitor stops, and every live stream is drained concurrently —
// ingest queue closed and flushed through the writer, the estimator closed
// via CloseContext (honoring ctx) where available, and the final snapshot
// spilled to SpillDir. Drain is idempotent; concurrent and subsequent calls
// return the first run's error. The ctx deadline bounds the whole drain;
// cmd/streamd calls this on SIGTERM.
func (s *Server[T]) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.janitorStop)
		s.janitorWG.Wait()
		s.drainErr = s.reg.drainAll(ctx)
	})
	return s.drainErr
}

// Close drains with the configured DrainTimeout.
func (s *Server[T]) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Drain(ctx)
}

// Streams reports the number of live streams.
func (s *Server[T]) Streams() int { return s.reg.len() }

// validName reports whether a tenant or stream name is acceptable: 1-64
// characters from [A-Za-z0-9_-], so names embed safely in URLs, JSON, and
// spill file names.
func validName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// streamKey is the registry key of one tenant's stream.
func streamKey(tenant, stream string) string { return tenant + "/" + stream }

// errConflict distinguishes a PUT with a different spec from other errors.
var errConflict = fmt.Errorf("service: stream exists with a different spec")

// errClosing is returned by enqueue once a stream is draining.
var errClosing = fmt.Errorf("service: stream is draining")
