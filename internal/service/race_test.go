package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"gpustream"
	"gpustream/internal/service"
)

// TestServiceConcurrentIngestAndQuery drives N tenant writers against M
// readers under the race detector: every ingest goes through the bounded
// queue while readers hit /quantile and /statsz against live
// copy-on-write snapshots. Nothing may fail and no access may race.
func TestServiceConcurrentIngestAndQuery(t *testing.T) {
	_, ts := newTestServer(t, service.Config{QueueDepth: 4})
	client := ts.Client()

	const (
		tenants          = 4
		batchesPerTenant = 25
		batchRows        = 200
		readers          = 3
	)
	spec := gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01, Phis: []float64{0.5}}
	urls := make([]string, tenants)
	for i := range urls {
		urls[i] = fmt.Sprintf("%s/v1/streams/tenant%d/s", ts.URL, i)
		if code, _ := do(t, client, "PUT", urls[i], "application/json", specBody(t, spec)); code != http.StatusCreated {
			t.Fatalf("PUT tenant%d = %d", i, code)
		}
	}

	vals := make([]float32, batchRows)
	for i := range vals {
		vals[i] = float32(i)
	}
	blob, _ := json.Marshal(vals)

	var wg sync.WaitGroup
	var failures atomic.Int64
	stop := make(chan struct{})

	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for b := 0; b < batchesPerTenant; b++ {
				req, _ := http.NewRequest("POST", url+"/values", bytes.NewReader(blob))
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					failures.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					failures.Add(1)
				}
			}
		}(urls[i])
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				var url string
				if n%3 == 2 {
					url = ts.URL + "/statsz"
				} else {
					url = urls[(i+n)%tenants] + "/quantile"
				}
				resp, err := client.Get(url)
				if err != nil {
					failures.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
			}
		}(i)
	}

	// Release the readers once every writer POST is observable in /statsz,
	// then wait for everything.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	<-waitWriters(urls, client, tenants*batchesPerTenant*batchRows)
	close(stop)
	<-done

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed under concurrency", n)
	}

	// Every queued batch must land: sync-flush each tenant then check counts.
	for i, url := range urls {
		if code, _ := do(t, client, "POST", url+"/values?sync=1", "application/json", []byte(`[0]`)); code != http.StatusOK {
			t.Fatalf("flush tenant%d = %d", i, code)
		}
		_, body := do(t, client, "GET", url, "", nil)
		want := int64(batchesPerTenant*batchRows + 1)
		if got := int64(body["count"].(float64)); got != want {
			t.Errorf("tenant%d count = %d, want %d", i, got, want)
		}
	}
}

// waitWriters polls /statsz until ingest_rows reaches want.
func waitWriters(urls []string, client *http.Client, want int) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		statsz := urls[0][:len(urls[0])-len("/v1/streams/tenant0/s")] + "/statsz"
		for {
			resp, err := client.Get(statsz)
			if err != nil {
				return
			}
			var body struct {
				IngestRows int64 `json:"ingest_rows"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err != nil || body.IngestRows >= int64(want) {
				return
			}
		}
	}()
	return ch
}

// TestServiceDrainDuringLoad races Drain against in-flight POSTs: every
// request must resolve as accepted (202/200) or cleanly rejected
// (409 closing / 503 draining) — never a panic, hang, or torn write.
func TestServiceDrainDuringLoad(t *testing.T) {
	svc := service.New[float32](service.Config{QueueDepth: 2})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := ts.Client()

	url := ts.URL + "/v1/streams/t/s"
	spec := gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01}
	if code, _ := do(t, client, "PUT", url, "application/json", specBody(t, spec)); code != http.StatusCreated {
		t.Fatal("PUT failed")
	}
	blob, _ := json.Marshal(make([]float32, 100))

	var wg sync.WaitGroup
	var accepted, rejected, unexpected atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < 50; b++ {
				req, _ := http.NewRequest("POST", url+"/values", bytes.NewReader(blob))
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					unexpected.Add(1)
					continue
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted, http.StatusOK:
					accepted.Add(1)
				case http.StatusConflict, http.StatusServiceUnavailable:
					rejected.Add(1)
				default:
					unexpected.Add(1)
				}
			}
		}()
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("drain during load: %v", err)
	}
	wg.Wait()

	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d requests resolved with unexpected status/error", n)
	}
	t.Logf("drain race: %d accepted, %d rejected", accepted.Load(), rejected.Load())
}
