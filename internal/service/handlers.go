package service

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gpustream"
	"gpustream/internal/sorter"
)

// routes builds the service mux. Method-and-pattern routing is stdlib
// (net/http pattern syntax); {tenant} and {stream} are validated by name
// before touching the registry.
func (s *Server[T]) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/streams/{tenant}/{stream}", s.stream(s.handlePut))
	mux.HandleFunc("DELETE /v1/streams/{tenant}/{stream}", s.stream(s.handleDelete))
	mux.HandleFunc("GET /v1/streams/{tenant}/{stream}", s.stream(s.handleInfo))
	mux.HandleFunc("POST /v1/streams/{tenant}/{stream}/values", s.stream(s.handleIngest))
	mux.HandleFunc("GET /v1/streams/{tenant}/{stream}/quantile", s.stream(s.handleQuantile))
	mux.HandleFunc("GET /v1/streams/{tenant}/{stream}/heavyhitters", s.stream(s.handleHeavyHitters))
	mux.HandleFunc("GET /v1/streams/{tenant}/{stream}/frequency", s.stream(s.handleFrequency))
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// stream wraps a stream-scoped handler with name validation and the drain
// gate: once shutdown starts, stream operations answer 503 so a fronting
// load balancer fails over, while /healthz and /statsz keep reporting.
func (s *Server[T]) stream(h func(w http.ResponseWriter, r *http.Request, tenant, stream string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeErr(w, http.StatusServiceUnavailable, "service is draining")
			return
		}
		tenant, stream := r.PathValue("tenant"), r.PathValue("stream")
		if !validName(tenant) || !validName(stream) {
			writeErr(w, http.StatusBadRequest, "tenant and stream names must be 1-64 characters of [A-Za-z0-9_-]")
			return
		}
		h(w, r, tenant, stream)
	}
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	_ = enc.Encode(v)
}

// handlePut creates (or idempotently re-asserts) a stream from the JSON
// spec document in the body: 201 on creation, 200 when an identical stream
// already exists, 409 when the existing spec differs, 400 on a bad spec.
func (s *Server[T]) handlePut(w http.ResponseWriter, r *http.Request, tenant, stream string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "spec body: %v", err)
		return
	}
	spec, err := gpustream.ParseSpec(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, created, err := s.reg.create(tenant, stream, spec)
	switch {
	case errors.Is(err, errConflict):
		writeErr(w, http.StatusConflict, "stream %s/%s exists with a different spec", tenant, stream)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, struct {
		Tenant  string         `json:"tenant"`
		Stream  string         `json:"stream"`
		Created bool           `json:"created"`
		Spec    gpustream.Spec `json:"spec"`
	}{tenant, stream, created, e.spec})
}

// handleDelete drains the stream — queue flushed, estimator closed via its
// context-aware drain under the request deadline (?timeout= overrides the
// configured default) — spills its final snapshot, and removes it.
func (s *Server[T]) handleDelete(w http.ResponseWriter, r *http.Request, tenant, stream string) {
	e, ok := s.reg.remove(tenant, stream)
	if !ok {
		writeErr(w, http.StatusNotFound, "no stream %s/%s", tenant, stream)
		return
	}
	timeout := s.cfg.DrainTimeout
	if arg := r.URL.Query().Get("timeout"); arg != "" {
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "bad timeout %q", arg)
			return
		}
		timeout = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.reg.finishContext(ctx, e); err != nil {
		writeErr(w, http.StatusInternalServerError, "drain %s/%s: %v", tenant, stream, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Tenant string `json:"tenant"`
		Stream string `json:"stream"`
		Rows   int64  `json:"rows"`
		Count  int64  `json:"count"`
	}{tenant, stream, e.rows.Load(), e.est.Count()})
}

// handleInfo reports one stream's spec, counts, and live pipeline stats.
func (s *Server[T]) handleInfo(w http.ResponseWriter, r *http.Request, tenant, stream string) {
	e, ok := s.reg.get(tenant, stream)
	if !ok {
		writeErr(w, http.StatusNotFound, "no stream %s/%s", tenant, stream)
		return
	}
	writeJSON(w, http.StatusOK, s.streamStatus(e))
}

// handleIngest accepts one batch of values — a JSON array of numbers, or
// binary little-endian rows at the element type's native width — and hands
// it to the stream's writer through the bounded queue (blocking for
// backpressure under the request context). With ?sync=1 the request
// additionally waits until the batch is queryable. 202 on enqueue, 200 on
// sync completion, 413 for oversized batches.
func (s *Server[T]) handleIngest(w http.ResponseWriter, r *http.Request, tenant, stream string) {
	e, ok := s.reg.get(tenant, stream)
	if !ok {
		writeErr(w, http.StatusNotFound, "no stream %s/%s", tenant, stream)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "batch body: %v", err)
		return
	}
	var values []T
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		values, err = decodeBinary[T](body)
	} else {
		values, err = decodeJSONValues[T](body)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "batch: %v", err)
		return
	}
	if len(values) == 0 {
		writeErr(w, http.StatusBadRequest, "batch: no values")
		return
	}
	if len(values) > s.cfg.MaxBatchRows {
		writeErr(w, http.StatusRequestEntityTooLarge, "batch of %d rows exceeds the %d-row limit", len(values), s.cfg.MaxBatchRows)
		return
	}
	sync := r.URL.Query().Get("sync") != ""
	if err := e.enqueue(r.Context(), values, sync); err != nil {
		switch {
		case errors.Is(err, errClosing):
			writeErr(w, http.StatusConflict, "stream %s/%s is draining", tenant, stream)
		default:
			writeErr(w, http.StatusServiceUnavailable, "enqueue: %v", err)
		}
		return
	}
	s.ctr.ingestRows.Add(int64(len(values)))
	s.ctr.ingestBatches.Add(1)
	code := http.StatusAccepted
	if sync {
		code = http.StatusOK
	}
	writeJSON(w, code, struct {
		Rows   int    `json:"rows"`
		Queued bool   `json:"queued"`
		Stream string `json:"stream"`
	}{len(values), !sync, tenant + "/" + stream})
}

// quantileResult is one phi probe's answer.
type quantileResult struct {
	Phi   float64 `json:"phi"`
	Value float64 `json:"value"`
	OK    bool    `json:"ok"`
}

// handleQuantile answers phi-quantile probes from a copy-on-write snapshot:
// ?phi=0.5 or ?phi=0.25,0.5,0.99; with no phi parameter the spec's Phis
// (default 0.5) are probed. 400 when the family answers no quantiles.
func (s *Server[T]) handleQuantile(w http.ResponseWriter, r *http.Request, tenant, stream string) {
	e, ok := s.reg.get(tenant, stream)
	if !ok {
		writeErr(w, http.StatusNotFound, "no stream %s/%s", tenant, stream)
		return
	}
	if !e.spec.Family.AnswersQuantiles() {
		writeErr(w, http.StatusBadRequest, "family %v answers no quantile queries", e.spec.Family)
		return
	}
	phis := e.spec.Phis
	if arg := r.URL.Query().Get("phi"); arg != "" {
		phis = nil
		for _, part := range strings.Split(arg, ",") {
			phi, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || phi < 0 || phi > 1 {
				writeErr(w, http.StatusBadRequest, "bad phi %q (want a number in [0, 1])", part)
				return
			}
			phis = append(phis, phi)
		}
	}
	if len(phis) == 0 {
		phis = []float64{0.5}
	}
	snap := e.est.Snapshot()
	results := make([]quantileResult, len(phis))
	for i, phi := range phis {
		v, ok := snap.Quantile(phi)
		results[i] = quantileResult{Phi: phi, Value: float64(v), OK: ok}
	}
	writeJSON(w, http.StatusOK, struct {
		Count   int64            `json:"count"`
		Results []quantileResult `json:"results"`
	}{snap.Count(), results})
}

// heavyHitterItem is one reported heavy hitter.
type heavyHitterItem struct {
	Value float64 `json:"value"`
	Freq  int64   `json:"freq"`
}

// handleHeavyHitters reports every value above ?support= (default: the
// spec's Support) from a snapshot. 400 when the family answers no
// frequency queries or no support threshold is available.
func (s *Server[T]) handleHeavyHitters(w http.ResponseWriter, r *http.Request, tenant, stream string) {
	e, ok := s.reg.get(tenant, stream)
	if !ok {
		writeErr(w, http.StatusNotFound, "no stream %s/%s", tenant, stream)
		return
	}
	if !e.spec.Family.AnswersFrequencies() {
		writeErr(w, http.StatusBadRequest, "family %v answers no frequency queries", e.spec.Family)
		return
	}
	support := e.spec.Support
	if arg := r.URL.Query().Get("support"); arg != "" {
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil || v < 0 || v >= 1 {
			writeErr(w, http.StatusBadRequest, "bad support %q (want a number in [0, 1))", arg)
			return
		}
		support = v
	}
	if support == 0 {
		writeErr(w, http.StatusBadRequest, "no support threshold: pass ?support= or set it in the spec")
		return
	}
	snap := e.est.Snapshot()
	items, ok := snap.HeavyHitters(support)
	out := make([]heavyHitterItem, len(items))
	for i, it := range items {
		out[i] = heavyHitterItem{Value: float64(it.Value), Freq: it.Freq}
	}
	writeJSON(w, http.StatusOK, struct {
		Count   int64             `json:"count"`
		Support float64           `json:"support"`
		OK      bool              `json:"ok"`
		Items   []heavyHitterItem `json:"items"`
	}{snap.Count(), support, ok, out})
}

// handleFrequency answers a point-frequency probe: ?v=<value>.
func (s *Server[T]) handleFrequency(w http.ResponseWriter, r *http.Request, tenant, stream string) {
	e, ok := s.reg.get(tenant, stream)
	if !ok {
		writeErr(w, http.StatusNotFound, "no stream %s/%s", tenant, stream)
		return
	}
	if !e.spec.Family.AnswersFrequencies() {
		writeErr(w, http.StatusBadRequest, "family %v answers no frequency queries", e.spec.Family)
		return
	}
	arg := r.URL.Query().Get("v")
	if arg == "" {
		writeErr(w, http.StatusBadRequest, "no value: pass ?v=")
		return
	}
	v, err := parseValue[T](arg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad value %q: %v", arg, err)
		return
	}
	snap := e.est.Snapshot()
	freq, ok := snap.Frequency(v)
	writeJSON(w, http.StatusOK, struct {
		Count int64   `json:"count"`
		Value float64 `json:"value"`
		Freq  int64   `json:"freq"`
		OK    bool    `json:"ok"`
	}{snap.Count(), float64(v), freq, ok})
}

// valueWidth is the wire width of one binary row: the element's native
// 4- or 8-byte size.
func valueWidth[T gpustream.Value]() int { return sorter.KeyBits[T]() / 8 }

// decodeBinary decodes little-endian native-width rows: IEEE-754 bits for
// the float types, two's-complement for the integer types.
func decodeBinary[T gpustream.Value](body []byte) ([]T, error) {
	width := valueWidth[T]()
	if len(body)%width != 0 {
		return nil, fmt.Errorf("binary body of %d bytes is not a multiple of the %d-byte row width", len(body), width)
	}
	out := make([]T, len(body)/width)
	for i := range out {
		var bits uint64
		if width == 4 {
			bits = uint64(binary.LittleEndian.Uint32(body[i*4:]))
		} else {
			bits = binary.LittleEndian.Uint64(body[i*8:])
		}
		out[i] = valueFromBits[T](bits)
	}
	return out, nil
}

// appendBinary encodes values in the row format decodeBinary reads; the
// load driver shares it through this package.
func appendBinary[T gpustream.Value](dst []byte, values []T) []byte {
	width := valueWidth[T]()
	for _, v := range values {
		bits := valueBits(v)
		if width == 4 {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(bits))
		} else {
			dst = binary.LittleEndian.AppendUint64(dst, bits)
		}
	}
	return dst
}

// valueBits returns v's native bit pattern, zero-extended to 64 bits.
func valueBits[T gpustream.Value](v T) uint64 {
	switch x := any(v).(type) {
	case float32:
		return uint64(math.Float32bits(x))
	case float64:
		return math.Float64bits(x)
	case uint32:
		return uint64(x)
	case uint64:
		return x
	case int32:
		return uint64(uint32(x))
	case int64:
		return uint64(x)
	}
	panic("service: unreachable value type")
}

// valueFromBits inverts valueBits.
func valueFromBits[T gpustream.Value](bits uint64) T {
	var v T
	switch any(v).(type) {
	case float32:
		return any(math.Float32frombits(uint32(bits))).(T)
	case float64:
		return any(math.Float64frombits(bits)).(T)
	case uint32:
		return any(uint32(bits)).(T)
	case uint64:
		return any(bits).(T)
	case int32:
		return any(int32(uint32(bits))).(T)
	case int64:
		return any(int64(bits)).(T)
	}
	panic("service: unreachable value type")
}

// decodeJSONValues decodes a bare JSON array of numbers at full precision
// for the element type: floats parse as floats, integer types as integers
// (so uint64 keys above 2^53 survive — clients needing exact wide integers
// can also use the binary row format).
func decodeJSONValues[T gpustream.Value](body []byte) ([]T, error) {
	var raw []json.Number
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.UseNumber()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("want a JSON array of numbers: %w", err)
	}
	out := make([]T, len(raw))
	for i, num := range raw {
		v, err := parseValue[T](num.String())
		if err != nil {
			return nil, fmt.Errorf("element %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// parseValue parses one decimal literal at the element type's precision.
func parseValue[T gpustream.Value](s string) (T, error) {
	var v T
	switch any(v).(type) {
	case float32:
		f, err := strconv.ParseFloat(s, 32)
		return any(float32(f)).(T), err
	case float64:
		f, err := strconv.ParseFloat(s, 64)
		return any(f).(T), err
	case uint32:
		u, err := strconv.ParseUint(s, 10, 32)
		return any(uint32(u)).(T), err
	case uint64:
		u, err := strconv.ParseUint(s, 10, 64)
		return any(u).(T), err
	case int32:
		i, err := strconv.ParseInt(s, 10, 32)
		return any(int32(i)).(T), err
	case int64:
		i, err := strconv.ParseInt(s, 10, 64)
		return any(i).(T), err
	}
	panic("service: unreachable value type")
}
