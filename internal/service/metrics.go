package service

import (
	"net/http"
	"runtime"
	"time"

	"gpustream"
)

// StreamStatus is one stream's /statsz (and stream-info GET) report: the
// spec it was created from, ingest-path counters, and the engine's live
// per-estimator pipeline telemetry (gpustream.EstimatorStats, including
// the staged executor's Overlap/Stall/MaxInFlight when async ingestion
// ran).
type StreamStatus struct {
	Tenant string         `json:"tenant"`
	Stream string         `json:"stream"`
	Spec   gpustream.Spec `json:"spec"`

	Rows         int64 `json:"rows"`          // rows accepted into the queue
	Count        int64 `json:"count"`         // rows the estimator has ingested
	Batches      int64 `json:"batches"`       // batches accepted
	IngestErrors int64 `json:"ingest_errors"` // writer-side ingest failures
	QueueDepth   int   `json:"queue_depth"`   // batches waiting right now
	QueueCap     int   `json:"queue_cap"`
	StallNs      int64 `json:"enqueue_stall_ns"` // ns POSTs blocked on a full queue
	IdleNs       int64 `json:"idle_ns"`          // ns since the last ingest or query

	Estimators []gpustream.EstimatorStats `json:"estimators"`
}

// ServiceStatus is the /statsz document: service counters plus every live
// stream's status.
type ServiceStatus struct {
	Now        time.Time `json:"now"`
	UptimeNs   int64     `json:"uptime_ns"`
	Draining   bool      `json:"draining"`
	Goroutines int       `json:"goroutines"`
	Tenants    int       `json:"tenants"`
	StreamsN   int       `json:"streams_total"`

	Requests      int64 `json:"requests"`
	IngestRows    int64 `json:"ingest_rows"`
	IngestBatches int64 `json:"ingest_batches"`
	EnqueueStall  int64 `json:"enqueue_stall_ns"`
	Evictions     int64 `json:"evictions"`
	IdleEvictions int64 `json:"idle_evictions"`
	Drained       int64 `json:"drained"`
	Spills        int64 `json:"spills"`

	Streams []StreamStatus `json:"streams"`
}

// streamStatus assembles one entry's report. Engine.Stats synchronizes with
// ingestion internally, so the counters are consistent mid-stream.
func (s *Server[T]) streamStatus(e *entry[T]) StreamStatus {
	idle := time.Now().UnixNano() - e.lastUsed.Load()
	if idle < 0 {
		idle = 0
	}
	return StreamStatus{
		Tenant:       e.tenant,
		Stream:       e.stream,
		Spec:         e.spec,
		Rows:         e.rows.Load(),
		Count:        e.est.Count(),
		Batches:      e.batches.Load(),
		IngestErrors: e.ingestErrs.Load(),
		QueueDepth:   len(e.queue),
		QueueCap:     cap(e.queue),
		StallNs:      e.stallNs.Load(),
		IdleNs:       idle,
		Estimators:   e.eng.Stats(),
	}
}

// handleStatsz exports the full service status as JSON — the metric sink a
// scraper or the future adaptive controller reads. It stays available
// during drain.
func (s *Server[T]) handleStatsz(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.list()
	tenants := make(map[string]struct{}, len(entries))
	streams := make([]StreamStatus, 0, len(entries))
	for _, e := range entries {
		tenants[e.tenant] = struct{}{}
		streams = append(streams, s.streamStatus(e))
	}
	writeJSON(w, http.StatusOK, ServiceStatus{
		Now:           time.Now(),
		UptimeNs:      time.Since(s.start).Nanoseconds(),
		Draining:      s.draining.Load(),
		Goroutines:    runtime.NumGoroutine(),
		Tenants:       len(tenants),
		StreamsN:      len(entries),
		Requests:      s.ctr.requests.Load(),
		IngestRows:    s.ctr.ingestRows.Load(),
		IngestBatches: s.ctr.ingestBatches.Load(),
		EnqueueStall:  s.ctr.enqueueStall.Load(),
		Evictions:     s.ctr.evictions.Load(),
		IdleEvictions: s.ctr.idleEvictions.Load(),
		Drained:       s.ctr.drained.Load(),
		Spills:        s.ctr.spills.Load(),
		Streams:       streams,
	})
}

// handleHealthz is the liveness probe: 200 "ok" while serving, 503
// "draining" once shutdown starts (so load balancers stop routing here
// while in-flight streams flush).
func (s *Server[T]) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status  string `json:"status"`
		Streams int    `json:"streams"`
	}{status, s.reg.len()})
}
