package service_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"gpustream"
	"gpustream/internal/service"
)

// do issues one request against the test server and returns the status
// code and decoded JSON body.
func do(t *testing.T, client *http.Client, method, url, contentType string, body []byte) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest(%s %s): %v", method, url, err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read body: %v", method, url, err)
	}
	var decoded map[string]any
	if len(blob) > 0 {
		if err := json.Unmarshal(blob, &decoded); err != nil {
			t.Fatalf("%s %s: body %q is not JSON: %v", method, url, blob, err)
		}
	}
	return resp.StatusCode, decoded
}

// newTestServer builds a float32 service and an httptest front end.
func newTestServer(t *testing.T, cfg service.Config) (*service.Server[float32], *httptest.Server) {
	t.Helper()
	svc := service.New[float32](cfg)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		if err := svc.Close(); err != nil {
			t.Errorf("service close: %v", err)
		}
	})
	return svc, ts
}

func specBody(t *testing.T, spec gpustream.Spec) []byte {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	return blob
}

func TestServiceLifecycle(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	client := ts.Client()
	base := ts.URL + "/v1/streams/acme/latency"

	qspec := gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.005, Capacity: 1 << 16, Phis: []float64{0.5, 0.99}}
	if code, body := do(t, client, "PUT", base, "application/json", specBody(t, qspec)); code != http.StatusCreated {
		t.Fatalf("PUT create = %d (%v), want 201", code, body)
	}
	// Idempotent re-PUT of the identical spec.
	if code, _ := do(t, client, "PUT", base, "application/json", specBody(t, qspec)); code != http.StatusOK {
		t.Fatalf("PUT identical = %d, want 200", code)
	}
	// Conflicting spec.
	other := qspec
	other.Eps = 0.1
	if code, _ := do(t, client, "PUT", base, "application/json", specBody(t, other)); code != http.StatusConflict {
		t.Fatalf("PUT conflicting = %d, want 409", code)
	}

	// Ingest 0..9999 synchronously, in batches.
	const n = 10_000
	for lo := 0; lo < n; lo += 2500 {
		vals := make([]float32, 2500)
		for i := range vals {
			vals[i] = float32(lo + i)
		}
		blob, _ := json.Marshal(vals)
		if code, body := do(t, client, "POST", base+"/values?sync=1", "application/json", blob); code != http.StatusOK {
			t.Fatalf("POST sync = %d (%v), want 200", code, body)
		}
	}

	// The median must be eps-approximate over the full ingest.
	code, body := do(t, client, "GET", base+"/quantile?phi=0.5", "", nil)
	if code != http.StatusOK {
		t.Fatalf("GET quantile = %d (%v)", code, body)
	}
	if got := int64(body["count"].(float64)); got != n {
		t.Fatalf("count = %d, want %d", got, n)
	}
	results := body["results"].([]any)
	med := results[0].(map[string]any)
	if !med["ok"].(bool) {
		t.Fatalf("median not ok: %v", med)
	}
	if v := med["value"].(float64); math.Abs(v-n/2) > 0.005*n+1 {
		t.Errorf("median = %v, want within %v of %v", v, 0.005*n+1, n/2)
	}

	// Default probes come from the spec's phis.
	if _, body := do(t, client, "GET", base+"/quantile", "", nil); len(body["results"].([]any)) != 2 {
		t.Errorf("default probes = %v, want the spec's two phis", body["results"])
	}

	// Stream info reflects the ingest.
	if code, body := do(t, client, "GET", base, "", nil); code != http.StatusOK ||
		int64(body["rows"].(float64)) != n || int64(body["count"].(float64)) != n {
		t.Errorf("GET info = %d %v, want rows=count=%d", code, body, n)
	}

	// statsz sees the stream and its estimator telemetry.
	code, body = do(t, client, "GET", ts.URL+"/statsz", "", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /statsz = %d", code)
	}
	if got := int(body["streams_total"].(float64)); got != 1 {
		t.Errorf("statsz streams_total = %d, want 1", got)
	}
	if got := int64(body["ingest_rows"].(float64)); got != n {
		t.Errorf("statsz ingest_rows = %d, want %d", got, n)
	}
	streamRep := body["streams"].([]any)[0].(map[string]any)
	ests := streamRep["estimators"].([]any)
	if len(ests) != 1 || ests[0].(map[string]any)["Kind"] != "quantile" {
		t.Errorf("statsz estimators = %v, want one quantile", ests)
	}
	if fam := streamRep["spec"].(map[string]any)["family"]; fam != "quantile" {
		t.Errorf("statsz spec family = %v, want the string form", fam)
	}

	// healthz is serving.
	if code, body := do(t, client, "GET", ts.URL+"/healthz", "", nil); code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("GET /healthz = %d %v", code, body)
	}

	// DELETE drains and removes.
	code, body = do(t, client, "DELETE", base, "", nil)
	if code != http.StatusOK {
		t.Fatalf("DELETE = %d (%v)", code, body)
	}
	if got := int64(body["count"].(float64)); got != n {
		t.Errorf("DELETE count = %d, want %d", got, n)
	}
	if code, _ := do(t, client, "GET", base, "", nil); code != http.StatusNotFound {
		t.Errorf("GET after DELETE = %d, want 404", code)
	}
}

func TestServiceErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxBatchRows: 100})
	client := ts.Client()
	base := ts.URL + "/v1/streams/acme"

	fspec := gpustream.Spec{Family: gpustream.FamilyFrequency, Eps: 0.01, Support: 0.05}
	if code, _ := do(t, client, "PUT", base+"/hits", "application/json", specBody(t, fspec)); code != http.StatusCreated {
		t.Fatalf("PUT = %d", code)
	}

	cases := []struct {
		name       string
		method     string
		url        string
		body       []byte
		wantStatus int
	}{
		{"unknown stream query", "GET", base + "/nope/quantile", nil, 404},
		{"unknown tenant query", "GET", ts.URL + "/v1/streams/ghost/hits/frequency?v=1", nil, 404},
		{"unknown stream ingest", "POST", base + "/nope/values", []byte(`[1]`), 404},
		{"unknown stream delete", "DELETE", base + "/nope", nil, 404},
		{"bad spec json", "PUT", base + "/bad", []byte(`{not json`), 400},
		{"bad spec missing eps", "PUT", base + "/bad", []byte(`{"family":"quantile"}`), 400},
		{"bad spec unknown family", "PUT", base + "/bad", []byte(`{"family":"florble","eps":0.01}`), 400},
		{"bad spec unknown field", "PUT", base + "/bad", []byte(`{"family":"quantile","eps":0.01,"bogus":1}`), 400},
		{"bad name", "PUT", ts.URL + "/v1/streams/acme/bad..name", specBody(t, fspec), 400},
		{"oversized batch", "POST", base + "/hits/values", []byte("[" + strings.Repeat("1,", 100) + "1]"), 413},
		{"empty batch", "POST", base + "/hits/values", []byte(`[]`), 400},
		{"non-numeric batch", "POST", base + "/hits/values", []byte(`["a"]`), 400},
		{"quantile on frequency family", "GET", base + "/hits/quantile?phi=0.5", nil, 400},
		{"bad phi", "GET", base + "/hits/frequency?v=abc", nil, 400},
		{"missing frequency value", "GET", base + "/hits/frequency", nil, 400},
		{"bad support", "GET", base + "/hits/heavyhitters?support=2", nil, 400},
		{"bad delete timeout", "DELETE", base + "/hits?timeout=banana", nil, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, client, tc.method, tc.url, "application/json", tc.body)
			if code != tc.wantStatus {
				t.Errorf("%s %s = %d (%v), want %d", tc.method, tc.url, code, body, tc.wantStatus)
			}
			if code >= 400 {
				if _, ok := body["error"]; !ok {
					t.Errorf("%s %s: error body %v has no error field", tc.method, tc.url, body)
				}
			}
		})
	}

	// Quantile probes against a quantile stream created under a second
	// tenant: phis on a frequency family were rejected above, and tenant
	// namespaces are independent — same stream name, no conflict.
	qspec := gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01}
	if code, _ := do(t, client, "PUT", ts.URL+"/v1/streams/other/hits", "application/json", specBody(t, qspec)); code != http.StatusCreated {
		t.Errorf("PUT same stream name under another tenant should create, got %d", code)
	}
	if code, _ := do(t, client, "GET", ts.URL+"/v1/streams/other/hits/quantile?phi=1.5", "", nil); code != 400 {
		t.Errorf("phi out of range = %d, want 400", code)
	}
	if code, _ := do(t, client, "GET", ts.URL+"/v1/streams/other/hits/heavyhitters?support=0.1", "", nil); code != 400 {
		t.Errorf("heavyhitters on quantile family = %d, want 400", code)
	}
}

func TestServiceBinaryIngest(t *testing.T) {
	_, ts := newTestServer(t, service.Config{})
	client := ts.Client()
	base := ts.URL + "/v1/streams/bin/hits"

	spec := gpustream.Spec{Family: gpustream.FamilyFrequency, Eps: 0.001, Support: 0.2}
	if code, _ := do(t, client, "PUT", base, "application/json", specBody(t, spec)); code != http.StatusCreated {
		t.Fatalf("PUT = %d", code)
	}

	// 700 copies of 7.5 and 300 of 2.25, as raw little-endian float32 rows.
	var rows []byte
	for i := 0; i < 1000; i++ {
		v := float32(7.5)
		if i%10 < 3 {
			v = 2.25
		}
		rows = binary.LittleEndian.AppendUint32(rows, math.Float32bits(v))
	}
	code, body := do(t, client, "POST", base+"/values?sync=1", "application/octet-stream", rows)
	if code != http.StatusOK || int(body["rows"].(float64)) != 1000 {
		t.Fatalf("binary POST = %d (%v)", code, body)
	}

	code, body = do(t, client, "GET", base+"/heavyhitters", "", nil)
	if code != http.StatusOK {
		t.Fatalf("GET heavyhitters = %d", code)
	}
	items := body["items"].([]any)
	if len(items) != 2 {
		t.Fatalf("heavy hitters = %v, want both values", items)
	}
	top := items[0].(map[string]any)
	if top["value"].(float64) != 7.5 || int64(top["freq"].(float64)) != 700 {
		t.Errorf("top hitter = %v, want 7.5 x700", top)
	}

	code, body = do(t, client, "GET", base+"/frequency?v=2.25", "", nil)
	if code != http.StatusOK || int64(body["freq"].(float64)) != 300 {
		t.Errorf("frequency probe = %d %v, want 300", code, body)
	}

	// A binary body that is not a whole number of rows is rejected.
	if code, _ := do(t, client, "POST", base+"/values", "application/octet-stream", rows[:5]); code != 400 {
		t.Errorf("ragged binary body = %d, want 400", code)
	}
}

// TestServiceDrainSpill pins the shutdown contract: Drain flushes every
// queue, closes every estimator (all CloseContext paths return), spills
// final snapshots that unmarshal to the ingested answers, and the goroutine
// count returns to baseline.
func TestServiceDrainSpill(t *testing.T) {
	spill := t.TempDir()
	baseline := runtime.NumGoroutine()
	svc := service.New[float32](service.Config{SpillDir: spill})
	ts := httptest.NewServer(svc)
	client := ts.Client()

	// One stream per representative family shape: serial quantile, async
	// sharded quantile, frequency, frugal.
	specs := map[string]gpustream.Spec{
		"quant":    {Family: gpustream.FamilyQuantile, Eps: 0.005},
		"parallel": {Family: gpustream.FamilyParallelQuantile, Eps: 0.005, Shards: 2, Async: gpustream.AsyncOn},
		"hits":     {Family: gpustream.FamilyFrequency, Eps: 0.005, Support: 0.01},
		"frugal":   {Family: gpustream.FamilyFrugal, Phis: []float64{0.5}},
	}
	const n = 4000
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i)
	}
	blob, _ := json.Marshal(vals)
	for name, spec := range specs {
		url := ts.URL + "/v1/streams/drain/" + name
		if code, _ := do(t, client, "PUT", url, "application/json", specBody(t, spec)); code != http.StatusCreated {
			t.Fatalf("PUT %s = %d", name, code)
		}
		// Async (not sync) post: drain itself must flush the queue.
		if code, _ := do(t, client, "POST", url+"/values", "application/json", blob); code != http.StatusAccepted {
			t.Fatalf("POST %s = %d", name, code)
		}
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	// healthz flips to draining after shutdown begins.
	rec := httptest.NewRecorder()
	svc.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", rec.Code)
	}
	// Stream operations are rejected during/after drain.
	rec = httptest.NewRecorder()
	svc.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/streams/drain/quant/quantile", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("stream op during drain = %d, want 503", rec.Code)
	}

	// Every spilled snapshot unmarshals and covers the full ingest.
	for name := range specs {
		path := filepath.Join(spill, "drain__"+name+".snap")
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("spill file %s: %v", name, err)
		}
		snap, err := gpustream.UnmarshalSnapshot[float32](blob)
		if err != nil {
			t.Fatalf("unmarshal spill %s: %v", name, err)
		}
		if snap.Count() != n {
			t.Errorf("spill %s covers %d rows, want %d", name, snap.Count(), n)
		}
	}

	// All writer/shard/stage goroutines are gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, runtime.NumGoroutine(), buf[:m])
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServiceLRUEviction(t *testing.T) {
	spill := t.TempDir()
	_, ts := newTestServer(t, service.Config{MaxStreams: 2, SpillDir: spill})
	client := ts.Client()
	spec := gpustream.Spec{Family: gpustream.FamilyQuantile, Eps: 0.01}

	for i, name := range []string{"a", "b"} {
		url := fmt.Sprintf("%s/v1/streams/t/%s", ts.URL, name)
		if code, _ := do(t, client, "PUT", url, "application/json", specBody(t, spec)); code != http.StatusCreated {
			t.Fatalf("PUT %d = %d", i, code)
		}
		// Deterministic LRU order.
		time.Sleep(5 * time.Millisecond)
	}
	// Touch "a" so "b" is the LRU victim.
	if code, _ := do(t, client, "POST", ts.URL+"/v1/streams/t/a/values?sync=1", "application/json", []byte(`[1,2,3]`)); code != http.StatusOK {
		t.Fatal("touch a failed")
	}
	if code, _ := do(t, client, "PUT", ts.URL+"/v1/streams/t/c", "application/json", specBody(t, spec)); code != http.StatusCreated {
		t.Fatal("PUT c failed")
	}

	if code, _ := do(t, client, "GET", ts.URL+"/v1/streams/t/b", "", nil); code != http.StatusNotFound {
		t.Errorf("evicted stream b still there (= %d)", code)
	}
	if code, _ := do(t, client, "GET", ts.URL+"/v1/streams/t/a", "", nil); code != http.StatusOK {
		t.Errorf("stream a evicted, want b")
	}
	if _, err := os.Stat(filepath.Join(spill, "t__b.snap")); err != nil {
		t.Errorf("evicted stream b was not spilled: %v", err)
	}

	code, body := do(t, client, "GET", ts.URL+"/statsz", "", nil)
	if code != http.StatusOK || int64(body["evictions"].(float64)) != 1 {
		t.Errorf("statsz evictions = %v, want 1", body["evictions"])
	}
}

func TestServiceIdleEviction(t *testing.T) {
	_, ts := newTestServer(t, service.Config{
		IdleTTL:       50 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
	})
	client := ts.Client()
	spec := gpustream.Spec{Family: gpustream.FamilyFrequency, Eps: 0.01, Support: 0.1}
	if code, _ := do(t, client, "PUT", ts.URL+"/v1/streams/t/idle", "application/json", specBody(t, spec)); code != http.StatusCreated {
		t.Fatal("PUT failed")
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		code, _ := do(t, client, "GET", ts.URL+"/v1/streams/t/idle", "", nil)
		if code == http.StatusNotFound {
			break // evicted
		}
		if time.Now().After(deadline) {
			t.Fatal("idle stream was never evicted")
		}
		// Note each GET touches the stream, so back off beyond the TTL.
		time.Sleep(120 * time.Millisecond)
	}
}
