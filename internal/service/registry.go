package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"gpustream"
)

// entry is one live stream: its spec, a dedicated engine + estimator, and
// the bounded-queue ingestion path — a single writer goroutine draining
// batches into the estimator, so the estimator always sees the intended
// one-writer/N-reader pattern however many HTTP requests land concurrently.
type entry[T gpustream.Value] struct {
	tenant, stream string
	spec           gpustream.Spec
	eng            *gpustream.Engine[T]
	est            gpustream.Estimator[T]
	created        time.Time
	ctr            *counters

	queue      chan batch[T]
	writerDone chan struct{}

	// closeMu guards closing: enqueuers hold the read side across the
	// queue send, drain takes the write side to flip closing, so once
	// drain holds the lock no new batch can race the queue close.
	closeMu sync.RWMutex
	closing bool

	rows       atomic.Int64 // rows accepted into the queue
	batches    atomic.Int64 // batches accepted
	ingestErrs atomic.Int64 // writer-side ProcessSlice failures
	stallNs    atomic.Int64 // ns enqueues spent blocked on a full queue
	lastUsed   atomic.Int64 // unix nanos of the last ingest or query
}

// batch is one queued ingest unit. done is non-nil for synchronous POSTs
// (?sync=1): the writer closes it after the batch is in the estimator.
type batch[T gpustream.Value] struct {
	data []T
	done chan struct{}
}

// touch refreshes the idle clock.
func (e *entry[T]) touch() { e.lastUsed.Store(time.Now().UnixNano()) }

// writer is the stream's single ingest goroutine: it drains the bounded
// queue into the estimator until the queue closes at drain time.
func (e *entry[T]) writer() {
	defer close(e.writerDone)
	for b := range e.queue {
		if err := e.est.ProcessSlice(b.data); err != nil {
			e.ingestErrs.Add(1)
		}
		if b.done != nil {
			close(b.done)
		}
	}
}

// enqueue hands a batch to the writer, blocking for backpressure while the
// queue is full. ctx (the request context) bounds the wait. With sync set
// it additionally waits until the writer has ingested the batch, so a
// subsequent query observes it.
func (e *entry[T]) enqueue(ctx context.Context, data []T, sync bool) error {
	e.closeMu.RLock()
	if e.closing {
		e.closeMu.RUnlock()
		return errClosing
	}
	b := batch[T]{data: data}
	if sync {
		b.done = make(chan struct{})
	}
	start := time.Now()
	select {
	case e.queue <- b:
		e.closeMu.RUnlock()
	case <-ctx.Done():
		e.closeMu.RUnlock()
		return ctx.Err()
	}
	if d := time.Since(start); d > 0 {
		e.stallNs.Add(int64(d))
		e.ctr.enqueueStall.Add(int64(d))
	}
	e.rows.Add(int64(len(data)))
	e.batches.Add(1)
	e.touch()
	if sync {
		select {
		case <-b.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// drain closes the ingestion path and the estimator: no new batches, the
// queue flushed through the writer, then CloseContext (where the family
// has one — the sharded estimators' context-aware drain) or Close. It is
// idempotent and safe to call concurrently (DELETE racing shutdown).
func (e *entry[T]) drain(ctx context.Context) error {
	e.closeMu.Lock()
	first := !e.closing
	e.closing = true
	e.closeMu.Unlock()
	if first {
		close(e.queue)
	}
	select {
	case <-e.writerDone:
	case <-ctx.Done():
		// Deadline expired with batches still queued: fall through so the
		// estimator's own context-aware close can cut the loss; the writer
		// goroutine exits once the remaining batches error out with
		// ErrClosed.
	}
	if cc, ok := e.est.(interface{ CloseContext(context.Context) error }); ok {
		return cc.CloseContext(ctx)
	}
	return e.est.Close()
}

// registry is the tenant/stream table: creation, lookup, LRU and idle
// eviction, and the drain-everything shutdown path.
type registry[T gpustream.Value] struct {
	cfg *Config
	ctr *counters

	mu      sync.RWMutex
	streams map[string]*entry[T]
}

func newRegistry[T gpustream.Value](cfg *Config, ctr *counters) *registry[T] {
	return &registry[T]{cfg: cfg, ctr: ctr, streams: make(map[string]*entry[T])}
}

func (r *registry[T]) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.streams)
}

// get returns the live entry and refreshes its idle clock.
func (r *registry[T]) get(tenant, stream string) (*entry[T], bool) {
	r.mu.RLock()
	e, ok := r.streams[streamKey(tenant, stream)]
	r.mu.RUnlock()
	if ok {
		e.touch()
	}
	return e, ok
}

// create builds the stream described by spec under its own engine (bound to
// spec.Backend) and starts its writer goroutine. Re-creating an existing
// stream is idempotent when the spec matches and errConflict when it does
// not. At capacity, the least-recently-used stream is evicted first —
// drained with the configured DrainTimeout and spilled like any other
// drain.
func (r *registry[T]) create(tenant, stream string, spec gpustream.Spec) (e *entry[T], created bool, err error) {
	key := streamKey(tenant, stream)
	var victim *entry[T]

	r.mu.Lock()
	if old, ok := r.streams[key]; ok {
		r.mu.Unlock()
		if reflect.DeepEqual(old.spec, spec) {
			return old, false, nil
		}
		return nil, false, fmt.Errorf("%w: %s", errConflict, key)
	}
	eng := gpustream.NewOf[T](spec.Backend)
	est, err := eng.NewFromSpec(spec)
	if err != nil {
		r.mu.Unlock()
		return nil, false, err
	}
	if len(r.streams) >= r.cfg.MaxStreams {
		victim = r.lruLocked()
		if victim != nil {
			delete(r.streams, streamKey(victim.tenant, victim.stream))
		}
	}
	e = &entry[T]{
		tenant: tenant, stream: stream, spec: spec,
		eng: eng, est: est, created: time.Now(), ctr: r.ctr,
		queue:      make(chan batch[T], r.cfg.QueueDepth),
		writerDone: make(chan struct{}),
	}
	e.touch()
	r.streams[key] = e
	r.mu.Unlock()

	go e.writer()

	if victim != nil {
		r.ctr.evictions.Add(1)
		r.finish(victim)
	}
	return e, true, nil
}

// lruLocked picks the least-recently-used entry. Caller holds r.mu.
func (r *registry[T]) lruLocked() *entry[T] {
	var oldest *entry[T]
	var oldestUsed int64
	for _, e := range r.streams {
		if used := e.lastUsed.Load(); oldest == nil || used < oldestUsed {
			oldest, oldestUsed = e, used
		}
	}
	return oldest
}

// remove unlinks a stream; the caller drains it.
func (r *registry[T]) remove(tenant, stream string) (*entry[T], bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := streamKey(tenant, stream)
	e, ok := r.streams[key]
	if ok {
		delete(r.streams, key)
	}
	return e, ok
}

// list snapshots the live entries for /statsz and shutdown.
func (r *registry[T]) list() []*entry[T] {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*entry[T], 0, len(r.streams))
	for _, e := range r.streams {
		out = append(out, e)
	}
	return out
}

// sweepIdle evicts every stream idle longer than ttl.
func (r *registry[T]) sweepIdle(ttl time.Duration) {
	cutoff := time.Now().Add(-ttl).UnixNano()
	var idle []*entry[T]
	r.mu.Lock()
	for key, e := range r.streams {
		if e.lastUsed.Load() < cutoff {
			idle = append(idle, e)
			delete(r.streams, key)
		}
	}
	r.mu.Unlock()
	for _, e := range idle {
		r.ctr.idleEvictions.Add(1)
		r.finish(e)
	}
}

// finish drains one unlinked entry with the configured timeout and spills
// its final snapshot. Used by DELETE, eviction, and shutdown.
func (r *registry[T]) finish(e *entry[T]) error {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.DrainTimeout)
	defer cancel()
	return r.finishContext(ctx, e)
}

// finishContext is finish with a caller-supplied deadline.
func (r *registry[T]) finishContext(ctx context.Context, e *entry[T]) error {
	err := e.drain(ctx)
	r.ctr.drained.Add(1)
	if serr := r.spill(e); serr != nil && err == nil {
		err = serr
	}
	return err
}

// spill writes e's final snapshot to SpillDir in the wire format. The
// estimator stays queryable after Close, so the snapshot reflects
// everything the writer ingested.
func (r *registry[T]) spill(e *entry[T]) error {
	if r.cfg.SpillDir == "" {
		return nil
	}
	blob, err := gpustream.MarshalSnapshot[T](e.est.Snapshot())
	if err != nil {
		return fmt.Errorf("service: spill %s/%s: %w", e.tenant, e.stream, err)
	}
	path := filepath.Join(r.cfg.SpillDir, e.tenant+"__"+e.stream+".snap")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("service: spill %s/%s: %w", e.tenant, e.stream, err)
	}
	r.ctr.spills.Add(1)
	return nil
}

// drainAll unlinks every stream and drains them concurrently under one
// shared deadline, joining errors. Thousands of tenants drain in parallel;
// each stream's CloseContext bounds its own shard fan-in under ctx.
func (r *registry[T]) drainAll(ctx context.Context) error {
	r.mu.Lock()
	entries := make([]*entry[T], 0, len(r.streams))
	for _, e := range r.streams {
		entries = append(entries, e)
	}
	r.streams = make(map[string]*entry[T])
	r.mu.Unlock()

	errs := make([]error, len(entries))
	var wg sync.WaitGroup
	for i, e := range entries {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = r.finishContext(ctx, e)
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
