package stream

import "gpustream/internal/sorter"

// Windower slices a Source into fixed-size windows, the unit of work for the
// paper's window-based summary algorithms (Section 3.2). The final window may
// be short if the stream length is not a multiple of the window size.
type Windower[T sorter.Value] struct {
	src Source[T]
	buf []T
}

// NewWindower returns a Windower producing windows of size w from src.
// It panics if w <= 0.
func NewWindower[T sorter.Value](src Source[T], w int) *Windower[T] {
	if w <= 0 {
		panic("stream: window size must be positive")
	}
	return &Windower[T]{src: src, buf: make([]T, 0, w)}
}

// Next returns the next window. The returned slice is reused between calls;
// callers that retain a window across calls must copy it. ok is false once
// the stream is exhausted.
func (w *Windower[T]) Next() (win []T, ok bool) {
	w.buf = w.buf[:0]
	for len(w.buf) < cap(w.buf) {
		v, more := w.src.Next()
		if !more {
			break
		}
		w.buf = append(w.buf, v)
	}
	if len(w.buf) == 0 {
		return nil, false
	}
	return w.buf, true
}

// EachWindow invokes fn for every size-w window of data, including a final
// short window. The slice passed to fn aliases data.
func EachWindow[T sorter.Value](data []T, w int, fn func(win []T)) {
	if w <= 0 {
		panic("stream: window size must be positive")
	}
	for start := 0; start < len(data); start += w {
		end := start + w
		if end > len(data) {
			end = len(data)
		}
		fn(data[start:end])
	}
}
