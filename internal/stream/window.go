package stream

// Windower slices a Source into fixed-size windows, the unit of work for the
// paper's window-based summary algorithms (Section 3.2). The final window may
// be short if the stream length is not a multiple of the window size.
type Windower struct {
	src Source
	buf []float32
}

// NewWindower returns a Windower producing windows of size w from src.
// It panics if w <= 0.
func NewWindower(src Source, w int) *Windower {
	if w <= 0 {
		panic("stream: window size must be positive")
	}
	return &Windower{src: src, buf: make([]float32, 0, w)}
}

// Next returns the next window. The returned slice is reused between calls;
// callers that retain a window across calls must copy it. ok is false once
// the stream is exhausted.
func (w *Windower) Next() (win []float32, ok bool) {
	w.buf = w.buf[:0]
	for len(w.buf) < cap(w.buf) {
		v, more := w.src.Next()
		if !more {
			break
		}
		w.buf = append(w.buf, v)
	}
	if len(w.buf) == 0 {
		return nil, false
	}
	return w.buf, true
}

// EachWindow invokes fn for every size-w window of data, including a final
// short window. The slice passed to fn aliases data.
func EachWindow(data []float32, w int, fn func(win []float32)) {
	if w <= 0 {
		panic("stream: window size must be positive")
	}
	for start := 0; start < len(data); start += w {
		end := start + w
		if end > len(data) {
			end = len(data)
		}
		fn(data[start:end])
	}
}
