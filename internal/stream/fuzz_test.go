package stream

import (
	"bytes"
	"errors"
	"testing"
)

func FuzzTraceReader(f *testing.F) {
	var good bytes.Buffer
	_ = WriteTrace(&good, []float32{1, 2, 3})
	f.Add(good.Bytes())
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		// The reader must never panic and must either succeed or report
		// ErrBadTrace on arbitrary input.
		data, err := ReadTrace(bytes.NewReader(raw))
		if err != nil && !errors.Is(err, ErrBadTrace) {
			t.Fatalf("unexpected error type: %v", err)
		}
		if err == nil {
			// A successful parse round-trips.
			var buf bytes.Buffer
			if werr := WriteTrace(&buf, data); werr != nil {
				t.Fatal(werr)
			}
		}
	})
}
