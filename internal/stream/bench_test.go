package stream

import "testing"

func BenchmarkUniform(b *testing.B) {
	b.SetBytes(1 << 18 * 4)
	for i := 0; i < b.N; i++ {
		Uniform(1<<18, uint64(i))
	}
}

func BenchmarkZipf(b *testing.B) {
	b.SetBytes(1 << 16 * 4)
	for i := 0; i < b.N; i++ {
		Zipf(1<<16, 1.1, 10000, uint64(i))
	}
}
