package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSliceSource(t *testing.T) {
	src := NewSliceSource([]float32{1, 2, 3})
	if got := src.Remaining(); got != 3 {
		t.Fatalf("Remaining = %d, want 3", got)
	}
	for want := 1; want <= 3; want++ {
		v, ok := src.Next()
		if !ok || v != float32(want) {
			t.Fatalf("Next = (%v, %v), want (%d, true)", v, ok, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("Next after exhaustion reported ok")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("Next must keep returning false after exhaustion")
	}
}

func TestCollect(t *testing.T) {
	src := NewSliceSource([]float32{1, 2, 3, 4})
	got := Collect(src, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Collect(2) = %v", got)
	}
	rest := Collect(src, -1)
	if len(rest) != 2 || rest[0] != 3 {
		t.Fatalf("Collect(-1) = %v", rest)
	}
}

func TestFuncSource(t *testing.T) {
	src := NewFuncSource(4, func(i int) float32 { return float32(i * i) })
	got := Collect(src, -1)
	want := []float32{0, 1, 4, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FuncSource[float32] yielded %v, want %v", got, want)
		}
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at the xorshift fixed point")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUniform(t *testing.T) {
	data := Uniform(10000, 1)
	var sum float64
	for _, v := range data {
		if v < 0 || v >= 1 {
			t.Fatalf("uniform value %v out of range", v)
		}
		sum += float64(v)
	}
	mean := sum / float64(len(data))
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestUniformIntsVocabulary(t *testing.T) {
	data := UniformInts(5000, 16, 3)
	for _, v := range data {
		if v != float32(int(v)) || v < 0 || v >= 16 {
			t.Fatalf("UniformInts produced non-item value %v", v)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	data := Gaussian(50000, 10, 2, 5)
	var sum, sq float64
	for _, v := range data {
		sum += float64(v)
		sq += float64(v) * float64(v)
	}
	n := float64(len(data))
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("gaussian mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("gaussian stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestSortedAndReverse(t *testing.T) {
	up := Sorted(100)
	down := ReverseSorted(100)
	for i := 1; i < 100; i++ {
		if up[i] <= up[i-1] {
			t.Fatal("Sorted is not strictly increasing")
		}
		if down[i] >= down[i-1] {
			t.Fatal("ReverseSorted is not strictly decreasing")
		}
	}
}

func TestNearlySorted(t *testing.T) {
	data := NearlySorted(1000, 0.01, 9)
	inversions := 0
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("NearlySorted produced a fully sorted sequence")
	}
	if inversions > 100 {
		t.Fatalf("NearlySorted produced %d inversions, far more than the swap budget", inversions)
	}
}

func TestZipfSkew(t *testing.T) {
	data := Zipf(20000, 1.2, 100, 11)
	counts := make(map[float32]int)
	for _, v := range data {
		if v < 0 || v >= 100 {
			t.Fatalf("zipf item %v out of vocabulary", v)
		}
		counts[v]++
	}
	// Item 0 must dominate item 50 under a Zipf law.
	if counts[0] <= counts[50]*2 {
		t.Fatalf("zipf not skewed: count(0)=%d count(50)=%d", counts[0], counts[50])
	}
}

func TestZipfPanicsOnBadVocab(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf with vocab 0 did not panic")
		}
	}()
	Zipf(10, 1, 0, 1)
}

func TestBursty(t *testing.T) {
	data := Bursty(10000, 50, 200, 0.01, 13)
	if len(data) != 10000 {
		t.Fatalf("Bursty length = %d", len(data))
	}
	// Bursts should create runs of identical values.
	maxRun, run := 1, 1
	for i := 1; i < len(data); i++ {
		if data[i] == data[i-1] {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 1
		}
	}
	if maxRun < 50 {
		t.Fatalf("longest run %d; expected burst-induced runs", maxRun)
	}
}

func TestWindower(t *testing.T) {
	src := NewSliceSource([]float32{1, 2, 3, 4, 5})
	w := NewWindower[float32](src, 2)
	var sizes []int
	for {
		win, ok := w.Next()
		if !ok {
			break
		}
		sizes = append(sizes, len(win))
	}
	if len(sizes) != 3 || sizes[0] != 2 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("window sizes = %v, want [2 2 1]", sizes)
	}
}

func TestWindowerPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindower[float32](0) did not panic")
		}
	}()
	NewWindower[float32](NewSliceSource[float32](nil), 0)
}

func TestEachWindowCoversAll(t *testing.T) {
	prop := func(raw []byte, wRaw uint8) bool {
		data := make([]float32, len(raw))
		for i, b := range raw {
			data[i] = float32(b)
		}
		w := int(wRaw%7) + 1
		var total int
		EachWindow(data, w, func(win []float32) {
			if len(win) == 0 || len(win) > w {
				panic("bad window size")
			}
			total += len(win)
		})
		return total == len(data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEachWindowOrder(t *testing.T) {
	data := Sorted(10)
	var flat []float32
	EachWindow(data, 3, func(win []float32) {
		flat = append(flat, win...)
	})
	for i := range data {
		if flat[i] != data[i] {
			t.Fatalf("EachWindow reordered elements: %v", flat)
		}
	}
}
