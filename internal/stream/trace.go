package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Trace files hold recorded streams — the "finance logs" and packet traces
// of the paper's motivating applications — in a minimal binary format:
// an 8-byte magic, a little-endian uint64 element count, then count
// little-endian float32 values.

var traceMagic = [8]byte{'g', 'p', 'u', 's', 't', 'r', 'm', '1'}

// ErrBadTrace reports a malformed trace header or truncated body.
var ErrBadTrace = errors.New("stream: malformed trace")

// WriteTrace records data to w in trace format.
func WriteTrace(w io.Writer, data []float32) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(data))); err != nil {
		return err
	}
	for _, v := range data {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace loads a whole trace from r.
func ReadTrace(r io.Reader) ([]float32, error) {
	src, err := NewTraceSource(r)
	if err != nil {
		return nil, err
	}
	// Cap the preallocation: the declared count is untrusted input and a
	// forged header must not allocate unbounded memory. A truncated body
	// is detected below regardless.
	capHint := src.Len()
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]float32, 0, capHint)
	for {
		v, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	if uint64(len(out)) != src.Len() {
		return nil, fmt.Errorf("%w: expected %d values, got %d", ErrBadTrace, src.Len(), len(out))
	}
	return out, nil
}

// TraceSource streams a trace incrementally, so replays never need the
// whole stream in memory — the constraint that motivates streaming
// algorithms in the first place.
type TraceSource struct {
	r      *bufio.Reader
	total  uint64
	read   uint64
	err    error
	buf    [4]byte
	closed bool
}

// NewTraceSource validates the header of r and returns a streaming Source.
func NewTraceSource(r io.Reader) (*TraceSource, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return &TraceSource{r: br, total: count}, nil
}

// Len reports the declared element count.
func (t *TraceSource) Len() uint64 { return t.total }

// Err reports the first read error encountered (nil on clean EOF).
func (t *TraceSource) Err() error { return t.err }

// Next implements Source.
func (t *TraceSource) Next() (float32, bool) {
	if t.closed || t.read >= t.total {
		return 0, false
	}
	if _, err := io.ReadFull(t.r, t.buf[:]); err != nil {
		t.closed = true
		t.err = fmt.Errorf("%w: body truncated at %d/%d: %v", ErrBadTrace, t.read, t.total, err)
		return 0, false
	}
	t.read++
	bits := binary.LittleEndian.Uint32(t.buf[:])
	return math.Float32frombits(bits), true
}

// TraceWriter streams a trace incrementally. The element count must be
// declared up front (the format stores it in the header); Flush verifies
// the declaration was honored.
type TraceWriter struct {
	w        *bufio.Writer
	declared uint64
	written  uint64
	buf      [4]byte
}

// NewTraceWriter writes the trace header for count elements to w and
// returns a writer for the body.
func NewTraceWriter(w io.Writer, count uint64) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.LittleEndian, count); err != nil {
		return nil, err
	}
	return &TraceWriter{w: bw, declared: count}, nil
}

// Write appends one value. Writing more than the declared count fails.
func (t *TraceWriter) Write(v float32) error {
	if t.written >= t.declared {
		return fmt.Errorf("%w: write beyond declared count %d", ErrBadTrace, t.declared)
	}
	t.written++
	binary.LittleEndian.PutUint32(t.buf[:], math.Float32bits(v))
	_, err := t.w.Write(t.buf[:])
	return err
}

// Flush completes the trace, verifying the declared count was written.
func (t *TraceWriter) Flush() error {
	if t.written != t.declared {
		return fmt.Errorf("%w: wrote %d of %d declared values", ErrBadTrace, t.written, t.declared)
	}
	return t.w.Flush()
}
