// Package stream provides data-stream sources and synthetic workload
// generators used throughout the library.
//
// The paper evaluates on streams of "more than 100 million values" produced
// by a "random database". Since the original traces are not available, this
// package generates deterministic synthetic equivalents: uniform, Zipfian,
// Gaussian, sorted, nearly-sorted and bursty value streams. All generators
// are seeded so experiments are reproducible run to run.
//
// Sources and generators are generic over the stack's ordered value types;
// the unsuffixed generator names are float32 conveniences (the paper's
// native stream type) over the *Of forms.
package stream

import (
	"math"

	"gpustream/internal/sorter"
)

// Source is a pull-based stream of values. Next reports the next element
// and whether one was available; once it returns false the stream is
// exhausted and further calls keep returning false.
type Source[T sorter.Value] interface {
	Next() (T, bool)
}

// SliceSource adapts an in-memory slice to a Source.
type SliceSource[T sorter.Value] struct {
	data []T
	pos  int
}

// NewSliceSource returns a Source that yields the elements of data in order.
// The slice is not copied.
func NewSliceSource[T sorter.Value](data []T) *SliceSource[T] {
	return &SliceSource[T]{data: data}
}

// Next implements Source.
func (s *SliceSource[T]) Next() (T, bool) {
	if s.pos >= len(s.data) {
		var z T
		return z, false
	}
	v := s.data[s.pos]
	s.pos++
	return v, true
}

// Remaining reports how many elements have not yet been consumed.
func (s *SliceSource[T]) Remaining() int { return len(s.data) - s.pos }

// Collect drains up to max elements from src into a new slice. A negative max
// drains the entire source.
func Collect[T sorter.Value](src Source[T], max int) []T {
	var out []T
	for max < 0 || len(out) < max {
		v, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// FuncSource adapts a generator function to a Source. The function is called
// once per element until the configured count is exhausted.
type FuncSource[T sorter.Value] struct {
	n   int
	pos int
	fn  func(i int) T
}

// NewFuncSource returns a Source yielding fn(0), fn(1), ..., fn(n-1).
func NewFuncSource[T sorter.Value](n int, fn func(i int) T) *FuncSource[T] {
	return &FuncSource[T]{n: n, fn: fn}
}

// Next implements Source.
func (s *FuncSource[T]) Next() (T, bool) {
	if s.pos >= s.n {
		var z T
		return z, false
	}
	v := s.fn(s.pos)
	s.pos++
	return v, true
}

// RNG is a small, fast, deterministic xorshift64* generator. It is used
// instead of math/rand so that streams are bit-reproducible across Go
// versions (math/rand's algorithm is unspecified across releases).
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed. A zero seed is replaced with a
// fixed non-zero constant, as xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a pseudo-random number in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a pseudo-random number in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stream: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// UniformOf generates n values by converting uniform draws from [0, 1) to T.
// Meaningful for the floating-point instantiations; integer T truncates
// every draw to zero — use UniformIntsOf for discrete item streams.
func UniformOf[T sorter.Value](n int, seed uint64) []T {
	r := NewRNG(seed)
	out := make([]T, n)
	for i := range out {
		out[i] = T(r.Float64())
	}
	return out
}

// Uniform generates n float32 values drawn uniformly from [0, 1).
func Uniform(n int, seed uint64) []float32 { return UniformOf[float32](n, seed) }

// UniformIntsOf generates n values drawn uniformly from {0, 1, ...,
// vocab-1}, stored as T item identifiers. This is the workload used for
// frequency-estimation experiments, where streams carry discrete items.
func UniformIntsOf[T sorter.Value](n, vocab int, seed uint64) []T {
	r := NewRNG(seed)
	out := make([]T, n)
	for i := range out {
		out[i] = T(r.Intn(vocab))
	}
	return out
}

// UniformInts is UniformIntsOf at float32.
func UniformInts(n, vocab int, seed uint64) []float32 {
	return UniformIntsOf[float32](n, vocab, seed)
}

// UniformU64 generates n identifiers drawn uniformly from the full 64-bit
// key space — the timestamp/flow-key workload for the integer
// instantiations, with values far outside any float's exact-integer range.
func UniformU64(n int, seed uint64) []uint64 {
	r := NewRNG(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// GaussianOf generates n values from a normal distribution with the given
// mean and standard deviation, converted to T (integer instantiations
// truncate toward zero).
func GaussianOf[T sorter.Value](n int, mean, stddev float64, seed uint64) []T {
	r := NewRNG(seed)
	out := make([]T, n)
	for i := range out {
		out[i] = T(mean + stddev*r.NormFloat64())
	}
	return out
}

// Gaussian is GaussianOf at float32.
func Gaussian(n int, mean, stddev float64, seed uint64) []float32 {
	return GaussianOf[float32](n, mean, stddev, seed)
}

// SortedOf generates n non-decreasing values (strictly increasing while i
// stays within T's exact-integer range), an adversarial input for naive
// quicksort pivoting and a best case for nearly-sorted-aware sorts.
func SortedOf[T sorter.Value](n int) []T {
	out := make([]T, n)
	for i := range out {
		out[i] = T(i)
	}
	return out
}

// Sorted is SortedOf at float32.
func Sorted(n int) []float32 { return SortedOf[float32](n) }

// ReverseSortedOf generates n non-increasing values.
func ReverseSortedOf[T sorter.Value](n int) []T {
	out := make([]T, n)
	for i := range out {
		out[i] = T(n - i)
	}
	return out
}

// ReverseSorted is ReverseSortedOf at float32.
func ReverseSorted(n int) []float32 { return ReverseSortedOf[float32](n) }

// NearlySortedOf generates an ascending sequence in which a fraction frac of
// randomly chosen pairs have been swapped.
func NearlySortedOf[T sorter.Value](n int, frac float64, seed uint64) []T {
	out := SortedOf[T](n)
	r := NewRNG(seed)
	swaps := int(frac * float64(n))
	for s := 0; s < swaps; s++ {
		i, j := r.Intn(n), r.Intn(n)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// NearlySorted is NearlySortedOf at float32.
func NearlySorted(n int, frac float64, seed uint64) []float32 {
	return NearlySortedOf[float32](n, frac, seed)
}

// ZipfOf generates n item identifiers from a Zipfian distribution with
// exponent s over a vocabulary of the given size. Identifier 0 is the most
// frequent. This is the canonical skewed workload for heavy-hitter queries:
// a small number of items dominate the stream, as in network-traffic and
// web logs.
func ZipfOf[T sorter.Value](n int, s float64, vocab int, seed uint64) []T {
	if vocab <= 0 {
		panic("stream: Zipf with non-positive vocabulary")
	}
	// Build the CDF once; inversion sampling afterwards is O(log vocab).
	cdf := make([]float64, vocab)
	sum := 0.0
	for k := 1; k <= vocab; k++ {
		sum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	r := NewRNG(seed)
	out := make([]T, n)
	for i := range out {
		u := r.Float64()
		lo, hi := 0, vocab-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = T(lo)
	}
	return out
}

// Zipf is ZipfOf at float32.
func Zipf(n int, s float64, vocab int, seed uint64) []float32 {
	return ZipfOf[float32](n, s, vocab, seed)
}

// BurstyOf generates a stream whose value distribution shifts between
// periods: long stretches of uniform background traffic interrupted by
// bursts during which a single "hot" item dominates. It models the irregular
// arrival patterns the paper cites as a motivation for faster stream
// processing.
func BurstyOf[T sorter.Value](n, vocab, burstLen int, burstProb float64, seed uint64) []T {
	r := NewRNG(seed)
	out := make([]T, n)
	i := 0
	for i < n {
		if r.Float64() < burstProb {
			hot := T(r.Intn(vocab))
			end := i + burstLen
			if end > n {
				end = n
			}
			for ; i < end; i++ {
				out[i] = hot
			}
			continue
		}
		out[i] = T(r.Intn(vocab))
		i++
	}
	return out
}

// Bursty is BurstyOf at float32.
func Bursty(n, vocab, burstLen int, burstProb float64, seed uint64) []float32 {
	return BurstyOf[float32](n, vocab, burstLen, burstProb, seed)
}
