package stream

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	data := Uniform(10000, 55)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestTraceRoundTripQuick(t *testing.T) {
	prop := func(raw []float32) bool {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, raw); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != len(raw) {
			return false
		}
		for i := range raw {
			// NaN != NaN; compare bit patterns via equality where possible.
			if got[i] != raw[i] && !(got[i] != got[i] && raw[i] != raw[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v %v", got, err)
	}
}

func TestTraceBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("not a trace file at all")
	if _, err := ReadTrace(buf); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", err)
	}
}

func TestTraceTruncatedHeader(t *testing.T) {
	buf := bytes.NewBufferString("gpu")
	if _, err := ReadTrace(buf); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTrace(bytes.NewReader(short)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceSourceStreams(t *testing.T) {
	data := Sorted(100)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, data); err != nil {
		t.Fatal(err)
	}
	src, err := NewTraceSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 100 {
		t.Fatalf("Len = %d", src.Len())
	}
	got := Collect(src, -1)
	if len(got) != 100 || got[42] != 42 {
		t.Fatalf("streamed = %v...", got[:5])
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
	if _, ok := src.Next(); ok {
		t.Fatal("Next after end reported ok")
	}
}

func TestTraceWriterStreams(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float32{3, 1, 2} {
		if err := tw.Write(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil || len(got) != 3 || got[0] != 3 {
		t.Fatalf("round trip = %v, %v", got, err)
	}
}

func TestTraceWriterCountEnforced(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf, 1)
	if err := tw.Write(1); err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(2); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("overflow write err = %v", err)
	}
	tw2, _ := NewTraceWriter(&buf, 5)
	_ = tw2.Write(1)
	if err := tw2.Flush(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("short flush err = %v", err)
	}
}
