package sensortree

import (
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/stream"
)

// buildTree constructs a complete tree of the given fanout and depth with
// per-leaf Gaussian observations, returning the tree and all raw readings.
func buildTree(fanout, depth, readings int, seed *uint64) (*Node, []float32) {
	n := &Node{}
	var all []float32
	if depth == 0 {
		*seed++
		n.Observations = stream.Gaussian(readings, float64(50+*seed%20), 10, *seed)
		return n, n.Observations
	}
	for i := 0; i < fanout; i++ {
		c, obs := buildTree(fanout, depth-1, readings, seed)
		n.Children = append(n.Children, c)
		all = append(all, obs...)
	}
	return n, all
}

func TestAggregateErrorBound(t *testing.T) {
	for _, eps := range []float64{0.02, 0.05} {
		seed := uint64(1)
		root, all := buildTree(3, 3, 2000, &seed)
		agg := NewAggregator(eps, cpusort.QuicksortSorter[float32]{})
		s, st := agg.Aggregate(root)
		if s.N != int64(len(all)) {
			t.Fatalf("root N = %d, want %d", s.N, len(all))
		}
		ref := append([]float32(nil), all...)
		cpusort.Quicksort(ref)
		if got := s.TrueRankError(ref); got > eps+1e-9 {
			t.Fatalf("eps=%v: root rank error %v", eps, got)
		}
		if st.Nodes != 1+3+9+27 {
			t.Fatalf("visited %d nodes", st.Nodes)
		}
		if st.Observations != int64(len(all)) {
			t.Fatalf("observations = %d", st.Observations)
		}
	}
}

func TestMessageBound(t *testing.T) {
	const eps = 0.05
	seed := uint64(10)
	root, _ := buildTree(4, 3, 5000, &seed)
	agg := NewAggregator(eps, cpusort.QuicksortSorter[float32]{})
	_, st := agg.Aggregate(root)
	h := root.Height()
	// Messages are pruned to ceil(h/eps)+1 entries; leaves send their
	// unpruned (2/eps) summaries.
	budget := int(float64(h)/eps) + 2
	leafMsg := int(2/eps) + 3
	max := budget
	if leafMsg > max {
		max = leafMsg
	}
	if st.MaxMessage > max {
		t.Fatalf("max message %d exceeds budget %d", st.MaxMessage, max)
	}
	if st.MessageEntries == 0 {
		t.Fatal("no communication recorded")
	}
}

func TestCommunicationFarBelowRaw(t *testing.T) {
	// The point of the algorithm: total transmitted entries must be far
	// below shipping all raw readings up the tree.
	seed := uint64(20)
	root, all := buildTree(4, 2, 10000, &seed)
	agg := NewAggregator(0.01, cpusort.QuicksortSorter[float32]{})
	_, st := agg.Aggregate(root)
	if st.MessageEntries*5 > len(all) {
		t.Fatalf("communication %d entries not far below raw %d", st.MessageEntries, len(all))
	}
}

func TestInteriorObservations(t *testing.T) {
	// Interior nodes with their own readings must be counted too.
	root := &Node{
		Observations: stream.Uniform(1000, 1),
		Children: []*Node{
			{Observations: stream.Uniform(1000, 2)},
			{Observations: stream.Uniform(1000, 3)},
		},
	}
	agg := NewAggregator(0.05, cpusort.QuicksortSorter[float32]{})
	s, _ := agg.Aggregate(root)
	if s.N != 3000 {
		t.Fatalf("N = %d, want 3000", s.N)
	}
}

func TestEmptyNodes(t *testing.T) {
	root := &Node{Children: []*Node{{}, {Observations: []float32{1, 2, 3}}}}
	agg := NewAggregator(0.1, cpusort.QuicksortSorter[float32]{})
	s, _ := agg.Aggregate(root)
	if s.N != 3 {
		t.Fatalf("N = %d", s.N)
	}
	med := s.Query(0.5)
	if med != 2 {
		t.Fatalf("median = %v", med)
	}
}

func TestFullyEmptyTree(t *testing.T) {
	agg := NewAggregator(0.1, cpusort.QuicksortSorter[float32]{})
	s, st := agg.Aggregate(&Node{Children: []*Node{{}, {}}})
	if s.N != 0 || st.Observations != 0 {
		t.Fatalf("empty tree produced N=%d", s.N)
	}
}

func TestGPUBackendMatchesCPU(t *testing.T) {
	seed := uint64(30)
	root, _ := buildTree(2, 2, 4096, &seed)
	seed = 30
	root2, _ := buildTree(2, 2, 4096, &seed)
	cpuS, _ := NewAggregator(0.02, cpusort.QuicksortSorter[float32]{}).Aggregate(root)
	gpuS, _ := NewAggregator(0.02, gpusort.NewSorter[float32]()).Aggregate(root2)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if cpuS.Query(phi) != gpuS.Query(phi) {
			t.Fatalf("backends disagree at phi=%v", phi)
		}
	}
}

func TestHeight(t *testing.T) {
	leaf := &Node{}
	if leaf.Height() != 0 {
		t.Fatal("leaf height != 0")
	}
	root := &Node{Children: []*Node{{Children: []*Node{{}}}, {}}}
	if root.Height() != 2 {
		t.Fatalf("height = %d", root.Height())
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewAggregator(0, cpusort.QuicksortSorter[float32]{}) },
		func() { NewAggregator(0.1, cpusort.QuicksortSorter[float32]{}).Aggregate(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}
