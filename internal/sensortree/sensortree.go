// Package sensortree implements Greenwald and Khanna's sensor-network
// quantile aggregation, the algorithm the paper's Section 5.2 starts from
// before extending it to streams: sensors in a routing tree of height h
// each summarize their local observations by sorting and sampling; interior
// nodes merge their children's summaries and prune them to a fixed message
// budget before forwarding, so a node at height i holds an
// (eps/2 + i*eps/(2h))-approximate summary and the root answers quantile
// queries within eps — while every message stays O(h/eps) entries.
package sensortree

import (
	"fmt"
	"math"

	"gpustream/internal/sorter"
	"gpustream/internal/summary"
)

// Node is one sensor in the routing tree. Interior nodes may also carry
// their own observations.
type Node struct {
	Observations []float32
	Children     []*Node
}

// Height reports the length of the longest downward path from n (a leaf
// has height 0).
func (n *Node) Height() int {
	h := 0
	for _, c := range n.Children {
		if ch := c.Height() + 1; ch > h {
			h = ch
		}
	}
	return h
}

// Stats describes the communication cost of one aggregation.
type Stats struct {
	Nodes          int   // sensors visited
	MessageEntries int   // total summary entries transmitted upward
	MaxMessage     int   // largest single message, in entries
	Observations   int64 // raw readings summarized
}

// Aggregator runs tree aggregations with a given error budget and sorting
// backend (local sorts are the per-node cost the paper's GPU offload
// targets on gateway-class nodes).
type Aggregator struct {
	eps    float64
	sorter sorter.Sorter[float32]
}

// NewAggregator returns an eps-approximate tree aggregator sorting local
// observations with s.
func NewAggregator(eps float64, s sorter.Sorter[float32]) *Aggregator {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("sensortree: eps %v out of (0, 1)", eps))
	}
	return &Aggregator{eps: eps, sorter: s}
}

// Aggregate summarizes the whole tree rooted at root and returns the root
// summary (answering quantile queries within eps of the union of all
// observations) along with communication statistics.
func (a *Aggregator) Aggregate(root *Node) (*summary.Summary[float32], Stats) {
	if root == nil {
		panic("sensortree: nil root")
	}
	h := root.Height()
	if h == 0 {
		h = 1 // degenerate single-node tree still needs a budget
	}
	// Each prune adds eps/(2h); budget B chosen so 1/(2B) <= eps/(2h).
	budget := int(math.Ceil(float64(h) / a.eps))
	var st Stats
	s := a.aggregate(root, budget, &st)
	return s, st
}

func (a *Aggregator) aggregate(n *Node, budget int, st *Stats) *summary.Summary[float32] {
	st.Nodes++
	var acc *summary.Summary[float32]
	if len(n.Observations) > 0 {
		local := append([]float32(nil), n.Observations...)
		a.sorter.Sort(local)
		acc = summary.FromSortedWindow(local, a.eps)
		st.Observations += int64(len(local))
	}
	for _, c := range n.Children {
		child := a.aggregate(c, budget, st)
		if size := child.Size(); size > 0 {
			st.MessageEntries += size
			if size > st.MaxMessage {
				st.MaxMessage = size
			}
		}
		if acc == nil {
			acc = child
		} else {
			acc = summary.Merge(acc, child)
		}
	}
	if acc == nil {
		return &summary.Summary[float32]{Eps: a.eps / 2}
	}
	// Leaves forward their summary unpruned (it is already small);
	// interior nodes prune after merging, paying eps/(2h) once per level.
	if len(n.Children) > 0 && acc.Size() > budget+1 {
		acc = acc.Prune(budget)
	}
	return acc
}
