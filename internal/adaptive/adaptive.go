// Package adaptive implements the runtime controller that owns a staged
// pipeline's execution knobs: which sorting backend sorts the windows, and
// how long the windows are. The paper fixes both at configuration time and
// shows the best choice depends on the window length (the CPU/GPU crossover
// of Section 6 sits near n≈16K on the 2004 testbed); the controller makes
// the choice live, per estimator, from the same pipeline.Stats telemetry
// the perfmodel consumes — measured sort nanoseconds per sorted value.
//
// The controller is a pipeline.Tuner: the core calls Retune under its lock
// after every merged window, and the controller answers with the knobs for
// subsequent windows. It is passive — it owns no goroutines and never
// calls back into the core — so attaching one adds no lifecycle.
//
// State machine (see DESIGN.md §15):
//
//	probe  — cycle through every candidate backend for ProbeWindows
//	         windows each, measuring ns/value; Config.ProbeFirst (the
//	         construction backend) is measured first, then the rest in
//	         ascending order of their closed-form prior at the current
//	         window. Each burst is reduced to its lower median — one GC
//	         pause or stale async window cannot mis-rank close candidates
//	         — and a candidate measuring more than abortFactor times the
//	         round's best is cut off after a single window. Then commit
//	         to the measured argmin.
//	window — with the committed backend, hill-climb the window size:
//	         double it while the measured ns/value improves by more than
//	         the hysteresis margin, then try one halving step below the
//	         start; bounded by [MinWindow, MaxWindow]. Skipped when
//	         Config.TuneWindow is false (sliding families: the pane size
//	         is query semantics, not an execution knob).
//	conc   — with backend and window committed, measure one burst in the
//	         incumbent execution mode and one with sync<->async flipped,
//	         scored on critical-path time per value (sort + merge +
//	         compress − overlap); commit to the argmin. Skipped unless
//	         Config.TuneAsync. The pipeline applies mode flips between
//	         merged windows only, so any flip schedule is bit-identical
//	         to a fixed mode.
//	steady — hold the choice, maintaining an EWMA of ns/value. If the
//	         EWMA degrades past ReprobeFactor times the committed
//	         measurement, re-enter probe (the stream's distribution or
//	         the host changed).
//
// Correctness is the pipeline's problem, not the controller's, by
// construction: every schedule the controller emits keeps windows at or
// above MinWindow — the construction-time window of the estimator, i.e.
// the family's eps floor — and window-boundary knob changes preserve the
// "every value passes through exactly one sorted window" invariant the
// families' error budgets rest on.
package adaptive

import (
	"sort"
	"sync"
	"time"

	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
)

// Candidate is one backend the controller may select. Each estimator needs
// its own Candidate set: the sorter built by New is owned by that
// estimator's pipeline and must not be shared.
type Candidate[T sorter.Value] struct {
	// Backend is the canonical backend name ("gpu", "samplesort", ...).
	Backend string
	// New builds the candidate's sorter, called at most once per
	// controller when the candidate is first probed.
	New func() sorter.Sorter[T]
	// Modeled is the closed-form prior: the predicted wall clock of one
	// n-value window sort on the modeled testbed. It orders the probe
	// phase; nil candidates probe last.
	Modeled func(n int) time.Duration
}

// Config tunes the controller.
type Config struct {
	// MinWindow is the smallest window the controller will ever schedule
	// and the floor the estimator's eps guarantee requires. Zero adopts
	// the window observed at the first Retune — the estimator's
	// construction window — which is what the engine uses.
	MinWindow int
	// MaxWindow bounds window growth; zero selects 64*MinWindow.
	MaxWindow int
	// TuneWindow enables the window hill-climb phase. Off, the controller
	// adapts the backend only (the sliding families).
	TuneWindow bool
	// TuneAsync enables the concurrency phase: after backend (and window)
	// have settled, the controller measures the incumbent execution mode,
	// flips sync<->async, and commits to whichever moves the stream faster.
	TuneAsync bool
	// ProbeWindows is how many windows each candidate is measured for in
	// the probe phase and each hill-climb trial; default 4.
	ProbeWindows int
	// ProbeFirst names the backend probed before the modeled order, when it
	// is among the candidates. The engine passes its construction backend:
	// measuring the incumbent first gives the early-abort check a reference,
	// so expensive candidates are cut off after a single window instead of
	// a full burst, and a stream too short to finish probing has already
	// been running the backend it was built with.
	ProbeFirst string
	// SettleWindows is how many steady-state windows pass between
	// regression checks; default 64.
	SettleWindows int
	// ReprobeFactor is the steady-state degradation that triggers a
	// re-probe, as a multiple of the committed measurement; default 1.5.
	ReprobeFactor float64
}

func (c *Config) defaults() {
	if c.ProbeWindows <= 0 {
		c.ProbeWindows = 4
	}
	if c.SettleWindows <= 0 {
		c.SettleWindows = 64
	}
	if c.ReprobeFactor <= 1 {
		c.ReprobeFactor = 1.5
	}
}

// Phase names, as exposed in Decision.
const (
	PhaseProbe  = "probe"
	PhaseWindow = "window"
	PhaseConc   = "concurrency"
	PhaseSteady = "steady"
)

// Decision is the controller's externally visible state, surfaced through
// engine stats, streammine -stats and the service's /statsz.
type Decision struct {
	Backend  string `json:"backend"`
	Window   int    `json:"window"`
	Phase    string `json:"phase"`
	Switches int    `json:"switches"`
	// Async is the live execution mode ("sync" or "async"), empty until
	// the first Retune has reported the pipeline's state.
	Async string `json:"async,omitempty"`
	// NsPerValue holds the latest measured sort cost per value for every
	// backend that has been probed so far.
	NsPerValue map[string]float64 `json:"ns_per_value,omitempty"`
}

// Controller implements pipeline.Tuner. One Controller serves exactly one
// pipeline; Decision is safe to call concurrently with Retune.
type Controller[T sorter.Value] struct {
	mu    sync.Mutex
	cands []Candidate[T]
	cfg   Config

	sorters  []sorter.Sorter[T] // lazily built, index-aligned with cands
	ns       []float64          // latest measured ns/value per candidate, 0 = unmeasured
	cur      int                // candidate currently sorting windows
	window   int                // window currently scheduled
	phase    string
	started  bool // first Retune seen, MinWindow adopted
	switches int

	// Retune reads cumulative Stats; deltas against the previous call give
	// the per-window measurement.
	lastSort     time.Duration
	lastMerge    time.Duration
	lastCompress time.Duration
	lastOverlap  time.Duration
	lastValues   int64

	// Concurrency-phase state.
	async     bool    // live execution mode, mirrored from cur each Retune
	seen      bool    // async has been observed at least once
	concTrial int     // 0 measuring the incumbent mode, 1 measuring the flip
	concBase  float64 // incumbent-mode statistic

	// Measurement burst for the current probe step or window trial.
	samples    []float64 // per-window ns/value of the current burst
	skipLeft   int       // windows to discard before sampling (async staleness)
	skip       int       // windows discarded after every knob switch
	roundBest  float64   // best statistic completed in the current probe round
	probeOrder []int // candidate indexes in probe order
	probeAt    int   // position in probeOrder being measured

	// Window hill-climb state.
	dir       int     // +1 doubling, -1 halving
	baseNs    float64 // ns/value at the accepted window
	prevWin   int     // window to revert to if the trial regresses
	steadyWin int     // windows since the last steady-state check
	steadyNs  float64 // EWMA of ns/value in steady state
}

// New returns a controller choosing among cands. cands must be non-empty;
// one controller per estimator pipeline.
func New[T sorter.Value](cands []Candidate[T], cfg Config) *Controller[T] {
	if len(cands) == 0 {
		panic("adaptive: no candidates")
	}
	cfg.defaults()
	return &Controller[T]{
		cands:   cands,
		cfg:     cfg,
		sorters: make([]sorter.Sorter[T], len(cands)),
		ns:      make([]float64, len(cands)),
		phase:   PhaseProbe,
	}
}

// sorterFor lazily builds candidate i's sorter.
func (c *Controller[T]) sorterFor(i int) sorter.Sorter[T] {
	if c.sorters[i] == nil {
		c.sorters[i] = c.cands[i].New()
	}
	return c.sorters[i]
}

// start adopts the pipeline's construction knobs and orders the probe by
// the closed-form prior at the adopted window.
func (c *Controller[T]) start(cur pipeline.Knobs[T]) {
	if c.cfg.MinWindow <= 0 {
		c.cfg.MinWindow = cur.Window
	}
	if c.cfg.MaxWindow <= 0 {
		c.cfg.MaxWindow = 64 * c.cfg.MinWindow
	}
	c.window = cur.Window
	if c.window < c.cfg.MinWindow {
		c.window = c.cfg.MinWindow
	}
	c.probeOrder = make([]int, len(c.cands))
	for i := range c.probeOrder {
		c.probeOrder[i] = i
	}
	w := c.window
	sort.SliceStable(c.probeOrder, func(a, b int) bool {
		ca, cb := c.cands[c.probeOrder[a]], c.cands[c.probeOrder[b]]
		if pf := c.cfg.ProbeFirst; pf != "" && ca.Backend != cb.Backend {
			if ca.Backend == pf {
				return true
			}
			if cb.Backend == pf {
				return false
			}
		}
		if ca.Modeled == nil {
			return false
		}
		if cb.Modeled == nil {
			return true
		}
		return ca.Modeled(w) < cb.Modeled(w)
	})
	c.probeAt = 0
	c.cur = c.probeOrder[0]
	c.started = true
	c.resetBurst()
}

// Retune implements pipeline.Tuner. It runs under the core lock.
func (c *Controller[T]) Retune(st pipeline.Stats, cur pipeline.Knobs[T]) (pipeline.Knobs[T], bool) {
	c.mu.Lock()
	defer c.mu.Unlock()

	dSort := st.Sort - c.lastSort
	dMerge := st.Merge - c.lastMerge
	dCompress := st.Compress - c.lastCompress
	dOverlap := st.Overlap - c.lastOverlap
	dVals := st.SortedValues - c.lastValues
	c.lastSort, c.lastMerge = st.Sort, st.Merge
	c.lastCompress, c.lastOverlap = st.Compress, st.Overlap
	c.lastValues = st.SortedValues
	c.async = cur.Async == pipeline.AsyncOn
	c.seen = true

	// On an async pipeline (MaxInFlight > 0 from the first window) up to
	// two windows sorted under the previous knobs may still be in flight
	// when a switch lands, so their sort time would be attributed to the
	// new choice. Discard that many windows after every switch.
	if st.MaxInFlight > 0 && c.skip == 0 {
		c.skip = 2
	}

	if !c.started {
		c.start(cur)
		// The construction sorter is not necessarily a candidate's
		// instance; switch to the first probe candidate immediately.
		return c.knobs(), true
	}
	if dVals <= 0 {
		return pipeline.Knobs[T]{}, false
	}
	perValue := float64(dSort.Nanoseconds()) / float64(dVals)

	switch c.phase {
	case PhaseProbe:
		return c.probeStep(perValue)
	case PhaseWindow:
		return c.windowStep(perValue)
	case PhaseConc:
		// The mode decision is about the whole pipeline's critical path,
		// not just the sort: busy time across all three stages minus the
		// overlap the executor hid. Sync scores sort+merge+compress; async
		// scores the same work minus what it ran concurrently.
		critical := dSort + dMerge + dCompress - dOverlap
		return c.concStep(float64(critical.Nanoseconds()) / float64(dVals))
	default:
		return c.steadyStep(perValue)
	}
}

// settle leaves the backend/window phases: into the concurrency phase when
// enabled, else straight to steady state. The concurrency phase starts by
// measuring the incumbent mode, so no knob change is needed on entry.
func (c *Controller[T]) settle() {
	if c.cfg.TuneAsync {
		c.phase = PhaseConc
		c.concTrial = 0
		c.concBase = 0
		c.resetBurst()
		return
	}
	c.phase = PhaseSteady
}

// concStep runs the concurrency phase: one burst in the incumbent execution
// mode, one in the flipped mode, commit to the measured argmin. The probe
// order is the modeled-cost order in miniature — the incumbent was chosen by
// everything measured so far, so it is the reference the flip must beat by
// the hysteresis margin.
func (c *Controller[T]) concStep(perValue float64) (pipeline.Knobs[T], bool) {
	if !c.burst(perValue) {
		return pipeline.Knobs[T]{}, false
	}
	stat := c.statistic()
	c.resetBurst()
	if c.concTrial == 0 {
		c.concBase = stat
		c.concTrial = 1
		c.switches++
		return c.modeKnobs(!c.async), true
	}
	c.phase = PhaseSteady
	if stat < c.concBase*(1-hysteresis) {
		// The flipped mode (already active) wins; hold it.
		return pipeline.Knobs[T]{}, false
	}
	c.switches++
	return c.modeKnobs(!c.async), true
}

// modeKnobs materializes the current backend/window choice with an explicit
// execution mode.
func (c *Controller[T]) modeKnobs(async bool) pipeline.Knobs[T] {
	k := c.knobs()
	k.Async = pipeline.AsyncOff
	if async {
		k.Async = pipeline.AsyncOn
	}
	return k
}

// knobs materializes the controller's current choice.
func (c *Controller[T]) knobs() pipeline.Knobs[T] {
	return pipeline.Knobs[T]{Sorter: c.sorterFor(c.cur), Window: c.window}
}

// burst accumulates one window's measurement, honoring the post-switch
// skip, and reports whether the burst holds a full ProbeWindows samples.
func (c *Controller[T]) burst(perValue float64) bool {
	if c.skipLeft > 0 {
		c.skipLeft--
		return false
	}
	c.samples = append(c.samples, perValue)
	return len(c.samples) >= c.cfg.ProbeWindows
}

// statistic reduces the burst to one number: the lower median. One GC
// pause, scheduler preemption, or (async) stale window in a burst cannot
// move it, unlike the mean — a single inflated sample at a 50µs window
// scale is enough to mis-rank two close candidates.
func (c *Controller[T]) statistic() float64 {
	s := append([]float64(nil), c.samples...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

func (c *Controller[T]) resetBurst() { c.samples, c.skipLeft = c.samples[:0], c.skip }

// abortFactor is the measured slowdown versus the best candidate completed
// this round at which a probe burst stops early: a backend this far behind
// cannot win, so there is no point paying its full burst (the simulated
// GPU backends cost ~10x the host sorters per window).
const abortFactor = 3.0

func (c *Controller[T]) probeStep(perValue float64) (pipeline.Knobs[T], bool) {
	full := c.burst(perValue)
	if !full && (len(c.samples) == 0 || c.roundBest == 0 || perValue <= abortFactor*c.roundBest) {
		return pipeline.Knobs[T]{}, false
	}
	stat := c.statistic()
	c.ns[c.cur] = stat
	if c.roundBest == 0 || stat < c.roundBest {
		c.roundBest = stat
	}
	c.resetBurst()
	if c.probeAt++; c.probeAt < len(c.probeOrder) {
		c.cur = c.probeOrder[c.probeAt]
		c.switches++
		return c.knobs(), true
	}
	// Probe complete: commit to the measured argmin.
	best := c.probeOrder[0]
	for _, i := range c.probeOrder {
		if c.ns[i] > 0 && (c.ns[best] == 0 || c.ns[i] < c.ns[best]) {
			best = i
		}
	}
	if best != c.cur {
		c.switches++
	}
	c.cur = best
	c.baseNs = c.ns[best]
	c.steadyNs = c.baseNs
	if c.cfg.TuneWindow && c.window*2 <= c.cfg.MaxWindow {
		c.phase = PhaseWindow
		c.dir = +1
		c.prevWin = c.window
		c.window *= 2
	} else {
		c.settle()
	}
	return c.knobs(), true
}

// hysteresis is the relative improvement a window trial must show to be
// accepted; it keeps the hill-climb from chasing measurement noise.
const hysteresis = 0.02

func (c *Controller[T]) windowStep(perValue float64) (pipeline.Knobs[T], bool) {
	if !c.burst(perValue) {
		return pipeline.Knobs[T]{}, false
	}
	trialNs := c.statistic()
	c.resetBurst()
	if trialNs < c.baseNs*(1-hysteresis) {
		// Accept and keep climbing in the same direction.
		c.baseNs = trialNs
		c.steadyNs = trialNs
		next := c.window * 2
		if c.dir < 0 {
			next = c.window / 2
		}
		if next >= c.cfg.MinWindow && next <= c.cfg.MaxWindow {
			c.prevWin = c.window
			c.window = next
			return c.knobs(), true
		}
		c.settle()
		return pipeline.Knobs[T]{}, false
	}
	// Trial regressed: revert, and if we were growing, try one halving
	// step below the accepted window before settling.
	c.window = c.prevWin
	if c.dir > 0 && c.window/2 >= c.cfg.MinWindow {
		c.dir = -1
		c.prevWin = c.window
		c.window /= 2
		return c.knobs(), true
	}
	c.settle()
	return c.knobs(), true
}

func (c *Controller[T]) steadyStep(perValue float64) (pipeline.Knobs[T], bool) {
	// EWMA with alpha 0.2: smooth enough to ride out one slow window,
	// responsive enough to notice a regime change within tens of windows.
	c.steadyNs = 0.8*c.steadyNs + 0.2*perValue
	c.ns[c.cur] = c.steadyNs
	if c.steadyWin++; c.steadyWin < c.cfg.SettleWindows {
		return pipeline.Knobs[T]{}, false
	}
	c.steadyWin = 0
	if c.baseNs > 0 && c.steadyNs > c.cfg.ReprobeFactor*c.baseNs {
		// The committed choice degraded: measure the field again.
		c.phase = PhaseProbe
		c.probeAt = 0
		c.cur = c.probeOrder[0]
		c.switches++
		c.roundBest = 0
		c.resetBurst()
		return c.knobs(), true
	}
	return pipeline.Knobs[T]{}, false
}

// Decision reports the controller's current choice. Safe for concurrent
// use with Retune.
func (c *Controller[T]) Decision() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := Decision{
		Backend:  c.cands[c.cur].Backend,
		Window:   c.window,
		Phase:    c.phase,
		Switches: c.switches,
	}
	if !c.started {
		d.Phase = PhaseProbe
	}
	if c.seen {
		d.Async = "sync"
		if c.async {
			d.Async = "async"
		}
	}
	for i, n := range c.ns {
		if n > 0 {
			if d.NsPerValue == nil {
				d.NsPerValue = make(map[string]float64, len(c.ns))
			}
			d.NsPerValue[c.cands[i].Backend] = n
		}
	}
	return d
}

// pinned is the do-nothing tuner: it exercises the whole retune call path
// but never changes a knob, so a pinned run is bit-identical to the static
// configuration it was constructed with.
type pinned[T sorter.Value] struct{}

func (pinned[T]) Retune(pipeline.Stats, pipeline.Knobs[T]) (pipeline.Knobs[T], bool) {
	return pipeline.Knobs[T]{}, false
}

// Pinned returns a tuner that never switches anything — the bit-identity
// baseline the test suite compares controller-driven runs against.
func Pinned[T sorter.Value]() pipeline.Tuner[T] { return pinned[T]{} }

var _ pipeline.Tuner[float32] = (*Controller[float32])(nil)
