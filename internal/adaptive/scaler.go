package adaptive

// Scaler is the shard-count sibling of Controller: where the Controller
// owns one pipeline's sorter/window/mode knobs through the Tuner surface,
// the Scaler owns a sharded estimator's worker count through the
// shard.Rescaler surface (satisfied structurally — this package does not
// import internal/shard). The family calls Observe after every dispatched
// batch; the Scaler measures throughput as wall clock per ingested value
// between observations and hill-climbs the shard count: double while it
// helps, then try one halving step, then hold with an EWMA regression
// check that re-enters the climb on degradation. Rescales only ever land
// between batches, where the pool is quiescent, so the merge-based error
// budgets (scale-up shards start at the merge-safe eps/2 budget,
// scale-down folds a drained shard's snapshot) hold under any schedule.

import (
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ScalerConfig tunes a Scaler.
type ScalerConfig struct {
	// Min and Max bound the shard count; defaults 1 and 2*GOMAXPROCS.
	Min, Max int
	// ProbeBatches is the burst length of each measurement; default 6.
	ProbeBatches int
	// SettleBatches is how many steady-state batches pass between
	// regression checks; default 64.
	SettleBatches int
	// Hysteresis is the relative improvement a trial count must show to be
	// accepted; default 0.05 (rescaling moves summary state, so it takes a
	// larger win than a sorter swap to justify).
	Hysteresis float64
	// ReprobeFactor is the steady-state degradation that re-enters the
	// climb, as a multiple of the committed measurement; default 1.5.
	ReprobeFactor float64
}

func (c *ScalerConfig) defaults() {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.ProbeBatches <= 0 {
		c.ProbeBatches = 6
	}
	if c.SettleBatches <= 0 {
		c.SettleBatches = 64
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.05
	}
	if c.ReprobeFactor <= 1 {
		c.ReprobeFactor = 1.5
	}
}

// ScalerDecision is the Scaler's externally visible state, surfaced through
// engine stats, streammine -stats and the service's /statsz.
type ScalerDecision struct {
	Shards   int    `json:"shards"`
	Phase    string `json:"phase"`
	Rescales int    `json:"rescales"`
	// NsPerValue holds the latest measured wall clock per value for every
	// shard count tried so far, keyed by the decimal count.
	NsPerValue map[string]float64 `json:"ns_per_value,omitempty"`
}

// Scaler hill-climbs a sharded estimator's worker count. One Scaler serves
// exactly one estimator; Decision is safe to call concurrently with Observe.
type Scaler struct {
	mu  sync.Mutex
	cfg ScalerConfig

	started  bool
	shards   int // count currently commanded
	phase    string
	rescales int
	ns       map[int]float64 // latest statistic per shard count

	lastVals int64
	lastAt   time.Time

	samples  []float64
	skipLeft int

	dir      int     // +1 doubling, -1 halving
	baseNs   float64 // statistic at the accepted count
	prevN    int     // count to revert to if the trial regresses
	steadyN  int
	steadyNs float64
}

// NewScaler returns a shard-count controller. The first Observe adopts the
// estimator's construction count as the climb's starting point.
func NewScaler(cfg ScalerConfig) *Scaler {
	cfg.defaults()
	return &Scaler{cfg: cfg, phase: PhaseProbe, ns: make(map[int]float64)}
}

// skipBatches is how many observations are discarded after every rescale:
// the batch mid-flight during the transition plus one refill of the worker
// channels carry the old count's timing.
const skipBatches = 2

// Observe implements the shard package's Rescaler surface. totalValues is
// the estimator's cumulative ingested count and shards its live worker
// count; the return value is the desired count, 0 to keep it. Observe is
// cheap (one time.Now and a few comparisons) — it runs on the ingestion
// path once per dispatched batch.
func (s *Scaler) Observe(totalValues int64, shards int) int {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		s.started = true
		s.shards = shards
		s.clamp()
		s.lastVals, s.lastAt = totalValues, now
		if s.shards != shards {
			s.rescales++
			return s.shards
		}
		return 0
	}
	dVals := totalValues - s.lastVals
	dWall := now.Sub(s.lastAt)
	s.lastVals, s.lastAt = totalValues, now
	if dVals <= 0 || dWall <= 0 {
		return 0
	}
	if s.skipLeft > 0 {
		s.skipLeft--
		return 0
	}
	s.samples = append(s.samples, float64(dWall.Nanoseconds())/float64(dVals))
	if len(s.samples) < s.cfg.ProbeBatches {
		return 0
	}
	stat := s.statistic()
	s.samples = s.samples[:0]
	s.ns[s.shards] = stat

	switch s.phase {
	case PhaseProbe:
		// First burst at the construction count: becomes the climb base.
		s.baseNs, s.steadyNs = stat, stat
		s.phase = PhaseWindow
		s.dir = +1
		return s.trial(s.shards * 2)
	case PhaseWindow:
		if stat < s.baseNs*(1-s.cfg.Hysteresis) {
			s.baseNs, s.steadyNs = stat, stat
			next := s.shards * 2
			if s.dir < 0 {
				next = s.shards / 2
			}
			if r := s.trial(next); r != 0 {
				return r
			}
			s.phase = PhaseSteady
			return 0
		}
		// Trial regressed: go back, and if we were growing, jump straight
		// to one halving step below the accepted count before settling
		// (one rescale instead of a revert followed by a halve).
		accepted := s.prevN
		if s.dir > 0 && accepted/2 >= s.cfg.Min && accepted/2 != s.shards {
			s.dir = -1
			s.prevN = accepted
			s.shards = accepted / 2
			s.rescales++
			s.skipLeft = skipBatches
			return s.shards
		}
		s.phase = PhaseSteady
		return s.rescale(accepted)
	default:
		s.steadyNs = 0.8*s.steadyNs + 0.2*stat
		s.ns[s.shards] = s.steadyNs
		if s.steadyN++; s.steadyN < s.cfg.SettleBatches/s.cfg.ProbeBatches+1 {
			return 0
		}
		s.steadyN = 0
		if s.baseNs > 0 && s.steadyNs > s.cfg.ReprobeFactor*s.baseNs {
			s.phase = PhaseProbe
			s.samples = s.samples[:0]
		}
		return 0
	}
}

// trial moves to a candidate count if it is in bounds and different,
// recording the revert point; returns 0 (and leaves the phase to the
// caller) when the candidate is out of bounds.
func (s *Scaler) trial(next int) int {
	if next < s.cfg.Min || next > s.cfg.Max || next == s.shards {
		return 0
	}
	s.prevN = s.shards
	s.shards = next
	s.rescales++
	s.skipLeft = skipBatches
	return next
}

// rescale commands count directly (reverts), returning 0 if already there.
func (s *Scaler) rescale(count int) int {
	if count == s.shards {
		return 0
	}
	s.shards = count
	s.rescales++
	s.skipLeft = skipBatches
	return count
}

func (s *Scaler) clamp() {
	if s.shards < s.cfg.Min {
		s.shards = s.cfg.Min
	}
	if s.shards > s.cfg.Max {
		s.shards = s.cfg.Max
	}
}

// statistic is the lower median of the burst, same robustness argument as
// the Controller's: one GC pause cannot mis-rank two close counts.
func (s *Scaler) statistic() float64 {
	c := append([]float64(nil), s.samples...)
	sort.Float64s(c)
	return c[(len(c)-1)/2]
}

// Decision reports the Scaler's current choice. Safe for concurrent use
// with Observe.
func (s *Scaler) Decision() ScalerDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := ScalerDecision{Shards: s.shards, Phase: s.phase, Rescales: s.rescales}
	for n, v := range s.ns {
		if d.NsPerValue == nil {
			d.NsPerValue = make(map[string]float64, len(s.ns))
		}
		d.NsPerValue[strconv.Itoa(n)] = v
	}
	return d
}
