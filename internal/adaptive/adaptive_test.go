package adaptive

import (
	"testing"
	"time"

	"gpustream/internal/pipeline"
	"gpustream/internal/sorter"
)

// simCandidates builds three named do-nothing candidates whose Modeled
// priors deliberately disagree with the measured costs the simulator will
// report, so a passing probe proves measurement beats the prior.
func simCandidates() []Candidate[float32] {
	mk := func(name string, modeledNsPerValue float64) Candidate[float32] {
		return Candidate[float32]{
			Backend: name,
			New: func() sorter.Sorter[float32] {
				return sorter.Func[float32]{SortFunc: func([]float32) {}, Label: name}
			},
			Modeled: func(n int) time.Duration {
				return time.Duration(modeledNsPerValue * float64(n))
			},
		}
	}
	// Prior claims gpu is cheapest; the simulated measurements below say
	// samplesort is.
	return []Candidate[float32]{mk("gpu", 10), mk("cpu", 50), mk("samplesort", 30)}
}

// simulate drives windows through the controller: cost(name, w) is the
// simulated sort cost in ns/value when backend name sorts windows of w.
// It returns the final knobs and the smallest window ever scheduled.
func simulate(ctrl *Controller[float32], cost func(name string, w int) float64, windows int, startWindow int) (pipeline.Knobs[float32], int) {
	cur := pipeline.Knobs[float32]{
		Sorter: sorter.Func[float32]{SortFunc: func([]float32) {}, Label: "static"},
		Window: startWindow,
	}
	minSeen := startWindow
	var st pipeline.Stats
	for i := 0; i < windows; i++ {
		per := cost(cur.Sorter.Name(), cur.Window)
		st.Windows++
		st.SortedValues += int64(cur.Window)
		st.Sort += time.Duration(per * float64(cur.Window))
		if next, ok := ctrl.Retune(st, cur); ok {
			if next.Sorter != nil {
				cur.Sorter = next.Sorter
			}
			if next.Window > 0 {
				cur.Window = next.Window
			}
		}
		if cur.Window < minSeen {
			minSeen = cur.Window
		}
	}
	return cur, minSeen
}

func flatCost(base map[string]float64) func(string, int) float64 {
	return func(name string, _ int) float64 {
		if c, ok := base[name]; ok {
			return c
		}
		return 100
	}
}

func TestProbeCommitsToMeasuredArgmin(t *testing.T) {
	ctrl := New(simCandidates(), Config{})
	cost := flatCost(map[string]float64{"gpu": 100, "cpu": 60, "samplesort": 30})
	cur, _ := simulate(ctrl, cost, 60, 1000)
	if cur.Sorter.Name() != "samplesort" {
		t.Fatalf("committed to %q, want samplesort (the measured argmin)", cur.Sorter.Name())
	}
	d := ctrl.Decision()
	if d.Backend != "samplesort" {
		t.Fatalf("Decision().Backend = %q", d.Backend)
	}
	if d.Phase == PhaseProbe {
		t.Fatalf("still probing after 60 windows")
	}
	if len(d.NsPerValue) != 3 {
		t.Fatalf("NsPerValue covers %d backends, want 3: %v", len(d.NsPerValue), d.NsPerValue)
	}
	if d.NsPerValue["gpu"] <= d.NsPerValue["samplesort"] {
		t.Fatalf("measured costs inverted: %v", d.NsPerValue)
	}
}

func TestProbeOrderFollowsModeledPrior(t *testing.T) {
	ctrl := New(simCandidates(), Config{})
	// One Retune call performs adoption and switches to the first probe
	// candidate, which must be the modeled-cheapest one (gpu in the sim).
	cur := pipeline.Knobs[float32]{Sorter: sorter.Func[float32]{Label: "static"}, Window: 500}
	next, ok := ctrl.Retune(pipeline.Stats{}, cur)
	if !ok || next.Sorter.Name() != "gpu" {
		t.Fatalf("first probe candidate = %v (ok=%v), want the modeled-best gpu", next.Sorter, ok)
	}
}

func TestWindowHillClimbGrowsWhenBiggerIsFaster(t *testing.T) {
	ctrl := New(simCandidates(), Config{TuneWindow: true})
	// Per-value cost falls with the window (amortized fixed overhead), so
	// the climb should run all the way to MaxWindow = 64*start.
	cost := func(name string, w int) float64 {
		base := flatCost(map[string]float64{"gpu": 100, "cpu": 60, "samplesort": 30})(name, w)
		return base * (1 + 200/float64(w))
	}
	cur, minSeen := simulate(ctrl, cost, 400, 100)
	if cur.Window != 6400 {
		t.Fatalf("final window %d, want MaxWindow 6400", cur.Window)
	}
	if minSeen < 100 {
		t.Fatalf("scheduled a window of %d below MinWindow 100", minSeen)
	}
	if d := ctrl.Decision(); d.Phase != PhaseSteady {
		t.Fatalf("phase %q after the climb, want steady", d.Phase)
	}
}

func TestWindowHillClimbRespectsMinWindow(t *testing.T) {
	ctrl := New(simCandidates(), Config{TuneWindow: true})
	// Per-value cost grows with the window, so every trial regresses; the
	// controller must settle back at the construction window and never
	// schedule below it.
	cost := func(name string, w int) float64 {
		base := flatCost(map[string]float64{"gpu": 100, "cpu": 60, "samplesort": 30})(name, w)
		return base * (1 + float64(w)/500)
	}
	cur, minSeen := simulate(ctrl, cost, 200, 100)
	if cur.Window != 100 {
		t.Fatalf("final window %d, want the construction window 100", cur.Window)
	}
	if minSeen < 100 {
		t.Fatalf("scheduled a window of %d below MinWindow 100", minSeen)
	}
}

func TestSteadyStateReprobesOnRegression(t *testing.T) {
	ctrl := New(simCandidates(), Config{SettleWindows: 8})
	// samplesort is cheapest until window 80, then becomes pathological;
	// the controller must re-probe and land on cpu.
	win := 0
	cost := func(name string, w int) float64 {
		win++
		c := flatCost(map[string]float64{"gpu": 100, "cpu": 60, "samplesort": 30})(name, w)
		if name == "samplesort" && win > 80 {
			c = 500
		}
		return c
	}
	cur, _ := simulate(ctrl, cost, 400, 1000)
	if got := cur.Sorter.Name(); got != "cpu" {
		t.Fatalf("after regime change the controller runs %q, want cpu", got)
	}
	if d := ctrl.Decision(); d.Switches < 4 {
		t.Fatalf("expected at least the probe switches plus a re-probe, got %d", d.Switches)
	}
}

func TestPinnedNeverChangesKnobs(t *testing.T) {
	p := Pinned[float32]()
	cur := pipeline.Knobs[float32]{Sorter: sorter.Func[float32]{Label: "x"}, Window: 123}
	for i := 0; i < 10; i++ {
		st := pipeline.Stats{Windows: int64(i), SortedValues: int64(100 * i), Sort: time.Duration(i) * time.Millisecond}
		if next, ok := p.Retune(st, cur); ok || next.Sorter != nil || next.Window != 0 {
			t.Fatalf("pinned tuner changed knobs: %+v ok=%v", next, ok)
		}
	}
}

func TestTuneWindowOffKeepsWindowFixed(t *testing.T) {
	ctrl := New(simCandidates(), Config{TuneWindow: false})
	cost := flatCost(map[string]float64{"gpu": 100, "cpu": 60, "samplesort": 30})
	cur, minSeen := simulate(ctrl, cost, 300, 250)
	if cur.Window != 250 || minSeen != 250 {
		t.Fatalf("window moved with TuneWindow off: final %d min %d", cur.Window, minSeen)
	}
}
