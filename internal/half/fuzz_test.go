package half

import "testing"

func FuzzHalfRoundTrip(f *testing.F) {
	f.Add(float32(1.5))
	f.Add(float32(-0.0001))
	f.Fuzz(func(t *testing.T, v float32) {
		if v != v {
			return
		}
		once := FromFloat32(v).ToFloat32()
		twice := FromFloat32(once).ToFloat32()
		if once != twice {
			t.Fatalf("not idempotent: %v -> %v -> %v", v, once, twice)
		}
		// Quantization never inverts sign for nonzero results.
		if once != 0 && (once > 0) != (v > 0) {
			t.Fatalf("sign flipped: %v -> %v", v, once)
		}
	})
}
