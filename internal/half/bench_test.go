package half

import "testing"

func BenchmarkQuantize(b *testing.B) {
	data := make([]float32, 1<<16)
	for i := range data {
		data[i] = float32(i) * 0.1
	}
	b.SetBytes(int64(len(data) * 4))
	for i := 0; i < b.N; i++ {
		Quantize(data)
	}
}
