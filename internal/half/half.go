// Package half implements IEEE 754 half-precision (binary16) conversion.
// The paper's input streams carry "100 million elements with 16-bit
// floating point precision" and its GPU implementation renders into
// "double buffered 16-bit offscreen buffers" (Section 4.5); this package
// provides the quantization those configurations imply, so experiments can
// run with paper-faithful precision. Round-trip order preservation —
// a <= b implies half(a) <= half(b) — keeps sorting and rank queries
// meaningful after quantization.
package half

import "math"

// Bits is a raw binary16 value.
type Bits uint16

// FromFloat32 converts f to the nearest binary16 (round-to-nearest-even),
// with overflow to infinity and graceful subnormal handling.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xFF) - 127
	mant := b & 0x7FFFFF

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			return Bits(sign | 0x7E00) // quiet NaN
		}
		return Bits(sign | 0x7C00)
	case exp > 15: // overflow -> Inf
		return Bits(sign | 0x7C00)
	case exp >= -14: // normal range
		// 10-bit mantissa, round to nearest even on the dropped 13 bits.
		out := uint32(exp+15)<<10 | mant>>13
		round := mant & 0x1FFF
		if round > 0x1000 || (round == 0x1000 && out&1 == 1) {
			out++
		}
		return Bits(sign | uint16(out))
	case exp >= -24: // subnormal half: value = out * 2^-24
		shift := uint32(-exp - 1) // 14..23
		full := mant | 0x800000   // 1.m as a 24-bit integer
		out := full >> shift
		rem := full & (1<<shift - 1)
		halfPoint := uint32(1) << (shift - 1)
		if rem > halfPoint || (rem == halfPoint && out&1 == 1) {
			out++
		}
		return Bits(sign | uint16(out))
	default: // underflow -> signed zero
		return Bits(sign)
	}
}

// ToFloat32 converts a binary16 back to float32 exactly.
func (h Bits) ToFloat32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1F:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7FC00000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// Quantize rounds every element of data through binary16 in place,
// emulating a 16-bit stream or render target.
func Quantize(data []float32) {
	for i, v := range data {
		data[i] = FromFloat32(v).ToFloat32()
	}
}

// Quantized returns a 16-bit-quantized copy of data.
func Quantized(data []float32) []float32 {
	out := append([]float32(nil), data...)
	Quantize(out)
	return out
}

// MaxValue is the largest finite binary16 value.
const MaxValue = 65504

// Eps is the relative precision of binary16 normals (2^-11).
const Eps = 1.0 / 2048
