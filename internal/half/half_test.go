package half

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValuesRoundTrip(t *testing.T) {
	// Values exactly representable in binary16 must survive unchanged.
	exact := []float32{0, 1, -1, 0.5, 2, 1024, 65504, -65504, 0.25, 1.5,
		6.103515625e-05 /* smallest normal */, 5.960464477539063e-08 /* smallest subnormal */}
	for _, v := range exact {
		if got := FromFloat32(v).ToFloat32(); got != v {
			t.Fatalf("%v -> %v", v, got)
		}
	}
}

func TestSpecials(t *testing.T) {
	inf := float32(math.Inf(1))
	if got := FromFloat32(inf).ToFloat32(); got != inf {
		t.Fatalf("+Inf -> %v", got)
	}
	if got := FromFloat32(-inf).ToFloat32(); got != -inf {
		t.Fatalf("-Inf -> %v", got)
	}
	nan := float32(math.NaN())
	if got := FromFloat32(nan).ToFloat32(); got == got {
		t.Fatalf("NaN -> %v (not NaN)", got)
	}
	// Overflow saturates to Inf.
	if got := FromFloat32(1e6).ToFloat32(); got != inf {
		t.Fatalf("overflow -> %v", got)
	}
	// Underflow flushes to signed zero.
	if got := FromFloat32(1e-9).ToFloat32(); got != 0 {
		t.Fatalf("underflow -> %v", got)
	}
	if got := FromFloat32(float32(math.Copysign(1e-9, -1))).ToFloat32(); got != 0 || !math.Signbit(float64(got)) {
		t.Fatalf("negative underflow -> %v", got)
	}
}

func TestRelativeError(t *testing.T) {
	// Normal-range values round within half-precision epsilon.
	for _, v := range []float32{3.14159, -2.71828, 123.456, 0.001, 6000} {
		got := FromFloat32(v).ToFloat32()
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		if rel > Eps {
			t.Fatalf("%v -> %v, relative error %v > %v", v, got, rel, Eps)
		}
	}
}

func TestMonotone(t *testing.T) {
	prop := func(a, b float32) bool {
		if a != a || b != b {
			return true
		}
		if math.Abs(float64(a)) > 1e30 || math.Abs(float64(b)) > 1e30 {
			return true // both saturate; ordering of infinities is weaker
		}
		ha, hb := FromFloat32(a).ToFloat32(), FromFloat32(b).ToFloat32()
		if a <= b {
			return ha <= hb
		}
		return ha >= hb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIdempotent(t *testing.T) {
	prop := func(v float32) bool {
		if v != v {
			return true
		}
		once := FromFloat32(v).ToFloat32()
		twice := FromFloat32(once).ToFloat32()
		return once == twice
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 2049 is exactly between 2048 and 2050 in binary16; round-to-even
	// picks 2048.
	if got := FromFloat32(2049).ToFloat32(); got != 2048 {
		t.Fatalf("2049 -> %v, want 2048", got)
	}
	if got := FromFloat32(2051).ToFloat32(); got != 2052 {
		t.Fatalf("2051 -> %v, want 2052", got)
	}
}

func TestQuantizeSlice(t *testing.T) {
	data := []float32{1.0000001, 2.0000001, 3}
	q := Quantized(data)
	if data[0] != 1.0000001 {
		t.Fatal("Quantized mutated its input")
	}
	Quantize(data)
	for i := range data {
		if data[i] != q[i] {
			t.Fatal("Quantize and Quantized disagree")
		}
	}
	if data[0] != 1 || data[1] != 2 || data[2] != 3 {
		t.Fatalf("quantized = %v", data)
	}
}

func TestAllBitsRoundTripThroughFloat32(t *testing.T) {
	// Every one of the 65536 half values must convert to float32 and back
	// to the identical bit pattern (NaNs may canonicalize).
	for u := 0; u < 1<<16; u++ {
		h := Bits(u)
		f := h.ToFloat32()
		back := FromFloat32(f)
		if f != f { // NaN: only class must survive
			if bf := back.ToFloat32(); bf == bf {
				t.Fatalf("NaN bits %04x round-tripped to non-NaN", u)
			}
			continue
		}
		if back != h {
			t.Fatalf("bits %04x -> %v -> %04x", u, f, uint16(back))
		}
	}
}
