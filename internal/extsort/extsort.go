// Package extsort implements external merge sorting of float32 streams with
// bounded memory: the "spilling of data items to the disks and using
// appropriate memory hierarchies" option the paper's introduction describes
// for stream systems whose input outruns main memory. Runs are formed in
// memory with any sorting backend — including the GPU sorter, making this
// the disk-to-disk configuration of the paper's Section 2.3 database
// sorting literature — spilled as trace files, and k-way merged in one or
// more passes.
package extsort

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gpustream/internal/sorter"
	"gpustream/internal/stream"
)

// Config controls an external sort.
type Config struct {
	// RunSize is the maximum values held in memory at once. <= 0 selects
	// one million.
	RunSize int
	// FanIn is the maximum runs merged per pass. <= 1 selects 16.
	FanIn int
	// Dir is the spill directory; empty selects the OS temp dir.
	Dir string
	// Sorter forms runs; nil selects a CPU quicksort via sorter.Func.
	Sorter sorter.Sorter[float32]
}

// Stats reports the work an external sort performed.
type Stats struct {
	Values       int64 // values sorted
	InitialRuns  int   // runs formed in memory
	MergePasses  int   // multi-pass merges beyond the final one
	SpilledBytes int64 // bytes written to spill files (excluding output)
}

// Sort reads every value from src, sorts them with bounded memory, and
// writes the ascending result to out in trace format.
func Sort(src stream.Source[float32], out io.Writer, cfg Config) (Stats, error) {
	if cfg.RunSize <= 0 {
		cfg.RunSize = 1 << 20
	}
	if cfg.FanIn <= 1 {
		cfg.FanIn = 16
	}
	var st Stats

	dir, err := os.MkdirTemp(cfg.Dir, "extsort-")
	if err != nil {
		return st, fmt.Errorf("extsort: %w", err)
	}
	defer os.RemoveAll(dir)

	srt := cfg.Sorter
	sortRun := func(run []float32) {
		if srt != nil {
			srt.Sort(run)
			return
		}
		insertionFallback(run)
	}

	// Phase 1: run formation.
	var runs []string
	buf := make([]float32, 0, cfg.RunSize)
	runID := 0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sortRun(buf)
		path := filepath.Join(dir, fmt.Sprintf("run-%06d", runID))
		runID++
		if err := writeRun(path, buf); err != nil {
			return err
		}
		st.SpilledBytes += int64(len(buf)) * 4
		runs = append(runs, path)
		buf = buf[:0]
		return nil
	}
	for {
		v, ok := src.Next()
		if !ok {
			break
		}
		st.Values++
		buf = append(buf, v)
		if len(buf) == cfg.RunSize {
			if err := flush(); err != nil {
				return st, err
			}
		}
	}
	if err := flush(); err != nil {
		return st, err
	}
	st.InitialRuns = len(runs)

	if len(runs) == 0 {
		return st, stream.WriteTrace(out, nil)
	}

	// Phase 2: multi-pass k-way merge until FanIn runs remain.
	for len(runs) > cfg.FanIn {
		var next []string
		for lo := 0; lo < len(runs); lo += cfg.FanIn {
			hi := lo + cfg.FanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			path := filepath.Join(dir, fmt.Sprintf("merge-%06d", runID))
			runID++
			n, err := mergeRunsToFile(runs[lo:hi], path)
			if err != nil {
				return st, err
			}
			st.SpilledBytes += n * 4
			next = append(next, path)
		}
		runs = next
		st.MergePasses++
	}

	// Final merge straight into the caller's writer.
	_, err = mergeRuns(runs, out)
	return st, err
}

// insertionFallback keeps the package usable with a nil Sorter without
// importing cpusort (which would create a dependency cycle in tests that
// want to inject it).
func insertionFallback(run []float32) {
	for i := 1; i < len(run); i++ {
		v := run[i]
		j := i - 1
		for j >= 0 && run[j] > v {
			run[j+1] = run[j]
			j--
		}
		run[j+1] = v
	}
}

func writeRun(path string, data []float32) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("extsort: %w", err)
	}
	if err := stream.WriteTrace(f, data); err != nil {
		f.Close()
		return fmt.Errorf("extsort: %w", err)
	}
	return f.Close()
}

func mergeRunsToFile(paths []string, out string) (int64, error) {
	f, err := os.Create(out)
	if err != nil {
		return 0, fmt.Errorf("extsort: %w", err)
	}
	n, err := mergeRuns(paths, f)
	if err != nil {
		f.Close()
		return 0, err
	}
	return n, f.Close()
}

// mergeRuns streams a k-way merge of the trace files in paths into out,
// returning the number of values written.
func mergeRuns(paths []string, out io.Writer) (int64, error) {
	type head struct {
		src *stream.TraceSource
		f   *os.File
		v   float32
	}
	var heads []*head
	defer func() {
		for _, h := range heads {
			h.f.Close()
		}
	}()
	var total uint64
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return 0, fmt.Errorf("extsort: %w", err)
		}
		src, err := stream.NewTraceSource(f)
		if err != nil {
			f.Close()
			return 0, fmt.Errorf("extsort: %w", err)
		}
		total += src.Len()
		h := &head{src: src, f: f}
		if v, ok := src.Next(); ok {
			h.v = v
			heads = append(heads, h)
		} else {
			f.Close()
			if err := src.Err(); err != nil {
				return 0, err
			}
		}
	}

	// Stream the merged output through a buffered trace writer. The trace
	// format needs the count up front, which we know exactly.
	tw, err := stream.NewTraceWriter(out, total)
	if err != nil {
		return 0, err
	}

	// Min-heap on head values.
	less := func(i, j int) bool { return heads[i].v < heads[j].v }
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heads) && less(l, m) {
				m = l
			}
			if r < len(heads) && less(r, m) {
				m = r
			}
			if m == i {
				return
			}
			heads[i], heads[m] = heads[m], heads[i]
			i = m
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for len(heads) > 0 {
		h := heads[0]
		if err := tw.Write(h.v); err != nil {
			return 0, err
		}
		if v, ok := h.src.Next(); ok {
			h.v = v
		} else {
			if err := h.src.Err(); err != nil {
				return 0, err
			}
			h.f.Close()
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		down(0)
	}
	return int64(total), tw.Flush()
}
