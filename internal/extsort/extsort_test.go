package extsort

import (
	"bytes"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/sorter"
	"gpustream/internal/stream"
)

func sortToSlice(t *testing.T, data []float32, cfg Config) ([]float32, Stats) {
	t.Helper()
	var buf bytes.Buffer
	st, err := Sort(stream.NewSliceSource(data), &buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := stream.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out, st
}

func checkSorted(t *testing.T, got, original []float32) {
	t.Helper()
	if len(got) != len(original) {
		t.Fatalf("length %d, want %d", len(got), len(original))
	}
	want := append([]float32(nil), original...)
	cpusort.Quicksort(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestSortSingleRun(t *testing.T) {
	data := stream.Uniform(5000, 1)
	got, st := sortToSlice(t, data, Config{RunSize: 10000, Sorter: cpusort.QuicksortSorter[float32]{}})
	checkSorted(t, got, data)
	if st.InitialRuns != 1 || st.MergePasses != 0 || st.Values != 5000 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSortManyRuns(t *testing.T) {
	data := stream.Zipf(50000, 1.1, 3000, 2)
	got, st := sortToSlice(t, data, Config{RunSize: 1000, Sorter: cpusort.QuicksortSorter[float32]{}})
	checkSorted(t, got, data)
	if st.InitialRuns != 50 {
		t.Fatalf("runs = %d", st.InitialRuns)
	}
	if st.SpilledBytes < 50000*4 {
		t.Fatalf("spilled = %d", st.SpilledBytes)
	}
}

func TestSortMultiPassMerge(t *testing.T) {
	data := stream.Uniform(20000, 3)
	got, st := sortToSlice(t, data, Config{RunSize: 500, FanIn: 4, Sorter: cpusort.QuicksortSorter[float32]{}})
	checkSorted(t, got, data)
	// 40 runs at fan-in 4 need at least two intermediate passes.
	if st.MergePasses < 2 {
		t.Fatalf("merge passes = %d", st.MergePasses)
	}
}

func TestSortWithGPUBackend(t *testing.T) {
	// Disk-to-disk sorting with GPU run formation: the paper's Section 2.3
	// configuration.
	data := stream.Uniform(20000, 4)
	got, st := sortToSlice(t, data, Config{RunSize: 4096, Sorter: gpusort.NewSorter[float32]()})
	checkSorted(t, got, data)
	if st.InitialRuns != 5 {
		t.Fatalf("runs = %d", st.InitialRuns)
	}
}

func TestSortEmptyStream(t *testing.T) {
	got, st := sortToSlice(t, nil, Config{Sorter: cpusort.QuicksortSorter[float32]{}})
	if len(got) != 0 || st.Values != 0 || st.InitialRuns != 0 {
		t.Fatalf("empty sort: got %v stats %+v", got, st)
	}
}

func TestSortNilSorterFallback(t *testing.T) {
	data := stream.Uniform(2000, 5)
	got, _ := sortToSlice(t, data, Config{RunSize: 500})
	checkSorted(t, got, data)
}

func TestSortDuplicatesAcrossRuns(t *testing.T) {
	data := stream.UniformInts(10000, 7, 6)
	got, _ := sortToSlice(t, data, Config{RunSize: 300, FanIn: 3, Sorter: cpusort.QuicksortSorter[float32]{}})
	checkSorted(t, got, data)
}

func TestSortBadSpillDir(t *testing.T) {
	var buf bytes.Buffer
	_, err := Sort(stream.NewSliceSource([]float32{1}), &buf,
		Config{Dir: "/nonexistent/definitely/not/here", Sorter: cpusort.QuicksortSorter[float32]{}})
	if err == nil {
		t.Fatal("expected error for unusable spill dir")
	}
}

var _ sorter.Sorter[float32] = cpusort.QuicksortSorter[float32]{} // keep the import honest
