package extsort

import (
	"io"
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/stream"
)

func BenchmarkExternalSort(b *testing.B) {
	data := stream.Uniform(1<<17, 1)
	b.SetBytes(int64(len(data) * 4))
	for i := 0; i < b.N; i++ {
		_, err := Sort(stream.NewSliceSource(data), io.Discard,
			Config{RunSize: 1 << 14, Sorter: cpusort.QuicksortSorter[float32]{}})
		if err != nil {
			b.Fatal(err)
		}
	}
}
