package hhh

import (
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/stream"
)

// syntheticTraffic builds a trace over a 16-bit item space where one /8
// prefix is collectively heavy without any single heavy leaf, plus one
// genuinely heavy leaf elsewhere — the classic HHH separation case.
func syntheticTraffic(n int, seed uint64) []uint32 {
	r := stream.NewRNG(seed)
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%10 < 3:
			// 30%: spread across the 0xAB00 prefix, 200 distinct leaves.
			out = append(out, 0xAB00|uint32(r.Intn(200)%256))
		case i%10 < 5:
			// 20%: one hot leaf.
			out = append(out, 0x1234)
		default:
			// Background noise over the whole space.
			out = append(out, uint32(r.Intn(1<<16)))
		}
	}
	return out
}

func TestBitHierarchy(t *testing.T) {
	h := NewBitHierarchy(16, 8)
	if h.Levels() != 3 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	if h.Ancestor(0xABCD, 0) != 0xABCD {
		t.Fatal("level 0 must be identity")
	}
	if h.Ancestor(0xABCD, 1) != 0xAB00 {
		t.Fatalf("level 1 ancestor = %x", h.Ancestor(0xABCD, 1))
	}
	if h.Ancestor(0xABCD, 2) != 0 {
		t.Fatalf("root ancestor = %x", h.Ancestor(0xABCD, 2))
	}
}

func TestBitHierarchyPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBitHierarchy(0, 8) },
		func() { NewBitHierarchy(32, 8) }, // beyond float32 exactness
		func() { NewBitHierarchy(16, 0) },
		func() { NewBitHierarchy(8, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestHHHFindsPrefixAndLeaf(t *testing.T) {
	items := syntheticTraffic(100000, 1)
	e := NewEstimator(NewBitHierarchy(16, 8), 0.001, cpusort.QuicksortSorter{})
	e.ProcessSlice(items)

	hits := e.Query(0.1)
	var foundLeaf, foundPrefix bool
	for _, p := range hits {
		if p.Level == 0 && p.Value == 0x1234 {
			foundLeaf = true
		}
		if p.Level == 1 && p.Value == 0xAB00 {
			foundPrefix = true
		}
	}
	if !foundLeaf {
		t.Fatalf("hot leaf 0x1234 not reported: %v", hits)
	}
	if !foundPrefix {
		t.Fatalf("collectively-heavy prefix 0xAB00 not reported: %v", hits)
	}
	// The individual leaves under 0xAB00 must NOT appear: none reaches
	// the 10% support alone.
	for _, p := range hits {
		if p.Level == 0 && p.Value&0xFF00 == 0xAB00 {
			t.Fatalf("leaf %x under the prefix wrongly reported", p.Value)
		}
	}
}

func TestHHHDiscounting(t *testing.T) {
	// A stream where one leaf is heavy; its ancestors' discounted counts
	// must not re-report the same mass.
	items := make([]uint32, 0, 10000)
	for i := 0; i < 5000; i++ {
		items = append(items, 0x4242)
	}
	r := stream.NewRNG(2)
	for i := 0; i < 5000; i++ {
		items = append(items, uint32(r.Intn(1<<16)))
	}
	e := NewEstimator(NewBitHierarchy(16, 8), 0.001, cpusort.QuicksortSorter{})
	e.ProcessSlice(items)
	hits := e.Query(0.3)
	for _, p := range hits {
		if p.Level == 1 && p.Value == 0x4200 {
			t.Fatalf("ancestor 0x4200 reported despite discounting: %v", hits)
		}
	}
	if len(hits) == 0 || hits[0].Value != 0x4242 {
		t.Fatalf("hot leaf missing: %v", hits)
	}
}

func TestHHHRootAccountsForEverything(t *testing.T) {
	items := syntheticTraffic(20000, 3)
	e := NewEstimator(NewBitHierarchy(16, 8), 0.01, cpusort.QuicksortSorter{})
	e.ProcessSlice(items)
	root := e.EstimateLevel(0, 2)
	if float64(root) < 0.99*float64(len(items)) {
		t.Fatalf("root count %d misses stream mass %d", root, len(items))
	}
	if e.Count() != int64(len(items)) {
		t.Fatalf("Count = %d", e.Count())
	}
}

func TestHHHGPUBackendMatchesCPU(t *testing.T) {
	items := syntheticTraffic(20000, 4)
	cpu := NewEstimator(NewBitHierarchy(16, 8), 0.005, cpusort.QuicksortSorter{})
	gpu := NewEstimator(NewBitHierarchy(16, 8), 0.005, gpusort.NewSorter())
	cpu.ProcessSlice(items)
	gpu.ProcessSlice(items)
	ch, gh := cpu.Query(0.1), gpu.Query(0.1)
	if len(ch) != len(gh) {
		t.Fatalf("backend results differ: %v vs %v", ch, gh)
	}
	for i := range ch {
		if ch[i] != gh[i] {
			t.Fatalf("backend results differ at %d: %v vs %v", i, ch[i], gh[i])
		}
	}
}

func TestHHHQueryPanics(t *testing.T) {
	e := NewEstimator(NewBitHierarchy(16, 8), 0.01, cpusort.QuicksortSorter{})
	for _, fn := range []func(){
		func() { e.Query(-1) },
		func() { e.EstimateLevel(0, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestHHHSummarySizeBounded(t *testing.T) {
	items := syntheticTraffic(200000, 5)
	e := NewEstimator(NewBitHierarchy(16, 8), 0.001, cpusort.QuicksortSorter{})
	e.ProcessSlice(items)
	// Three lossy-counting summaries, each O((1/eps) log(eps N)).
	if e.SummarySize() > 3*20000 {
		t.Fatalf("summary size %d not bounded", e.SummarySize())
	}
}
