package hhh

import (
	"testing"

	"gpustream/internal/cpusort"
	"gpustream/internal/gpusort"
	"gpustream/internal/stream"
)

// syntheticTraffic builds a trace over a 16-bit item space where one /8
// prefix is collectively heavy without any single heavy leaf, plus one
// genuinely heavy leaf elsewhere — the classic HHH separation case.
func syntheticTraffic[T Item](n int, seed uint64) []T {
	r := stream.NewRNG(seed)
	out := make([]T, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%10 < 3:
			// 30%: spread across the 0xAB00 prefix, 200 distinct leaves.
			out = append(out, T(0xAB00|uint32(r.Intn(200)%256)))
		case i%10 < 5:
			// 20%: one hot leaf.
			out = append(out, T(0x1234))
		default:
			// Background noise over the whole space.
			out = append(out, T(r.Intn(1<<16)))
		}
	}
	return out
}

func TestBitHierarchy(t *testing.T) {
	h := NewBitHierarchy[uint32](16, 8)
	if h.Levels() != 3 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	if h.Ancestor(0xABCD, 0) != 0xABCD {
		t.Fatal("level 0 must be identity")
	}
	if h.Ancestor(0xABCD, 1) != 0xAB00 {
		t.Fatalf("level 1 ancestor = %x", h.Ancestor(0xABCD, 1))
	}
	if h.Ancestor(0xABCD, 2) != 0 {
		t.Fatalf("root ancestor = %x", h.Ancestor(0xABCD, 2))
	}
}

// TestBitHierarchyFullWidth is the regression for the lifted 24-bit cap:
// hierarchies over the items' full native width must construct and
// aggregate correctly at both 32 and 64 bits.
func TestBitHierarchyFullWidth(t *testing.T) {
	h32 := NewBitHierarchy[uint32](32, 8)
	if h32.Levels() != 5 {
		t.Fatalf("32-bit Levels = %d, want 5", h32.Levels())
	}
	if got := h32.Ancestor(0xDEADBEEF, 1); got != 0xDEADBE00 {
		t.Fatalf("32-bit level 1 ancestor = %x", got)
	}
	if got := h32.Ancestor(0xDEADBEEF, 3); got != 0xDE000000 {
		t.Fatalf("32-bit level 3 ancestor = %x", got)
	}
	if got := h32.Ancestor(0xDEADBEEF, 4); got != 0 {
		t.Fatalf("32-bit root ancestor = %x", got)
	}

	h64 := NewBitHierarchy[uint64](64, 16)
	if h64.Levels() != 5 {
		t.Fatalf("64-bit Levels = %d, want 5", h64.Levels())
	}
	if got := h64.Ancestor(0xDEADBEEFCAFEF00D, 1); got != 0xDEADBEEFCAFE0000 {
		t.Fatalf("64-bit level 1 ancestor = %x", got)
	}
	if got := h64.Ancestor(0xDEADBEEFCAFEF00D, 3); got != 0xDEAD000000000000 {
		t.Fatalf("64-bit level 3 ancestor = %x", got)
	}
	if got := h64.Ancestor(0xDEADBEEFCAFEF00D, 4); got != 0 {
		t.Fatalf("64-bit root ancestor = %x", got)
	}
}

func TestBitHierarchyPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBitHierarchy[uint32](0, 8) },
		func() { NewBitHierarchy[uint32](33, 8) }, // beyond the item width
		func() { NewBitHierarchy[uint64](65, 8) },
		func() { NewBitHierarchy[uint32](16, 0) },
		func() { NewBitHierarchy[uint32](8, 16) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestHHHFindsPrefixAndLeaf(t *testing.T) {
	items := syntheticTraffic[uint32](100000, 1)
	e := NewEstimator[uint32](NewBitHierarchy[uint32](16, 8), 0.001, cpusort.QuicksortSorter[uint32]{})
	e.ProcessSlice(items)

	hits := e.Query(0.1)
	var foundLeaf, foundPrefix bool
	for _, p := range hits {
		if p.Level == 0 && p.Value == 0x1234 {
			foundLeaf = true
		}
		if p.Level == 1 && p.Value == 0xAB00 {
			foundPrefix = true
		}
	}
	if !foundLeaf {
		t.Fatalf("hot leaf 0x1234 not reported: %v", hits)
	}
	if !foundPrefix {
		t.Fatalf("collectively-heavy prefix 0xAB00 not reported: %v", hits)
	}
	// The individual leaves under 0xAB00 must NOT appear: none reaches
	// the 10% support alone.
	for _, p := range hits {
		if p.Level == 0 && p.Value&0xFF00 == 0xAB00 {
			t.Fatalf("leaf %x under the prefix wrongly reported", p.Value)
		}
	}
}

// hhhFullWidthCase runs the prefix-and-leaf separation scenario with the
// heavy mass placed above the old 24-bit cap, at the given hierarchy width.
func hhhFullWidthCase[T Item](t *testing.T, bits, stride int, hotLeaf, hotPrefix T, prefixLevel int) {
	t.Helper()
	r := stream.NewRNG(7)
	items := make([]T, 0, 60000)
	for i := 0; i < 60000; i++ {
		switch {
		case i%10 < 3:
			// 30%: spread across the hot prefix's low two stride levels,
			// so neither a leaf nor a level-1 ancestor is heavy alone.
			items = append(items, hotPrefix|T(r.Intn(1<<(2*stride))))
		case i%10 < 5:
			// 20%: one hot leaf.
			items = append(items, hotLeaf)
		default:
			items = append(items, T(r.Uint64())>>1|1<<(bits-2))
		}
	}
	e := NewEstimator[T](NewBitHierarchy[T](bits, stride), 0.001, cpusort.QuicksortSorter[T]{})
	e.ProcessSlice(items)
	hits := e.Query(0.1)
	var foundLeaf, foundPrefix bool
	for _, p := range hits {
		if p.Level == 0 && p.Value == hotLeaf {
			foundLeaf = true
		}
		if p.Level == prefixLevel && p.Value == hotPrefix {
			foundPrefix = true
		}
	}
	if !foundLeaf {
		t.Fatalf("%d-bit: hot leaf %x not reported: %v", bits, hotLeaf, hits)
	}
	if !foundPrefix {
		t.Fatalf("%d-bit: collectively-heavy prefix %x not reported: %v", bits, hotPrefix, hits)
	}
}

// TestHHHFullWidth32 and TestHHHFullWidth64 are the end-to-end regressions
// for the lifted 24-bit restriction: items whose heavy prefixes live in the
// high bits — unrepresentable exactly in the old float32 encoding — must be
// found natively.
func TestHHHFullWidth32(t *testing.T) {
	hhhFullWidthCase[uint32](t, 32, 8, 0xDEADBEEF, 0xCAFE0000, 2)
}

func TestHHHFullWidth64(t *testing.T) {
	hhhFullWidthCase[uint64](t, 64, 16, 0xDEADBEEFCAFEF00D, 0x1234567800000000, 2)
}

func TestHHHDiscounting(t *testing.T) {
	// A stream where one leaf is heavy; its ancestors' discounted counts
	// must not re-report the same mass.
	items := make([]uint32, 0, 10000)
	for i := 0; i < 5000; i++ {
		items = append(items, 0x4242)
	}
	r := stream.NewRNG(2)
	for i := 0; i < 5000; i++ {
		items = append(items, uint32(r.Intn(1<<16)))
	}
	e := NewEstimator[uint32](NewBitHierarchy[uint32](16, 8), 0.001, cpusort.QuicksortSorter[uint32]{})
	e.ProcessSlice(items)
	hits := e.Query(0.3)
	for _, p := range hits {
		if p.Level == 1 && p.Value == 0x4200 {
			t.Fatalf("ancestor 0x4200 reported despite discounting: %v", hits)
		}
	}
	if len(hits) == 0 || hits[0].Value != 0x4242 {
		t.Fatalf("hot leaf missing: %v", hits)
	}
}

func TestHHHRootAccountsForEverything(t *testing.T) {
	items := syntheticTraffic[uint32](20000, 3)
	e := NewEstimator[uint32](NewBitHierarchy[uint32](16, 8), 0.01, cpusort.QuicksortSorter[uint32]{})
	e.ProcessSlice(items)
	root := e.EstimateLevel(0, 2)
	if float64(root) < 0.99*float64(len(items)) {
		t.Fatalf("root count %d misses stream mass %d", root, len(items))
	}
	if e.Count() != int64(len(items)) {
		t.Fatalf("Count = %d", e.Count())
	}
}

func TestHHHGPUBackendMatchesCPU(t *testing.T) {
	items := syntheticTraffic[uint32](20000, 4)
	cpu := NewEstimator[uint32](NewBitHierarchy[uint32](16, 8), 0.005, cpusort.QuicksortSorter[uint32]{})
	gpu := NewEstimator[uint32](NewBitHierarchy[uint32](16, 8), 0.005, gpusort.NewSorter[uint32]())
	cpu.ProcessSlice(items)
	gpu.ProcessSlice(items)
	ch, gh := cpu.Query(0.1), gpu.Query(0.1)
	if len(ch) != len(gh) {
		t.Fatalf("backend results differ: %v vs %v", ch, gh)
	}
	for i := range ch {
		if ch[i] != gh[i] {
			t.Fatalf("backend results differ at %d: %v vs %v", i, ch[i], gh[i])
		}
	}
}

func TestHHHQueryPanics(t *testing.T) {
	e := NewEstimator[uint32](NewBitHierarchy[uint32](16, 8), 0.01, cpusort.QuicksortSorter[uint32]{})
	for _, fn := range []func(){
		func() { e.Query(-1) },
		func() { e.EstimateLevel(0, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestHHHSummarySizeBounded(t *testing.T) {
	items := syntheticTraffic[uint32](200000, 5)
	e := NewEstimator[uint32](NewBitHierarchy[uint32](16, 8), 0.001, cpusort.QuicksortSorter[uint32]{})
	e.ProcessSlice(items)
	// Three lossy-counting summaries, each O((1/eps) log(eps N)).
	if e.SummarySize() > 3*20000 {
		t.Fatalf("summary size %d not bounded", e.SummarySize())
	}
}
