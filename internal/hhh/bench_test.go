package hhh

import (
	"testing"

	"gpustream/internal/cpusort"
)

func BenchmarkHHHProcess(b *testing.B) {
	items := syntheticTraffic[uint32](1<<15, 1)
	b.SetBytes(int64(len(items) * 4))
	for i := 0; i < b.N; i++ {
		e := NewEstimator[uint32](NewBitHierarchy[uint32](16, 8), 0.005, cpusort.QuicksortSorter[uint32]{})
		e.ProcessSlice(items)
	}
}

func BenchmarkHHHQuery(b *testing.B) {
	e := NewEstimator[uint32](NewBitHierarchy[uint32](16, 8), 0.005, cpusort.QuicksortSorter[uint32]{})
	e.ProcessSlice(syntheticTraffic[uint32](1<<16, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Query(0.05)
	}
}
