package hhh

import (
	"testing"

	"gpustream/internal/cpusort"
)

func BenchmarkHHHProcess(b *testing.B) {
	items := syntheticTraffic(1<<15, 1)
	b.SetBytes(int64(len(items) * 4))
	for i := 0; i < b.N; i++ {
		e := NewEstimator(NewBitHierarchy(16, 8), 0.005, cpusort.QuicksortSorter{})
		e.ProcessSlice(items)
	}
}

func BenchmarkHHHQuery(b *testing.B) {
	e := NewEstimator(NewBitHierarchy(16, 8), 0.005, cpusort.QuicksortSorter{})
	e.ProcessSlice(syntheticTraffic(1<<16, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Query(0.05)
	}
}
